#!/usr/bin/env python3
"""Validate an O3PipeView trace (and optionally its sweep report).

Checks the trace emitted by --pipeview (see src/obs/pipeview.hh):

  * line grammar: every line is one of the known stage records with
    integer timestamps; fetch lines carry a hex PC, a sequence number,
    and a colon-free disassembly; retire lines carry the store field;
  * block structure: each instruction is a fetch..retire block with
    the stages in canonical order, the two extension lines (xlate,
    mem) present exactly when the block is a memory op;
  * timestamps: non-decreasing along each block's stage order, with
    issue strictly after dispatch and completion strictly after
    translation for memory ops;
  * ordering: sequence numbers strictly increase across blocks (this
    simulator traces correct-path instructions only, so retirement
    order is fetch order);
  * the store field is the retire cycle for stores and 0 otherwise.

With --json REPORT [--cell N], additionally cross-checks the sweep
report the trace was produced with: the report's interval_stats series
(when present) must have strictly ascending boundary cycles, every
boundary except the last a multiple of the interval, and per-interval
deltas of pipe.cycles and pipe.committed that sum to the cell's
end-of-run totals; the traced instruction count must equal the cell's
committed count.

Usage: check_pipeview.py TRACE [--json REPORT] [--cell N]
"""

import argparse
import json
import re
import sys

FETCH_RE = re.compile(
    r"^O3PipeView:fetch:(\d+):0x([0-9a-fA-F]+):0:(\d+):([^:]+)$")
STAGE_RE = re.compile(
    r"^O3PipeView:(decode|rename|dispatch|issue|xlate|mem|complete)"
    r":(\d+)$")
RETIRE_RE = re.compile(r"^O3PipeView:retire:(\d+):store:(\d+)$")

# Canonical stage order inside a block (xlate/mem only for memory ops).
ORDER = ["decode", "rename", "dispatch", "issue", "xlate", "mem",
         "complete"]


def fail(msg):
    sys.exit(f"check_pipeview: {msg}")


def parse_blocks(path):
    """Yield (lineno, seq, pc, disasm, stages, retire, store)."""
    blocks = []
    cur = None
    try:
        f = open(path)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    with f:
        for n, line in enumerate(f, 1):
            line = line.rstrip("\n")
            m = FETCH_RE.match(line)
            if m:
                if cur is not None:
                    fail(f"line {n}: fetch before previous block's "
                         "retire")
                cur = {"line": n, "fetch": int(m.group(1)),
                       "pc": int(m.group(2), 16), "seq": int(m.group(3)),
                       "disasm": m.group(4), "stages": {}}
                continue
            m = STAGE_RE.match(line)
            if m:
                if cur is None:
                    fail(f"line {n}: {m.group(1)} outside a block")
                stage = m.group(1)
                if stage in cur["stages"]:
                    fail(f"line {n}: duplicate {stage} in block "
                         f"seq {cur['seq']}")
                cur["stages"][stage] = int(m.group(2))
                continue
            m = RETIRE_RE.match(line)
            if m:
                if cur is None:
                    fail(f"line {n}: retire outside a block")
                cur["retire"] = int(m.group(1))
                cur["store"] = int(m.group(2))
                blocks.append(cur)
                cur = None
                continue
            fail(f"line {n}: unrecognized line: {line!r}")
    if cur is not None:
        fail(f"trace ends mid-block (seq {cur['seq']})")
    if not blocks:
        fail("trace contains no instruction blocks")
    return blocks


def check_block(b):
    where = f"block seq {b['seq']} (line {b['line']})"
    stages = b["stages"]
    is_mem = "xlate" in stages or "mem" in stages
    expect = [s for s in ORDER if is_mem or s not in ("xlate", "mem")]
    if list(stages) != expect:
        fail(f"{where}: stage order {list(stages)}, want {expect}")

    # Non-decreasing along fetch -> stages -> retire; the model
    # guarantees two strict steps (see src/obs/pipeview.hh).
    t = b["fetch"]
    seq_times = [("fetch", t)]
    for s in expect:
        seq_times.append((s, stages[s]))
    seq_times.append(("retire", b["retire"]))
    for (ps, pt), (cs, ct) in zip(seq_times, seq_times[1:]):
        if ct < pt:
            fail(f"{where}: {cs}@{ct} before {ps}@{pt}")
    if stages["issue"] <= stages["dispatch"]:
        fail(f"{where}: issue not after dispatch")
    if is_mem and stages["complete"] <= stages["xlate"]:
        fail(f"{where}: completion not after translation")
    if b["store"] not in (0, b["retire"]):
        fail(f"{where}: store field {b['store']} is neither 0 nor the "
             f"retire cycle {b['retire']}")


def check_report(blocks, report_path, cell_idx):
    try:
        with open(report_path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot read {report_path}: {e}")
    cells = report.get("cells", [])
    if not 0 <= cell_idx < len(cells):
        fail(f"--cell {cell_idx} out of range ({len(cells)} cells)")
    cell = cells[cell_idx]
    where = f"cell {cell_idx} ({cell.get('program')}, " \
            f"{cell.get('design')})"

    committed = cell.get("committed")
    if len(blocks) != committed:
        fail(f"{where}: trace has {len(blocks)} blocks but the cell "
             f"committed {committed}")

    iv = cell.get("interval_stats")
    if iv is None:
        return 0
    interval = iv.get("interval", 0)
    samples = iv.get("samples", [])
    if interval <= 0 or not samples:
        fail(f"{where}: malformed interval_stats")
    cycles = [s.get("cycle") for s in samples]
    for prev, cur in zip(cycles, cycles[1:]):
        if cur <= prev:
            fail(f"{where}: interval boundaries not ascending: "
                 f"{prev} then {cur}")
    for c in cycles[:-1]:
        if c % interval != 0:
            fail(f"{where}: non-final boundary {c} is not a multiple "
                 f"of {interval}")
    for key, total in (("pipe.cycles", cell.get("cycles")),
                       ("pipe.committed", committed)):
        s = sum(x.get("stats", {}).get(key, 0) for x in samples)
        if s != total:
            fail(f"{where}: {key} deltas sum to {s}, cell total is "
                 f"{total}")
    return len(samples)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace")
    ap.add_argument("--json", help="sweep report to cross-check")
    ap.add_argument("--cell", type=int, default=0,
                    help="report cell the trace belongs to (default 0)")
    args = ap.parse_args()

    blocks = parse_blocks(args.trace)
    seqs = [b["seq"] for b in blocks]
    for prev, cur in zip(blocks, blocks[1:]):
        if cur["seq"] <= prev["seq"]:
            fail(f"block seq {cur['seq']} (line {cur['line']}) not "
                 f"after seq {prev['seq']}")
    for b in blocks:
        check_block(b)

    nmem = sum(1 for b in blocks if "xlate" in b["stages"])
    nsamples = 0
    if args.json:
        nsamples = check_report(blocks, args.json, args.cell)
    extra = f", {nsamples} interval samples" if nsamples else ""
    print(f"check_pipeview: OK -- {len(blocks)} instructions "
          f"(seq {seqs[0]}..{seqs[-1]}), {nmem} memory ops{extra}")


if __name__ == "__main__":
    main()
