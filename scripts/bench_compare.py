#!/usr/bin/env python3
"""Compare fresh benchmark reports against committed baselines.

CI regenerates BENCH_micro.json (google-benchmark format) and
BENCH_fig5.json (sweep format, bench/harness.cc) and calls this script
once per report with the committed baseline extracted via
`git show HEAD:BENCH_*.json`. The run fails when the fresh report is
more than --tolerance slower than the baseline.

Metrics:
  sweep reports: sum of cells[].wall_seconds. Cells are timed with
    CLOCK_THREAD_CPUTIME_ID, so the sum is stable across --jobs.
    Sampled cells (the ones carrying a "sampling" block, DESIGN.md
    §14) measure a different amount of work than exact cells, so they
    are excluded from the gate and their CPU seconds — plus the
    sweep's shared checkpointing cost, summary.sampling_prep_seconds —
    are reported separately.
  google-benchmark reports: geometric mean of per-benchmark real_time
    ratios (fresh/baseline), matched by name; unmatched names are
    ignored with a note.

When both sweep reports carry --self-profile phase timers, the
per-phase host-second sums are printed alongside the per-design
breakdown so a delta can be attributed to a pipeline stage; they are
informational and never gate the run.

A missing or unreadable baseline passes with a note (first run, or a
baseline predating this gate). A host/compiler mismatch in the meta
block downgrades failure to a warning: cross-machine wall-clock deltas
are not actionable.
"""

import argparse
import json
import math
import os
import sys


def load(path):
    """Parse a JSON report; missing or empty files return None
    (ci.sh materializes absent baselines as empty files)."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError:
        return None
    if not text.strip():
        return None
    try:
        return json.loads(text)
    except ValueError as e:
        sys.exit(f"bench_compare: {path} is not valid JSON: {e}")


def meta_of(report):
    """Metadata dict for either report flavour (may be empty)."""
    if "context" in report:        # google-benchmark
        ctx = report["context"]
        return {
            "host": ctx.get("host", ctx.get("host_name", "")),
            "compiler": ctx.get("compiler", ""),
            "build_type": ctx.get("build_type", ""),
            "git_sha": ctx.get("git_sha", ""),
        }
    return dict(report.get("meta", {}))


def sweep_metric(report):
    """Thread-CPU seconds of the *exact* sweep cells (the gated
    metric), or None for a non-sweep report."""
    cells = report.get("cells")
    if cells is None:
        return None
    return sum(c.get("wall_seconds", 0.0) for c in cells
               if "sampling" not in c)


def sampled_cost(report):
    """(cpu_seconds, cell_count) of the sampled cells, with the
    sweep-shared checkpointing cost folded in. Informational only."""
    cells = [c for c in report.get("cells", []) if "sampling" in c]
    cost = sum(c.get("wall_seconds", 0.0) for c in cells)
    if cells:
        cost += report.get("summary", {}).get(
            "sampling_prep_seconds", 0.0)
    return cost, len(cells)


def design_deltas(fresh, base):
    """Per-design CPU-second sums and their fresh/baseline ratios.

    Aggregating the cells by design shows *where* a speedup or
    regression lives: an optimization that only helps high-IPC designs
    (many quiescent cycles to skip) shows up as uneven ratios even
    when the total is within tolerance. Returns a list of
    (design, base_s, fresh_s, ratio) sorted by design order of the
    fresh report, plus the names present in only one report (a design
    added or removed since the baseline was committed) so they are
    called out instead of silently dropped. A zero baseline sum yields
    ratio None (nothing meaningful to divide by).
    """
    def by_design(report):
        out = {}
        order = []
        for c in report.get("cells", []):
            d = c.get("design")
            if d is None or "sampling" in c:
                continue
            if d not in out:
                order.append(d)
            out[d] = out.get(d, 0.0) + c.get("wall_seconds", 0.0)
        return out, order

    ft, order = by_design(fresh)
    bt, border = by_design(base)
    rows = []
    for d in order:
        if d in bt:
            r = ft[d] / bt[d] if bt[d] > 0 else None
            rows.append((d, bt[d], ft[d], r))
    only_fresh = [d for d in order if d not in bt]
    only_base = [d for d in border if d not in ft]
    return rows, only_fresh, only_base


def phase_deltas(fresh, base):
    """Per-phase host-second sums from --self-profile cells.

    When both reports were produced with --self-profile, the per-cell
    phase timers say *which pipeline stage* a wall-clock delta lives
    in (e.g. a slowdown confined to walk_s points at the page-walk
    path). Returns (phase, base_s, fresh_s) rows ordered by fresh
    cost, or [] when either report lacks the profile. Informational
    only -- host phase timers are noisy and never gate the run.
    """
    def by_phase(report):
        out = {}
        for c in report.get("cells", []):
            for k, v in c.get("self_profile", {}).items():
                if k != "total_s":
                    out[k] = out.get(k, 0.0) + v
        return out

    ft, bt = by_phase(fresh), by_phase(base)
    if not ft or not bt:
        return []
    phases = sorted(set(ft) & set(bt), key=lambda k: -ft[k])
    return [(p, bt[p], ft[p]) for p in phases]


def micro_ratio(fresh, base):
    """Geomean of per-benchmark real_time ratios (fresh/baseline)."""
    def times(report):
        out = {}
        for b in report.get("benchmarks", []):
            if b.get("run_type", "iteration") == "iteration":
                out[b["name"]] = float(b["real_time"])
        return out

    ft, bt = times(fresh), times(base)
    common = sorted(set(ft) & set(bt))
    if not common:
        return None, 0
    skipped = (set(ft) | set(bt)) - set(common)
    if skipped:
        print(f"bench_compare: note: {len(skipped)} benchmark(s) "
              "present in only one report were skipped")
    # A zero time on either side has no meaningful ratio (a stub run,
    # or a clock too coarse for the benchmark); geomean the rest. When
    # nothing survives, there is no metric at all -- let the caller
    # pass rather than divide by zero.
    logs = [math.log(ft[n] / bt[n]) for n in common
            if bt[n] > 0 and ft[n] > 0]
    if len(logs) < len(common):
        print(f"bench_compare: note: {len(common) - len(logs)} "
              "benchmark(s) with zero time were skipped")
    if not logs:
        return None, 0
    return math.exp(sum(logs) / len(logs)), len(logs)


def self_test():
    """Exercise the degenerate-report guards with synthetic inputs.

    These are the shapes that have crashed (or silently lied) in the
    past: an all-zero baseline dividing the micro geomean by zero, a
    zero fresh design total dividing the per-design speedup by zero,
    and designs present in only one report vanishing without a trace.
    ci.sh runs this before trusting the gate.
    """
    def micro(times):
        return {"benchmarks": [
            {"name": n, "run_type": "iteration", "real_time": t}
            for n, t in times.items()]}

    def sweep(cells):
        return {"cells": [
            {"design": d, "wall_seconds": s} for d, s in cells]}

    # All-zero baseline times: no usable ratios, not a crash.
    r, n = micro_ratio(micro({"a": 1.0, "b": 2.0}),
                       micro({"a": 0.0, "b": 0.0}))
    assert r is None and n == 0, (r, n)

    # Mixed zero/non-zero: geomean over the usable pair only.
    r, n = micro_ratio(micro({"a": 2.0, "b": 1.0}),
                       micro({"a": 1.0, "b": 0.0}))
    assert n == 1 and abs(r - 2.0) < 1e-9, (r, n)

    # Zero fresh design total: ratio None, not a divide-by-zero.
    rows, of, ob = design_deltas(sweep([("T4", 0.0)]),
                                 sweep([("T4", 0.0)]))
    assert rows == [("T4", 0.0, 0.0, None)], rows

    # One-sided designs are reported, not dropped.
    rows, of, ob = design_deltas(sweep([("T4", 1.0), ("PCAX", 1.0)]),
                                 sweep([("T4", 2.0), ("M8", 1.0)]))
    assert rows == [("T4", 2.0, 1.0, 0.5)], rows
    assert of == ["PCAX"] and ob == ["M8"], (of, ob)

    # Sampled cells are excluded from the gated metric and the
    # per-design rows, and their cost (plus the shared checkpointing
    # seconds) is accounted separately.
    mixed = {
        "cells": [
            {"design": "T4", "wall_seconds": 2.0},
            {"design": "T4", "wall_seconds": 0.3,
             "sampling": {"intervals": 4}},
        ],
        "summary": {"sampling_prep_seconds": 0.1},
    }
    assert sweep_metric(mixed) == 2.0, sweep_metric(mixed)
    cost, n = sampled_cost(mixed)
    assert n == 1 and abs(cost - 0.4) < 1e-9, (cost, n)
    rows, of, ob = design_deltas(mixed, mixed)
    assert rows == [("T4", 2.0, 2.0, 1.0)], rows

    # An all-exact report charges no sampling cost.
    cost, n = sampled_cost(sweep([("T4", 1.0)]))
    assert (cost, n) == (0.0, 0), (cost, n)

    print("bench_compare: self-test OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("fresh", nargs="?", help="freshly generated report")
    ap.add_argument("baseline", nargs="?",
                    help="committed baseline report")
    ap.add_argument("--tolerance", type=float,
                    default=float(os.environ.get(
                        "HBAT_BENCH_TOLERANCE", "0.10")),
                    help="max allowed slowdown fraction "
                         "(default 0.10, or $HBAT_BENCH_TOLERANCE)")
    ap.add_argument("--label", default=None,
                    help="report name used in the summary line")
    ap.add_argument("--self-test", action="store_true",
                    help="run the degenerate-input guards and exit")
    args = ap.parse_args()
    if args.self_test:
        self_test()
        return
    if args.fresh is None or args.baseline is None:
        ap.error("fresh and baseline reports are required")
    label = args.label or os.path.basename(args.fresh)

    fresh = load(args.fresh)
    if fresh is None:
        sys.exit(f"bench_compare: cannot read fresh report "
                 f"{args.fresh}")
    base = load(args.baseline)
    if base is None:
        print(f"bench_compare: {label}: no baseline at "
              f"{args.baseline} -- PASS (nothing to compare)")
        return

    fm, bm = meta_of(fresh), meta_of(base)
    comparable = True
    for key in ("host", "compiler"):
        if fm.get(key) and bm.get(key) and fm[key] != bm[key]:
            print(f"bench_compare: warning: {key} differs "
                  f"({bm[key]!r} -> {fm[key]!r}); "
                  "result is advisory only")
            comparable = False

    fresh_sweep = sweep_metric(fresh)
    if fresh_sweep is not None:
        for name, rep in (("fresh", fresh), ("baseline", base)):
            cost, n = sampled_cost(rep)
            if n:
                print(f"bench_compare:   note: {name} has {n} sampled "
                      f"cell(s) costing {cost:.2f}s CPU incl. "
                      "checkpointing (excluded from the gate)")
        base_sweep = sweep_metric(base)
        if base_sweep is None or base_sweep <= 0:
            print(f"bench_compare: {label}: baseline has no usable "
                  "exact cell timings -- PASS")
            return
        if fresh_sweep <= 0:
            print(f"bench_compare: {label}: fresh report has no "
                  "exact cells -- PASS (nothing gated)")
            return
        ratio = fresh_sweep / base_sweep
        detail = (f"{fresh_sweep:.2f}s vs baseline {base_sweep:.2f}s "
                  f"(sum of per-cell CPU seconds)")
        rows, only_fresh, only_base = design_deltas(fresh, base)
        for d, b, f, r in rows:
            speed = f"{1.0 / r:5.2f}x" if r else "  n/a"
            print(f"bench_compare:   {d:>4}: {b:6.2f}s -> {f:6.2f}s "
                  f"({speed})")
        if only_fresh:
            print("bench_compare:   note: no baseline for "
                  f"{', '.join(only_fresh)} (new since baseline)")
        if only_base:
            print("bench_compare:   note: baseline-only designs "
                  f"{', '.join(only_base)} were skipped")
        for p, b, f in phase_deltas(fresh, base):
            print(f"bench_compare:   phase {p:>10}: {b:6.2f}s -> "
                  f"{f:6.2f}s")
    else:
        ratio, n = micro_ratio(fresh, base)
        if ratio is None:
            print(f"bench_compare: {label}: no common benchmarks "
                  "with the baseline -- PASS")
            return
        detail = f"geomean real_time ratio over {n} benchmarks"

    speedup = 1.0 / ratio if ratio > 0 else float("inf")
    sha = bm.get("git_sha", "")[:12] or "unknown"
    print(f"bench_compare: {label}: {speedup:.2f}x vs baseline "
          f"{sha} ({detail})")

    if ratio > 1.0 + args.tolerance:
        msg = (f"bench_compare: {label}: FAIL -- "
               f"{(ratio - 1.0) * 100:.1f}% slower than baseline "
               f"(tolerance {args.tolerance * 100:.0f}%)")
        if not comparable:
            print(msg + " [suppressed: metadata mismatch]")
            return
        sys.exit(msg)
    print(f"bench_compare: {label}: OK "
          f"(within {args.tolerance * 100:.0f}% tolerance)")


if __name__ == "__main__":
    main()
