# Turn a text file into a C++ raw-string-literal include fragment:
#   cmake -DIN=<file> -DOUT=<file.inc> -P embed_file.cmake
# The output is spliced into a char-array initializer via #include, so
# shipped configs (configs/table2.conf) travel inside the binary and a
# build stays runnable from any working directory.
file(READ "${IN}" text)
if (text MATCHES [[\)hbatconf"]])
    message(FATAL_ERROR "${IN} contains the raw-string delimiter")
endif ()
file(WRITE "${OUT}" "R\"hbatconf(${text})hbatconf\"\n")
