#!/usr/bin/env python3
"""Cross-check hbat_footprint's static predictions against hbat_prof.

Reads the static report (hbat_footprint --json) and the dynamic
per-PC translation profile (hbat_prof --json) for the same workloads
and scale, and gates three correspondences per (program, design):

1. hot-PC overlap: at least --min-overlap of the top dynamic miss PCs
   must be statically flagged as "hot" (irregular / irregular-bounded
   pattern, or strided spanning >= 2 pages). The analyzer claims it
   knows where the misses come from; this checks it.

2. page-run behavior: a strided reference that stays on one page for R
   consecutive accesses should miss at most ~requests/R times. Gated
   with a 4x allowance for capacity misses from cross-interference:
   misses <= max(--miss-slack, 4 * requests / page_run), checked for
   refs with page_run >= 16 and requests >= --min-requests.

3. working set: the dynamic touched-page count must not exceed the
   static estimate by more than 10% + 8 pages (the estimate unions
   whole data segments, so it may legitimately sit above).

Exit 0 when every check passes, 1 otherwise (one line per failure).
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def static_hot_pcs(fp):
    """PCs the analyzer predicts to concentrate translation misses."""
    hot = set()
    for r in fp["refs"]:
        if r["pattern"] in ("irregular", "irregular-bounded"):
            hot.add(r["pc"])
        elif r["pattern"] == "strided" and r["span_pages"] >= 2:
            hot.add(r["pc"])
    return hot


def check_cell(name, fp, cell, args, fail):
    profile = cell.get("pc_profile", [])
    label = f"{name}/{cell['design']}"

    # 1. Hot-PC overlap.
    ranked = sorted(profile, key=lambda e: -e["misses"])
    top = [e["pc"] for e in ranked if e["misses"] > 0][: args.top]
    if top:
        hot = static_hot_pcs(fp)
        overlap = sum(1 for pc in top if pc in hot) / len(top)
        if overlap < args.min_overlap:
            fail(
                f"{label}: hot-PC overlap {overlap:.2f} < "
                f"{args.min_overlap:.2f} (dynamic top {top}, "
                f"static hot {sorted(hot)})"
            )
        else:
            print(
                f"{label}: hot-PC overlap {overlap:.2f} "
                f"({len(top)} dynamic miss PC(s))"
            )

    # 2. Strided refs miss at most ~once per page run.
    requests = {e["pc"]: e["requests"] for e in profile}
    misses = {e["pc"]: e["misses"] for e in profile}
    checked = 0
    for r in fp["refs"]:
        if r["pattern"] != "strided" or r["page_run"] < 16:
            continue
        req = requests.get(r["pc"], 0)
        if req < args.min_requests:
            continue
        allowed = max(args.miss_slack, 4 * req / r["page_run"])
        if misses[r["pc"]] > allowed:
            fail(
                f"{label}: {r['pc']} stride {r['stride']} page_run "
                f"{r['page_run']:.0f}: {misses[r['pc']]} misses > "
                f"allowed {allowed:.0f} ({req} requests)"
            )
        checked += 1
    print(f"{label}: {checked} strided ref(s) within page-run bound")

    # 3. Working set vs touched pages.
    touched = cell["stats"].get("vm.touched_pages")
    if touched is not None:
        limit = fp["est_pages"] * 1.10 + 8
        if touched > limit:
            fail(
                f"{label}: dynamic touched {touched:.0f} pages > "
                f"static estimate {fp['est_pages']} (+10%+8 slack)"
            )
        else:
            print(
                f"{label}: touched {touched:.0f} pages vs static "
                f"estimate {fp['est_pages']}"
                f"{'' if fp['est_pages_exact'] else '+'}"
            )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--static", required=True, help="hbat_footprint --json")
    ap.add_argument("--dynamic", required=True, help="hbat_prof --json")
    ap.add_argument("--top", type=int, default=5, help="dynamic hot PCs to check")
    ap.add_argument("--min-overlap", type=float, default=0.5)
    ap.add_argument("--min-requests", type=int, default=1000)
    ap.add_argument("--miss-slack", type=int, default=8)
    args = ap.parse_args()

    static = load(args.static)
    dynamic = load(args.dynamic)

    footprints = {}
    for p in static["programs"]:
        # One footprint per page size; cells pick theirs by page_bytes.
        footprints[p["name"]] = {
            f["page_bytes"]: f for f in p["footprints"]
        }

    failures = []
    fail = lambda msg: failures.append(msg)

    page_bytes = dynamic.get("config", {}).get("page_bytes", 4096)
    cells = 0
    for cell in dynamic["cells"]:
        name = cell["program"]
        if name not in footprints:
            continue
        fp = footprints[name].get(page_bytes)
        if fp is None:
            fail(f"{name}: no static footprint at {page_bytes}-byte pages")
            continue
        check_cell(name, fp, cell, args, fail)
        cells += 1

    if cells == 0:
        fail("no (program, design) cells matched between the reports")
    for msg in failures:
        print(f"FAIL: {msg}", file=sys.stderr)
    print(f"footprint_check: {cells} cell(s), {len(failures)} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
