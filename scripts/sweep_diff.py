#!/usr/bin/env python3
"""Assert two sweep JSON reports describe the same simulated run.

Used by CI's skip-invariance stage: a fig5 sweep with idle-cycle
skipping on and the same sweep with --no-skip must agree on every
simulated number. Only host-side fields may differ:

  meta.*            (timestamps, flags, git state)
  wall_seconds      (per cell and sweep total)
  config.*          (the skip flag itself lives here)
  pipe.skipped_cycles / pipe.skip_length
                    (the skip accounting, zero with skipping off)
  self_profile      (host-time phase timers; inherently noisy)

Everything else — every cell's ipc, cycles, committed count, every
entry of its stats dict, and (when present) its interval_stats
time-series and pc_profile — must be exactly equal, or the script
exits non-zero listing the first mismatches.

Usage: sweep_diff.py A.json B.json [--max-report N]
"""

import argparse
import json
import sys

# Key suffixes that may legitimately differ between the two runs.
HOST_SIDE_STATS = ("pipe.skipped_cycles", "pipe.skip_length")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"sweep_diff: cannot read {path}: {e}")


def diff_cells(a, b, errors):
    ca, cb = a.get("cells", []), b.get("cells", [])
    if len(ca) != len(cb):
        errors.append(f"cell count differs: {len(ca)} vs {len(cb)}")
        return
    for i, (x, y) in enumerate(zip(ca, cb)):
        where = f"cell {i} ({x.get('program')}, {x.get('design')})"
        for key in ("program", "design", "ipc", "norm_ipc", "cycles",
                    "committed"):
            if x.get(key) != y.get(key):
                errors.append(f"{where}: {key}: "
                              f"{x.get(key)!r} != {y.get(key)!r}")
        sx = dict(x.get("stats", {}))
        sy = dict(y.get("stats", {}))
        for skip in HOST_SIDE_STATS:
            sx.pop(skip, None)
            sy.pop(skip, None)
        for k in sorted(set(sx) | set(sy)):
            if sx.get(k) != sy.get(k):
                errors.append(f"{where}: stats[{k}]: "
                              f"{sx.get(k)!r} != {sy.get(k)!r}")
        diff_intervals(x, y, where, errors)
        if x.get("pc_profile") != y.get("pc_profile"):
            errors.append(f"{where}: pc_profile differs")
        # self_profile (host seconds) is intentionally not compared.


def diff_intervals(x, y, where, errors):
    """The interval time-series must match sample by sample.

    The skip stats are excluded inside each sample too: a span is
    *detected* at the same cycle in both modes, but detection and
    accounting are host-side bookkeeping, consistent with excluding
    the end-of-run counters.
    """
    ia, ib = x.get("interval_stats"), y.get("interval_stats")
    if (ia is None) != (ib is None):
        errors.append(f"{where}: interval_stats present in only one")
        return
    if ia is None:
        return
    if ia.get("interval") != ib.get("interval"):
        errors.append(f"{where}: interval_stats.interval: "
                      f"{ia.get('interval')!r} != "
                      f"{ib.get('interval')!r}")
    sa, sb = ia.get("samples", []), ib.get("samples", [])
    if len(sa) != len(sb):
        errors.append(f"{where}: interval sample count: "
                      f"{len(sa)} vs {len(sb)}")
        return
    for j, (p, q) in enumerate(zip(sa, sb)):
        if p.get("cycle") != q.get("cycle"):
            errors.append(f"{where}: sample {j} cycle: "
                          f"{p.get('cycle')!r} != {q.get('cycle')!r}")
        dp = dict(p.get("stats", {}))
        dq = dict(q.get("stats", {}))
        for skip in HOST_SIDE_STATS:
            dp.pop(skip, None)
            dq.pop(skip, None)
        for k in sorted(set(dp) | set(dq)):
            if dp.get(k) != dq.get(k):
                errors.append(f"{where}: sample {j} "
                              f"(cycle {p.get('cycle')}) stats[{k}]: "
                              f"{dp.get(k)!r} != {dq.get(k)!r}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("a")
    ap.add_argument("b")
    ap.add_argument("--max-report", type=int, default=20,
                    help="max mismatches to print (default 20)")
    args = ap.parse_args()

    a, b = load(args.a), load(args.b)
    errors = []
    sa = dict(a.get("summary", {}))
    sb = dict(b.get("summary", {}))
    sa.pop("wall_seconds", None)
    sb.pop("wall_seconds", None)
    if sa != sb:
        errors.append(f"summary differs: {sa!r} != {sb!r}")
    for key in ("designs", "programs"):
        if a.get(key) != b.get(key):
            errors.append(f"{key} differ: "
                          f"{a.get(key)!r} != {b.get(key)!r}")
    diff_cells(a, b, errors)

    if errors:
        print(f"sweep_diff: {args.a} vs {args.b}: "
              f"{len(errors)} mismatch(es)")
        for e in errors[:args.max_report]:
            print(f"sweep_diff:   {e}")
        if len(errors) > args.max_report:
            print(f"sweep_diff:   ... and "
                  f"{len(errors) - args.max_report} more")
        sys.exit(1)
    ncells = len(a.get("cells", []))
    print(f"sweep_diff: OK -- {ncells} cells identical "
          "(ignoring meta, wall_seconds, and skip accounting)")


if __name__ == "__main__":
    main()
