#!/usr/bin/env python3
"""Assert two sweep JSON reports describe the same simulated run.

Used by CI's skip-invariance stage: a fig5 sweep with idle-cycle
skipping on and the same sweep with --no-skip must agree on every
simulated number. Only host-side fields may differ:

  meta.*            (timestamps, flags, git state)
  wall_seconds      (per cell and sweep total)
  config.*          (the skip flag itself lives here)
  pipe.skipped_cycles / pipe.skip_length
                    (the skip accounting, zero with skipping off)
  self_profile      (host-time phase timers; inherently noisy)

Everything else — every cell's ipc, cycles, committed count, every
entry of its stats dict, and (when present) its interval_stats
time-series, pc_profile, and sampling block — must be exactly equal,
or the script exits non-zero listing the first mismatches. For a
sampled report the per-cell sampling.cpu_seconds and the summary's
sampling_prep_seconds are host-side timings and are ignored, like
wall_seconds.

With --tolerance R the comparison switches to the sampled-accuracy
gate (CI's sampling stage): A is the exact reference, B the sampled
estimate. Each cell's committed instruction count must still match
exactly (it comes from the functional pass, not the estimator), but
ipc may differ by a relative R and the xlate miss rate
(xlate.misses / xlate.requests) by an absolute R; nothing else is
compared. --min-speedup X additionally requires A's per-cell CPU
seconds to sum to at least X times B's (plus B's checkpointing cost,
summary.sampling_prep_seconds).

Usage: sweep_diff.py A.json B.json [--max-report N]
                     [--tolerance R] [--min-speedup X]
"""

import argparse
import json
import sys

# Key suffixes that may legitimately differ between the two runs.
HOST_SIDE_STATS = ("pipe.skipped_cycles", "pipe.skip_length")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"sweep_diff: cannot read {path}: {e}")


def diff_cells(a, b, errors):
    ca, cb = a.get("cells", []), b.get("cells", [])
    if len(ca) != len(cb):
        errors.append(f"cell count differs: {len(ca)} vs {len(cb)}")
        return
    for i, (x, y) in enumerate(zip(ca, cb)):
        where = f"cell {i} ({x.get('program')}, {x.get('design')})"
        for key in ("program", "design", "ipc", "norm_ipc", "cycles",
                    "committed"):
            if x.get(key) != y.get(key):
                errors.append(f"{where}: {key}: "
                              f"{x.get(key)!r} != {y.get(key)!r}")
        sx = dict(x.get("stats", {}))
        sy = dict(y.get("stats", {}))
        for skip in HOST_SIDE_STATS:
            sx.pop(skip, None)
            sy.pop(skip, None)
        for k in sorted(set(sx) | set(sy)):
            if sx.get(k) != sy.get(k):
                errors.append(f"{where}: stats[{k}]: "
                              f"{sx.get(k)!r} != {sy.get(k)!r}")
        diff_intervals(x, y, where, errors)
        if x.get("pc_profile") != y.get("pc_profile"):
            errors.append(f"{where}: pc_profile differs")
        diff_sampling(x, y, where, errors)
        # self_profile (host seconds) is intentionally not compared.


def diff_sampling(x, y, where, errors):
    """The sampling block (estimates, CIs, interval counts) must be
    bit-identical — it is part of the determinism guarantee — except
    its host-side cpu_seconds timing."""
    ma, mb = x.get("sampling"), y.get("sampling")
    if (ma is None) != (mb is None):
        errors.append(f"{where}: sampling present in only one")
        return
    if ma is None:
        return
    da, db = dict(ma), dict(mb)
    da.pop("cpu_seconds", None)
    db.pop("cpu_seconds", None)
    for k in sorted(set(da) | set(db)):
        if da.get(k) != db.get(k):
            errors.append(f"{where}: sampling[{k}]: "
                          f"{da.get(k)!r} != {db.get(k)!r}")


def miss_rate(cell):
    stats = cell.get("stats", {})
    return stats.get("xlate.misses", 0) / max(
        stats.get("xlate.requests", 0), 1)


def diff_cells_tolerant(a, b, tol, errors):
    """The sampled-accuracy gate: B's estimates must track A's exact
    numbers within the tolerance (see module docstring)."""
    ca, cb = a.get("cells", []), b.get("cells", [])
    if len(ca) != len(cb):
        errors.append(f"cell count differs: {len(ca)} vs {len(cb)}")
        return
    for i, (x, y) in enumerate(zip(ca, cb)):
        where = f"cell {i} ({x.get('program')}, {x.get('design')})"
        for key in ("program", "design", "committed"):
            if x.get(key) != y.get(key):
                errors.append(f"{where}: {key}: "
                              f"{x.get(key)!r} != {y.get(key)!r}")
        ipc_a, ipc_b = x.get("ipc", 0), y.get("ipc", 0)
        if abs(ipc_b - ipc_a) > tol * abs(ipc_a):
            errors.append(
                f"{where}: ipc {ipc_b:.4f} vs exact {ipc_a:.4f} "
                f"({abs(ipc_b - ipc_a) / abs(ipc_a):.2%} > {tol:.2%})")
        mr_a, mr_b = miss_rate(x), miss_rate(y)
        if abs(mr_b - mr_a) > tol:
            errors.append(
                f"{where}: miss rate {mr_b:.4f} vs exact {mr_a:.4f} "
                f"(|diff| {abs(mr_b - mr_a):.4f} > {tol})")


def check_speedup(a, b, min_speedup, errors):
    cost_a = sum(c.get("wall_seconds", 0) for c in a.get("cells", []))
    cost_b = sum(c.get("wall_seconds", 0) for c in b.get("cells", []))
    cost_b += b.get("summary", {}).get("sampling_prep_seconds", 0)
    if cost_b <= 0:
        errors.append("sampled report has no CPU-seconds accounting")
        return 0.0
    speedup = cost_a / cost_b
    if speedup < min_speedup:
        errors.append(
            f"speedup {speedup:.2f}x < required {min_speedup}x "
            f"(exact {cost_a:.2f}s vs sampled {cost_b:.2f}s CPU)")
    return speedup


def diff_intervals(x, y, where, errors):
    """The interval time-series must match sample by sample.

    The skip stats are excluded inside each sample too: a span is
    *detected* at the same cycle in both modes, but detection and
    accounting are host-side bookkeeping, consistent with excluding
    the end-of-run counters.
    """
    ia, ib = x.get("interval_stats"), y.get("interval_stats")
    if (ia is None) != (ib is None):
        errors.append(f"{where}: interval_stats present in only one")
        return
    if ia is None:
        return
    if ia.get("interval") != ib.get("interval"):
        errors.append(f"{where}: interval_stats.interval: "
                      f"{ia.get('interval')!r} != "
                      f"{ib.get('interval')!r}")
    sa, sb = ia.get("samples", []), ib.get("samples", [])
    if len(sa) != len(sb):
        errors.append(f"{where}: interval sample count: "
                      f"{len(sa)} vs {len(sb)}")
        return
    for j, (p, q) in enumerate(zip(sa, sb)):
        if p.get("cycle") != q.get("cycle"):
            errors.append(f"{where}: sample {j} cycle: "
                          f"{p.get('cycle')!r} != {q.get('cycle')!r}")
        dp = dict(p.get("stats", {}))
        dq = dict(q.get("stats", {}))
        for skip in HOST_SIDE_STATS:
            dp.pop(skip, None)
            dq.pop(skip, None)
        for k in sorted(set(dp) | set(dq)):
            if dp.get(k) != dq.get(k):
                errors.append(f"{where}: sample {j} "
                              f"(cycle {p.get('cycle')}) stats[{k}]: "
                              f"{dp.get(k)!r} != {dq.get(k)!r}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("a")
    ap.add_argument("b")
    ap.add_argument("--max-report", type=int, default=20,
                    help="max mismatches to print (default 20)")
    ap.add_argument("--tolerance", type=float, default=None,
                    help="sampled-accuracy mode: relative ipc / "
                         "absolute miss-rate tolerance")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="require A's cell CPU seconds to be at least "
                         "this multiple of B's (needs --tolerance)")
    args = ap.parse_args()
    if args.min_speedup is not None and args.tolerance is None:
        ap.error("--min-speedup requires --tolerance")

    a, b = load(args.a), load(args.b)
    errors = []
    speedup = None
    if args.tolerance is not None:
        for key in ("designs", "programs"):
            if a.get(key) != b.get(key):
                errors.append(f"{key} differ: "
                              f"{a.get(key)!r} != {b.get(key)!r}")
        diff_cells_tolerant(a, b, args.tolerance, errors)
        if args.min_speedup is not None:
            speedup = check_speedup(a, b, args.min_speedup, errors)
    else:
        sa = dict(a.get("summary", {}))
        sb = dict(b.get("summary", {}))
        for host_side in ("wall_seconds", "sampling_prep_seconds"):
            sa.pop(host_side, None)
            sb.pop(host_side, None)
        if sa != sb:
            errors.append(f"summary differs: {sa!r} != {sb!r}")
        for key in ("designs", "programs"):
            if a.get(key) != b.get(key):
                errors.append(f"{key} differ: "
                              f"{a.get(key)!r} != {b.get(key)!r}")
        diff_cells(a, b, errors)

    if errors:
        print(f"sweep_diff: {args.a} vs {args.b}: "
              f"{len(errors)} mismatch(es)")
        for e in errors[:args.max_report]:
            print(f"sweep_diff:   {e}")
        if len(errors) > args.max_report:
            print(f"sweep_diff:   ... and "
                  f"{len(errors) - args.max_report} more")
        sys.exit(1)
    ncells = len(a.get("cells", []))
    if args.tolerance is not None:
        extra = (f", speedup {speedup:.2f}x"
                 if speedup is not None else "")
        print(f"sweep_diff: OK -- {ncells} cells within "
              f"{args.tolerance:.2%} of exact{extra}")
    else:
        print(f"sweep_diff: OK -- {ncells} cells identical "
              "(ignoring meta, wall_seconds, and skip accounting)")


if __name__ == "__main__":
    main()
