#!/usr/bin/env python3
"""Assert two sweep JSON reports describe the same simulated run.

Used by CI's skip-invariance stage: a fig5 sweep with idle-cycle
skipping on and the same sweep with --no-skip must agree on every
simulated number. Only host-side fields may differ:

  meta.*            (timestamps, flags, git state)
  wall_seconds      (per cell and sweep total)
  config.*          (the skip flag itself lives here)
  pipe.skipped_cycles / pipe.skip_length
                    (the skip accounting, zero with skipping off)

Everything else — every cell's ipc, cycles, committed count, and every
entry of its stats dict — must be exactly equal, or the script exits
non-zero listing the first mismatches.

Usage: sweep_diff.py A.json B.json [--max-report N]
"""

import argparse
import json
import sys

# Key suffixes that may legitimately differ between the two runs.
HOST_SIDE_STATS = ("pipe.skipped_cycles", "pipe.skip_length")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"sweep_diff: cannot read {path}: {e}")


def diff_cells(a, b, errors):
    ca, cb = a.get("cells", []), b.get("cells", [])
    if len(ca) != len(cb):
        errors.append(f"cell count differs: {len(ca)} vs {len(cb)}")
        return
    for i, (x, y) in enumerate(zip(ca, cb)):
        where = f"cell {i} ({x.get('program')}, {x.get('design')})"
        for key in ("program", "design", "ipc", "norm_ipc", "cycles",
                    "committed"):
            if x.get(key) != y.get(key):
                errors.append(f"{where}: {key}: "
                              f"{x.get(key)!r} != {y.get(key)!r}")
        sx = dict(x.get("stats", {}))
        sy = dict(y.get("stats", {}))
        for skip in HOST_SIDE_STATS:
            sx.pop(skip, None)
            sy.pop(skip, None)
        for k in sorted(set(sx) | set(sy)):
            if sx.get(k) != sy.get(k):
                errors.append(f"{where}: stats[{k}]: "
                              f"{sx.get(k)!r} != {sy.get(k)!r}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("a")
    ap.add_argument("b")
    ap.add_argument("--max-report", type=int, default=20,
                    help="max mismatches to print (default 20)")
    args = ap.parse_args()

    a, b = load(args.a), load(args.b)
    errors = []
    sa = dict(a.get("summary", {}))
    sb = dict(b.get("summary", {}))
    sa.pop("wall_seconds", None)
    sb.pop("wall_seconds", None)
    if sa != sb:
        errors.append(f"summary differs: {sa!r} != {sb!r}")
    for key in ("designs", "programs"):
        if a.get(key) != b.get(key):
            errors.append(f"{key} differ: "
                          f"{a.get(key)!r} != {b.get(key)!r}")
    diff_cells(a, b, errors)

    if errors:
        print(f"sweep_diff: {args.a} vs {args.b}: "
              f"{len(errors)} mismatch(es)")
        for e in errors[:args.max_report]:
            print(f"sweep_diff:   {e}")
        if len(errors) > args.max_report:
            print(f"sweep_diff:   ... and "
                  f"{len(errors) - args.max_report} more")
        sys.exit(1)
    ncells = len(a.get("cells", []))
    print(f"sweep_diff: OK -- {ncells} cells identical "
          "(ignoring meta, wall_seconds, and skip accounting)")


if __name__ == "__main__":
    main()
