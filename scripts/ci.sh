#!/bin/sh
# CI entry point:
#  1. tier-1 verify: configure (warnings-as-errors), build, and run the
#     full test suite;
#  2. static analysis: hbat_lint over every built-in workload and every
#     Table 2 design (fails on any warning-or-worse diagnostic), plus
#     clang-tidy over the compilation database when the tool exists;
#     in between, the config frontend gate: every shipped sweep spec
#     lints clean, the deliberately-broken one fails, and a fig5 cell
#     driven from configs/table2.conf diffs identical (modulo meta)
#     against the enum-driven factory path;
#  3. rebuild the unit tests with ASan+UBSan and run them again;
#  4. rebuild with ThreadSanitizer and run the parallel-harness tests
#     (JobPool semantics + jobs-count determinism) under it;
#  5. emit the micro-benchmark report (BENCH_micro.json) and a timed
#     parallel fig5 sweep (BENCH_fig5.json, with per-cell and total
#     wall_seconds) so runs can be archived and diffed across commits;
#  6. skip-invariance gate: rerun the fig5 sweep with --no-skip and
#     require every simulated number to match (sweep_diff.py ignores
#     only meta, wall_seconds, and the skip counters); then the
#     modern-engines determinism gate: the shipped modern_engines
#     campaign must produce identical numbers at --jobs 1 vs --jobs 8
#     and with idle skipping off;
#  7. sampled-simulation gate (DESIGN.md §14): a scale-1.0 fig5
#     compress sweep in sampled mode must track the exact sweep within
#     2% relative IPC and 2 percentage points of TLB miss rate on
#     every design while costing at least 5x less CPU, and the
#     estimates must be bit-identical across --jobs;
#  8. observability gate: run one fig5 cell with --pipeview and
#     --interval-stats, validate the trace grammar and the interval
#     time-series against the report (check_pipeview.py), and require
#     the time-series to survive a --no-skip rerun unchanged;
#  9. bench-compare gate: diff the fresh reports against the committed
#     baselines (git show HEAD:BENCH_*.json) and fail when the fresh
#     run is more than $HBAT_BENCH_TOLERANCE slower (default 10%).
#     After an intentional perf change, commit the regenerated
#     BENCH_*.json files together with the code (see EXPERIMENTS.md).
# Run from the repository root. Honors $CMAKE_GENERATOR if set.
set -eu

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

echo "== tier 1: build (-Werror) + tests =="
cmake -B build -S . -DHBAT_WERROR=ON -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== static analysis: program + design lint =="
# Lints every built-in workload at both register budgets, plus every
# Table 2 design and the default configuration; exits non-zero on any
# warning-or-worse diagnostic.
./build/bench/hbat_lint
./build/bench/hbat_lint --budget 8,8

echo "== config frontend: sweep-spec lint + factory equivalence =="
# The shipped specs must lint clean; the deliberately-broken one must
# fail (exit 1) -- proving the gate rejects bad campaigns. Then the
# config-driven path has to reproduce the built-in Table 2 factory:
# a fig5 cell from configs/table2.conf diffs byte-identical (modulo
# meta/timing) against the enum-driven binary.
./build/bench/hbat_lint --sweep configs/table2.conf
./build/bench/hbat_lint --sweep configs/campaign_example.conf
./build/bench/hbat_lint --sweep configs/tlbsize_issue.conf
./build/bench/hbat_lint --sweep configs/modern_engines.conf
if ./build/bench/hbat_lint --sweep configs/broken_example.conf; then
    echo "broken_example.conf unexpectedly passed lint" >&2
    exit 1
fi
CONFDIR=$(mktemp -d)
./build/bench/fig5_baseline --scale 0.02 --program compress \
    --json "$CONFDIR/builtin.json" > /dev/null
./build/bench/hbat_sweep --sweep configs/table2.conf --scale 0.02 \
    --program compress --json "$CONFDIR/conf.json" > /dev/null
python3 scripts/sweep_diff.py "$CONFDIR/builtin.json" \
    "$CONFDIR/conf.json"
rm -rf "$CONFDIR"

echo "== static analysis: clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
    git ls-files 'src/*.cc' 'bench/*.cc' 'examples/*.cc' |
        xargs clang-tidy -p build --quiet
else
    echo "clang-tidy not installed; skipping"
fi

echo "== static analysis: cppcheck =="
if command -v cppcheck >/dev/null 2>&1; then
    # Style/performance/portability over the whole tree; the inline
    # suppressions list covers the deliberate idioms cppcheck cannot
    # see through (see .cppcheck-suppressions).
    cppcheck --enable=warning,performance,portability --error-exitcode=1 \
        --std=c++20 --inline-suppr -I src -I . --quiet \
        --suppressions-list=.cppcheck-suppressions \
        src bench examples
else
    echo "cppcheck not installed; skipping"
fi

echo "== footprint: static vs dynamic cross-check =="
# The stride/footprint analyzer's predictions must match what the
# simulator measures: hot miss PCs statically flagged, strided refs
# missing at most ~once per page run, working-set estimate consistent
# with the touched-page count (scripts/footprint_check.py). Two
# workloads with opposite characters: compress (hash-probe irregular)
# and tomcatv (fully static loop nest).
FPDIR=$(mktemp -d)
./build/bench/hbat_footprint --program compress --program tomcatv \
    --design T4 --scale 0.05 --json "$FPDIR/static.json" > /dev/null
./build/bench/hbat_prof --program compress --program tomcatv \
    --design T4 --scale 0.05 --pc-profile 20 \
    --json "$FPDIR/dynamic.json" > /dev/null
python3 scripts/footprint_check.py --static "$FPDIR/static.json" \
    --dynamic "$FPDIR/dynamic.json"
# One expanded fig5 cell driven from the shipped sweep spec: the
# footprint CLI must expand the same columns the harness runs.
./build/bench/hbat_footprint --sweep configs/table2.conf \
    --program compress --json "$FPDIR/sweep.json" > /dev/null
rm -rf "$FPDIR"

echo "== sanitizers: ASan + UBSan =="
cmake -B build-san -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build build-san -j "$JOBS"
ctest --test-dir build-san --output-on-failure -j "$JOBS"

echo "== thread sanitizer: parallel harness =="
cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
cmake --build build-tsan -j "$JOBS" --target hbat_tests
./build-tsan/tests/hbat_tests \
    --gtest_filter='JobPool.*:ParallelFor.*:ParallelDeterminism.*'

echo "== micro benchmarks =="
./build/bench/micro_tlb \
    --benchmark_out=BENCH_micro.json --benchmark_out_format=json \
    --benchmark_min_time=0.05

echo "== timed parallel sweep (BENCH_fig5.json) =="
# No `time` prefix: it is not a dash builtin, and the report already
# records per-cell and total wall_seconds.
./build/bench/fig5_baseline --scale 0.05 --jobs "$JOBS" \
    --json BENCH_fig5.json > /dev/null

echo "== skip invariance: sweep with and without idle skipping =="
# The idle-cycle skip must not change any simulated number: rerun the
# same sweep with --no-skip and diff the reports, ignoring only meta,
# wall_seconds, and the skip counters themselves (see DESIGN.md §9).
SKIPDIR=$(mktemp -d)
./build/bench/fig5_baseline --scale 0.05 --jobs "$JOBS" --no-skip \
    --json "$SKIPDIR/fig5_noskip.json" > /dev/null
python3 scripts/sweep_diff.py BENCH_fig5.json \
    "$SKIPDIR/fig5_noskip.json"
rm -rf "$SKIPDIR"

echo "== modern engines: jobs + skip determinism =="
# PCAX and Victima ride the fig5 skip-invariance gate above (the
# sweep covers the full 15-design catalogue); this stage additionally
# pins the shipped modern_engines campaign: identical simulated
# numbers at --jobs 1 vs --jobs 8, and with idle skipping disabled.
MODDIR=$(mktemp -d)
./build/bench/hbat_sweep --sweep configs/modern_engines.conf \
    --scale 0.02 --program compress --jobs 1 \
    --json "$MODDIR/j1.json" > /dev/null
./build/bench/hbat_sweep --sweep configs/modern_engines.conf \
    --scale 0.02 --program compress --jobs 8 \
    --json "$MODDIR/j8.json" > /dev/null
python3 scripts/sweep_diff.py "$MODDIR/j1.json" "$MODDIR/j8.json"
./build/bench/hbat_sweep --sweep configs/modern_engines.conf \
    --scale 0.02 --program compress --jobs "$JOBS" --no-skip \
    --json "$MODDIR/noskip.json" > /dev/null
python3 scripts/sweep_diff.py "$MODDIR/j1.json" "$MODDIR/noskip.json"
rm -rf "$MODDIR"

echo "== sampled simulation: accuracy + speedup gate =="
# The interval sampler's contract (DESIGN.md §14): at evaluation scale
# the sampled estimate of every design column must stay within 2%
# relative IPC error and 2 percentage points of absolute TLB miss-rate
# error of the exact run, for at least 5x less per-cell CPU (the
# shared checkpointing cost counts against the sampled side). The
# knobs here are the tuned defaults documented in EXPERIMENTS.md.
SAMPDIR=$(mktemp -d)
./build/bench/fig5_baseline --scale 1.0 --program compress \
    --jobs "$JOBS" --json "$SAMPDIR/exact.json" > /dev/null
./build/bench/fig5_baseline --scale 1.0 --program compress \
    --jobs "$JOBS" --sample 400000 --warmup 20000 --measure 10000 \
    --json "$SAMPDIR/sampled.json" > /dev/null
python3 scripts/sweep_diff.py "$SAMPDIR/exact.json" \
    "$SAMPDIR/sampled.json" --tolerance 0.02 --min-speedup 5
# Sampled estimates (totals, CIs, interval counts) are covered by the
# same determinism guarantee as exact runs: identical at any --jobs.
./build/bench/fig5_baseline --scale 1.0 --program compress \
    --jobs 1 --sample 400000 --warmup 20000 --measure 10000 \
    --json "$SAMPDIR/sampled_j1.json" > /dev/null
python3 scripts/sweep_diff.py "$SAMPDIR/sampled.json" \
    "$SAMPDIR/sampled_j1.json"
rm -rf "$SAMPDIR"

echo "== observability: pipeview trace + interval time-series =="
# One fig5 cell with the full observability surface on: the O3PipeView
# trace must parse and be self-consistent, the interval time-series
# must tile the run exactly, and the series must be identical with
# idle skipping off (boundary-crossing skipped spans are split across
# intervals -- see DESIGN.md §10).
OBSDIR=$(mktemp -d)
./build/bench/hbat_prof --program compress --design T4 --scale 0.05 \
    --interval-stats 2000 --pc-profile 20 --self-profile \
    --pipeview "$OBSDIR/pipeview.out" \
    --json "$OBSDIR/prof.json" > /dev/null
python3 scripts/check_pipeview.py "$OBSDIR/pipeview.out" \
    --json "$OBSDIR/prof.json"
./build/bench/hbat_prof --program compress --design T4 --scale 0.05 \
    --interval-stats 2000 --pc-profile 20 --no-skip \
    --json "$OBSDIR/prof_noskip.json" > /dev/null
python3 scripts/sweep_diff.py "$OBSDIR/prof.json" \
    "$OBSDIR/prof_noskip.json"
rm -rf "$OBSDIR"

echo "== bench compare vs committed baselines =="
# Prove the gate's degenerate-input guards before trusting it, then
# snapshot the HEAD baselines: the regeneration above already
# overwrote the working-tree copies.
python3 scripts/bench_compare.py --self-test
BASEDIR=$(mktemp -d)
trap 'rm -rf "$BASEDIR"' EXIT
git show HEAD:BENCH_micro.json > "$BASEDIR/BENCH_micro.json" \
    2>/dev/null || true
git show HEAD:BENCH_fig5.json > "$BASEDIR/BENCH_fig5.json" \
    2>/dev/null || true
python3 scripts/bench_compare.py BENCH_micro.json \
    "$BASEDIR/BENCH_micro.json" --label micro
python3 scripts/bench_compare.py BENCH_fig5.json \
    "$BASEDIR/BENCH_fig5.json" --label fig5

echo "CI OK"
