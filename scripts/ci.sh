#!/bin/sh
# CI entry point:
#  1. tier-1 verify: configure, build, and run the full test suite;
#  2. rebuild the unit tests with ASan+UBSan and run them again;
#  3. emit the micro-benchmark report (BENCH_micro.json) so runs can
#     be archived and diffed across commits.
# Run from the repository root. Honors $CMAKE_GENERATOR if set.
set -eu

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

echo "== tier 1: build + tests =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizers: ASan + UBSan =="
cmake -B build-san -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build build-san -j "$JOBS"
ctest --test-dir build-san --output-on-failure -j "$JOBS"

echo "== micro benchmarks =="
./build/bench/micro_tlb \
    --benchmark_out=BENCH_micro.json --benchmark_out_format=json \
    --benchmark_min_time=0.05

echo "CI OK"
