#!/bin/sh
# CI entry point:
#  1. tier-1 verify: configure, build, and run the full test suite;
#  2. rebuild the unit tests with ASan+UBSan and run them again;
#  3. rebuild with ThreadSanitizer and run the parallel-harness tests
#     (JobPool semantics + jobs-count determinism) under it;
#  4. emit the micro-benchmark report (BENCH_micro.json) and a timed
#     parallel fig5 sweep (BENCH_fig5.json, with per-cell and total
#     wall_seconds) so runs can be archived and diffed across commits.
# Run from the repository root. Honors $CMAKE_GENERATOR if set.
set -eu

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

echo "== tier 1: build + tests =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo "== sanitizers: ASan + UBSan =="
cmake -B build-san -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
cmake --build build-san -j "$JOBS"
ctest --test-dir build-san --output-on-failure -j "$JOBS"

echo "== thread sanitizer: parallel harness =="
cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all"
cmake --build build-tsan -j "$JOBS" --target hbat_tests
./build-tsan/tests/hbat_tests \
    --gtest_filter='JobPool.*:ParallelFor.*:ParallelDeterminism.*'

echo "== micro benchmarks =="
./build/bench/micro_tlb \
    --benchmark_out=BENCH_micro.json --benchmark_out_format=json \
    --benchmark_min_time=0.05

echo "== timed parallel sweep (BENCH_fig5.json) =="
time ./build/bench/fig5_baseline --scale 0.05 --jobs "$JOBS" \
    --json BENCH_fig5.json > /dev/null

echo "CI OK"
