# Empty dependencies file for hbat_tlb.
# This may be replaced when dependencies are built.
