file(REMOVE_RECURSE
  "CMakeFiles/hbat_tlb.dir/cost_model.cc.o"
  "CMakeFiles/hbat_tlb.dir/cost_model.cc.o.d"
  "CMakeFiles/hbat_tlb.dir/design.cc.o"
  "CMakeFiles/hbat_tlb.dir/design.cc.o.d"
  "CMakeFiles/hbat_tlb.dir/interleaved.cc.o"
  "CMakeFiles/hbat_tlb.dir/interleaved.cc.o.d"
  "CMakeFiles/hbat_tlb.dir/multilevel.cc.o"
  "CMakeFiles/hbat_tlb.dir/multilevel.cc.o.d"
  "CMakeFiles/hbat_tlb.dir/multiported.cc.o"
  "CMakeFiles/hbat_tlb.dir/multiported.cc.o.d"
  "CMakeFiles/hbat_tlb.dir/pretranslation.cc.o"
  "CMakeFiles/hbat_tlb.dir/pretranslation.cc.o.d"
  "CMakeFiles/hbat_tlb.dir/tlb_array.cc.o"
  "CMakeFiles/hbat_tlb.dir/tlb_array.cc.o.d"
  "libhbat_tlb.a"
  "libhbat_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbat_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
