
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tlb/cost_model.cc" "src/tlb/CMakeFiles/hbat_tlb.dir/cost_model.cc.o" "gcc" "src/tlb/CMakeFiles/hbat_tlb.dir/cost_model.cc.o.d"
  "/root/repo/src/tlb/design.cc" "src/tlb/CMakeFiles/hbat_tlb.dir/design.cc.o" "gcc" "src/tlb/CMakeFiles/hbat_tlb.dir/design.cc.o.d"
  "/root/repo/src/tlb/interleaved.cc" "src/tlb/CMakeFiles/hbat_tlb.dir/interleaved.cc.o" "gcc" "src/tlb/CMakeFiles/hbat_tlb.dir/interleaved.cc.o.d"
  "/root/repo/src/tlb/multilevel.cc" "src/tlb/CMakeFiles/hbat_tlb.dir/multilevel.cc.o" "gcc" "src/tlb/CMakeFiles/hbat_tlb.dir/multilevel.cc.o.d"
  "/root/repo/src/tlb/multiported.cc" "src/tlb/CMakeFiles/hbat_tlb.dir/multiported.cc.o" "gcc" "src/tlb/CMakeFiles/hbat_tlb.dir/multiported.cc.o.d"
  "/root/repo/src/tlb/pretranslation.cc" "src/tlb/CMakeFiles/hbat_tlb.dir/pretranslation.cc.o" "gcc" "src/tlb/CMakeFiles/hbat_tlb.dir/pretranslation.cc.o.d"
  "/root/repo/src/tlb/tlb_array.cc" "src/tlb/CMakeFiles/hbat_tlb.dir/tlb_array.cc.o" "gcc" "src/tlb/CMakeFiles/hbat_tlb.dir/tlb_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/hbat_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/kasm/CMakeFiles/hbat_kasm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hbat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hbat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
