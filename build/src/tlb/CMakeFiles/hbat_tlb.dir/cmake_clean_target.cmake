file(REMOVE_RECURSE
  "libhbat_tlb.a"
)
