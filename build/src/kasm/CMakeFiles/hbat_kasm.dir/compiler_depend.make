# Empty compiler generated dependencies file for hbat_kasm.
# This may be replaced when dependencies are built.
