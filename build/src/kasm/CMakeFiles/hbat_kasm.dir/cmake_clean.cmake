file(REMOVE_RECURSE
  "CMakeFiles/hbat_kasm.dir/code_builder.cc.o"
  "CMakeFiles/hbat_kasm.dir/code_builder.cc.o.d"
  "CMakeFiles/hbat_kasm.dir/emitter.cc.o"
  "CMakeFiles/hbat_kasm.dir/emitter.cc.o.d"
  "CMakeFiles/hbat_kasm.dir/program_builder.cc.o"
  "CMakeFiles/hbat_kasm.dir/program_builder.cc.o.d"
  "CMakeFiles/hbat_kasm.dir/regalloc.cc.o"
  "CMakeFiles/hbat_kasm.dir/regalloc.cc.o.d"
  "libhbat_kasm.a"
  "libhbat_kasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbat_kasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
