
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kasm/code_builder.cc" "src/kasm/CMakeFiles/hbat_kasm.dir/code_builder.cc.o" "gcc" "src/kasm/CMakeFiles/hbat_kasm.dir/code_builder.cc.o.d"
  "/root/repo/src/kasm/emitter.cc" "src/kasm/CMakeFiles/hbat_kasm.dir/emitter.cc.o" "gcc" "src/kasm/CMakeFiles/hbat_kasm.dir/emitter.cc.o.d"
  "/root/repo/src/kasm/program_builder.cc" "src/kasm/CMakeFiles/hbat_kasm.dir/program_builder.cc.o" "gcc" "src/kasm/CMakeFiles/hbat_kasm.dir/program_builder.cc.o.d"
  "/root/repo/src/kasm/regalloc.cc" "src/kasm/CMakeFiles/hbat_kasm.dir/regalloc.cc.o" "gcc" "src/kasm/CMakeFiles/hbat_kasm.dir/regalloc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/hbat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hbat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
