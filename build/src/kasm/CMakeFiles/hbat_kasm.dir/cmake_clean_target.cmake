file(REMOVE_RECURSE
  "libhbat_kasm.a"
)
