# Empty compiler generated dependencies file for hbat_vm.
# This may be replaced when dependencies are built.
