file(REMOVE_RECURSE
  "libhbat_vm.a"
)
