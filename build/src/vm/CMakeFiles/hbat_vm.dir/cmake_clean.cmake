file(REMOVE_RECURSE
  "CMakeFiles/hbat_vm.dir/address_space.cc.o"
  "CMakeFiles/hbat_vm.dir/address_space.cc.o.d"
  "CMakeFiles/hbat_vm.dir/page_table.cc.o"
  "CMakeFiles/hbat_vm.dir/page_table.cc.o.d"
  "libhbat_vm.a"
  "libhbat_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbat_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
