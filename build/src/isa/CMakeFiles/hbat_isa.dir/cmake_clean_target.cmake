file(REMOVE_RECURSE
  "libhbat_isa.a"
)
