# Empty dependencies file for hbat_isa.
# This may be replaced when dependencies are built.
