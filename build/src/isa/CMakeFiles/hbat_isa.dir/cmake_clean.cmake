file(REMOVE_RECURSE
  "CMakeFiles/hbat_isa.dir/isa.cc.o"
  "CMakeFiles/hbat_isa.dir/isa.cc.o.d"
  "libhbat_isa.a"
  "libhbat_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbat_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
