file(REMOVE_RECURSE
  "CMakeFiles/hbat_sim.dir/at_model.cc.o"
  "CMakeFiles/hbat_sim.dir/at_model.cc.o.d"
  "CMakeFiles/hbat_sim.dir/simulator.cc.o"
  "CMakeFiles/hbat_sim.dir/simulator.cc.o.d"
  "libhbat_sim.a"
  "libhbat_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbat_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
