file(REMOVE_RECURSE
  "libhbat_sim.a"
)
