# Empty compiler generated dependencies file for hbat_sim.
# This may be replaced when dependencies are built.
