file(REMOVE_RECURSE
  "CMakeFiles/hbat_common.dir/log.cc.o"
  "CMakeFiles/hbat_common.dir/log.cc.o.d"
  "CMakeFiles/hbat_common.dir/stats.cc.o"
  "CMakeFiles/hbat_common.dir/stats.cc.o.d"
  "libhbat_common.a"
  "libhbat_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbat_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
