# Empty dependencies file for hbat_common.
# This may be replaced when dependencies are built.
