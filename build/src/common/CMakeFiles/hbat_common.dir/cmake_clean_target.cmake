file(REMOVE_RECURSE
  "libhbat_common.a"
)
