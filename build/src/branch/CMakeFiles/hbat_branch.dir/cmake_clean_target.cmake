file(REMOVE_RECURSE
  "libhbat_branch.a"
)
