file(REMOVE_RECURSE
  "CMakeFiles/hbat_branch.dir/gap_predictor.cc.o"
  "CMakeFiles/hbat_branch.dir/gap_predictor.cc.o.d"
  "libhbat_branch.a"
  "libhbat_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbat_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
