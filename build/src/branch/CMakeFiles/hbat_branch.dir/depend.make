# Empty dependencies file for hbat_branch.
# This may be replaced when dependencies are built.
