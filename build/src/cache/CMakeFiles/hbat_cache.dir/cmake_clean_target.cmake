file(REMOVE_RECURSE
  "libhbat_cache.a"
)
