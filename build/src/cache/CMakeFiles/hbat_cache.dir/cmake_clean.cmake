file(REMOVE_RECURSE
  "CMakeFiles/hbat_cache.dir/cache_model.cc.o"
  "CMakeFiles/hbat_cache.dir/cache_model.cc.o.d"
  "libhbat_cache.a"
  "libhbat_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbat_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
