# Empty compiler generated dependencies file for hbat_cache.
# This may be replaced when dependencies are built.
