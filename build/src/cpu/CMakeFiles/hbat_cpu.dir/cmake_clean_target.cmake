file(REMOVE_RECURSE
  "libhbat_cpu.a"
)
