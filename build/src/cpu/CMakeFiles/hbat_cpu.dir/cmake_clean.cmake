file(REMOVE_RECURSE
  "CMakeFiles/hbat_cpu.dir/fu_pool.cc.o"
  "CMakeFiles/hbat_cpu.dir/fu_pool.cc.o.d"
  "CMakeFiles/hbat_cpu.dir/func_core.cc.o"
  "CMakeFiles/hbat_cpu.dir/func_core.cc.o.d"
  "CMakeFiles/hbat_cpu.dir/pipeline.cc.o"
  "CMakeFiles/hbat_cpu.dir/pipeline.cc.o.d"
  "libhbat_cpu.a"
  "libhbat_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbat_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
