# Empty dependencies file for hbat_cpu.
# This may be replaced when dependencies are built.
