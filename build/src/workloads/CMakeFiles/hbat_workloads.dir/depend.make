# Empty dependencies file for hbat_workloads.
# This may be replaced when dependencies are built.
