
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/w_compress.cc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_compress.cc.o" "gcc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_compress.cc.o.d"
  "/root/repo/src/workloads/w_doduc.cc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_doduc.cc.o" "gcc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_doduc.cc.o.d"
  "/root/repo/src/workloads/w_espresso.cc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_espresso.cc.o" "gcc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_espresso.cc.o.d"
  "/root/repo/src/workloads/w_gcc.cc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_gcc.cc.o" "gcc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_gcc.cc.o.d"
  "/root/repo/src/workloads/w_ghostscript.cc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_ghostscript.cc.o" "gcc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_ghostscript.cc.o.d"
  "/root/repo/src/workloads/w_mpeg.cc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_mpeg.cc.o" "gcc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_mpeg.cc.o.d"
  "/root/repo/src/workloads/w_perl.cc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_perl.cc.o" "gcc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_perl.cc.o.d"
  "/root/repo/src/workloads/w_tfft.cc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_tfft.cc.o" "gcc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_tfft.cc.o.d"
  "/root/repo/src/workloads/w_tomcatv.cc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_tomcatv.cc.o" "gcc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_tomcatv.cc.o.d"
  "/root/repo/src/workloads/w_xlisp.cc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_xlisp.cc.o" "gcc" "src/workloads/CMakeFiles/hbat_workloads.dir/w_xlisp.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/hbat_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/hbat_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kasm/CMakeFiles/hbat_kasm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hbat_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hbat_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
