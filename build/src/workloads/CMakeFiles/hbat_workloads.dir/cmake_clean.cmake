file(REMOVE_RECURSE
  "CMakeFiles/hbat_workloads.dir/w_compress.cc.o"
  "CMakeFiles/hbat_workloads.dir/w_compress.cc.o.d"
  "CMakeFiles/hbat_workloads.dir/w_doduc.cc.o"
  "CMakeFiles/hbat_workloads.dir/w_doduc.cc.o.d"
  "CMakeFiles/hbat_workloads.dir/w_espresso.cc.o"
  "CMakeFiles/hbat_workloads.dir/w_espresso.cc.o.d"
  "CMakeFiles/hbat_workloads.dir/w_gcc.cc.o"
  "CMakeFiles/hbat_workloads.dir/w_gcc.cc.o.d"
  "CMakeFiles/hbat_workloads.dir/w_ghostscript.cc.o"
  "CMakeFiles/hbat_workloads.dir/w_ghostscript.cc.o.d"
  "CMakeFiles/hbat_workloads.dir/w_mpeg.cc.o"
  "CMakeFiles/hbat_workloads.dir/w_mpeg.cc.o.d"
  "CMakeFiles/hbat_workloads.dir/w_perl.cc.o"
  "CMakeFiles/hbat_workloads.dir/w_perl.cc.o.d"
  "CMakeFiles/hbat_workloads.dir/w_tfft.cc.o"
  "CMakeFiles/hbat_workloads.dir/w_tfft.cc.o.d"
  "CMakeFiles/hbat_workloads.dir/w_tomcatv.cc.o"
  "CMakeFiles/hbat_workloads.dir/w_tomcatv.cc.o.d"
  "CMakeFiles/hbat_workloads.dir/w_xlisp.cc.o"
  "CMakeFiles/hbat_workloads.dir/w_xlisp.cc.o.d"
  "CMakeFiles/hbat_workloads.dir/workloads.cc.o"
  "CMakeFiles/hbat_workloads.dir/workloads.cc.o.d"
  "libhbat_workloads.a"
  "libhbat_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbat_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
