file(REMOVE_RECURSE
  "libhbat_workloads.a"
)
