# Empty dependencies file for disassemble.
# This may be replaced when dependencies are built.
