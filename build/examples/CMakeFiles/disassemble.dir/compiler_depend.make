# Empty compiler generated dependencies file for disassemble.
# This may be replaced when dependencies are built.
