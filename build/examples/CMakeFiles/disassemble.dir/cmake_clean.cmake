file(REMOVE_RECURSE
  "CMakeFiles/disassemble.dir/disassemble.cpp.o"
  "CMakeFiles/disassemble.dir/disassemble.cpp.o.d"
  "disassemble"
  "disassemble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disassemble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
