
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_at_model.cc" "tests/CMakeFiles/hbat_tests.dir/test_at_model.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_at_model.cc.o.d"
  "/root/repo/tests/test_bitops.cc" "tests/CMakeFiles/hbat_tests.dir/test_bitops.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_bitops.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/hbat_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_consistency.cc" "tests/CMakeFiles/hbat_tests.dir/test_consistency.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_consistency.cc.o.d"
  "/root/repo/tests/test_cost_model.cc" "tests/CMakeFiles/hbat_tests.dir/test_cost_model.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_cost_model.cc.o.d"
  "/root/repo/tests/test_emitter.cc" "tests/CMakeFiles/hbat_tests.dir/test_emitter.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_emitter.cc.o.d"
  "/root/repo/tests/test_engines.cc" "tests/CMakeFiles/hbat_tests.dir/test_engines.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_engines.cc.o.d"
  "/root/repo/tests/test_func_core.cc" "tests/CMakeFiles/hbat_tests.dir/test_func_core.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_func_core.cc.o.d"
  "/root/repo/tests/test_harness.cc" "tests/CMakeFiles/hbat_tests.dir/test_harness.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_harness.cc.o.d"
  "/root/repo/tests/test_inorder.cc" "tests/CMakeFiles/hbat_tests.dir/test_inorder.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_inorder.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/hbat_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_pipeline.cc" "tests/CMakeFiles/hbat_tests.dir/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_pipeline.cc.o.d"
  "/root/repo/tests/test_predictor.cc" "tests/CMakeFiles/hbat_tests.dir/test_predictor.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_predictor.cc.o.d"
  "/root/repo/tests/test_regalloc.cc" "tests/CMakeFiles/hbat_tests.dir/test_regalloc.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_regalloc.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/hbat_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/hbat_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/hbat_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_tlb_array.cc" "tests/CMakeFiles/hbat_tests.dir/test_tlb_array.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_tlb_array.cc.o.d"
  "/root/repo/tests/test_vm.cc" "tests/CMakeFiles/hbat_tests.dir/test_vm.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_vm.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/hbat_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/hbat_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/hbat_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hbat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hbat_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hbat_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/hbat_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/hbat_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hbat_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/kasm/CMakeFiles/hbat_kasm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hbat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hbat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
