# Empty compiler generated dependencies file for hbat_tests.
# This may be replaced when dependencies are built.
