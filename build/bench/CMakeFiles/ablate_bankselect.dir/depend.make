# Empty dependencies file for ablate_bankselect.
# This may be replaced when dependencies are built.
