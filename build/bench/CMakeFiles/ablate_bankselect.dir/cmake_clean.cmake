file(REMOVE_RECURSE
  "CMakeFiles/ablate_bankselect.dir/ablate_bankselect.cc.o"
  "CMakeFiles/ablate_bankselect.dir/ablate_bankselect.cc.o.d"
  "ablate_bankselect"
  "ablate_bankselect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_bankselect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
