file(REMOVE_RECURSE
  "CMakeFiles/ablate_piggyback.dir/ablate_piggyback.cc.o"
  "CMakeFiles/ablate_piggyback.dir/ablate_piggyback.cc.o.d"
  "ablate_piggyback"
  "ablate_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
