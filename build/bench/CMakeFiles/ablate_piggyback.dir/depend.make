# Empty dependencies file for ablate_piggyback.
# This may be replaced when dependencies are built.
