# Empty dependencies file for fig7_inorder.
# This may be replaced when dependencies are built.
