file(REMOVE_RECURSE
  "CMakeFiles/fig7_inorder.dir/fig7_inorder.cc.o"
  "CMakeFiles/fig7_inorder.dir/fig7_inorder.cc.o.d"
  "fig7_inorder"
  "fig7_inorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_inorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
