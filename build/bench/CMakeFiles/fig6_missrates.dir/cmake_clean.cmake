file(REMOVE_RECURSE
  "CMakeFiles/fig6_missrates.dir/fig6_missrates.cc.o"
  "CMakeFiles/fig6_missrates.dir/fig6_missrates.cc.o.d"
  "fig6_missrates"
  "fig6_missrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_missrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
