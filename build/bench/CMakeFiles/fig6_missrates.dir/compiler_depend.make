# Empty compiler generated dependencies file for fig6_missrates.
# This may be replaced when dependencies are built.
