file(REMOVE_RECURSE
  "CMakeFiles/fig5_baseline.dir/fig5_baseline.cc.o"
  "CMakeFiles/fig5_baseline.dir/fig5_baseline.cc.o.d"
  "fig5_baseline"
  "fig5_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
