# Empty compiler generated dependencies file for ablate_l1tlb.
# This may be replaced when dependencies are built.
