file(REMOVE_RECURSE
  "CMakeFiles/ablate_l1tlb.dir/ablate_l1tlb.cc.o"
  "CMakeFiles/ablate_l1tlb.dir/ablate_l1tlb.cc.o.d"
  "ablate_l1tlb"
  "ablate_l1tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_l1tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
