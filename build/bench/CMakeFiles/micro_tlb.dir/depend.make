# Empty dependencies file for micro_tlb.
# This may be replaced when dependencies are built.
