# Empty compiler generated dependencies file for cost_table.
# This may be replaced when dependencies are built.
