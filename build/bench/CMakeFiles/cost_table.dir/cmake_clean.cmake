file(REMOVE_RECURSE
  "CMakeFiles/cost_table.dir/cost_table.cc.o"
  "CMakeFiles/cost_table.dir/cost_table.cc.o.d"
  "cost_table"
  "cost_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
