file(REMOVE_RECURSE
  "libhbat_bench_harness.a"
)
