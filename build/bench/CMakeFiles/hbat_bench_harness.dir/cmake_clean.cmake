file(REMOVE_RECURSE
  "CMakeFiles/hbat_bench_harness.dir/harness.cc.o"
  "CMakeFiles/hbat_bench_harness.dir/harness.cc.o.d"
  "libhbat_bench_harness.a"
  "libhbat_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbat_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
