# Empty compiler generated dependencies file for hbat_bench_harness.
# This may be replaced when dependencies are built.
