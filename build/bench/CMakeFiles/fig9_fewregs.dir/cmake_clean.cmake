file(REMOVE_RECURSE
  "CMakeFiles/fig9_fewregs.dir/fig9_fewregs.cc.o"
  "CMakeFiles/fig9_fewregs.dir/fig9_fewregs.cc.o.d"
  "fig9_fewregs"
  "fig9_fewregs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_fewregs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
