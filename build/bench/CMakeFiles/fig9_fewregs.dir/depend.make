# Empty dependencies file for fig9_fewregs.
# This may be replaced when dependencies are built.
