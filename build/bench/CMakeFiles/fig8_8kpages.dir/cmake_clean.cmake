file(REMOVE_RECURSE
  "CMakeFiles/fig8_8kpages.dir/fig8_8kpages.cc.o"
  "CMakeFiles/fig8_8kpages.dir/fig8_8kpages.cc.o.d"
  "fig8_8kpages"
  "fig8_8kpages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_8kpages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
