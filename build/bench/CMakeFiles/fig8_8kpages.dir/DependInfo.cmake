
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_8kpages.cc" "bench/CMakeFiles/fig8_8kpages.dir/fig8_8kpages.cc.o" "gcc" "bench/CMakeFiles/fig8_8kpages.dir/fig8_8kpages.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/hbat_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbat_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/hbat_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/hbat_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/branch/CMakeFiles/hbat_branch.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/hbat_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/hbat_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hbat_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/kasm/CMakeFiles/hbat_kasm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/hbat_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hbat_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
