# Empty dependencies file for fig8_8kpages.
# This may be replaced when dependencies are built.
