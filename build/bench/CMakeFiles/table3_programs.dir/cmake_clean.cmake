file(REMOVE_RECURSE
  "CMakeFiles/table3_programs.dir/table3_programs.cc.o"
  "CMakeFiles/table3_programs.dir/table3_programs.cc.o.d"
  "table3_programs"
  "table3_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
