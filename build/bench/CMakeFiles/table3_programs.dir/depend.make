# Empty dependencies file for table3_programs.
# This may be replaced when dependencies are built.
