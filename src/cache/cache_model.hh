/**
 * @file
 * Set-associative cache timing model.
 *
 * Models Table 1's caches: 32 KB, 2-way set-associative, 32-byte
 * blocks, write-back/write-allocate, 6-cycle miss latency, with a
 * non-blocking interface. Port arbitration (the D-cache's four ports)
 * is the pipeline's job; this class tracks tags, replacement, and
 * per-access readiness. Outstanding misses are unlimited (the paper
 * allows one per physical register, far more than ever in flight
 * here); accesses to a block already being filled merge with the
 * in-flight fill instead of starting a new one.
 */

#ifndef HBAT_CACHE_CACHE_MODEL_HH
#define HBAT_CACHE_CACHE_MODEL_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "obs/stats.hh"

namespace hbat::cache
{

/** Geometry and timing of one cache. */
struct CacheConfig
{
    uint32_t sizeBytes = 32 * 1024;
    uint32_t assoc = 2;
    uint32_t blockBytes = 32;
    Cycle missLatency = 6;
};

/** Cache event counters. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t mshrMerges = 0;    ///< misses merged with in-flight fills
    uint64_t writebacks = 0;    ///< dirty blocks evicted
};

/** Register every CacheStats counter (plus hit/miss rates). */
void registerStats(obs::StatRegistry &reg, const std::string &prefix,
                   const CacheStats &s);

/** One access's outcome. */
struct CacheAccess
{
    bool hit = false;
    /** Cycle the data is available (now for hits, fill time for
     *  misses); the pipeline adds the functional-unit latency. */
    Cycle ready = 0;
};

/** LRU set-associative write-back cache. */
class CacheModel
{
  public:
    explicit CacheModel(const CacheConfig &config);

    /**
     * Access physical address @p pa at cycle @p now.
     * Misses allocate (write-allocate) and schedule the fill.
     */
    CacheAccess access(PAddr pa, bool write, Cycle now);

    /** Probe tags without updating any state. */
    bool contains(PAddr pa) const;

    /**
     * Drop the block holding @p pa, if resident, without a writeback
     * (the block's contents are dead — TLB consistency removing a
     * spilled translation, or a victim promoted back to its TLB).
     * Returns true when a block was actually removed.
     */
    bool invalidateBlock(PAddr pa);

    /**
     * Next-event query: the earliest in-flight fill completing after
     * @p now, or kCycleNever when no fill is outstanding. Fills are
     * scheduled at a fixed latency from a nondecreasing clock, so
     * completion times arrive in order and a deque front suffices.
     */
    Cycle nextFillCycle(Cycle now);

    /**
     * Bulk-account @p n repeated hits to the resident block holding
     * @p pa — exactly equivalent to n access(pa, false, ...) hit calls
     * ending at cycle @p last_use. Used by the pipeline's idle-cycle
     * skipping for the fetch pattern that re-reads one I-cache block
     * every cycle while the fetch queue is full: the block's stats and
     * LRU timestamp advance as if each cycle had been simulated.
     */
    void recordRepeatHits(PAddr pa, uint64_t n, Cycle last_use);

    /** Invalidate everything (used between benchmark runs). */
    void flush();

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

  private:
    struct Line
    {
        uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        Cycle lastUse = 0;
    };

    uint64_t blockAddr(PAddr pa) const;
    uint64_t setIndex(uint64_t block) const;

    CacheConfig config_;
    uint32_t numSets;
    std::vector<Line> lines;    ///< numSets x assoc, row-major
    /** Blocks currently being filled -> fill-complete cycle. */
    std::unordered_map<uint64_t, Cycle> pendingFills;
    /** Fill-complete cycles in scheduling order (nondecreasing), for
     *  nextFillCycle(). May retain times whose map entry was evicted
     *  early — a conservative (never late) next-event answer. */
    std::deque<Cycle> pendingFillTimes_;
    CacheStats stats_;
};

} // namespace hbat::cache

#endif // HBAT_CACHE_CACHE_MODEL_HH
