#include "cache/cache_model.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace hbat::cache
{

CacheModel::CacheModel(const CacheConfig &config)
    : config_(config)
{
    hbat_assert(isPowerOfTwo(config.blockBytes), "block size not 2^k");
    hbat_assert(config.sizeBytes % (config.blockBytes * config.assoc) ==
                    0,
                "cache size not divisible by way size");
    numSets = config.sizeBytes / (config.blockBytes * config.assoc);
    hbat_assert(isPowerOfTwo(numSets), "set count not 2^k");
    lines.resize(size_t(numSets) * config.assoc);
}

uint64_t
CacheModel::blockAddr(PAddr pa) const
{
    return pa / config_.blockBytes;
}

uint64_t
CacheModel::setIndex(uint64_t block) const
{
    return block & (numSets - 1);
}

CacheAccess
CacheModel::access(PAddr pa, bool write, Cycle now)
{
    ++stats_.accesses;
    const uint64_t block = blockAddr(pa);
    const uint64_t set = setIndex(block);
    Line *const base = &lines[set * config_.assoc];

    // Hit?
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == block) {
            line.lastUse = now;
            line.dirty |= write;
            // A block still being filled is usable only when the fill
            // completes (an MSHR merge).
            auto it = pendingFills.find(block);
            if (it != pendingFills.end() && it->second > now) {
                ++stats_.mshrMerges;
                return CacheAccess{false, it->second};
            }
            ++stats_.hits;
            return CacheAccess{true, now};
        }
    }

    // Miss: allocate (write-allocate for both reads and writes).
    ++stats_.misses;
    Line *victim = base;
    for (uint32_t w = 1; w < config_.assoc; ++w)
        if (!base[w].valid || (victim->valid &&
                               base[w].lastUse < victim->lastUse))
            victim = &base[w];
    if (victim->valid && victim->dirty)
        ++stats_.writebacks;
    if (victim->valid)
        pendingFills.erase(victim->tag);

    *victim = Line{block, true, write, now};
    const Cycle ready = now + config_.missLatency;
    pendingFills[block] = ready;
    while (!pendingFillTimes_.empty() && pendingFillTimes_.front() <= now)
        pendingFillTimes_.pop_front();
    pendingFillTimes_.push_back(ready);

    // Opportunistic cleanup: drop completed fills to bound the map.
    if (pendingFills.size() > 4096) {
        for (auto it = pendingFills.begin(); it != pendingFills.end();) {
            if (it->second <= now)
                it = pendingFills.erase(it);
            else
                ++it;
        }
    }
    return CacheAccess{false, ready};
}

bool
CacheModel::contains(PAddr pa) const
{
    const uint64_t block = blockAddr(pa);
    const Line *const base = &lines[setIndex(block) * config_.assoc];
    for (uint32_t w = 0; w < config_.assoc; ++w)
        if (base[w].valid && base[w].tag == block)
            return true;
    return false;
}

bool
CacheModel::invalidateBlock(PAddr pa)
{
    const uint64_t block = blockAddr(pa);
    Line *const base = &lines[setIndex(block) * config_.assoc];
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == block) {
            line = Line{};
            pendingFills.erase(block);
            return true;
        }
    }
    return false;
}

Cycle
CacheModel::nextFillCycle(Cycle now)
{
    while (!pendingFillTimes_.empty() && pendingFillTimes_.front() <= now)
        pendingFillTimes_.pop_front();
    return pendingFillTimes_.empty() ? kCycleNever
                                     : pendingFillTimes_.front();
}

void
CacheModel::recordRepeatHits(PAddr pa, uint64_t n, Cycle last_use)
{
    const uint64_t block = blockAddr(pa);
    Line *const base = &lines[setIndex(block) * config_.assoc];
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == block) {
            line.lastUse = last_use;
            stats_.accesses += n;
            stats_.hits += n;
            return;
        }
    }
    hbat_panic("recordRepeatHits: block not resident");
}

void
CacheModel::flush()
{
    for (Line &line : lines)
        line = Line{};
    pendingFills.clear();
    pendingFillTimes_.clear();
}

void
registerStats(obs::StatRegistry &reg, const std::string &prefix,
              const CacheStats &s)
{
    reg.scalar(prefix + ".accesses", "cache accesses", s.accesses);
    reg.scalar(prefix + ".hits", "cache hits", s.hits);
    reg.scalar(prefix + ".misses", "cache misses", s.misses);
    reg.scalar(prefix + ".mshr_merges",
               "misses merged with in-flight fills", s.mshrMerges);
    reg.scalar(prefix + ".writebacks", "dirty blocks evicted",
               s.writebacks);
    reg.formula(prefix + ".miss_rate", "misses per access", [&s] {
        return s.accesses == 0 ? 0.0
                               : double(s.misses) / double(s.accesses);
    });
}

} // namespace hbat::cache
