/**
 * @file
 * The declarative design-space configuration language.
 *
 * A `.conf` file (sesc-style; see DESIGN.md §11) is a sequence of
 * key/value bindings grouped into named sections:
 *
 *     issue = 4                     # top-level binding
 *
 *     [core]                        # section
 *     robSize = 36*$(issue)+32      # arithmetic + substitution
 *     inOrder = false
 *
 *     [smallcore : core]            # inherits every [core] binding
 *     issue = 2                     # ...and overrides this one
 *
 *     [sweep]
 *     pageBytes = [4096, 8192]      # list value = sweep axis
 *
 * Values are integer/float arithmetic expressions (`+ - * / %`,
 * parentheses, unary minus) over literals and `$(var)` references,
 * booleans (`true`/`false`), strings (bare words or quoted), or flat
 * lists `[a, b, c]` of any of those. `$(var)` resolves in the section
 * being evaluated first (so a child override feeds expressions it
 * inherited from its parent — late binding), then up the inheritance
 * chain, then in the top-level bindings. Evaluation is lazy: parsing
 * validates only syntax, and lookup reports expression errors
 * (unknown variables, cycles, type mismatches, division by zero)
 * against the line that defined the binding.
 *
 * Diagnostics are verify::Report entries (header-only vocabulary, no
 * library dependency): ConfigSyntax for parse problems, ConfigExpr
 * for evaluation problems. Higher layers add ConfigKey (schema) and
 * ConfigMachine (range lint).
 */

#ifndef HBAT_CONFIG_CONFIG_HH
#define HBAT_CONFIG_CONFIG_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "config/value.hh"
#include "verify/diag.hh"

namespace hbat::config
{

/** One parsed (unevaluated) expression node. */
struct Expr
{
    enum class Op : uint8_t
    {
        Int,    ///< integer literal (i)
        Float,  ///< float literal (f)
        Bool,   ///< boolean literal (b)
        Str,    ///< string literal / bare word (s)
        Var,    ///< $(name) reference (s)
        Neg,    ///< unary minus (kids[0])
        Add,
        Sub,
        Mul,
        Div,
        Mod,
        List    ///< flat list (kids)
    };

    Op op = Op::Int;
    int64_t i = 0;
    double f = 0.0;
    bool b = false;
    std::string s;
    std::vector<Expr> kids;
    int line = 0;
};

/** One `key = expr` binding. */
struct Binding
{
    std::string key;
    Expr expr;
    int line = 0;
};

/** One `[name]` / `[name : parent]` section (or the top level, ""). */
struct Section
{
    std::string name;
    std::string parent;     ///< empty = no parent
    int line = 0;
    std::vector<Binding> binds;     ///< declaration order; later wins

    /** The binding that defines @p key here (latest), or nullptr. */
    const Binding *find(const std::string &key) const;
};

/**
 * Axis overlay: values substituted for `$(name)` references ahead of
 * any binding — how the sweep expander pins one chosen value of a
 * list-valued key while re-evaluating the expressions that depend on
 * it (`fpRegs = $(intRegs)` with `intRegs = [8, 32]`).
 */
using Overlay = std::vector<std::pair<std::string, Value>>;

/** A parsed configuration file. */
class Config
{
  public:
    /**
     * Parse @p text (diagnostics cite @p origin). Returns false — with
     * at least one ConfigSyntax diagnostic in @p report — when the
     * input is unusable; the parse recovers per line, so several
     * findings can be reported at once.
     */
    static bool parseString(const std::string &text,
                            const std::string &origin, Config &out,
                            verify::Report &report);

    /** Read @p path and parse it. */
    static bool parseFile(const std::string &path, Config &out,
                          verify::Report &report);

    /** Section by name (the top level is ""); nullptr when absent. */
    const Section *section(const std::string &name) const;

    /** All sections in declaration order, top level first. */
    const std::vector<Section> &sections() const { return sections_; }

    /** Where this config came from (diagnostics prefix). */
    const std::string &origin() const { return origin_; }

    /**
     * True when @p key is bound in @p sec or anything it inherits
     * from (the top level does not count).
     */
    bool has(const Section *sec, const std::string &key) const;

    /**
     * Every key visible in @p sec via its inheritance chain, ordered
     * root-ancestor-first by declaration, each key once (an override
     * keeps the position of its first declaration). This is the axis
     * ordering of the sweep expander, so it is deterministic.
     */
    std::vector<std::string> keysInChain(const Section *sec) const;

    /**
     * The expression @p key is bound to in @p sec's inheritance chain
     * (nearest definition wins; the top level does not count), or
     * nullptr when unbound. The sweep expander uses the expression's
     * *shape* to tell an axis (a direct list literal) from a scalar
     * that merely references one (`fpRegs = $(intRegs)`).
     */
    const Expr *bindingExpr(const Section *sec,
                            const std::string &key) const;

    /**
     * Evaluate @p key in the scope of @p sec (inheritance chain, then
     * top level). Returns false with no diagnostic when the key is
     * unbound anywhere (callers phrase their own "missing key"
     * errors), and false with a ConfigExpr diagnostic when evaluation
     * fails. @p overlay (optional) pins axis values by name.
     */
    bool eval(const Section *sec, const std::string &key, Value &out,
              verify::Report &report,
              const Overlay *overlay = nullptr) const;

    /** Evaluate a parsed expression directly in @p sec's scope. */
    bool evalExpr(const Expr &e, const Section *sec, Value &out,
                  verify::Report &report,
                  const Overlay *overlay = nullptr) const;

  private:
    const Section *parentOf(const Section *sec) const;

    bool evalNode(const Expr &e, const Section *scope,
                  const Overlay *overlay,
                  std::vector<std::string> &visiting, Value &out,
                  verify::Report &report) const;

    std::string origin_;
    std::vector<Section> sections_;     ///< [0] is the top level ""
};

} // namespace hbat::config

#endif // HBAT_CONFIG_CONFIG_HH
