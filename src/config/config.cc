#include "config/config.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace hbat::config
{

namespace
{

bool
isWordStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool
isWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** Section headers and keys admit a wider charset than bare words. */
bool
isNameChar(char c)
{
    return isWordChar(c) || c == '.' || c == '-';
}

/**
 * Strip the comment tail of @p line: everything from the first '#'
 * that is not inside a quoted string.
 */
std::string
stripComment(const std::string &line)
{
    char quote = '\0';
    for (size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (quote != '\0') {
            if (c == quote)
                quote = '\0';
        } else if (c == '\'' || c == '"') {
            quote = c;
        } else if (c == '#') {
            return line.substr(0, i);
        }
    }
    return line;
}

std::string
trim(const std::string &s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** One expression token. */
struct Token
{
    enum class Kind : uint8_t
    {
        Int,
        Float,
        Str,        ///< quoted string
        Word,       ///< bare word (string literal, or true/false)
        Var,        ///< $(name)
        Punct,      ///< one of + - * / % ( ) [ ] ,
        End
    };

    Kind kind = Kind::End;
    char punct = '\0';
    int64_t i = 0;
    double f = 0.0;
    std::string text;
};

/** Value-expression lexer over one line's value substring. */
class Lexer
{
  public:
    Lexer(const std::string &text, int line, const std::string &origin,
          verify::Report &report)
        : text_(text), line_(line), origin_(origin), report_(report)
    {
        advance();
    }

    const Token &peek() const { return tok_; }

    Token
    take()
    {
        Token t = tok_;
        advance();
        return t;
    }

    bool failed() const { return failed_; }

    void
    error(const std::string &msg)
    {
        if (failed_)
            return;     // one syntax finding per binding
        failed_ = true;
        report_.add(verify::Diag::ConfigSyntax,
                    verify::Severity::Error, 0,
                    detail::concat(origin_, ":", line_, ": ", msg));
    }

  private:
    void
    advance()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        tok_ = Token{};
        if (failed_ || pos_ >= text_.size()) {
            tok_.kind = Token::Kind::End;
            return;
        }
        const char c = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
            lexNumber();
        } else if (c == '\'' || c == '"') {
            lexString(c);
        } else if (c == '$') {
            lexVar();
        } else if (isWordStart(c)) {
            size_t e = pos_;
            while (e < text_.size() && isWordChar(text_[e]))
                ++e;
            tok_.kind = Token::Kind::Word;
            tok_.text = text_.substr(pos_, e - pos_);
            pos_ = e;
        } else if (std::strchr("+-*/%()[],", c) != nullptr) {
            tok_.kind = Token::Kind::Punct;
            tok_.punct = c;
            ++pos_;
        } else {
            error(detail::concat("unexpected character '",
                                 std::string(1, c),
                                 "' in expression"));
            tok_.kind = Token::Kind::End;
        }
    }

    void
    lexNumber()
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        if (text_.compare(pos_, 2, "0x") == 0 ||
            text_.compare(pos_, 2, "0X") == 0) {
            tok_.kind = Token::Kind::Int;
            tok_.i = int64_t(std::strtoull(start, &end, 16));
            pos_ += size_t(end - start);
            return;
        }
        size_t e = pos_;
        bool isFloat = false;
        while (e < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[e])))
            ++e;
        if (e < text_.size() && text_[e] == '.') {
            isFloat = true;
            ++e;
            while (e < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[e])))
                ++e;
        }
        if (e < text_.size() && (text_[e] == 'e' || text_[e] == 'E')) {
            isFloat = true;
            ++e;
            if (e < text_.size() &&
                (text_[e] == '+' || text_[e] == '-'))
                ++e;
            while (e < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(text_[e])))
                ++e;
        }
        if (isFloat) {
            tok_.kind = Token::Kind::Float;
            tok_.f = std::strtod(start, &end);
        } else {
            tok_.kind = Token::Kind::Int;
            tok_.i = int64_t(std::strtoll(start, &end, 10));
        }
        pos_ = e;
    }

    void
    lexString(char quote)
    {
        const size_t close = text_.find(quote, pos_ + 1);
        if (close == std::string::npos) {
            error("unterminated string");
            return;
        }
        tok_.kind = Token::Kind::Str;
        tok_.text = text_.substr(pos_ + 1, close - pos_ - 1);
        pos_ = close + 1;
    }

    void
    lexVar()
    {
        if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '(') {
            error("'$' must be followed by '(name)'");
            return;
        }
        const size_t close = text_.find(')', pos_ + 2);
        if (close == std::string::npos) {
            error("unterminated $( reference");
            return;
        }
        const std::string name =
            trim(text_.substr(pos_ + 2, close - pos_ - 2));
        if (name.empty()) {
            error("empty $() reference");
            return;
        }
        for (char c : name) {
            if (!isNameChar(c)) {
                error(detail::concat("bad character in $(", name,
                                     ") reference"));
                return;
            }
        }
        tok_.kind = Token::Kind::Var;
        tok_.text = name;
        pos_ = close + 1;
    }

    const std::string &text_;
    size_t pos_ = 0;
    Token tok_;
    int line_;
    const std::string &origin_;
    verify::Report &report_;
    bool failed_ = false;
};

/** Recursive-descent expression parser (precedence: * / % over + -). */
class ExprParser
{
  public:
    explicit ExprParser(Lexer &lex, int line) : lex_(lex), line_(line)
    {}

    /** Top level of a binding's value: a list or a scalar expr. */
    bool
    parseValue(Expr &out)
    {
        if (lex_.peek().kind == Token::Kind::Punct &&
            lex_.peek().punct == '[') {
            lex_.take();
            out = Expr{};
            out.op = Expr::Op::List;
            out.line = line_;
            if (lex_.peek().kind == Token::Kind::Punct &&
                lex_.peek().punct == ']') {
                lex_.error("empty list value");
                return false;
            }
            for (;;) {
                Expr elem;
                if (!parseExpr(elem))
                    return false;
                out.kids.push_back(std::move(elem));
                const Token t = lex_.take();
                if (t.kind == Token::Kind::Punct && t.punct == ']')
                    break;
                if (!(t.kind == Token::Kind::Punct && t.punct == ',')) {
                    lex_.error("expected ',' or ']' in list");
                    return false;
                }
            }
        } else if (!parseExpr(out)) {
            return false;
        }
        if (lex_.peek().kind != Token::Kind::End) {
            lex_.error("trailing tokens after value");
            return false;
        }
        return !lex_.failed();
    }

  private:
    bool
    parseExpr(Expr &out)
    {
        if (!parseTerm(out))
            return false;
        while (lex_.peek().kind == Token::Kind::Punct &&
               (lex_.peek().punct == '+' || lex_.peek().punct == '-')) {
            const char op = lex_.take().punct;
            Expr rhs;
            if (!parseTerm(rhs))
                return false;
            Expr node;
            node.op = op == '+' ? Expr::Op::Add : Expr::Op::Sub;
            node.line = line_;
            node.kids.push_back(std::move(out));
            node.kids.push_back(std::move(rhs));
            out = std::move(node);
        }
        return true;
    }

    bool
    parseTerm(Expr &out)
    {
        if (!parseUnary(out))
            return false;
        while (lex_.peek().kind == Token::Kind::Punct &&
               (lex_.peek().punct == '*' || lex_.peek().punct == '/' ||
                lex_.peek().punct == '%')) {
            const char op = lex_.take().punct;
            Expr rhs;
            if (!parseUnary(rhs))
                return false;
            Expr node;
            node.op = op == '*'   ? Expr::Op::Mul
                      : op == '/' ? Expr::Op::Div
                                  : Expr::Op::Mod;
            node.line = line_;
            node.kids.push_back(std::move(out));
            node.kids.push_back(std::move(rhs));
            out = std::move(node);
        }
        return true;
    }

    bool
    parseUnary(Expr &out)
    {
        if (lex_.peek().kind == Token::Kind::Punct &&
            lex_.peek().punct == '-') {
            lex_.take();
            Expr inner;
            if (!parseUnary(inner))
                return false;
            out = Expr{};
            out.op = Expr::Op::Neg;
            out.line = line_;
            out.kids.push_back(std::move(inner));
            return true;
        }
        return parsePrimary(out);
    }

    bool
    parsePrimary(Expr &out)
    {
        const Token t = lex_.take();
        out = Expr{};
        out.line = line_;
        switch (t.kind) {
          case Token::Kind::Int:
            out.op = Expr::Op::Int;
            out.i = t.i;
            return true;
          case Token::Kind::Float:
            out.op = Expr::Op::Float;
            out.f = t.f;
            return true;
          case Token::Kind::Str:
            out.op = Expr::Op::Str;
            out.s = t.text;
            return true;
          case Token::Kind::Word:
            if (t.text == "true" || t.text == "false") {
                out.op = Expr::Op::Bool;
                out.b = t.text == "true";
            } else {
                // A bare word is a string literal; variables are
                // always written $(name).
                out.op = Expr::Op::Str;
                out.s = t.text;
            }
            return true;
          case Token::Kind::Var:
            out.op = Expr::Op::Var;
            out.s = t.text;
            return true;
          case Token::Kind::Punct:
            if (t.punct == '(') {
                if (!parseExpr(out))
                    return false;
                const Token close = lex_.take();
                if (!(close.kind == Token::Kind::Punct &&
                      close.punct == ')')) {
                    lex_.error("expected ')'");
                    return false;
                }
                return true;
            }
            lex_.error(detail::concat("unexpected '",
                                      std::string(1, t.punct),
                                      "' in expression"));
            return false;
          case Token::Kind::End:
            lex_.error("expected a value");
            return false;
        }
        return false;
    }

    Lexer &lex_;
    int line_;
};

} // namespace

const char *
Value::kindName() const
{
    switch (kind) {
      case Kind::Int: return "int";
      case Kind::Float: return "float";
      case Kind::Bool: return "bool";
      case Kind::Str: return "string";
      case Kind::List: return "list";
    }
    return "unknown";
}

std::string
Value::render() const
{
    switch (kind) {
      case Kind::Int:
        return std::to_string(i);
      case Kind::Float: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", f);
        return buf;
      }
      case Kind::Bool:
        return b ? "true" : "false";
      case Kind::Str:
        return s;
      case Kind::List: {
        std::string out = "[";
        for (size_t n = 0; n < list.size(); ++n) {
            if (n > 0)
                out += ", ";
            out += list[n].render();
        }
        out += "]";
        return out;
      }
    }
    return "?";
}

const Binding *
Section::find(const std::string &key) const
{
    // Later bindings override earlier ones within a section.
    for (size_t n = binds.size(); n > 0; --n)
        if (binds[n - 1].key == key)
            return &binds[n - 1];
    return nullptr;
}

bool
Config::parseString(const std::string &text, const std::string &origin,
                    Config &out, verify::Report &report)
{
    out = Config{};
    out.origin_ = origin;
    out.sections_.push_back(Section{});     // the top level, ""

    const size_t before = report.count(verify::Severity::Error);
    auto syntax = [&](int line, const std::string &msg) {
        report.add(verify::Diag::ConfigSyntax, verify::Severity::Error,
                   0, detail::concat(origin, ":", line, ": ", msg));
    };

    size_t current = 0;     // index into sections_
    int lineNo = 0;
    size_t pos = 0;
    while (pos <= text.size()) {
        const size_t nl = text.find('\n', pos);
        std::string line = text.substr(
            pos, nl == std::string::npos ? std::string::npos
                                         : nl - pos);
        pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
        ++lineNo;

        line = trim(stripComment(line));
        if (line.empty())
            continue;

        if (line[0] == '[') {
            // Section header: [name] or [name : parent].
            if (line.back() != ']') {
                syntax(lineNo, "section header missing ']'");
                continue;
            }
            const std::string inner =
                trim(line.substr(1, line.size() - 2));
            std::string name = inner, parent;
            const size_t colon = inner.find(':');
            if (colon != std::string::npos) {
                name = trim(inner.substr(0, colon));
                parent = trim(inner.substr(colon + 1));
                if (parent.empty()) {
                    syntax(lineNo, "empty parent section name");
                    continue;
                }
            }
            bool ok = !name.empty();
            for (char c : name)
                ok = ok && isNameChar(c);
            for (char c : parent)
                ok = ok && isNameChar(c);
            if (!ok) {
                syntax(lineNo, detail::concat("bad section header [",
                                              inner, "]"));
                continue;
            }
            if (out.section(name) != nullptr) {
                syntax(lineNo,
                       detail::concat("duplicate section [", name,
                                      "]"));
                continue;
            }
            Section sec;
            sec.name = name;
            sec.parent = parent;
            sec.line = lineNo;
            out.sections_.push_back(std::move(sec));
            current = out.sections_.size() - 1;
            continue;
        }

        // Binding: key = value.
        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            syntax(lineNo, detail::concat("expected 'key = value', "
                                          "got '", line, "'"));
            continue;
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        bool keyOk = !key.empty();
        for (char c : key)
            keyOk = keyOk && isNameChar(c);
        if (!keyOk) {
            syntax(lineNo, detail::concat("bad key '", key, "'"));
            continue;
        }
        if (value.empty()) {
            syntax(lineNo, detail::concat("key '", key,
                                          "' has an empty value"));
            continue;
        }

        Lexer lex(value, lineNo, origin, report);
        ExprParser parser(lex, lineNo);
        Binding bind;
        bind.key = key;
        bind.line = lineNo;
        if (!parser.parseValue(bind.expr))
            continue;   // the lexer already reported
        out.sections_[current].binds.push_back(std::move(bind));
    }

    // Resolve parents: every named parent must exist, and chains must
    // be acyclic (a cycle would hang every later lookup).
    for (const Section &sec : out.sections_) {
        if (!sec.parent.empty() &&
            out.section(sec.parent) == nullptr) {
            syntax(sec.line,
                   detail::concat("section [", sec.name,
                                  "] inherits from unknown section '",
                                  sec.parent, "'"));
        }
    }
    for (const Section &sec : out.sections_) {
        const Section *walk = &sec;
        size_t steps = 0;
        while (walk != nullptr && ++steps <= out.sections_.size())
            walk = out.parentOf(walk);
        if (walk != nullptr) {
            syntax(sec.line,
                   detail::concat("section [", sec.name,
                                  "] has a cyclic inheritance chain"));
            break;
        }
    }

    return report.count(verify::Severity::Error) == before;
}

bool
Config::parseFile(const std::string &path, Config &out,
                  verify::Report &report)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        report.add(verify::Diag::ConfigSyntax, verify::Severity::Error,
                   0, detail::concat("cannot open config file '", path,
                                     "'"));
        return false;
    }
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return parseString(text, path, out, report);
}

const Section *
Config::section(const std::string &name) const
{
    for (const Section &sec : sections_)
        if (sec.name == name)
            return &sec;
    return nullptr;
}

const Section *
Config::parentOf(const Section *sec) const
{
    return sec->parent.empty() ? nullptr : section(sec->parent);
}

bool
Config::has(const Section *sec, const std::string &key) const
{
    for (const Section *s = sec; s != nullptr; s = parentOf(s))
        if (s->find(key) != nullptr)
            return true;
    return false;
}

std::vector<std::string>
Config::keysInChain(const Section *sec) const
{
    std::vector<const Section *> chain;
    for (const Section *s = sec; s != nullptr; s = parentOf(s))
        chain.push_back(s);

    std::vector<std::string> keys;
    for (size_t n = chain.size(); n > 0; --n) {
        for (const Binding &b : chain[n - 1]->binds) {
            bool seen = false;
            for (const std::string &k : keys)
                seen = seen || k == b.key;
            if (!seen)
                keys.push_back(b.key);
        }
    }
    return keys;
}

const Expr *
Config::bindingExpr(const Section *sec, const std::string &key) const
{
    for (const Section *s = sec; s != nullptr; s = parentOf(s))
        if (const Binding *b = s->find(key))
            return &b->expr;
    return nullptr;
}

bool
Config::eval(const Section *sec, const std::string &key, Value &out,
             verify::Report &report, const Overlay *overlay) const
{
    // A pinned axis value shadows the binding itself, not only the
    // $(key) references to it.
    if (overlay != nullptr) {
        for (const auto &[name, val] : *overlay) {
            if (name == key) {
                out = val;
                return true;
            }
        }
    }

    const Binding *bind = nullptr;
    for (const Section *s = sec; s != nullptr && bind == nullptr;
         s = parentOf(s))
        bind = s->find(key);
    if (bind == nullptr && !sections_.empty())
        bind = sections_[0].find(key);
    if (bind == nullptr)
        return false;   // unbound; the caller phrases the error

    std::vector<std::string> visiting{key};
    return evalNode(bind->expr, sec, overlay, visiting, out, report);
}

bool
Config::evalExpr(const Expr &e, const Section *sec, Value &out,
                 verify::Report &report, const Overlay *overlay) const
{
    std::vector<std::string> visiting;
    return evalNode(e, sec, overlay, visiting, out, report);
}

bool
Config::evalNode(const Expr &e, const Section *scope,
                 const Overlay *overlay,
                 std::vector<std::string> &visiting, Value &out,
                 verify::Report &report) const
{
    auto exprError = [&](const std::string &msg) {
        report.add(verify::Diag::ConfigExpr, verify::Severity::Error,
                   0, detail::concat(origin_, ":", e.line, ": ", msg));
        return false;
    };

    switch (e.op) {
      case Expr::Op::Int:
        out = Value::ofInt(e.i);
        return true;
      case Expr::Op::Float:
        out = Value::ofFloat(e.f);
        return true;
      case Expr::Op::Bool:
        out = Value::ofBool(e.b);
        return true;
      case Expr::Op::Str:
        out = Value::ofStr(e.s);
        return true;

      case Expr::Op::Var: {
        if (overlay != nullptr) {
            for (const auto &[name, val] : *overlay) {
                if (name == e.s) {
                    out = val;
                    return true;
                }
            }
        }
        for (const std::string &v : visiting) {
            if (v == e.s) {
                return exprError(detail::concat(
                    "cyclic reference through $(", e.s, ")"));
            }
        }
        // Resolve in the *lookup* scope, not the defining section:
        // a child's override of $(issue) feeds expressions inherited
        // from its parent (late binding, as in sesc configs).
        const Binding *bind = nullptr;
        for (const Section *s = scope; s != nullptr && bind == nullptr;
             s = parentOf(s))
            bind = s->find(e.s);
        if (bind == nullptr && !sections_.empty())
            bind = sections_[0].find(e.s);
        if (bind == nullptr) {
            return exprError(detail::concat("unknown variable $(",
                                            e.s, ")"));
        }
        visiting.push_back(e.s);
        const bool ok = evalNode(bind->expr, scope, overlay, visiting,
                                 out, report);
        visiting.pop_back();
        return ok;
      }

      case Expr::Op::Neg: {
        Value v;
        if (!evalNode(e.kids[0], scope, overlay, visiting, v, report))
            return false;
        if (v.kind == Value::Kind::Int)
            out = Value::ofInt(-v.i);
        else if (v.kind == Value::Kind::Float)
            out = Value::ofFloat(-v.f);
        else
            return exprError(detail::concat("cannot negate a ",
                                            v.kindName()));
        return true;
      }

      case Expr::Op::Add:
      case Expr::Op::Sub:
      case Expr::Op::Mul:
      case Expr::Op::Div:
      case Expr::Op::Mod: {
        Value l, r;
        if (!evalNode(e.kids[0], scope, overlay, visiting, l, report) ||
            !evalNode(e.kids[1], scope, overlay, visiting, r, report))
            return false;
        if (!l.isNumber() || !r.isNumber()) {
            return exprError(detail::concat(
                "arithmetic needs numbers, got ", l.kindName(),
                " and ", r.kindName()));
        }
        if (e.op == Expr::Op::Mod) {
            if (l.kind != Value::Kind::Int ||
                r.kind != Value::Kind::Int)
                return exprError("'%' needs integer operands");
            if (r.i == 0)
                return exprError("modulo by zero");
            out = Value::ofInt(l.i % r.i);
            return true;
        }
        const bool isInt = l.kind == Value::Kind::Int &&
                           r.kind == Value::Kind::Int;
        if (isInt) {
            switch (e.op) {
              case Expr::Op::Add: out = Value::ofInt(l.i + r.i); break;
              case Expr::Op::Sub: out = Value::ofInt(l.i - r.i); break;
              case Expr::Op::Mul: out = Value::ofInt(l.i * r.i); break;
              case Expr::Op::Div:
                if (r.i == 0)
                    return exprError("division by zero");
                // Integer division truncates (DESIGN.md §11).
                out = Value::ofInt(l.i / r.i);
                break;
              default: hbat_panic("bad binary op");
            }
        } else {
            const double a = l.asFloat(), b = r.asFloat();
            switch (e.op) {
              case Expr::Op::Add: out = Value::ofFloat(a + b); break;
              case Expr::Op::Sub: out = Value::ofFloat(a - b); break;
              case Expr::Op::Mul: out = Value::ofFloat(a * b); break;
              case Expr::Op::Div:
                if (b == 0.0)
                    return exprError("division by zero");
                out = Value::ofFloat(a / b);
                break;
              default: hbat_panic("bad binary op");
            }
        }
        return true;
      }

      case Expr::Op::List: {
        out = Value{};
        out.kind = Value::Kind::List;
        for (const Expr &kid : e.kids) {
            Value v;
            if (!evalNode(kid, scope, overlay, visiting, v, report))
                return false;
            if (v.kind == Value::Kind::List)
                return exprError("nested lists are not supported");
            out.list.push_back(std::move(v));
        }
        return true;
      }
    }
    hbat_panic("bad expression node");
}

} // namespace hbat::config
