/**
 * @file
 * A resolved configuration value.
 *
 * Evaluating a config expression (see config/config.hh) yields one of
 * five kinds: integer, float, boolean, string, or a flat list of
 * scalars. Lists are what make a key an *axis* in a sweep spec — the
 * design-space frontend expands every list-valued key into a
 * cross-product dimension.
 */

#ifndef HBAT_CONFIG_VALUE_HH
#define HBAT_CONFIG_VALUE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hbat::config
{

/** One evaluated configuration value. */
struct Value
{
    enum class Kind : uint8_t
    {
        Int,
        Float,
        Bool,
        Str,
        List
    };

    Kind kind = Kind::Int;
    int64_t i = 0;          ///< Kind::Int
    double f = 0.0;         ///< Kind::Float
    bool b = false;         ///< Kind::Bool
    std::string s;          ///< Kind::Str
    std::vector<Value> list;    ///< Kind::List (scalar elements only)

    static Value
    ofInt(int64_t v)
    {
        Value r;
        r.kind = Kind::Int;
        r.i = v;
        return r;
    }

    static Value
    ofFloat(double v)
    {
        Value r;
        r.kind = Kind::Float;
        r.f = v;
        return r;
    }

    static Value
    ofBool(bool v)
    {
        Value r;
        r.kind = Kind::Bool;
        r.b = v;
        return r;
    }

    static Value
    ofStr(std::string v)
    {
        Value r;
        r.kind = Kind::Str;
        r.s = std::move(v);
        return r;
    }

    bool isNumber() const { return kind == Kind::Int || kind == Kind::Float; }

    /** Numeric reading (Int or Float); 0 otherwise. */
    double
    asFloat() const
    {
        return kind == Kind::Int ? double(i)
             : kind == Kind::Float ? f
                                   : 0.0;
    }

    /** Kind name for diagnostics ("int", "float", ...). */
    const char *kindName() const;

    /** Human/JSON rendering ("128", "0.05", "true", "xor", "[4, 8]"). */
    std::string render() const;
};

} // namespace hbat::config

#endif // HBAT_CONFIG_VALUE_HH
