/**
 * @file
 * A fixed-capacity FIFO ring buffer.
 *
 * The pipeline's in-flight instruction state (fetch lookahead, fetch
 * queue, load/store queue) is bounded by the machine configuration, so
 * std::deque's steady-state block churn is pure overhead: this queue
 * allocates its arena once at construction and never again. The API is
 * the subset of std::deque the pipeline uses — push_back / pop_front /
 * front / size / iteration from oldest to youngest.
 */

#ifndef HBAT_COMMON_RING_QUEUE_HH
#define HBAT_COMMON_RING_QUEUE_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/log.hh"

namespace hbat
{

/** Fixed-capacity FIFO; overflow is a caller bug (asserted). */
template <typename T>
class RingQueue
{
  public:
    explicit RingQueue(size_t capacity) : buf_(capacity)
    {
        hbat_assert(capacity > 0, "ring queue needs capacity");
    }

    bool empty() const { return count_ == 0; }
    size_t size() const { return count_; }
    size_t capacity() const { return buf_.size(); }

    T &
    front()
    {
        hbat_assert(count_ > 0, "front() on empty ring queue");
        return buf_[head_];
    }

    const T &
    front() const
    {
        hbat_assert(count_ > 0, "front() on empty ring queue");
        return buf_[head_];
    }

    void
    push_back(T v)
    {
        hbat_assert(count_ < buf_.size(), "ring queue overflow");
        // Indices stay below 2*capacity, so wrapping is a compare and
        // subtract — never an integer divide (this is the cycle loop).
        size_t i = head_ + count_;
        if (i >= buf_.size())
            i -= buf_.size();
        buf_[i] = std::move(v);
        ++count_;
    }

    /**
     * Make room for one element at the back and return a reference to
     * the (reused, stale) slot for the caller to fill in place —
     * avoids staging large trivially-copyable elements in a temporary
     * just to copy them in via push_back().
     */
    T &
    emplace_back()
    {
        hbat_assert(count_ < buf_.size(), "ring queue overflow");
        size_t i = head_ + count_;
        if (i >= buf_.size())
            i -= buf_.size();
        ++count_;
        return buf_[i];
    }

    void
    pop_front()
    {
        hbat_assert(count_ > 0, "pop_front() on empty ring queue");
        if (++head_ == buf_.size())
            head_ = 0;
        --count_;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    /** Forward iterator from oldest to youngest element. */
    class const_iterator
    {
      public:
        const_iterator(const RingQueue *q, size_t pos) : q_(q), pos_(pos)
        {}

        const T &
        operator*() const
        {
            size_t i = q_->head_ + pos_;
            if (i >= q_->buf_.size())
                i -= q_->buf_.size();
            return q_->buf_[i];
        }

        const_iterator &
        operator++()
        {
            ++pos_;
            return *this;
        }

        bool
        operator!=(const const_iterator &o) const
        {
            return pos_ != o.pos_;
        }

      private:
        const RingQueue *q_;
        size_t pos_;
    };

    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, count_); }

  private:
    std::vector<T> buf_;    ///< the arena; sized once, never resized
    size_t head_ = 0;
    size_t count_ = 0;
};

} // namespace hbat

#endif // HBAT_COMMON_RING_QUEUE_HH
