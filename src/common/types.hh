/**
 * @file
 * Fundamental scalar types shared by every hbat subsystem.
 *
 * The simulated machine is a 32-bit MIPS-like architecture (the paper's
 * "extended virtual MIPS"); virtual and physical addresses are 32 bits
 * wide, but we carry them in 64-bit integers so intermediate arithmetic
 * (e.g. address + offset) never wraps in host code.
 */

#ifndef HBAT_COMMON_TYPES_HH
#define HBAT_COMMON_TYPES_HH

#include <cstdint>

namespace hbat
{

/** A virtual address in the simulated address space. */
using VAddr = uint64_t;

/** A physical address in the simulated machine. */
using PAddr = uint64_t;

/** A virtual page number (virtual address >> page shift). */
using Vpn = uint64_t;

/** A physical page number (physical address >> page shift). */
using Ppn = uint64_t;

/** A simulated clock cycle count. */
using Cycle = uint64_t;

/** A dynamic instruction sequence number (program order). */
using InstSeq = uint64_t;

/** Register value on the simulated machine (32-bit integer registers). */
using RegVal = uint32_t;

/** Floating-point register value (64-bit, as the paper's FP pipeline). */
using FpRegVal = double;

/** An architected register index (integer or FP, each file has 32). */
using RegIndex = uint8_t;

/** Number of architected integer registers. */
inline constexpr int kNumIntRegs = 32;

/** Number of architected floating-point registers. */
inline constexpr int kNumFpRegs = 32;

/** Sentinel for "no register". */
inline constexpr RegIndex kNoReg = 0xff;

/** A cycle value meaning "never" / "not yet scheduled". */
inline constexpr Cycle kCycleNever = ~Cycle(0);

} // namespace hbat

#endif // HBAT_COMMON_TYPES_HH
