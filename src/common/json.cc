#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace hbat::json
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

void
Writer::comma()
{
    if (needComma_)
        out_ += ',';
    needComma_ = false;
}

Writer &
Writer::beginObject()
{
    comma();
    out_ += '{';
    stack_ += '{';
    afterKey_ = false;
    return *this;
}

Writer &
Writer::endObject()
{
    hbat_assert(!stack_.empty() && stack_.back() == '{',
                "endObject outside an object");
    hbat_assert(!afterKey_, "dangling key at endObject");
    out_ += '}';
    stack_.pop_back();
    needComma_ = true;
    return *this;
}

Writer &
Writer::beginArray()
{
    comma();
    out_ += '[';
    stack_ += '[';
    afterKey_ = false;
    return *this;
}

Writer &
Writer::endArray()
{
    hbat_assert(!stack_.empty() && stack_.back() == '[',
                "endArray outside an array");
    out_ += ']';
    stack_.pop_back();
    needComma_ = true;
    return *this;
}

Writer &
Writer::key(const std::string &k)
{
    hbat_assert(!stack_.empty() && stack_.back() == '{',
                "key outside an object");
    hbat_assert(!afterKey_, "two keys in a row");
    comma();
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    afterKey_ = true;
    return *this;
}

Writer &
Writer::value(const std::string &v)
{
    comma();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    needComma_ = true;
    afterKey_ = false;
    return *this;
}

Writer &
Writer::value(const char *v)
{
    return value(std::string(v));
}

Writer &
Writer::value(double v)
{
    comma();
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out_ += "null";
    } else if (v == double(int64_t(v)) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", (long long)(int64_t(v)));
        out_ += buf;
    } else {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out_ += buf;
    }
    needComma_ = true;
    afterKey_ = false;
    return *this;
}

Writer &
Writer::value(uint64_t v)
{
    comma();
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
    out_ += buf;
    needComma_ = true;
    afterKey_ = false;
    return *this;
}

Writer &
Writer::value(int v)
{
    comma();
    out_ += std::to_string(v);
    needComma_ = true;
    afterKey_ = false;
    return *this;
}

Writer &
Writer::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    needComma_ = true;
    afterKey_ = false;
    return *this;
}

Writer &
Writer::null()
{
    comma();
    out_ += "null";
    needComma_ = true;
    afterKey_ = false;
    return *this;
}

std::string
Writer::str() const
{
    hbat_assert(stack_.empty(), "unbalanced JSON nesting (depth ",
                stack_.size(), ")");
    return out_;
}

const Value *
Value::find(const std::string &k) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, v] : members)
        if (name == k)
            return &v;
    return nullptr;
}

namespace
{

/** Recursive-descent JSON reader over a string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : s(text), err(error)
    {}

    bool
    run(Value &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos != s.size())
            return fail("trailing characters");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (err)
            *err = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word, Value &out, Value::Kind kind, bool b)
    {
        const size_t n = std::strlen(word);
        if (s.compare(pos, n, word) != 0)
            return fail("bad literal");
        pos += n;
        out.kind = kind;
        out.boolean = b;
        return true;
    }

    bool
    parseValue(Value &out)
    {
        if (pos >= s.size())
            return fail("unexpected end of input");
        switch (s[pos]) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"':
            out.kind = Value::Kind::String;
            return parseString(out.str);
          case 't':
            return literal("true", out, Value::Kind::Bool, true);
          case 'f':
            return literal("false", out, Value::Kind::Bool, false);
          case 'n':
            return literal("null", out, Value::Kind::Null, false);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(Value &out)
    {
        const size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '.' || s[pos] == 'e' || s[pos] == 'E' ||
                s[pos] == '+' || s[pos] == '-'))
            ++pos;
        if (pos == start)
            return fail("expected a value");
        char *end = nullptr;
        const std::string num = s.substr(start, pos - start);
        out.number = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            return fail("malformed number");
        out.kind = Value::Kind::Number;
        return true;
    }

    void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += char(cp);
        } else if (cp < 0x800) {
            out += char(0xc0 | (cp >> 6));
            out += char(0x80 | (cp & 0x3f));
        } else {
            out += char(0xe0 | (cp >> 12));
            out += char(0x80 | ((cp >> 6) & 0x3f));
            out += char(0x80 | (cp & 0x3f));
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos;      // opening quote
        out.clear();
        while (true) {
            if (pos >= s.size())
                return fail("unterminated string");
            const char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("unterminated escape");
                const char e = s[pos++];
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'u': {
                    if (pos + 4 > s.size())
                        return fail("short \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s[pos++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= unsigned(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    appendUtf8(out, cp);
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
                ++pos;
            }
        }
    }

    bool
    parseArray(Value &out)
    {
        ++pos;      // '['
        out.kind = Value::Kind::Array;
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            Value item;
            skipWs();
            if (!parseValue(item))
                return false;
            out.items.push_back(std::move(item));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated array");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(Value &out)
    {
        ++pos;      // '{'
        out.kind = Value::Kind::Object;
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"')
                return fail("expected object key");
            std::string k;
            if (!parseString(k))
                return false;
            skipWs();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            skipWs();
            Value v;
            if (!parseValue(v))
                return false;
            out.members.emplace_back(std::move(k), std::move(v));
            skipWs();
            if (pos >= s.size())
                return fail("unterminated object");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &s;
    std::string *err;
    size_t pos = 0;
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string *error)
{
    out = Value{};
    return Parser(text, error).run(out);
}

} // namespace hbat::json
