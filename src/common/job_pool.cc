#include "common/job_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/log.hh"

namespace hbat
{

JobPool::JobPool(unsigned workers)
{
    hbat_assert(workers >= 1, "JobPool needs at least one worker");
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

JobPool::~JobPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
JobPool::submit(std::function<void()> job)
{
    hbat_assert(job != nullptr, "JobPool::submit of empty job");
    {
        std::unique_lock<std::mutex> lock(mu_);
        queue_.push_back(std::move(job));
        ++inFlight_;
    }
    workReady_.notify_one();
}

void
JobPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
    if (firstError_) {
        std::exception_ptr e = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(e);
    }
}

void
JobPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        workReady_.wait(
            lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            // stopping_ and no work left: drain complete.
            return;
        }
        std::function<void()> job = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        std::exception_ptr error;
        try {
            job();
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        if (error && !firstError_)
            firstError_ = error;
        if (--inFlight_ == 0)
            allDone_.notify_all();
    }
}

unsigned
JobPool::defaultWorkers()
{
    if (const char *env = std::getenv("HBAT_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return unsigned(n);
        hbat_warn("ignoring HBAT_JOBS='", env,
                  "' (want a positive integer)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

void
parallelFor(size_t n, unsigned jobs,
            const std::function<void(size_t)> &fn)
{
    hbat_assert(jobs >= 1, "parallelFor needs at least one worker");
    if (n == 0)
        return;
    if (jobs == 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    JobPool pool(unsigned(std::min<size_t>(jobs, n)));
    for (size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace hbat
