#include "common/stats.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace hbat
{

double
ratio(uint64_t num, uint64_t den)
{
    return den == 0 ? 0.0 : double(num) / double(den);
}

double
ratio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

double
weightedAverage(const std::vector<double> &values,
                const std::vector<double> &weights)
{
    hbat_assert(values.size() == weights.size(),
                "values/weights size mismatch");
    double sum = 0.0, wsum = 0.0;
    for (size_t i = 0; i < values.size(); ++i) {
        hbat_assert(weights[i] >= 0.0, "negative weight");
        sum += values[i] * weights[i];
        wsum += weights[i];
    }
    return wsum == 0.0 ? 0.0 : sum / wsum;
}

std::string
percent(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, v * 100.0);
    return buf;
}

std::string
fixed(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

void
TextTable::header(std::vector<std::string> cells)
{
    hbat_assert(rows_.empty(), "header must be set before rows");
    rows_.push_back(std::move(cells));
}

void
TextTable::row(std::vector<std::string> cells)
{
    hbat_assert(!rows_.empty(), "set a header first");
    hbat_assert(cells.size() == rows_.front().size(),
                "row width mismatch: ", cells.size(), " vs ",
                rows_.front().size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    if (rows_.empty())
        return "";

    std::vector<size_t> width(rows_.front().size(), 0);
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    for (size_t r = 0; r < rows_.size(); ++r) {
        for (size_t c = 0; c < rows_[r].size(); ++c) {
            os << (c == 0 ? "" : "  ");
            // Left-justify the first column (names), right-justify data.
            const auto &cell = rows_[r][c];
            if (c == 0) {
                os << cell << std::string(width[c] - cell.size(), ' ');
            } else {
                os << std::string(width[c] - cell.size(), ' ') << cell;
            }
        }
        os << '\n';
        if (r == 0) {
            size_t total = 0;
            for (size_t c = 0; c < width.size(); ++c)
                total += width[c] + (c == 0 ? 0 : 2);
            os << std::string(total, '-') << '\n';
        }
    }
    return os.str();
}

} // namespace hbat
