/**
 * @file
 * Minimal JSON support for machine-readable run reports.
 *
 * Writer: a streaming builder with explicit object/array nesting and
 * full string escaping — enough for the bench harness to emit sweep
 * reports (`--json`) that CI can archive and diff across PRs.
 *
 * Value/parse: a small recursive-descent reader used by tests (and
 * available to tools) to validate and inspect what the writer
 * produced. It handles the full JSON value grammar including \uXXXX
 * escapes (BMP code points, encoded back to UTF-8); it is not meant
 * to be a general-purpose hardened parser.
 */

#ifndef HBAT_COMMON_JSON_HH
#define HBAT_COMMON_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hbat::json
{

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string escape(const std::string &s);

/** Streaming JSON builder; misuse (unbalanced nesting) panics. */
class Writer
{
  public:
    Writer &beginObject();
    Writer &endObject();
    Writer &beginArray();
    Writer &endArray();

    /** Emit an object key; must be inside an object. */
    Writer &key(const std::string &k);

    Writer &value(const std::string &v);
    Writer &value(const char *v);
    Writer &value(double v);
    Writer &value(uint64_t v);
    Writer &value(int v);
    Writer &value(bool v);
    Writer &null();

    /** The finished document; panics if nesting is unbalanced. */
    std::string str() const;

  private:
    void comma();

    std::string out_;
    std::string stack_;     ///< '{' / '[' nesting
    bool needComma_ = false;
    bool afterKey_ = false;
};

/** A parsed JSON value (tree). */
struct Value
{
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> items;   ///< Array elements
    std::vector<std::pair<std::string, Value>> members;     ///< Object

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &k) const;

    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }
};

/**
 * Parse @p text into @p out. Returns false (with @p error set, if
 * given) on malformed input or trailing garbage.
 */
bool parse(const std::string &text, Value &out,
           std::string *error = nullptr);

} // namespace hbat::json

#endif // HBAT_COMMON_JSON_HH
