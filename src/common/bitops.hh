/**
 * @file
 * Small bit-manipulation helpers used by the TLB bank-selection
 * functions, cache indexing, and the instruction encoder.
 */

#ifndef HBAT_COMMON_BITOPS_HH
#define HBAT_COMMON_BITOPS_HH

#include <cassert>
#include <cstdint>

namespace hbat
{

/** Return true when @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(@p v); @p v must be non-zero. */
constexpr unsigned
floorLog2(uint64_t v)
{
    assert(v != 0);
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

/** Exact log2 of a power of two. */
constexpr unsigned
exactLog2(uint64_t v)
{
    assert(isPowerOfTwo(v));
    return floorLog2(v);
}

/** A mask with the low @p n bits set. */
constexpr uint64_t
mask(unsigned n)
{
    return n >= 64 ? ~uint64_t(0) : ((uint64_t(1) << n) - 1);
}

/** Extract bits [first, first+count) of @p v. */
constexpr uint64_t
bits(uint64_t v, unsigned first, unsigned count)
{
    return (v >> first) & mask(count);
}

/** Insert the low @p count bits of @p field at bit @p first of @p v. */
constexpr uint64_t
insertBits(uint64_t v, unsigned first, unsigned count, uint64_t field)
{
    const uint64_t m = mask(count) << first;
    return (v & ~m) | ((field << first) & m);
}

/** Sign-extend the low @p width bits of @p v to 64 bits. */
constexpr int64_t
signExtend(uint64_t v, unsigned width)
{
    assert(width > 0 && width <= 64);
    const uint64_t sign = uint64_t(1) << (width - 1);
    const uint64_t low = v & mask(width);
    return int64_t((low ^ sign) - sign);
}

/**
 * XOR-fold @p v down to @p width bits by repeatedly XORing
 * @p width-bit groups together (the bank-randomizing hash of
 * [KJLH89] that design X4 uses).
 */
constexpr uint64_t
xorFold(uint64_t v, unsigned width)
{
    assert(width > 0 && width < 64);
    uint64_t r = 0;
    while (v != 0) {
        r ^= v & mask(width);
        v >>= width;
    }
    return r;
}

} // namespace hbat

#endif // HBAT_COMMON_BITOPS_HH
