/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * Every source of randomness in the simulator (random TLB/cache
 * replacement, synthetic workload data) draws from a seeded instance of
 * this generator so experiments are exactly reproducible run-to-run and
 * host-to-host. The generator is xorshift64*, which is tiny, fast, and
 * has no global state.
 */

#ifndef HBAT_COMMON_RNG_HH
#define HBAT_COMMON_RNG_HH

#include <cassert>
#include <cstdint>

namespace hbat
{

/**
 * Derive the seed for stream @p stream from a master @p seed
 * (splitmix64 finalizer over golden-ratio increments). Two structures
 * inside one engine must never seed their generators with nearby
 * values: xorshift64* is F2-linear, so additively-perturbed seeds
 * (the old `seed + 0x9e37` idiom) yield correlated replacement
 * streams. The splitmix64 mixer decorrelates every (seed, stream)
 * pair — each output bit depends on every input bit.
 */
constexpr uint64_t
deriveSeed(uint64_t seed, uint64_t stream)
{
    uint64_t x = seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Seedable xorshift64* pseudo-random number generator. */
class Rng
{
  public:
    /** Construct with a non-zero seed (zero is remapped internally). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 0x9e3779b97f4a7c15ULL)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        assert(bound != 0);
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return real() < p; }

  private:
    uint64_t state;
};

} // namespace hbat

#endif // HBAT_COMMON_RNG_HH
