/**
 * @file
 * Error-reporting helpers, following the gem5 fatal/panic distinction:
 * fatal() is for user error (bad configuration), panic() for simulator
 * bugs (impossible states).
 */

#ifndef HBAT_COMMON_LOG_HH
#define HBAT_COMMON_LOG_HH

#include <mutex>
#include <sstream>
#include <string>

namespace hbat
{

/**
 * The process-wide lock serializing diagnostic output (warnings,
 * progress lines, trace events). Hold it while emitting one logical
 * line so concurrent simulation workers never interleave mid-line;
 * never hold it across anything slower than a write.
 */
std::mutex &logMutex();

/** Terminate with exit(1): the *user* asked for something invalid. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with abort(): the *simulator* reached an impossible state. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warnImpl(const char *file, int line, const std::string &msg);

namespace detail
{

inline void
streamInto(std::ostringstream &)
{}

template <typename T, typename... Rest>
void
streamInto(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    streamInto(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    streamInto(os, args...);
    return os.str();
}

} // namespace detail
} // namespace hbat

#define hbat_fatal(...) \
    ::hbat::fatalImpl(__FILE__, __LINE__, ::hbat::detail::concat(__VA_ARGS__))

#define hbat_panic(...) \
    ::hbat::panicImpl(__FILE__, __LINE__, ::hbat::detail::concat(__VA_ARGS__))

#define hbat_warn(...) \
    ::hbat::warnImpl(__FILE__, __LINE__, ::hbat::detail::concat(__VA_ARGS__))

/** Panic unless @p cond holds; used for internal invariants. */
#define hbat_assert(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::hbat::panicImpl(__FILE__, __LINE__,                         \
                ::hbat::detail::concat("assertion '" #cond "' failed: ",  \
                                       ##__VA_ARGS__));                   \
        }                                                                 \
    } while (0)

#endif // HBAT_COMMON_LOG_HH
