/**
 * @file
 * Lightweight statistics utilities.
 *
 * Simulator components expose plain uint64_t counters; this header
 * provides the aggregation helpers the paper's evaluation methodology
 * needs — in particular the *run-time weighted average* (Section 4:
 * "all the results presented ... are run-time weighted averages across
 * all the benchmarks", weighted by the T4 run time in cycles) — plus a
 * small fixed-width table printer used by the bench harnesses.
 */

#ifndef HBAT_COMMON_STATS_HH
#define HBAT_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hbat
{

/** Safe ratio: returns 0 when the denominator is 0. */
double ratio(uint64_t num, uint64_t den);

/** Safe ratio of doubles: returns 0 when the denominator is 0. */
double ratio(double num, double den);

/**
 * Weighted average of @p values with non-negative @p weights.
 * Used for the paper's run-time weighted averages, where the weight of
 * each benchmark is its run time in cycles under the reference (T4)
 * design. Returns 0 when all weights are zero.
 */
double weightedAverage(const std::vector<double> &values,
                       const std::vector<double> &weights);

/** Format @p v as a percentage string with @p prec decimals. */
std::string percent(double v, int prec = 2);

/** Format a double with @p prec decimals. */
std::string fixed(double v, int prec = 3);

/**
 * Minimal fixed-width text table used by the bench binaries to print
 * paper-style rows ("design | IPC | relative ...").
 */
class TextTable
{
  public:
    /** Set the column headers; defines the column count. */
    void header(std::vector<std::string> cells);

    /** Append one row; must match the header's column count. */
    void row(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    std::string render() const;

    /** All cells as written; row 0 is the header. */
    const std::vector<std::vector<std::string>> &
    cells() const
    {
        return rows_;
    }

  private:
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hbat

#endif // HBAT_COMMON_STATS_HH
