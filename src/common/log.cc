#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace hbat
{

std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(logMutex());
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

} // namespace hbat
