/**
 * @file
 * A small fixed-size worker pool for embarrassingly parallel sweeps.
 *
 * The bench harness decomposes an experiment into independent
 * (program, design) cells and runs each cell as one job. Jobs are
 * executed in FIFO submission order by a fixed set of worker threads;
 * there is no work stealing between queues because there is only one
 * queue — contention on it is negligible next to a multi-second
 * cycle-level simulation.
 *
 * Exceptions thrown by a job are captured and rethrown from the next
 * wait() call (first one wins; later ones are dropped), so a fatal
 * simulation bug surfaces in the submitting thread just as it would
 * have in a serial run.
 */

#ifndef HBAT_COMMON_JOB_POOL_HH
#define HBAT_COMMON_JOB_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hbat
{

/** Fixed worker count, FIFO queue, exception capture and rethrow. */
class JobPool
{
  public:
    /** Spawn @p workers threads (must be >= 1). */
    explicit JobPool(unsigned workers);

    /** Waits for queued jobs, then joins the workers. */
    ~JobPool();

    JobPool(const JobPool &) = delete;
    JobPool &operator=(const JobPool &) = delete;

    unsigned workers() const { return unsigned(threads_.size()); }

    /** Enqueue one job; runs on some worker in submission order. */
    void submit(std::function<void()> job);

    /**
     * Block until every submitted job has finished. If any job threw,
     * rethrow the first captured exception (clearing it, so the pool
     * stays usable for another batch).
     */
    void wait();

    /**
     * The worker count to use when the user expressed no preference:
     * $HBAT_JOBS if set to a positive integer, else the hardware
     * concurrency, else 1.
     */
    static unsigned defaultWorkers();

  private:
    void workerLoop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    size_t inFlight_ = 0;    ///< queued + currently running jobs
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Run fn(0) .. fn(n-1) on @p jobs workers and wait for them all;
 * rethrows the first job exception. With jobs == 1 the calls run
 * inline on the caller's thread (the truly serial path — no threads
 * are created). Each fn(i) must touch only state disjoint per i.
 */
void parallelFor(size_t n, unsigned jobs,
                 const std::function<void(size_t)> &fn);

} // namespace hbat

#endif // HBAT_COMMON_JOB_POOL_HH
