#include "isa/isa.hh"

#include <array>
#include <cstdio>

#include "common/bitops.hh"
#include "common/log.hh"

namespace hbat::isa
{

namespace
{

/** Binary encoding formats. */
enum class Fmt : uint8_t { I, R, J };

/** Immediate interpretation used for range checking and decode. */
enum class ImmKind : uint8_t
{
    None,       ///< no immediate (R-format)
    Signed16,   ///< sign-extended 16-bit
    Unsigned16, ///< zero-extended 16-bit (logical immediates, LUI)
    Shift5,     ///< 0..31
    Word26      ///< signed 26-bit word offset (J-format)
};

/** Per-opcode encoding recipe. */
struct EncInfo
{
    Fmt fmt;
    uint8_t major;  ///< major opcode field
    uint8_t func;   ///< R-format function code
    ImmKind imm;
};

/// Major opcode assignments. OpR carries every R-format instruction.
enum Major : uint8_t
{
    MajR = 0,
    MajAddi, MajAndi, MajOri, MajXori, MajSlli, MajSrli, MajSrai,
    MajSlti, MajSltiu, MajLui,
    MajLb, MajLbu, MajLh, MajLhu, MajLw, MajSb, MajSh, MajSw,
    MajLdf, MajSdf,
    MajLwpi, MajSwpi, MajLdfpi, MajSdfpi,
    MajBeq, MajBne, MajBlt, MajBge, MajBltu, MajBgeu,
    MajJ, MajJal,
    NumMajors
};

static_assert(NumMajors <= 64, "major opcode field is 6 bits");

struct OpTables
{
    std::array<OpInfo, kNumOpcodes> info;
    std::array<EncInfo, kNumOpcodes> enc;
    // Reverse maps for decode.
    std::array<int16_t, 64> majorToOp;      ///< I/J majors -> flat op
    std::array<int16_t, 256> funcToOp;      ///< R funcs -> flat op
};

const OpTables &
tables()
{
    static const OpTables t = [] {
        OpTables t{};
        t.majorToOp.fill(-1);
        t.funcToOp.fill(-1);

        uint8_t nextFunc = 0;

        auto def = [&](Opcode op, OpInfo info, Fmt fmt, uint8_t major,
                       ImmKind imm) {
            const int i = int(op);
            t.info[i] = info;
            uint8_t func = 0;
            if (fmt == Fmt::R) {
                func = nextFunc++;
                t.funcToOp[func] = int16_t(i);
            } else {
                hbat_assert(t.majorToOp[major] == -1,
                            "major opcode reused");
                t.majorToOp[major] = int16_t(i);
            }
            t.enc[i] = EncInfo{fmt, major, func, imm};
        };

        using enum Opcode;
        const auto I = RC::Int, F = RC::Fp, N = RC::None;

        // Integer R-type ALU: rd <- rs1 op rs2.
        auto alu3 = [&](Opcode op, const char *name, FuClass fu,
                        bool prop) {
            def(op,
                OpInfo{name, fu, I, I, I, false, false, false, false,
                       false, false, 0, prop},
                Fmt::R, MajR, ImmKind::None);
        };
        alu3(Add, "add", FuClass::IntAlu, true);
        alu3(Sub, "sub", FuClass::IntAlu, true);
        alu3(Mul, "mul", FuClass::IntMult, false);
        alu3(Div, "div", FuClass::IntDiv, false);
        alu3(Divu, "divu", FuClass::IntDiv, false);
        alu3(Rem, "rem", FuClass::IntDiv, false);
        alu3(Remu, "remu", FuClass::IntDiv, false);
        alu3(And, "and", FuClass::IntAlu, true);
        alu3(Or, "or", FuClass::IntAlu, true);
        alu3(Xor, "xor", FuClass::IntAlu, false);
        alu3(Nor, "nor", FuClass::IntAlu, false);
        alu3(Sll, "sll", FuClass::IntAlu, false);
        alu3(Srl, "srl", FuClass::IntAlu, false);
        alu3(Sra, "sra", FuClass::IntAlu, false);
        alu3(Slt, "slt", FuClass::IntAlu, false);
        alu3(Sltu, "sltu", FuClass::IntAlu, false);

        // Integer I-type ALU: rd <- rs1 op imm.
        auto alui = [&](Opcode op, const char *name, uint8_t major,
                        ImmKind ik, bool prop) {
            def(op,
                OpInfo{name, FuClass::IntAlu, I, I, N, false, false,
                       false, false, false, false, 0, prop},
                Fmt::I, major, ik);
        };
        alui(Addi, "addi", MajAddi, ImmKind::Signed16, true);
        alui(Andi, "andi", MajAndi, ImmKind::Unsigned16, true);
        alui(Ori, "ori", MajOri, ImmKind::Unsigned16, true);
        alui(Xori, "xori", MajXori, ImmKind::Unsigned16, false);
        alui(Slli, "slli", MajSlli, ImmKind::Shift5, false);
        alui(Srli, "srli", MajSrli, ImmKind::Shift5, false);
        alui(Srai, "srai", MajSrai, ImmKind::Shift5, false);
        alui(Slti, "slti", MajSlti, ImmKind::Signed16, false);
        alui(Sltiu, "sltiu", MajSltiu, ImmKind::Signed16, false);
        // LUI has no register source.
        def(Lui,
            OpInfo{"lui", FuClass::IntAlu, I, N, N, false, false, false,
                   false, false, false, 0, false},
            Fmt::I, MajLui, ImmKind::Unsigned16);

        // Loads, base+displacement: rd <- M[rs1 + imm].
        auto load = [&](Opcode op, const char *name, uint8_t major,
                        RC dst, uint8_t size) {
            def(op,
                OpInfo{name, FuClass::MemPort, dst, I, N, false, true,
                       false, false, false, false, size, false},
                Fmt::I, major, ImmKind::Signed16);
        };
        load(Lb, "lb", MajLb, I, 1);
        load(Lbu, "lbu", MajLbu, I, 1);
        load(Lh, "lh", MajLh, I, 2);
        load(Lhu, "lhu", MajLhu, I, 2);
        load(Lw, "lw", MajLw, I, 4);
        load(Ldf, "ldf", MajLdf, F, 8);

        // Stores, base+displacement: M[rs1 + imm] <- rd.
        auto store = [&](Opcode op, const char *name, uint8_t major,
                         RC src, uint8_t size) {
            def(op,
                OpInfo{name, FuClass::MemPort, src, I, N, true, false,
                       true, false, false, false, size, false},
                Fmt::I, major, ImmKind::Signed16);
        };
        store(Sb, "sb", MajSb, I, 1);
        store(Sh, "sh", MajSh, I, 2);
        store(Sw, "sw", MajSw, I, 4);
        store(Sdf, "sdf", MajSdf, F, 8);

        // Post-increment loads/stores: access M[rs1], then rs1 += imm.
        def(Lwpi,
            OpInfo{"lwpi", FuClass::MemPort, I, I, N, false, true, false,
                   false, false, true, 4, false},
            Fmt::I, MajLwpi, ImmKind::Signed16);
        def(Swpi,
            OpInfo{"swpi", FuClass::MemPort, I, I, N, true, false, true,
                   false, false, true, 4, false},
            Fmt::I, MajSwpi, ImmKind::Signed16);
        def(Ldfpi,
            OpInfo{"ldfpi", FuClass::MemPort, F, I, N, false, true,
                   false, false, false, true, 8, false},
            Fmt::I, MajLdfpi, ImmKind::Signed16);
        def(Sdfpi,
            OpInfo{"sdfpi", FuClass::MemPort, F, I, N, true, false, true,
                   false, false, true, 8, false},
            Fmt::I, MajSdfpi, ImmKind::Signed16);

        // Register+register loads/stores: access M[rs1 + rs2].
        def(Lwx,
            OpInfo{"lwx", FuClass::MemPort, I, I, I, false, true, false,
                   false, false, false, 4, false},
            Fmt::R, MajR, ImmKind::None);
        def(Swx,
            OpInfo{"swx", FuClass::MemPort, I, I, I, true, false, true,
                   false, false, false, 4, false},
            Fmt::R, MajR, ImmKind::None);
        def(Ldfx,
            OpInfo{"ldfx", FuClass::MemPort, F, I, I, false, true, false,
                   false, false, false, 8, false},
            Fmt::R, MajR, ImmKind::None);
        def(Sdfx,
            OpInfo{"sdfx", FuClass::MemPort, F, I, I, true, false, true,
                   false, false, false, 8, false},
            Fmt::R, MajR, ImmKind::None);

        // Conditional branches compare rs1, rs2; pc-relative word offset.
        auto branch = [&](Opcode op, const char *name, uint8_t major) {
            def(op,
                OpInfo{name, FuClass::IntAlu, N, I, I, false, false,
                       false, true, false, false, 0, false},
                Fmt::I, major, ImmKind::Signed16);
        };
        branch(Beq, "beq", MajBeq);
        branch(Bne, "bne", MajBne);
        branch(Blt, "blt", MajBlt);
        branch(Bge, "bge", MajBge);
        branch(Bltu, "bltu", MajBltu);
        branch(Bgeu, "bgeu", MajBgeu);

        // Jumps. JAL implicitly writes r31 (handled by the executor).
        def(J,
            OpInfo{"j", FuClass::IntAlu, N, N, N, false, false, false,
                   false, true, false, 0, false},
            Fmt::J, MajJ, ImmKind::Word26);
        def(Jal,
            OpInfo{"jal", FuClass::IntAlu, N, N, N, false, false, false,
                   false, true, false, 0, false},
            Fmt::J, MajJal, ImmKind::Word26);
        def(Jr,
            OpInfo{"jr", FuClass::IntAlu, N, I, N, false, false, false,
                   false, true, false, 0, false},
            Fmt::R, MajR, ImmKind::None);
        def(Jalr,
            OpInfo{"jalr", FuClass::IntAlu, I, I, N, false, false, false,
                   false, true, false, 0, false},
            Fmt::R, MajR, ImmKind::None);

        // Floating point.
        auto fp3 = [&](Opcode op, const char *name, FuClass fu) {
            def(op,
                OpInfo{name, fu, F, F, F, false, false, false, false,
                       false, false, 0, false},
                Fmt::R, MajR, ImmKind::None);
        };
        fp3(Fadd, "fadd", FuClass::FpAdd);
        fp3(Fsub, "fsub", FuClass::FpAdd);
        fp3(Fmul, "fmul", FuClass::FpMult);
        fp3(Fdiv, "fdiv", FuClass::FpDiv);

        auto fp2 = [&](Opcode op, const char *name, FuClass fu, RC dst,
                       RC src) {
            def(op,
                OpInfo{name, fu, dst, src, N, false, false, false, false,
                       false, false, 0, false},
                Fmt::R, MajR, ImmKind::None);
        };
        fp2(Fmov, "fmov", FuClass::FpAdd, F, F);
        fp2(Fneg, "fneg", FuClass::FpAdd, F, F);
        fp2(Fabs, "fabs", FuClass::FpAdd, F, F);
        fp2(Fcvtif, "fcvtif", FuClass::FpAdd, F, I);
        fp2(Fcvtfi, "fcvtfi", FuClass::FpAdd, I, F);

        auto fcmp = [&](Opcode op, const char *name) {
            def(op,
                OpInfo{name, FuClass::FpAdd, I, F, F, false, false,
                       false, false, false, false, 0, false},
                Fmt::R, MajR, ImmKind::None);
        };
        fcmp(Fclt, "fclt");
        fcmp(Fcle, "fcle");
        fcmp(Fceq, "fceq");

        // Miscellaneous.
        def(Nop,
            OpInfo{"nop", FuClass::None, N, N, N, false, false, false,
                   false, false, false, 0, false},
            Fmt::R, MajR, ImmKind::None);
        def(Halt,
            OpInfo{"halt", FuClass::None, N, N, N, false, false, false,
                   false, false, false, 0, false},
            Fmt::R, MajR, ImmKind::None);

        // Every opcode must have been defined (names are non-null).
        for (int i = 0; i < kNumOpcodes; ++i)
            hbat_assert(t.info[i].name != nullptr,
                        "opcode ", i, " left undefined");
        return t;
    }();
    return t;
}

void
checkImmRange(const Inst &inst, ImmKind kind)
{
    const int64_t v = inst.imm;
    switch (kind) {
      case ImmKind::None:
        hbat_assert(v == 0, opName(inst.op), ": unexpected immediate");
        break;
      case ImmKind::Signed16:
        hbat_assert(v >= -32768 && v <= 32767,
                    opName(inst.op), ": imm ", v, " out of signed16");
        break;
      case ImmKind::Unsigned16:
        hbat_assert(v >= 0 && v <= 65535,
                    opName(inst.op), ": imm ", v, " out of unsigned16");
        break;
      case ImmKind::Shift5:
        hbat_assert(v >= 0 && v <= 31,
                    opName(inst.op), ": shift ", v, " out of range");
        break;
      case ImmKind::Word26:
        hbat_assert(v >= -(1 << 25) && v < (1 << 25),
                    opName(inst.op), ": target ", v, " out of word26");
        break;
    }
}

} // namespace

namespace detail
{

std::atomic<const OpInfo *> opInfoTable_{nullptr};

const OpInfo *
opInfoTableSlow()
{
    const OpInfo *t = tables().info.data();
    opInfoTable_.store(t, std::memory_order_release);
    return t;
}

} // namespace detail

uint32_t
encode(const Inst &inst)
{
    const EncInfo &e = tables().enc[int(inst.op)];
    checkImmRange(inst, e.imm);
    hbat_assert(inst.rd < 32 && inst.rs1 < 32 && inst.rs2 < 32,
                opName(inst.op), ": register index out of range");

    uint64_t w = uint64_t(e.major) << 26;
    switch (e.fmt) {
      case Fmt::I:
        // Branches carry two sources (rs1, rs2) and no rd; they use
        // the rd field slot for rs1 and the rs1 slot for rs2.
        if (opInfo(inst.op).isBranch) {
            w = insertBits(w, 21, 5, inst.rs1);
            w = insertBits(w, 16, 5, inst.rs2);
        } else {
            w = insertBits(w, 21, 5, inst.rd);
            w = insertBits(w, 16, 5, inst.rs1);
        }
        w = insertBits(w, 0, 16, uint64_t(uint32_t(inst.imm)));
        break;
      case Fmt::R:
        w = insertBits(w, 21, 5, inst.rd);
        w = insertBits(w, 16, 5, inst.rs1);
        w = insertBits(w, 11, 5, inst.rs2);
        w = insertBits(w, 0, 8, e.func);
        break;
      case Fmt::J:
        w = insertBits(w, 0, 26, uint64_t(uint32_t(inst.imm)));
        break;
    }
    return uint32_t(w);
}

Inst
decode(uint32_t word)
{
    Inst inst;
    hbat_assert(tryDecode(word, inst), "illegal encoding ", word);
    return inst;
}

bool
tryDecode(uint32_t word, Inst &out)
{
    const OpTables &t = tables();
    const unsigned major = unsigned(bits(word, 26, 6));

    int flat;
    if (major == MajR) {
        const unsigned func = unsigned(bits(word, 0, 8));
        flat = t.funcToOp[func];
    } else {
        flat = t.majorToOp[major];
    }
    if (flat < 0)
        return false;

    const Opcode op = Opcode(flat);
    const EncInfo &e = t.enc[flat];

    Inst inst;
    inst.op = op;
    switch (e.fmt) {
      case Fmt::I:
        if (t.info[flat].isBranch) {
            inst.rs1 = RegIndex(bits(word, 21, 5));
            inst.rs2 = RegIndex(bits(word, 16, 5));
        } else {
            inst.rd = RegIndex(bits(word, 21, 5));
            inst.rs1 = RegIndex(bits(word, 16, 5));
        }
        switch (e.imm) {
          case ImmKind::Signed16:
            inst.imm = int32_t(signExtend(bits(word, 0, 16), 16));
            break;
          default:
            inst.imm = int32_t(bits(word, 0, 16));
            break;
        }
        break;
      case Fmt::R:
        inst.rd = RegIndex(bits(word, 21, 5));
        inst.rs1 = RegIndex(bits(word, 16, 5));
        inst.rs2 = RegIndex(bits(word, 11, 5));
        break;
      case Fmt::J:
        inst.imm = int32_t(signExtend(bits(word, 0, 26), 26));
        break;
    }
    out = inst;
    return true;
}

std::string
disassemble(const Inst &inst, VAddr pc)
{
    const OpInfo &info = opInfo(inst.op);
    const char *rdn = info.rdClass == RC::Fp ? fpRegName(inst.rd)
                                             : intRegName(inst.rd);
    char buf[96];

    if (isMem(inst.op)) {
        if (info.writesBase) {
            std::snprintf(buf, sizeof(buf), "%-6s %s, (%s)+=%d",
                          info.name, rdn, intRegName(inst.rs1), inst.imm);
        } else if (info.rs2Class != RC::None) {
            std::snprintf(buf, sizeof(buf), "%-6s %s, (%s+%s)",
                          info.name, rdn, intRegName(inst.rs1),
                          intRegName(inst.rs2));
        } else {
            std::snprintf(buf, sizeof(buf), "%-6s %s, %d(%s)",
                          info.name, rdn, inst.imm,
                          intRegName(inst.rs1));
        }
        return buf;
    }

    if (info.isBranch) {
        std::snprintf(buf, sizeof(buf), "%-6s %s, %s, 0x%llx",
                      info.name, intRegName(inst.rs1),
                      intRegName(inst.rs2),
                      (unsigned long long)(pc + 4 + int64_t(inst.imm) * 4));
        return buf;
    }

    switch (inst.op) {
      case Opcode::J:
      case Opcode::Jal:
        std::snprintf(buf, sizeof(buf), "%-6s 0x%llx", info.name,
                      (unsigned long long)(pc + 4 + int64_t(inst.imm) * 4));
        return buf;
      case Opcode::Jr:
        std::snprintf(buf, sizeof(buf), "%-6s %s", info.name,
                      intRegName(inst.rs1));
        return buf;
      case Opcode::Jalr:
        std::snprintf(buf, sizeof(buf), "%-6s %s, %s", info.name,
                      intRegName(inst.rd), intRegName(inst.rs1));
        return buf;
      case Opcode::Lui:
        std::snprintf(buf, sizeof(buf), "%-6s %s, 0x%x", info.name,
                      intRegName(inst.rd), uint32_t(inst.imm));
        return buf;
      case Opcode::Nop:
      case Opcode::Halt:
        return info.name;
      default:
        break;
    }

    const char *rs1n = info.rs1Class == RC::Fp ? fpRegName(inst.rs1)
                                               : intRegName(inst.rs1);
    const char *rs2n = info.rs2Class == RC::Fp ? fpRegName(inst.rs2)
                                               : intRegName(inst.rs2);

    if (info.rs2Class != RC::None) {
        std::snprintf(buf, sizeof(buf), "%-6s %s, %s, %s", info.name,
                      rdn, rs1n, rs2n);
    } else if (info.rs1Class != RC::None) {
        if (tables().enc[int(inst.op)].fmt == Fmt::I) {
            std::snprintf(buf, sizeof(buf), "%-6s %s, %s, %d", info.name,
                          rdn, rs1n, inst.imm);
        } else {
            std::snprintf(buf, sizeof(buf), "%-6s %s, %s", info.name,
                          rdn, rs1n);
        }
    } else {
        std::snprintf(buf, sizeof(buf), "%-6s %s, %d", info.name, rdn,
                      inst.imm);
    }
    return buf;
}

const char *
intRegName(RegIndex r)
{
    static const char *names[32] = {
        "zero", "at", "rv", "r3", "a0", "a1", "a2", "a3",
        "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
        "r16", "r17", "r18", "r19", "r20", "r21", "r22", "r23",
        "r24", "r25", "r26", "r27", "r28", "sp", "at2", "ra",
    };
    hbat_assert(r < 32, "bad int register ", int(r));
    return names[r];
}

const char *
fpRegName(RegIndex r)
{
    static const char *names[32] = {
        "f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7",
        "f8", "f9", "f10", "f11", "f12", "f13", "f14", "f15",
        "f16", "f17", "f18", "f19", "f20", "f21", "f22", "f23",
        "f24", "f25", "f26", "f27", "f28", "f29", "f30", "f31",
    };
    hbat_assert(r < 32, "bad fp register ", int(r));
    return names[r];
}

} // namespace hbat::isa
