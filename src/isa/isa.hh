/**
 * @file
 * The HBAT instruction set.
 *
 * A 32-bit MIPS-I-like RISC ISA matching the paper's "extended virtual
 * MIPS" (Section 4.1):
 *
 *  - 32 integer + 32 floating-point architected registers;
 *  - extended addressing modes: register+register (LWX/SWX/LDFX/SDFX)
 *    and post-increment/decrement (LWPI/SWPI/LDFPI/SDFPI, the
 *    post-decrement case being a negative increment);
 *  - no architected delay slots.
 *
 * Instructions are 4 bytes. Three encodings exist:
 *
 *  - I-format: major(6) rd(5) rs1(5) imm(16)      — ALU-imm, mem, branch
 *  - R-format: major(6)=OpR rd(5) rs1(5) rs2(5) pad(3) func(8)
 *  - J-format: major(6) target(26)                — J / JAL
 *
 * The decoded, flat representation (`Inst`) is what the assembler,
 * functional core, and timing models operate on; the binary encoding
 * exists so programs occupy realistic instruction memory (8 per 32-byte
 * I-cache block, as Table 1's fetch interface requires).
 */

#ifndef HBAT_ISA_ISA_HH
#define HBAT_ISA_ISA_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "common/log.hh"
#include "common/types.hh"

namespace hbat::isa
{

/** Flat (decoded) opcodes. */
enum class Opcode : uint8_t
{
    // Integer register-register ALU.
    Add, Sub, Mul, Div, Divu, Rem, Remu,
    And, Or, Xor, Nor,
    Sll, Srl, Sra,
    Slt, Sltu,

    // Integer register-immediate ALU.
    Addi, Andi, Ori, Xori,
    Slli, Srli, Srai,
    Slti, Sltiu, Lui,

    // Loads/stores, base+displacement.
    Lb, Lbu, Lh, Lhu, Lw,
    Sb, Sh, Sw,
    Ldf, Sdf,

    // Loads/stores, post-increment (post-decrement = negative imm).
    Lwpi, Swpi, Ldfpi, Sdfpi,

    // Loads/stores, register+register.
    Lwx, Swx, Ldfx, Sdfx,

    // Conditional branches (pc-relative).
    Beq, Bne, Blt, Bge, Bltu, Bgeu,

    // Jumps.
    J, Jal, Jr, Jalr,

    // Floating point (operands in the FP register file).
    Fadd, Fsub, Fmul, Fdiv,
    Fmov, Fneg, Fabs,
    Fcvtif,     ///< int reg -> fp reg
    Fcvtfi,     ///< fp reg -> int reg (truncate)
    Fclt, Fcle, Fceq,   ///< fp compare -> int reg (0/1)

    // Miscellaneous.
    Nop, Halt,

    NumOpcodes
};

/** Number of flat opcodes. */
inline constexpr int kNumOpcodes = int(Opcode::NumOpcodes);

/** Functional-unit classes (Table 1). */
enum class FuClass : uint8_t
{
    IntAlu,     ///< 8 units, latency 1, issue 1
    IntMult,    ///< 1 unit (shared mult/div), latency 3, issue 1
    IntDiv,     ///< same unit as IntMult, latency 12, issue 12
    MemPort,    ///< 4 load/store units, latency 2, issue 1
    FpAdd,      ///< 4 units, latency 2, issue 1
    FpMult,     ///< 1 unit (shared with div), latency 4, issue 1
    FpDiv,      ///< latency 12, issue 12
    None        ///< control / nop
};

/** Register class of an instruction field. */
enum class RC : uint8_t
{
    None,   ///< field unused
    Int,    ///< integer register file
    Fp      ///< floating-point register file
};

/** Static properties of one opcode. */
struct OpInfo
{
    const char *name;       ///< mnemonic
    FuClass fu;             ///< functional unit class
    RC rdClass;             ///< class of the rd field
    RC rs1Class;            ///< class of the rs1 field
    RC rs2Class;            ///< class of the rs2 field
    bool rdIsSource;        ///< stores: rd holds the store data (a source)
    bool isLoad;
    bool isStore;
    bool isBranch;          ///< conditional branch
    bool isJump;            ///< unconditional control transfer
    bool writesBase;        ///< post-increment base register update
    uint8_t memSize;        ///< access size in bytes (0 = not memory)
    /**
     * True when the op is integer arithmetic that can carry a pointer:
     * pretranslation (Section 3.5) propagates the translation attached
     * to any source operand to the destination of such instructions.
     */
    bool propagatesPointer;
};

namespace detail
{
/**
 * Cached pointer to the opcode-property table. Null until the first
 * lookup; opInfoTableSlow() builds the tables (thread-safely, via a
 * function-local static) and publishes the pointer with release
 * semantics so the acquire load below sees initialized contents.
 */
extern std::atomic<const OpInfo *> opInfoTable_;
const OpInfo *opInfoTableSlow();

inline const OpInfo *
opInfoTable()
{
    const OpInfo *t = opInfoTable_.load(std::memory_order_acquire);
    if (t == nullptr) [[unlikely]]
        t = opInfoTableSlow();
    return t;
}
} // namespace detail

/**
 * Look up the static properties of @p op. Inline and flat — one
 * pointer load plus an index — because the functional core and the
 * timing pipeline consult it several times per simulated instruction.
 */
inline const OpInfo &
opInfo(Opcode op)
{
    hbat_assert(int(op) < kNumOpcodes, "bad opcode ", int(op));
    return detail::opInfoTable()[int(op)];
}

/** Mnemonic of @p op. */
inline const char *opName(Opcode op) { return opInfo(op).name; }

/** A decoded instruction. */
struct Inst
{
    Opcode op = Opcode::Nop;
    RegIndex rd = 0;    ///< destination (or store-data source)
    RegIndex rs1 = 0;   ///< first source / base register
    RegIndex rs2 = 0;   ///< second source / index register
    int32_t imm = 0;    ///< immediate / displacement / branch offset

    bool operator==(const Inst &) const = default;
};

/** True when @p op reads memory. */
inline bool isLoad(Opcode op) { return opInfo(op).isLoad; }
/** True when @p op writes memory. */
inline bool isStore(Opcode op) { return opInfo(op).isStore; }
/** True when @p op accesses memory. */
inline bool isMem(Opcode op) { return isLoad(op) || isStore(op); }
/** True when @p op is a conditional branch. */
inline bool isBranch(Opcode op) { return opInfo(op).isBranch; }
/** True when @p op is an unconditional control transfer. */
inline bool isJump(Opcode op) { return opInfo(op).isJump; }
/** True when @p op transfers control at all. */
inline bool isControl(Opcode op) { return isBranch(op) || isJump(op); }

/**
 * Encode @p inst to its 32-bit binary form.
 * Immediates out of range for the field are a caller error (the
 * assembler range-checks before encoding) and trigger a panic.
 */
uint32_t encode(const Inst &inst);

/** Decode a 32-bit word; panics on an illegal encoding. */
Inst decode(uint32_t word);

/**
 * Decode a 32-bit word without panicking.
 * Returns false (leaving @p out untouched) on an illegal encoding —
 * the entry point the static verifier uses to lint arbitrary images.
 */
bool tryDecode(uint32_t word, Inst &out);

/** Human-readable disassembly of @p inst at address @p pc. */
std::string disassemble(const Inst &inst, VAddr pc = 0);

/** Conventional integer register names (r0=zero, r29=sp, r31=ra...). */
const char *intRegName(RegIndex r);

/** Floating-point register names (f0..f31). */
const char *fpRegName(RegIndex r);

/// Conventional register assignments used by kasm and the runtime.
namespace reg
{
inline constexpr RegIndex zero = 0;   ///< hardwired zero
inline constexpr RegIndex at = 1;     ///< assembler scratch
inline constexpr RegIndex rv = 2;     ///< return value
inline constexpr RegIndex a0 = 4;     ///< first argument
inline constexpr RegIndex a1 = 5;
inline constexpr RegIndex a2 = 6;
inline constexpr RegIndex a3 = 7;
inline constexpr RegIndex at2 = 30;   ///< second assembler scratch
inline constexpr RegIndex sp = 29;    ///< stack pointer
inline constexpr RegIndex ra = 31;    ///< return address
} // namespace reg

} // namespace hbat::isa

#endif // HBAT_ISA_ISA_HH
