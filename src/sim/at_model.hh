/**
 * @file
 * The paper's Section 2 analytical model of address-translation
 * performance.
 *
 * The model expresses the average translation latency seen by the
 * core as
 *
 *   t_AT = (1 - f_shielded) * (t_stalled + t_TLBhit
 *                              + M_TLB * t_TLBmiss)
 *
 * and its system impact, time-per-instruction due to address
 * translation, as
 *
 *   TPI_AT = f_MEM * (1 - f_TOL) * t_AT .
 *
 * The paper uses this strictly qualitatively; we additionally provide
 * extractModel(), which derives the model's inputs from a measured
 * simulation so the bench `model_check` can compare the analytical
 * TPI_AT against the measured per-instruction cycle cost relative to
 * an ideal translation device (the residual being the latency the
 * core tolerated, f_TOL).
 */

#ifndef HBAT_SIM_AT_MODEL_HH
#define HBAT_SIM_AT_MODEL_HH

#include "sim/simulator.hh"

namespace hbat::sim
{

/** Inputs of the Section 2 model. */
struct AtModelParams
{
    double fMem = 0.0;          ///< fraction of instructions accessing memory
    double fShielded = 0.0;     ///< requests satisfied by the shield
    double tStalled = 0.0;      ///< mean port-queueing latency (cycles)
    double tTlbHit = 0.0;       ///< visible base-TLB hit latency
    double mTlb = 0.0;          ///< base-TLB miss rate
    double tTlbMiss = 30.0;     ///< miss-handler latency
};

/** Average translation latency t_AT (Section 2). */
double tAt(const AtModelParams &p);

/**
 * Time-per-instruction impact TPI_AT given the fraction of latency
 * the core tolerates (f_TOL).
 */
double tpiAt(const AtModelParams &p, double f_tol);

/**
 * Derive model parameters from a measured run. The visible hit
 * latency and queueing latency come from the engine's counters; the
 * miss latency is the configured 30-cycle handler.
 */
AtModelParams extractModel(const SimResult &result);

/**
 * Measured TPI_AT: the extra cycles per instruction the run spent
 * relative to @p ideal (same program under an ideal translation
 * device). By the model's definition this equals
 * f_MEM * (1 - f_TOL) * t_AT, so the implied tolerance factor is
 * f_TOL = 1 - measured / (f_MEM * t_AT).
 */
double measuredTpiAt(const SimResult &result, const SimResult &ideal);

/** The tolerance fraction implied by a measured pair (clamped). */
double impliedFtol(const SimResult &result, const SimResult &ideal);

} // namespace hbat::sim

#endif // HBAT_SIM_AT_MODEL_HH
