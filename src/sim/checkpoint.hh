/**
 * @file
 * A functional-execution checkpoint: everything needed to resume a
 * program mid-run without replaying its prefix (DESIGN.md §14).
 *
 * A checkpoint captures the architectural machine — core registers
 * and counts, the address space's private pages and page table — plus
 * the warm-up aids the sampled simulator uses to shorten detailed
 * warmup: the functional TLB filter states and the recently-touched
 * VPN set. It deliberately does NOT capture any timing state: the
 * detailed pipeline, caches, and translation engine are rebuilt fresh
 * per measurement interval and warmed for SimConfig::sampleWarmupInsts
 * instructions before measurement starts.
 *
 * Page payloads are shared_ptr-held so consecutive checkpoints of one
 * run share the copies of pages that did not change in between (see
 * FuncExecutor::save) — a run's checkpoint train costs memory
 * proportional to the pages written per period, not to the footprint
 * times the checkpoint count.
 */

#ifndef HBAT_SIM_CHECKPOINT_HH
#define HBAT_SIM_CHECKPOINT_HH

#include <optional>
#include <vector>

#include "cpu/func_core.hh"
#include "tlb/tlb_array.hh"
#include "vm/address_space.hh"

namespace hbat::sim
{

/** Reference/miss counts of one functional TLB filter. */
struct FuncTlbStats
{
    uint64_t refs = 0;
    uint64_t misses = 0;
};

/** One resumable point in a program's execution. */
struct Checkpoint
{
    /** Architected instructions executed before this point. */
    uint64_t instCount = 0;

    cpu::CoreState core;    ///< registers, PC, counts, halt flag
    vm::SpaceState mem;     ///< private pages + page table

    /** A functional TLB filter's state (fig6-style miss counting). */
    struct Filter
    {
        tlb::TlbArray tlb;
        FuncTlbStats stats;
    };
    std::vector<Filter> filters;

    /**
     * The warm-set tracker: an LRU array over data VPNs maintained by
     * the functional pass (FuncExecutor::kWarmEntries entries). Its
     * residents approximate the TLB-resident set of a detailed run
     * reaching this point; replaying them into a fresh translation
     * engine (oldest first, via warmVpns()) shortens the detailed
     * warmup a measurement interval needs.
     */
    std::optional<tlb::TlbArray> warm;

    /** The warm set's resident VPNs, oldest use first — replay order
     *  for TranslationEngine::fill(). Empty without a tracker. */
    std::vector<Vpn> warmVpns() const;
};

} // namespace hbat::sim

#endif // HBAT_SIM_CHECKPOINT_HH
