/**
 * @file
 * Sampled simulation: checkpointed functional fast-forward plus
 * interval-sampled detailed measurement (DESIGN.md §14).
 *
 * The whole program executes once functionally (FuncExecutor),
 * dropping a Checkpoint every SimConfig::samplePeriodInsts
 * instructions. Each checkpoint seeds one detailed interval: restore
 * the architectural state, replay the checkpoint's warm VPN set into
 * a fresh translation engine, run the full pipeline for
 * sampleWarmupInsts (discarded) + sampleMeasureInsts (measured)
 * instructions. Per-stat whole-run totals are then reconstructed with
 * the ratio estimator
 *
 *     total = N * (sum of interval deltas) / (sum of measured insts)
 *
 * where N is the exact whole-run instruction count from the
 * functional pass, and each total carries a 95% confidence half-width
 * from the classical ratio-estimator variance over intervals
 * (Student-t for small interval counts). IPC is estimated the same
 * way with cycles as the denominator.
 *
 * Intervals are independent, so they parallelize perfectly
 * (SimConfig::sampleJobs); estimates are bit-identical at any job
 * count. Checkpoints depend only on (program, page geometry, period)
 * — never on the translation design — so a sweep builds one
 * CheckpointSet per program and shares it across every design column.
 */

#ifndef HBAT_SIM_SAMPLING_HH
#define HBAT_SIM_SAMPLING_HH

#include <memory>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/simulator.hh"

namespace hbat::sim
{

/** One program's checkpoint train for a given sampling period. */
struct CheckpointSet
{
    uint64_t periodInsts = 0;   ///< checkpoint spacing (instructions)
    std::vector<Checkpoint> points;

    uint64_t totalInsts = 0;    ///< exact whole-run instruction count
    cpu::FuncStats func;        ///< exact architectural counts
    uint64_t touchedPages = 0;  ///< exact data footprint

    /** Host thread-CPU seconds the functional pass cost (host-side,
     *  excluded from determinism comparisons). */
    double cpuSeconds = 0;
};

/**
 * Run the functional pass for @p prog and capture a checkpoint every
 * cfg.samplePeriodInsts instructions (the first at instruction 0).
 * Uses cfg's page geometry, MRU setting, and maxInsts cap; the
 * translation design is irrelevant here, so one set serves every
 * design. @p code / @p image as in simulate().
 */
std::shared_ptr<const CheckpointSet> buildCheckpoints(
    const kasm::Program &prog, const SimConfig &cfg,
    std::shared_ptr<const cpu::StaticCode> code = nullptr,
    std::shared_ptr<const vm::ProgramImage> image = nullptr);

/**
 * Sampled counterpart of simulateWithEngine(): estimate the full
 * run's results from detailed measurement intervals seeded by @p
 * ckpts (built on the spot when null — sweeps pass a shared set so
 * the functional pass runs once per program, not once per cell).
 * Requires cfg.samplePeriodInsts != 0; the estimates land in
 * SimResult::sampling alongside a synthesized stat snapshot
 * (formula stats are omitted — they are not reconstructible from
 * interval deltas — and func.* / vm footprint values are the exact
 * functional-pass totals, not estimates).
 */
SimResult simulateSampledWithEngine(
    const kasm::Program &prog, const SimConfig &cfg,
    const EngineFactory &make_engine, const std::string &design_label,
    std::shared_ptr<const cpu::StaticCode> code = nullptr,
    std::shared_ptr<const vm::ProgramImage> image = nullptr,
    std::shared_ptr<const CheckpointSet> ckpts = nullptr);

/**
 * As simulate(), but sampled: dispatches the translation design the
 * same way (customDesign overrides the enum row) and forwards to
 * simulateSampledWithEngine().
 */
SimResult simulateSampled(
    const kasm::Program &prog, const SimConfig &cfg,
    std::shared_ptr<const cpu::StaticCode> code = nullptr,
    std::shared_ptr<const vm::ProgramImage> image = nullptr,
    std::shared_ptr<const CheckpointSet> ckpts = nullptr);

/**
 * Resume a full detailed run from @p ck and run it to completion —
 * the checkpoint-determinism probe: restoring a checkpoint and
 * running detailed must reproduce, stat for stat, a run that
 * fast-forwarded to the same point without a save/restore round trip.
 * No warm replay and no warmup hook: this is an exact continuation,
 * not a sampled interval. cfg.maxInsts caps *total* committed
 * instructions including the checkpoint's prefix.
 */
SimResult simulateFromCheckpoint(
    const kasm::Program &prog, const SimConfig &cfg,
    const Checkpoint &ck,
    std::shared_ptr<const cpu::StaticCode> code = nullptr,
    std::shared_ptr<const vm::ProgramImage> image = nullptr);

} // namespace hbat::sim

#endif // HBAT_SIM_SAMPLING_HH
