#include "sim/fastfwd.hh"

namespace hbat::sim
{

std::vector<Vpn>
Checkpoint::warmVpns() const
{
    if (!warm)
        return {};
    return warm->residentsByAge();
}

FuncExecutor::FuncExecutor(const kasm::Program &prog,
                           vm::PageParams pages, bool page_mru,
                           std::shared_ptr<const cpu::StaticCode> code,
                           std::shared_ptr<const vm::ProgramImage> image)
    : space_(pages, page_mru, std::move(image)),
      core_(space_, prog, std::move(code))
{
    // FuncCore's constructor reads no memory, so loading after it is
    // safe — and mirrors simulateWithEngine()'s construction order.
    if (!space_.hasImage())
        space_.load(prog);
}

size_t
FuncExecutor::addTlbFilter(unsigned entries, tlb::Replacement repl,
                           uint64_t seed)
{
    filters_.push_back(
        Checkpoint::Filter{tlb::TlbArray(entries, repl, seed), {}});
    return filters_.size() - 1;
}

void
FuncExecutor::enableWarmTracking()
{
    if (!warm_)
        warm_.emplace(kWarmEntries, tlb::Replacement::Lru);
}

uint64_t
FuncExecutor::advance(uint64_t max_insts)
{
    const vm::PageParams &pages = space_.params();
    const bool feed = warm_ || ptTrack_ || !filters_.empty();
    uint64_t done = 0;
    while (done < max_insts && !core_.halted()) {
        core_.stepInto(dyn_);
        ++done;
        if (!feed || !dyn_.isMem())
            continue;

        const Vpn vpn = pages.vpn(dyn_.effAddr);
        // The reference tick: the running data-reference count. The
        // step above already counted this access, so the tick matches
        // a pre-increment on the spot — the fig6 convention.
        const cpu::FuncStats &fs = core_.stats();
        const Cycle tick = Cycle(fs.loads + fs.stores);

        if (ptTrack_)
            space_.pageTable().reference(vpn, dyn_.isStore);
        if (warm_)
            warm_->insert(vpn, tick);
        for (Checkpoint::Filter &f : filters_) {
            ++f.stats.refs;
            if (!f.tlb.lookup(vpn, tick)) {
                ++f.stats.misses;
                f.tlb.insert(vpn, tick);
            }
        }
    }
    return done;
}

namespace
{

/**
 * Share page payloads with the run's previous checkpoint: a page
 * whose bytes did not change since simply reuses the earlier copy
 * (both state vectors are vpn-sorted, so one merge pass suffices).
 */
void
sharePages(vm::SpaceState &cur, const vm::SpaceState &prev)
{
    size_t j = 0;
    for (vm::SpaceState::Page &p : cur.pages) {
        while (j < prev.pages.size() && prev.pages[j].vpn < p.vpn)
            ++j;
        if (j == prev.pages.size())
            break;
        const vm::SpaceState::Page &q = prev.pages[j];
        if (q.vpn == p.vpn && *q.data == *p.data)
            p.data = q.data;
    }
}

} // namespace

void
FuncExecutor::save(Checkpoint &out, const Checkpoint *prev) const
{
    out.instCount = core_.stats().instructions;
    core_.saveState(out.core);
    space_.saveState(out.mem);
    if (prev)
        sharePages(out.mem, prev->mem);
    out.filters = filters_;
    out.warm = warm_;
}

void
FuncExecutor::restore(const Checkpoint &ck)
{
    core_.restoreState(ck.core);
    space_.restoreState(ck.mem);
    filters_ = ck.filters;
    warm_ = ck.warm;
}

} // namespace hbat::sim
