#include "sim/at_model.hh"

#include <algorithm>

#include "common/stats.hh"

namespace hbat::sim
{

double
tAt(const AtModelParams &p)
{
    return (1.0 - p.fShielded) *
           (p.tStalled + p.tTlbHit + p.mTlb * p.tTlbMiss);
}

double
tpiAt(const AtModelParams &p, double f_tol)
{
    return p.fMem * (1.0 - f_tol) * tAt(p);
}

AtModelParams
extractModel(const SimResult &result)
{
    const cpu::PipeStats &pipe = result.pipe;
    const tlb::XlateStats &x = pipe.xlate;

    AtModelParams p;
    const uint64_t mem =
        pipe.committedLoads + pipe.committedStores;
    p.fMem = ratio(mem, pipe.committed);
    p.fShielded = ratio(x.shielded, x.translations + x.misses);

    // Mean queueing latency per unshielded request: cycles spent
    // refused a port (NoPort retries and internal queue waits).
    const uint64_t unshielded = x.baseAccesses;
    p.tStalled = ratio(x.queueCycles, std::max<uint64_t>(unshielded, 1));

    // Visible hit latency: multi-level and pretranslation designs pay
    // their upper-level miss penalty; single-level designs overlap
    // fully. Approximate as 2 cycles per base access for shielding
    // designs (the L1-miss minimum), 0 otherwise.
    p.tTlbHit = x.shielded > 0 && x.baseAccesses > 0 ? 2.0 : 0.0;

    p.mTlb = ratio(x.misses, std::max<uint64_t>(x.baseAccesses, 1));
    p.tTlbMiss = 30.0;
    return p;
}

double
measuredTpiAt(const SimResult &result, const SimResult &ideal)
{
    const double cpi =
        ratio(double(result.pipe.cycles),
              double(result.pipe.committed));
    const double cpiIdeal =
        ratio(double(ideal.pipe.cycles),
              double(ideal.pipe.committed));
    return std::max(0.0, cpi - cpiIdeal);
}

double
impliedFtol(const SimResult &result, const SimResult &ideal)
{
    const AtModelParams p = extractModel(result);
    const double exposed = p.fMem * tAt(p);
    if (exposed <= 0.0)
        return 1.0;
    const double f =
        1.0 - measuredTpiAt(result, ideal) / exposed;
    return std::clamp(f, 0.0, 1.0);
}

} // namespace hbat::sim
