/**
 * @file
 * Top-level simulation configuration.
 *
 * Defaults reproduce Table 1's baseline machine: 8-way out-of-order
 * issue, 4 KB pages, 32 integer + 32 FP architected registers, and the
 * T4 reference translation design. The evaluation sections vary one
 * axis at a time: issue model (Figure 7), page size (Figure 8), and
 * register budget (Figure 9).
 */

#ifndef HBAT_SIM_SIM_CONFIG_HH
#define HBAT_SIM_SIM_CONFIG_HH

#include <cstdint>
#include <optional>
#include <string>

#include "cache/cache_model.hh"
#include "cpu/fu_pool.hh"
#include "kasm/vcode.hh"
#include "tlb/design.hh"

namespace hbat::obs
{
class PipeviewWriter;
class TraceSink;
} // namespace hbat::obs

namespace hbat::sim
{

/** One simulation run's configuration. */
struct SimConfig
{
    /** Translation design under test (Table 2). */
    tlb::Design design = tlb::Design::T4;

    /**
     * Config-driven translation design: when set, it overrides the
     * enum row above and @ref designLabel names the run. This is how
     * --sweep cells reach beyond the 13 Table 2 points.
     */
    std::optional<tlb::DesignParams> customDesign;

    /** Display label of customDesign (e.g. "T4 baseEntries=64"). */
    std::string designLabel;

    /** Virtual memory page size in bytes (4096 or 8192). */
    unsigned pageBytes = 4096;

    /** In-order issue instead of out-of-order. */
    bool inOrder = false;

    /// @name Machine structure (defaults = Table 1; see cpu::PipeConfig)
    /// @{
    unsigned issueWidth = 8;        ///< fetch/issue/commit width
    unsigned robSize = 64;
    unsigned lsqSize = 32;
    unsigned fetchQueueSize = 16;
    unsigned cachePorts = 4;        ///< D-cache ports per cycle
    Cycle mispredictPenalty = 3;
    Cycle tlbMissLatency = 30;
    cpu::FuPoolConfig fus;          ///< functional-unit mix
    cache::CacheConfig icache;
    cache::CacheConfig dcache;
    /// @}

    /** Architected register budget the workload is compiled for. */
    kasm::RegBudget budget{32, 32};

    /** Seed for all randomized structures (replacement policies). */
    uint64_t seed = 12345;

    /** Commit limit (safety valve; workloads normally halt first). */
    uint64_t maxInsts = ~uint64_t(0);

    /**
     * Enable the address space's MRU page-pointer cache (a pure
     * host-side optimization). Off only for determinism cross-checks:
     * results must be identical either way.
     */
    bool pageMru = true;

    /// @name Interval sampling (DESIGN.md §14)
    /// @{
    /**
     * Sampled simulation: fast-forward functionally and run the
     * detailed pipeline only for one measurement interval per this
     * many architected instructions (0 = exact detailed simulation of
     * the whole program, the default and the only mode the paper's
     * figures use). Results become estimates with confidence
     * intervals (SimResult::sampling).
     */
    uint64_t samplePeriodInsts = 0;

    /**
     * Detailed instructions run at the head of each sampled interval
     * to warm the pipeline, caches, and TLB before measurement
     * starts; excluded from the estimates.
     */
    uint64_t sampleWarmupInsts = 2000;

    /** Detailed instructions measured per sampled interval. */
    uint64_t sampleMeasureInsts = 4000;

    /**
     * Worker threads for a sampled run's detailed intervals (they are
     * independent and embarrassingly parallel). The harness raises
     * this only for single-cell sweeps — cells are already parallel.
     * Estimates are identical at any value.
     */
    unsigned sampleJobs = 1;
    /// @}

    /**
     * Enable the pipeline's event-driven idle-cycle skipping (another
     * pure host-side optimization, DESIGN.md §9). Off only for A/B
     * debugging (--no-skip): every statistic — including the skip
     * counters themselves — must be identical either way.
     */
    bool idleSkip = true;

    /**
     * Destination for this run's trace events (see obs/trace.hh);
     * nullptr uses the process default sink (stderr). Concurrent runs
     * can each point at their own sink to keep event streams apart.
     */
    obs::TraceSink *traceSink = nullptr;

    /// @name Observability (all off by default; see obs/)
    /// @{
    /**
     * Sample every registered stat each time this many cycles
     * complete (0 = off); the cumulative series lands in
     * SimResult::intervals. Boundaries are exact under idleSkip.
     */
    uint64_t intervalCycles = 0;

    /** Record the per-PC translation profile (pipe.pcProfile). */
    bool pcProfile = false;

    /**
     * Per-instruction O3PipeView lifecycle writer; nullptr = off.
     * Owned by the caller; written from the run's thread only, so
     * concurrent runs need one writer (and file) each.
     */
    obs::PipeviewWriter *pipeview = nullptr;

    /** Accumulate host-time phase timers (pipe.phases). */
    bool selfProfile = false;
    /// @}
};

} // namespace hbat::sim

#endif // HBAT_SIM_SIM_CONFIG_HH
