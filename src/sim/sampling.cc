#include "sim/sampling.hh"

#include <algorithm>
#include <cmath>
#include <ctime>

#include "common/job_pool.hh"
#include "obs/trace.hh"
#include "sim/fastfwd.hh"

namespace hbat::sim
{

namespace
{

/** Thread CPU seconds — the sampling cost metric (per-thread, so
 *  parallel intervals report their own cost, not wall time). */
double
threadCpu()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

/**
 * Two-sided 95% Student-t critical value for @p df degrees of
 * freedom; the normal 1.96 beyond the table. Sampled runs usually
 * have dozens to thousands of intervals, but tiny programs can leave
 * a handful — the t correction keeps their intervals honest.
 */
double
tCrit95(uint64_t df)
{
    static const double kTable[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (df == 0)
        return 0.0;
    if (df <= sizeof(kTable) / sizeof(kTable[0]))
        return kTable[df - 1];
    return 1.96;
}

/**
 * Classical ratio estimator R = sum(num) / sum(den) over paired
 * interval observations, with its 95% confidence half-width:
 * s^2 = sum((num_i - R den_i)^2) / (n-1), se = sqrt(s^2/n) / mean(den).
 */
double
ratioEstimate(const std::vector<double> &num,
              const std::vector<double> &den, double &ci95)
{
    const size_t n = num.size();
    double sn = 0, sd = 0;
    for (size_t i = 0; i < n; ++i) {
        sn += num[i];
        sd += den[i];
    }
    ci95 = 0.0;
    if (sd <= 0)
        return 0.0;
    const double r = sn / sd;
    if (n >= 2) {
        double s2 = 0;
        for (size_t i = 0; i < n; ++i) {
            const double e = num[i] - r * den[i];
            s2 += e * e;
        }
        s2 /= double(n - 1);
        const double dbar = sd / double(n);
        ci95 = tCrit95(n - 1) * (std::sqrt(s2 / double(n)) / dbar);
    }
    return r;
}

/** Locate a stat by name in a (name-sorted) snapshot. */
const obs::StatValue *
findStat(const obs::StatSnapshot &snap, const std::string &name)
{
    for (const obs::StatValue &sv : snap)
        if (sv.name == name)
            return &sv;
    return nullptr;
}

/** The simulateWithEngine() machine-parameter copy, shared by the
 *  interval runner and the checkpoint-continuation runner. */
cpu::PipeConfig
pipeConfigFrom(const SimConfig &cfg)
{
    cpu::PipeConfig pc;
    pc.inOrder = cfg.inOrder;
    pc.width = cfg.issueWidth;
    pc.robSize = cfg.robSize;
    pc.lsqSize = cfg.lsqSize;
    pc.fetchQueueSize = cfg.fetchQueueSize;
    pc.cachePorts = cfg.cachePorts;
    pc.mispredictPenalty = cfg.mispredictPenalty;
    pc.tlbMissLatency = cfg.tlbMissLatency;
    pc.fus = cfg.fus;
    pc.icache = cfg.icache;
    pc.dcache = cfg.dcache;
    pc.idleSkip = cfg.idleSkip;
    return pc;
}

/** One detailed interval's raw yield: registry snapshots at the
 *  warmup boundary and at the end of the measurement window. */
struct IntervalOut
{
    obs::StatSnapshot warm;
    obs::StatSnapshot end;
    double cpuSeconds = 0;
};

/**
 * Run one detailed measurement interval seeded by @p ck: restore the
 * architectural state, replay the warm VPN set into a fresh engine,
 * and run the full pipeline for warmup + measure instructions.
 */
IntervalOut
runInterval(const kasm::Program &prog, const SimConfig &cfg,
            const EngineFactory &make_engine, const Checkpoint &ck,
            const std::shared_ptr<const cpu::StaticCode> &code,
            const std::shared_ptr<const vm::ProgramImage> &image)
{
    IntervalOut out;
    const double t0 = threadCpu();

    // Intervals may run on pool threads: route this run's trace
    // events like any other run would.
    obs::ScopedTraceSink trace_sink(
        cfg.traceSink ? *cfg.traceSink : obs::defaultTraceSink());

    vm::AddressSpace space{vm::PageParams(cfg.pageBytes), cfg.pageMru,
                           image};
    if (!space.hasImage())
        space.load(prog);
    cpu::FuncCore core(space, prog, code);
    space.restoreState(ck.mem);
    core.restoreState(ck.core);

    auto engine = make_engine(space.pageTable());
    for (Vpn vpn : ck.warmVpns())
        engine->fill(vpn, 0);

    obs::StatRegistry reg;
    cpu::PipeConfig pipe_cfg = pipeConfigFrom(cfg);
    pipe_cfg.warmupInsts = cfg.sampleWarmupInsts;
    pipe_cfg.onWarmupDone = [&out, &reg](Cycle) {
        out.warm = reg.snapshot();
    };

    cpu::Pipeline pipe(pipe_cfg, core, *engine, space.params());
    pipe.registerStats(reg, "pipe");
    engine->registerStats(reg, "xlate");
    cpu::registerStats(reg, "func", core.stats());
    reg.formula("vm.touched_pages", "distinct pages touched",
                [&space] { return double(space.touchedPages()); });

    // Never commit past the run-wide cap: the checkpoint's prefix
    // already accounts for ck.instCount of it.
    uint64_t budget = cfg.sampleWarmupInsts + cfg.sampleMeasureInsts;
    if (cfg.maxInsts != ~uint64_t(0)) {
        hbat_assert(cfg.maxInsts >= ck.instCount,
                    "checkpoint beyond maxInsts");
        budget = std::min(budget, cfg.maxInsts - ck.instCount);
    }
    pipe.run(budget);
    out.end = reg.snapshot();
    out.cpuSeconds = threadCpu() - t0;
    return out;
}

} // namespace

std::shared_ptr<const CheckpointSet>
buildCheckpoints(const kasm::Program &prog, const SimConfig &cfg,
                 std::shared_ptr<const cpu::StaticCode> code,
                 std::shared_ptr<const vm::ProgramImage> image)
{
    hbat_assert(cfg.samplePeriodInsts > 0,
                "checkpoint spacing must be positive");
    auto set = std::make_shared<CheckpointSet>();
    set->periodInsts = cfg.samplePeriodInsts;

    const double t0 = threadCpu();
    FuncExecutor fx(prog, vm::PageParams(cfg.pageBytes), cfg.pageMru,
                    std::move(code), std::move(image));
    fx.enableWarmTracking();
    fx.trackPageTable(true);

    const uint64_t cap = cfg.maxInsts;
    while (!fx.halted() && fx.instCount() < cap) {
        Checkpoint ck;
        fx.save(ck, set->points.empty() ? nullptr
                                        : &set->points.back());
        set->points.push_back(std::move(ck));
        const uint64_t target = std::min(
            cap, uint64_t(set->points.size()) * set->periodInsts);
        fx.advance(target - fx.instCount());
        if (target == cap)
            break;
    }

    set->totalInsts = fx.instCount();
    set->func = fx.core().stats();
    set->touchedPages = fx.space().touchedPages();
    set->cpuSeconds = threadCpu() - t0;
    return set;
}

SimResult
simulateSampledWithEngine(const kasm::Program &prog,
                          const SimConfig &cfg,
                          const EngineFactory &make_engine,
                          const std::string &design_label,
                          std::shared_ptr<const cpu::StaticCode> code,
                          std::shared_ptr<const vm::ProgramImage> image,
                          std::shared_ptr<const CheckpointSet> ckpts)
{
    hbat_assert(cfg.samplePeriodInsts > 0,
                "sampled run without a sampling period");
    // Sampled estimates are whole-run reconstructions; the per-cycle
    // observability modes have no meaningful sampled counterpart.
    hbat_assert(cfg.intervalCycles == 0 && !cfg.pipeview &&
                    !cfg.pcProfile,
                "interval stats, pipeview, and the PC profile require "
                "exact (unsampled) simulation");

    detail::SimRunGauge gauge;

    double ownPassCpu = 0;
    if (!ckpts) {
        const double t0 = threadCpu();
        ckpts = buildCheckpoints(prog, cfg, code, image);
        ownPassCpu = threadCpu() - t0;
    }
    const CheckpointSet &set = *ckpts;
    hbat_assert(set.periodInsts == cfg.samplePeriodInsts,
                "checkpoint set built for a different period");

    // Detailed intervals: independent, deterministic, and written to
    // pre-sized slots — identical estimates at any job count.
    std::vector<IntervalOut> outs(set.points.size());
    parallelFor(set.points.size(), std::max(1u, cfg.sampleJobs),
                [&](size_t i) {
                    outs[i] = runInterval(prog, cfg, make_engine,
                                          set.points[i], code, image);
                });

    SimResult res;
    res.program = prog.name;
    res.design = design_label;
    res.func = set.func;
    res.touchedPages = set.touchedPages;

    SamplingInfo &info = res.sampling;
    info.periodInsts = cfg.samplePeriodInsts;
    info.warmupInsts = cfg.sampleWarmupInsts;
    info.measureInsts = cfg.sampleMeasureInsts;
    info.totalInsts = set.totalInsts;
    info.intervalCpuSeconds = ownPassCpu;
    for (const IntervalOut &o : outs)
        info.intervalCpuSeconds += o.cpuSeconds;

    // Usable intervals completed their warmup and measured at least
    // one instruction; a truncated tail interval contributes nothing.
    std::vector<const IntervalOut *> used;
    std::vector<double> insts, cycles;
    for (const IntervalOut &o : outs) {
        if (o.warm.empty())
            continue;
        const obs::StatValue *wc = findStat(o.warm, "pipe.committed");
        const obs::StatValue *ec = findStat(o.end, "pipe.committed");
        const obs::StatValue *wy = findStat(o.warm, "pipe.cycles");
        const obs::StatValue *ey = findStat(o.end, "pipe.cycles");
        hbat_assert(wc && ec && wy && ey, "pipe stats missing");
        const double m = ec->value - wc->value;
        const double c = ey->value - wy->value;
        if (m <= 0 || c <= 0)
            continue;
        used.push_back(&o);
        insts.push_back(m);
        cycles.push_back(c);
    }

    if (used.empty()) {
        // The program is too short for even one full interval (it
        // halted inside every warmup window). Fall back to the exact
        // detailed run — still correct, just unsampled.
        SimConfig exact = cfg;
        exact.samplePeriodInsts = 0;
        return simulateWithEngine(prog, exact, make_engine,
                                  design_label, std::move(code),
                                  std::move(image));
    }

    info.enabled = true;
    info.intervals = used.size();
    for (size_t i = 0; i < used.size(); ++i) {
        info.measuredInsts += uint64_t(std::llround(insts[i]));
        info.measuredCycles += uint64_t(std::llround(cycles[i]));
    }
    info.ipc = ratioEstimate(insts, cycles, info.ipcCi95);

    const double totalD = double(set.totalInsts);

    // Reconstruct the stat snapshot: every counter extrapolates by
    // the ratio estimator against measured instructions. Formulas are
    // omitted (not reconstructible from deltas); the architectural
    // counters are replaced by the functional pass's exact totals
    // below.
    const obs::StatSnapshot &tmpl = used.front()->end;
    std::vector<double> deltas(used.size());
    auto estimate = [&](double &ci95) {
        double r = ratioEstimate(deltas, insts, ci95);
        ci95 *= totalD;
        return r * totalD;
    };

    obs::StatSnapshot synth;
    for (size_t j = 0; j < tmpl.size(); ++j) {
        if (tmpl[j].kind == obs::StatKind::Formula)
            continue;
        obs::StatValue sv = tmpl[j];
        for (const IntervalOut *o : used)
            hbat_assert(o->warm[j].name == sv.name &&
                            o->end[j].name == sv.name,
                        "interval snapshots out of line");
        switch (sv.kind) {
          case obs::StatKind::Scalar: {
            for (size_t i = 0; i < used.size(); ++i)
                deltas[i] = used[i]->end[j].value -
                            used[i]->warm[j].value;
            double ci = 0;
            sv.value = estimate(ci);
            info.scalars.push_back(
                SamplingEstimate{sv.name, sv.value, ci});
            break;
          }
          case obs::StatKind::Vector: {
            for (size_t e = 0; e < sv.values.size(); ++e) {
                for (size_t i = 0; i < used.size(); ++i)
                    deltas[i] = used[i]->end[j].values[e] -
                                used[i]->warm[j].values[e];
                double ci = 0;
                sv.values[e] = estimate(ci);
            }
            break;
          }
          case obs::StatKind::Histogram: {
            for (size_t e = 0; e < sv.values.size(); ++e) {
                for (size_t i = 0; i < used.size(); ++i)
                    deltas[i] = used[i]->end[j].values[e] -
                                used[i]->warm[j].values[e];
                double ci = 0;
                sv.values[e] = estimate(ci);
            }
            for (size_t i = 0; i < used.size(); ++i)
                deltas[i] = double(used[i]->end[j].samples) -
                            double(used[i]->warm[j].samples);
            double ci = 0;
            sv.samples =
                uint64_t(std::llround(std::max(0.0, estimate(ci))));
            for (size_t i = 0; i < used.size(); ++i)
                deltas[i] = double(used[i]->end[j].sum) -
                            double(used[i]->warm[j].sum);
            sv.sum =
                uint64_t(std::llround(std::max(0.0, estimate(ci))));
            sv.mean = sv.samples == 0
                          ? 0.0
                          : double(sv.sum) / double(sv.samples);
            break;
          }
          case obs::StatKind::Formula:
            break;
        }
        synth.push_back(std::move(sv));
    }

    // The architectural counters are known exactly — the functional
    // pass ran the whole program. Report them exactly, estimator CI
    // zero.
    const std::pair<const char *, uint64_t> exactStats[] = {
        {"func.instructions", set.func.instructions},
        {"func.loads", set.func.loads},
        {"func.stores", set.func.stores},
        {"func.branches", set.func.branches},
        {"func.taken_branches", set.func.takenBranches},
        {"func.fp_ops", set.func.fpOps},
    };
    for (obs::StatValue &sv : synth) {
        for (const auto &[name, v] : exactStats) {
            if (sv.name == name) {
                sv.value = double(v);
                for (SamplingEstimate &e : info.scalars) {
                    if (e.name == name) {
                        e.total = double(v);
                        e.ci95 = 0.0;
                    }
                }
            }
        }
    }
    res.stats = std::move(synth);

    // Headline timing numbers: exact instruction count, estimated
    // cycle count (consistent with the snapshot's pipe.cycles).
    res.pipe.committed = set.totalInsts;
    res.pipe.committedLoads = set.func.loads;
    res.pipe.committedStores = set.func.stores;
    double cycCi = 0;
    res.pipe.cycles = Cycle(std::llround(
        std::max(1.0, ratioEstimate(cycles, insts, cycCi) * totalD)));
    return res;
}

SimResult
simulateSampled(const kasm::Program &prog, const SimConfig &cfg,
                std::shared_ptr<const cpu::StaticCode> code,
                std::shared_ptr<const vm::ProgramImage> image,
                std::shared_ptr<const CheckpointSet> ckpts)
{
    std::string label;
    const EngineFactory factory = defaultEngineFactory(cfg, label);
    return simulateSampledWithEngine(prog, cfg, factory, label,
                                     std::move(code), std::move(image),
                                     std::move(ckpts));
}

SimResult
simulateFromCheckpoint(const kasm::Program &prog, const SimConfig &cfg,
                       const Checkpoint &ck,
                       std::shared_ptr<const cpu::StaticCode> code,
                       std::shared_ptr<const vm::ProgramImage> image)
{
    detail::SimRunGauge gauge;
    obs::ScopedTraceSink trace_sink(
        cfg.traceSink ? *cfg.traceSink : obs::defaultTraceSink());

    vm::AddressSpace space{vm::PageParams(cfg.pageBytes), cfg.pageMru,
                           std::move(image)};
    if (!space.hasImage())
        space.load(prog);
    cpu::FuncCore core(space, prog, std::move(code));
    space.restoreState(ck.mem);
    core.restoreState(ck.core);

    std::string label;
    const EngineFactory factory = defaultEngineFactory(cfg, label);
    auto engine = factory(space.pageTable());

    SimResult res;
    obs::StatRegistry reg;
    cpu::Pipeline pipe(pipeConfigFrom(cfg), core, *engine,
                       space.params());
    pipe.registerStats(reg, "pipe");
    engine->registerStats(reg, "xlate");
    cpu::registerStats(reg, "func", core.stats());
    reg.formula("vm.touched_pages", "distinct pages touched",
                [&space] { return double(space.touchedPages()); });

    uint64_t budget = ~uint64_t(0);
    if (cfg.maxInsts != ~uint64_t(0)) {
        hbat_assert(cfg.maxInsts >= ck.instCount,
                    "checkpoint beyond maxInsts");
        budget = cfg.maxInsts - ck.instCount;
    }

    res.program = prog.name;
    res.design = label;
    res.pipe = pipe.run(budget);
    res.func = core.stats();
    res.touchedPages = space.touchedPages();
    res.stats = reg.snapshot();
    return res;
}

} // namespace hbat::sim
