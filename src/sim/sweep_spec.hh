/**
 * @file
 * Sweep-spec expansion: a parsed .conf design-space spec becomes the
 * flat list of simulation columns the bench harness runs.
 *
 * A spec's `[sweep]` section (see DESIGN.md §11) names the design
 * sections to sweep and may bind machine keys; every list-valued key
 * — in a design section or in `[sweep]` — is a cross-product axis:
 *
 *     [sweep]
 *     designs  = [T4, I4]
 *     programs = [compress, go]
 *     pageBytes = [4096, 8192]     # machine axis
 *     intRegs   = [8, 32]          # another axis
 *     fpRegs    = $(intRegs)       # scalar, re-evaluated per cell
 *
 * expands into 2 designs x 2 page sizes x 2 budgets = 8 columns; the
 * programs stay the row dimension of the existing (program, design)
 * cell grid. Column order is deterministic: designs in listed order,
 * then design-section axes, then machine axes in declaration order,
 * rightmost fastest.
 *
 * Machine keys map onto sim::SimConfig: pageBytes, inOrder, intRegs,
 * fpRegs, seed, scale, issueWidth, robSize, lsqSize, fetchQueueSize,
 * cachePorts, mispredictPenalty, tlbMissLatency, the FU mix (intAlu,
 * intMultDiv, memPorts, fpAdd, fpMultDiv), and the cache geometry
 * (icacheBytes, icacheAssoc, icacheBlockBytes, icacheMissLatency, and
 * the dcache* four), plus the sampled-simulation knobs samplePeriod,
 * sampleWarmup, and sampleMeasure (DESIGN.md §14). Anything else is a
 * ConfigKey error.
 */

#ifndef HBAT_SIM_SWEEP_SPEC_HH
#define HBAT_SIM_SWEEP_SPEC_HH

#include <string>
#include <utility>
#include <vector>

#include "config/config.hh"
#include "sim/sim_config.hh"

namespace hbat::sim
{

/** One expanded column of the (program, design) cell grid. */
struct SweepColumnSpec
{
    /** Display label: design name plus one " key=value" per axis. */
    std::string label;

    /** The design section this column resolved from. */
    std::string designSection;

    /** Fully-resolved configuration (customDesign always set). */
    SimConfig sim;

    /** Workload scale from the spec's `scale` key (when bound). */
    bool hasScale = false;
    double scale = 0.0;

    /**
     * The column's resolved config, echoed into the sweep JSON meta:
     * the design section, every design/machine axis setting, and every
     * machine key the spec binds.
     */
    std::vector<std::pair<std::string, std::string>> echo;
};

/** The whole expanded design space of one spec. */
struct SweepSpec
{
    /** Programs from the spec's `programs` key; empty = harness default. */
    std::vector<std::string> programs;

    std::vector<SweepColumnSpec> columns;
};

/**
 * Expand @p cfg's `[sweep]` section into columns, starting each column
 * from @p defaults (CLI-level SimConfig). False with ConfigKey /
 * ConfigExpr / ConfigMachine diagnostics when the spec is unusable.
 */
bool expandSweepSpec(const config::Config &cfg,
                     const SimConfig &defaults, SweepSpec &out,
                     verify::Report &report);

} // namespace hbat::sim

#endif // HBAT_SIM_SWEEP_SPEC_HH
