#include "sim/simulator.hh"

#include <atomic>

#include "obs/trace.hh"
#include "sim/sampling.hh"
#include "tlb/design.hh"
#include "vm/address_space.hh"

namespace hbat::sim
{

namespace
{

std::atomic<int> activeRuns_{0};

/** Counts the run in/out of the in-flight gauge, exception-safely. */
struct RunScope
{
    RunScope() { activeRuns_.fetch_add(1, std::memory_order_relaxed); }
    ~RunScope()
    {
        const int was =
            activeRuns_.fetch_sub(1, std::memory_order_relaxed);
        hbat_assert(was >= 1, "simulation run counter underflow");
    }
};

} // namespace

int
activeSimulations()
{
    return activeRuns_.load(std::memory_order_relaxed);
}

detail::SimRunGauge::SimRunGauge()
{
    activeRuns_.fetch_add(1, std::memory_order_relaxed);
}

detail::SimRunGauge::~SimRunGauge()
{
    const int was = activeRuns_.fetch_sub(1, std::memory_order_relaxed);
    hbat_assert(was >= 1, "simulation run counter underflow");
}

SimResult
simulateWithEngine(const kasm::Program &prog, const SimConfig &cfg,
                   const EngineFactory &make_engine,
                   const std::string &design_label,
                   std::shared_ptr<const cpu::StaticCode> code,
                   std::shared_ptr<const vm::ProgramImage> image)
{
    // Sampled mode replaces the single detailed run with a functional
    // fast-forward plus per-interval detailed runs (sim/sampling.hh);
    // the sampled driver never calls back into this function.
    if (cfg.samplePeriodInsts != 0) {
        return simulateSampledWithEngine(prog, cfg, make_engine,
                                         design_label, std::move(code),
                                         std::move(image));
    }

    RunScope scope;

    // Per-run trace destination: the run's events (emitted on this
    // thread) go to the configured sink, or the shared default.
    obs::ScopedTraceSink trace_sink(
        cfg.traceSink ? *cfg.traceSink : obs::defaultTraceSink());

    // Everything below is built fresh per run from (prog, cfg); the
    // only inputs shared with other runs are the immutable program
    // image and the read-only configuration.
    vm::AddressSpace space{vm::PageParams(cfg.pageBytes), cfg.pageMru,
                           std::move(image)};
    if (!space.hasImage())
        space.load(prog);

    cpu::FuncCore core(space, prog, std::move(code));
    auto engine = make_engine(space.pageTable());

    // Declared before the pipeline so the interval hook (copied into
    // the pipeline at construction) can capture them; the registry is
    // populated right after, before run().
    SimResult res;
    obs::StatRegistry reg;

    cpu::PipeConfig pipe_cfg;
    pipe_cfg.inOrder = cfg.inOrder;
    pipe_cfg.width = cfg.issueWidth;
    pipe_cfg.robSize = cfg.robSize;
    pipe_cfg.lsqSize = cfg.lsqSize;
    pipe_cfg.fetchQueueSize = cfg.fetchQueueSize;
    pipe_cfg.cachePorts = cfg.cachePorts;
    pipe_cfg.mispredictPenalty = cfg.mispredictPenalty;
    pipe_cfg.tlbMissLatency = cfg.tlbMissLatency;
    pipe_cfg.fus = cfg.fus;
    pipe_cfg.icache = cfg.icache;
    pipe_cfg.dcache = cfg.dcache;
    pipe_cfg.idleSkip = cfg.idleSkip;
    pipe_cfg.pcProfile = cfg.pcProfile;
    pipe_cfg.pipeview = cfg.pipeview;
    pipe_cfg.selfProfile = cfg.selfProfile;
    if (cfg.intervalCycles != 0) {
        res.intervals.interval = cfg.intervalCycles;
        pipe_cfg.statInterval = cfg.intervalCycles;
        pipe_cfg.onInterval = [&res, &reg](Cycle c) {
            res.intervals.samples.push_back(
                obs::IntervalSample{c, reg.snapshot()});
        };
    }

    cpu::Pipeline pipe(pipe_cfg, core, *engine, space.params());

    // Register every counter against the *live* components — the same
    // names and end-of-run values as registering the returned copies,
    // but snapshottable mid-run by the interval hook.
    pipe.registerStats(reg, "pipe");
    engine->registerStats(reg, "xlate");
    cpu::registerStats(reg, "func", core.stats());
    reg.formula("vm.touched_pages", "distinct pages touched",
                [&space] { return double(space.touchedPages()); });

    res.program = prog.name;
    res.design = design_label;
    res.pipe = pipe.run(cfg.maxInsts);
    res.func = core.stats();
    res.touchedPages = space.touchedPages();

    // Snapshot every counter while the components are still alive; the
    // result carries plain data, not references.
    res.stats = reg.snapshot();
    return res;
}

EngineFactory
defaultEngineFactory(const SimConfig &cfg, std::string &label)
{
    // A config-driven design (sweep cell) overrides the enum row. The
    // factory captures cfg by reference: callers keep the config alive
    // for the duration of the run, as simulate() itself does.
    if (cfg.customDesign) {
        label = cfg.designLabel.empty() ? "custom" : cfg.designLabel;
        return [&cfg](vm::PageTable &pt) {
            return tlb::makeEngine(*cfg.customDesign, pt, cfg.seed);
        };
    }
    label = tlb::designName(cfg.design);
    return [&cfg](vm::PageTable &pt) {
        return tlb::makeEngine(cfg.design, pt, cfg.seed);
    };
}

SimResult
simulate(const kasm::Program &prog, const SimConfig &cfg,
         std::shared_ptr<const cpu::StaticCode> code,
         std::shared_ptr<const vm::ProgramImage> image)
{
    std::string label;
    const EngineFactory factory = defaultEngineFactory(cfg, label);
    return simulateWithEngine(prog, cfg, factory, label,
                              std::move(code), std::move(image));
}

} // namespace hbat::sim
