/**
 * @file
 * One-call simulation driver: program + configuration -> results.
 */

#ifndef HBAT_SIM_SIMULATOR_HH
#define HBAT_SIM_SIMULATOR_HH

#include <functional>
#include <memory>
#include <string>

#include "cpu/pipeline.hh"
#include "kasm/program.hh"
#include "sim/sim_config.hh"

namespace hbat::sim
{

/** Results of a timed run. */
struct SimResult
{
    std::string program;        ///< workload name
    std::string design;         ///< translation design mnemonic
    cpu::PipeStats pipe;        ///< timing statistics
    cpu::FuncStats func;        ///< architectural counts
    uint64_t touchedPages = 0;  ///< data footprint in pages

    /**
     * Every registered statistic of the run, snapshotted after the
     * pipeline finished (the live components are gone by the time the
     * caller sees this). Includes the design-specific xlate stats.
     */
    obs::StatSnapshot stats;

    double ipc() const { return pipe.ipc(); }
    Cycle cycles() const { return pipe.cycles; }
};

/**
 * Load @p prog into a fresh address space and run it to completion on
 * the configured machine.
 */
SimResult simulate(const kasm::Program &prog, const SimConfig &cfg);

/** Factory for custom translation engines (ablation studies). */
using EngineFactory =
    std::function<std::unique_ptr<tlb::TranslationEngine>(
        vm::PageTable &)>;

/**
 * As simulate(), but with a caller-supplied translation engine; the
 * cfg.design field is ignored and @p design_label is reported instead.
 */
SimResult simulateWithEngine(const kasm::Program &prog,
                             const SimConfig &cfg,
                             const EngineFactory &make_engine,
                             const std::string &design_label);

} // namespace hbat::sim

#endif // HBAT_SIM_SIMULATOR_HH
