/**
 * @file
 * One-call simulation driver: program + configuration -> results.
 *
 * Re-entrancy contract: simulate() and simulateWithEngine() are
 * re-entrant and safe to call from many threads at once, which is what
 * lets the bench harness run sweep cells on a worker pool. The
 * guarantees, audited per layer:
 *
 *  - every stateful component (address space, functional core,
 *    translation engine, pipeline, StatRegistry) is constructed fresh
 *    inside the call and dies before it returns;
 *  - all randomness comes from per-run Rng instances seeded from
 *    SimConfig::seed — there is no global RNG — so results depend only
 *    on (program, config), never on thread scheduling;
 *  - the shared inputs (the kasm::Program image, the SimConfig) are
 *    taken by const reference and never written;
 *  - the one process-wide mutable in the simulator, the obs trace
 *    mask, is an atomic initialized under a once_flag, and trace
 *    output goes through a per-run TraceSink handle
 *    (SimConfig::traceSink).
 *
 * Callers providing an EngineFactory must keep the factory's own
 * captures thread-safe; the engine it returns is per-run.
 */

#ifndef HBAT_SIM_SIMULATOR_HH
#define HBAT_SIM_SIMULATOR_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/pipeline.hh"
#include "kasm/program.hh"
#include "obs/interval.hh"
#include "sim/sim_config.hh"
#include "vm/program_image.hh"

namespace hbat::sim
{

/** One statistic's sampled-run estimate (see DESIGN.md §14). */
struct SamplingEstimate
{
    std::string name;   ///< registered stat name (e.g. "xlate.misses")
    double total = 0;   ///< extrapolated whole-run total
    double ci95 = 0;    ///< 95% confidence half-width on the total
};

/**
 * How a sampled run's estimates were formed. Everything here except
 * intervalCpuSeconds is deterministic for a given (program, config) —
 * independent of sampleJobs and host scheduling.
 */
struct SamplingInfo
{
    bool enabled = false;
    uint64_t periodInsts = 0;   ///< instructions per sampling period
    uint64_t warmupInsts = 0;   ///< detailed warmup per interval
    uint64_t measureInsts = 0;  ///< detailed measurement per interval
    uint64_t intervals = 0;     ///< usable measurement intervals
    uint64_t totalInsts = 0;    ///< exact whole-run instruction count
    uint64_t measuredInsts = 0; ///< instructions inside measurements
    uint64_t measuredCycles = 0;///< cycles inside measurements
    double ipc = 0;             ///< ratio-estimated IPC
    double ipcCi95 = 0;         ///< 95% confidence half-width on IPC
    /** Host thread-CPU seconds spent in the detailed intervals (the
     *  functional pass is timed by its CheckpointSet). */
    double intervalCpuSeconds = 0;
    /** Per-scalar-stat extrapolated totals with confidence widths. */
    std::vector<SamplingEstimate> scalars;
};

/** Results of a timed run. */
struct SimResult
{
    std::string program;        ///< workload name
    std::string design;         ///< translation design mnemonic
    cpu::PipeStats pipe;        ///< timing statistics
    cpu::FuncStats func;        ///< architectural counts
    uint64_t touchedPages = 0;  ///< data footprint in pages

    /**
     * Every registered statistic of the run, snapshotted after the
     * pipeline finished (the live components are gone by the time the
     * caller sees this). Includes the design-specific xlate stats.
     */
    obs::StatSnapshot stats;

    /**
     * Interval stat time-series (cumulative samples at every
     * SimConfig::intervalCycles boundary plus one final partial
     * sample). Empty unless sampling was configured.
     */
    obs::IntervalSeries intervals;

    /**
     * Sampling metadata: how the estimates were formed, with per-stat
     * confidence intervals. enabled only when the run was sampled
     * (SimConfig::samplePeriodInsts != 0); exact runs leave it
     * default-constructed.
     */
    SamplingInfo sampling;

    double ipc() const { return pipe.ipc(); }
    Cycle cycles() const { return pipe.cycles; }
};

/**
 * Load @p prog into a fresh address space and run it to completion on
 * the configured machine.
 *
 * @param code optional pre-decoded image of @p prog shared across
 *     runs (see cpu::StaticCode); null decodes privately. Sweeps
 *     should build one per program so text is decoded once, not once
 *     per (program, design) cell.
 * @param image optional shared page image of @p prog (see
 *     vm::ProgramImage); null loads the program into the address
 *     space privately. Must be built from @p prog with the same page
 *     size as cfg.pageBytes. Sweeps should build one per program so
 *     the pages are written once, then cloned copy-on-write per cell.
 */
SimResult
simulate(const kasm::Program &prog, const SimConfig &cfg,
         std::shared_ptr<const cpu::StaticCode> code = nullptr,
         std::shared_ptr<const vm::ProgramImage> image = nullptr);

/**
 * The number of simulate()/simulateWithEngine() calls currently in
 * flight across all threads — an observability gauge for the parallel
 * harness (and the invariant check that every run balances its
 * enter/exit, asserted on exit).
 */
int activeSimulations();

/** Factory for custom translation engines (ablation studies). */
using EngineFactory =
    std::function<std::unique_ptr<tlb::TranslationEngine>(
        vm::PageTable &)>;

/**
 * As simulate(), but with a caller-supplied translation engine; the
 * cfg.design field is ignored and @p design_label is reported instead.
 */
SimResult
simulateWithEngine(const kasm::Program &prog, const SimConfig &cfg,
                   const EngineFactory &make_engine,
                   const std::string &design_label,
                   std::shared_ptr<const cpu::StaticCode> code = nullptr,
                   std::shared_ptr<const vm::ProgramImage> image = nullptr);

/**
 * The engine factory simulate() would use for @p cfg — the custom
 * design when one is set, the enum row otherwise — plus the display
 * label it would report in @p label. Lets the sampled-simulation
 * driver (sim/sampling.hh) dispatch designs exactly like simulate().
 */
EngineFactory defaultEngineFactory(const SimConfig &cfg,
                                   std::string &label);

namespace detail
{
/** RAII enter/exit of the gauge behind activeSimulations(), for
 *  simulation drivers living outside simulator.cc. */
struct SimRunGauge
{
    SimRunGauge();
    ~SimRunGauge();
    SimRunGauge(const SimRunGauge &) = delete;
    SimRunGauge &operator=(const SimRunGauge &) = delete;
};
} // namespace detail

} // namespace hbat::sim

#endif // HBAT_SIM_SIMULATOR_HH
