#include "sim/sweep_spec.hh"

#include <limits>

#include "common/log.hh"
#include "tlb/design_config.hh"

namespace hbat::sim
{

namespace
{

using config::Config;
using config::Overlay;
using config::Section;
using config::Value;
using verify::Diag;
using verify::Report;
using verify::Severity;

/** Every machine key the [sweep] section may bind. */
const char *const kMachineKeys[] = {
    "pageBytes",        "inOrder",          "intRegs",
    "fpRegs",           "seed",             "scale",
    "issueWidth",       "robSize",          "lsqSize",
    "fetchQueueSize",   "cachePorts",       "mispredictPenalty",
    "tlbMissLatency",   "intAlu",           "intMultDiv",
    "memPorts",         "fpAdd",            "fpMultDiv",
    "icacheBytes",      "icacheAssoc",      "icacheBlockBytes",
    "icacheMissLatency", "dcacheBytes",     "dcacheAssoc",
    "dcacheBlockBytes", "dcacheMissLatency", "samplePeriod",
    "sampleWarmup",     "sampleMeasure",
};

bool
isMachineKey(const std::string &key)
{
    for (const char *k : kMachineKeys)
        if (key == k)
            return true;
    return false;
}

void
specError(Report &report, const Config &cfg, Diag code,
          const std::string &msg)
{
    report.add(code, Severity::Error, 0,
               hbat::detail::concat(cfg.origin(), ": [sweep]: ", msg));
}

/** Assign one resolved machine value into @p col. */
bool
applyMachineKey(const Config &cfg, const std::string &key,
                const Value &v, SweepColumnSpec &col, Report &report)
{
    auto bad = [&](const char *want) {
        specError(report, cfg, Diag::ConfigKey,
                  hbat::detail::concat("key '", key, "' must be ", want,
                                       ", got ", v.render()));
        return false;
    };
    auto toUnsigned = [&](auto &field) {
        if (v.kind != Value::Kind::Int || v.i < 0 ||
            v.i > int64_t(std::numeric_limits<unsigned>::max()))
            return bad("a non-negative integer");
        field = static_cast<std::remove_reference_t<decltype(field)>>(
            v.i);
        return true;
    };

    SimConfig &sc = col.sim;
    if (key == "inOrder") {
        if (v.kind != Value::Kind::Bool)
            return bad("true or false");
        sc.inOrder = v.b;
        return true;
    }
    if (key == "scale") {
        if (!v.isNumber() || v.asFloat() <= 0.0)
            return bad("a positive number");
        col.hasScale = true;
        col.scale = v.asFloat();
        return true;
    }
    if (key == "seed") {
        if (v.kind != Value::Kind::Int || v.i < 0)
            return bad("a non-negative integer");
        sc.seed = uint64_t(v.i);
        return true;
    }
    if (key == "intRegs") {
        if (v.kind != Value::Kind::Int)
            return bad("an integer");
        sc.budget.intRegs = int(v.i);
        return true;
    }
    if (key == "fpRegs") {
        if (v.kind != Value::Kind::Int)
            return bad("an integer");
        sc.budget.fpRegs = int(v.i);
        return true;
    }

    if (key == "pageBytes") return toUnsigned(sc.pageBytes);
    if (key == "issueWidth") return toUnsigned(sc.issueWidth);
    if (key == "robSize") return toUnsigned(sc.robSize);
    if (key == "lsqSize") return toUnsigned(sc.lsqSize);
    if (key == "fetchQueueSize") return toUnsigned(sc.fetchQueueSize);
    if (key == "cachePorts") return toUnsigned(sc.cachePorts);
    if (key == "mispredictPenalty")
        return toUnsigned(sc.mispredictPenalty);
    if (key == "tlbMissLatency") return toUnsigned(sc.tlbMissLatency);
    if (key == "intAlu") return toUnsigned(sc.fus.intAlu);
    if (key == "intMultDiv") return toUnsigned(sc.fus.intMultDiv);
    if (key == "memPorts") return toUnsigned(sc.fus.memPorts);
    if (key == "fpAdd") return toUnsigned(sc.fus.fpAdd);
    if (key == "fpMultDiv") return toUnsigned(sc.fus.fpMultDiv);
    if (key == "icacheBytes") return toUnsigned(sc.icache.sizeBytes);
    if (key == "icacheAssoc") return toUnsigned(sc.icache.assoc);
    if (key == "icacheBlockBytes")
        return toUnsigned(sc.icache.blockBytes);
    if (key == "icacheMissLatency")
        return toUnsigned(sc.icache.missLatency);
    if (key == "dcacheBytes") return toUnsigned(sc.dcache.sizeBytes);
    if (key == "dcacheAssoc") return toUnsigned(sc.dcache.assoc);
    if (key == "dcacheBlockBytes")
        return toUnsigned(sc.dcache.blockBytes);
    if (key == "dcacheMissLatency")
        return toUnsigned(sc.dcache.missLatency);

    // Sampled-simulation knobs (DESIGN.md §14). Instruction counts
    // can legitimately exceed 32 bits, so these bypass toUnsigned's
    // range clamp.
    auto toCount = [&](uint64_t &field) {
        if (v.kind != Value::Kind::Int || v.i < 0)
            return bad("a non-negative integer");
        field = uint64_t(v.i);
        return true;
    };
    if (key == "samplePeriod") return toCount(sc.samplePeriodInsts);
    if (key == "sampleWarmup") return toCount(sc.sampleWarmupInsts);
    if (key == "sampleMeasure") return toCount(sc.sampleMeasureInsts);
    hbat_panic("unhandled machine key ", key);
}

/** `designs`/`programs` accept one name or a list of names. */
bool
evalNameList(const Config &cfg, const Section &sw,
             const std::string &key, std::vector<std::string> &out,
             bool &present, Report &report)
{
    Value v;
    const size_t before = report.count(Severity::Error);
    present = cfg.eval(&sw, key, v, report);
    if (!present)
        return report.count(Severity::Error) == before;
    const std::vector<Value> items =
        v.kind == Value::Kind::List ? v.list
                                    : std::vector<Value>{v};
    for (const Value &item : items) {
        if (item.kind != Value::Kind::Str) {
            specError(report, cfg, Diag::ConfigKey,
                      hbat::detail::concat("key '", key, "' must name ",
                                           key == "designs"
                                               ? "design sections"
                                               : "programs",
                                           ", got ", item.render()));
            return false;
        }
        out.push_back(item.s);
    }
    return true;
}

} // namespace

bool
expandSweepSpec(const Config &cfg, const SimConfig &defaults,
                SweepSpec &out, Report &report)
{
    const Section *sw = cfg.section("sweep");
    if (sw == nullptr) {
        report.add(Diag::ConfigKey, Severity::Error, 0,
                   hbat::detail::concat(cfg.origin(),
                                        ": no [sweep] section"));
        return false;
    }

    // Schema first: a typo'd machine key must not silently default.
    bool ok = true;
    for (const std::string &key : cfg.keysInChain(sw)) {
        if (key != "designs" && key != "programs" &&
            !isMachineKey(key)) {
            specError(report, cfg, Diag::ConfigKey,
                      hbat::detail::concat("unknown sweep key '", key,
                                           "'"));
            ok = false;
        }
    }
    if (!ok)
        return false;

    bool present = false;
    std::vector<std::string> designs;
    if (!evalNameList(cfg, *sw, "designs", designs, present, report))
        return false;
    if (!present || designs.empty()) {
        specError(report, cfg, Diag::ConfigKey,
                  "needs a 'designs' key naming at least one design "
                  "section");
        return false;
    }
    if (!evalNameList(cfg, *sw, "programs", out.programs, present,
                      report))
        return false;

    // The machine axes: keys bound *directly* to a list literal, in
    // declaration order. A scalar expression that merely references a
    // list-valued key (fpRegs = $(intRegs)) is not its own axis — it
    // re-evaluates per cell under the overlay and rides the axis it
    // references.
    struct Axis
    {
        std::string key;
        std::vector<Value> values;
    };
    std::vector<Axis> axes;
    std::vector<std::string> boundKeys;     // all machine keys, in order
    for (const std::string &key : cfg.keysInChain(sw)) {
        if (!isMachineKey(key))
            continue;
        boundKeys.push_back(key);
        const config::Expr *e = cfg.bindingExpr(sw, key);
        if (e == nullptr || e->op != config::Expr::Op::List)
            continue;
        Value v;
        if (!cfg.eval(sw, key, v, report))
            return false;   // bound but unevaluable
        axes.push_back(Axis{key, v.list});
    }

    // designs (listed order) x design-section axes x machine axes,
    // rightmost fastest.
    for (const std::string &name : designs) {
        const Section *ds = cfg.section(name);
        if (ds == nullptr) {
            // Anchor the diagnostic to the `designs` binding itself,
            // like every parse/eval error, so the campaign author can
            // jump straight to the typo'd name.
            const config::Expr *e = cfg.bindingExpr(sw, "designs");
            report.add(Diag::ConfigKey, Severity::Error, 0,
                       hbat::detail::concat(
                           cfg.origin(), ":", e == nullptr ? 0 : e->line,
                           ": [sweep]: designs names unknown section '",
                           name, "'"));
            return false;
        }
        std::vector<tlb::DesignVariant> variants;
        if (!tlb::designVariants(cfg, *ds, variants, report))
            return false;

        for (const tlb::DesignVariant &var : variants) {
            std::vector<size_t> idx(axes.size(), 0);
            for (;;) {
                Overlay overlay;
                for (size_t a = 0; a < axes.size(); ++a)
                    overlay.emplace_back(axes[a].key,
                                         axes[a].values[idx[a]]);

                SweepColumnSpec col;
                col.designSection = name;
                col.sim = defaults;
                col.sim.customDesign = var.params;
                col.label = var.label;
                col.echo.emplace_back("design", name);
                for (const auto &p : var.echo)
                    col.echo.push_back(p);

                // Scalars re-evaluate under the overlay so dependent
                // expressions (fpRegs = $(intRegs)) track the axes.
                for (const std::string &key : boundKeys) {
                    Value v;
                    if (!cfg.eval(sw, key, v, report, &overlay))
                        return false;
                    if (!applyMachineKey(cfg, key, v, col, report))
                        return false;
                    col.echo.emplace_back(key, v.render());
                }
                for (size_t a = 0; a < axes.size(); ++a) {
                    col.label += hbat::detail::concat(
                        " ", axes[a].key, "=",
                        axes[a].values[idx[a]].render());
                }
                col.sim.designLabel = col.label;
                out.columns.push_back(std::move(col));

                size_t a = axes.size();
                while (a > 0 &&
                       ++idx[a - 1] == axes[a - 1].values.size())
                    idx[--a] = 0;
                if (a == 0)
                    break;
            }
        }
    }
    return true;
}

} // namespace hbat::sim
