/**
 * @file
 * Functional fast-forward: architectural execution at instruction
 * granularity with no pipeline, no caches, and no timing (DESIGN.md
 * §14).
 *
 * One FuncExecutor is THE functional path of the simulator — the
 * sampled simulator's fast-forward engine and the fig6 miss-rate
 * study's measurement loop are the same code. It owns a private
 * AddressSpace + FuncCore and advances them instruction by
 * instruction, optionally feeding every data reference to:
 *
 *  - functional TLB filters (addTlbFilter): idealized single-cycle
 *    TLBs counting references and misses, exactly the fig6
 *    methodology — structure miss rates, independent of any pipeline;
 *  - the warm-set tracker (enableWarmTracking): one LRU array whose
 *    residents seed a detailed interval's translation engine;
 *  - the page table (trackPageTable): architectural
 *    referenced/dirty-bit updates and first-touch frame allocation,
 *    so a checkpoint's page table matches what a detailed run
 *    reaching the same point would have built.
 *
 * save()/restore() move the complete state to/from sim::Checkpoint;
 * restore-then-advance reproduces the original run bit for bit.
 */

#ifndef HBAT_SIM_FASTFWD_HH
#define HBAT_SIM_FASTFWD_HH

#include <memory>
#include <optional>
#include <vector>

#include "cpu/func_core.hh"
#include "sim/checkpoint.hh"
#include "tlb/tlb_array.hh"
#include "vm/address_space.hh"
#include "vm/program_image.hh"

namespace hbat::sim
{

/** Functionally executes one program, at instruction granularity. */
class FuncExecutor
{
  public:
    /** Warm-set tracker capacity: comfortably larger than any Table 2
     *  TLB, so replay can fill even the biggest design. */
    static constexpr unsigned kWarmEntries = 512;

    /**
     * @param prog the linked program
     * @param pages page geometry (must match @p image when given)
     * @param page_mru AddressSpace MRU pointer cache (host-side)
     * @param code optional shared pre-decoded text (see simulate())
     * @param image optional shared page image (see simulate())
     */
    explicit FuncExecutor(
        const kasm::Program &prog,
        vm::PageParams pages = vm::PageParams{}, bool page_mru = true,
        std::shared_ptr<const cpu::StaticCode> code = nullptr,
        std::shared_ptr<const vm::ProgramImage> image = nullptr);

    /**
     * Add a functional TLB filter fed by every subsequent data
     * reference; returns its index for filterStats(). The reference
     * tick given to the array is the running data-reference count, so
     * miss counts depend only on the reference stream — the fig6
     * methodology, byte for byte.
     */
    size_t addTlbFilter(unsigned entries, tlb::Replacement repl,
                        uint64_t seed);

    /** A filter's reference/miss counts so far. */
    const FuncTlbStats &
    filterStats(size_t i) const
    {
        return filters_[i].stats;
    }

    /** Start maintaining the warm-set tracker (LRU over data VPNs;
     *  deliberately randomness-free, so checkpoints are
     *  design-independent). */
    void enableWarmTracking();

    /** Start updating the page table on every data reference
     *  (first-touch frame allocation + referenced/dirty bits). */
    void trackPageTable(bool on) { ptTrack_ = on; }

    /**
     * Execute up to @p max_insts instructions (fewer if the program
     * halts); returns the number executed.
     */
    uint64_t advance(uint64_t max_insts);

    bool halted() const { return core_.halted(); }

    /** Architected instructions executed so far. */
    uint64_t instCount() const { return core_.stats().instructions; }

    cpu::FuncCore &core() { return core_; }
    const cpu::FuncCore &core() const { return core_; }
    vm::AddressSpace &space() { return space_; }
    const vm::AddressSpace &space() const { return space_; }

    /**
     * Capture the complete state into @p out. With @p prev (the same
     * run's previous checkpoint), page copies that did not change
     * since are shared with it instead of duplicated.
     */
    void save(Checkpoint &out, const Checkpoint *prev = nullptr) const;

    /**
     * Overwrite the complete state with @p ck. The executor must have
     * been constructed for the same program, geometry, and shared
     * image as the one that saved @p ck; advancing then reproduces
     * the original run exactly.
     */
    void restore(const Checkpoint &ck);

  private:
    vm::AddressSpace space_;
    cpu::FuncCore core_;
    std::vector<Checkpoint::Filter> filters_;
    std::optional<tlb::TlbArray> warm_;
    bool ptTrack_ = false;
    cpu::DynInst dyn_;
};

} // namespace hbat::sim

#endif // HBAT_SIM_FASTFWD_HH
