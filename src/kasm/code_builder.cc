#include "kasm/code_builder.hh"

#include "common/log.hh"
#include "kasm/program_builder.hh"

namespace hbat::kasm
{

using isa::Opcode;
using isa::RC;

CodeBuilder::CodeBuilder(ProgramBuilder *owner)
    : owner(owner)
{}

VReg
CodeBuilder::fresh(VRClass cls)
{
    code.vregClass.push_back(cls);
    return VReg{int(code.vregClass.size()) - 1};
}

VReg
CodeBuilder::vint()
{
    return fresh(VRClass::Int);
}

VReg
CodeBuilder::vfp()
{
    return fresh(VRClass::Fp);
}

VLabel
CodeBuilder::label()
{
    return VLabel{code.numLabels++};
}

void
CodeBuilder::bind(VLabel l)
{
    hbat_assert(l.valid(), "binding invalid label");
    VItem item;
    item.kind = VItem::Kind::Bind;
    item.label = l.id;
    push(item);
}

void
CodeBuilder::checkReg(VReg r, VRClass expect) const
{
    hbat_assert(r.valid(), "invalid virtual register");
    if (r.id == kVZero.id) {
        hbat_assert(expect == VRClass::Int, "zero register used as FP");
        return;
    }
    hbat_assert(size_t(r.id) < code.vregClass.size(),
                "unknown virtual register ", r.id);
    hbat_assert(code.vregClass[r.id] == expect,
                "virtual register class mismatch for v", r.id);
}

void
CodeBuilder::push(VItem item)
{
    hbat_assert(!taken, "CodeBuilder already finalized");
    if (item.kind == VItem::Kind::Inst) {
        const isa::OpInfo &info = isa::opInfo(item.op);
        auto check = [&](int vreg, RC rc) {
            if (rc == RC::None) {
                hbat_assert(vreg == -1, isa::opName(item.op),
                            ": unexpected operand");
            } else {
                checkReg(VReg{vreg},
                         rc == RC::Fp ? VRClass::Fp : VRClass::Int);
            }
        };
        check(item.d, info.rdClass);
        check(item.s1, info.rs1Class);
        check(item.s2, info.rs2Class);
        // A post-increment access must not load into its own base:
        // the base writeback would be lost.
        if (info.writesBase && info.isLoad)
            hbat_assert(item.d != item.s1,
                        isa::opName(item.op), ": rd must differ from base");
        // The zero register cannot be a destination.
        if (info.rdClass != RC::None && !info.rdIsSource)
            hbat_assert(item.d != kVZero.id,
                        isa::opName(item.op), ": cannot write zero reg");
        if (info.writesBase)
            hbat_assert(item.s1 != kVZero.id,
                        isa::opName(item.op), ": cannot post-inc zero reg");
    }
    code.items.push_back(item);
}

void
CodeBuilder::r3(Opcode op, VReg d, VReg a, VReg b)
{
    VItem item;
    item.op = op;
    item.d = d.id;
    item.s1 = a.id;
    item.s2 = b.id;
    push(item);
}

void
CodeBuilder::r2(Opcode op, VReg d, VReg a)
{
    VItem item;
    item.op = op;
    item.d = d.id;
    item.s1 = a.id;
    push(item);
}

void
CodeBuilder::ri(Opcode op, VReg d, VReg a, int32_t imm)
{
    VItem item;
    item.op = op;
    item.d = d.id;
    item.s1 = a.id;
    item.imm = imm;
    push(item);
}

void
CodeBuilder::mem(Opcode op, VReg data_reg, VReg base, int32_t imm)
{
    VItem item;
    item.op = op;
    item.d = data_reg.id;
    item.s1 = base.id;
    item.imm = imm;
    push(item);
}

void
CodeBuilder::br(Opcode op, VReg a, VReg b, VLabel t)
{
    hbat_assert(t.valid(), "branch to invalid label");
    checkReg(a, VRClass::Int);
    checkReg(b, VRClass::Int);
    VItem item;
    item.kind = VItem::Kind::Branch;
    item.op = op;
    item.s1 = a.id;
    item.s2 = b.id;
    item.label = t.id;
    push(item);
}

void
CodeBuilder::jmp(VLabel t)
{
    hbat_assert(t.valid(), "jump to invalid label");
    VItem item;
    item.kind = VItem::Kind::Jump;
    item.label = t.id;
    push(item);
}

void
CodeBuilder::jr(VReg target)
{
    checkReg(target, VRClass::Int);
    VItem item;
    item.op = Opcode::Jr;
    item.s1 = target.id;
    push(item);
}

void
CodeBuilder::halt()
{
    VItem item;
    item.op = Opcode::Halt;
    push(item);
}

void
CodeBuilder::li(VReg d, uint32_t value)
{
    checkReg(d, VRClass::Int);
    hbat_assert(d.id != kVZero.id, "li into zero register");
    VItem item;
    item.kind = VItem::Kind::Li;
    item.d = d.id;
    item.uimm = value;
    push(item);
}

void
CodeBuilder::mov(VReg d, VReg s)
{
    addi(d, s, 0);
}

void
CodeBuilder::addk(VReg d, VReg a, int64_t k)
{
    if (k >= -32768 && k <= 32767) {
        addi(d, a, int32_t(k));
        return;
    }
    VReg tmp = vint();
    li(tmp, uint32_t(int32_t(k)));
    add(d, a, tmp);
}

void
CodeBuilder::fconst(VReg fd, double value)
{
    hbat_assert(owner != nullptr,
                "fconst requires a ProgramBuilder-owned CodeBuilder");
    const VAddr addr = owner->doubleConst(value);
    VReg tmp = vint();
    li(tmp, uint32_t(addr));
    ldf(fd, tmp, 0);
}

void
CodeBuilder::forLoop(VReg counter, uint32_t count,
                     const std::function<void()> &body)
{
    checkReg(counter, VRClass::Int);
    VReg limit = vint();
    li(counter, 0);
    li(limit, count);
    VLabel head = label();
    VLabel done = label();
    bind(head);
    bge(counter, limit, done);
    body();
    addi(counter, counter, 1);
    jmp(head);
    bind(done);
}

VCode
CodeBuilder::take()
{
    hbat_assert(!taken, "CodeBuilder::take called twice");
    taken = true;
    return std::move(code);
}

} // namespace hbat::kasm
