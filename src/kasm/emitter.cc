#include "kasm/emitter.hh"

#include "common/log.hh"

namespace hbat::kasm
{

using isa::Inst;
using isa::Opcode;

Emitter::Emitter(VAddr text_base)
    : textBase(text_base)
{}

Label
Emitter::newLabel()
{
    labelPos.push_back(-1);
    return Label{int(labelPos.size()) - 1};
}

void
Emitter::bind(Label label)
{
    hbat_assert(label.valid() && size_t(label.id) < labelPos.size(),
                "bad label");
    hbat_assert(labelPos[label.id] == -1, "label bound twice");
    labelPos[label.id] = int64_t(text.size());
}

bool
Emitter::bound(Label label) const
{
    hbat_assert(label.valid() && size_t(label.id) < labelPos.size(),
                "bad label");
    return labelPos[label.id] >= 0;
}

void
Emitter::emit(Inst inst)
{
    text.push_back(inst);
}

void
Emitter::emitBranch(Opcode op, RegIndex rs1, RegIndex rs2, Label target)
{
    hbat_assert(isa::isBranch(op), "emitBranch on non-branch ",
                isa::opName(op));
    hbat_assert(target.valid(), "branch to invalid label");
    fixups.push_back(Fixup{text.size(), target.id, FixKind::Branch16});
    Inst inst;
    inst.op = op;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    text.push_back(inst);
}

void
Emitter::emitJump(Opcode op, Label target)
{
    hbat_assert(op == Opcode::J || op == Opcode::Jal,
                "emitJump on non-jump ", isa::opName(op));
    hbat_assert(target.valid(), "jump to invalid label");
    fixups.push_back(Fixup{text.size(), target.id, FixKind::Jump26});
    Inst inst;
    inst.op = op;
    text.push_back(inst);
}

void
Emitter::li(RegIndex rd, uint32_t value)
{
    const int32_t sv = int32_t(value);
    if (sv >= -32768 && sv <= 32767) {
        emit(Inst{Opcode::Addi, rd, isa::reg::zero, 0, sv});
        return;
    }
    emit(Inst{Opcode::Lui, rd, 0, 0, int32_t(value >> 16)});
    if ((value & 0xffff) != 0)
        emit(Inst{Opcode::Ori, rd, rd, 0, int32_t(value & 0xffff)});
}

VAddr
Emitter::here() const
{
    return textBase + text.size() * 4;
}

VAddr
Emitter::labelAddr(Label label) const
{
    hbat_assert(label.valid() && size_t(label.id) < labelPos.size(),
                "bad label");
    hbat_assert(labelPos[label.id] >= 0, "label ", label.id, " unbound");
    return textBase + VAddr(labelPos[label.id]) * 4;
}

std::vector<uint32_t>
Emitter::finalize()
{
    verify::Report report;
    std::vector<uint32_t> words = finalize(report);
    hbat_assert(report.clean(verify::Severity::Error),
                "finalize failed: ", report.diags.front().str());
    return words;
}

std::vector<uint32_t>
Emitter::finalize(verify::Report &report)
{
    using verify::Diag;
    using verify::Severity;

    for (const Fixup &fix : fixups) {
        const VAddr pc = textBase + VAddr(fix.index) * 4;
        if (labelPos[fix.label] < 0) {
            report.add(Diag::UnboundLabel, Severity::Error, pc,
                       detail::concat("label ", fix.label,
                                      " referenced but never bound"));
            continue;
        }
        // Branch/jump offsets are in words relative to pc + 4.
        const int64_t delta =
            labelPos[fix.label] - (int64_t(fix.index) + 1);
        switch (fix.kind) {
          case FixKind::Branch16:
            if (!branchOffsetInRange(delta)) {
                report.add(Diag::BranchRange, Severity::Error, pc,
                           detail::concat(
                               "branch offset ", delta,
                               " words overflows the 16-bit field"));
                continue;
            }
            break;
          case FixKind::Jump26:
            if (!jumpOffsetInRange(delta)) {
                report.add(Diag::JumpRange, Severity::Error, pc,
                           detail::concat(
                               "jump offset ", delta,
                               " words overflows the 26-bit field"));
                continue;
            }
            break;
        }
        text[fix.index].imm = int32_t(delta);
    }
    fixups.clear();

    std::vector<uint32_t> words;
    words.reserve(text.size());
    for (const Inst &inst : text)
        words.push_back(isa::encode(inst));
    return words;
}

} // namespace hbat::kasm
