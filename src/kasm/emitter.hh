/**
 * @file
 * Physical-register instruction emitter with label fixups.
 *
 * The Emitter is the lowest assembler layer: it appends decoded
 * instructions to a text image, tracks labels, and patches pc-relative
 * branch/jump offsets at finalize time. The register-allocating
 * CodeBuilder lowers onto this layer; tests and micro-examples may also
 * use it directly when they want full control of register assignment.
 */

#ifndef HBAT_KASM_EMITTER_HH
#define HBAT_KASM_EMITTER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace hbat::kasm
{

/** An opaque label handle. */
struct Label
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/** Low-level assembler over physical registers. */
class Emitter
{
  public:
    explicit Emitter(VAddr text_base);

    /** Create a fresh, unbound label. */
    Label newLabel();

    /** Bind @p label to the current emission point. */
    void bind(Label label);

    /** True when @p label has been bound. */
    bool bound(Label label) const;

    /** Append a non-control instruction. */
    void emit(isa::Inst inst);

    /** Append a conditional branch to @p target. */
    void emitBranch(isa::Opcode op, RegIndex rs1, RegIndex rs2,
                    Label target);

    /** Append an unconditional jump (J or JAL) to @p target. */
    void emitJump(isa::Opcode op, Label target);

    /**
     * Load a 32-bit constant into @p rd.
     * Expands to one or two instructions (ADDI / LUI+ORI).
     */
    void li(RegIndex rd, uint32_t value);

    /** Address of the next instruction to be emitted. */
    VAddr here() const;

    /** Number of instructions emitted so far. */
    size_t size() const { return text.size(); }

    /** Virtual address of a bound label; panics if unbound. */
    VAddr labelAddr(Label label) const;

    /**
     * Resolve all fixups and return the encoded text.
     * Panics if any referenced label is unbound.
     */
    std::vector<uint32_t> finalize();

  private:
    enum class FixKind { Branch16, Jump26 };

    struct Fixup
    {
        size_t index;   ///< text index of the instruction to patch
        int label;
        FixKind kind;
    };

    VAddr textBase;
    std::vector<isa::Inst> text;
    std::vector<int64_t> labelPos;  ///< -1 while unbound
    std::vector<Fixup> fixups;
};

} // namespace hbat::kasm

#endif // HBAT_KASM_EMITTER_HH
