/**
 * @file
 * Physical-register instruction emitter with label fixups.
 *
 * The Emitter is the lowest assembler layer: it appends decoded
 * instructions to a text image, tracks labels, and patches pc-relative
 * branch/jump offsets at finalize time. The register-allocating
 * CodeBuilder lowers onto this layer; tests and micro-examples may also
 * use it directly when they want full control of register assignment.
 */

#ifndef HBAT_KASM_EMITTER_HH
#define HBAT_KASM_EMITTER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"
#include "verify/diag.hh"

namespace hbat::kasm
{

/** An opaque label handle. */
struct Label
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/** Low-level assembler over physical registers. */
class Emitter
{
  public:
    explicit Emitter(VAddr text_base);

    /** Create a fresh, unbound label. */
    Label newLabel();

    /** Bind @p label to the current emission point. */
    void bind(Label label);

    /** True when @p label has been bound. */
    bool bound(Label label) const;

    /** Append a non-control instruction. */
    void emit(isa::Inst inst);

    /** Append a conditional branch to @p target. */
    void emitBranch(isa::Opcode op, RegIndex rs1, RegIndex rs2,
                    Label target);

    /** Append an unconditional jump (J or JAL) to @p target. */
    void emitJump(isa::Opcode op, Label target);

    /**
     * Load a 32-bit constant into @p rd.
     * Expands to one or two instructions (ADDI / LUI+ORI).
     */
    void li(RegIndex rd, uint32_t value);

    /** Address of the next instruction to be emitted. */
    VAddr here() const;

    /** Number of instructions emitted so far. */
    size_t size() const { return text.size(); }

    /** Virtual address of a bound label; panics if unbound. */
    VAddr labelAddr(Label label) const;

    /**
     * Resolve all fixups and return the encoded text.
     * Panics if any referenced label is unbound or any offset
     * overflows its field.
     */
    std::vector<uint32_t> finalize();

    /**
     * Like finalize(), but problems become structured diagnostics
     * (UnboundLabel, BranchRange, JumpRange) appended to @p report
     * instead of panics. Affected instructions keep a zero offset;
     * callers must check report.clean() before using the image.
     */
    std::vector<uint32_t> finalize(verify::Report &report);

    /** True when a branch can span @p delta_words (16-bit field). */
    static bool
    branchOffsetInRange(int64_t delta_words)
    {
        return delta_words >= -32768 && delta_words <= 32767;
    }

    /** True when a jump can span @p delta_words (26-bit field). */
    static bool
    jumpOffsetInRange(int64_t delta_words)
    {
        return delta_words >= -(int64_t(1) << 25) &&
               delta_words < (int64_t(1) << 25);
    }

  private:
    enum class FixKind { Branch16, Jump26 };

    struct Fixup
    {
        size_t index;   ///< text index of the instruction to patch
        int label;
        FixKind kind;
    };

    VAddr textBase;
    std::vector<isa::Inst> text;
    std::vector<int64_t> labelPos;  ///< -1 while unbound
    std::vector<Fixup> fixups;
};

} // namespace hbat::kasm

#endif // HBAT_KASM_EMITTER_HH
