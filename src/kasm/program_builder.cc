#include "kasm/program_builder.hh"

#include <cstring>

#include <algorithm>

#include "common/log.hh"
#include "kasm/regalloc.hh"
#include "verify/verifier.hh"

namespace hbat::kasm
{

ProgramBuilder::ProgramBuilder(std::string name)
    : name(std::move(name)), cb(this)
{}

VAddr
ProgramBuilder::align(unsigned a)
{
    hbat_assert(a != 0 && (a & (a - 1)) == 0, "alignment must be 2^k");
    while (data.size() % a != 0)
        data.push_back(0);
    return kDataBase + data.size();
}

VAddr
ProgramBuilder::bytes(std::span<const uint8_t> src, unsigned alignment)
{
    const VAddr addr = align(alignment);
    data.insert(data.end(), src.begin(), src.end());
    return addr;
}

VAddr
ProgramBuilder::words(std::span<const uint32_t> src)
{
    const VAddr addr = align(4);
    const size_t at = data.size();
    data.resize(at + src.size() * 4);
    std::memcpy(data.data() + at, src.data(), src.size() * 4);
    return addr;
}

VAddr
ProgramBuilder::doubles(std::span<const double> src)
{
    const VAddr addr = align(8);
    const size_t at = data.size();
    data.resize(at + src.size() * 8);
    std::memcpy(data.data() + at, src.data(), src.size() * 8);
    return addr;
}

VAddr
ProgramBuilder::space(uint64_t size, unsigned alignment)
{
    hbat_assert(alignment != 0 && (alignment & (alignment - 1)) == 0,
                "alignment must be 2^k");
    bssCursor = (bssCursor + alignment - 1) & ~VAddr(alignment - 1);
    const VAddr addr = bssCursor;
    bssCursor += size;
    hbat_assert(bssCursor < kStackTop - 0x100'0000,
                "bss region ran into the stack");
    return addr;
}

VAddr
ProgramBuilder::doubleConst(double value)
{
    uint64_t bits;
    std::memcpy(&bits, &value, 8);
    auto it = doublePool.find(bits);
    if (it != doublePool.end())
        return it->second;
    const VAddr addr = doubles(std::span<const double>(&value, 1));
    doublePool.emplace(bits, addr);
    return addr;
}

VAddr
ProgramBuilder::codeTable(const std::vector<VLabel> &targets)
{
    const VAddr addr = align(4);
    TableFix fix;
    fix.dataOffset = data.size();
    for (VLabel l : targets) {
        hbat_assert(l.valid(), "invalid label in code table");
        fix.labels.push_back(l.id);
        cb.code.indirectTargets.push_back(l.id);
    }
    data.resize(data.size() + targets.size() * 4);
    tableFixes.push_back(std::move(fix));
    return addr;
}

Program
ProgramBuilder::link(const RegBudget &budget)
{
    if (!codeTaken) {
        linkedCode = cb.take();
        codeTaken = true;
    }

    Emitter em(kTextBase);
    const LowerResult lr = lower(linkedCode, budget, em);

    // Patch code tables with the final label addresses.
    std::vector<uint8_t> patched = data;
    for (const TableFix &fix : tableFixes) {
        for (size_t i = 0; i < fix.labels.size(); ++i) {
            const uint32_t addr =
                uint32_t(em.labelAddr(lr.labels[fix.labels[i]]));
            std::memcpy(patched.data() + fix.dataOffset + i * 4, &addr,
                        4);
        }
    }

    Program prog;
    prog.name = name;
    prog.text = em.finalize();
    prog.textBase = kTextBase;
    if (!patched.empty())
        prog.data.push_back(DataSegment{kDataBase, std::move(patched)});
    prog.entry = kTextBase;
    prog.stackTop = kStackTop;

    // Record the exact indirect-jump target set for the verifier.
    for (int l : linkedCode.indirectTargets)
        prog.indirectTargets.push_back(em.labelAddr(lr.labels[l]));
    std::sort(prog.indirectTargets.begin(), prog.indirectTargets.end());
    prog.indirectTargets.erase(std::unique(prog.indirectTargets.begin(),
                                           prog.indirectTargets.end()),
                               prog.indirectTargets.end());
    return prog;
}

Program
ProgramBuilder::link(const RegBudget &budget, verify::Report &report)
{
    Program prog = link(budget);
    verify::analyzeProgram(prog, report);
    return prog;
}

} // namespace hbat::kasm
