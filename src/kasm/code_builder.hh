/**
 * @file
 * The workload-facing assembly builder.
 *
 * CodeBuilder exposes one method per ISA operation (plus a few pseudos
 * such as li/mov/fconst) over virtual registers. Workloads construct
 * their code through this interface and never see physical registers;
 * ProgramBuilder::link() runs the register allocator to produce the
 * final Program.
 */

#ifndef HBAT_KASM_CODE_BUILDER_HH
#define HBAT_KASM_CODE_BUILDER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "kasm/vcode.hh"

namespace hbat::kasm
{

class ProgramBuilder;

/** Emits virtual-register code into a VCode unit. */
class CodeBuilder
{
  public:
    explicit CodeBuilder(ProgramBuilder *owner = nullptr);

    /// @name Virtual registers and labels
    /// @{
    VReg vint();                ///< fresh integer virtual register
    VReg vfp();                 ///< fresh floating-point virtual register
    VReg zero() const { return kVZero; }
    VLabel label();             ///< fresh unbound label
    void bind(VLabel l);        ///< bind @p l here
    /// @}

    /// @name Integer ALU, register-register
    /// @{
    void add(VReg d, VReg a, VReg b) { r3(isa::Opcode::Add, d, a, b); }
    void sub(VReg d, VReg a, VReg b) { r3(isa::Opcode::Sub, d, a, b); }
    void mul(VReg d, VReg a, VReg b) { r3(isa::Opcode::Mul, d, a, b); }
    void div_(VReg d, VReg a, VReg b) { r3(isa::Opcode::Div, d, a, b); }
    void divu(VReg d, VReg a, VReg b) { r3(isa::Opcode::Divu, d, a, b); }
    void rem(VReg d, VReg a, VReg b) { r3(isa::Opcode::Rem, d, a, b); }
    void remu(VReg d, VReg a, VReg b) { r3(isa::Opcode::Remu, d, a, b); }
    void and_(VReg d, VReg a, VReg b) { r3(isa::Opcode::And, d, a, b); }
    void or_(VReg d, VReg a, VReg b) { r3(isa::Opcode::Or, d, a, b); }
    void xor_(VReg d, VReg a, VReg b) { r3(isa::Opcode::Xor, d, a, b); }
    void nor(VReg d, VReg a, VReg b) { r3(isa::Opcode::Nor, d, a, b); }
    void sll(VReg d, VReg a, VReg b) { r3(isa::Opcode::Sll, d, a, b); }
    void srl(VReg d, VReg a, VReg b) { r3(isa::Opcode::Srl, d, a, b); }
    void sra(VReg d, VReg a, VReg b) { r3(isa::Opcode::Sra, d, a, b); }
    void slt(VReg d, VReg a, VReg b) { r3(isa::Opcode::Slt, d, a, b); }
    void sltu(VReg d, VReg a, VReg b) { r3(isa::Opcode::Sltu, d, a, b); }
    /// @}

    /// @name Integer ALU, register-immediate
    /// @{
    void addi(VReg d, VReg a, int32_t i) { ri(isa::Opcode::Addi, d, a, i); }
    void andi(VReg d, VReg a, int32_t i) { ri(isa::Opcode::Andi, d, a, i); }
    void ori(VReg d, VReg a, int32_t i) { ri(isa::Opcode::Ori, d, a, i); }
    void xori(VReg d, VReg a, int32_t i) { ri(isa::Opcode::Xori, d, a, i); }
    void slli(VReg d, VReg a, int32_t i) { ri(isa::Opcode::Slli, d, a, i); }
    void srli(VReg d, VReg a, int32_t i) { ri(isa::Opcode::Srli, d, a, i); }
    void srai(VReg d, VReg a, int32_t i) { ri(isa::Opcode::Srai, d, a, i); }
    void slti(VReg d, VReg a, int32_t i) { ri(isa::Opcode::Slti, d, a, i); }
    void sltiu(VReg d, VReg a, int32_t i) { ri(isa::Opcode::Sltiu, d, a, i); }
    /// @}

    /// @name Pseudo-ops
    /// @{
    void li(VReg d, uint32_t value);            ///< load 32-bit constant
    void mov(VReg d, VReg s);                   ///< register copy
    void fconst(VReg fd, double value);         ///< load FP constant
    /** d = a + k for any 32-bit k (expands past the imm16 range). */
    void addk(VReg d, VReg a, int64_t k);
    /// @}

    /// @name Memory, base+displacement
    /// @{
    void lb(VReg d, VReg base, int32_t off) { mem(isa::Opcode::Lb, d, base, off); }
    void lbu(VReg d, VReg base, int32_t off) { mem(isa::Opcode::Lbu, d, base, off); }
    void lh(VReg d, VReg base, int32_t off) { mem(isa::Opcode::Lh, d, base, off); }
    void lhu(VReg d, VReg base, int32_t off) { mem(isa::Opcode::Lhu, d, base, off); }
    void lw(VReg d, VReg base, int32_t off) { mem(isa::Opcode::Lw, d, base, off); }
    void ldf(VReg fd, VReg base, int32_t off) { mem(isa::Opcode::Ldf, fd, base, off); }
    void sb(VReg s, VReg base, int32_t off) { mem(isa::Opcode::Sb, s, base, off); }
    void sh(VReg s, VReg base, int32_t off) { mem(isa::Opcode::Sh, s, base, off); }
    void sw(VReg s, VReg base, int32_t off) { mem(isa::Opcode::Sw, s, base, off); }
    void sdf(VReg fs, VReg base, int32_t off) { mem(isa::Opcode::Sdf, fs, base, off); }
    /// @}

    /// @name Memory, post-increment (negative @p inc = post-decrement)
    /// @{
    void lwpi(VReg d, VReg base, int32_t inc) { mem(isa::Opcode::Lwpi, d, base, inc); }
    void swpi(VReg s, VReg base, int32_t inc) { mem(isa::Opcode::Swpi, s, base, inc); }
    void ldfpi(VReg fd, VReg base, int32_t inc) { mem(isa::Opcode::Ldfpi, fd, base, inc); }
    void sdfpi(VReg fs, VReg base, int32_t inc) { mem(isa::Opcode::Sdfpi, fs, base, inc); }
    /// @}

    /// @name Memory, register+register
    /// @{
    void lwx(VReg d, VReg base, VReg idx) { r3(isa::Opcode::Lwx, d, base, idx); }
    void swx(VReg s, VReg base, VReg idx) { r3(isa::Opcode::Swx, s, base, idx); }
    void ldfx(VReg fd, VReg base, VReg idx) { r3(isa::Opcode::Ldfx, fd, base, idx); }
    void sdfx(VReg fs, VReg base, VReg idx) { r3(isa::Opcode::Sdfx, fs, base, idx); }
    /// @}

    /// @name Control flow
    /// @{
    void beq(VReg a, VReg b, VLabel t) { br(isa::Opcode::Beq, a, b, t); }
    void bne(VReg a, VReg b, VLabel t) { br(isa::Opcode::Bne, a, b, t); }
    void blt(VReg a, VReg b, VLabel t) { br(isa::Opcode::Blt, a, b, t); }
    void bge(VReg a, VReg b, VLabel t) { br(isa::Opcode::Bge, a, b, t); }
    void bltu(VReg a, VReg b, VLabel t) { br(isa::Opcode::Bltu, a, b, t); }
    void bgeu(VReg a, VReg b, VLabel t) { br(isa::Opcode::Bgeu, a, b, t); }
    void ble(VReg a, VReg b, VLabel t) { br(isa::Opcode::Bge, b, a, t); }
    void bgt(VReg a, VReg b, VLabel t) { br(isa::Opcode::Blt, b, a, t); }
    void beqz(VReg a, VLabel t) { br(isa::Opcode::Beq, a, kVZero, t); }
    void bnez(VReg a, VLabel t) { br(isa::Opcode::Bne, a, kVZero, t); }
    void jmp(VLabel t);
    void jr(VReg target);   ///< indirect jump (through a code table)
    void halt();
    /// @}

    /// @name Floating point
    /// @{
    void fadd(VReg d, VReg a, VReg b) { r3(isa::Opcode::Fadd, d, a, b); }
    void fsub(VReg d, VReg a, VReg b) { r3(isa::Opcode::Fsub, d, a, b); }
    void fmul(VReg d, VReg a, VReg b) { r3(isa::Opcode::Fmul, d, a, b); }
    void fdiv(VReg d, VReg a, VReg b) { r3(isa::Opcode::Fdiv, d, a, b); }
    void fmov(VReg d, VReg a) { r2(isa::Opcode::Fmov, d, a); }
    void fneg(VReg d, VReg a) { r2(isa::Opcode::Fneg, d, a); }
    void fabs_(VReg d, VReg a) { r2(isa::Opcode::Fabs, d, a); }
    void fcvtif(VReg fd, VReg si) { r2(isa::Opcode::Fcvtif, fd, si); }
    void fcvtfi(VReg d, VReg fs) { r2(isa::Opcode::Fcvtfi, d, fs); }
    void fclt(VReg d, VReg a, VReg b) { r3(isa::Opcode::Fclt, d, a, b); }
    void fcle(VReg d, VReg a, VReg b) { r3(isa::Opcode::Fcle, d, a, b); }
    void fceq(VReg d, VReg a, VReg b) { r3(isa::Opcode::Fceq, d, a, b); }
    /// @}

    /// @name Structured-control helpers
    /// @{
    /**
     * Emit a counted loop running @p body `count` times.
     * @p counter counts up from 0; the loop body may read it.
     */
    void forLoop(VReg counter, uint32_t count,
                 const std::function<void()> &body);
    /// @}

    /** Finish building and take the VCode unit. */
    VCode take();

    /** Number of items emitted so far. */
    size_t size() const { return code.items.size(); }

  private:
    friend class ProgramBuilder;

    VReg fresh(VRClass cls);
    void push(VItem item);
    void r3(isa::Opcode op, VReg d, VReg a, VReg b);
    void r2(isa::Opcode op, VReg d, VReg a);
    void ri(isa::Opcode op, VReg d, VReg a, int32_t imm);
    void mem(isa::Opcode op, VReg dataReg, VReg base, int32_t imm);
    void br(isa::Opcode op, VReg a, VReg b, VLabel t);
    void checkReg(VReg r, VRClass expect) const;

    ProgramBuilder *owner;
    VCode code;
    bool taken = false;
};

} // namespace hbat::kasm

#endif // HBAT_KASM_CODE_BUILDER_HH
