#include "kasm/regalloc.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/log.hh"

namespace hbat::kasm
{

using isa::Inst;
using isa::Opcode;
using isa::RC;
namespace reg = isa::reg;

namespace
{

/// Scratch registers reserved for spill reloads.
constexpr RegIndex kIntScratch0 = reg::at;    // r1
constexpr RegIndex kIntScratch1 = reg::at2;   // r30
constexpr RegIndex kFpScratch0 = 30;
constexpr RegIndex kFpScratch1 = 31;

/** Up to 3 uses / 2 defs per item. */
struct UseDef
{
    std::array<int, 3> uses{-1, -1, -1};
    std::array<int, 2> defs{-1, -1};
    int nUses = 0;
    int nDefs = 0;

    void
    use(int v)
    {
        if (v >= 0)
            uses[nUses++] = v;
    }

    void
    def(int v)
    {
        if (v >= 0)
            defs[nDefs++] = v;
    }
};

UseDef
useDef(const VItem &item)
{
    UseDef ud;
    switch (item.kind) {
      case VItem::Kind::Inst: {
        const isa::OpInfo &info = isa::opInfo(item.op);
        if (info.rs1Class != RC::None)
            ud.use(item.s1);
        if (info.rs2Class != RC::None)
            ud.use(item.s2);
        if (info.rdClass != RC::None && info.rdIsSource)
            ud.use(item.d);
        if (info.rdClass != RC::None && !info.rdIsSource)
            ud.def(item.d);
        if (info.writesBase)
            ud.def(item.s1);
        break;
      }
      case VItem::Kind::Li:
        ud.def(item.d);
        break;
      case VItem::Kind::Branch:
        ud.use(item.s1);
        ud.use(item.s2);
        break;
      case VItem::Kind::Jump:
      case VItem::Kind::Bind:
        break;
    }
    return ud;
}

/** Dense bitset over virtual registers. */
class Bits
{
  public:
    explicit Bits(size_t n) : words((n + 63) / 64, 0) {}

    bool
    get(int i) const
    {
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    void set(int i) { words[i >> 6] |= uint64_t(1) << (i & 63); }
    void clear(int i) { words[i >> 6] &= ~(uint64_t(1) << (i & 63)); }

    /** this |= other; returns true when this changed. */
    bool
    merge(const Bits &other)
    {
        bool changed = false;
        for (size_t w = 0; w < words.size(); ++w) {
            const uint64_t nv = words[w] | other.words[w];
            changed |= nv != words[w];
            words[w] = nv;
        }
        return changed;
    }

    /** Call @p fn for every set bit. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (size_t w = 0; w < words.size(); ++w) {
            uint64_t v = words[w];
            while (v) {
                const int b = __builtin_ctzll(v);
                fn(int(w) * 64 + b);
                v &= v - 1;
            }
        }
    }

  private:
    std::vector<uint64_t> words;
};

/** One live interval: [start, end) in item positions. */
struct Interval
{
    int vreg = -1;
    int start = 0;
    int end = 0;
};

/** Assignment of one virtual register. */
struct Assign
{
    bool spilled = false;
    RegIndex phys = kNoReg;
    int slot = -1;  ///< sp-relative byte offset when spilled
};

class Allocator
{
  public:
    Allocator(const VCode &code, const RegBudget &budget, Emitter &em)
        : code(code), budget(budget), em(em),
          assign(code.vregClass.size())
    {}

    LowerResult
    run()
    {
        hbat_assert(budget.intRegs >= 5 && budget.intRegs <= 32,
                    "integer register budget must be in [5,32]");
        hbat_assert(budget.fpRegs >= 3 && budget.fpRegs <= 32,
                    "fp register budget must be in [3,32]");

        findLabels();
        computeLiveness();
        buildIntervals();
        allocateClass(VRClass::Int);
        allocateClass(VRClass::Fp);
        emit();

        LowerResult res;
        res.labels = emLabels;
        res.frameBytes = frameBytes;
        for (size_t v = 0; v < assign.size(); ++v) {
            if (!assign[v].spilled)
                continue;
            if (code.vregClass[v] == VRClass::Int)
                ++res.spilledInt;
            else
                ++res.spilledFp;
        }
        return res;
    }

  private:
    const VCode &code;
    const RegBudget &budget;
    Emitter &em;

    std::vector<int> labelPos;          ///< label id -> item index
    std::vector<int> indirectPos;       ///< item positions of jr targets
    std::vector<Bits> liveIn;
    std::vector<Interval> intervals;    ///< one per vreg (or empty)
    std::vector<Assign> assign;
    std::vector<Label> emLabels;
    int frameBytes = 0;

    void
    findLabels()
    {
        labelPos.assign(code.numLabels, -1);
        for (size_t i = 0; i < code.items.size(); ++i) {
            const VItem &item = code.items[i];
            if (item.kind == VItem::Kind::Bind) {
                hbat_assert(labelPos[item.label] == -1,
                            "label ", item.label, " bound twice");
                labelPos[item.label] = int(i);
            }
        }
        for (int l : code.indirectTargets) {
            hbat_assert(l >= 0 && l < code.numLabels && labelPos[l] >= 0,
                        "indirect target label unbound");
            indirectPos.push_back(labelPos[l]);
        }
    }

    /** Successor item positions of item @p i. */
    void
    successors(size_t i, std::vector<int> &out) const
    {
        out.clear();
        const VItem &item = code.items[i];
        const int next = int(i) + 1;
        const bool haveNext = size_t(next) < code.items.size();

        switch (item.kind) {
          case VItem::Kind::Jump:
            out.push_back(labelPos[item.label]);
            return;
          case VItem::Kind::Branch:
            out.push_back(labelPos[item.label]);
            if (haveNext)
                out.push_back(next);
            return;
          case VItem::Kind::Inst:
            if (item.op == Opcode::Halt)
                return;
            if (item.op == Opcode::Jr) {
                out = indirectPos;
                return;
            }
            break;
          default:
            break;
        }
        if (haveNext)
            out.push_back(next);
    }

    void
    computeLiveness()
    {
        const size_t n = code.items.size();
        const size_t nv = code.vregClass.size();
        liveIn.assign(n, Bits(nv));

        // Backward iteration to a fixpoint. Iterating the items in
        // reverse order converges in a few passes for reducible code.
        std::vector<int> succ;
        bool changed = true;
        while (changed) {
            changed = false;
            for (size_t ri = n; ri-- > 0;) {
                Bits out(nv);
                successors(ri, succ);
                for (int s : succ)
                    out.merge(liveIn[s]);

                const UseDef ud = useDef(code.items[ri]);
                for (int d = 0; d < ud.nDefs; ++d)
                    out.clear(ud.defs[d]);
                for (int u = 0; u < ud.nUses; ++u)
                    out.set(ud.uses[u]);
                changed |= liveIn[ri].merge(out);
            }
        }
    }

    void
    buildIntervals()
    {
        const size_t nv = code.vregClass.size();
        intervals.assign(nv, Interval{});
        for (size_t v = 0; v < nv; ++v)
            intervals[v] = Interval{int(v), -1, -1};

        auto extend = [&](int v, int pos) {
            Interval &iv = intervals[v];
            if (iv.start < 0) {
                iv.start = pos;
                iv.end = pos + 1;
            } else {
                iv.start = std::min(iv.start, pos);
                iv.end = std::max(iv.end, pos + 1);
            }
        };

        for (size_t i = 0; i < code.items.size(); ++i) {
            liveIn[i].forEach([&](int v) { extend(v, int(i)); });
            const UseDef ud = useDef(code.items[i]);
            for (int d = 0; d < ud.nDefs; ++d)
                extend(ud.defs[d], int(i));
            for (int u = 0; u < ud.nUses; ++u)
                extend(ud.uses[u], int(i));
        }
    }

    std::vector<RegIndex>
    pool(VRClass cls) const
    {
        std::vector<RegIndex> p;
        if (cls == VRClass::Int) {
            // r0, r1, r29, r30, r31 are reserved.
            const int avail = std::min(budget.intRegs - 4, 27);
            for (int r = 2; int(p.size()) < avail; ++r)
                p.push_back(RegIndex(r));
        } else {
            // f30, f31 are reserved.
            const int avail = std::min(budget.fpRegs - 2, 30);
            for (int r = 0; int(p.size()) < avail; ++r)
                p.push_back(RegIndex(r));
        }
        return p;
    }

    int
    newSlot(VRClass cls)
    {
        if (cls == VRClass::Fp)
            frameBytes = (frameBytes + 7) & ~7;
        const int off = frameBytes;
        frameBytes += cls == VRClass::Fp ? 8 : 4;
        return off;
    }

    void
    allocateClass(VRClass cls)
    {
        // Collect this class's intervals in start order.
        std::vector<const Interval *> order;
        for (const Interval &iv : intervals) {
            if (iv.start < 0 || code.vregClass[iv.vreg] != cls)
                continue;
            order.push_back(&iv);
        }
        std::sort(order.begin(), order.end(),
                  [](const Interval *a, const Interval *b) {
                      return a->start != b->start ? a->start < b->start
                                                  : a->vreg < b->vreg;
                  });

        std::vector<RegIndex> freeRegs = pool(cls);
        // Keep the free list in ascending order; take from the front.
        std::vector<const Interval *> active;   // sorted by end asc

        auto insertActive = [&](const Interval *iv) {
            auto it = std::lower_bound(
                active.begin(), active.end(), iv,
                [](const Interval *a, const Interval *b) {
                    return a->end < b->end;
                });
            active.insert(it, iv);
        };

        for (const Interval *cur : order) {
            // Expire finished intervals.
            while (!active.empty() && active.front()->end <= cur->start) {
                freeRegs.insert(
                    std::lower_bound(freeRegs.begin(), freeRegs.end(),
                                     assign[active.front()->vreg].phys),
                    assign[active.front()->vreg].phys);
                active.erase(active.begin());
            }

            if (!freeRegs.empty()) {
                assign[cur->vreg].phys = freeRegs.front();
                freeRegs.erase(freeRegs.begin());
                insertActive(cur);
                continue;
            }

            // Spill the interval that ends furthest away.
            const Interval *victim =
                active.empty() ? cur : active.back();
            if (victim != cur && victim->end > cur->end) {
                assign[cur->vreg].phys = assign[victim->vreg].phys;
                assign[victim->vreg].spilled = true;
                assign[victim->vreg].phys = kNoReg;
                assign[victim->vreg].slot = newSlot(cls);
                active.pop_back();
                insertActive(cur);
            } else {
                assign[cur->vreg].spilled = true;
                assign[cur->vreg].slot = newSlot(cls);
            }
        }
    }

    /// @name Emission helpers
    /// @{

    bool
    isSpilled(int v) const
    {
        return v >= 0 && assign[v].spilled;
    }

    /** Physical register of a non-spilled vreg (or r0 for kVZero). */
    RegIndex
    phys(int v) const
    {
        if (v == kVZero.id)
            return reg::zero;
        hbat_assert(v >= 0, "operand missing");
        hbat_assert(!assign[v].spilled, "phys() on spilled vreg");
        hbat_assert(assign[v].phys != kNoReg,
                    "vreg v", v, " was never allocated");
        return assign[v].phys;
    }

    /** Reload a source: returns its register, loading into @p scratch
     *  first when the vreg lives in a stack slot. */
    RegIndex
    src(int v, RegIndex scratch)
    {
        if (!isSpilled(v))
            return phys(v);
        const Assign &a = assign[v];
        const bool fp = code.vregClass[v] == VRClass::Fp;
        em.emit(Inst{fp ? Opcode::Ldf : Opcode::Lw, scratch, reg::sp, 0,
                     a.slot});
        return scratch;
    }

    /** Store a spilled vreg's value from @p r back to its slot. */
    void
    writeBack(int v, RegIndex r)
    {
        const Assign &a = assign[v];
        const bool fp = code.vregClass[v] == VRClass::Fp;
        em.emit(Inst{fp ? Opcode::Sdf : Opcode::Sw, r, reg::sp, 0,
                     a.slot});
    }

    /// @}

    void
    emitInst(const VItem &item)
    {
        const isa::OpInfo &info = isa::opInfo(item.op);

        if (item.op == Opcode::Halt || item.op == Opcode::Nop) {
            em.emit(Inst{item.op, 0, 0, 0, 0});
            return;
        }
        if (item.op == Opcode::Jr) {
            em.emit(Inst{Opcode::Jr, 0, src(item.s1, kIntScratch0), 0, 0});
            return;
        }

        if (info.isStore) {
            emitStore(item, info);
            return;
        }

        // Loads and ALU/FP operations.
        const bool xForm = info.rs2Class != RC::None;
        RegIndex ps1 = kNoReg, ps2 = kNoReg;
        if (info.rs1Class != RC::None) {
            ps1 = src(item.s1, info.rs1Class == RC::Fp ? kFpScratch0
                                                       : kIntScratch0);
        }
        if (xForm) {
            ps2 = src(item.s2, info.rs2Class == RC::Fp ? kFpScratch1
                                                       : kIntScratch1);
        }

        RegIndex pd = kNoReg;
        if (info.rdClass != RC::None) {
            if (isSpilled(item.d)) {
                if (info.rdClass == RC::Fp) {
                    pd = kFpScratch0;
                } else {
                    // A post-increment load updates its base in place;
                    // keep the destination scratch distinct from it.
                    pd = (info.writesBase && ps1 == kIntScratch0)
                             ? kIntScratch1
                             : kIntScratch0;
                }
            } else {
                pd = phys(item.d);
            }
        }

        em.emit(Inst{item.op, pd == kNoReg ? RegIndex(0) : pd,
                     ps1 == kNoReg ? RegIndex(0) : ps1,
                     ps2 == kNoReg ? RegIndex(0) : ps2, item.imm});

        if (info.rdClass != RC::None && isSpilled(item.d))
            writeBack(item.d, pd);
        if (info.writesBase && isSpilled(item.s1))
            writeBack(item.s1, ps1);
    }

    void
    emitStore(const VItem &item, const isa::OpInfo &info)
    {
        const bool xForm = info.rs2Class != RC::None;
        const bool fpData = info.rdClass == RC::Fp;

        RegIndex ps1 = src(item.s1, kIntScratch0);
        RegIndex ps2 = kNoReg;
        Opcode op = item.op;
        int32_t imm = item.imm;

        if (xForm) {
            ps2 = src(item.s2, kIntScratch1);
            if (!fpData && isSpilled(item.d) && ps1 == kIntScratch0 &&
                ps2 == kIntScratch1) {
                // All three operands are spilled and the data is an
                // integer: fold the address so a scratch frees up.
                em.emit(Inst{Opcode::Add, kIntScratch0, ps1, ps2, 0});
                ps1 = kIntScratch0;
                ps2 = kNoReg;
                op = op == Opcode::Swx ? Opcode::Sw : Opcode::Sdf;
                imm = 0;
            }
        }

        RegIndex pdata;
        if (fpData) {
            pdata = src(item.d, kFpScratch0);
        } else {
            // kIntScratch0 may hold the base; use the other scratch.
            pdata = src(item.d, ps1 == kIntScratch0 ? kIntScratch1
                                                    : kIntScratch0);
        }

        em.emit(Inst{op, pdata, ps1, ps2 == kNoReg ? RegIndex(0) : ps2,
                     imm});

        if (info.writesBase && isSpilled(item.s1))
            writeBack(item.s1, ps1);
    }

    void
    emit()
    {
        emLabels.clear();
        for (int l = 0; l < code.numLabels; ++l) {
            (void)l;
            emLabels.push_back(em.newLabel());
        }

        // Spill-area prologue.
        frameBytes = (frameBytes + 15) & ~15;
        hbat_assert(frameBytes <= 32767, "spill frame too large");
        if (frameBytes > 0) {
            em.emit(Inst{Opcode::Addi, reg::sp, reg::sp, 0,
                         -int32_t(frameBytes)});
        }

        for (const VItem &item : code.items) {
            switch (item.kind) {
              case VItem::Kind::Bind:
                em.bind(emLabels[item.label]);
                break;
              case VItem::Kind::Jump:
                em.emitJump(Opcode::J, emLabels[item.label]);
                break;
              case VItem::Kind::Branch: {
                const RegIndex a = src(item.s1, kIntScratch0);
                const RegIndex b = src(item.s2, kIntScratch1);
                em.emitBranch(item.op, a, b, emLabels[item.label]);
                break;
              }
              case VItem::Kind::Li:
                if (isSpilled(item.d)) {
                    em.li(kIntScratch0, item.uimm);
                    writeBack(item.d, kIntScratch0);
                } else {
                    em.li(phys(item.d), item.uimm);
                }
                break;
              case VItem::Kind::Inst:
                emitInst(item);
                break;
            }
        }
    }
};

} // namespace

LowerResult
lower(const VCode &code, const RegBudget &budget, Emitter &em)
{
    Allocator alloc(code, budget, em);
    return alloc.run();
}

} // namespace hbat::kasm
