/**
 * @file
 * Register allocation: virtual code -> physical instructions.
 *
 * The allocator runs item-level backward liveness over the VCode unit,
 * derives hole-free live intervals, and applies linear-scan allocation
 * (Poletto & Sarkar) per register class. Virtual registers that do not
 * fit the architected budget are assigned stack-frame slots; every use
 * reloads through a reserved scratch register and every definition
 * stores back, which is what makes the paper's few-register experiment
 * (Section 4.6) generate its extra loads and stores.
 *
 * Reserved integer registers: r0 (zero), r1/r30 (spill scratch),
 * r29 (sp), r31 (ra); reserved FP registers: f30/f31 (spill scratch).
 * A budget of N integer registers therefore leaves N-4 allocatable
 * (ra is reserved by convention but not counted against the budget
 * since generated code never uses it).
 */

#ifndef HBAT_KASM_REGALLOC_HH
#define HBAT_KASM_REGALLOC_HH

#include <vector>

#include "kasm/emitter.hh"
#include "kasm/vcode.hh"

namespace hbat::kasm
{

/** Result of lowering one VCode unit. */
struct LowerResult
{
    /** Emitter labels corresponding to each VLabel id. */
    std::vector<Label> labels;

    /** Number of virtual registers that received stack slots. */
    int spilledInt = 0;
    int spilledFp = 0;

    /** Stack frame size in bytes (spill area). */
    int frameBytes = 0;
};

/**
 * Allocate registers for @p code under @p budget and emit physical
 * instructions into @p em (prologue first, then the lowered body).
 */
LowerResult lower(const VCode &code, const RegBudget &budget, Emitter &em);

} // namespace hbat::kasm

#endif // HBAT_KASM_REGALLOC_HH
