/**
 * @file
 * Top-level program construction: data segments + code + link.
 *
 * A ProgramBuilder owns one CodeBuilder and the static data image.
 * Initialized data is placed from kDataBase upward; uninitialized
 * ("bss") ranges are handed out from a separate region (pages come
 * into existence on first touch in the simulated address space, so no
 * zero bytes are materialized). link() runs the register allocator
 * under the requested budget and produces a loadable Program.
 */

#ifndef HBAT_KASM_PROGRAM_BUILDER_HH
#define HBAT_KASM_PROGRAM_BUILDER_HH

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "kasm/code_builder.hh"
#include "kasm/program.hh"

namespace hbat::verify
{
struct Report;
} // namespace hbat::verify

namespace hbat::kasm
{

/** Base of the uninitialized-data (bss) region. */
inline constexpr VAddr kBssBase = 0x2000'0000;

/** Builds a complete Program: data, code, and the final link step. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** The code builder for this program. */
    CodeBuilder &code() { return cb; }

    /// @name Static data
    /// @{
    /** Append raw bytes; returns their virtual address. */
    VAddr bytes(std::span<const uint8_t> data, unsigned align = 4);

    /** Append 32-bit words; returns their virtual address. */
    VAddr words(std::span<const uint32_t> data);

    /** Append doubles; returns their virtual address. */
    VAddr doubles(std::span<const double> data);

    /** Reserve @p size zeroed bytes in the bss region. */
    VAddr space(uint64_t size, unsigned align = 8);

    /** Pooled FP constant (used by CodeBuilder::fconst). */
    VAddr doubleConst(double value);

    /**
     * Append a table of code addresses (one 32-bit word per target),
     * patched at link time. Registers every target as a possible
     * destination of indirect jumps (CodeBuilder::jr).
     */
    VAddr codeTable(const std::vector<VLabel> &targets);
    /// @}

    /**
     * Run register allocation under @p budget and produce the program.
     * May be called repeatedly (e.g. once with 32/32 and once with 8/8
     * registers); each call re-lowers the same virtual code.
     */
    Program link(const RegBudget &budget = RegBudget{});

    /**
     * link(), then run the static verifier (verify::analyzeProgram)
     * over the produced image, appending its findings to @p report.
     */
    Program link(const RegBudget &budget, verify::Report &report);

  private:
    VAddr align(unsigned a);

    std::string name;
    CodeBuilder cb;
    std::vector<uint8_t> data;
    VAddr bssCursor = kBssBase;
    std::map<uint64_t, VAddr> doublePool;

    struct TableFix
    {
        size_t dataOffset;
        std::vector<int> labels;
    };
    std::vector<TableFix> tableFixes;

    VCode linkedCode;       ///< cached after the first link()
    bool codeTaken = false;
};

} // namespace hbat::kasm

#endif // HBAT_KASM_PROGRAM_BUILDER_HH
