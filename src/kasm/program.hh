/**
 * @file
 * The linked program image produced by the kasm assembler.
 *
 * A Program is the unit the simulator loads: encoded text, initialized
 * data segments, the entry point, and the initial stack pointer. The
 * memory layout follows MIPS conventions: text at 0x0040_0000, static
 * data at 0x1000_0000, stack just below 0x8000_0000 growing down.
 * Uninitialized ("bss"-style) ranges need no segment: the simulated
 * address space allocates pages on first touch.
 */

#ifndef HBAT_KASM_PROGRAM_HH
#define HBAT_KASM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hbat::kasm
{

/** Conventional base of the text segment. */
inline constexpr VAddr kTextBase = 0x0040'0000;

/** Conventional base of the static data segment. */
inline constexpr VAddr kDataBase = 0x1000'0000;

/** Initial stack pointer (stack grows down from here). */
inline constexpr VAddr kStackTop = 0x7fff'f000;

/** One initialized data region. */
struct DataSegment
{
    VAddr base = 0;
    std::vector<uint8_t> bytes;
};

/** A linked, loadable program. */
struct Program
{
    /** Program name (for reports). */
    std::string name;

    /** Encoded instructions, 4 bytes each, starting at textBase. */
    std::vector<uint32_t> text;

    /** Base virtual address of the text segment. */
    VAddr textBase = kTextBase;

    /** Initialized data. */
    std::vector<DataSegment> data;

    /** Entry point. */
    VAddr entry = kTextBase;

    /** Initial stack pointer value. */
    VAddr stackTop = kStackTop;

    /**
     * Text addresses indirect jumps (JR/JALR) may transfer to, as
     * recorded by the linker from code-table labels. Empty for images
     * without code tables (or images built by an older linker); the
     * verifier then falls back to scanning data for text addresses.
     */
    std::vector<VAddr> indirectTargets;

    /** End of the text segment (exclusive). */
    VAddr textEnd() const { return textBase + text.size() * 4; }
};

} // namespace hbat::kasm

#endif // HBAT_KASM_PROGRAM_HH
