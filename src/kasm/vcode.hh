/**
 * @file
 * The virtual-register intermediate representation.
 *
 * Workloads are written against an unlimited supply of virtual
 * registers; the register allocator (regalloc.hh) later maps them onto
 * a configurable number of architected registers, inserting stack
 * spill/reload code where the budget is exceeded. This is the
 * mechanism behind the paper's Section 4.6 experiment ("recompiled to
 * use only 8 integer and 8 floating point registers"): the same
 * workload source yields both the 32/32 and the 8/8 binaries.
 */

#ifndef HBAT_KASM_VCODE_HH
#define HBAT_KASM_VCODE_HH

#include <cstdint>
#include <vector>

#include "isa/isa.hh"

namespace hbat::kasm
{

/** Register classes for virtual registers. */
enum class VRClass : uint8_t { Int, Fp };

/** A virtual register handle. */
struct VReg
{
    int id = -1;
    bool valid() const { return id != -1; }
};

/** The always-zero integer register (maps to architected r0). */
inline constexpr VReg kVZero{-2};

/** A control-flow label in virtual code. */
struct VLabel
{
    int id = -1;
    bool valid() const { return id >= 0; }
};

/**
 * Architected register budget for the register allocator.
 * The paper's baseline is 32/32; Section 4.6 re-runs everything at 8/8.
 */
struct RegBudget
{
    int intRegs = 32;
    int fpRegs = 32;
};

/** One virtual-code item. */
struct VItem
{
    enum class Kind : uint8_t
    {
        Inst,   ///< a regular instruction over virtual registers
        Li,     ///< load 32-bit constant `uimm` into `d`
        Branch, ///< conditional branch (op, s1, s2) to `label`
        Jump,   ///< unconditional jump to `label`
        Bind    ///< binds `label` at this position
    };

    Kind kind = Kind::Inst;
    isa::Opcode op = isa::Opcode::Nop;
    int d = -1;     ///< dest vreg (store data source for stores)
    int s1 = -1;    ///< first source / base vreg
    int s2 = -1;    ///< second source / index vreg
    int32_t imm = 0;
    uint32_t uimm = 0;  ///< Li constant
    int label = -1;     ///< Branch/Jump/Bind label id
};

/** A complete virtual-code unit ready for register allocation. */
struct VCode
{
    std::vector<VItem> items;
    std::vector<VRClass> vregClass;     ///< class of each vreg id
    int numLabels = 0;
    /**
     * Labels that indirect jumps (JR through a code table) may reach;
     * liveness treats every JR as possibly branching to any of these.
     */
    std::vector<int> indirectTargets;
};

} // namespace hbat::kasm

#endif // HBAT_KASM_VCODE_HH
