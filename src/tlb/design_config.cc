#include "tlb/design_config.hh"

#include <limits>

#include "common/log.hh"

namespace hbat::tlb
{

namespace
{

using config::Config;
using config::Overlay;
using config::Section;
using config::Value;
using verify::Diag;
using verify::Report;
using verify::Severity;

/** The design-section schema: every key designFromConfig understands. */
const char *const kDesignKeys[] = {
    "kind",           "name",          "desc",
    "baseEntries",    "basePorts",     "piggybackPorts",
    "banks",          "select",        "piggybackBanks",
    "upperEntries",   "upperPorts",
};

bool
isDesignKey(const std::string &key)
{
    for (const char *k : kDesignKeys)
        if (key == k)
            return true;
    return false;
}

void
keyError(Report &report, const Config &cfg, const Section &sec,
         const std::string &msg)
{
    report.add(Diag::ConfigKey, Severity::Error, 0,
               hbat::detail::concat(cfg.origin(), ": [", sec.name,
                                    "]: ", msg));
}

/**
 * Reject keys that no schema consumes — a typo'd `upperEntires` must
 * not silently fall back to a default.
 */
bool
checkKnownKeys(const Config &cfg, const Section &sec, Report &report)
{
    bool ok = true;
    for (const std::string &key : cfg.keysInChain(&sec)) {
        if (!isDesignKey(key)) {
            keyError(report, cfg, sec,
                     hbat::detail::concat("unknown design key '", key,
                                          "'"));
            ok = false;
        }
    }
    return ok;
}

/** Evaluate @p key as a non-negative integer into @p out (unsigned). */
bool
evalUnsigned(const Config &cfg, const Section &sec,
             const Overlay *overlay, const std::string &key,
             unsigned &out, Report &report)
{
    Value v;
    if (!cfg.eval(&sec, key, v, report, overlay))
        return true;    // unbound keeps the default; eval errors reported
    if (v.kind == Value::Kind::List) {
        keyError(report, cfg, sec,
                 hbat::detail::concat("key '", key, "' is a list here; "
                                      "lists are sweep axes (use a "
                                      "sweep spec)"));
        return false;
    }
    if (v.kind != Value::Kind::Int || v.i < 0 ||
        v.i > int64_t(std::numeric_limits<unsigned>::max())) {
        keyError(report, cfg, sec,
                 hbat::detail::concat("key '", key,
                                      "' must be a non-negative "
                                      "integer, got ", v.render()));
        return false;
    }
    out = unsigned(v.i);
    return true;
}

bool
evalBool(const Config &cfg, const Section &sec, const Overlay *overlay,
         const std::string &key, bool &out, Report &report)
{
    Value v;
    if (!cfg.eval(&sec, key, v, report, overlay))
        return true;
    if (v.kind != Value::Kind::Bool) {
        keyError(report, cfg, sec,
                 hbat::detail::concat("key '", key,
                                      "' must be true or false, got ",
                                      v.render()));
        return false;
    }
    out = v.b;
    return true;
}

bool
evalString(const Config &cfg, const Section &sec,
           const Overlay *overlay, const std::string &key,
           std::string &out, bool &present, Report &report)
{
    Value v;
    present = cfg.eval(&sec, key, v, report, overlay);
    if (!present)
        return true;
    if (v.kind != Value::Kind::Str) {
        keyError(report, cfg, sec,
                 hbat::detail::concat("key '", key,
                                      "' must be a string, got ",
                                      v.render()));
        return false;
    }
    out = v.s;
    return true;
}

} // namespace

bool
designFromConfig(const Config &cfg, const Section &sec,
                 const Overlay *overlay, DesignParams &out,
                 std::string *displayName, std::string *description,
                 Report &report)
{
    if (!checkKnownKeys(cfg, sec, report))
        return false;

    bool ok = true;
    bool present = false;

    std::string kind;
    ok &= evalString(cfg, sec, overlay, "kind", kind, present, report);
    if (ok && !present) {
        keyError(report, cfg, sec,
                 "design section needs a 'kind' key (multiported | "
                 "interleaved | multilevel | pretranslation | pcax | "
                 "victima)");
        return false;
    }

    DesignParams p;
    if (kind == "multiported") {
        p.kind = DesignParams::Kind::MultiPorted;
    } else if (kind == "interleaved") {
        p.kind = DesignParams::Kind::Interleaved;
    } else if (kind == "multilevel") {
        p.kind = DesignParams::Kind::MultiLevel;
    } else if (kind == "pretranslation") {
        p.kind = DesignParams::Kind::Pretranslation;
    } else if (kind == "pcax") {
        p.kind = DesignParams::Kind::PcIndexed;
    } else if (kind == "victima") {
        p.kind = DesignParams::Kind::Victima;
    } else if (ok) {
        keyError(report, cfg, sec,
                 hbat::detail::concat("unknown design kind '", kind,
                                      "'"));
        return false;
    }

    ok &= evalUnsigned(cfg, sec, overlay, "baseEntries", p.baseEntries,
                       report);
    ok &= evalUnsigned(cfg, sec, overlay, "banks", p.banks, report);
    ok &= evalUnsigned(cfg, sec, overlay, "piggybackPorts",
                       p.piggybackPorts, report);
    ok &= evalUnsigned(cfg, sec, overlay, "upperEntries",
                       p.upperEntries, report);
    ok &= evalUnsigned(cfg, sec, overlay, "upperPorts", p.upperPorts,
                       report);
    ok &= evalBool(cfg, sec, overlay, "piggybackBanks",
                   p.piggybackBanks, report);

    if (cfg.has(&sec, "basePorts")) {
        ok &= evalUnsigned(cfg, sec, overlay, "basePorts", p.basePorts,
                           report);
    } else if (p.kind == DesignParams::Kind::Interleaved) {
        p.basePorts = p.banks;  // one port per bank, like the factory
    }

    std::string select;
    ok &= evalString(cfg, sec, overlay, "select", select, present,
                     report);
    if (present) {
        if (select == "bit") {
            p.select = BankSelect::BitSelect;
        } else if (select == "xor") {
            p.select = BankSelect::XorFold;
        } else if (ok) {
            keyError(report, cfg, sec,
                     hbat::detail::concat("key 'select' must be bit or "
                                          "xor, got '", select, "'"));
            ok = false;
        }
    }

    std::string name = sec.name;
    ok &= evalString(cfg, sec, overlay, "name", name, present, report);
    if (displayName != nullptr)
        *displayName = name;

    std::string desc;
    ok &= evalString(cfg, sec, overlay, "desc", desc, present, report);
    if (description != nullptr)
        *description = desc;

    if (ok)
        out = p;
    return ok;
}

bool
designVariants(const Config &cfg, const Section &sec,
               std::vector<DesignVariant> &out, Report &report)
{
    if (!checkKnownKeys(cfg, sec, report))
        return false;

    // Find the axes: keys bound directly to a list literal, in
    // declaration order. A scalar expression referencing a list key
    // rides its axis via the overlay instead of becoming one.
    struct Axis
    {
        std::string key;
        std::vector<Value> values;
    };
    std::vector<Axis> axes;
    for (const std::string &key : cfg.keysInChain(&sec)) {
        if (key == "name" || key == "desc")
            continue;
        const config::Expr *e = cfg.bindingExpr(&sec, key);
        if (e == nullptr || e->op != config::Expr::Op::List)
            continue;
        Value v;
        if (!cfg.eval(&sec, key, v, report))
            return false;   // bound but unevaluable
        axes.push_back(Axis{key, v.list});
    }

    // Walk the cross-product, rightmost axis fastest.
    std::vector<size_t> idx(axes.size(), 0);
    for (;;) {
        Overlay overlay;
        for (size_t a = 0; a < axes.size(); ++a)
            overlay.emplace_back(axes[a].key, axes[a].values[idx[a]]);

        DesignVariant var;
        std::string name;
        if (!designFromConfig(cfg, sec, &overlay, var.params, &name,
                              nullptr, report))
            return false;
        var.label = name;
        for (const auto &[key, value] : overlay) {
            var.label += hbat::detail::concat(" ", key, "=",
                                              value.render());
            var.echo.emplace_back(key, value.render());
        }
        out.push_back(std::move(var));

        size_t a = axes.size();
        while (a > 0 && ++idx[a - 1] == axes[a - 1].values.size())
            idx[--a] = 0;
        if (a == 0)
            break;
    }
    return true;
}

} // namespace hbat::tlb
