#include "tlb/pcax.hh"

#include <algorithm>

#include "common/rng.hh"

namespace hbat::tlb
{

PcaxTlb::PcaxTlb(vm::PageTable &page_table, unsigned pc_entries,
                 unsigned pc_ports, unsigned base_entries,
                 uint64_t seed)
    : TranslationEngine(page_table), cache(pc_entries),
      pcPorts(pc_ports),
      base(base_entries, Replacement::Random, deriveSeed(seed, 0))
{}

void
PcaxTlb::beginCycle(Cycle now)
{
    (void)now;
    pcUsed = 0;
}

PcaxTlb::PcEntry *
PcaxTlb::find(VAddr pc)
{
    for (PcEntry &e : cache)
        if (e.valid && e.pc == pc)
            return &e;
    return nullptr;
}

void
PcaxTlb::insertEntry(VAddr pc, Vpn vpn, Cycle now)
{
    if (PcEntry *e = find(pc)) {
        e->vpn = vpn;
        e->lastUse = now;
        return;
    }
    PcEntry *victim = &cache[0];
    for (PcEntry &e : cache) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    *victim = PcEntry{pc, vpn, true, now};
}

Cycle
PcaxTlb::grantBase(Cycle earliest)
{
    const Cycle grant = std::max(earliest, baseNextFree);
    baseNextFree = grant + 1;
    return grant;
}

Outcome
PcaxTlb::request(const XlateRequest &req, Cycle now)
{
    ++stats_.requests;

    if (pcUsed >= pcPorts) {
        ++stats_.noPort;
        ++stats_.queueCycles;
        return Outcome::noPort();
    }
    ++pcUsed;

    if (PcEntry *e = find(req.pc); e && e->vpn == req.vpn) {
        // The instruction re-touches the page it translated last
        // time: the prediction is verified against the resolved VPN,
        // so the base TLB is never consulted and no latency shows.
        e->lastUse = now;
        ++stats_.translations;
        ++stats_.shielded;
        const vm::RefResult rr = referencePage(req.vpn, req.write);
        if (rr.statusChanged) {
            // Status changes write through to the base TLB.
            grantBase(now);
            ++stats_.statusWrites;
        }
        return Outcome::hit(now, rr.ppn, true);
    }

    // No prediction (or it named another page): the base-TLB probe
    // launched in parallel with the PC-cache lookup decides, possibly
    // queued behind earlier base-TLB work.
    const Cycle grant = grantBase(now);
    stats_.queueCycles += grant - now;
    ++stats_.baseAccesses;

    if (base.lookup(req.vpn, grant)) {
        ++stats_.baseHits;
        ++stats_.translations;
        const vm::RefResult rr = referencePage(req.vpn, req.write);
        insertEntry(req.pc, req.vpn, now);
        return Outcome::hit(grant, rr.ppn, false);
    }

    ++stats_.misses;
    return Outcome::miss(grant);
}

void
PcaxTlb::fill(Vpn vpn, Cycle now)
{
    // The PC cache needs no coherence action on base replacement: its
    // entries are verified against the resolved VPN on every use, so
    // one outliving its base copy still yields a correct translation.
    base.insert(vpn, now);
}

void
PcaxTlb::invalidate(Vpn vpn, Cycle now)
{
    (void)now;
    ++stats_.invalidations;
    base.invalidate(vpn);
    // No inclusion holds between PC entries and the base TLB, so a
    // consistency operation must probe every valid entry by VPN.
    for (PcEntry &e : cache) {
        if (e.valid) {
            ++stats_.upperProbes;
            if (e.vpn == vpn)
                e.valid = false;
        }
    }
}

unsigned
PcaxTlb::cachedEntries() const
{
    unsigned n = 0;
    for (const PcEntry &e : cache)
        n += e.valid;
    return n;
}

void
PcaxTlb::registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const
{
    TranslationEngine::registerStats(reg, prefix);
    reg.formula(prefix + ".pc_entries", "PC-cache capacity",
                [this] { return double(cache.size()); });
    reg.formula(prefix + ".pc_occupancy",
                "valid PC-cache entries at end of run",
                [this] { return double(cachedEntries()); });
    reg.formula(prefix + ".pc_predict_rate",
                "requests whose PC predicted the right page, per "
                "request",
                [this] {
                    return stats_.requests == 0
                               ? 0.0
                               : double(stats_.shielded) /
                                     double(stats_.requests);
                });
}

} // namespace hbat::tlb
