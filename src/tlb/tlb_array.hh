/**
 * @file
 * A fully-associative translation array with pluggable replacement.
 *
 * This is the storage building block every design shares: the 128-entry
 * base TLBs and interleaved banks use random replacement, the small L1
 * TLBs use true LRU (Section 3.3 notes the small upper level can afford
 * the better policy).
 */

#ifndef HBAT_TLB_TLB_ARRAY_HH
#define HBAT_TLB_TLB_ARRAY_HH

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace hbat::tlb
{

/** Replacement policies for TlbArray. */
enum class Replacement : uint8_t { Random, Lru };

/** Fully-associative array of virtual page numbers. */
class TlbArray
{
  public:
    /**
     * @param entries capacity
     * @param repl replacement policy
     * @param seed RNG seed for random replacement
     */
    TlbArray(unsigned entries, Replacement repl, uint64_t seed = 1);

    /** Probe for @p vpn; updates LRU state on hit. */
    bool lookup(Vpn vpn, Cycle now);

    /** Probe without touching replacement state. */
    bool contains(Vpn vpn) const;

    /**
     * Insert @p vpn (no-op when present, refreshing LRU).
     * @return the evicted VPN, if the insert displaced one.
     */
    std::optional<Vpn> insert(Vpn vpn, Cycle now);

    /** Remove @p vpn if present. @return true when removed. */
    bool invalidate(Vpn vpn);

    /** Drop every entry. */
    void flush();

    /**
     * Resident VPNs ordered oldest use first (ties broken by VPN).
     * Replaying the list through insert()/fill() in this order leaves
     * a same-capacity LRU array in exactly this state — the warm-state
     * transfer the checkpointed sampling driver relies on.
     */
    std::vector<Vpn> residentsByAge() const;

    unsigned capacity() const { return unsigned(entries.size()); }
    unsigned occupancy() const { return unsigned(index.size()); }

  private:
    struct Entry
    {
        Vpn vpn = 0;
        bool valid = false;
        Cycle lastUse = 0;
    };

    int victim(Cycle now);

    std::vector<Entry> entries;
    std::unordered_map<Vpn, int> index;
    Replacement repl;
    Rng rng;
};

} // namespace hbat::tlb

#endif // HBAT_TLB_TLB_ARRAY_HH
