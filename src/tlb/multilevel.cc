#include "tlb/multilevel.hh"

#include "common/rng.hh"

namespace hbat::tlb
{

MultiLevelTlb::MultiLevelTlb(vm::PageTable &page_table,
                             unsigned l1_entries, unsigned l1_ports,
                             unsigned l2_entries, uint64_t seed)
    : TranslationEngine(page_table), l1Ports(l1_ports),
      l1(l1_entries, Replacement::Lru, deriveSeed(seed, 0)),
      l2(l2_entries, Replacement::Random, deriveSeed(seed, 1))
{}

void
MultiLevelTlb::beginCycle(Cycle now)
{
    (void)now;
    l1Used = 0;
}

Cycle
MultiLevelTlb::grantL2(Cycle earliest)
{
    const Cycle grant = std::max(earliest, l2NextFree);
    l2NextFree = grant + 1;
    return grant;
}

Outcome
MultiLevelTlb::request(const XlateRequest &req, Cycle now)
{
    ++stats_.requests;

    if (l1Used >= l1Ports) {
        ++stats_.noPort;
        ++stats_.queueCycles;
        return Outcome::noPort();
    }
    ++l1Used;

    if (l1.lookup(req.vpn, now)) {
        ++stats_.translations;
        ++stats_.shielded;
        const vm::RefResult rr = referencePage(req.vpn, req.write);
        if (rr.statusChanged) {
            // Write the status change through to the base TLB; the
            // write occupies an L2 port slot (Section 4.1).
            grantL2(now);
            ++stats_.statusWrites;
        }
        return Outcome::hit(now, rr.ppn, true);
    }

    // L1 miss: the request goes to the L2 in the next cycle and may
    // queue there; minimum total penalty is 2 cycles.
    const Cycle grant = grantL2(now + 1);
    stats_.queueCycles += grant - (now + 1);
    ++stats_.baseAccesses;

    if (l2.lookup(req.vpn, grant)) {
        ++stats_.baseHits;
        ++stats_.translations;
        l1.insert(req.vpn, now);
        const vm::RefResult rr = referencePage(req.vpn, req.write);
        return Outcome::hit(grant + 1, rr.ppn, false);
    }

    ++stats_.misses;
    return Outcome::miss(grant);
}

void
MultiLevelTlb::invalidate(Vpn vpn, Cycle now)
{
    (void)now;
    ++stats_.invalidations;
    // Inclusion pays off here: the L1 TLB needs a probe only when
    // the L2 actually held the entry (Section 3.3).
    if (l2.invalidate(vpn)) {
        ++stats_.upperProbes;
        l1.invalidate(vpn);
    }
}

void
MultiLevelTlb::fill(Vpn vpn, Cycle now)
{
    // Load both levels; maintain inclusion by invalidating the L1
    // entry whose L2 copy was evicted.
    if (auto evicted = l2.insert(vpn, now))
        l1.invalidate(*evicted);
    l1.insert(vpn, now);
}

void
MultiLevelTlb::registerStats(obs::StatRegistry &reg,
                             const std::string &prefix) const
{
    TranslationEngine::registerStats(reg, prefix);
    reg.formula(prefix + ".l1_entries", "upper-level TLB capacity",
                [this] { return double(l1.capacity()); });
    reg.formula(prefix + ".l1_ports", "upper-level ports per cycle",
                [this] { return double(l1Ports); });
    reg.formula(prefix + ".l2_hit_rate",
                "hit rate of base-TLB accesses (L1 misses)", [this] {
                    return stats_.baseAccesses == 0
                               ? 0.0
                               : double(stats_.baseHits) /
                                     double(stats_.baseAccesses);
                });
}

} // namespace hbat::tlb
