/**
 * @file
 * Cache-resident TLB victims (design Victima).
 *
 * After Kanellopoulos et al.'s Victima: entries evicted from the TLB
 * are not discarded but spilled into the data cache, turning the 32 KB
 * D-cache of Table 1 into a large, software-transparent second-level
 * translation store. Each victim occupies one cache block at a
 * synthetic physical address derived from its VPN, living under the
 * cache's ordinary LRU replacement alongside data blocks.
 *
 * Timing: the base TLB is multi-ported and answers hits with no
 * visible latency. On a base miss the spilled-entry block is probed in
 * the following cycle; a hit there promotes the entry back into the
 * base TLB (evicting the block — the spill store is exclusive of the
 * base TLB) and completes two cycles after the request, far cheaper
 * than the 30-cycle walk. A probe miss starts the ordinary walk.
 *
 * Consistency: because the spill store is exclusive, invalidations
 * must always probe the cache — the inclusion shortcut of the
 * multi-level designs is unavailable (accounted as upperProbes).
 * The engine is purely reactive: the spill cache's in-flight fills are
 * only consulted from request()/fill() calls, so the base-class
 * nextEventCycle() (never) stays correct.
 */

#ifndef HBAT_TLB_VICTIMA_HH
#define HBAT_TLB_VICTIMA_HH

#include "cache/cache_model.hh"
#include "tlb/tlb_array.hh"
#include "tlb/xlate.hh"

namespace hbat::tlb
{

/** Victima: base-TLB victims spilled into a 32 KB D-cache model. */
class VictimaTlb : public TranslationEngine
{
  public:
    /**
     * @param base_entries base TLB capacity (128 in the catalogue)
     * @param base_ports simultaneous base probes per cycle
     */
    VictimaTlb(vm::PageTable &page_table, unsigned base_entries,
               unsigned base_ports, uint64_t seed);

    void beginCycle(Cycle now) override;
    Outcome request(const XlateRequest &req, Cycle now) override;
    void fill(Vpn vpn, Cycle now) override;
    void invalidate(Vpn vpn, Cycle now) override;
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const override;

    /** Whether @p vpn's victim block is cache-resident (for tests). */
    bool cacheResident(Vpn vpn) const;

  private:
    /** Synthetic block address of @p vpn's spilled entry. */
    PAddr entryAddr(Vpn vpn) const;

    /** Install @p vpn in the base TLB, spilling any victim. */
    void install(Vpn vpn, Cycle now);

    const unsigned basePorts;
    TlbArray base;
    cache::CacheModel spill;
    unsigned portsUsed = 0;
    uint64_t spills_ = 0;       ///< victims written into the cache
    uint64_t spillHits_ = 0;    ///< base misses served from the cache
};

} // namespace hbat::tlb

#endif // HBAT_TLB_VICTIMA_HH
