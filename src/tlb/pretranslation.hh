/**
 * @file
 * Pretranslation (Section 3.5; design P8).
 *
 * A translation is attached to a base-register *value* at its first
 * dereference and reused on later dereferences whose virtual page
 * matches. Pointer arithmetic propagates the attachment to the result
 * register; any other write to a register drops its attachments. The
 * attachments live in a small LRU pretranslation cache tagged by the
 * 5-bit base-register identifier concatenated with the upper 4 bits of
 * a load's displacement (zero for other instructions), exactly as
 * Section 4.1 specifies.
 *
 * A pretranslation hit costs nothing visible. A miss is detected the
 * cycle after address generation and then takes a (possibly queued)
 * trip to the single-ported base TLB. Coherence: the pretranslation
 * cache is flushed whenever a base-TLB entry is replaced.
 */

#ifndef HBAT_TLB_PRETRANSLATION_HH
#define HBAT_TLB_PRETRANSLATION_HH

#include <vector>

#include "tlb/tlb_array.hh"
#include "tlb/xlate.hh"

namespace hbat::tlb
{

/** P8: pretranslation cache over a single-ported base TLB. */
class PretranslationTlb : public TranslationEngine
{
  public:
    /**
     * @param pt_entries pretranslation cache capacity (8 in the paper)
     * @param base_entries base TLB capacity (128 in the paper)
     */
    PretranslationTlb(vm::PageTable &page_table, unsigned pt_entries,
                      unsigned base_entries, uint64_t seed);

    void beginCycle(Cycle now) override;
    Outcome request(const XlateRequest &req, Cycle now) override;
    void fill(Vpn vpn, Cycle now) override;
    void invalidate(Vpn vpn, Cycle now) override;
    void noteRegWrite(RegIndex dest, const RegIndex *srcs, int nsrcs,
                      bool propagates) override;
    bool observesRegWrites() const override { return true; }
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const override;

    /** Pretranslation-cache occupancy (for tests). */
    unsigned cachedEntries() const;

  private:
    struct PtEntry
    {
        uint16_t tag = 0;       ///< (baseReg << 4) | offsetHigh
        Vpn vpn = 0;
        bool valid = false;
        Cycle lastUse = 0;
    };

    static uint16_t
    tagOf(RegIndex base_reg, uint8_t offset_high)
    {
        return uint16_t(base_reg) << 4 | offset_high;
    }

    PtEntry *find(uint16_t tag);
    void insertEntry(uint16_t tag, Vpn vpn, Cycle now);
    Cycle grantBase(Cycle earliest);

    std::vector<PtEntry> cache;
    TlbArray base;
    Cycle baseNextFree = 0;
    Cycle lastSeen = 0;     ///< most recent cycle (LRU tie-break)
};

} // namespace hbat::tlb

#endif // HBAT_TLB_PRETRANSLATION_HH
