#include "tlb/multiported.hh"

#include "common/log.hh"

namespace hbat::tlb
{

MultiPortedTlb::MultiPortedTlb(vm::PageTable &page_table, unsigned ports,
                               unsigned piggy_ports, unsigned entries,
                               uint64_t seed)
    : TranslationEngine(page_table), ports(ports),
      piggyPorts(piggy_ports),
      array(entries, Replacement::Random, seed)
{
    hbat_assert(ports >= 1, "need at least one real port");
}

void
MultiPortedTlb::beginCycle(Cycle now)
{
    (void)now;
    portsUsed = 0;
    piggyUsed = 0;
    inFlight.clear();
}

Outcome
MultiPortedTlb::request(const XlateRequest &req, Cycle now)
{
    ++stats_.requests;

    if (portsUsed < ports) {
        ++portsUsed;
        ++stats_.baseAccesses;
        const bool hit = array.lookup(req.vpn, now);
        if (hit) {
            ++stats_.baseHits;
            ++stats_.translations;
            const vm::RefResult rr = referencePage(req.vpn, req.write);
            inFlight.push_back(InFlight{req.vpn, true, rr.ppn});
            return Outcome::hit(now, rr.ppn, false);
        }
        ++stats_.misses;
        inFlight.push_back(InFlight{req.vpn, false, 0});
        return Outcome::miss(now);
    }

    // No real port: try to combine with a translation in progress.
    if (piggyUsed < piggyPorts) {
        for (const InFlight &f : inFlight) {
            if (f.vpn != req.vpn)
                continue;
            ++piggyUsed;
            ++stats_.piggybacks;
            if (f.hit) {
                ++stats_.translations;
                ++stats_.shielded;
                const vm::RefResult rr =
                    referencePage(req.vpn, req.write);
                Outcome out = Outcome::hit(now, rr.ppn, true);
                out.piggybacked = true;
                return out;
            }
            // Ride the same miss; the pipeline merges the walks.
            return Outcome::miss(now);
        }
    }

    ++stats_.noPort;
    ++stats_.queueCycles;
    return Outcome::noPort();
}

void
MultiPortedTlb::fill(Vpn vpn, Cycle now)
{
    array.insert(vpn, now);
}

void
MultiPortedTlb::invalidate(Vpn vpn, Cycle now)
{
    (void)now;
    ++stats_.invalidations;
    array.invalidate(vpn);
}

void
MultiPortedTlb::registerStats(obs::StatRegistry &reg,
                              const std::string &prefix) const
{
    TranslationEngine::registerStats(reg, prefix);
    reg.formula(prefix + ".ports", "real TLB ports",
                [this] { return double(ports); });
    reg.formula(prefix + ".piggy_ports", "piggyback (combining) ports",
                [this] { return double(piggyPorts); });
    reg.formula(prefix + ".piggyback_rate",
                "requests satisfied by combining, per request", [this] {
                    return stats_.requests == 0
                               ? 0.0
                               : double(stats_.piggybacks) /
                                     double(stats_.requests);
                });
}

} // namespace hbat::tlb
