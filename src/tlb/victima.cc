#include "tlb/victima.hh"

#include <algorithm>

#include "common/rng.hh"

namespace hbat::tlb
{

VictimaTlb::VictimaTlb(vm::PageTable &page_table, unsigned base_entries,
                       unsigned base_ports, uint64_t seed)
    : TranslationEngine(page_table), basePorts(base_ports),
      base(base_entries, Replacement::Random, deriveSeed(seed, 0)),
      spill(cache::CacheConfig{})   // Table 1's 32 KB D-cache geometry
{}

void
VictimaTlb::beginCycle(Cycle now)
{
    (void)now;
    portsUsed = 0;
}

PAddr
VictimaTlb::entryAddr(Vpn vpn) const
{
    // One block per victim: distinct VPNs land on distinct blocks and
    // spread across the cache's sets like a linear array would.
    return PAddr(vpn) * spill.config().blockBytes;
}

void
VictimaTlb::install(Vpn vpn, Cycle now)
{
    // The promoted/walked entry supersedes any cache-resident copy
    // (the spill store is exclusive of the base TLB).
    spill.invalidateBlock(entryAddr(vpn));
    if (auto evicted = base.insert(vpn, now)) {
        ++spills_;
        spill.access(entryAddr(*evicted), true, now);
    }
}

Outcome
VictimaTlb::request(const XlateRequest &req, Cycle now)
{
    ++stats_.requests;

    if (portsUsed >= basePorts) {
        ++stats_.noPort;
        ++stats_.queueCycles;
        return Outcome::noPort();
    }
    ++portsUsed;
    ++stats_.baseAccesses;

    if (base.lookup(req.vpn, now)) {
        ++stats_.baseHits;
        ++stats_.translations;
        const vm::RefResult rr = referencePage(req.vpn, req.write);
        return Outcome::hit(now, rr.ppn, false);
    }

    // Base miss: probe the spilled-entry block the next cycle. A hit
    // reloads the base TLB and the access restarts once the entry is
    // back (a just-spilled block may still be filling — the probe
    // merges with the in-flight fill and waits it out).
    if (spill.contains(entryAddr(req.vpn))) {
        ++spillHits_;
        ++stats_.translations;
        const cache::CacheAccess acc =
            spill.access(entryAddr(req.vpn), false, now + 1);
        install(req.vpn, now);
        const vm::RefResult rr = referencePage(req.vpn, req.write);
        return Outcome::hit(std::max(acc.ready, now + 1) + 1, rr.ppn,
                            false);
    }

    ++stats_.misses;
    return Outcome::miss(now);
}

void
VictimaTlb::fill(Vpn vpn, Cycle now)
{
    install(vpn, now);
}

void
VictimaTlb::invalidate(Vpn vpn, Cycle now)
{
    (void)now;
    ++stats_.invalidations;
    base.invalidate(vpn);
    // The spill store is exclusive of the base TLB, so consistency
    // must probe the cache whether or not the base held the entry —
    // the price Victima pays for its reach (cf. the multi-level
    // designs' inclusion shortcut).
    ++stats_.upperProbes;
    spill.invalidateBlock(entryAddr(vpn));
}

bool
VictimaTlb::cacheResident(Vpn vpn) const
{
    return spill.contains(entryAddr(vpn));
}

void
VictimaTlb::registerStats(obs::StatRegistry &reg,
                          const std::string &prefix) const
{
    TranslationEngine::registerStats(reg, prefix);
    cache::registerStats(reg, prefix + ".spill_cache", spill.stats());
    reg.scalar(prefix + ".spills", "victims written into the D-cache",
               spills_);
    reg.scalar(prefix + ".spill_hits",
               "base-TLB misses served from spilled entries",
               spillHits_);
    reg.formula(prefix + ".spill_save_rate",
                "fraction of would-be walks served from the cache",
                [this] {
                    const uint64_t wouldWalk =
                        spillHits_ + stats_.misses;
                    return wouldWalk == 0
                               ? 0.0
                               : double(spillHits_) /
                                     double(wouldWalk);
                });
}

} // namespace hbat::tlb
