/**
 * @file
 * Multi-ported TLB, optionally with piggyback ports.
 *
 * Covers Table 2's designs T4/T2/T1 (piggyPorts = 0) and PB2/PB1
 * (2 + 2 and 1 + 3 ports). Section 3.1: every real port reaches every
 * entry, so the per-port hit rate equals the hit rate of the whole
 * array. Section 3.4: a request that does not receive a real port may
 * combine with any translation performed in the same cycle whose
 * virtual page number matches, at the cost of one comparator per
 * piggyback port and a gate on the hit signal.
 */

#ifndef HBAT_TLB_MULTIPORTED_HH
#define HBAT_TLB_MULTIPORTED_HH

#include <vector>

#include "tlb/tlb_array.hh"
#include "tlb/xlate.hh"

namespace hbat::tlb
{

/** T4/T2/T1/PB2/PB1: N real ports plus P piggyback ports. */
class MultiPortedTlb : public TranslationEngine
{
  public:
    /**
     * @param ports real TLB access ports
     * @param piggy_ports piggyback (combining) ports
     * @param entries base TLB capacity (random replacement)
     */
    MultiPortedTlb(vm::PageTable &page_table, unsigned ports,
                   unsigned piggy_ports, unsigned entries,
                   uint64_t seed);

    void beginCycle(Cycle now) override;
    Outcome request(const XlateRequest &req, Cycle now) override;
    void fill(Vpn vpn, Cycle now) override;
    void invalidate(Vpn vpn, Cycle now) override;
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const override;

  private:
    struct InFlight
    {
        Vpn vpn;
        bool hit;
        Ppn ppn;
    };

    const unsigned ports;
    const unsigned piggyPorts;
    TlbArray array;
    unsigned portsUsed = 0;
    unsigned piggyUsed = 0;
    std::vector<InFlight> inFlight;     ///< translations begun this cycle
};

} // namespace hbat::tlb

#endif // HBAT_TLB_MULTIPORTED_HH
