/**
 * @file
 * An idealized translation engine: unlimited bandwidth and a perfect
 * hit rate. Not one of Table 2's designs — it bounds how much
 * performance *any* translation mechanism could recover, which the
 * ablation studies use to separate bandwidth effects from miss
 * effects.
 */

#ifndef HBAT_TLB_IDEAL_HH
#define HBAT_TLB_IDEAL_HH

#include "tlb/xlate.hh"

namespace hbat::tlb
{

/** Infinite ports, no misses, zero latency. */
class IdealTlb : public TranslationEngine
{
  public:
    explicit IdealTlb(vm::PageTable &page_table)
        : TranslationEngine(page_table)
    {}

    void beginCycle(Cycle now) override { (void)now; }

    Outcome
    request(const XlateRequest &req, Cycle now) override
    {
        ++stats_.requests;
        ++stats_.translations;
        ++stats_.shielded;
        const vm::RefResult rr = referencePage(req.vpn, req.write);
        return Outcome::hit(now, rr.ppn, true);
    }

    void
    fill(Vpn vpn, Cycle now) override
    {
        (void)vpn;
        (void)now;
    }
};

} // namespace hbat::tlb

#endif // HBAT_TLB_IDEAL_HH
