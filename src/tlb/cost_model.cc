#include "tlb/cost_model.hh"

#include <cmath>

#include "common/log.hh"

namespace hbat::tlb
{

namespace
{

/// Area multiplier of a storage bit with @p ports access ports,
/// normalized to a single-ported bit (quadratic in ports [Jol91]).
double
portAreaFactor(unsigned ports)
{
    const double p = double(ports);
    return (0.5 + p / 2.0) * (0.5 + p / 2.0);
}

/// Fixed per-port interconnect cost of an n-way crossbar (area grows
/// with the product of requesters and banks).
double
crossbarArea(unsigned requesters, unsigned banks)
{
    return 16.0 * double(requesters) * double(banks);
}

/// Comparator area for one piggyback port (one VPN comparator).
constexpr double kComparatorArea = 24.0;

/// Latency adders.
constexpr double kCrossbarLatency = 1.0;
constexpr double kHitGateLatency = 0.25;

} // namespace

CostEstimate
arrayCost(unsigned entries, unsigned ports, unsigned bits_per_entry)
{
    hbat_assert(entries > 0 && ports > 0, "bad array shape");
    CostEstimate c;
    c.areaRbe =
        double(entries) * bits_per_entry * portAreaFactor(ports);
    // CAM match across `entries` tags; each extra port loads the
    // match/read paths.
    c.accessLatency =
        std::log2(double(entries)) + 0.5 * double(ports - 1);
    c.missPathLatency = c.accessLatency;
    return c;
}

CostEstimate
designCost(Design d)
{
    constexpr unsigned kBase = 128;
    switch (d) {
      case Design::T4: return arrayCost(kBase, 4);
      case Design::T2: return arrayCost(kBase, 2);
      case Design::T1: return arrayCost(kBase, 1);

      case Design::I8:
      case Design::I4:
      case Design::X4: {
        const unsigned banks = d == Design::I8 ? 8 : 4;
        const CostEstimate bank = arrayCost(kBase / banks, 1);
        CostEstimate c;
        c.areaRbe = bank.areaRbe * banks + crossbarArea(4, banks);
        c.accessLatency = bank.accessLatency + kCrossbarLatency;
        c.missPathLatency = c.accessLatency;
        return c;
      }

      case Design::M16:
      case Design::M8:
      case Design::M4: {
        const unsigned l1 =
            d == Design::M16 ? 16 : (d == Design::M8 ? 8 : 4);
        const CostEstimate upper = arrayCost(l1, 4);
        const CostEstimate base = arrayCost(kBase, 1);
        CostEstimate c;
        c.areaRbe = upper.areaRbe + base.areaRbe;
        // The port-side critical path is the small L1 TLB.
        c.accessLatency = upper.accessLatency;
        c.missPathLatency = upper.accessLatency + base.accessLatency;
        return c;
      }

      case Design::P8: {
        // 8-entry pretranslation cache, 4-ported (read at decode),
        // over a single-ported base TLB. The pretranslation result is
        // available by the end of decode — effectively off the
        // memory-access critical path, which we model as a very small
        // port-side latency.
        const CostEstimate cache = arrayCost(8, 4, 48);
        const CostEstimate base = arrayCost(kBase, 1);
        CostEstimate c;
        c.areaRbe = cache.areaRbe + base.areaRbe;
        c.accessLatency = kHitGateLatency;
        c.missPathLatency = 1.0 + base.accessLatency;
        return c;
      }

      case Design::PB2:
      case Design::PB1: {
        const unsigned ports = d == Design::PB2 ? 2 : 1;
        const unsigned piggy = d == Design::PB2 ? 2 : 3;
        CostEstimate c = arrayCost(kBase, ports);
        c.areaRbe += kComparatorArea * piggy;
        c.accessLatency += kHitGateLatency;
        c.missPathLatency = c.accessLatency;
        return c;
      }

      case Design::I4PB: {
        const CostEstimate bank = arrayCost(kBase / 4, 1);
        CostEstimate c;
        c.areaRbe = bank.areaRbe * 4 + crossbarArea(4, 4) +
                    kComparatorArea * 4;
        c.accessLatency =
            bank.accessLatency + kCrossbarLatency + kHitGateLatency;
        c.missPathLatency = c.accessLatency;
        return c;
      }

      case Design::PCAX: {
        // 32-entry PC-indexed cache (PC tag + VPN + PPN, ~96 bits per
        // entry) probed in parallel with a single-ported base TLB.
        const CostEstimate cache = arrayCost(32, 4, 96);
        const CostEstimate base = arrayCost(kBase, 1);
        CostEstimate c;
        c.areaRbe = cache.areaRbe + base.areaRbe;
        // The port-side critical path is the small PC cache; a
        // misprediction falls through to the base array.
        c.accessLatency = cache.accessLatency + kHitGateLatency;
        c.missPathLatency = base.accessLatency + kHitGateLatency;
        return c;
      }

      case Design::Victima: {
        // The spill store reuses the existing D-cache arrays, so the
        // only additions over a 4-ported TLB are the per-port match
        // logic and the promote path control.
        CostEstimate c = arrayCost(kBase, 4);
        c.areaRbe += kComparatorArea * 4;
        c.accessLatency += kHitGateLatency;
        // A base miss probes the D-cache before declaring a walk.
        c.missPathLatency = c.accessLatency + kCrossbarLatency + 2.0;
        return c;
      }

      default:
        hbat_panic("bad design");
    }
}

} // namespace hbat::tlb
