/**
 * @file
 * PC-indexed address translation (design PCAX).
 *
 * A small LRU translation cache tagged by the *program counter* of the
 * memory instruction, after Murthy & Sohi's PC-indexed data address
 * translation: most static loads and stores keep re-touching the page
 * they touched last time, so the PC predicts the translation before
 * the effective address even resolves. The PC cache is probed in
 * parallel with the base TLB; a matching entry (same VPN as the
 * resolved address) shields the access completely — no base-TLB port,
 * no visible latency. A mismatch or absent entry falls through to the
 * base probe that was launched in parallel, which may queue behind
 * earlier base-TLB work but costs no extra detection cycle (unlike
 * pretranslation's serial miss path).
 *
 * Unlike the register-value-tagged pretranslation cache, PC entries
 * survive register writes (the tag is the static instruction, not a
 * register value), so no noteRegWrite() feed is needed, and the cache
 * is searchable by VPN — consistency invalidations probe every valid
 * entry instead of flushing.
 */

#ifndef HBAT_TLB_PCAX_HH
#define HBAT_TLB_PCAX_HH

#include <vector>

#include "tlb/tlb_array.hh"
#include "tlb/xlate.hh"

namespace hbat::tlb
{

/** PCAX: PC-indexed translation cache over a 1-ported base TLB. */
class PcaxTlb : public TranslationEngine
{
  public:
    /**
     * @param pc_entries PC-cache capacity (32 in the catalogue)
     * @param pc_ports simultaneous PC-cache probes per cycle
     * @param base_entries base TLB capacity (128 in the catalogue)
     */
    PcaxTlb(vm::PageTable &page_table, unsigned pc_entries,
            unsigned pc_ports, unsigned base_entries, uint64_t seed);

    void beginCycle(Cycle now) override;
    Outcome request(const XlateRequest &req, Cycle now) override;
    void fill(Vpn vpn, Cycle now) override;
    void invalidate(Vpn vpn, Cycle now) override;
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const override;

    /** PC-cache occupancy (for tests). */
    unsigned cachedEntries() const;

  private:
    struct PcEntry
    {
        VAddr pc = 0;
        Vpn vpn = 0;
        bool valid = false;
        Cycle lastUse = 0;
    };

    PcEntry *find(VAddr pc);
    void insertEntry(VAddr pc, Vpn vpn, Cycle now);
    Cycle grantBase(Cycle earliest);

    std::vector<PcEntry> cache;
    const unsigned pcPorts;
    TlbArray base;
    unsigned pcUsed = 0;
    Cycle baseNextFree = 0;
};

} // namespace hbat::tlb

#endif // HBAT_TLB_PCAX_HH
