/**
 * @file
 * First-order area/latency cost model for the Table 2 designs.
 *
 * The paper's motivation is that a multi-ported TLB's "latency and
 * area increase sharply as the number of ports or entries is
 * increased": in CMOS the area of a multi-ported storage cell grows
 * with the square of the port count [Jol91], and each added port
 * loads every access path [WE88]. The alternatives win because their
 * *storage* stays few-ported, paying instead with small fixed
 * structures (comparators, a crossbar, a tiny upper-level array).
 *
 * This model turns those qualitative statements into first-order
 * numbers so the cost/performance trade-off can be tabulated next to
 * the simulated IPC (bench `cost_table`). Units are relative:
 *
 *  - area is measured in register-bit equivalents (rbe): one
 *    single-ported stored bit = 1, a bit with p ports = (p/2 + 1/2)^2
 *    approximating the quadratic port growth normalized to 1 port;
 *  - latency is in equivalent logic-delay units: a fully-associative
 *    lookup costs log2(entries) + 0.5 * (ports - 1), a crossbar or
 *    hit-signal gate adds fixed increments.
 *
 * The absolute numbers are not calibrated to any process; only the
 * *orderings and scaling trends* are meaningful, which is exactly how
 * the paper uses the argument.
 */

#ifndef HBAT_TLB_COST_MODEL_HH
#define HBAT_TLB_COST_MODEL_HH

#include "tlb/design.hh"

namespace hbat::tlb
{

/** First-order cost estimate for one design. */
struct CostEstimate
{
    double areaRbe = 0.0;       ///< storage+interconnect area (rbe)
    double accessLatency = 0.0; ///< critical-path units (port side)
    double missPathLatency = 0.0; ///< latency to reach the base array
};

/** Cost of a fully-associative array of @p entries with @p ports. */
CostEstimate arrayCost(unsigned entries, unsigned ports,
                       unsigned bits_per_entry = 64);

/** Cost estimate for a Table 2 design (paper parameters). */
CostEstimate designCost(Design d);

} // namespace hbat::tlb

#endif // HBAT_TLB_COST_MODEL_HH
