/**
 * @file
 * Config-driven construction of tlb::DesignParams.
 *
 * A design section (see DESIGN.md §11 and configs/table2.conf) maps
 * config keys onto the DesignParams fields:
 *
 *     [mydesign]
 *     kind = multiported        # multiported | interleaved |
 *                               # multilevel | pretranslation
 *     baseEntries = 128
 *     basePorts = 4
 *     piggybackPorts = 0
 *     banks = 4                 # interleaved only
 *     select = bit              # bit | xor (interleaved only)
 *     piggybackBanks = false    # interleaved only
 *     upperEntries = 16         # multilevel / pretranslation
 *     upperPorts = 4
 *     name = 'My/Design'        # display label (default: section name)
 *     desc = 'one-line description'
 *
 * `kind` is required; everything else inherits the DesignParams
 * defaults. An interleaved design without an explicit `basePorts`
 * gets one port per bank, matching the hard-coded factory. Unknown
 * keys are ConfigKey errors — a typo'd `upperEntires` must not
 * silently fall back to a default.
 *
 * List-valued keys turn a section into a family: designVariants()
 * expands the cross-product of every list axis into one DesignVariant
 * per combination, re-evaluating dependent expressions with the axis
 * value pinned (config::Overlay).
 */

#ifndef HBAT_TLB_DESIGN_CONFIG_HH
#define HBAT_TLB_DESIGN_CONFIG_HH

#include <string>
#include <utility>
#include <vector>

#include "config/config.hh"
#include "tlb/design.hh"

namespace hbat::tlb
{

/** One expanded point of a (possibly list-valued) design section. */
struct DesignVariant
{
    /** Display label: the design name plus one " key=value" per axis. */
    std::string label;

    DesignParams params;

    /** Axis settings that produced this variant, for the JSON echo. */
    std::vector<std::pair<std::string, std::string>> echo;
};

/**
 * Resolve @p sec into a single DesignParams. @p displayName (optional)
 * receives the `name` key or the section name; @p description the
 * `desc` key or "". False with ConfigKey/ConfigExpr diagnostics on
 * schema or evaluation problems; a list-valued key is an error here
 * (use designVariants()). @p overlay pins axis values.
 */
bool designFromConfig(const config::Config &cfg,
                      const config::Section &sec,
                      const config::Overlay *overlay, DesignParams &out,
                      std::string *displayName, std::string *description,
                      verify::Report &report);

/**
 * Expand every list-valued key of @p sec (a sweep axis) into the
 * cross-product of DesignVariants, axes ordered as declared
 * (Config::keysInChain), rightmost fastest. A section with no list
 * keys yields exactly one variant labeled with its plain name.
 */
bool designVariants(const config::Config &cfg,
                    const config::Section &sec,
                    std::vector<DesignVariant> &out,
                    verify::Report &report);

} // namespace hbat::tlb

#endif // HBAT_TLB_DESIGN_CONFIG_HH
