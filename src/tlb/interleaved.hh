/**
 * @file
 * Interleaved (banked) TLB.
 *
 * Covers Table 2's I8, I4, X4 and (with per-bank piggybacking) I4/PB.
 * The bank-selection function maps a virtual page number to one of N
 * single-ported fully-associative banks: bit selection uses the VPN
 * bits immediately above the page offset (Section 4.1), XOR folding
 * randomizes the assignment by XOR-ing groups of those bits [KJLH89].
 * Simultaneous accesses to the same bank conflict and serialize unless
 * piggybacking is enabled and their page numbers match (Section 3.4's
 * I4/PB hybrid).
 */

#ifndef HBAT_TLB_INTERLEAVED_HH
#define HBAT_TLB_INTERLEAVED_HH

#include <vector>

#include "common/bitops.hh"
#include "common/log.hh"
#include "tlb/tlb_array.hh"
#include "tlb/xlate.hh"

namespace hbat::tlb
{

/** Bank selection functions. */
enum class BankSelect : uint8_t
{
    BitSelect,  ///< low log2(banks) bits of the VPN
    XorFold     ///< XOR of the three lowest groups of those bits
};

/**
 * The bank @p vpn maps to under @p select with 2^bankBits banks.
 * Shared between the InterleavedTlb engine and the static footprint
 * analyzer, so lint predictions use the exact hardware function.
 */
inline unsigned
bankSelectOf(BankSelect select, unsigned bankBits, Vpn vpn)
{
    switch (select) {
      case BankSelect::BitSelect:
        return unsigned(vpn & mask(bankBits));
      case BankSelect::XorFold:
        // XOR the three least-significant groups of bankBits bits
        // (Section 4.1 describes exactly three groups for X4).
        return unsigned((vpn ^ (vpn >> bankBits) ^ (vpn >> 2 * bankBits))
                        & mask(bankBits));
    }
    hbat_panic("bad bank select");
}

/** I8/I4/X4/I4PB: N single-ported banks behind an interconnect. */
class InterleavedTlb : public TranslationEngine
{
  public:
    /**
     * @param banks number of banks (power of two)
     * @param total_entries capacity summed over all banks
     * @param piggyback enable per-bank piggyback ports
     */
    InterleavedTlb(vm::PageTable &page_table, unsigned banks,
                   BankSelect select, unsigned total_entries,
                   bool piggyback, uint64_t seed);

    void beginCycle(Cycle now) override;
    Outcome request(const XlateRequest &req, Cycle now) override;
    void fill(Vpn vpn, Cycle now) override;
    void invalidate(Vpn vpn, Cycle now) override;
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const override;

    /** The bank @p vpn maps to (exposed for tests and ablations). */
    unsigned bankOf(Vpn vpn) const;

  private:
    struct BankState
    {
        bool busy = false;
        Vpn vpn = 0;
        bool hit = false;
        Ppn ppn = 0;
    };

    const unsigned bankBits;
    const BankSelect select;
    const bool piggyback;
    std::vector<TlbArray> banks;
    std::vector<BankState> state;
};

} // namespace hbat::tlb

#endif // HBAT_TLB_INTERLEAVED_HH
