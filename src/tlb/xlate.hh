/**
 * @file
 * The translation-engine interface shared by all the paper's designs.
 *
 * Timing contract (Section 4.1 of the paper): TLB access is fully
 * overlapped with data-cache access, so a translation that is serviced
 * in the cycle it is requested adds no visible latency. Latency
 * appears only when
 *
 *   1. no port (or bank) is available this cycle — the engine answers
 *      NoPort and the pipeline retries next cycle (out-of-order cores
 *      hold the request in the load/store queue; in-order cores stall);
 *   2. the access misses in an upper-level structure and must take a
 *      queued trip to the base TLB (the engine answers Hit with a
 *      `ready` cycle in the future); or
 *   3. the access misses the base TLB entirely — the engine answers
 *      Miss, and the pipeline runs the fixed 30-cycle handler once all
 *      earlier-issued instructions have completed, then calls fill()
 *      and retries.
 *
 * Port arbitration is oldest-first: the pipeline must call request()
 * in instruction age order within a cycle, after beginCycle().
 */

#ifndef HBAT_TLB_XLATE_HH
#define HBAT_TLB_XLATE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "obs/stats.hh"
#include "vm/page_table.hh"

namespace hbat::tlb
{

/** A data-translation request presented by the pipeline. */
struct XlateRequest
{
    Vpn vpn = 0;
    bool write = false;
    InstSeq seq = 0;        ///< program-order age (oldest-first ports)
    bool isLoad = false;

    /** Architected integer base register (pretranslation tag). */
    RegIndex baseReg = kNoReg;

    /** Upper 4 bits of a load's 16-bit displacement; 0 otherwise. */
    uint8_t offsetHigh = 0;

    /** PC of the memory instruction (PC-indexed translation tag). */
    VAddr pc = 0;
};

/** The engine's answer for one request. */
struct Outcome
{
    enum class Kind : uint8_t
    {
        Hit,    ///< translated; PPN usable at `ready`
        NoPort, ///< no port/bank available this cycle; retry next cycle
        Miss    ///< missed the base TLB; run the miss handler
    };

    Kind kind = Kind::NoPort;
    Cycle ready = 0;        ///< Hit: cycle the cache access may begin
    bool shielded = false;  ///< no base-TLB port was consumed
    /**
     * The request was satisfied by piggybacking (combining with a
     * same-page access in flight this cycle). Distinct from shielded:
     * an L1-TLB or pretranslation hit is shielded but not a
     * piggyback. Drives the per-PC attribution profile.
     */
    bool piggybacked = false;
    Ppn ppn = 0;            ///< Hit: the translation
    Cycle missAt = 0;       ///< Miss: cycle the miss was detected

    static Outcome
    hit(Cycle ready, Ppn ppn, bool shielded)
    {
        return Outcome{Kind::Hit, ready, shielded, false, ppn, 0};
    }

    static Outcome noPort() { return Outcome{}; }

    static Outcome
    miss(Cycle at)
    {
        return Outcome{Kind::Miss, 0, false, false, 0, at};
    }
};

/** Event counters maintained by every engine. */
struct XlateStats
{
    uint64_t requests = 0;      ///< request() calls, including retries
    uint64_t translations = 0;  ///< requests answered Hit
    uint64_t noPort = 0;        ///< NoPort answers (port/bank conflicts)
    uint64_t shielded = 0;      ///< hits that consumed no base-TLB port
    uint64_t baseAccesses = 0;  ///< base-TLB port grants
    uint64_t baseHits = 0;      ///< base-TLB hits
    uint64_t misses = 0;        ///< base-TLB misses (page walks)
    uint64_t piggybacks = 0;    ///< requests satisfied by piggybacking
    uint64_t statusWrites = 0;  ///< page-status write-throughs
    uint64_t queueCycles = 0;   ///< cycles requests waited for a port
    uint64_t invalidations = 0; ///< consistency invalidations received
    /**
     * Upper-level (L1 TLB / pretranslation cache) probes performed by
     * consistency operations. Multi-level inclusion exists precisely
     * to keep this number low: the L1 need only be probed when the
     * invalidated entry was present in the L2 (Section 3.3).
     */
    uint64_t upperProbes = 0;
};

/**
 * Register every XlateStats counter (plus the derived hit/conflict/
 * shield rates) under @p prefix — the shared half of every engine's
 * registerStats().
 */
void registerStats(obs::StatRegistry &reg, const std::string &prefix,
                   const XlateStats &s);

/** Abstract base for all of Table 2's translation designs. */
class TranslationEngine
{
  public:
    explicit TranslationEngine(vm::PageTable &page_table)
        : pt(page_table)
    {}

    virtual ~TranslationEngine() = default;

    /** Reset per-cycle port/bank state. Call once per cycle. */
    virtual void beginCycle(Cycle now) = 0;

    /** Attempt a translation during cycle @p now (oldest first). */
    virtual Outcome request(const XlateRequest &req, Cycle now) = 0;

    /**
     * The 30-cycle miss handler completed for @p vpn: install the
     * translation (and maintain inclusion/coherence as the design
     * requires).
     */
    virtual void fill(Vpn vpn, Cycle now) = 0;

    /**
     * Hardware TLB-consistency operation [BRG+89]: remove any
     * translation of @p vpn from every level of the design (an OS on
     * another processor changed the mapping). Designs enforcing
     * multi-level inclusion probe their upper level only when the
     * base level actually held the entry.
     */
    virtual void
    invalidate(Vpn vpn, Cycle now)
    {
        (void)vpn;
        (void)now;
        ++stats_.invalidations;
    }

    /**
     * Observe a committed instruction that writes integer register
     * @p dest. When @p propagates (pointer arithmetic), designs that
     * attach translations to register values copy any translation
     * attached to the @p srcs; otherwise they drop translations
     * attached to @p dest. Only pretranslation overrides this.
     */
    virtual void
    noteRegWrite(RegIndex dest, const RegIndex *srcs, int nsrcs,
                 bool propagates)
    {
        (void)dest;
        (void)srcs;
        (void)nsrcs;
        (void)propagates;
    }

    /**
     * True when noteRegWrite() does anything. The pipeline asks once
     * at construction and skips the per-commit register-write feed
     * entirely for the (majority of) designs that ignore it — one
     * virtual call per run instead of one per committed destination.
     */
    virtual bool observesRegWrites() const { return false; }

    /**
     * Next-event query for the pipeline's idle-cycle skipping: the
     * earliest cycle after @p now at which this engine changes state
     * *on its own* (without a request(), fill(), or invalidate() call
     * reaching it). Every current design is purely reactive — queued
     * base-TLB trips are returned to the pipeline as `ready` cycles
     * inside Outcome, and per-cycle port state is rebuilt from scratch
     * by beginCycle() — so the default (never) is correct for all of
     * them. Grant cursors (the cycle the next queued port grant
     * *would* land if a request arrived) must NOT be reported here:
     * they track now+1 during idle spans and would pin the clock.
     */
    virtual Cycle
    nextEventCycle(Cycle now) const
    {
        (void)now;
        return kCycleNever;
    }

    const XlateStats &stats() const { return stats_; }

    /**
     * Register this engine's counters under @p prefix. The base
     * implementation registers the shared XlateStats; each design
     * family overrides to add its own structure-specific stats
     * (bank conflicts, L1 shielding, pretranslation reuse, ...).
     * References captured by the registry stay valid only while the
     * engine lives — snapshot before destroying it.
     */
    virtual void registerStats(obs::StatRegistry &reg,
                               const std::string &prefix) const
    {
        tlb::registerStats(reg, prefix, stats_);
    }

  protected:
    /**
     * Architectural page reference: fetch the PPN and flip the
     * referenced/dirty bits. Returns the page-table result so callers
     * can account status write-through traffic.
     */
    vm::RefResult
    referencePage(Vpn vpn, bool write)
    {
        return pt.reference(vpn, write);
    }

    vm::PageTable &pt;
    XlateStats stats_;
};

} // namespace hbat::tlb

#endif // HBAT_TLB_XLATE_HH
