/**
 * @file
 * The catalogue of analyzed address-translation designs (Table 2).
 *
 * Each enumerator matches one mnemonic row of the paper's Table 2,
 * plus two modern design points evaluated on the same harness: PCAX
 * (PC-indexed translation, after Murthy & Sohi) and Victima
 * (cache-resident TLB victims, after Kanellopoulos et al.). The
 * parameters behind the mnemonics are data, not code: they load
 * from the shipped configs/table2.conf (embedded into the build;
 * override with $HBAT_TABLE2_CONF) through the src/config frontend,
 * and makeEngine() constructs a TranslationEngine from any
 * DesignParams — the enum rows are just the named points. The
 * original hard-coded factory survives as builtinDesignParams(), the
 * reference the equivalence tests pin the config file against.
 */

#ifndef HBAT_TLB_DESIGN_HH
#define HBAT_TLB_DESIGN_HH

#include <memory>
#include <string>
#include <vector>

#include "tlb/interleaved.hh"
#include "tlb/xlate.hh"

namespace hbat::tlb
{

/** Table 2 design mnemonics, plus the modern PCAX/Victima rows. */
enum class Design : uint8_t
{
    T4,     ///< 4-ported TLB, 128 entries
    T2,     ///< 2-ported TLB, 128 entries
    T1,     ///< 1-ported TLB, 128 entries
    I8,     ///< 8-way bit-select interleaved, 16-entry banks
    I4,     ///< 4-way bit-select interleaved, 32-entry banks
    X4,     ///< 4-way XOR-select interleaved, 32-entry banks
    M16,    ///< 4-ported 16-entry L1 TLB over 128-entry L2
    M8,     ///< 4-ported 8-entry L1 TLB over 128-entry L2
    M4,     ///< 4-ported 4-entry L1 TLB over 128-entry L2
    P8,     ///< 8-entry pretranslation cache over 1-ported base TLB
    PB2,    ///< 2-ported TLB with 2 piggyback ports
    PB1,    ///< 1-ported TLB with 3 piggyback ports
    I4PB,   ///< 4-way bit-select interleaved with piggybacked banks
    PCAX,   ///< PC-indexed translation cache over 1-ported base TLB
    Victima, ///< base-TLB victims spilled into the 32KB D-cache
    NumDesigns
};

/**
 * All catalogue designs: Table 2 in the paper's presentation order,
 * then the modern rows.
 */
std::vector<Design> allDesigns();

/** The paper's mnemonic ("T4", "I4/PB", ...). */
std::string designName(Design d);

/** One-line description (Table 2's right column). */
std::string designDescription(Design d);

/** Parse a mnemonic; fatal on unknown names. */
Design parseDesign(const std::string &name);

/**
 * Structural parameters of one Table 2 design — the single source of
 * truth makeEngine() builds from and the design lint checks against.
 */
struct DesignParams
{
    /** Which engine class implements the design. */
    enum class Kind : uint8_t
    {
        MultiPorted,    ///< T4/T2/T1/PB2/PB1
        Interleaved,    ///< I8/I4/X4/I4PB
        MultiLevel,     ///< M16/M8/M4
        Pretranslation, ///< P8
        PcIndexed,      ///< PCAX
        Victima         ///< Victima
    };

    Kind kind = Kind::MultiPorted;

    unsigned baseEntries = 0;       ///< total base TLB capacity
    unsigned basePorts = 0;         ///< true ports into the base TLB
    unsigned piggybackPorts = 0;    ///< extra same-page rider ports

    unsigned banks = 1;             ///< interleaved bank count
    BankSelect select = BankSelect::BitSelect;
    bool piggybackBanks = false;    ///< per-bank piggybacking (I4/PB)

    unsigned upperEntries = 0;      ///< L1 / pretranslation cache (0=none)
    unsigned upperPorts = 0;        ///< ports into the upper level

    bool operator==(const DesignParams &) const = default;
};

/**
 * The paper's parameters for @p d (Table 2 row), resolved from
 * configs/table2.conf on first use; fatal when the catalogue file is
 * broken or missing a row.
 */
DesignParams designParams(Design d);

/**
 * The pre-config hard-coded Table 2 factory. Reference only: the
 * equivalence gate proves designParams() == builtinDesignParams() for
 * every design, so the config path is byte-for-byte the paper's.
 */
DesignParams builtinDesignParams(Design d);

/** Compact one-line rendering of @p p ("multiported ports=4 ..."). */
std::string paramsSummary(const DesignParams &p);

/// @name Geometry queries (static footprint analysis, design lint)
/// @{

/**
 * Spill capacity of the Victima design in blocks (= translations):
 * one victim per 32-byte block of Table 1's 32 KB D-cache. Must match
 * the cache::CacheConfig defaults the VictimaTlb engine instantiates.
 */
inline constexpr unsigned kVictimaSpillBlocks = 32 * 1024 / 32;

/**
 * TLB reach of @p p in pages: how many distinct pages the design can
 * map simultaneously. All Table 2 designs keep their full capacity in
 * the base TLB (the multi-level L1s and the pretranslation cache are
 * strict subsets of it), so reach is the base entry count. Victima's
 * spill store is exclusive of the base TLB, so every D-cache block
 * extends the reach by one translation.
 */
inline unsigned
reachPages(const DesignParams &p)
{
    if (p.kind == DesignParams::Kind::Victima)
        return p.baseEntries + kVictimaSpillBlocks;
    return p.baseEntries;
}

/** log2(banks) when @p p is interleaved with >1 bank, else 0. */
inline unsigned
bankBitsOf(const DesignParams &p)
{
    if (p.kind != DesignParams::Kind::Interleaved || p.banks <= 1)
        return 0;
    return unsigned(floorLog2(p.banks));
}

/**
 * The bank a reference to virtual page @p vpn contends for under
 * @p p's interconnect; 0 when the design is not banked. Evaluates the
 * same bankSelectOf() the InterleavedTlb engine uses.
 */
inline unsigned
bankOfPage(const DesignParams &p, Vpn vpn)
{
    const unsigned bits = bankBitsOf(p);
    return bits == 0 ? 0 : bankSelectOf(p.select, bits, vpn);
}

/// @}

/** Construct the engine described by @p p. */
std::unique_ptr<TranslationEngine>
makeEngine(const DesignParams &p, vm::PageTable &page_table,
           uint64_t seed = 12345);

/** Construct the engine for @p d with the paper's parameters. */
std::unique_ptr<TranslationEngine>
makeEngine(Design d, vm::PageTable &page_table, uint64_t seed = 12345);

} // namespace hbat::tlb

#endif // HBAT_TLB_DESIGN_HH
