#include "tlb/tlb_array.hh"

#include <algorithm>

#include "common/log.hh"

namespace hbat::tlb
{

TlbArray::TlbArray(unsigned num_entries, Replacement repl, uint64_t seed)
    : entries(num_entries), repl(repl), rng(seed)
{
    hbat_assert(num_entries > 0, "TLB must have at least one entry");
}

bool
TlbArray::lookup(Vpn vpn, Cycle now)
{
    auto it = index.find(vpn);
    if (it == index.end())
        return false;
    entries[it->second].lastUse = now;
    return true;
}

bool
TlbArray::contains(Vpn vpn) const
{
    return index.find(vpn) != index.end();
}

int
TlbArray::victim(Cycle now)
{
    // Prefer an invalid slot.
    for (size_t i = 0; i < entries.size(); ++i)
        if (!entries[i].valid)
            return int(i);

    if (repl == Replacement::Random)
        return int(rng.below(entries.size()));

    // True LRU.
    int lru = 0;
    Cycle best = now + 1;
    for (size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].lastUse < best) {
            best = entries[i].lastUse;
            lru = int(i);
        }
    }
    return lru;
}

std::optional<Vpn>
TlbArray::insert(Vpn vpn, Cycle now)
{
    auto it = index.find(vpn);
    if (it != index.end()) {
        entries[it->second].lastUse = now;
        return std::nullopt;
    }

    const int slot = victim(now);
    std::optional<Vpn> evicted;
    if (entries[slot].valid) {
        evicted = entries[slot].vpn;
        index.erase(entries[slot].vpn);
    }
    entries[slot] = Entry{vpn, true, now};
    index.emplace(vpn, slot);
    return evicted;
}

bool
TlbArray::invalidate(Vpn vpn)
{
    auto it = index.find(vpn);
    if (it == index.end())
        return false;
    entries[it->second].valid = false;
    index.erase(it);
    return true;
}

void
TlbArray::flush()
{
    for (Entry &e : entries)
        e.valid = false;
    index.clear();
}

std::vector<Vpn>
TlbArray::residentsByAge() const
{
    std::vector<std::pair<Cycle, Vpn>> byUse;
    for (const Entry &e : entries)
        if (e.valid)
            byUse.emplace_back(e.lastUse, e.vpn);
    std::sort(byUse.begin(), byUse.end());
    std::vector<Vpn> out;
    out.reserve(byUse.size());
    for (const auto &[use, vpn] : byUse)
        out.push_back(vpn);
    return out;
}

} // namespace hbat::tlb
