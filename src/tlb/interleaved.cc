#include "tlb/interleaved.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace hbat::tlb
{

InterleavedTlb::InterleavedTlb(vm::PageTable &page_table, unsigned nbanks,
                               BankSelect select, unsigned total_entries,
                               bool piggyback, uint64_t seed)
    : TranslationEngine(page_table), bankBits(exactLog2(nbanks)),
      select(select), piggyback(piggyback)
{
    hbat_assert(isPowerOfTwo(nbanks), "bank count must be a power of 2");
    hbat_assert(total_entries % nbanks == 0,
                "entries must divide evenly across banks");
    banks.reserve(nbanks);
    for (unsigned b = 0; b < nbanks; ++b) {
        banks.emplace_back(total_entries / nbanks, Replacement::Random,
                           seed + b);
    }
    state.resize(nbanks);
}

unsigned
InterleavedTlb::bankOf(Vpn vpn) const
{
    return bankSelectOf(select, bankBits, vpn);
}

void
InterleavedTlb::beginCycle(Cycle now)
{
    (void)now;
    for (BankState &s : state)
        s.busy = false;
}

Outcome
InterleavedTlb::request(const XlateRequest &req, Cycle now)
{
    ++stats_.requests;
    const unsigned bank = bankOf(req.vpn);
    BankState &s = state[bank];

    if (!s.busy) {
        s.busy = true;
        s.vpn = req.vpn;
        ++stats_.baseAccesses;
        if (banks[bank].lookup(req.vpn, now)) {
            ++stats_.baseHits;
            ++stats_.translations;
            const vm::RefResult rr = referencePage(req.vpn, req.write);
            s.hit = true;
            s.ppn = rr.ppn;
            return Outcome::hit(now, rr.ppn, false);
        }
        ++stats_.misses;
        s.hit = false;
        return Outcome::miss(now);
    }

    if (piggyback && s.vpn == req.vpn) {
        ++stats_.piggybacks;
        if (s.hit) {
            ++stats_.translations;
            ++stats_.shielded;
            const vm::RefResult rr = referencePage(req.vpn, req.write);
            Outcome out = Outcome::hit(now, rr.ppn, true);
            out.piggybacked = true;
            return out;
        }
        return Outcome::miss(now);
    }

    // Bank conflict: serialize.
    ++stats_.noPort;
    ++stats_.queueCycles;
    return Outcome::noPort();
}

void
InterleavedTlb::fill(Vpn vpn, Cycle now)
{
    banks[bankOf(vpn)].insert(vpn, now);
}

void
InterleavedTlb::invalidate(Vpn vpn, Cycle now)
{
    (void)now;
    ++stats_.invalidations;
    banks[bankOf(vpn)].invalidate(vpn);
}

void
InterleavedTlb::registerStats(obs::StatRegistry &reg,
                              const std::string &prefix) const
{
    TranslationEngine::registerStats(reg, prefix);
    reg.formula(prefix + ".banks", "number of single-ported banks",
                [this] { return double(banks.size()); });
    reg.formula(prefix + ".piggyback", "per-bank piggyback ports enabled",
                [this] { return piggyback ? 1.0 : 0.0; });
    reg.formula(prefix + ".bank_occupancy",
                "valid entries summed over all banks", [this] {
                    double n = 0;
                    for (const TlbArray &b : banks)
                        n += b.occupancy();
                    return n;
                });
}

} // namespace hbat::tlb
