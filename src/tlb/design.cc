#include "tlb/design.hh"

#include <cstdlib>

#include "common/log.hh"
#include "config/config.hh"
#include "tlb/design_config.hh"
#include "tlb/interleaved.hh"
#include "tlb/multilevel.hh"
#include "tlb/multiported.hh"
#include "tlb/pcax.hh"
#include "tlb/pretranslation.hh"
#include "tlb/victima.hh"

namespace hbat::tlb
{

namespace
{

/// Base TLB capacity shared by every Table 2 design.
constexpr unsigned kBaseEntries = 128;

/// L1 TLB / pretranslation-cache access ports.
constexpr unsigned kUpperPorts = 4;

/// configs/table2.conf, embedded at build time (scripts/embed_file.cmake).
constexpr const char kTable2Text[] =
#include "table2_conf.inc"
    ;

/** Section name of @p d: the mnemonic with '/' stripped ("I4PB"). */
std::string
sectionNameOf(Design d)
{
    std::string s;
    for (char c : designName(d))
        if (c != '/')
            s += c;
    return s;
}

/** The Table 2 rows, resolved from the shipped config once. */
struct Catalogue
{
    DesignParams params[size_t(Design::NumDesigns)];
    std::string descriptions[size_t(Design::NumDesigns)];

    Catalogue()
    {
        verify::Report report;
        config::Config cfg;
        bool ok;
        if (const char *path = std::getenv("HBAT_TABLE2_CONF")) {
            ok = config::Config::parseFile(path, cfg, report);
        } else {
            ok = config::Config::parseString(
                kTable2Text, "configs/table2.conf", cfg, report);
        }
        for (Design d : allDesigns()) {
            const std::string sec = sectionNameOf(d);
            const config::Section *s = cfg.section(sec);
            if (!ok || s == nullptr) {
                report.add(verify::Diag::ConfigKey,
                           verify::Severity::Error, 0,
                           detail::concat(cfg.origin(),
                                          ": missing design section [",
                                          sec, "]"));
                break;
            }
            std::string display;
            ok = designFromConfig(cfg, *s, nullptr,
                                  params[size_t(d)], &display,
                                  &descriptions[size_t(d)], report);
            if (ok && display != designName(d)) {
                report.add(verify::Diag::ConfigKey,
                           verify::Severity::Error, 0,
                           detail::concat(cfg.origin(), ": [", sec,
                                          "] display name '", display,
                                          "' is not '", designName(d),
                                          "'"));
                ok = false;
            }
            if (!ok)
                break;
        }
        if (!ok) {
            std::string msg = "broken Table 2 design catalogue:";
            for (const verify::Diagnostic &diag : report.diags)
                msg += "\n  " + diag.str();
            hbat_fatal(msg);
        }
    }
};

const Catalogue &
catalogue()
{
    static const Catalogue c;
    return c;
}

} // namespace

std::vector<Design>
allDesigns()
{
    using enum Design;
    return {T4, T2, T1, I8, I4, X4, M16, M8, M4, P8, PB2, PB1, I4PB,
            PCAX, Victima};
}

std::string
designName(Design d)
{
    switch (d) {
      case Design::T4: return "T4";
      case Design::T2: return "T2";
      case Design::T1: return "T1";
      case Design::I8: return "I8";
      case Design::I4: return "I4";
      case Design::X4: return "X4";
      case Design::M16: return "M16";
      case Design::M8: return "M8";
      case Design::M4: return "M4";
      case Design::P8: return "P8";
      case Design::PB2: return "PB2";
      case Design::PB1: return "PB1";
      case Design::I4PB: return "I4/PB";
      case Design::PCAX: return "PCAX";
      case Design::Victima: return "Victima";
      default: hbat_panic("bad design");
    }
}

std::string
designDescription(Design d)
{
    if (d >= Design::NumDesigns)
        hbat_panic("bad design");
    return catalogue().descriptions[size_t(d)];
}

Design
parseDesign(const std::string &name)
{
    for (Design d : allDesigns())
        if (designName(d) == name)
            return d;
    hbat_fatal("unknown design '", name, "'");
}

DesignParams
designParams(Design d)
{
    if (d >= Design::NumDesigns)
        hbat_panic("bad design");
    return catalogue().params[size_t(d)];
}

DesignParams
builtinDesignParams(Design d)
{
    using Kind = DesignParams::Kind;
    DesignParams p;
    p.baseEntries = kBaseEntries;

    auto ported = [&](unsigned ports, unsigned piggy) {
        p.kind = Kind::MultiPorted;
        p.basePorts = ports;
        p.piggybackPorts = piggy;
    };
    auto banked = [&](unsigned banks, BankSelect sel, bool piggy) {
        p.kind = Kind::Interleaved;
        p.banks = banks;
        p.select = sel;
        p.piggybackBanks = piggy;
        p.basePorts = banks;    // one port per bank
    };

    switch (d) {
      case Design::T4: ported(4, 0); break;
      case Design::T2: ported(2, 0); break;
      case Design::T1: ported(1, 0); break;
      case Design::PB2: ported(2, 2); break;
      case Design::PB1: ported(1, 3); break;
      case Design::I8: banked(8, BankSelect::BitSelect, false); break;
      case Design::I4: banked(4, BankSelect::BitSelect, false); break;
      case Design::X4: banked(4, BankSelect::XorFold, false); break;
      case Design::I4PB: banked(4, BankSelect::BitSelect, true); break;
      case Design::M16:
      case Design::M8:
      case Design::M4:
        p.kind = Kind::MultiLevel;
        p.basePorts = 1;
        p.upperEntries = d == Design::M16 ? 16
                       : d == Design::M8 ? 8 : 4;
        p.upperPorts = kUpperPorts;
        break;
      case Design::P8:
        p.kind = Kind::Pretranslation;
        p.basePorts = 1;
        p.upperEntries = 8;
        p.upperPorts = kUpperPorts;
        break;
      case Design::PCAX:
        p.kind = Kind::PcIndexed;
        p.basePorts = 1;
        p.upperEntries = 32;
        p.upperPorts = kUpperPorts;
        break;
      case Design::Victima:
        p.kind = Kind::Victima;
        p.basePorts = 4;
        break;
      default:
        hbat_panic("bad design");
    }
    return p;
}

std::string
paramsSummary(const DesignParams &p)
{
    using Kind = DesignParams::Kind;
    std::string s;
    switch (p.kind) {
      case Kind::MultiPorted:
        s = detail::concat("multiported entries=", p.baseEntries,
                           " ports=", p.basePorts);
        if (p.piggybackPorts > 0)
            s += detail::concat(" piggyback=", p.piggybackPorts);
        break;
      case Kind::Interleaved:
        s = detail::concat("interleaved entries=", p.baseEntries,
                           " banks=", p.banks, " select=",
                           p.select == BankSelect::BitSelect ? "bit"
                                                             : "xor");
        if (p.piggybackBanks)
            s += " piggybackBanks";
        break;
      case Kind::MultiLevel:
        s = detail::concat("multilevel l1Entries=", p.upperEntries,
                           " l1Ports=", p.upperPorts, " l2Entries=",
                           p.baseEntries, " l2Ports=", p.basePorts);
        break;
      case Kind::Pretranslation:
        s = detail::concat("pretranslation cacheEntries=",
                           p.upperEntries, " baseEntries=",
                           p.baseEntries, " basePorts=", p.basePorts);
        break;
      case Kind::PcIndexed:
        s = detail::concat("pcax pcEntries=", p.upperEntries,
                           " pcPorts=", p.upperPorts, " baseEntries=",
                           p.baseEntries, " basePorts=", p.basePorts);
        break;
      case Kind::Victima:
        s = detail::concat("victima entries=", p.baseEntries,
                           " ports=", p.basePorts,
                           " spillBlocks=", kVictimaSpillBlocks);
        break;
    }
    return s;
}

std::unique_ptr<TranslationEngine>
makeEngine(const DesignParams &p, vm::PageTable &page_table,
           uint64_t seed)
{
    switch (p.kind) {
      case DesignParams::Kind::MultiPorted:
        return std::make_unique<MultiPortedTlb>(
            page_table, p.basePorts, p.piggybackPorts, p.baseEntries,
            seed);
      case DesignParams::Kind::Interleaved:
        return std::make_unique<InterleavedTlb>(
            page_table, p.banks, p.select, p.baseEntries,
            p.piggybackBanks, seed);
      case DesignParams::Kind::MultiLevel:
        return std::make_unique<MultiLevelTlb>(
            page_table, p.upperEntries, p.upperPorts, p.baseEntries,
            seed);
      case DesignParams::Kind::Pretranslation:
        return std::make_unique<PretranslationTlb>(
            page_table, p.upperEntries, p.baseEntries, seed);
      case DesignParams::Kind::PcIndexed:
        return std::make_unique<PcaxTlb>(
            page_table, p.upperEntries, p.upperPorts, p.baseEntries,
            seed);
      case DesignParams::Kind::Victima:
        return std::make_unique<VictimaTlb>(
            page_table, p.baseEntries, p.basePorts, seed);
    }
    hbat_panic("bad design kind");
}

std::unique_ptr<TranslationEngine>
makeEngine(Design d, vm::PageTable &page_table, uint64_t seed)
{
    return makeEngine(designParams(d), page_table, seed);
}

} // namespace hbat::tlb
