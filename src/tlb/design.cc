#include "tlb/design.hh"

#include "common/log.hh"
#include "tlb/interleaved.hh"
#include "tlb/multilevel.hh"
#include "tlb/multiported.hh"
#include "tlb/pretranslation.hh"

namespace hbat::tlb
{

namespace
{

/// Base TLB capacity shared by every Table 2 design.
constexpr unsigned kBaseEntries = 128;

/// L1 TLB / pretranslation-cache access ports.
constexpr unsigned kUpperPorts = 4;

} // namespace

std::vector<Design>
allDesigns()
{
    using enum Design;
    return {T4, T2, T1, I8, I4, X4, M16, M8, M4, P8, PB2, PB1, I4PB};
}

std::string
designName(Design d)
{
    switch (d) {
      case Design::T4: return "T4";
      case Design::T2: return "T2";
      case Design::T1: return "T1";
      case Design::I8: return "I8";
      case Design::I4: return "I4";
      case Design::X4: return "X4";
      case Design::M16: return "M16";
      case Design::M8: return "M8";
      case Design::M4: return "M4";
      case Design::P8: return "P8";
      case Design::PB2: return "PB2";
      case Design::PB1: return "PB1";
      case Design::I4PB: return "I4/PB";
      default: hbat_panic("bad design");
    }
}

std::string
designDescription(Design d)
{
    switch (d) {
      case Design::T4:
        return "4-ported TLB, 128 entries, fully-associative, random";
      case Design::T2:
        return "2-ported TLB, 128 entries, fully-associative, random";
      case Design::T1:
        return "1-ported TLB, 128 entries, fully-associative, random";
      case Design::I8:
        return "8-way bit-select interleaved TLB, 128 entries "
               "(16-entry banks)";
      case Design::I4:
        return "4-way bit-select interleaved TLB, 128 entries "
               "(32-entry banks)";
      case Design::X4:
        return "4-way XOR-select interleaved TLB, 128 entries "
               "(32-entry banks)";
      case Design::M16:
        return "4-ported 16-entry L1 TLB (LRU) over 128-entry L2";
      case Design::M8:
        return "4-ported 8-entry L1 TLB (LRU) over 128-entry L2";
      case Design::M4:
        return "4-ported 4-entry L1 TLB (LRU) over 128-entry L2";
      case Design::P8:
        return "4-ported 8-entry pretranslation cache (LRU) over "
               "1-ported 128-entry base TLB";
      case Design::PB2:
        return "2-ported TLB with 2 piggyback ports, 128 entries";
      case Design::PB1:
        return "1-ported TLB with 3 piggyback ports, 128 entries";
      case Design::I4PB:
        return "4-way bit-select interleaved TLB with piggybacked "
               "banks, 128 entries";
      default: hbat_panic("bad design");
    }
}

Design
parseDesign(const std::string &name)
{
    for (Design d : allDesigns())
        if (designName(d) == name)
            return d;
    hbat_fatal("unknown design '", name, "'");
}

DesignParams
designParams(Design d)
{
    using Kind = DesignParams::Kind;
    DesignParams p;
    p.baseEntries = kBaseEntries;

    auto ported = [&](unsigned ports, unsigned piggy) {
        p.kind = Kind::MultiPorted;
        p.basePorts = ports;
        p.piggybackPorts = piggy;
    };
    auto banked = [&](unsigned banks, BankSelect sel, bool piggy) {
        p.kind = Kind::Interleaved;
        p.banks = banks;
        p.select = sel;
        p.piggybackBanks = piggy;
        p.basePorts = banks;    // one port per bank
    };

    switch (d) {
      case Design::T4: ported(4, 0); break;
      case Design::T2: ported(2, 0); break;
      case Design::T1: ported(1, 0); break;
      case Design::PB2: ported(2, 2); break;
      case Design::PB1: ported(1, 3); break;
      case Design::I8: banked(8, BankSelect::BitSelect, false); break;
      case Design::I4: banked(4, BankSelect::BitSelect, false); break;
      case Design::X4: banked(4, BankSelect::XorFold, false); break;
      case Design::I4PB: banked(4, BankSelect::BitSelect, true); break;
      case Design::M16:
      case Design::M8:
      case Design::M4:
        p.kind = Kind::MultiLevel;
        p.basePorts = 1;
        p.upperEntries = d == Design::M16 ? 16
                       : d == Design::M8 ? 8 : 4;
        p.upperPorts = kUpperPorts;
        break;
      case Design::P8:
        p.kind = Kind::Pretranslation;
        p.basePorts = 1;
        p.upperEntries = 8;
        p.upperPorts = kUpperPorts;
        break;
      default:
        hbat_panic("bad design");
    }
    return p;
}

std::unique_ptr<TranslationEngine>
makeEngine(Design d, vm::PageTable &page_table, uint64_t seed)
{
    const DesignParams p = designParams(d);
    switch (p.kind) {
      case DesignParams::Kind::MultiPorted:
        return std::make_unique<MultiPortedTlb>(
            page_table, p.basePorts, p.piggybackPorts, p.baseEntries,
            seed);
      case DesignParams::Kind::Interleaved:
        return std::make_unique<InterleavedTlb>(
            page_table, p.banks, p.select, p.baseEntries,
            p.piggybackBanks, seed);
      case DesignParams::Kind::MultiLevel:
        return std::make_unique<MultiLevelTlb>(
            page_table, p.upperEntries, p.upperPorts, p.baseEntries,
            seed);
      case DesignParams::Kind::Pretranslation:
        return std::make_unique<PretranslationTlb>(
            page_table, p.upperEntries, p.baseEntries, seed);
    }
    hbat_panic("bad design kind");
}

} // namespace hbat::tlb
