#include "tlb/xlate.hh"

#include "common/stats.hh"

namespace hbat::tlb
{

void
registerStats(obs::StatRegistry &reg, const std::string &prefix,
              const XlateStats &s)
{
    reg.scalar(prefix + ".requests",
               "translation requests presented (including retries)",
               s.requests);
    reg.scalar(prefix + ".translations", "requests answered Hit",
               s.translations);
    reg.scalar(prefix + ".no_port",
               "NoPort answers (port/bank conflicts)", s.noPort);
    reg.scalar(prefix + ".shielded",
               "hits that consumed no base-TLB port", s.shielded);
    reg.scalar(prefix + ".base_accesses", "base-TLB port grants",
               s.baseAccesses);
    reg.scalar(prefix + ".base_hits", "base-TLB hits", s.baseHits);
    reg.scalar(prefix + ".misses", "base-TLB misses (page walks)",
               s.misses);
    reg.scalar(prefix + ".piggybacks",
               "requests satisfied by piggybacking", s.piggybacks);
    reg.scalar(prefix + ".status_writes",
               "page-status write-throughs", s.statusWrites);
    reg.scalar(prefix + ".queue_cycles",
               "cycles requests waited for a port", s.queueCycles);
    reg.scalar(prefix + ".invalidations",
               "consistency invalidations received", s.invalidations);
    reg.scalar(prefix + ".upper_probes",
               "upper-level probes from consistency operations",
               s.upperProbes);
    reg.formula(prefix + ".conflict_rate",
                "NoPort answers per request",
                [&s] { return ratio(s.noPort, s.requests); });
    reg.formula(prefix + ".shield_rate",
                "fraction of requests absorbed above the base TLB "
                "(the paper's f_shielded)",
                [&s] { return ratio(s.shielded, s.requests); });
    reg.formula(prefix + ".base_miss_rate",
                "base-TLB miss rate (the paper's M_TLB)",
                [&s] { return ratio(s.misses, s.baseAccesses); });
}

} // namespace hbat::tlb
