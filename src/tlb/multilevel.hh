/**
 * @file
 * Multi-level TLB (Section 3.3; designs M16/M8/M4).
 *
 * A small multi-ported L1 TLB with LRU replacement shields a large
 * single-ported L2 TLB with random replacement. L1 hits cost nothing
 * visible; L1 misses are sent to the L2 in the following cycle, where
 * they may queue behind other L2 work, so the minimum L1-miss penalty
 * is two cycles (Section 4.1). Multi-level inclusion is enforced: L2
 * fills also load the L1, and an entry evicted from the L2 is
 * invalidated in the L1. Page-status changes detected on L1 hits are
 * written through to the L2, consuming an L2 port slot.
 */

#ifndef HBAT_TLB_MULTILEVEL_HH
#define HBAT_TLB_MULTILEVEL_HH

#include "tlb/tlb_array.hh"
#include "tlb/xlate.hh"

namespace hbat::tlb
{

/** M16/M8/M4: L1 TLB (LRU) over a single-ported L2 TLB (random). */
class MultiLevelTlb : public TranslationEngine
{
  public:
    /**
     * @param l1_entries upper-level capacity (4/8/16 in the paper)
     * @param l1_ports simultaneous L1 hits per cycle (4 in the paper)
     * @param l2_entries base capacity (128 in the paper)
     */
    MultiLevelTlb(vm::PageTable &page_table, unsigned l1_entries,
                  unsigned l1_ports, unsigned l2_entries, uint64_t seed);

    void beginCycle(Cycle now) override;
    Outcome request(const XlateRequest &req, Cycle now) override;
    void fill(Vpn vpn, Cycle now) override;
    void invalidate(Vpn vpn, Cycle now) override;
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const override;

  private:
    /** Allocate the next L2 port slot at or after @p earliest. */
    Cycle grantL2(Cycle earliest);

    const unsigned l1Ports;
    TlbArray l1;
    TlbArray l2;
    unsigned l1Used = 0;
    Cycle l2NextFree = 0;
};

} // namespace hbat::tlb

#endif // HBAT_TLB_MULTILEVEL_HH
