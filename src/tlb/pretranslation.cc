#include "tlb/pretranslation.hh"

#include <algorithm>

namespace hbat::tlb
{

PretranslationTlb::PretranslationTlb(vm::PageTable &page_table,
                                     unsigned pt_entries,
                                     unsigned base_entries, uint64_t seed)
    : TranslationEngine(page_table), cache(pt_entries),
      base(base_entries, Replacement::Random, seed)
{}

void
PretranslationTlb::beginCycle(Cycle now)
{
    lastSeen = now;
}

PretranslationTlb::PtEntry *
PretranslationTlb::find(uint16_t tag)
{
    for (PtEntry &e : cache)
        if (e.valid && e.tag == tag)
            return &e;
    return nullptr;
}

void
PretranslationTlb::insertEntry(uint16_t tag, Vpn vpn, Cycle now)
{
    if (PtEntry *e = find(tag)) {
        e->vpn = vpn;
        e->lastUse = now;
        return;
    }
    PtEntry *victim = &cache[0];
    for (PtEntry &e : cache) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    *victim = PtEntry{tag, vpn, true, now};
}

Cycle
PretranslationTlb::grantBase(Cycle earliest)
{
    const Cycle grant = std::max(earliest, baseNextFree);
    baseNextFree = grant + 1;
    return grant;
}

Outcome
PretranslationTlb::request(const XlateRequest &req, Cycle now)
{
    ++stats_.requests;

    const uint16_t tag =
        tagOf(req.baseReg, req.isLoad ? req.offsetHigh : 0);

    if (PtEntry *e = find(tag); e && e->vpn == req.vpn) {
        // Attached translation matches the accessed page: no base-TLB
        // traffic and no visible latency.
        e->lastUse = now;
        ++stats_.translations;
        ++stats_.shielded;
        const vm::RefResult rr = referencePage(req.vpn, req.write);
        if (rr.statusChanged) {
            // Status changes write through to the base TLB.
            grantBase(now);
            ++stats_.statusWrites;
        }
        return Outcome::hit(now, rr.ppn, true);
    }

    // Miss: detected the cycle after address generation; then a
    // (possibly queued) access to the single-ported base TLB.
    const Cycle grant = grantBase(now + 1);
    stats_.queueCycles += grant - (now + 1);
    ++stats_.baseAccesses;

    if (base.lookup(req.vpn, grant)) {
        ++stats_.baseHits;
        ++stats_.translations;
        const vm::RefResult rr = referencePage(req.vpn, req.write);
        // Attach the translation to the base register value. The
        // base access overlaps the (restarted) cache access, so the
        // cost is "at least one more cycle" (Section 4.1), i.e. the
        // access may proceed in the grant cycle itself.
        insertEntry(tag, req.vpn, now);
        return Outcome::hit(grant, rr.ppn, false);
    }

    ++stats_.misses;
    return Outcome::miss(grant);
}

void
PretranslationTlb::fill(Vpn vpn, Cycle now)
{
    if (base.insert(vpn, now)) {
        // A base-TLB entry was replaced: flush the pretranslation
        // cache to keep it coherent (Section 4.1).
        for (PtEntry &e : cache)
            e.valid = false;
    }
}

void
PretranslationTlb::invalidate(Vpn vpn, Cycle now)
{
    (void)now;
    ++stats_.invalidations;
    base.invalidate(vpn);
    // Any attachment may alias the changed mapping: flush, exactly
    // as on replacement (the cache is not searchable by VPN).
    for (PtEntry &e : cache) {
        if (e.valid) {
            ++stats_.upperProbes;
            if (e.vpn == vpn)
                e.valid = false;
        }
    }
}

void
PretranslationTlb::noteRegWrite(RegIndex dest, const RegIndex *srcs,
                                int nsrcs, bool propagates)
{
    // Gather attachments to propagate before killing the destination,
    // so self-updates (addi r5, r5, 8) survive as an LRU refresh.
    struct Copy
    {
        uint8_t offsetHigh;
        Vpn vpn;
    };
    Copy copies[8];
    int ncopies = 0;

    if (propagates) {
        for (const PtEntry &e : cache) {
            if (!e.valid)
                continue;
            const RegIndex reg = RegIndex(e.tag >> 4);
            for (int s = 0; s < nsrcs; ++s) {
                if (srcs[s] == reg &&
                    ncopies < int(sizeof(copies) / sizeof(copies[0]))) {
                    copies[ncopies++] =
                        Copy{uint8_t(e.tag & 0xf), e.vpn};
                    break;
                }
            }
        }
    }

    // The destination holds a new value: drop its old attachments.
    for (PtEntry &e : cache)
        if (e.valid && RegIndex(e.tag >> 4) == dest)
            e.valid = false;

    for (int i = 0; i < ncopies; ++i) {
        insertEntry(tagOf(dest, copies[i].offsetHigh), copies[i].vpn,
                    lastSeen);
    }
}

unsigned
PretranslationTlb::cachedEntries() const
{
    unsigned n = 0;
    for (const PtEntry &e : cache)
        n += e.valid;
    return n;
}

void
PretranslationTlb::registerStats(obs::StatRegistry &reg,
                                 const std::string &prefix) const
{
    TranslationEngine::registerStats(reg, prefix);
    reg.formula(prefix + ".pt_entries", "pretranslation cache capacity",
                [this] { return double(cache.size()); });
    reg.formula(prefix + ".pt_occupancy",
                "valid pretranslation attachments at end of run",
                [this] { return double(cachedEntries()); });
    reg.formula(prefix + ".pt_reuse_rate",
                "requests satisfied by an attached translation, per "
                "request",
                [this] {
                    return stats_.requests == 0
                               ? 0.0
                               : double(stats_.shielded) /
                                     double(stats_.requests);
                });
}

} // namespace hbat::tlb
