/**
 * @file
 * Ghostscript analogue: span rasterization into a large framebuffer.
 *
 * Pseudo-random filled rectangles are painted into an 8 MB framebuffer
 * (1 KB row pitch, so a 32-row fill sweeps eight 4 KB pages). Spans
 * blend with the existing pixels: a batch of independent word loads,
 * raster-op arithmetic, then the stores — the load/compute/store
 * structure a rasterizer's inner loop compiles to. The footprint far
 * exceeds TLB reach, giving the large-data-set behaviour the paper
 * reports for Ghostscript (~10 MB).
 */

#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace hbat::workloads
{

using kasm::VLabel;
using kasm::VReg;

void
buildGhostscript(kasm::ProgramBuilder &pb, double scale)
{
    auto &b = pb.code();

    constexpr uint32_t pitch = 1024;            // bytes per row
    constexpr uint32_t rows = 8192;             // 8 MB framebuffer
    const uint32_t num_rects = uint32_t(120 * scale) + 1;
    constexpr uint32_t span_words = 32;         // 128-byte spans
    constexpr uint32_t rect_rows = 32;

    const VAddr fb = pb.space(uint64_t(pitch) * rows, 64);

    VReg rect = b.vint(), rlim = b.vint(), seed = b.vint();
    VReg row = b.vint(), rowcnt = b.vint(), rowlim = b.vint();
    VReg p = b.vint(), color = b.vint(), fbbase = b.vint();
    VReg dither = b.vint(), ptex = b.vint();
    b.li(dither, 0x55);
    {
        // 256-byte halftone tile (hot in cache).
        Rng texrng(0x7e87e8);
        std::vector<uint8_t> tex(256);
        for (auto &t : tex)
            t = uint8_t(texrng.below(64));
        b.li(ptex, uint32_t(pb.bytes(tex)));
    }

    b.li(rect, 0);
    b.li(rlim, num_rects);
    b.li(seed, 0x95c21771u);
    b.li(fbbase, uint32_t(fb));
    b.li(rowlim, rect_rows);

    VLabel rect_loop = b.label(), rect_done = b.label();
    VLabel row_loop = b.label(), row_done = b.label();

    b.bind(rect_loop);
    b.bge(rect, rlim, rect_done);

    // Pseudo-random rectangle origin and color.
    {
        VReg k = b.vint(), x = b.vint();
        b.li(k, 1103515245u);
        b.mul(seed, seed, k);
        b.addi(seed, seed, 12345);
        b.srli(row, seed, 10);
        {
            VReg m = b.vint();
            b.li(m, rows - rect_rows - 1);
            b.remu(row, row, m);
        }
        b.srli(x, seed, 3);
        b.andi(x, x, 0x1fc);            // word-aligned x within the row
        // p = fb + row*pitch + x
        b.slli(p, row, 10);
        b.add(p, p, fbbase);
        b.add(p, p, x);
        b.srli(color, seed, 16);
    }

    b.li(rowcnt, 0);
    b.bind(row_loop);
    b.bge(rowcnt, rowlim, row_done);

    // Paint one span: batches of 8 words are loaded, blended with two
    // raster ops each, and stored — the loads are independent, so
    // the misses of a fresh row overlap.
    for (uint32_t base = 0; base < span_words; base += 8) {
        VReg px[8];
        for (int u = 0; u < 8; ++u) {
            px[u] = b.vint();
            b.lw(px[u], p, int32_t((base + u) * 4));
        }
        for (int u = 0; u < 8; ++u) {
            // Raster op: fetch the halftone texture word, blend, and
            // mix the running dither state into each word (the
            // dither chain is serial across pixels, like error
            // diffusion).
            VReg t = b.vint(), tex = b.vint();
            b.andi(t, px[u], 0xfc);
            b.add(t, t, ptex);
            b.lw(tex, t, 0);
            b.srli(t, px[u], 1);
            b.xor_(px[u], px[u], t);
            b.add(px[u], px[u], tex);
            b.add(px[u], px[u], color);
            b.srli(t, px[u], 3);
            b.add(dither, dither, t);
            b.srli(t, dither, 2);
            b.xor_(dither, dither, t);
            b.andi(dither, dither, 0x0f0f);
            b.add(px[u], px[u], dither);
        }
        for (int u = 0; u < 8; ++u)
            b.sw(px[u], p, int32_t((base + u) * 4));
    }

    b.addi(p, p, pitch);
    b.addi(rowcnt, rowcnt, 1);
    b.jmp(row_loop);
    b.bind(row_done);

    b.addi(rect, rect, 1);
    b.jmp(rect_loop);
    b.bind(rect_done);
    b.halt();
}

} // namespace hbat::workloads
