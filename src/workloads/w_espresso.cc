/**
 * @file
 * Espresso analogue: boolean-cover minimization over bit matrices.
 *
 * A cube list is a matrix of 32-bit masks (a few hundred rows x 8
 * words). The kernel repeatedly intersects row pairs, counts literals
 * with branch-free popcounts, and compacts covered rows — small hot
 * data, high instruction-level parallelism, and a high issue rate,
 * matching Espresso's profile (best IPC in Table 3).
 */

#include <vector>

#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace hbat::workloads
{

using kasm::VLabel;
using kasm::VReg;

void
buildEspresso(kasm::ProgramBuilder &pb, double scale)
{
    auto &b = pb.code();
    Rng rng(0xe59e550);

    constexpr uint32_t rows = 192;
    constexpr uint32_t words = 8;       // 256-bit cubes
    const uint32_t passes = uint32_t(6 * scale) + 1;

    // Sparse cubes: the tail words of each cube are mostly empty
    // (literals cluster in the low positions), so the per-word skip
    // branches are biased but data-dependent — espresso's cover loops
    // predict at ~90% (Table 3).
    std::vector<uint32_t> matrix(rows * words);
    for (uint32_t r = 0; r < rows; ++r) {
        for (uint32_t w = 0; w < words; ++w) {
            const double density = w < words / 2 ? 0.95 : 0.15;
            matrix[r * words + w] =
                rng.chance(density)
                    ? uint32_t(rng.next()) & uint32_t(rng.next())
                    : 0;
        }
    }
    const VAddr mat = pb.words(matrix);
    const VAddr counts = pb.space(rows * 4, 8);

    // bit_count[b] = number of set bits in byte b.
    std::vector<uint8_t> bit_count(256);
    for (uint32_t v = 0; v < 256; ++v)
        bit_count[v] = uint8_t(__builtin_popcount(v));
    const VAddr count_tbl = pb.bytes(bit_count);

    VReg pass = b.vint(), passlim = b.vint();
    VReg r1 = b.vint(), r2 = b.vint(), p1 = b.vint(), p2 = b.vint();
    VReg pc = b.vint(), total = b.vint(), rowlim = b.vint();
    VReg pcountTbl = b.vint();
    b.li(pcountTbl, uint32_t(count_tbl));

    b.li(pass, 0);
    b.li(passlim, passes);
    b.li(rowlim, rows - 1);
    b.li(total, 0);

    VLabel pass_loop = b.label(), pass_done = b.label();
    VLabel r_loop = b.label(), r_done = b.label();
    VLabel no_cover = b.label();

    b.bind(pass_loop);
    b.bge(pass, passlim, pass_done);

    b.li(r1, 0);
    b.bind(r_loop);
    b.bge(r1, rowlim, r_done);
    b.addi(r2, r1, 1);

    // p1 = &matrix[r1][0]; p2 = &matrix[r2][0]
    b.slli(p1, r1, 5);          // words * 4 = 32 bytes per row
    {
        VReg base = b.vint();
        b.li(base, uint32_t(mat));
        b.add(p1, p1, base);
        b.addi(p2, p1, int32_t(words * 4));
    }

    // Intersect the two cubes and popcount the intersection,
    // fully unrolled over the 8 mask words (branch-free).
    VReg count = b.vint();
    b.li(count, 0);
    for (uint32_t w = 0; w < words; ++w) {
        VReg a = b.vint(), c = b.vint(), t = b.vint(), m = b.vint();
        VLabel skip = b.label();
        b.lw(a, p1, int32_t(w * 4));
        b.lw(c, p2, int32_t(w * 4));
        b.and_(c, a, c);
        b.beqz(c, skip);        // sparse word: nothing to count
        // Byte-wise popcount through the bit_count lookup table,
        // exactly as espresso's set_ord() does.
        for (int byte = 0; byte < 4; ++byte) {
            VReg idx = b.vint();
            if (byte == 0)
                b.andi(idx, c, 0xff);
            else {
                b.srli(idx, c, byte * 8);
                if (byte < 3)
                    b.andi(idx, idx, 0xff);
            }
            b.add(idx, idx, pcountTbl);
            b.lbu(t, idx, 0);
            b.add(count, count, t);
        }
        (void)m;
        b.bind(skip);
    }

    // Store the literal count and, when the intersection is large,
    // "absorb" row r2 into r1 (OR it in).
    {
        VReg pcnt = b.vint(), thresh = b.vint();
        b.li(pcnt, uint32_t(counts));
        b.slli(pc, r1, 2);
        b.add(pcnt, pcnt, pc);
        b.sw(count, pcnt, 0);
        b.li(thresh, 40);
        b.blt(count, thresh, no_cover);
        for (uint32_t w = 0; w < words; w += 2) {
            VReg a = b.vint(), c = b.vint();
            b.lw(a, p1, int32_t(w * 4));
            b.lw(c, p2, int32_t(w * 4));
            b.or_(a, a, c);
            b.sw(a, p1, int32_t(w * 4));
        }
        b.bind(no_cover);
        b.add(total, total, count);
    }

    b.addi(r1, r1, 1);
    b.jmp(r_loop);
    b.bind(r_done);

    b.addi(pass, pass, 1);
    b.jmp(pass_loop);
    b.bind(pass_done);

    // Publish the checksum.
    {
        VReg out = b.vint();
        b.li(out, uint32_t(counts));
        b.sw(total, out, 0);
    }
    b.halt();
}

} // namespace hbat::workloads
