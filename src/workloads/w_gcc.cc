/**
 * @file
 * GCC analogue: IR-graph walking with kind dispatch.
 *
 * A 256 KB arena of 16-byte "tree nodes" (kind, value, left, right) is
 * wired into neighbourhood-local DAGs with occasional far edges at
 * program start. Walks start in a hot region that drifts every 64
 * walks (compilation moves from function to function), dispatch on
 * the node kind through an inlined common-case test plus a JR jump
 * table (the unpredictable branches that give GCC the worst
 * prediction rate in Table 3), follow child pointers, and rewrite
 * node values — pointer-dominated references with moderate locality.
 */

#include <vector>

#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace hbat::workloads
{

using kasm::VLabel;
using kasm::VReg;

void
buildGcc(kasm::ProgramBuilder &pb, double scale)
{
    auto &b = pb.code();
    Rng rng(0x6cc6cc);

    constexpr uint32_t num_nodes = 16384;       // 256 KB arena
    constexpr uint32_t node_bytes = 16;
    const uint32_t walks = uint32_t(9000 * scale) + 1;
    constexpr uint32_t walk_len = 24;

    // Node layout: +0 kind (0..7), +4 value, +8 left ptr, +12 right.
    // Kinds and values are initialized data; the child pointers are
    // linked by a short init loop at program start (multiplicative
    // hashes of the node index), which keeps the image free of
    // absolute addresses.
    std::vector<uint32_t> image(num_nodes * 4);
    for (uint32_t i = 0; i < num_nodes; ++i) {
        image[i * 4 + 0] = uint32_t(rng.below(8));
        image[i * 4 + 1] = uint32_t(rng.next());
        image[i * 4 + 2] = 0;
        image[i * 4 + 3] = 0;
    }
    const VAddr nodes = pb.words(image);
    VReg pnode = b.vint(), pend = b.vint(), idx = b.vint();
    VReg t = b.vint(), u = b.vint(), base = b.vint(), nmask = b.vint();

    b.li(base, uint32_t(nodes));
    b.li(pnode, uint32_t(nodes));
    b.li(pend, uint32_t(nodes + uint64_t(num_nodes) * node_bytes));
    b.li(idx, 0);
    b.li(nmask, num_nodes - 1);

    // Child pointers mostly stay within a 1024-node neighbourhood
    // (IR trees are built from nearby allocations), with every 16th
    // right pointer escaping to a far node (cross-function
    // references). This gives gcc's moderate locality.
    VLabel init_loop = b.label(), init_done = b.label();
    b.bind(init_loop);
    b.bge(pnode, pend, init_done);
    // left = neighbourhood(idx*13 + 7)
    {
        VReg k = b.vint(), hood = b.vint();
        b.li(k, ~uint32_t(1023));
        b.and_(hood, idx, k);
        b.li(k, 13);
        b.mul(t, idx, k);
        b.addi(t, t, 7);
        b.andi(t, t, 1023);
        b.or_(t, t, hood);
        b.slli(t, t, 4);
        b.add(t, t, base);
        b.sw(t, pnode, 8);
    }
    // right: near (idx*29 + 3) except every 16th node jumps far.
    {
        VLabel far = b.label(), store = b.label();
        VReg k = b.vint(), hood = b.vint(), low = b.vint();
        b.andi(low, idx, 15);
        b.beqz(low, far);
        b.li(k, ~uint32_t(1023));
        b.and_(hood, idx, k);
        b.li(k, 29);
        b.mul(u, idx, k);
        b.addi(u, u, 3);
        b.andi(u, u, 1023);
        b.or_(u, u, hood);
        b.jmp(store);
        b.bind(far);
        b.li(k, 24571);
        b.mul(u, idx, k);
        b.addi(u, u, 3);
        b.and_(u, u, nmask);
        b.bind(store);
        b.slli(u, u, 4);
        b.add(u, u, base);
        b.sw(u, pnode, 12);
    }
    b.addi(idx, idx, 1);
    b.addi(pnode, pnode, node_bytes);
    b.jmp(init_loop);
    b.bind(init_done);

    // Kind handlers (jump table targets).
    VLabel handlers[8];
    for (auto &h : handlers)
        h = b.label();
    VLabel step_done = b.label();
    const VAddr table = pb.codeTable(
        std::vector<VLabel>(handlers, handlers + 8));

    VReg wcount = b.vint(), wlim = b.vint(), depth = b.vint();
    VReg node = b.vint(), kind = b.vint(), val = b.vint();
    VReg sum = b.vint(), seed = b.vint(), ptab = b.vint();
    VReg dlim = b.vint(), pprof = b.vint();

    b.li(wcount, 0);
    b.li(wlim, walks);
    b.li(sum, 0);
    b.li(seed, 0x1234567);
    b.li(ptab, uint32_t(table));
    b.li(dlim, walk_len);
    b.li(pprof, uint32_t(pb.space(64, 8)));

    VLabel walk_loop = b.label(), walk_done = b.label();
    VLabel step_loop = b.label(), step_exit = b.label();

    b.bind(walk_loop);
    b.bge(wcount, wlim, walk_done);

    // Pick a pseudo-random root inside the current hot region; the
    // region drifts every 64 walks (compilation moves from function
    // to function, but stays within one for a while).
    {
        VReg k = b.vint(), region = b.vint();
        b.li(k, 1103515245u);
        b.mul(seed, seed, k);
        b.addi(seed, seed, 12345);
        b.srli(region, wcount, 6);
        b.li(k, 7);
        b.mul(region, region, k);
        b.andi(region, region, int32_t(num_nodes / 1024 - 1));
        b.slli(region, region, 10);
        b.srli(node, seed, 8);
        b.andi(node, node, 1023);
        b.or_(node, node, region);
        b.slli(node, node, 4);
        b.add(node, node, base);
    }
    b.li(depth, 0);

    b.bind(step_loop);
    b.bge(depth, dlim, step_exit);

    b.lw(kind, node, 0);
    // Common-kind fast path: the compiler inlines the two most
    // frequent node kinds behind a (data-dependent) test and only
    // falls back to the jump table for the rest — gcc's mix of
    // unpredictable conditional branches and multiway dispatch.
    {
        VLabel slow = b.label();
        VReg two = b.vint();
        b.li(two, 2);
        b.bge(kind, two, slow);
        // Inline handler: accumulate, mark the node visited, bump a
        // hot profile counter, follow the left child.
        b.lw(val, node, 4);
        b.add(sum, sum, val);
        b.sw(sum, node, 4);
        {
            VReg cnt = b.vint();
            b.lw(cnt, pprof, 0);
            b.addi(cnt, cnt, 1);
            b.sw(cnt, pprof, 0);
            b.srli(val, val, 3);
            b.xor_(sum, sum, val);
        }
        b.lw(node, node, 8);
        b.jmp(step_done);
        b.bind(slow);
    }
    // Dispatch through the jump table.
    {
        VReg target = b.vint(), off = b.vint();
        b.slli(off, kind, 2);
        b.add(off, off, ptab);
        b.lw(target, off, 0);
        b.jr(target);
    }

    // kind 0/1: follow left, accumulate.
    for (int k = 0; k < 2; ++k) {
        b.bind(handlers[k]);
        b.lw(val, node, 4);
        b.add(sum, sum, val);
        b.lw(node, node, 8);
        b.jmp(step_done);
    }
    // kind 2/3: follow right, xor.
    for (int k = 2; k < 4; ++k) {
        b.bind(handlers[k]);
        b.lw(val, node, 4);
        b.xor_(sum, sum, val);
        b.lw(node, node, 12);
        b.jmp(step_done);
    }
    // kind 4/5: rewrite the value (constant folding), follow left.
    for (int k = 4; k < 6; ++k) {
        b.bind(handlers[k]);
        b.lw(val, node, 4);
        b.addi(val, val, 0x11);
        b.sw(val, node, 4);
        b.lw(node, node, 8);
        b.jmp(step_done);
    }
    // kind 6: swap children (tree rotation).
    b.bind(handlers[6]);
    {
        VReg l = b.vint(), r = b.vint();
        b.lw(l, node, 8);
        b.lw(r, node, 12);
        b.sw(r, node, 8);
        b.sw(l, node, 12);
        b.mov(node, l);
    }
    b.jmp(step_done);
    // kind 7: terminate this walk early.
    b.bind(handlers[7]);
    b.jmp(step_exit);

    b.bind(step_done);
    b.addi(depth, depth, 1);
    b.jmp(step_loop);

    b.bind(step_exit);
    b.addi(wcount, wcount, 1);
    b.jmp(walk_loop);

    b.bind(walk_done);
    {
        VReg out = b.vint();
        b.li(out, uint32_t(nodes));
        b.sw(sum, out, 4);
    }
    b.halt();
}

} // namespace hbat::workloads
