/**
 * @file
 * Doduc analogue: a floating-point Monte-Carlo-style kernel.
 *
 * Dense FP arithmetic over two small, cache-resident arrays (~16 KB)
 * with few memory references per cycle — matching Doduc's profile in
 * Table 3 (FP-heavy, modest data set, low (Ld+St)/cycle, excellent TLB
 * behaviour). Four independent accumulator chains keep the FP units
 * busy; one long-latency divide per block models the occasional
 * normalization step.
 */

#include <vector>

#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace hbat::workloads
{

using kasm::VLabel;
using kasm::VReg;

void
buildDoduc(kasm::ProgramBuilder &pb, double scale)
{
    auto &b = pb.code();
    Rng rng(0xd0d0c);

    constexpr uint32_t n = 1024;
    const uint32_t iters = uint32_t(56 * scale) + 1;

    std::vector<double> init(n);
    for (auto &v : init)
        v = rng.real() + 0.25;
    const VAddr aa = pb.doubles(init);
    for (auto &v : init)
        v = rng.real() + 0.5;
    const VAddr ab = pb.doubles(init);

    VReg it = b.vint(), itlim = b.vint();
    VReg pa = b.vint(), pEnd = b.vint(), pB = b.vint();
    VReg pc_ = b.vint(), pr = b.vint();
    const VAddr coeff_addr = [&] {
        std::vector<double> coeff(n / 2);
        for (auto &v : coeff)
            v = rng.real() * 0.01;
        return pb.doubles(coeff);
    }();
    const VAddr result_addr = pb.space(uint64_t(n / 2) * 8, 8);

    // Four independent accumulator chains (s0..s3) plus running
    // products; the out-of-order core can overlap them freely.
    VReg s0 = b.vfp(), s1 = b.vfp(), s2 = b.vfp(), s3 = b.vfp();
    VReg t0 = b.vfp(), t1 = b.vfp();
    VReg x0 = b.vfp(), y0 = b.vfp(), x1 = b.vfp(), y1 = b.vfp();
    VReg w0 = b.vfp(), w1 = b.vfp(), decay = b.vfp(), bias = b.vfp();
    VReg inflate = b.vfp();

    b.fconst(decay, 0.99930);
    b.fconst(bias, 0.00125);
    b.fconst(inflate, 0.99982);
    b.fconst(s0, 0.0);
    b.fconst(s1, 0.0);
    b.fconst(s2, 0.0);
    b.fconst(s3, 0.0);
    b.fconst(t0, 1.0);
    b.fconst(t1, 1.0);

    VLabel outer = b.label(), outer_done = b.label();
    VLabel inner = b.label(), inner_done = b.label();

    b.li(it, 0);
    b.li(itlim, iters);
    b.bind(outer);
    b.bge(it, itlim, outer_done);

    b.li(pa, uint32_t(aa));
    b.li(pB, uint32_t(ab));
    b.li(pEnd, uint32_t(aa + n * 8));
    b.li(pc_, uint32_t(coeff_addr));
    b.li(pr, uint32_t(result_addr));

    b.bind(inner);
    b.bge(pa, pEnd, inner_done);

    // Two element pairs per iteration feeding disjoint chains, plus
    // a coefficient load and a streaming result store.
    b.ldf(x0, pa, 0);
    b.ldf(y0, pB, 0);
    b.ldf(x1, pa, 8);
    b.ldf(y1, pB, 8);
    b.ldf(w1, pc_, 0);
    b.fadd(s3, s3, w1);
    b.ldf(w0, pc_, 8);
    b.fadd(s2, s2, w0);
    b.sdf(s0, pr, 0);
    b.sdf(s1, pr, 8);
    b.addi(pc_, pc_, 8);
    b.addi(pr, pr, 16);

    b.fmul(w0, x0, y0);
    b.fadd(s0, s0, w0);
    b.fmul(w1, x1, y1);
    b.fadd(s1, s1, w1);

    b.fsub(w0, x0, y0);
    b.fmul(w0, w0, w0);
    b.fadd(s2, s2, w0);
    b.fadd(w1, x1, y1);
    b.fmul(w1, w1, decay);
    b.fadd(s3, s3, w1);

    // The kernel's recurrence: a two-multiply smoothing filter whose
    // value feeds the next iteration (doduc's per-step state update).
    b.fmul(t0, t0, decay);
    b.fadd(t0, t0, bias);
    b.fmul(t0, t0, inflate);
    b.fadd(t0, t0, bias);
    b.fmul(t1, t1, decay);
    b.fadd(t1, t1, t0);

    b.addi(pa, pa, 16);
    b.addi(pB, pB, 16);
    b.jmp(inner);
    b.bind(inner_done);

    // One normalization divide per sweep (long-latency FPU use).
    b.fadd(w0, s0, s1);
    b.fadd(w1, s2, s3);
    b.fadd(w1, w1, bias);
    b.fdiv(w0, w0, w1);
    b.fadd(s0, s0, w0);
    b.sdf(s0, pa, -8);

    b.addi(it, it, 1);
    b.jmp(outer);
    b.bind(outer_done);
    b.halt();
}

} // namespace hbat::workloads
