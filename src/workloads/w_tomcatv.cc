/**
 * @file
 * Tomcatv analogue: a vectorized 2-D mesh stencil.
 *
 * Seven 129x129 double-precision arrays (~0.9 MB total) are swept
 * row-major with neighbour loads and FP arithmetic, the inner loop
 * unrolled twice as -funroll-loops would. Row sweeps give high
 * spatial locality and many simultaneous same-page accesses — the
 * behaviour that makes piggybacking and small L1 TLBs effective.
 */

#include <vector>

#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace hbat::workloads
{

using kasm::VLabel;
using kasm::VReg;

void
buildTomcatv(kasm::ProgramBuilder &pb, double scale)
{
    auto &b = pb.code();
    Rng rng(0x70c47a11);

    constexpr uint32_t n = 129;
    const uint32_t iters = uint32_t(2 * scale) + 1;
    const uint32_t row_bytes = n * 8;

    // X, Y: coordinates; RX, RY: residuals; AA, DD: coefficients;
    // D: workspace. Initialized with a smooth-ish random field.
    std::vector<double> init(n * n);
    for (auto &v : init)
        v = rng.real() * 2.0 - 1.0;

    const VAddr ax = pb.doubles(init);
    for (auto &v : init)
        v = rng.real() * 2.0 - 1.0;
    const VAddr ay = pb.doubles(init);
    const VAddr arx = pb.space(uint64_t(n) * n * 8, 8);
    const VAddr ary = pb.space(uint64_t(n) * n * 8, 8);
    const VAddr aaa = pb.space(uint64_t(n) * n * 8, 8);
    const VAddr add = pb.space(uint64_t(n) * n * 8, 8);

    VReg it = b.vint(), j = b.vint(), i = b.vint(), nlim = b.vint();
    VReg px = b.vint(), py = b.vint(), prx = b.vint(), pry = b.vint();
    VReg paa = b.vint(), pdd = b.vint(), rowend = b.vint();

    VReg xc = b.vfp(), xn = b.vfp(), xs = b.vfp(), xe = b.vfp();
    VReg xw = b.vfp(), yc = b.vfp(), ye = b.vfp(), yw = b.vfp();
    VReg xxx = b.vfp(), yyy = b.vfp(), aj = b.vfp(), dj = b.vfp();
    VReg half = b.vfp(), quarter = b.vfp();

    b.fconst(half, 0.5);
    b.fconst(quarter, 0.25);
    b.li(nlim, n - 1);

    VLabel it_loop = b.label(), it_done = b.label();
    VLabel j_loop = b.label(), j_done = b.label();
    VLabel i_loop = b.label(), i_done = b.label();

    b.li(it, 0);
    b.bind(it_loop);
    {
        VReg itlim = b.vint();
        b.li(itlim, iters);
        b.bge(it, itlim, it_done);
    }

    b.li(j, 1);
    b.bind(j_loop);
    b.bge(j, nlim, j_done);

    // Row base pointers: base + (j*n + 1) * 8.
    {
        VReg off = b.vint(), t = b.vint();
        b.li(t, n);
        b.mul(off, j, t);
        b.addi(off, off, 1);
        b.slli(off, off, 3);
        b.li(px, uint32_t(ax));
        b.add(px, px, off);
        b.li(py, uint32_t(ay));
        b.add(py, py, off);
        b.li(prx, uint32_t(arx));
        b.add(prx, prx, off);
        b.li(pry, uint32_t(ary));
        b.add(pry, pry, off);
        b.li(paa, uint32_t(aaa));
        b.add(paa, paa, off);
        b.li(pdd, uint32_t(add));
        b.add(pdd, pdd, off);
        b.addi(rowend, px, int32_t((n - 2) * 8));
    }

    b.li(i, 1);
    b.bind(i_loop);
    b.bge(px, rowend, i_done);

    // Two stencil points per iteration (unrolled x2).
    for (int u = 0; u < 2; ++u) {
        const int32_t o = u * 8;
        b.ldf(xc, px, o);
        b.ldf(xe, px, o + 8);
        b.ldf(xw, px, o - 8);
        b.ldf(xn, px, o - int32_t(row_bytes));
        b.ldf(xs, px, o + int32_t(row_bytes));
        b.ldf(yc, py, o);
        b.ldf(ye, py, o + 8);
        b.ldf(yw, py, o - 8);

        // xxx = 0.5*(xe - xw); yyy = 0.5*(ye - yw)
        b.fsub(xxx, xe, xw);
        b.fmul(xxx, xxx, half);
        b.fsub(yyy, ye, yw);
        b.fmul(yyy, yyy, half);

        // aj = xxx*xxx + yyy*yyy; dj = 0.25*(xn + xs) - xc
        b.fmul(aj, xxx, xxx);
        b.fmul(dj, yyy, yyy);
        b.fadd(aj, aj, dj);
        b.fadd(dj, xn, xs);
        b.fmul(dj, dj, quarter);
        b.fsub(dj, dj, xc);

        b.sdf(aj, paa, o);
        b.sdf(dj, pdd, o);
        // Residuals: rx = dj - aj*yc; ry = aj + dj*yc
        b.fmul(xxx, aj, yc);
        b.fsub(xxx, dj, xxx);
        b.sdf(xxx, prx, o);
        b.fmul(yyy, dj, yc);
        b.fadd(yyy, aj, yyy);
        b.sdf(yyy, pry, o);
    }

    b.addi(px, px, 16);
    b.addi(py, py, 16);
    b.addi(prx, prx, 16);
    b.addi(pry, pry, 16);
    b.addi(paa, paa, 16);
    b.addi(pdd, pdd, 16);
    b.addi(i, i, 2);
    b.jmp(i_loop);
    b.bind(i_done);

    b.addi(j, j, 1);
    b.jmp(j_loop);
    b.bind(j_done);

    b.addi(it, it, 1);
    b.jmp(it_loop);
    b.bind(it_done);
    b.halt();
}

} // namespace hbat::workloads
