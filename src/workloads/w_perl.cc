/**
 * @file
 * Perl analogue: a stack bytecode interpreter.
 *
 * A synthetic bytecode program (pushes, arithmetic, variable
 * loads/stores, associative-array ops, conditional jumps) runs under a
 * dispatch loop that jumps through a JR handler table. The operand
 * stack lives in memory and is driven with post-increment/decrement
 * pushes and pops; scalar variables and the hash region add scattered
 * heap traffic. Interpreter dispatch plus data-dependent branches give
 * the low prediction rate and high memory intensity of the paper's
 * Perl run.
 */

#include <vector>

#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace hbat::workloads
{

using kasm::VLabel;
using kasm::VReg;

namespace
{

enum PerlOp : uint32_t
{
    kPushConst,     ///< push operand
    kLoadVar,       ///< push vars[operand]
    kStoreVar,      ///< vars[operand] = pop
    kAdd,           ///< push(pop + pop)
    kXorOp,         ///< push(pop ^ pop)
    kHashGet,       ///< push hash[h(pop)]
    kHashPut,       ///< hash[h(v)] = v, v = pop
    kJumpNz,        ///< pop; branch to operand when non-zero
    kNumPerlOps
};

} // namespace

void
buildPerl(kasm::ProgramBuilder &pb, double scale)
{
    auto &b = pb.code();
    Rng rng(0x9e21);

    constexpr uint32_t code_len = 8192;
    constexpr uint32_t num_vars = 8192;          // 32 KB scalars
    constexpr uint32_t hash_words = 1u << 16;    // 256 KB hash region
    const uint32_t budget_ops = uint32_t(120000 * scale) + 64;

    // Generate bytecode: op in +0, operand in +4. Stack depth is kept
    // positive by construction (pushes outnumber pops in every
    // prefix); jumps go backward at most 24 ops to form small loops.
    std::vector<uint32_t> code(code_len * 2);
    int depth = 4;
    for (uint32_t i = 0; i < code_len; ++i) {
        uint32_t op;
        for (;;) {
            op = uint32_t(rng.below(kNumPerlOps));
            const int need = (op == kAdd || op == kXorOp) ? 2 : 1;
            if (op == kPushConst || op == kLoadVar || depth >= need)
                break;
        }
        uint32_t operand = 0;
        switch (op) {
          case kPushConst:
            operand = uint32_t(rng.next());
            ++depth;
            break;
          case kLoadVar:
            operand = uint32_t(rng.below(num_vars));
            ++depth;
            break;
          case kStoreVar:
            operand = uint32_t(rng.below(num_vars));
            --depth;
            break;
          case kAdd:
          case kXorOp:
            --depth;
            break;
          case kHashGet:
            break;        // pop + push
          case kHashPut:
            --depth;
            break;
          case kJumpNz:
            operand = i > 24 ? uint32_t(i - rng.below(24) - 1)
                             : uint32_t(i + 1);
            --depth;
            break;
        }
        if (depth < 2)
            depth = 2;  // generator invariant; the VM re-pushes anyway
        code[i * 2] = op;
        code[i * 2 + 1] = operand;
    }
    const VAddr code_addr = pb.words(code);
    const VAddr vars = pb.space(uint64_t(num_vars) * 4, 8);
    const VAddr prof = pb.space(256, 8);
    const VAddr hash = pb.space(uint64_t(hash_words) * 4, 8);
    const VAddr stack = pb.space(256 * 1024, 8);

    VLabel handlers[kNumPerlOps];
    for (auto &h : handlers)
        h = b.label();
    const VAddr table = pb.codeTable(
        std::vector<VLabel>(handlers, handlers + kNumPerlOps));

    VReg vpc = b.vint(), vsp = b.vint(), fuel = b.vint();
    VReg op = b.vint(), operand = b.vint(), a = b.vint(), c = b.vint();
    VReg ptab = b.vint(), pvars = b.vint(), phash = b.vint();
    VReg code_base = b.vint(), code_end = b.vint();
    VReg stack_base = b.vint(), stack_end = b.vint();

    b.li(vpc, uint32_t(code_addr));
    b.li(code_base, uint32_t(code_addr));
    b.li(code_end, uint32_t(code_addr + uint64_t(code_len) * 8));
    b.li(vsp, uint32_t(stack + 1024));
    b.li(stack_base, uint32_t(stack + 64));
    b.li(stack_end, uint32_t(stack + 256 * 1024 - 64));
    b.li(fuel, budget_ops);
    b.li(ptab, uint32_t(table));
    b.li(pvars, uint32_t(vars));
    b.li(phash, uint32_t(hash));

    // Seed the operand stack.
    {
        VReg v = b.vint();
        b.li(v, 0x5eed);
        for (int i = 0; i < 8; ++i)
            b.swpi(v, vsp, 4);
    }

    VLabel dispatch = b.label(), vm_done = b.label();
    VLabel refill = b.label(), wrap = b.label();
    VLabel resetsp = b.label();

    b.bind(dispatch);
    b.beqz(fuel, vm_done);
    b.addi(fuel, fuel, -1);
    // Interpreter stack check: drifting out of the stack window
    // re-centres the operand stack pointer.
    b.blt(vsp, stack_base, resetsp);
    b.bge(vsp, stack_end, resetsp);
    b.bge(vpc, code_end, wrap);
    b.bind(refill);

    // Fetch op and operand; advance the virtual pc.
    b.lwpi(op, vpc, 4);
    b.lwpi(operand, vpc, 4);
    {
        VReg target = b.vint(), toff = b.vint();
        b.slli(toff, op, 2);
        // Per-op profiling counter and last-operand slot (the
        // interpreter's bookkeeping; cache-hot and independent of
        // the dispatch chain).
        {
            VReg pprof = b.vint(), cnt = b.vint();
            b.li(pprof, uint32_t(prof));
            b.add(pprof, pprof, toff);
            b.lw(cnt, pprof, 0);
            b.addi(cnt, cnt, 1);
            b.sw(cnt, pprof, 0);
            b.sw(operand, pprof, 64);
        }
        b.add(toff, toff, ptab);
        b.lw(target, toff, 0);
        b.jr(target);
    }

    b.bind(wrap);
    b.mov(vpc, code_base);
    b.jmp(refill);

    b.bind(resetsp);
    b.addi(vsp, stack_base, 1024);
    {
        VReg v = b.vint();
        b.li(v, 0x5eed);
        for (int i = 0; i < 8; ++i)
            b.swpi(v, vsp, 4);
    }
    b.jmp(dispatch);

    // -- handlers ---------------------------------------------------
    b.bind(handlers[kPushConst]);
    b.swpi(operand, vsp, 4);
    b.jmp(dispatch);

    b.bind(handlers[kLoadVar]);
    {
        VReg addr = b.vint();
        b.slli(addr, operand, 2);
        b.add(addr, addr, pvars);
        b.lw(a, addr, 0);
        b.swpi(a, vsp, 4);
    }
    b.jmp(dispatch);

    b.bind(handlers[kStoreVar]);
    {
        VReg addr = b.vint();
        b.addi(vsp, vsp, -4);       // pop
        b.lw(a, vsp, 0);
        b.slli(addr, operand, 2);
        b.add(addr, addr, pvars);
        b.sw(a, addr, 0);
    }
    b.jmp(dispatch);

    b.bind(handlers[kAdd]);
    b.addi(vsp, vsp, -4);
    b.lw(a, vsp, 0);
    b.addi(vsp, vsp, -4);
    b.lw(c, vsp, 0);
    b.add(a, a, c);
    b.swpi(a, vsp, 4);
    b.jmp(dispatch);

    b.bind(handlers[kXorOp]);
    b.addi(vsp, vsp, -4);
    b.lw(a, vsp, 0);
    b.addi(vsp, vsp, -4);
    b.lw(c, vsp, 0);
    b.xor_(a, a, c);
    b.swpi(a, vsp, 4);
    b.jmp(dispatch);

    b.bind(handlers[kHashGet]);
    {
        VReg h = b.vint();
        b.addi(vsp, vsp, -4);
        b.lw(a, vsp, 0);
        // h = (a * 2654435761) >> 16, masked to the table.
        b.li(h, 2654435761u);
        b.mul(h, a, h);
        b.srli(h, h, 14);
        b.andi(h, h, int32_t((hash_words - 1) & 0xffff));
        b.slli(h, h, 2);
        b.add(h, h, phash);
        b.lw(a, h, 0);
        b.swpi(a, vsp, 4);
    }
    b.jmp(dispatch);

    b.bind(handlers[kHashPut]);
    {
        VReg h = b.vint();
        b.addi(vsp, vsp, -4);
        b.lw(a, vsp, 0);
        b.li(h, 2654435761u);
        b.mul(h, a, h);
        b.srli(h, h, 14);
        b.andi(h, h, int32_t((hash_words - 1) & 0xffff));
        b.slli(h, h, 2);
        b.add(h, h, phash);
        b.sw(a, h, 0);
    }
    b.jmp(dispatch);

    b.bind(handlers[kJumpNz]);
    {
        VLabel fall = b.label();
        b.addi(vsp, vsp, -4);
        b.lw(a, vsp, 0);
        b.beqz(a, fall);
        b.slli(a, operand, 3);
        b.add(vpc, code_base, a);
        b.bind(fall);
    }
    b.jmp(dispatch);
    // ----------------------------------------------------------------


    b.bind(vm_done);
    b.halt();
}

} // namespace hbat::workloads
