/**
 * @file
 * MPEG_play analogue: block IDCT decode into a streamed frame buffer.
 *
 * Coefficients stream sequentially out of a compressed-data buffer;
 * each 8x8 block gets an integer butterfly transform (adds, shifts,
 * saturation) and is written to its block position in a 1.5 MB frame,
 * row stride 768 bytes. Frames are touched once and never revisited —
 * the low-reuse streaming that makes MPEG_play one of the paper's
 * worst TLB citizens.
 */

#include <vector>

#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace hbat::workloads
{

using kasm::VLabel;
using kasm::VReg;

void
buildMpegPlay(kasm::ProgramBuilder &pb, double scale)
{
    auto &b = pb.code();
    Rng rng(0x9e6a11);

    constexpr uint32_t frame_w = 768;           // bytes per pixel row
    constexpr uint32_t frame_h = 576;
    constexpr uint32_t frame_bytes = frame_w * frame_h;  // ~432 KB
    constexpr uint32_t blocks_x = frame_w / 8;
    constexpr uint32_t blocks_y = frame_h / 8;
    const uint32_t frames = uint32_t(3 * scale) + 1;

    // Coefficient stream: 8 i16-packed words per block.
    const uint32_t blocks = blocks_x * blocks_y;
    std::vector<uint32_t> stream(size_t(blocks) * 8);
    for (auto &w : stream)
        w = uint32_t(rng.next()) & 0x0fff0fff;
    const VAddr coeffs = pb.words(stream);
    const VAddr frame0 = pb.space(uint64_t(frame_bytes) * 2, 64);

    VReg f = b.vint(), flim = b.vint();
    VReg blk = b.vint(), blim = b.vint();
    VReg pcoef = b.vint(), pdst = b.vint(), fbase = b.vint();

    b.li(f, 0);
    b.li(flim, frames);

    VLabel frame_loop = b.label(), frame_done = b.label();
    VLabel blk_loop = b.label(), blk_done = b.label();

    b.bind(frame_loop);
    b.bge(f, flim, frame_done);

    // Alternate between the two frame buffers.
    {
        VReg odd = b.vint(), off = b.vint();
        b.andi(odd, f, 1);
        b.slli(off, odd, 19);       // 512 KB apart (covers 432 KB)
        b.li(fbase, uint32_t(frame0));
        b.add(fbase, fbase, off);
    }
    b.li(pcoef, uint32_t(coeffs));
    b.li(blk, 0);
    b.li(blim, blocks);

    b.bind(blk_loop);
    b.bge(blk, blim, blk_done);

    // Destination: block (bx, by) -> fbase + by*8*frame_w + bx*8.
    {
        VReg bx = b.vint(), by = b.vint(), t = b.vint(), w = b.vint();
        b.li(w, blocks_x);
        b.remu(bx, blk, w);
        b.divu(by, blk, w);
        b.slli(t, by, 3);
        {
            VReg pitch = b.vint();
            b.li(pitch, frame_w);
            b.mul(t, t, pitch);
        }
        b.slli(bx, bx, 3);
        b.add(t, t, bx);
        b.add(pdst, t, fbase);
    }

    // Load 8 packed words, butterfly them, and write 8 rows of the
    // 8x8 block (two words per row).
    {
        VReg c[8];
        for (int i = 0; i < 8; ++i) {
            c[i] = b.vint();
            b.lwpi(c[i], pcoef, 4);         // post-increment stream
        }
        // Integer butterflies (shift-add structure of an IDCT pass).
        VReg t = b.vint(), u = b.vint();
        for (int stage = 0; stage < 2; ++stage) {
            for (int i = 0; i < 4; ++i) {
                b.add(t, c[i], c[i + 4]);
                b.sub(u, c[i], c[i + 4]);
                b.srli(t, t, 1);
                b.srai(u, u, 1);
                b.mov(c[i], t);
                b.mov(c[i + 4], u);
            }
        }
        // Motion compensation: blend with the reference block from
        // the other frame buffer, then saturate and store two words
        // per row, 8 rows.
        VReg mask = b.vint(), pref = b.vint(), refw = b.vint();
        b.li(mask, 0x7f7f7f7fu);
        {
            VReg other = b.vint();
            b.li(other, uint32_t(frame_bytes) + 0x10000);
            b.xor_(pref, pdst, other);   // cheap "other frame" addr
            b.li(other, ~uint32_t(3));
            b.and_(pref, pref, other);
        }
        for (int row = 0; row < 8; ++row) {
            b.lw(refw, pref, int32_t(row * frame_w));
            b.srli(refw, refw, 1);
            b.add(t, c[row], refw);
            b.and_(t, t, mask);
            b.sw(t, pdst, int32_t(row * frame_w));
            b.xor_(u, c[(row + 3) & 7], c[row]);
            b.and_(u, u, mask);
            b.sw(u, pdst, int32_t(row * frame_w + 4));
        }
    }

    b.addi(blk, blk, 1);
    b.jmp(blk_loop);
    b.bind(blk_done);

    b.addi(f, f, 1);
    b.jmp(frame_loop);
    b.bind(frame_done);
    b.halt();
}

} // namespace hbat::workloads
