/**
 * @file
 * TFFT analogue: radix-2 FFT passes over a large complex array.
 *
 * A 512 KB array of complex doubles gets a table-driven bit-reversal
 * permutation (scattered swaps) followed by butterfly stages chosen to
 * cover both ends of the stride spectrum (len = 2, 4, and N). With the
 * twiddle and reversal tables the footprint approaches 1 MB — well
 * past the 512 KB reach of a 128-entry TLB with 4 KB pages, giving the
 * poor TLB behaviour the paper reports for TFFT.
 */

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace hbat::workloads
{

using kasm::VLabel;
using kasm::VReg;

void
buildTfft(kasm::ProgramBuilder &pb, double scale)
{
    auto &b = pb.code();
    Rng rng(0x7ff7);

    const uint32_t log_n = scale >= 0.5 ? 16 : 11;
    const uint32_t n = 1u << log_n;

    // Complex input data (interleaved re/im).
    std::vector<double> data(size_t(n) * 2);
    for (auto &v : data)
        v = rng.real() * 2.0 - 1.0;
    const VAddr a = pb.doubles(data);

    // Bit-reversal table.
    std::vector<uint32_t> rev(n);
    for (uint32_t i = 0; i < n; ++i) {
        uint32_t r = 0;
        for (uint32_t bit = 0; bit < log_n; ++bit)
            r |= ((i >> bit) & 1) << (log_n - 1 - bit);
        rev[i] = r;
    }
    const VAddr rev_addr = pb.words(rev);

    // Twiddle factors w^k = exp(-2*pi*i*k/n), k in [0, n/2).
    std::vector<double> tw(n, 0.0);     // n/2 complex values
    for (uint32_t k = 0; k < n / 2; ++k) {
        tw[size_t(k) * 2] = std::cos(-2.0 * M_PI * k / n);
        tw[size_t(k) * 2 + 1] = std::sin(-2.0 * M_PI * k / n);
    }
    const VAddr tw_addr = pb.doubles(tw);

    // ---- Bit-reversal permutation -------------------------------
    VReg i = b.vint(), j = b.vint(), prev = b.vint();
    VReg pi = b.vint(), pj = b.vint(), abase = b.vint(), nv = b.vint();
    VReg xr = b.vfp(), xi = b.vfp(), yr = b.vfp(), yi = b.vfp();

    b.li(abase, uint32_t(a));
    b.li(prev, uint32_t(rev_addr));
    b.li(nv, n);
    b.li(i, 0);

    VLabel rev_loop = b.label(), rev_done = b.label(), no_swap =
        b.label();
    b.bind(rev_loop);
    b.bge(i, nv, rev_done);
    b.lwpi(j, prev, 4);             // j = rev[i]
    b.ble(j, i, no_swap);
    // Swap complex a[i] <-> a[j].
    b.slli(pi, i, 4);
    b.add(pi, pi, abase);
    b.slli(pj, j, 4);
    b.add(pj, pj, abase);
    b.ldf(xr, pi, 0);
    b.ldf(xi, pi, 8);
    b.ldf(yr, pj, 0);
    b.ldf(yi, pj, 8);
    b.sdf(yr, pi, 0);
    b.sdf(yi, pi, 8);
    b.sdf(xr, pj, 0);
    b.sdf(xi, pj, 8);
    b.bind(no_swap);
    b.addi(i, i, 1);
    b.jmp(rev_loop);
    b.bind(rev_done);

    // ---- Butterfly stages ----------------------------------------
    // Stage lengths cover unit strides (len 2, 4) and the worst-case
    // n/2-apart stride (len n); the remaining stages are omitted to
    // keep the run in the ~1M-instruction budget (DESIGN.md).
    const uint32_t lens[] = {2, n};
    for (uint32_t len : lens) {
        const uint32_t half = len / 2;
        const uint32_t step = n / len;

        VReg blk = b.vint(), k = b.vint(), hv = b.vint();
        VReg pu = b.vint(), pv = b.vint(), pw = b.vint();
        VReg blk_end = b.vint();
        VReg ur = b.vfp(), ui = b.vfp(), vr = b.vfp(), vi = b.vfp();
        VReg wr = b.vfp(), wi = b.vfp(), tr = b.vfp(), ti = b.vfp();

        b.li(blk, uint32_t(a));
        b.li(blk_end, uint32_t(a + uint64_t(n) * 16));
        b.li(hv, half);

        VLabel blk_loop = b.label(), blk_done = b.label();
        VLabel k_loop = b.label(), k_done = b.label();

        b.bind(blk_loop);
        b.bge(blk, blk_end, blk_done);

        b.mov(pu, blk);
        b.addk(pv, blk, int64_t(half) * 16);
        b.li(pw, uint32_t(tw_addr));
        b.li(k, 0);

        b.bind(k_loop);
        b.bge(k, hv, k_done);

        b.ldf(ur, pu, 0);
        b.ldf(ui, pu, 8);
        b.ldf(vr, pv, 0);
        b.ldf(vi, pv, 8);
        b.ldf(wr, pw, 0);
        b.ldf(wi, pw, 8);

        // t = v * w
        b.fmul(tr, vr, wr);
        b.fmul(ti, vi, wi);
        b.fsub(tr, tr, ti);
        b.fmul(ti, vr, wi);
        {
            VReg t2 = b.vfp();
            b.fmul(t2, vi, wr);
            b.fadd(ti, ti, t2);
        }
        // a[u] = u + t; a[v] = u - t
        {
            VReg sr = b.vfp(), si = b.vfp();
            b.fadd(sr, ur, tr);
            b.fadd(si, ui, ti);
            b.sdf(sr, pu, 0);
            b.sdf(si, pu, 8);
            b.fsub(sr, ur, tr);
            b.fsub(si, ui, ti);
            b.sdf(sr, pv, 0);
            b.sdf(si, pv, 8);
        }

        b.addi(pu, pu, 16);
        b.addi(pv, pv, 16);
        b.addk(pw, pw, int64_t(step) * 16);
        b.addi(k, k, 1);
        b.jmp(k_loop);
        b.bind(k_done);

        b.addk(blk, blk, int64_t(len == n ? n : len) * 16);
        b.jmp(blk_loop);
        b.bind(blk_done);
    }

    b.halt();
}

} // namespace hbat::workloads
