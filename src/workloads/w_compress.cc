/**
 * @file
 * Compress analogue: an LZW-flavoured adaptive compressor.
 *
 * Reads a byte stream with short repeated runs (mildly compressible),
 * hashes (prefix, byte) pairs into a 512 KB open-addressing dictionary,
 * and emits codes. The dictionary probes scatter across ~128 pages
 * with almost no short-term reuse — the paper singles Compress out as
 * one of the programs where "small data caches and TLBs perform very
 * poorly".
 */

#include <vector>

#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace hbat::workloads
{

using kasm::VLabel;
using kasm::VReg;

void
buildCompress(kasm::ProgramBuilder &pb, double scale)
{
    auto &b = pb.code();
    Rng rng(0xc0432e55);

    const uint32_t input_len = uint32_t(48.0 * 1024 * scale);
    std::vector<uint8_t> input(input_len);
    uint8_t prev = 'a';
    for (auto &byte : input) {
        // Runs of repeated symbols with occasional fresh symbols give
        // the dictionary a realistic mix of hits and inserts.
        byte = rng.chance(0.7) ? prev : uint8_t(rng.below(64) + 32);
        prev = byte;
    }

    const VAddr in_addr = pb.bytes(input);
    // Entry layout: +0 key+1 (0 = empty), +4 code, +8 use count.
    const uint32_t table_entries = 1u << 16;
    const VAddr table_addr = pb.space(uint64_t(table_entries) * 16, 8);
    const VAddr out_addr = pb.space(uint64_t(input_len) * 4 + 64, 8);

    VReg pin = b.vint(), pend = b.vint(), ptab = b.vint();
    VReg pout = b.vint(), prefix = b.vint(), ch = b.vint();
    VReg key = b.vint(), keymark = b.vint(), h = b.vint();
    VReg next_code = b.vint(), slot = b.vint(), stored = b.vint();
    VReg tmp = b.vint(), crc = b.vint();
    b.li(crc, 0xffff);

    b.li(pin, uint32_t(in_addr));
    b.li(pend, uint32_t(in_addr + input_len));
    b.li(ptab, uint32_t(table_addr));
    b.li(pout, uint32_t(out_addr));
    b.li(next_code, 256);

    b.lbu(prefix, pin, 0);
    b.addi(pin, pin, 1);

    VLabel loop = b.label(), probe = b.label(), miss = b.label();
    VLabel advance = b.label(), done = b.label();

    b.bind(loop);
    b.bge(pin, pend, done);

    b.lbu(ch, pin, 0);
    b.addi(pin, pin, 1);

    // Running CRC-style checksum over the input (independent of the
    // dictionary probe chain, so it overlaps with the table walk).
    b.slli(tmp, crc, 5);
    b.xor_(crc, crc, tmp);
    b.add(crc, crc, ch);
    b.srli(tmp, crc, 17);
    b.xor_(crc, crc, tmp);

    // key = (prefix << 8) | ch; keymark = key + 1 (0 marks empty).
    b.slli(key, prefix, 8);
    b.or_(key, key, ch);
    b.addi(keymark, key, 1);

    // h = ((key * 31) ^ (key >> 5)) & 0xffff
    b.slli(h, key, 5);
    b.sub(h, h, key);           // key * 31
    b.srli(tmp, key, 5);
    b.xor_(h, h, tmp);
    b.andi(h, h, 0xffff);

    b.bind(probe);
    // slot = &table[h]
    b.slli(slot, h, 4);
    b.add(slot, slot, ptab);
    b.lw(stored, slot, 0);
    b.beq(stored, keymark, advance);    // dictionary hit
    b.beqz(stored, miss);
    // Collision: linear probe.
    b.addi(h, h, 1);
    b.andi(h, h, 0xffff);
    b.jmp(probe);

    b.bind(miss);
    // Insert (key -> next_code), emit the prefix code, restart.
    b.sw(keymark, slot, 0);
    b.sw(next_code, slot, 4);
    b.addi(next_code, next_code, 1);
    b.swpi(prefix, pout, 4);            // post-increment output
    b.mov(prefix, ch);
    b.jmp(loop);

    b.bind(advance);
    // Hit: extend the phrase with the stored code and bump the
    // entry's use count (compress tracks dictionary pressure).
    b.lw(prefix, slot, 4);
    b.lw(tmp, slot, 8);
    b.addi(tmp, tmp, 1);
    b.sw(tmp, slot, 8);
    b.jmp(loop);

    b.bind(done);
    // Emit the final phrase.
    b.swpi(prefix, pout, 4);
    b.halt();
}

} // namespace hbat::workloads
