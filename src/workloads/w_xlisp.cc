/**
 * @file
 * Xlisp analogue: cons-cell lists with interpretation and GC sweeps.
 *
 * A 512 KB cons heap is carved into lists whose cells are deliberately
 * scattered (multiplicative allocation stride, like a fragmented Lisp
 * heap after collections). Three phases mirror an interpreter's life:
 * building lists (allocation stores), evaluating them (serial cdr
 * pointer chasing with car loads and occasional rewrites), and a
 * mark/sweep pass (chase-and-mark followed by a linear heap sweep).
 * This gives the highest loads+stores per cycle of the suite, as
 * Table 3 reports for Xlisp.
 */

#include "common/rng.hh"
#include "workloads/workloads.hh"

namespace hbat::workloads
{

using kasm::VLabel;
using kasm::VReg;

void
buildXlisp(kasm::ProgramBuilder &pb, double scale)
{
    auto &b = pb.code();

    constexpr uint32_t num_cells = 1u << 16;    // 512 KB heap
    constexpr uint32_t num_roots = 512;
    constexpr uint32_t list_len = num_cells / num_roots;
    const uint32_t eval_iters = uint32_t(1400 * scale) + 8;
    const uint32_t gc_rounds = uint32_t(2 * scale) + 1;

    // Cell layout: +0 car (value; bit 0 = GC mark), +4 cdr (pointer).
    const VAddr heap = pb.space(uint64_t(num_cells) * 8, 16);
    const VAddr roots = pb.space(uint64_t(num_roots) * 4, 8);

    VReg hbase = b.vint(), rbase = b.vint();
    b.li(hbase, uint32_t(heap));
    b.li(rbase, uint32_t(roots));

    // ---- Phase A: cons up the lists ------------------------------
    // Allocation order scatters *chunks* of four cells: consecutive
    // cells in a list share a cache line (allocation locality), while
    // chunk placement is scattered across the heap's pages like a
    // fragmented Lisp heap after collections.
    {
        VReg l = b.vint(), llim = b.vint(), c = b.vint(), clim =
            b.vint();
        VReg idx = b.vint(), cell = b.vint(), prevc = b.vint();
        VReg val = b.vint(), stride = b.vint(), mask = b.vint();
        VReg count = b.vint(), proot = b.vint();

        b.li(l, 0);
        b.li(llim, num_roots);
        b.li(stride, 40503);
        b.li(mask, num_cells / 4 - 1);
        b.li(count, 0);
        b.li(val, 0x11117);
        b.mov(proot, rbase);

        VLabel l_loop = b.label(), l_done = b.label();
        VLabel c_loop = b.label(), c_done = b.label();

        b.bind(l_loop);
        b.bge(l, llim, l_done);
        b.li(prevc, 0);                 // nil terminator
        b.li(c, 0);
        b.li(clim, list_len);

        b.bind(c_loop);
        b.bge(c, clim, c_done);
        // chunk = (count/4 * stride) & chunkmask; cell = chunk*4 +
        // count%4, i.e. runs of four line-sharing cells.
        b.srli(idx, count, 2);
        b.mul(idx, idx, stride);
        b.and_(idx, idx, mask);
        b.slli(cell, idx, 5);
        {
            VReg sub = b.vint();
            b.andi(sub, count, 3);
            b.slli(sub, sub, 3);
            b.add(cell, cell, sub);
        }
        b.add(cell, cell, hbase);
        // car = val (even), cdr = prev
        b.slli(val, val, 1);
        b.srli(val, val, 1);            // keep it positive
        b.sw(val, cell, 0);
        b.sw(prevc, cell, 4);
        b.addi(val, val, 0x2e);
        b.mov(prevc, cell);
        b.addi(count, count, 1);
        b.addi(c, c, 1);
        b.jmp(c_loop);
        b.bind(c_done);

        b.swpi(prevc, proot, 4);        // roots[l] = list head
        b.addi(l, l, 1);
        b.jmp(l_loop);
        b.bind(l_done);
    }

    // ---- Phase B: evaluate (pointer-chasing walks) ----------------
    {
        VReg it = b.vint(), itlim = b.vint(), seed = b.vint();
        VReg node = b.vint(), sum = b.vint(), car = b.vint();
        VReg rmask = b.vint();

        b.li(it, 0);
        b.li(itlim, eval_iters);
        b.li(seed, 0x115921);
        b.li(sum, 0);
        b.li(rmask, num_roots - 1);

        VLabel it_loop = b.label(), it_done = b.label();
        VLabel chase = b.label(), chase_done = b.label(), no_set =
            b.label();

        b.bind(it_loop);
        b.bge(it, itlim, it_done);

        // node = roots[(seed >> 6) & rmask]
        {
            VReg k = b.vint(), addr = b.vint();
            b.li(k, 1103515245u);
            b.mul(seed, seed, k);
            b.addi(seed, seed, 12345);
            b.srli(addr, seed, 6);
            b.and_(addr, addr, rmask);
            b.slli(addr, addr, 2);
            b.add(addr, addr, rbase);
            b.lw(node, addr, 0);
        }

        // The evaluator keeps a small activation record: every cell
        // visit updates interpreter state on the (cache-hot) eval
        // stack, like xlisp's C-level locals and type dispatch.
        VReg evstk = b.vint(), tag = b.vint(), acc2 = b.vint();
        {
            const VAddr frame = pb.space(256, 8);
            b.li(evstk, uint32_t(frame));
            b.li(acc2, 1);
        }

        b.bind(chase);
        b.beqz(node, chase_done);
        b.lw(car, node, 0);
        b.add(sum, sum, car);
        // Type-dispatch bookkeeping on the eval stack (hits).
        b.andi(tag, car, 7);
        b.slli(tag, tag, 2);
        b.add(tag, tag, evstk);
        b.lw(acc2, tag, 0);
        b.addi(acc2, acc2, 1);
        b.sw(acc2, tag, 0);
        b.sw(sum, evstk, 32);
        // Rewrite every 8th car (setcar during eval).
        {
            VReg low = b.vint();
            b.andi(low, sum, 14);
            b.bnez(low, no_set);
            b.sw(sum, node, 0);
            b.bind(no_set);
        }
        b.lw(node, node, 4);            // cdr chase
        b.jmp(chase);
        b.bind(chase_done);

        b.addi(it, it, 1);
        b.jmp(it_loop);
        b.bind(it_done);
    }

    // ---- Phase C: mark and sweep ----------------------------------
    for (uint32_t round = 0; round < gc_rounds; ++round) {
        VReg l = b.vint(), llim = b.vint(), node = b.vint();
        VReg car = b.vint(), proot = b.vint();

        b.li(l, 0);
        b.li(llim, num_roots);
        b.mov(proot, rbase);

        VLabel mark_root = b.label(), mark_done = b.label();
        VLabel mark_chase = b.label(), mark_next = b.label();

        // Mark: chase every list setting car bit 0.
        b.bind(mark_root);
        b.bge(l, llim, mark_done);
        b.lwpi(node, proot, 4);
        b.bind(mark_chase);
        b.beqz(node, mark_next);
        b.lw(car, node, 0);
        b.ori(car, car, 1);
        b.sw(car, node, 0);
        b.lw(node, node, 4);
        b.jmp(mark_chase);
        b.bind(mark_next);
        b.addi(l, l, 1);
        b.jmp(mark_root);
        b.bind(mark_done);

        // Sweep: linear pass clearing marks (unrolled x4 cells).
        VReg p = b.vint(), pend = b.vint(), w = b.vint(), m = b.vint();
        b.mov(p, hbase);
        b.li(pend, uint32_t(heap + uint64_t(num_cells) * 8));
        b.li(m, ~uint32_t(1));

        VLabel sweep = b.label(), sweep_done = b.label();
        b.bind(sweep);
        b.bge(p, pend, sweep_done);
        for (int u = 0; u < 4; ++u) {
            b.lw(w, p, u * 8);
            b.and_(w, w, m);
            b.sw(w, p, u * 8);
        }
        b.addi(p, p, 32);
        b.jmp(sweep);
        b.bind(sweep_done);
    }

    b.halt();
}

} // namespace hbat::workloads
