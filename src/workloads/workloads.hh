/**
 * @file
 * The benchmark-analogue registry (Table 3).
 *
 * Each entry builds one program whose *memory behaviour class* matches
 * a program from the paper's suite: data-set size relative to TLB
 * reach, reference locality, pointer- vs. array-dominance, and FP mix
 * (see DESIGN.md, "Workload analogues"). Workloads are written against
 * virtual registers, so one source builds both the 32/32- and
 * 8/8-register binaries that Section 4.6 compares.
 *
 * The @p scale argument multiplies the work done (iteration counts /
 * input sizes): 1.0 is the evaluation size (~1M dynamic instructions),
 * tests use much smaller values.
 */

#ifndef HBAT_WORKLOADS_WORKLOADS_HH
#define HBAT_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "kasm/program.hh"
#include "kasm/program_builder.hh"

namespace hbat::workloads
{

/** One registered workload. */
struct Workload
{
    const char *name;
    const char *paperAnalogue;      ///< Table 3 program it models
    const char *behaviour;          ///< memory-behaviour class
    void (*build)(kasm::ProgramBuilder &pb, double scale);
};

/** All workloads, in Table 3 order. */
const std::vector<Workload> &all();

/** Look up a workload by name; fatal when unknown. */
const Workload &find(const std::string &name);

/** Build and link @p name under @p budget at @p scale. */
kasm::Program build(const std::string &name,
                    const kasm::RegBudget &budget, double scale = 1.0);

/// @name Individual builders (exposed for tests)
/// @{
void buildCompress(kasm::ProgramBuilder &pb, double scale);
void buildDoduc(kasm::ProgramBuilder &pb, double scale);
void buildEspresso(kasm::ProgramBuilder &pb, double scale);
void buildGcc(kasm::ProgramBuilder &pb, double scale);
void buildGhostscript(kasm::ProgramBuilder &pb, double scale);
void buildMpegPlay(kasm::ProgramBuilder &pb, double scale);
void buildPerl(kasm::ProgramBuilder &pb, double scale);
void buildTfft(kasm::ProgramBuilder &pb, double scale);
void buildTomcatv(kasm::ProgramBuilder &pb, double scale);
void buildXlisp(kasm::ProgramBuilder &pb, double scale);
/// @}

} // namespace hbat::workloads

#endif // HBAT_WORKLOADS_WORKLOADS_HH
