#include "workloads/workloads.hh"

#include "common/log.hh"

namespace hbat::workloads
{

const std::vector<Workload> &
all()
{
    static const std::vector<Workload> list = {
        {"compress", "Compress (SPEC'92)",
         "adaptive compressor; scattered hash table, poor locality",
         buildCompress},
        {"doduc", "Doduc (SPEC'92)",
         "FP Monte-Carlo kernel; small data, low refs/cycle",
         buildDoduc},
        {"espresso", "Espresso (SPEC'92)",
         "boolean-cover bit matrices; small hot data, high ILP",
         buildEspresso},
        {"gcc", "GCC (SPEC'92)",
         "IR graph walking; pointer loads, unpredictable dispatch",
         buildGcc},
        {"ghostscript", "Ghostscript",
         "rasterizer over a ~8 MB framebuffer; page-per-row strides",
         buildGhostscript},
        {"mpeg_play", "MPEG_play",
         "block IDCT into a streamed frame buffer; little reuse",
         buildMpegPlay},
        {"perl", "Perl",
         "bytecode interpreter; operand stack + scattered heap",
         buildPerl},
        {"tfft", "TFFT",
         "radix-2 FFT over a multi-MB array; strided, poor locality",
         buildTfft},
        {"tomcatv", "Tomcatv (SPEC'92)",
         "2-D vectorized mesh stencil; unrolled FP row sweeps",
         buildTomcatv},
        {"xlisp", "Xlisp (SPEC'92)",
         "cons-cell lists, pointer chasing, GC sweeps; most refs/cycle",
         buildXlisp},
    };
    return list;
}

const Workload &
find(const std::string &name)
{
    for (const Workload &w : all())
        if (name == w.name)
            return w;
    hbat_fatal("unknown workload '", name, "'");
}

kasm::Program
build(const std::string &name, const kasm::RegBudget &budget,
      double scale)
{
    const Workload &w = find(name);
    kasm::ProgramBuilder pb(w.name);
    w.build(pb, scale);
    return pb.link(budget);
}

} // namespace hbat::workloads
