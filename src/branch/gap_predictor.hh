/**
 * @file
 * GAp two-level branch predictor (Table 1; [YP93]).
 *
 * An 8-bit global branch-history register is concatenated with low PC
 * bits to index a 4096-entry pattern history table of 2-bit saturating
 * counters. The fetch stage consults it for every conditional branch;
 * a wrong prediction costs the 3-cycle misprediction penalty (charged
 * by the pipeline). History and counters update with the resolved
 * outcome.
 */

#ifndef HBAT_BRANCH_GAP_PREDICTOR_HH
#define HBAT_BRANCH_GAP_PREDICTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/stats.hh"

namespace hbat::branch
{

/** Predictor event counters. */
struct PredictorStats
{
    uint64_t lookups = 0;
    uint64_t correct = 0;

    double
    rate() const
    {
        return lookups == 0 ? 0.0 : double(correct) / double(lookups);
    }
};

/** Register the predictor counters (plus the prediction rate). */
void registerStats(obs::StatRegistry &reg, const std::string &prefix,
                   const PredictorStats &s);

/** GAp: global history + per-address PHT selection bits. */
class GapPredictor
{
  public:
    /**
     * @param history_bits global history length (8 in the paper)
     * @param pht_entries pattern-history-table size (4096)
     */
    GapPredictor(unsigned history_bits = 8, unsigned pht_entries = 4096);

    /** Predict the direction of the branch at @p pc. */
    bool predict(VAddr pc) const;

    /**
     * Record the resolved outcome: updates the counter, the global
     * history, and the accuracy statistics against @p predicted.
     */
    void update(VAddr pc, bool taken, bool predicted);

    const PredictorStats &stats() const { return stats_; }

  private:
    unsigned index(VAddr pc) const;

    unsigned historyBits;
    unsigned historyMask;
    uint32_t history = 0;
    std::vector<uint8_t> pht;   ///< 2-bit saturating counters
    PredictorStats stats_;
};

} // namespace hbat::branch

#endif // HBAT_BRANCH_GAP_PREDICTOR_HH
