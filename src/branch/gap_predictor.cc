#include "branch/gap_predictor.hh"

#include "common/bitops.hh"
#include "common/log.hh"

namespace hbat::branch
{

GapPredictor::GapPredictor(unsigned history_bits, unsigned pht_entries)
    : historyBits(history_bits),
      historyMask(unsigned(mask(history_bits))),
      pht(pht_entries, 1)   // weakly not-taken
{
    hbat_assert(isPowerOfTwo(pht_entries), "PHT size not 2^k");
    hbat_assert(pht_entries >= (1u << history_bits),
                "PHT smaller than the history space");
}

unsigned
GapPredictor::index(VAddr pc) const
{
    // History forms the low index bits; the remaining bits come from
    // the branch address (word-aligned), giving the per-address "p"
    // in GAp.
    const unsigned pc_bits =
        unsigned(pht.size()) / (1u << historyBits) - 1;
    const unsigned pc_sel = unsigned(pc >> 2) & pc_bits;
    return (pc_sel << historyBits) | history;
}

bool
GapPredictor::predict(VAddr pc) const
{
    return pht[index(pc)] >= 2;
}

void
GapPredictor::update(VAddr pc, bool taken, bool predicted)
{
    ++stats_.lookups;
    if (taken == predicted)
        ++stats_.correct;

    uint8_t &ctr = pht[index(pc)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;

    history = ((history << 1) | unsigned(taken)) & historyMask;
}

void
registerStats(obs::StatRegistry &reg, const std::string &prefix,
              const PredictorStats &s)
{
    reg.scalar(prefix + ".lookups", "conditional-branch predictions",
               s.lookups);
    reg.scalar(prefix + ".correct", "correct predictions", s.correct);
    reg.formula(prefix + ".rate", "prediction accuracy",
                [&s] { return s.rate(); });
}

} // namespace hbat::branch
