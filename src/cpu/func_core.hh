/**
 * @file
 * The functional core: architecturally executes a loaded program and
 * produces the dynamic instruction stream the timing models consume.
 *
 * Execution is correct-path only; the timing pipelines charge branch
 * misprediction and TLB/cache latencies on top of this stream (see
 * DESIGN.md for the wrong-path substitution note). Stepping consumes a
 * pre-decoded StaticCode image — built once per program and shared by
 * every run of it — so each text word is decoded exactly once.
 */

#ifndef HBAT_CPU_FUNC_CORE_HH
#define HBAT_CPU_FUNC_CORE_HH

#include <memory>
#include <string>

#include "cpu/dyn_inst.hh"
#include "cpu/static_code.hh"
#include "kasm/program.hh"
#include "obs/stats.hh"
#include "vm/address_space.hh"

namespace hbat::cpu
{

/** Architectural execution counts. */
struct FuncStats
{
    uint64_t instructions = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t branches = 0;
    uint64_t takenBranches = 0;
    uint64_t fpOps = 0;
};

/** Register the architectural execution counts. */
void registerStats(obs::StatRegistry &reg, const std::string &prefix,
                   const FuncStats &s);

/**
 * The functional core's complete architectural state — everything a
 * FuncCore needs to resume execution exactly where another one left
 * off (sim::Checkpoint). The memory state lives separately in
 * vm::SpaceState.
 */
struct CoreState
{
    RegVal regs[kNumIntRegs] = {};
    FpRegVal fregs[kNumFpRegs] = {};
    VAddr pc = 0;
    bool halted = false;
    InstSeq nextSeq = 0;
    FuncStats stats;
};

/** Executes the HBAT ISA over an AddressSpace. */
class FuncCore
{
  public:
    /**
     * @param mem address space the program was loaded into
     * @param prog the linked program
     * @param code pre-decoded image of @p prog, shared across runs;
     *     null decodes a private copy (convenient for single-run
     *     callers — sweeps should share one StaticCode per program)
     */
    FuncCore(vm::AddressSpace &mem, const kasm::Program &prog,
             std::shared_ptr<const StaticCode> code = nullptr);

    /** True once a HALT has executed. */
    bool halted() const { return isHalted; }

    /**
     * Execute one instruction and return its record.
     * Must not be called after halted().
     */
    DynInst step();

    /**
     * As step(), but writing the record into @p dyn (reset first) —
     * lets the pipeline's lookahead refill build records directly in
     * its ring slots instead of copying 72-byte values through
     * temporaries on the hottest front-end path.
     */
    void stepInto(DynInst &dyn);

    /** Architected integer register value (for tests). */
    RegVal intReg(RegIndex r) const { return regs[r]; }

    /** Architected FP register value (for tests). */
    FpRegVal fpReg(RegIndex r) const { return fregs[r]; }

    VAddr pc() const { return pc_; }

    const FuncStats &stats() const { return stats_; }

    /** Copy the architectural state (registers, PC, halt flag,
     *  sequence counter, counts) into @p out. */
    void saveState(CoreState &out) const;

    /**
     * Overwrite the architectural state with @p s. The core must be
     * running the same program (same StaticCode contents) as the one
     * @p s was saved from; stepping then reproduces that core's
     * instruction stream exactly, sequence numbers included.
     */
    void restoreState(const CoreState &s);

  private:
    void setInt(RegIndex r, RegVal v);

    vm::AddressSpace &mem;
    std::shared_ptr<const StaticCode> code;

    RegVal regs[kNumIntRegs] = {};
    FpRegVal fregs[kNumFpRegs] = {};
    VAddr pc_;
    bool isHalted = false;
    InstSeq nextSeq = 0;
    FuncStats stats_;
};

} // namespace hbat::cpu

#endif // HBAT_CPU_FUNC_CORE_HH
