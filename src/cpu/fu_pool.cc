#include "cpu/fu_pool.hh"

#include "common/log.hh"

namespace hbat::cpu
{

using isa::FuClass;

FuPool::FuPool(const FuPoolConfig &config)
    : intAlu(config.intAlu, 0), intMultDiv(config.intMultDiv, 0),
      mem(config.memPorts, 0), fpAdd(config.fpAdd, 0),
      fpMultDiv(config.fpMultDiv, 0)
{}

std::vector<Cycle> &
FuPool::group(FuClass cls)
{
    switch (cls) {
      case FuClass::IntAlu: return intAlu;
      case FuClass::IntMult:
      case FuClass::IntDiv: return intMultDiv;
      case FuClass::MemPort: return mem;
      case FuClass::FpAdd: return fpAdd;
      case FuClass::FpMult:
      case FuClass::FpDiv: return fpMultDiv;
      default: hbat_panic("no FU group for this class");
    }
}

bool
FuPool::acquire(FuClass cls, Cycle now)
{
    if (cls == FuClass::None)
        return true;    // control/nop: no unit needed
    for (Cycle &next_free : group(cls)) {
        if (next_free <= now) {
            next_free = now + issueLatency(cls);
            return true;
        }
    }
    return false;
}

Cycle
FuPool::totalLatency(FuClass cls)
{
    switch (cls) {
      case FuClass::IntAlu: return 1;
      case FuClass::IntMult: return 3;
      case FuClass::IntDiv: return 12;
      case FuClass::MemPort: return 2;
      case FuClass::FpAdd: return 2;
      case FuClass::FpMult: return 4;
      case FuClass::FpDiv: return 12;
      case FuClass::None: return 1;
    }
    hbat_panic("bad FU class");
}

Cycle
FuPool::issueLatency(FuClass cls)
{
    switch (cls) {
      case FuClass::IntDiv:
      case FuClass::FpDiv: return 12;
      default: return 1;
    }
}

} // namespace hbat::cpu
