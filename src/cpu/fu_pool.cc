#include "cpu/fu_pool.hh"

#include "common/log.hh"

namespace hbat::cpu
{

using isa::FuClass;

FuPool::FuPool(const FuPoolConfig &config)
    : intAlu(config.intAlu, 0), intMultDiv(config.intMultDiv, 0),
      mem(config.memPorts, 0), fpAdd(config.fpAdd, 0),
      fpMultDiv(config.fpMultDiv, 0)
{}

Cycle
FuPool::nextFreeCycle(Cycle now) const
{
    Cycle next = kCycleNever;
    const std::vector<Cycle> *groups[] = {&intAlu, &intMultDiv, &mem,
                                          &fpAdd, &fpMultDiv};
    for (const std::vector<Cycle> *g : groups)
        for (Cycle next_free : *g)
            if (next_free > now && next_free < next)
                next = next_free;
    return next;
}



} // namespace hbat::cpu
