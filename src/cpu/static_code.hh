/**
 * @file
 * The pre-decoded static program image shared by every run of a
 * program.
 *
 * Decoding a text word and deriving its operand lists (unified source
 * and destination ids, the store-data operand index, pointer
 * propagation) depend only on the static instruction, yet the
 * functional core used to redo that work once per run — and a design
 * sweep runs the same program once per design. A StaticCode is built
 * once per linked kasm::Program and shared read-only across all
 * (program, design) cells, so each text word is decoded exactly once
 * per program, and FuncCore::step() reduces to copying precomputed
 * fields plus the data-dependent execute.
 */

#ifndef HBAT_CPU_STATIC_CODE_HH
#define HBAT_CPU_STATIC_CODE_HH

#include <vector>

#include "isa/isa.hh"
#include "kasm/program.hh"

namespace hbat::cpu
{

/**
 * One decoded text word plus everything about it that does not depend
 * on architectural state.
 */
struct StaticInst
{
    isa::Inst inst;                     ///< decoded fields
    const isa::OpInfo *info = nullptr;  ///< static opcode properties

    /// @name Precomputed unified operand lists (see dyn_inst.hh)
    /// @{
    uint8_t srcs[3] = {0, 0, 0};
    uint8_t dsts[2] = {0, 0};
    uint8_t nSrcs = 0;
    uint8_t nDsts = 0;
    /** Index into srcs of a store's data operand, or -1. */
    int8_t dataSrc = -1;
    /// @}
};

/** An immutable decoded program; safe to share across threads. */
class StaticCode
{
  public:
    /** Decode @p prog's full text segment. */
    explicit StaticCode(const kasm::Program &prog);

    VAddr textBase() const { return textBase_; }
    size_t size() const { return insts_.size(); }

    /** The static instruction at @p pc (asserts pc is in text). */
    const StaticInst &
    fetch(VAddr pc) const
    {
        hbat_assert(pc >= textBase_ && pc % 4 == 0, "bad pc ", pc);
        const size_t idx = (pc - textBase_) / 4;
        hbat_assert(idx < insts_.size(), "pc past end of text: ", pc);
        return insts_[idx];
    }

  private:
    VAddr textBase_;
    std::vector<StaticInst> insts_;
};

} // namespace hbat::cpu

#endif // HBAT_CPU_STATIC_CODE_HH
