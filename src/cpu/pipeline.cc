#include "cpu/pipeline.hh"

#include <algorithm>

#include "common/log.hh"
#include "obs/trace.hh"

namespace hbat::cpu
{

using isa::FuClass;
using isa::Opcode;

Pipeline::Pipeline(const PipeConfig &config, FuncCore &core,
                   tlb::TranslationEngine &engine,
                   const vm::PageParams &pages)
    : cfg(config), core(core), engine(engine), pages(pages),
      fus(config.fus), predictor(), icache(config.icache),
      dcache(config.dcache), rob(config.robSize),
      engineObservesRegWrites(engine.observesRegWrites()),
      lsq(config.lsqSize), lookahead(2 * config.width),
      fetchQueue(config.fetchQueueSize)
{}

bool
Pipeline::producerDone(int slot, InstSeq seq) const
{
    if (slot < 0)
        return true;
    const Entry &e = rob[slot];
    if (!e.valid || e.dyn.seq != seq)
        return true;    // producer already retired
    return e.resultCycle <= now;
}

bool
Pipeline::srcsReady(const Entry &e) const
{
    for (int s = 0; s < e.dyn.nSrcs; ++s) {
        // Out-of-order stores issue on their *address* operands; the
        // data may arrive later (the paper's model computes store
        // addresses early so younger loads can proceed). The in-order
        // model stalls on any register hazard instead.
        if (!cfg.inOrder && e.dyn.isStore && s == e.dyn.dataSrc)
            continue;
        if (!producerDone(e.srcSlot[s], e.srcSeq[s]))
            return false;
    }
    return true;
}

bool
Pipeline::storeDataReady(const Entry &e) const
{
    if (e.dyn.dataSrc < 0)
        return true;
    return producerDone(e.srcSlot[e.dyn.dataSrc],
                        e.srcSeq[e.dyn.dataSrc]);
}

bool
Pipeline::olderAllComplete(size_t rob_pos) const
{
    for (size_t p = 0; p < rob_pos; ++p) {
        const Entry &e = at(p);
        if (e.resultCycle == kCycleNever || e.resultCycle > now)
            return false;
    }
    return true;
}

bool
Pipeline::olderStoresIssued(const Entry &load) const
{
    for (int slot : lsq) {
        const Entry &e = rob[slot];
        if (e.dyn.seq >= load.dyn.seq)
            break;
        if (e.dyn.isStore && !e.issued)
            return false;
    }
    return true;
}

void
Pipeline::commitStage()
{
    for (unsigned n = 0; n < cfg.width && robCount > 0; ++n) {
        Entry &e = at(0);
        if (e.resultCycle == kCycleNever || e.resultCycle > now)
            break;

        if (e.dyn.isStore) {
            // The store value is written into the data cache at
            // commit (Table 1) and needs a cache port.
            if (cachePortsUsed >= cfg.cachePorts)
                break;
            ++cachePortsUsed;
            dcache.access(e.paddr, true, now);
            lastCommittedStore = e.dyn.seq + 1;
            ++stats_.committedStores;
        }
        if (e.dyn.isLoad)
            ++stats_.committedLoads;

        // Feed register writes to designs that attach translations to
        // register values (pretranslation); skipped wholesale for the
        // designs that ignore them.
        for (int d = 0; engineObservesRegWrites && d < e.dyn.nDsts;
             ++d) {
            const uint8_t dst = e.dyn.dsts[d];
            if (dst >= 32)
                continue;   // FP registers never carry pointers
            RegIndex intSrcs[3];
            int nIntSrcs = 0;
            bool propagates;
            if (e.dyn.writesBase && dst == e.dyn.baseReg) {
                // Post-increment base update: pointer arithmetic on
                // the base register itself.
                propagates = true;
                intSrcs[nIntSrcs++] = e.dyn.baseReg;
            } else {
                propagates = e.dyn.propagatesPointer;
                for (int s = 0; s < e.dyn.nSrcs; ++s)
                    if (e.dyn.srcs[s] < 32)
                        intSrcs[nIntSrcs++] = RegIndex(e.dyn.srcs[s]);
            }
            engine.noteRegWrite(RegIndex(dst), intSrcs, nIntSrcs,
                                propagates);
        }

        if (e.dyn.isMem()) {
            hbat_assert(!lsq.empty() &&
                            lsq.front() == int(robHead),
                        "LSQ out of sync with ROB");
            lsq.pop_front();
        }
        if (e.dyn.op == Opcode::Halt)
            haltCommitted = true;

        HBAT_TRACE_EVENT(obs::kTraceCommit, now, "commit seq=",
                         e.dyn.seq, " pc=0x", std::hex, e.dyn.pc,
                         std::dec, " op=", isa::opName(e.dyn.op));
        HBAT_TRACE_EVENT(obs::kTraceLife, now, "life seq=", e.dyn.seq,
                         " pc=0x", std::hex, e.dyn.pc, std::dec,
                         " op=", isa::opName(e.dyn.op),
                         " dispatch=", e.dispatchCycle,
                         " issue=", e.issueCycle,
                         " done=", e.resultCycle, " commit=", now);

        e.valid = false;
        if (++robHead == rob.size())
            robHead = 0;
        --robCount;
        if (issueScanFrom > 0)
            --issueScanFrom;    // positions shifted down one
        ++stats_.committed;
    }
}

void
Pipeline::walkStage()
{
    if (walkActive) {
        if (now < walkDone)
            return;
        HBAT_TRACE_EVENT(obs::kTraceWalk, now, "walk done vpn=0x",
                         std::hex, walkVpn, std::dec);
        engine.fill(walkVpn, now);
        walkActive = false;
        for (int slot : lsq) {
            Entry &e = rob[slot];
            if (e.phase == MemPhase::TlbMiss && e.missVpn == walkVpn) {
                e.phase = MemPhase::WaitXlate;
                e.xlateFrom = now;
            }
        }
        // Fall through: another miss may start its walk this cycle.
    }

    // Start the walk for the oldest outstanding miss once every older
    // instruction has completed ("30 cycle fixed TLB miss latency
    // after earlier-issued instructions complete", Table 1).
    for (int slot : lsq) {
        Entry &e = rob[slot];
        if (e.phase != MemPhase::TlbMiss)
            continue;
        // Find its ROB position to check the older entries.
        size_t pos = size_t(slot) + rob.size() - robHead;
        if (pos >= rob.size())
            pos -= rob.size();
        if (olderAllComplete(pos)) {
            walkActive = true;
            walkVpn = e.missVpn;
            walkDone = now + cfg.tlbMissLatency;
            ++stats_.tlbWalks;
            HBAT_TRACE_EVENT(obs::kTraceWalk, now,
                             "walk start seq=", e.dyn.seq, " vpn=0x",
                             std::hex, e.missVpn, std::dec,
                             " done@", walkDone);
        }
        break;  // only the oldest miss is considered
    }
}

void
Pipeline::attemptXlate(Entry &e)
{
    tlb::XlateRequest req;
    req.vpn = pages.vpn(e.dyn.effAddr);
    req.write = e.dyn.isStore;
    req.seq = e.dyn.seq;
    req.isLoad = e.dyn.isLoad;
    req.baseReg = e.dyn.baseReg;
    req.offsetHigh = e.dyn.offsetHigh;

    ++memReqsThisCycle;
    const tlb::Outcome out = engine.request(req, now);
    switch (out.kind) {
      case tlb::Outcome::Kind::NoPort:
        HBAT_TRACE_EVENT(obs::kTraceXlate, now, "xlate no-port seq=",
                         e.dyn.seq, " vpn=0x", std::hex, req.vpn,
                         std::dec);
        return;   // retry next cycle
      case tlb::Outcome::Kind::Miss:
        e.phase = MemPhase::TlbMiss;
        e.missVpn = req.vpn;
        HBAT_TRACE_EVENT(obs::kTraceXlate, now, "xlate miss seq=",
                         e.dyn.seq, " vpn=0x", std::hex, req.vpn,
                         std::dec);
        return;
      case tlb::Outcome::Kind::Hit:
        HBAT_TRACE_EVENT(obs::kTraceXlate, now, "xlate hit seq=",
                         e.dyn.seq, " vpn=0x", std::hex, req.vpn,
                         " ppn=0x", out.ppn, std::dec,
                         " ready@", out.ready,
                         out.shielded ? " shielded" : "");
        e.xlateReady = out.ready;
        e.paddr = pages.physAddr(out.ppn, e.dyn.effAddr);
        if (e.dyn.isStore) {
            // The address is known; the store completes once its data
            // arrives (the cache write happens at commit).
            e.phase = MemPhase::WaitData;
        } else if (e.forwarded) {
            // Data comes from the matching store-queue entry; no
            // cache access, but the translation and the store's data
            // still gate it.
            e.phase = MemPhase::WaitFwd;
        } else if (e.blockStoreSeq > lastCommittedStore) {
            e.phase = MemPhase::WaitStore;
        } else {
            e.phase = MemPhase::WaitPort;
        }
        return;
    }
}

void
Pipeline::memStage()
{
    for (int slot : lsq) {
        Entry &e = rob[slot];
        if (!e.issued || e.phase == MemPhase::Done)
            continue;
        // An entry may advance through several phases in one cycle
        // (translate, unblock, and access the cache), matching the
        // overlapped TLB/cache timing of Section 4.1.
        if (e.phase == MemPhase::WaitXlate && now >= e.xlateFrom)
            attemptXlate(e);
        if (e.phase == MemPhase::WaitData && storeDataReady(e)) {
            e.resultCycle = std::max(e.xlateReady, now) + 1;
            e.phase = MemPhase::Done;
        }
        if (e.phase == MemPhase::WaitFwd) {
            // Complete when the forwarding store has its data (or has
            // already retired).
            const Entry &s = rob[e.fwdSlot];
            const bool gone =
                !s.valid || s.dyn.seq != e.fwdSeq;
            if (gone || (s.phase == MemPhase::Done &&
                         s.resultCycle <= now + 1)) {
                e.resultCycle = std::max(e.xlateReady, now) + 1;
                e.phase = MemPhase::Done;
            }
        }
        if (e.phase == MemPhase::WaitStore &&
            e.blockStoreSeq <= lastCommittedStore) {
            e.phase = MemPhase::WaitPort;
        }
        if (e.phase == MemPhase::WaitPort && now >= e.xlateReady &&
            cachePortsUsed < cfg.cachePorts) {
            ++cachePortsUsed;
            const cache::CacheAccess acc =
                dcache.access(e.paddr, false, now);
            e.resultCycle = acc.ready + 1;
            e.phase = MemPhase::Done;
        }
    }
}

void
Pipeline::issueMem(Entry &e)
{
    e.phase = MemPhase::WaitXlate;
    e.xlateFrom = now + 1;
    if (!e.dyn.isLoad)
        return;

    // Find the youngest older overlapping store in the LSQ.
    const VAddr lo = e.dyn.effAddr;
    const VAddr hi = lo + e.dyn.memSize;
    const Entry *match = nullptr;
    for (int slot : lsq) {
        const Entry &s = rob[slot];
        if (s.dyn.seq >= e.dyn.seq)
            break;
        if (!s.dyn.isStore)
            continue;
        const VAddr slo = s.dyn.effAddr;
        const VAddr shi = slo + s.dyn.memSize;
        if (lo < shi && slo < hi)
            match = &s;
    }
    if (match) {
        if (match->dyn.effAddr == e.dyn.effAddr &&
            match->dyn.memSize == e.dyn.memSize) {
            e.forwarded = true;     // store-to-load forwarding
            e.fwdSlot = int(match - rob.data());
            e.fwdSeq = match->dyn.seq;
        } else {
            // Partial overlap: wait until the store has written the
            // cache at commit.
            e.blockStoreSeq = match->dyn.seq + 1;
        }
    }
}

void
Pipeline::issueStage()
{
    if (walkActive) {
        ++stats_.idleWalk;
        ++stats_.zeroIssueCycles;
        return;     // the software miss handler occupies the pipeline
    }

    unsigned issued = 0;
    bool sawUnissued = false;
    uint64_t *reason = nullptr;
    auto blame = [&](uint64_t &ctr) {
        if (!reason)
            reason = &ctr;
    };

    // Oldest-first scan, starting past the all-issued prefix (see
    // issueScanFrom); the skipped entries could only ever `continue`.
    size_t firstLeftUnissued = SIZE_MAX;
    size_t pos = issueScanFrom;
    for (; pos < robCount && issued < cfg.width; ++pos) {
        Entry &e = at(pos);
        if (e.issued) {
            continue;
        }
        sawUnissued = true;
        bool canIssue = now > e.dispatchCycle;
        if (canIssue && !srcsReady(e)) {
            canIssue = false;
            blame(stats_.idleSrcWait);
        }

        if (canIssue && cfg.inOrder) {
            // No renaming: the previous writer of each destination
            // must have completed (WAW hazard).
            for (int d = 0; d < 2 && canIssue; ++d)
                canIssue = producerDone(e.dstPrevSlot[d],
                                        e.dstPrevSeq[d]);
            if (!canIssue)
                blame(stats_.idleSrcWait);
        }

        // Loads may execute only when all prior store addresses are
        // known (i.e. the stores have issued).
        if (canIssue && e.dyn.isLoad && !olderStoresIssued(e)) {
            canIssue = false;
            blame(stats_.idleLoadOrder);
        }

        const FuClass fu = e.dyn.fu;
        if (canIssue && !fus.acquire(fu, now)) {
            canIssue = false;
            blame(stats_.idleFuBusy);
        }

        if (!canIssue) {
            if (firstLeftUnissued == SIZE_MAX)
                firstLeftUnissued = pos;
            if (cfg.inOrder)
                break;  // strict program-order issue
            continue;
        }

        e.issued = true;
        e.issueCycle = now;
        ++issued;
        ++stats_.issuedOps;
        HBAT_TRACE_EVENT(obs::kTraceIssue, now, "issue seq=", e.dyn.seq,
                         " op=", isa::opName(e.dyn.op),
                         e.dyn.isMem() ? " mem" : "");

        if (e.dyn.isMem()) {
            issueMem(e);
        } else {
            e.resultCycle = now + FuPool::totalLatency(fu);
            if (e.mispredicted) {
                // Branch resolution: release the front end after the
                // misprediction penalty.
                frontEndBlockedUntil =
                    e.resultCycle + cfg.mispredictPenalty;
                blockedOnBranch = false;
            }
        }
    }

    // Everything below the first entry that stayed unissued (or below
    // wherever the scan stopped, if none did) has issued.
    issueScanFrom =
        firstLeftUnissued != SIZE_MAX ? firstLeftUnissued : pos;

    if (issued == 0) {
        ++stats_.zeroIssueCycles;
        if (!sawUnissued)
            ++stats_.idleEmpty;
        else if (reason)
            ++*reason;
        else
            ++stats_.idleOther;
    }
}

void
Pipeline::dispatchStage()
{
    if (walkActive)
        return;

    for (unsigned n = 0; n < cfg.width; ++n) {
        if (fetchQueue.empty() || fetchQueue.front().availAt > now)
            return;
        if (robCount >= rob.size()) {
            ++stats_.robFullStalls;
            return;
        }
        const DynInst &dyn = fetchQueue.front().dyn;
        if (dyn.isMem() && lsq.size() >= cfg.lsqSize) {
            ++stats_.lsqFullStalls;
            return;
        }

        size_t tail = robHead + robCount;
        if (tail >= rob.size())
            tail -= rob.size();
        const int slot = int(tail);
        Entry &e = rob[slot];
        e = Entry{};
        e.dyn = dyn;
        e.valid = true;
        e.dispatchCycle = now;
        e.mispredicted = fetchQueue.front().mispredicted;

        for (int s = 0; s < e.dyn.nSrcs; ++s) {
            const Writer &w = regMap[e.dyn.srcs[s]];
            e.srcSlot[s] = w.slot;
            e.srcSeq[s] = w.seq;
        }
        for (int d = 0; d < e.dyn.nDsts; ++d) {
            Writer &w = regMap[e.dyn.dsts[d]];
            e.dstPrevSlot[d] = w.slot;
            e.dstPrevSeq[d] = w.seq;
            w.slot = slot;
            w.seq = e.dyn.seq;
        }

        if (e.dyn.isMem())
            lsq.push_back(slot);
        ++robCount;
        fetchQueue.pop_front();
    }
}

void
Pipeline::refillLookahead()
{
    while (lookahead.size() < 2 * cfg.width && !core.halted())
        lookahead.push_back(core.step());
}

void
Pipeline::fetchStage()
{
    if (blockedOnBranch || frontEndBlockedUntil > now)
        return;
    refillLookahead();
    if (lookahead.empty())
        return;

    const uint64_t blockBytes = cfg.icache.blockBytes;
    const uint64_t block = lookahead.front().pc / blockBytes;

    // One I-cache access covers the whole fetch group. Instruction
    // addresses index the cache directly (a perfect single-ported
    // instruction TLB, per the paper's scope).
    const cache::CacheAccess iacc =
        icache.access(lookahead.front().pc, false, now);
    const Cycle availAt = iacc.ready + 1;
    if (!iacc.hit)
        frontEndBlockedUntil = iacc.ready;

    unsigned controls = 0;
    for (unsigned n = 0; n < cfg.width; ++n) {
        if (lookahead.empty())
            break;
        const DynInst &d = lookahead.front();
        if (d.pc / blockBytes != block)
            break;
        if (fetchQueue.size() >= cfg.fetchQueueSize)
            break;

        bool mispred = false;
        const bool isCtrl = d.isBranch || d.isJump;
        if (d.isBranch) {
            const bool pred = predictor.predict(d.pc);
            predictor.update(d.pc, d.taken, pred);
            mispred = pred != d.taken;
            if (mispred)
                ++stats_.mispredicts;
        } else if (d.isIndirect) {
            // No branch-target buffer models indirect targets; the
            // front end redirects when the jump resolves.
            mispred = true;
            ++stats_.indirectRedirects;
        }
        if (isCtrl)
            ++controls;

        HBAT_TRACE_EVENT(obs::kTraceFetch, now, "fetch seq=", d.seq,
                         " pc=0x", std::hex, d.pc, std::dec, " op=",
                         isa::opName(d.op), mispred ? " mispred" : "");
        fetchQueue.push_back(Fetched{d, availAt, mispred});
        lookahead.pop_front();

        if (mispred) {
            blockedOnBranch = true;
            break;
        }
        // The collapsing buffer supports two predictions per cycle
        // within one cache block.
        if (isCtrl && controls >= 2)
            break;
    }
}

bool
Pipeline::done() const
{
    return haltCommitted;
}

PipeStats
Pipeline::run(uint64_t max_insts)
{
    regMap.assign(64, Writer{});
    lastCommittedStore = 0;
    haltCommitted = false;

    Cycle lastCommitCycle = 0;
    uint64_t lastCommitted = 0;

    while (!done() && stats_.committed < max_insts) {
        engine.beginCycle(now);
        cachePortsUsed = 0;
        memReqsThisCycle = 0;

        commitStage();
        walkStage();
        memStage();
        issueStage();
        dispatchStage();
        fetchStage();

        stats_.memPerCycle.record(memReqsThisCycle);

        if (stats_.committed != lastCommitted) {
            lastCommitted = stats_.committed;
            lastCommitCycle = now;
        }
        hbat_assert(now - lastCommitCycle < 200000,
                    "pipeline deadlock at cycle ", now, " (committed ",
                    stats_.committed, ")");
        ++now;
    }

    stats_.cycles = now;
    stats_.predictor = predictor.stats();
    stats_.xlate = engine.stats();
    stats_.icache = icache.stats();
    stats_.dcache = dcache.stats();

    // Every zero-issue cycle must be blamed on exactly one cause.
    hbat_assert(stats_.idleSum() == stats_.zeroIssueCycles,
                "zero-issue classification out of sync: ",
                stats_.idleSum(), " classified vs ",
                stats_.zeroIssueCycles, " zero-issue cycles");
    return stats_;
}

void
registerStats(obs::StatRegistry &reg, const std::string &prefix,
              const PipeStats &s)
{
    reg.scalar(prefix + ".cycles", "simulated cycles", s.cycles);
    reg.scalar(prefix + ".committed", "committed instructions",
               s.committed);
    reg.scalar(prefix + ".committed_loads", "committed loads",
               s.committedLoads);
    reg.scalar(prefix + ".committed_stores", "committed stores",
               s.committedStores);
    reg.scalar(prefix + ".issued_ops", "issued operations",
               s.issuedOps);
    reg.scalar(prefix + ".mispredicts",
               "mispredicted conditional branches", s.mispredicts);
    reg.scalar(prefix + ".indirect_redirects",
               "front-end redirects on indirect jumps",
               s.indirectRedirects);
    reg.scalar(prefix + ".tlb_walks", "base-TLB miss-handler runs",
               s.tlbWalks);
    reg.scalar(prefix + ".rob_full_stalls",
               "dispatch stalls on a full re-order buffer",
               s.robFullStalls);
    reg.scalar(prefix + ".lsq_full_stalls",
               "dispatch stalls on a full load/store queue",
               s.lsqFullStalls);
    reg.scalar(prefix + ".zero_issue_cycles",
               "cycles that issued nothing", s.zeroIssueCycles);
    reg.vector(prefix + ".idle",
               "zero-issue cycle classification by cause",
               {"empty", "src_wait", "fu_busy", "load_order", "walk",
                "other"},
               {&s.idleEmpty, &s.idleSrcWait, &s.idleFuBusy,
                &s.idleLoadOrder, &s.idleWalk, &s.idleOther});
    reg.formula(prefix + ".ipc", "committed instructions per cycle",
                [&s] { return s.ipc(); });
    reg.formula(prefix + ".issue_ipc", "issued operations per cycle",
                [&s] { return s.issueIpc(); });
    reg.histogram(prefix + ".mem_per_cycle",
                  "memory accesses requesting translation per cycle "
                  "(Figure 3 bandwidth demand)",
                  s.memPerCycle);
    branch::registerStats(reg, prefix + ".bpred", s.predictor);
    cache::registerStats(reg, prefix + ".icache", s.icache);
    cache::registerStats(reg, prefix + ".dcache", s.dcache);
}

} // namespace hbat::cpu
