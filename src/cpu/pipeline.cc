#include "cpu/pipeline.hh"

#include <algorithm>
#include <bit>

#include "common/log.hh"
#include "obs/trace.hh"

namespace hbat::cpu
{

using isa::FuClass;
using isa::Opcode;


Pipeline::Pipeline(const PipeConfig &config, FuncCore &core,
                   tlb::TranslationEngine &engine,
                   const vm::PageParams &pages)
    : cfg(config), core(core), engine(engine), pages(pages),
      fus(config.fus), predictor(), icache(config.icache),
      dcache(config.dcache), rob(config.robSize),
      engineObservesRegWrites(engine.observesRegWrites()),
      lsq(config.lsqSize), lookahead(2 * config.width),
      fetchQueue(config.fetchQueueSize)
{}

bool
Pipeline::producerDone(int slot, InstSeq seq) const
{
    if (slot < 0)
        return true;
    const Entry &e = rob[slot];
    if (!e.valid || e.dyn.seq != seq)
        return true;    // producer already retired
    return e.resultCycle <= now;
}

bool
Pipeline::srcsReady(const Entry &e) const
{
    // Scoreboard form of "every (scanned) source's producer is done":
    // dispatchStage seeds srcPending/srcReadyAt from the producers
    // (skipping the data operand of out-of-order stores, which issue
    // on their address operands alone) and wakeConsumers() keeps them
    // current, so no producer needs to be revisited here.
    return e.srcPending == 0 && e.srcReadyAt <= now;
}

void
Pipeline::wakeConsumers(Entry &p)
{
    // @p p's completion time just became known: resolve every source
    // chained on it. Chained consumers are always live — they are
    // younger than p and commit is in order, so none can have retired
    // (or had its slot reused) before p completes.
    for (int link = p.consumerHead; link >= 0;) {
        Entry &c = rob[link >> 2];
        const int s = link & 3;
        link = c.srcNext[s];
        c.srcNext[s] = -1;
        if (p.resultCycle > c.srcReadyAt)
            c.srcReadyAt = p.resultCycle;
        if (--c.srcPending == 0)
            setReady(int(&c - rob.data()));
    }
    p.consumerHead = -1;
}

bool
Pipeline::storeDataReady(const Entry &e) const
{
    if (e.dyn.dataSrc < 0)
        return true;
    return producerDone(e.srcSlot[e.dyn.dataSrc],
                        e.srcSeq[e.dyn.dataSrc]);
}

bool
Pipeline::olderAllComplete(size_t rob_pos) const
{
    for (size_t p = 0; p < rob_pos; ++p) {
        const Entry &e = at(p);
        if (e.resultCycle == kCycleNever || e.resultCycle > now)
            return false;
    }
    return true;
}

bool
Pipeline::olderStoresIssued(const Entry &load) const
{
    if (unissuedStores_ == 0)
        return true;    // no store anywhere is waiting on its address
    for (int slot : lsq) {
        const Entry &e = rob[slot];
        if (e.dyn.seq >= load.dyn.seq)
            break;
        if (e.dyn.isStore && !e.issued)
            return false;
    }
    return true;
}

void
Pipeline::commitStage()
{
    for (unsigned n = 0; n < cfg.width && robCount > 0; ++n) {
        Entry &e = at(0);
        if (e.resultCycle == kCycleNever || e.resultCycle > now)
            break;

        if (e.dyn.isStore) {
            // The store value is written into the data cache at
            // commit (Table 1) and needs a cache port.
            if (cachePortsUsed >= cfg.cachePorts)
                break;
            ++cachePortsUsed;
            dcache.access(e.paddr, true, now);
            lastCommittedStore = e.dyn.seq + 1;
            ++stats_.committedStores;
        }
        if (e.dyn.isLoad)
            ++stats_.committedLoads;

        // Feed register writes to designs that attach translations to
        // register values (pretranslation); skipped wholesale for the
        // designs that ignore them.
        for (int d = 0; engineObservesRegWrites && d < e.dyn.nDsts;
             ++d) {
            const uint8_t dst = e.dyn.dsts[d];
            if (dst >= 32)
                continue;   // FP registers never carry pointers
            RegIndex intSrcs[3];
            int nIntSrcs = 0;
            bool propagates;
            if (e.dyn.writesBase && dst == e.dyn.baseReg) {
                // Post-increment base update: pointer arithmetic on
                // the base register itself.
                propagates = true;
                intSrcs[nIntSrcs++] = e.dyn.baseReg;
            } else {
                propagates = e.dyn.propagatesPointer;
                for (int s = 0; s < e.dyn.nSrcs; ++s)
                    if (e.dyn.srcs[s] < 32)
                        intSrcs[nIntSrcs++] = RegIndex(e.dyn.srcs[s]);
            }
            engine.noteRegWrite(RegIndex(dst), intSrcs, nIntSrcs,
                                propagates);
        }

        if (e.dyn.isMem()) {
            hbat_assert(!lsq.empty() &&
                            lsq.front() == int(robHead),
                        "LSQ out of sync with ROB");
            lsq.pop_front();
        }
        if (e.dyn.op == Opcode::Halt)
            haltCommitted = true;

        HBAT_TRACE_EVENT(obs::kTraceCommit, now, "commit seq=",
                         e.dyn.seq, " pc=0x", std::hex, e.dyn.pc,
                         std::dec, " op=", isa::opName(e.dyn.op));
        HBAT_TRACE_EVENT(obs::kTraceLife, now, "life seq=", e.dyn.seq,
                         " pc=0x", std::hex, e.dyn.pc, std::dec,
                         " op=", isa::opName(e.dyn.op),
                         " dispatch=", e.dispatchCycle,
                         " issue=", e.issueCycle,
                         " done=", e.resultCycle, " commit=", now);

        if (cfg.pipeview) {
            obs::PipeviewRecord rec;
            rec.seq = e.dyn.seq;
            rec.pc = e.dyn.pc;
            rec.disasm = isa::opName(e.dyn.op);
            rec.fetch = e.fetchCycle;
            rec.decode = e.decodeCycle;
            rec.dispatch = e.dispatchCycle;
            rec.issue = e.issueCycle;
            rec.complete = e.resultCycle;
            rec.retire = now;
            rec.isMem = e.dyn.isMem();
            rec.isStore = e.dyn.isStore;
            rec.xlateReady = e.xlateReady;
            cfg.pipeview->retire(rec);
        }

        e.valid = false;
        if (++robHead == rob.size())
            robHead = 0;
        --robCount;
        if (issueScanFrom > 0)
            --issueScanFrom;    // positions shifted down one
        ++stats_.committed;
        cycleActivity_ = true;
    }
}

void
Pipeline::walkStage()
{
    if (walkActive) {
        if (now < walkDone)
            return;
        HBAT_TRACE_EVENT(obs::kTraceWalk, now, "walk done vpn=0x",
                         std::hex, walkVpn, std::dec);
        engine.fill(walkVpn, now);
        walkActive = false;
        cycleActivity_ = true;
        for (int slot : lsq) {
            Entry &e = rob[slot];
            if (e.phase == MemPhase::TlbMiss && e.missVpn == walkVpn) {
                e.phase = MemPhase::WaitXlate;
                e.xlateFrom = now;
                --tlbMissPending_;
            }
        }
        // Fall through: another miss may start its walk this cycle.
    }

    // Start the walk for the oldest outstanding miss once every older
    // instruction has completed ("30 cycle fixed TLB miss latency
    // after earlier-issued instructions complete", Table 1).
    if (tlbMissPending_ == 0)
        return;
    for (int slot : lsq) {
        Entry &e = rob[slot];
        if (e.phase != MemPhase::TlbMiss)
            continue;
        // Find its ROB position to check the older entries.
        size_t pos = size_t(slot) + rob.size() - robHead;
        if (pos >= rob.size())
            pos -= rob.size();
        if (olderAllComplete(pos)) {
            walkActive = true;
            walkVpn = e.missVpn;
            walkDone = now + cfg.tlbMissLatency;
            ++stats_.tlbWalks;
            cycleActivity_ = true;
            if (cfg.pcProfile) {
                // The initiating instruction carries the whole walk;
                // misses that ride the same fill are not re-billed.
                stats_.pcProfile.counts[e.dyn.pc].walkCycles +=
                    cfg.tlbMissLatency;
            }
            HBAT_TRACE_EVENT(obs::kTraceWalk, now,
                             "walk start seq=", e.dyn.seq, " vpn=0x",
                             std::hex, e.missVpn, std::dec,
                             " done@", walkDone);
        }
        break;  // only the oldest miss is considered
    }
}

void
Pipeline::attemptXlate(Entry &e)
{
    tlb::XlateRequest req;
    req.vpn = pages.vpn(e.dyn.effAddr);
    req.write = e.dyn.isStore;
    req.seq = e.dyn.seq;
    req.isLoad = e.dyn.isLoad;
    req.baseReg = e.dyn.baseReg;
    req.offsetHigh = e.dyn.offsetHigh;
    req.pc = e.dyn.pc;

    ++memReqsThisCycle;
    obs::PcXlateCounts *prof =
        cfg.pcProfile ? &stats_.pcProfile.counts[e.dyn.pc] : nullptr;
    if (prof)
        ++prof->requests;
    const tlb::Outcome out = engine.request(req, now);
    switch (out.kind) {
      case tlb::Outcome::Kind::NoPort:
        HBAT_TRACE_EVENT(obs::kTraceXlate, now, "xlate no-port seq=",
                         e.dyn.seq, " vpn=0x", std::hex, req.vpn,
                         std::dec);
        return;   // retry next cycle
      case tlb::Outcome::Kind::Miss:
        e.phase = MemPhase::TlbMiss;
        e.missVpn = req.vpn;
        ++tlbMissPending_;
        if (prof)
            ++prof->misses;
        HBAT_TRACE_EVENT(obs::kTraceXlate, now, "xlate miss seq=",
                         e.dyn.seq, " vpn=0x", std::hex, req.vpn,
                         std::dec);
        return;
      case tlb::Outcome::Kind::Hit:
        if (prof && out.piggybacked)
            ++prof->piggybackHits;
        HBAT_TRACE_EVENT(obs::kTraceXlate, now, "xlate hit seq=",
                         e.dyn.seq, " vpn=0x", std::hex, req.vpn,
                         " ppn=0x", out.ppn, std::dec,
                         " ready@", out.ready,
                         out.shielded ? " shielded" : "");
        e.xlateReady = out.ready;
        e.paddr = pages.physAddr(out.ppn, e.dyn.effAddr);
        if (e.dyn.isStore) {
            // The address is known; the store completes once its data
            // arrives (the cache write happens at commit).
            e.phase = MemPhase::WaitData;
        } else if (e.forwarded) {
            // Data comes from the matching store-queue entry; no
            // cache access, but the translation and the store's data
            // still gate it.
            e.phase = MemPhase::WaitFwd;
        } else if (e.blockStoreSeq > lastCommittedStore) {
            e.phase = MemPhase::WaitStore;
        } else {
            e.phase = MemPhase::WaitPort;
        }
        return;
    }
}

void
Pipeline::memStage()
{
    if (lsqActive_ == 0)
        return;     // no issued memory op is in flight
    for (int slot : lsq) {
        Entry &e = rob[slot];
        if (!e.issued || e.phase == MemPhase::Done)
            continue;
        // An entry may advance through several phases in one cycle
        // (translate, unblock, and access the cache), matching the
        // overlapped TLB/cache timing of Section 4.1.
        if (e.phase == MemPhase::WaitXlate && now >= e.xlateFrom)
            attemptXlate(e);
        if (e.phase == MemPhase::WaitData && storeDataReady(e)) {
            e.resultCycle = std::max(e.xlateReady, now) + 1;
            e.phase = MemPhase::Done;
            wakeConsumers(e);
            --lsqActive_;
            cycleActivity_ = true;
        }
        if (e.phase == MemPhase::WaitFwd) {
            // Complete when the forwarding store has its data (or has
            // already retired).
            const Entry &s = rob[e.fwdSlot];
            const bool gone =
                !s.valid || s.dyn.seq != e.fwdSeq;
            if (gone || (s.phase == MemPhase::Done &&
                         s.resultCycle <= now + 1)) {
                e.resultCycle = std::max(e.xlateReady, now) + 1;
                e.phase = MemPhase::Done;
                wakeConsumers(e);
                --lsqActive_;
                cycleActivity_ = true;
            }
        }
        if (e.phase == MemPhase::WaitStore &&
            e.blockStoreSeq <= lastCommittedStore) {
            e.phase = MemPhase::WaitPort;
            cycleActivity_ = true;
        }
        if (e.phase == MemPhase::WaitPort && now >= e.xlateReady &&
            cachePortsUsed < cfg.cachePorts) {
            ++cachePortsUsed;
            const cache::CacheAccess acc =
                dcache.access(e.paddr, false, now);
            e.resultCycle = acc.ready + 1;
            e.phase = MemPhase::Done;
            wakeConsumers(e);
            --lsqActive_;
            cycleActivity_ = true;
        }
    }
}

void
Pipeline::issueMem(Entry &e)
{
    e.phase = MemPhase::WaitXlate;
    e.xlateFrom = now + 1;
    ++lsqActive_;
    if (!e.dyn.isLoad)
        return;

    // Find the youngest older overlapping store in the LSQ.
    const VAddr lo = e.dyn.effAddr;
    const VAddr hi = lo + e.dyn.memSize;
    const Entry *match = nullptr;
    for (int slot : lsq) {
        const Entry &s = rob[slot];
        if (s.dyn.seq >= e.dyn.seq)
            break;
        if (!s.dyn.isStore)
            continue;
        const VAddr slo = s.dyn.effAddr;
        const VAddr shi = slo + s.dyn.memSize;
        if (lo < shi && slo < hi)
            match = &s;
    }
    if (match) {
        if (match->dyn.effAddr == e.dyn.effAddr &&
            match->dyn.memSize == e.dyn.memSize) {
            e.forwarded = true;     // store-to-load forwarding
            e.fwdSlot = int(match - rob.data());
            e.fwdSeq = match->dyn.seq;
        } else {
            // Partial overlap: wait until the store has written the
            // cache at commit.
            e.blockStoreSeq = match->dyn.seq + 1;
        }
    }
}

bool
Pipeline::tryIssueEntry(Entry &e, int slot)
{
    // The ready-set scan's per-candidate checks, in the same order as
    // the plain scan: dispatch-to-issue gap, sources, load ordering,
    // functional unit.
    if (now <= e.dispatchCycle)
        return false;
    if (e.srcReadyAt > now)
        return false;   // a source completes only in a future cycle
    if (e.dyn.isLoad && !olderStoresIssued(e))
        return false;
    const FuClass fu = e.dyn.fu;
    if (!fus.acquire(fu, now))
        return false;

    e.issued = true;
    e.issueCycle = now;
    clearReady(slot);
    --unissuedCount_;
    if (e.dyn.isStore)
        --unissuedStores_;
    ++stats_.issuedOps;
    cycleActivity_ = true;
    HBAT_TRACE_EVENT(obs::kTraceIssue, now, "issue seq=", e.dyn.seq,
                     " op=", isa::opName(e.dyn.op),
                     e.dyn.isMem() ? " mem" : "");

    if (e.dyn.isMem()) {
        issueMem(e);
    } else {
        e.resultCycle = now + FuPool::totalLatency(fu);
        wakeConsumers(e);
        if (e.mispredicted) {
            // Branch resolution: release the front end after the
            // misprediction penalty.
            frontEndBlockedUntil = e.resultCycle + cfg.mispredictPenalty;
            blockedOnBranch = false;
        }
    }
    return true;
}

unsigned
Pipeline::issueFromReadySet()
{
    // Walk only the issue candidates (see readySet_), oldest first:
    // slots robHead..63 precede slots 0..robHead-1 in age order.
    // Entries woken by an issue made during this very walk join the
    // set but are not visited from the stale masks — harmless, since
    // their results arrive in a future cycle and they could not issue
    // now anyway.
    unsigned issued = 0;
    const uint64_t older_mask = ~uint64_t(0) << robHead;
    uint64_t halves[2] = {readySet_ & older_mask,
                          readySet_ & ~older_mask};
    for (uint64_t m : halves) {
        while (m && issued < cfg.width) {
            const int slot = std::countr_zero(m);
            m &= m - 1;
            if (tryIssueEntry(rob[slot], slot))
                ++issued;
        }
        if (issued >= cfg.width)
            break;
    }
    return issued;
}

uint64_t *
Pipeline::blameScan()
{
    // Zero-issue cycle: recover the classification the plain
    // oldest-first scan would produce — the first unissued entry
    // whose failed check carries a blame (the dispatch-to-issue gap
    // carries none; such an entry defers to the next). Machine state
    // is exactly as issueFromReadySet() left it: nothing issued, and
    // a failed FU acquire reserves nothing, so re-running the checks
    // gives identical answers. Also advances issueScanFrom past the
    // issued prefix on the way.
    size_t pos = issueScanFrom;
    while (pos < robCount && at(pos).issued)
        ++pos;
    issueScanFrom = pos;
    for (; pos < robCount; ++pos) {
        Entry &e = at(pos);
        if (e.issued)
            continue;
        if (now <= e.dispatchCycle)
            continue;
        if (!srcsReady(e))
            return &stats_.idleSrcWait;
        if (e.dyn.isLoad && !olderStoresIssued(e))
            return &stats_.idleLoadOrder;
        if (!fus.acquire(e.dyn.fu, now))
            return &stats_.idleFuBusy;
        hbat_panic("zero-issue cycle with an issuable entry (seq ",
                   e.dyn.seq, ")");
    }
    return &stats_.idleOther;
}

void
Pipeline::issueStage()
{
    if (walkActive) {
        ++stats_.idleWalk;
        ++stats_.zeroIssueCycles;
        idleBucketThisCycle_ = &stats_.idleWalk;
        return;     // the software miss handler occupies the pipeline
    }

    if (!cfg.inOrder && rob.size() <= 64) {
        const unsigned ready_issued = issueFromReadySet();
        if (ready_issued == 0) {
            ++stats_.zeroIssueCycles;
            uint64_t *bucket =
                unissuedCount_ == 0 ? &stats_.idleEmpty : blameScan();
            ++*bucket;
            idleBucketThisCycle_ = bucket;
        }
        return;
    }

    // In-order issue (and the no-ready-set fallback for windows wider
    // than 64): the plain oldest-first scan.
    unsigned issued = 0;
    bool sawUnissued = false;
    uint64_t *reason = nullptr;
    auto blame = [&](uint64_t &ctr) {
        if (!reason)
            reason = &ctr;
    };

    // Oldest-first scan, starting past the all-issued prefix (see
    // issueScanFrom); the skipped entries could only ever `continue`.
    size_t firstLeftUnissued = SIZE_MAX;
    size_t pos = issueScanFrom;
    for (; pos < robCount && issued < cfg.width; ++pos) {
        Entry &e = at(pos);
        if (e.issued) {
            continue;
        }
        sawUnissued = true;
        bool canIssue = now > e.dispatchCycle;
        if (canIssue && !srcsReady(e)) {
            canIssue = false;
            blame(stats_.idleSrcWait);
        }

        if (canIssue && cfg.inOrder) {
            // No renaming: the previous writer of each destination
            // must have completed (WAW hazard).
            for (int d = 0; d < 2 && canIssue; ++d)
                canIssue = producerDone(e.dstPrevSlot[d],
                                        e.dstPrevSeq[d]);
            if (!canIssue)
                blame(stats_.idleSrcWait);
        }

        // Loads may execute only when all prior store addresses are
        // known (i.e. the stores have issued).
        if (canIssue && e.dyn.isLoad && !olderStoresIssued(e)) {
            canIssue = false;
            blame(stats_.idleLoadOrder);
        }

        const FuClass fu = e.dyn.fu;
        if (canIssue && !fus.acquire(fu, now)) {
            canIssue = false;
            blame(stats_.idleFuBusy);
        }

        if (!canIssue) {
            if (firstLeftUnissued == SIZE_MAX)
                firstLeftUnissued = pos;
            if (cfg.inOrder)
                break;  // strict program-order issue
            continue;
        }

        e.issued = true;
        e.issueCycle = now;
        clearReady(int(&e - rob.data()));
        --unissuedCount_;
        if (e.dyn.isStore)
            --unissuedStores_;
        ++issued;
        ++stats_.issuedOps;
        cycleActivity_ = true;
        HBAT_TRACE_EVENT(obs::kTraceIssue, now, "issue seq=", e.dyn.seq,
                         " op=", isa::opName(e.dyn.op),
                         e.dyn.isMem() ? " mem" : "");

        if (e.dyn.isMem()) {
            issueMem(e);
        } else {
            e.resultCycle = now + FuPool::totalLatency(fu);
            wakeConsumers(e);
            if (e.mispredicted) {
                // Branch resolution: release the front end after the
                // misprediction penalty.
                frontEndBlockedUntil =
                    e.resultCycle + cfg.mispredictPenalty;
                blockedOnBranch = false;
            }
        }
    }

    // Everything below the first entry that stayed unissued (or below
    // wherever the scan stopped, if none did) has issued.
    issueScanFrom =
        firstLeftUnissued != SIZE_MAX ? firstLeftUnissued : pos;

    if (issued == 0) {
        ++stats_.zeroIssueCycles;
        uint64_t *bucket = !sawUnissued ? &stats_.idleEmpty
                           : reason     ? reason
                                        : &stats_.idleOther;
        ++*bucket;
        idleBucketThisCycle_ = bucket;
    }
}

void
Pipeline::dispatchStage()
{
    if (walkActive)
        return;

    for (unsigned n = 0; n < cfg.width; ++n) {
        if (fetchQueue.empty() || fetchQueue.front().availAt > now)
            return;
        if (robCount >= rob.size()) {
            ++stats_.robFullStalls;
            repeatRobStall_ = true;
            return;
        }
        const DynInst &dyn = fetchQueue.front().dyn;
        if (dyn.isMem() && lsq.size() >= cfg.lsqSize) {
            ++stats_.lsqFullStalls;
            repeatLsqStall_ = true;
            return;
        }

        size_t tail = robHead + robCount;
        if (tail >= rob.size())
            tail -= rob.size();
        const int slot = int(tail);
        Entry &e = rob[slot];
        // Field-wise reset: cheaper than `e = Entry{}` (a ~190-byte
        // struct store per dispatch). Every field the stages read is
        // (re)assigned here or in the operand loops below; dstPrev*
        // defaults matter because the in-order WAW check reads both
        // elements regardless of nDsts.
        e.dyn = dyn;
        e.valid = true;
        e.issued = false;
        e.fetchCycle = fetchQueue.front().fetchCycle;
        e.decodeCycle = fetchQueue.front().availAt;
        e.dispatchCycle = now;
        e.issueCycle = kCycleNever;
        e.resultCycle = kCycleNever;
        e.srcPending = 0;
        e.srcReadyAt = 0;
        e.consumerHead = -1;
        e.dstPrevSlot[0] = e.dstPrevSlot[1] = -1;
        e.dstPrevSeq[0] = e.dstPrevSeq[1] = 0;
        e.phase = MemPhase::None;
        e.xlateFrom = 0;
        e.xlateReady = 0;
        e.paddr = 0;
        e.missVpn = 0;
        e.forwarded = false;
        e.fwdSlot = -1;
        e.fwdSeq = 0;
        e.blockStoreSeq = 0;
        e.mispredicted = fetchQueue.front().mispredicted;

        for (int s = 0; s < e.dyn.nSrcs; ++s) {
            const Writer &w = regMap[e.dyn.srcs[s]];
            e.srcSlot[s] = w.slot;
            e.srcSeq[s] = w.seq;
            // Seed the issue-readiness scoreboard (srcsReady()):
            // known completion times fold into srcReadyAt; producers
            // still in flight get this entry chained for wake-up.
            if (!cfg.inOrder && e.dyn.isStore && s == e.dyn.dataSrc)
                continue;
            if (w.slot < 0)
                continue;
            Entry &p = rob[w.slot];
            if (!p.valid || p.dyn.seq != w.seq)
                continue;   // producer already retired
            if (p.resultCycle != kCycleNever) {
                if (p.resultCycle > e.srcReadyAt)
                    e.srcReadyAt = p.resultCycle;
            } else {
                e.srcNext[s] = p.consumerHead;
                p.consumerHead = slot * 4 + s;
                ++e.srcPending;
            }
        }
        for (int d = 0; d < e.dyn.nDsts; ++d) {
            Writer &w = regMap[e.dyn.dsts[d]];
            e.dstPrevSlot[d] = w.slot;
            e.dstPrevSeq[d] = w.seq;
            w.slot = slot;
            w.seq = e.dyn.seq;
        }

        ++unissuedCount_;
        if (e.srcPending == 0)
            setReady(slot);
        else
            clearReady(slot);

        if (e.dyn.isMem()) {
            lsq.push_back(slot);
            if (e.dyn.isStore)
                ++unissuedStores_;
        }
        ++robCount;
        fetchQueue.pop_front();
        cycleActivity_ = true;
    }
}

void
Pipeline::refillLookahead()
{
    while (lookahead.size() < 2 * cfg.width && !core.halted()) {
        core.stepInto(lookahead.emplace_back());
        cycleActivity_ = true;
    }
}

void
Pipeline::fetchStage()
{
    if (blockedOnBranch || frontEndBlockedUntil > now)
        return;
    refillLookahead();
    if (lookahead.empty())
        return;

    const uint64_t blockBytes = cfg.icache.blockBytes;
    const uint64_t block = lookahead.front().pc / blockBytes;

    // One I-cache access covers the whole fetch group. Instruction
    // addresses index the cache directly (a perfect single-ported
    // instruction TLB, per the paper's scope).
    const cache::CacheAccess iacc =
        icache.access(lookahead.front().pc, false, now);
    const Cycle availAt = iacc.ready + 1;
    if (!iacc.hit) {
        frontEndBlockedUntil = iacc.ready;
        cycleActivity_ = true;
    }

    unsigned controls = 0;
    unsigned pushed = 0;
    for (unsigned n = 0; n < cfg.width; ++n) {
        if (lookahead.empty())
            break;
        const DynInst &d = lookahead.front();
        if (d.pc / blockBytes != block)
            break;
        if (fetchQueue.size() >= cfg.fetchQueueSize)
            break;

        bool mispred = false;
        const bool isCtrl = d.isBranch || d.isJump;
        if (d.isBranch) {
            const bool pred = predictor.predict(d.pc);
            predictor.update(d.pc, d.taken, pred);
            mispred = pred != d.taken;
            if (mispred)
                ++stats_.mispredicts;
        } else if (d.isIndirect) {
            // No branch-target buffer models indirect targets; the
            // front end redirects when the jump resolves.
            mispred = true;
            ++stats_.indirectRedirects;
        }
        if (isCtrl)
            ++controls;

        HBAT_TRACE_EVENT(obs::kTraceFetch, now, "fetch seq=", d.seq,
                         " pc=0x", std::hex, d.pc, std::dec, " op=",
                         isa::opName(d.op), mispred ? " mispred" : "");
        Fetched &f = fetchQueue.emplace_back();
        f.dyn = d;
        f.fetchCycle = now;
        f.availAt = availAt;
        f.mispredicted = mispred;
        lookahead.pop_front();
        ++pushed;
        cycleActivity_ = true;

        if (mispred) {
            blockedOnBranch = true;
            break;
        }
        // The collapsing buffer supports two predictions per cycle
        // within one cache block.
        if (isCtrl && controls >= 2)
            break;
    }

    // A full fetch queue leaves fetch re-reading the same resident
    // I-cache block every cycle: a pure hit with no pushes is a
    // repeatable per-cycle pattern a skipped span can replay in bulk
    // (recordRepeatHits). A miss or MSHR merge changed state above.
    if (iacc.hit && pushed == 0) {
        repeatIcacheHit_ = true;
        repeatIcachePc_ = lookahead.front().pc;
    }
}

bool
Pipeline::done() const
{
    return haltCommitted;
}

Cycle
Pipeline::nextEventCycle()
{
    // As soon as any threshold lands on now + 1 the caller cannot
    // skip (a span needs t > now + 1), so bail out immediately — the
    // common case on cycles that are quiescent for exactly one cycle.
    const Cycle limit = now + 1;
    Cycle t = kCycleNever;
    const auto consider = [&](Cycle c) {
        if (c > now && c < t)
            t = c;
        return t == limit;
    };

    if (walkActive && consider(walkDone))
        return t;

    for (size_t pos = 0; pos < robCount; ++pos) {
        const Entry &e = at(pos);
        if (e.resultCycle != kCycleNever) {
            // Completion unblocks commit, dependent issue, and the
            // walk's older-all-complete gate; WaitFwd loads test
            // `resultCycle <= now + 1`, hence the minus-one.
            if (consider(e.resultCycle - 1) || consider(e.resultCycle))
                return t;
        }
        if (!e.issued && consider(e.dispatchCycle + 1))
            return t;   // dispatch-to-issue gap
        if (e.phase == MemPhase::WaitXlate) {
            if (consider(e.xlateFrom))
                return t;
        } else if (e.phase == MemPhase::WaitPort) {
            if (consider(e.xlateReady))
                return t;
        }
    }

    if (!fetchQueue.empty() && consider(fetchQueue.front().availAt))
        return t;
    if (consider(frontEndBlockedUntil))
        return t;
    if (consider(fus.nextFreeCycle(now)))
        return t;
    if (consider(icache.nextFillCycle(now)))
        return t;
    if (consider(dcache.nextFillCycle(now)))
        return t;
    consider(engine.nextEventCycle(now));
    return t;
}

void
Pipeline::maybeIntervalSample()
{
    if (now + 1 != nextSampleAt_)
        return;
    stats_.cycles = now + 1;    // the one counter run() updates late
    if (cfg.onInterval)
        cfg.onInterval(now + 1);
    nextSampleAt_ += cfg.statInterval;
}

void
Pipeline::accountSpanChunk(uint64_t k)
{
    stats_.memPerCycle.recordMany(0, k);
    stats_.zeroIssueCycles += k;
    *idleBucketThisCycle_ += k;
    if (repeatRobStall_)
        stats_.robFullStalls += k;
    if (repeatLsqStall_)
        stats_.lsqFullStalls += k;
    if (repeatIcacheHit_)
        icache.recordRepeatHits(repeatIcachePc_, k, now + k);
}

PipeStats
Pipeline::run(uint64_t max_insts)
{
    regMap.assign(64, Writer{});
    lastCommittedStore = 0;
    haltCommitted = false;
    if (cfg.statInterval != 0)
        nextSampleAt_ = cfg.statInterval;
    stats_.phases.enabled = cfg.selfProfile;

    Cycle lastCommitCycle = 0;
    uint64_t lastCommitted = 0;
    bool warmupPending = bool(cfg.onWarmupDone);

    // Phase timer: a no-op branch per stage unless --self-profile.
    const bool prof = cfg.selfProfile;
    const auto timed = [&](obs::SimPhase p, auto &&stage) {
        if (!prof) {
            stage();
            return;
        }
        const double t0 = obs::phaseClock();
        stage();
        stats_.phases[p] += obs::phaseClock() - t0;
    };
    const double runT0 = prof ? obs::phaseClock() : 0.0;

    while (!done() && stats_.committed < max_insts) {
        engine.beginCycle(now);
        cachePortsUsed = 0;
        memReqsThisCycle = 0;
        cycleActivity_ = false;
        idleBucketThisCycle_ = nullptr;
        repeatRobStall_ = false;
        repeatLsqStall_ = false;
        repeatIcacheHit_ = false;

        timed(obs::SimPhase::Commit, [&] { commitStage(); });
        timed(obs::SimPhase::Walk, [&] { walkStage(); });
        timed(obs::SimPhase::Mem, [&] { memStage(); });
        timed(obs::SimPhase::Issue, [&] { issueStage(); });
        timed(obs::SimPhase::Dispatch, [&] { dispatchStage(); });
        timed(obs::SimPhase::Fetch, [&] { fetchStage(); });

        stats_.memPerCycle.record(memReqsThisCycle);

        if (stats_.committed != lastCommitted) {
            lastCommitted = stats_.committed;
            lastCommitCycle = now;
        }
        hbat_assert(now - lastCommitCycle < 200000,
                    "pipeline deadlock at cycle ", now, " (committed ",
                    stats_.committed, ")");

        // Warmup boundary (sampled simulation): commit counts only
        // move in commitStage, so testing after the stages catches the
        // crossing on the exact cycle it happens.
        if (warmupPending && stats_.committed >= cfg.warmupInsts) {
            warmupPending = false;
            stats_.cycles = now + 1;    // as in maybeIntervalSample()
            cfg.onWarmupDone(now + 1);
        }

        // This cycle's deltas are complete: sample before any skip.
        maybeIntervalSample();

        // Idle-cycle skip (DESIGN.md §9). A cycle with no activity and
        // no translation requests is a template: with all inputs to the
        // stages' time comparisons frozen, every cycle before the next
        // event would replay it bit for bit. Jump there, bulk-adding
        // the per-cycle deltas the replays would have made — chunked at
        // interval-sampling boundaries, so the time-series splits a
        // span exactly where the simulated cycles would have. With
        // skipping off, still detect and count each span once (guarded
        // by skipAccountedUntil_) so skip stats are mode-invariant.
        if (!cycleActivity_ && memReqsThisCycle == 0 &&
            now >= skipAccountedUntil_) {
            const double t0 = prof ? obs::phaseClock() : 0.0;
            const Cycle t = nextEventCycle();
            if (t != kCycleNever && t > now + 1) {
                const uint64_t n = t - now - 1;
                stats_.skippedCycles += n;
                stats_.skipLength.record(n);
                if (cfg.idleSkip) {
                    hbat_assert(idleBucketThisCycle_,
                                "quiescent cycle with no idle blame");
                    uint64_t rem = n;
                    while (rem > 0) {
                        uint64_t chunk = rem;
                        if (nextSampleAt_ != kCycleNever &&
                            nextSampleAt_ - 1 - now < chunk)
                            chunk = nextSampleAt_ - 1 - now;
                        accountSpanChunk(chunk);
                        now += chunk;
                        rem -= chunk;
                        maybeIntervalSample();
                    }
                } else {
                    skipAccountedUntil_ = t;
                }
            }
            if (prof)
                stats_.phases[obs::SimPhase::Skip] +=
                    obs::phaseClock() - t0;
        }
        ++now;
    }

    stats_.cycles = now;
    if (prof)
        stats_.phases.totalSeconds = obs::phaseClock() - runT0;

    // Final partial interval: the run ended between boundaries.
    if (cfg.statInterval != 0 && cfg.onInterval &&
        now % cfg.statInterval != 0)
        cfg.onInterval(now);
    stats_.predictor = predictor.stats();
    stats_.xlate = engine.stats();
    stats_.icache = icache.stats();
    stats_.dcache = dcache.stats();

    // Every zero-issue cycle must be blamed on exactly one cause.
    hbat_assert(stats_.idleSum() == stats_.zeroIssueCycles,
                "zero-issue classification out of sync: ",
                stats_.idleSum(), " classified vs ",
                stats_.zeroIssueCycles, " zero-issue cycles");
    return stats_;
}

namespace
{

/**
 * The PipeStats-proper registrations (everything except the
 * predictor/cache sub-structs, which have live-vs-copy variants).
 */
void
registerPipeScalars(obs::StatRegistry &reg, const std::string &prefix,
                    const PipeStats &s)
{
    reg.scalar(prefix + ".cycles", "simulated cycles", s.cycles);
    reg.scalar(prefix + ".committed", "committed instructions",
               s.committed);
    reg.scalar(prefix + ".committed_loads", "committed loads",
               s.committedLoads);
    reg.scalar(prefix + ".committed_stores", "committed stores",
               s.committedStores);
    reg.scalar(prefix + ".issued_ops", "issued operations",
               s.issuedOps);
    reg.scalar(prefix + ".mispredicts",
               "mispredicted conditional branches", s.mispredicts);
    reg.scalar(prefix + ".indirect_redirects",
               "front-end redirects on indirect jumps",
               s.indirectRedirects);
    reg.scalar(prefix + ".tlb_walks", "base-TLB miss-handler runs",
               s.tlbWalks);
    reg.scalar(prefix + ".rob_full_stalls",
               "dispatch stalls on a full re-order buffer",
               s.robFullStalls);
    reg.scalar(prefix + ".lsq_full_stalls",
               "dispatch stalls on a full load/store queue",
               s.lsqFullStalls);
    reg.scalar(prefix + ".zero_issue_cycles",
               "cycles that issued nothing", s.zeroIssueCycles);
    reg.scalar(prefix + ".skipped_cycles",
               "idle cycles accounted in bulk instead of simulated "
               "(detected even with skipping off)",
               s.skippedCycles);
    reg.histogram(prefix + ".skip_length",
                  "lengths of skippable idle spans (cycles)",
                  s.skipLength);
    reg.vector(prefix + ".idle",
               "zero-issue cycle classification by cause",
               {"empty", "src_wait", "fu_busy", "load_order", "walk",
                "other"},
               {&s.idleEmpty, &s.idleSrcWait, &s.idleFuBusy,
                &s.idleLoadOrder, &s.idleWalk, &s.idleOther});
    reg.formula(prefix + ".ipc", "committed instructions per cycle",
                [&s] { return s.ipc(); });
    reg.formula(prefix + ".issue_ipc", "issued operations per cycle",
                [&s] { return s.issueIpc(); });
    reg.histogram(prefix + ".mem_per_cycle",
                  "memory accesses requesting translation per cycle "
                  "(Figure 3 bandwidth demand)",
                  s.memPerCycle);
}

} // namespace

void
registerStats(obs::StatRegistry &reg, const std::string &prefix,
              const PipeStats &s)
{
    registerPipeScalars(reg, prefix, s);
    branch::registerStats(reg, prefix + ".bpred", s.predictor);
    cache::registerStats(reg, prefix + ".icache", s.icache);
    cache::registerStats(reg, prefix + ".dcache", s.dcache);
}

void
Pipeline::registerStats(obs::StatRegistry &reg,
                        const std::string &prefix) const
{
    // Same names/values as the free overload, but against the live
    // counters — the predictor and caches hold theirs until run()
    // copies them into PipeStats at the very end.
    registerPipeScalars(reg, prefix, stats_);
    branch::registerStats(reg, prefix + ".bpred", predictor.stats());
    cache::registerStats(reg, prefix + ".icache", icache.stats());
    cache::registerStats(reg, prefix + ".dcache", dcache.stats());
}

} // namespace hbat::cpu
