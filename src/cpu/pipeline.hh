/**
 * @file
 * The 8-way superscalar timing model (Table 1).
 *
 * One class implements both issue disciplines:
 *
 *  - out-of-order: 64-entry re-order buffer with implicit renaming,
 *    32-entry load/store queue, loads execute once all prior store
 *    addresses are known, store-to-load forwarding, 8-wide in-order
 *    commit;
 *  - in-order: issue strictly in program order with no renaming
 *    (stall on any register hazard), out-of-order completion.
 *
 * Memory timing: a load/store unit performs address generation in its
 * issue cycle; translation is requested from the configured
 * TranslationEngine the following cycle (fully overlapped with the
 * data-cache access on a same-cycle hit, per Section 4.1). Translation
 * port conflicts retry cycle by cycle, oldest first. A base-TLB miss
 * waits until all older instructions complete, then runs the fixed
 * 30-cycle handler (which serializes the pipeline) and retries.
 *
 * The front end fetches up to 8 instructions per cycle from one
 * 32-byte I-cache block, crossing at most two control-flow
 * instructions (the two-predictions-per-cycle collapsing buffer of
 * Section 4.1). Mispredicted conditional branches and indirect jumps
 * block fetch until they resolve plus the 3-cycle penalty.
 */

#ifndef HBAT_CPU_PIPELINE_HH
#define HBAT_CPU_PIPELINE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ring_queue.hh"

#include "branch/gap_predictor.hh"
#include "cache/cache_model.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/fu_pool.hh"
#include "cpu/func_core.hh"
#include "obs/pc_profile.hh"
#include "obs/pipeview.hh"
#include "obs/self_profile.hh"
#include "tlb/xlate.hh"

namespace hbat::cpu
{

/** Pipeline configuration (defaults = Table 1). */
struct PipeConfig
{
    bool inOrder = false;
    unsigned width = 8;             ///< fetch/issue/commit width
    unsigned robSize = 64;
    unsigned lsqSize = 32;
    unsigned fetchQueueSize = 16;
    unsigned cachePorts = 4;        ///< D-cache ports per cycle
    Cycle mispredictPenalty = 3;
    Cycle tlbMissLatency = 30;

    /**
     * Jump the clock over provably idle spans (see DESIGN.md §9).
     * Pure host-side speed: every reported statistic is bit-identical
     * with skipping off — the skipped cycles' stat deltas are
     * bulk-accounted instead of simulated one by one.
     */
    bool idleSkip = true;

    /// @name Observability hooks (all off by default; zero hot-path
    /// cost when off)
    /// @{
    /**
     * Interval stat sampling: invoke onInterval each time the count of
     * completed cycles reaches a multiple of statInterval (0 = off).
     * The hook typically snapshots a StatRegistry built over the live
     * counters. Boundaries are exact under idle-cycle skipping: a
     * bulk-accounted span crossing a boundary is split at it, so the
     * series is bit-identical to the same run with skipping off.
     */
    uint64_t statInterval = 0;
    std::function<void(Cycle)> onInterval;

    /**
     * Measurement-boundary hook for sampled simulation (DESIGN.md
     * §14): invoke onWarmupDone exactly once, at the end of the first
     * cycle whose committed-instruction count has reached warmupInsts
     * (with warmupInsts = 0, after the first cycle). As with
     * onInterval, stats a registry snapshot would read are refreshed
     * first, and the boundary is exact under idle-cycle skipping —
     * committed counts are frozen across a skipped span, so a span
     * never crosses the boundary. Unset = off.
     */
    uint64_t warmupInsts = 0;
    std::function<void(Cycle)> onWarmupDone;

    /** Record the per-PC translation profile (PipeStats::pcProfile). */
    bool pcProfile = false;

    /** Emit an O3PipeView lifecycle block per retired instruction. */
    obs::PipeviewWriter *pipeview = nullptr;

    /** Accumulate host-time phase timers (PipeStats::phases). */
    bool selfProfile = false;
    /// @}

    FuPoolConfig fus;
    cache::CacheConfig icache;
    cache::CacheConfig dcache;
};

/** End-of-run results. */
struct PipeStats
{
    Cycle cycles = 0;
    uint64_t committed = 0;
    uint64_t committedLoads = 0;
    uint64_t committedStores = 0;
    uint64_t issuedOps = 0;
    uint64_t mispredicts = 0;
    uint64_t indirectRedirects = 0;
    uint64_t tlbWalks = 0;
    uint64_t robFullStalls = 0;
    uint64_t lsqFullStalls = 0;

    /// @name Idle-cycle skipping (host-side; identical in both modes)
    /// @{
    /**
     * Cycles accounted in bulk instead of simulated. With skipping
     * disabled the pipeline still *detects* every skippable span and
     * counts it here (it just simulates the cycles anyway), so this
     * pair of stats — like all others — is mode-invariant.
     */
    uint64_t skippedCycles = 0;
    obs::Histogram skipLength{32};  ///< span lengths, buckets 0..30 + overflow
    /// @}

    /// @name Zero-issue cycle classification (diagnostics)
    /// @{
    uint64_t zeroIssueCycles = 0;   ///< cycles that issued nothing
    uint64_t idleEmpty = 0;         ///< nothing in the window
    uint64_t idleSrcWait = 0;       ///< oldest unissued waits on operands
    uint64_t idleFuBusy = 0;        ///< oldest unissued waits on an FU
    uint64_t idleLoadOrder = 0;     ///< load waits for older store addrs
    uint64_t idleWalk = 0;          ///< TLB miss handler running
    uint64_t idleOther = 0;

    /**
     * Sum of the classification counters; the pipeline asserts this
     * equals zeroIssueCycles at end of run (every zero-issue cycle is
     * blamed on exactly one cause).
     */
    uint64_t
    idleSum() const
    {
        return idleEmpty + idleSrcWait + idleFuBusy + idleLoadOrder +
               idleWalk + idleOther;
    }
    /// @}

    /**
     * Per-cycle data-translation demand: how many memory accesses
     * requested translation each cycle (including conflict retries).
     * Reproduces the bandwidth-demand distribution of the paper's
     * Figure 3; buckets 0..8 plus overflow.
     */
    obs::Histogram memPerCycle{10};

    branch::PredictorStats predictor;
    tlb::XlateStats xlate;
    cache::CacheStats icache;
    cache::CacheStats dcache;

    /** Per-PC translation attribution (empty unless PipeConfig::
     *  pcProfile; never registered — reported via topK()). */
    obs::PcProfile pcProfile;

    /** Host-time phase timers (idle unless PipeConfig::selfProfile;
     *  non-deterministic, so never registered in the registry). */
    obs::PhaseProfile phases;

    double ipc() const { return cycles ? double(committed) / double(cycles) : 0.0; }
    double issueIpc() const { return cycles ? double(issuedOps) / double(cycles) : 0.0; }
};

/**
 * Register every PipeStats counter — including the predictor, both
 * caches, and the per-cycle memory-demand histogram, but *not* the
 * xlate sub-struct (the live TranslationEngine registers those, so
 * design families can add their structure-specific stats).
 */
void registerStats(obs::StatRegistry &reg, const std::string &prefix,
                   const PipeStats &s);

/** The cycle-stepped timing model. */
class Pipeline
{
  public:
    /**
     * @param core functional core supplying the instruction stream
     * @param engine the address-translation design under test
     */
    Pipeline(const PipeConfig &config, FuncCore &core,
             tlb::TranslationEngine &engine,
             const vm::PageParams &pages);

    /**
     * Run until the program halts or @p max_insts commit.
     * @return final statistics.
     */
    PipeStats run(uint64_t max_insts = ~uint64_t(0));

    /**
     * Register the pipeline's counters under @p prefix against the
     * *live* state — this pipeline, its predictor, and both caches —
     * so the registry can be snapshot mid-run (interval sampling).
     * Identical names and values to the free registerStats() overload
     * on the returned PipeStats; PipeStats::cycles is refreshed before
     * each onInterval callback. Register the translation engine
     * separately (it owns its design-specific stats).
     */
    void registerStats(obs::StatRegistry &reg,
                       const std::string &prefix) const;

  private:
    /// Memory-access progress of an in-flight load/store.
    enum class MemPhase : uint8_t
    {
        None,           ///< not a memory op / not yet issued
        WaitXlate,      ///< requesting translation each cycle
        TlbMiss,        ///< waiting for the miss handler
        WaitPort,       ///< translated load waiting for a cache port
        WaitStore,      ///< load blocked on an overlapping store
        WaitData,       ///< translated store waiting for its data
        WaitFwd,        ///< forwarded load waiting for the store data
        Done
    };

    struct Entry
    {
        DynInst dyn;
        bool valid = false;
        bool issued = false;
        Cycle fetchCycle = 0;   ///< front end read the I-cache block
        Cycle decodeCycle = 0;  ///< fetch group available to dispatch
        Cycle dispatchCycle = 0;
        Cycle issueCycle = kCycleNever;
        Cycle resultCycle = kCycleNever;

        // Producers of each source (ROB slot + seq for liveness).
        int srcSlot[3] = {-1, -1, -1};
        InstSeq srcSeq[3] = {0, 0, 0};

        /**
         * Issue-readiness scoreboard. At dispatch, sources whose
         * producer already has a completion time fold it into
         * srcReadyAt; the rest are pending — the entry sits on each
         * such producer's consumer chain and srcPending counts them.
         * wakeConsumers() resolves a pending source the moment the
         * producer's resultCycle becomes known (ALU issue, memory
         * Done), so srcsReady() is the O(1) test
         * `srcPending == 0 && srcReadyAt <= now` instead of a
         * pointer-chasing poll over the producers every scan.
         */
        uint8_t srcPending = 0;
        Cycle srcReadyAt = 0;   ///< max known producer resultCycle
        int consumerHead = -1;  ///< head of my consumer chain
        /** Chain links, one per source: next (slot * 4 + src). */
        int srcNext[3] = {-1, -1, -1};
        // Previous writers of each destination (in-order WAW check).
        int dstPrevSlot[2] = {-1, -1};
        InstSeq dstPrevSeq[2] = {0, 0};

        // Memory state.
        MemPhase phase = MemPhase::None;
        Cycle xlateFrom = 0;    ///< earliest translation request cycle
        Cycle xlateReady = 0;   ///< translation available (cache may go)
        PAddr paddr = 0;
        Vpn missVpn = 0;
        bool forwarded = false;
        int fwdSlot = -1;           ///< forwarding store's ROB slot
        InstSeq fwdSeq = 0;
        /** WaitStore: (seq + 1) of the store to wait out; 0 = none. */
        InstSeq blockStoreSeq = 0;

        // Control state.
        bool mispredicted = false;
    };

    /// @name Per-cycle stages
    /// @{
    void commitStage();
    void walkStage();
    void memStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();
    /// @}

    bool srcsReady(const Entry &e) const;
    void wakeConsumers(Entry &p);
    unsigned issueFromReadySet();
    bool tryIssueEntry(Entry &e, int slot);
    uint64_t *blameScan();
    bool storeDataReady(const Entry &e) const;
    bool producerDone(int slot, InstSeq seq) const;
    bool olderAllComplete(size_t rob_pos) const;
    bool olderStoresIssued(const Entry &load) const;
    void attemptXlate(Entry &e);
    void issueMem(Entry &e);
    bool done() const;
    void refillLookahead();

    /**
     * Fire the interval-sampling hook when the count of completed
     * cycles (`now + 1`) has reached the next boundary; no-op
     * otherwise. Refreshes stats_.cycles first so the live registry
     * reads the boundary's cycle count.
     */
    void maybeIntervalSample();

    /**
     * Bulk-account @p k replayed cycles of the current quiescent span
     * (the per-cycle deltas `k` repeats of the template cycle would
     * have made). `now` has not yet advanced past the chunk.
     */
    void accountSpanChunk(uint64_t k);

    /**
     * The earliest future cycle at which any time-comparison in the
     * stage code can change its answer: walk completion, every
     * in-flight result (and result minus one, for the forwarding
     * look-ahead), translation request/ready cycles, fetch-queue
     * availability, front-end unblock, FU frees, cache fills, and the
     * engine's own hook. With the machine quiescent, every cycle
     * strictly before the returned value is a bit-identical repeat of
     * the current one. kCycleNever when nothing is pending.
     */
    Cycle nextEventCycle();

    /**
     * The ROB entry @p pos slots past the head. @p pos is always less
     * than the ROB size, so the wrap is a compare-and-subtract rather
     * than a modulo — this runs O(window) times per simulated cycle.
     */
    Entry &
    at(size_t pos)
    {
        size_t i = robHead + pos;
        if (i >= rob.size())
            i -= rob.size();
        return rob[i];
    }

    const Entry &
    at(size_t pos) const
    {
        size_t i = robHead + pos;
        if (i >= rob.size())
            i -= rob.size();
        return rob[i];
    }

    PipeConfig cfg;
    FuncCore &core;
    tlb::TranslationEngine &engine;
    vm::PageParams pages;

    FuPool fus;
    branch::GapPredictor predictor;
    cache::CacheModel icache;
    cache::CacheModel dcache;

    // Re-order buffer (circular).
    std::vector<Entry> rob;
    size_t robHead = 0;
    size_t robCount = 0;

    /**
     * Issue-scan hint: every ROB position below this is already
     * issued (entries never un-issue), so issueStage starts its
     * oldest-first scan here instead of walking the full window each
     * cycle. commitStage shifts it down as entries retire.
     */
    size_t issueScanFrom = 0;

    /** Cached engine.observesRegWrites() (one virtual call per run). */
    const bool engineObservesRegWrites;

    // Load/store queue: ROB slots of in-flight memory ops, in order.
    // All three in-flight queues are fixed-capacity rings sized from
    // the machine configuration — the arenas are allocated once at
    // construction, so the cycle loop never touches the heap.
    RingQueue<int> lsq;

    /**
     * LSQ entries in TlbMiss phase. Lets walkStage skip its
     * oldest-miss scan on the (common) cycles with no miss pending.
     */
    unsigned tlbMissPending_ = 0;

    /**
     * Issued LSQ entries not yet Done. Lets memStage return
     * immediately on cycles with no memory op in flight.
     */
    unsigned lsqActive_ = 0;

    /**
     * Dispatched stores whose address has not issued yet. When zero,
     * olderStoresIssued() is trivially true and skips its LSQ scan.
     */
    unsigned unissuedStores_ = 0;

    /** Dispatched entries not yet issued (all classes). */
    unsigned unissuedCount_ = 0;

    /**
     * Issue candidates: bit(slot) is set iff the entry is live,
     * unissued, and has no pending source (srcPending == 0). The
     * out-of-order issue scan walks only these bits oldest-first
     * (rotating the word by robHead) instead of visiting every window
     * entry — the blocked majority of the window costs nothing per
     * cycle. Kept exact by dispatchStage (seed), wakeConsumers()
     * (srcPending hits zero), and issue (clear); used only when the
     * window fits one word (robSize <= 64, the only configuration in
     * use — larger windows fall back to the plain scan).
     */
    uint64_t readySet_ = 0;

    void
    setReady(int slot)
    {
        readySet_ |= uint64_t(1) << (unsigned(slot) & 63);
    }

    void
    clearReady(int slot)
    {
        readySet_ &= ~(uint64_t(1) << (unsigned(slot) & 63));
    }

    // Fetch.
    struct Fetched
    {
        DynInst dyn;
        Cycle fetchCycle;
        Cycle availAt;
        bool mispredicted;
    };
    RingQueue<DynInst> lookahead;
    RingQueue<Fetched> fetchQueue;
    Cycle frontEndBlockedUntil = 0;
    bool blockedOnBranch = false;   ///< waiting for a branch to resolve

    // TLB miss handler (one walk at a time; serializes the machine).
    bool walkActive = false;
    Vpn walkVpn = 0;
    Cycle walkDone = 0;

    Cycle now = 0;
    unsigned cachePortsUsed = 0;
    unsigned memReqsThisCycle = 0;  ///< translation demand (Figure 3)

    /// @name Idle-skip bookkeeping (reset every cycle by run())
    /// @{
    /** Any state-changing work this cycle: commits, walk start/done,
     *  memory phase transitions, issues, dispatches, fetch pushes,
     *  core steps, I-cache misses. A cycle with no activity and no
     *  translation requests is a skippable template. */
    bool cycleActivity_ = false;
    /** The idle.* counter issueStage bumped this cycle (null when
     *  something issued) — the bucket a skipped span extends. */
    uint64_t *idleBucketThisCycle_ = nullptr;
    /** Per-cycle counter bumps that repeat identically in every cycle
     *  of a quiescent span (allowed in a template; replayed n times
     *  when the span is skipped). */
    bool repeatRobStall_ = false;
    bool repeatLsqStall_ = false;
    bool repeatIcacheHit_ = false;  ///< fetch re-read one resident block
    PAddr repeatIcachePc_ = 0;
    /** With skipping disabled: end of the already-counted span, so the
     *  simulated cycles inside it don't re-record skip stats. */
    Cycle skipAccountedUntil_ = 0;
    /// @}

    /** Next interval-sampling boundary (a completed-cycle count);
     *  kCycleNever when sampling is off. */
    Cycle nextSampleAt_ = kCycleNever;

    /// Rename map: last dispatched writer of each unified register.
    struct Writer
    {
        int slot = -1;
        InstSeq seq = 0;
    };
    std::vector<Writer> regMap;

    /** (seq + 1) of the youngest committed store; 0 = none yet. */
    InstSeq lastCommittedStore = 0;
    bool haltCommitted = false;

    PipeStats stats_;
};

} // namespace hbat::cpu

#endif // HBAT_CPU_PIPELINE_HH
