#include "cpu/func_core.hh"

#include <cmath>

#include "common/log.hh"

namespace hbat::cpu
{

using isa::Inst;
using isa::Opcode;
using isa::RC;

FuncCore::FuncCore(vm::AddressSpace &mem, const kasm::Program &prog,
                   std::shared_ptr<const StaticCode> code)
    : mem(mem),
      code(code ? std::move(code)
                : std::make_shared<const StaticCode>(prog)),
      pc_(prog.entry)
{
    hbat_assert(this->code->textBase() == prog.textBase &&
                    this->code->size() == prog.text.size(),
                "StaticCode does not match the program image");
    regs[isa::reg::sp] = RegVal(prog.stackTop);
}

void
FuncCore::saveState(CoreState &out) const
{
    for (unsigned r = 0; r < kNumIntRegs; ++r)
        out.regs[r] = regs[r];
    for (unsigned r = 0; r < kNumFpRegs; ++r)
        out.fregs[r] = fregs[r];
    out.pc = pc_;
    out.halted = isHalted;
    out.nextSeq = nextSeq;
    out.stats = stats_;
}

void
FuncCore::restoreState(const CoreState &s)
{
    for (unsigned r = 0; r < kNumIntRegs; ++r)
        regs[r] = s.regs[r];
    for (unsigned r = 0; r < kNumFpRegs; ++r)
        fregs[r] = s.fregs[r];
    pc_ = s.pc;
    isHalted = s.halted;
    nextSeq = s.nextSeq;
    stats_ = s.stats;
}

void
FuncCore::setInt(RegIndex r, RegVal v)
{
    if (r != isa::reg::zero)
        regs[r] = v;
}

DynInst
FuncCore::step()
{
    DynInst dyn;
    stepInto(dyn);
    return dyn;
}

void
FuncCore::stepInto(DynInst &dyn)
{
    hbat_assert(!isHalted, "step() after halt");

    const StaticInst &sc = code->fetch(pc_);
    const Inst &si = sc.inst;
    const isa::OpInfo &info = *sc.info;

    dyn = DynInst{};
    dyn.seq = nextSeq++;
    dyn.pc = pc_;
    dyn.op = si.op;
    dyn.nextPc = pc_ + 4;
    dyn.propagatesPointer = info.propagatesPointer;
    dyn.fu = info.fu;
    dyn.writesBase = info.writesBase;

    // Operand lists: precomputed per static instruction (see
    // StaticCode), just copied into the dynamic record.
    dyn.srcs[0] = sc.srcs[0];
    dyn.srcs[1] = sc.srcs[1];
    dyn.srcs[2] = sc.srcs[2];
    dyn.dsts[0] = sc.dsts[0];
    dyn.dsts[1] = sc.dsts[1];
    dyn.nSrcs = sc.nSrcs;
    dyn.nDsts = sc.nDsts;
    dyn.dataSrc = sc.dataSrc;

    const RegVal a = regs[si.rs1];
    const RegVal b = regs[si.rs2];
    const int32_t sa = int32_t(a);
    const int32_t sb = int32_t(b);
    const int32_t imm = si.imm;

    auto branchTo = [&](bool cond) {
        dyn.isBranch = true;
        dyn.taken = cond;
        ++stats_.branches;
        if (cond) {
            ++stats_.takenBranches;
            dyn.nextPc = pc_ + 4 + VAddr(int64_t(imm) * 4);
        }
    };

    switch (si.op) {
      // Integer ALU, register-register.
      case Opcode::Add: setInt(si.rd, a + b); break;
      case Opcode::Sub: setInt(si.rd, a - b); break;
      case Opcode::Mul: setInt(si.rd, a * b); break;
      case Opcode::Div:
        setInt(si.rd, b == 0 ? 0
                             : RegVal(sa == INT32_MIN && sb == -1
                                          ? INT32_MIN
                                          : sa / sb));
        break;
      case Opcode::Divu: setInt(si.rd, b == 0 ? 0 : a / b); break;
      case Opcode::Rem:
        setInt(si.rd, b == 0 ? 0
                             : RegVal(sa == INT32_MIN && sb == -1
                                          ? 0
                                          : sa % sb));
        break;
      case Opcode::Remu: setInt(si.rd, b == 0 ? 0 : a % b); break;
      case Opcode::And: setInt(si.rd, a & b); break;
      case Opcode::Or: setInt(si.rd, a | b); break;
      case Opcode::Xor: setInt(si.rd, a ^ b); break;
      case Opcode::Nor: setInt(si.rd, ~(a | b)); break;
      case Opcode::Sll: setInt(si.rd, a << (b & 31)); break;
      case Opcode::Srl: setInt(si.rd, a >> (b & 31)); break;
      case Opcode::Sra: setInt(si.rd, RegVal(sa >> (b & 31))); break;
      case Opcode::Slt: setInt(si.rd, sa < sb ? 1 : 0); break;
      case Opcode::Sltu: setInt(si.rd, a < b ? 1 : 0); break;

      // Integer ALU, immediate.
      case Opcode::Addi: setInt(si.rd, a + RegVal(imm)); break;
      case Opcode::Andi: setInt(si.rd, a & RegVal(imm)); break;
      case Opcode::Ori: setInt(si.rd, a | RegVal(imm)); break;
      case Opcode::Xori: setInt(si.rd, a ^ RegVal(imm)); break;
      case Opcode::Slli: setInt(si.rd, a << imm); break;
      case Opcode::Srli: setInt(si.rd, a >> imm); break;
      case Opcode::Srai: setInt(si.rd, RegVal(sa >> imm)); break;
      case Opcode::Slti: setInt(si.rd, sa < imm ? 1 : 0); break;
      case Opcode::Sltiu: setInt(si.rd, a < RegVal(imm) ? 1 : 0); break;
      case Opcode::Lui: setInt(si.rd, RegVal(imm) << 16); break;

      // Branches.
      case Opcode::Beq: branchTo(a == b); break;
      case Opcode::Bne: branchTo(a != b); break;
      case Opcode::Blt: branchTo(sa < sb); break;
      case Opcode::Bge: branchTo(sa >= sb); break;
      case Opcode::Bltu: branchTo(a < b); break;
      case Opcode::Bgeu: branchTo(a >= b); break;

      // Jumps.
      case Opcode::J:
        dyn.isJump = true;
        dyn.taken = true;
        dyn.nextPc = pc_ + 4 + VAddr(int64_t(imm) * 4);
        break;
      case Opcode::Jal:
        dyn.isJump = true;
        dyn.taken = true;
        setInt(isa::reg::ra, RegVal(pc_ + 4));
        dyn.nextPc = pc_ + 4 + VAddr(int64_t(imm) * 4);
        break;
      case Opcode::Jr:
        dyn.isJump = true;
        dyn.isIndirect = true;
        dyn.taken = true;
        dyn.nextPc = a;
        break;
      case Opcode::Jalr:
        dyn.isJump = true;
        dyn.isIndirect = true;
        dyn.taken = true;
        setInt(si.rd, RegVal(pc_ + 4));
        dyn.nextPc = a;
        break;

      // Floating point.
      case Opcode::Fadd:
        fregs[si.rd] = fregs[si.rs1] + fregs[si.rs2];
        break;
      case Opcode::Fsub:
        fregs[si.rd] = fregs[si.rs1] - fregs[si.rs2];
        break;
      case Opcode::Fmul:
        fregs[si.rd] = fregs[si.rs1] * fregs[si.rs2];
        break;
      case Opcode::Fdiv:
        fregs[si.rd] = fregs[si.rs1] / fregs[si.rs2];
        break;
      case Opcode::Fmov: fregs[si.rd] = fregs[si.rs1]; break;
      case Opcode::Fneg: fregs[si.rd] = -fregs[si.rs1]; break;
      case Opcode::Fabs: fregs[si.rd] = std::fabs(fregs[si.rs1]); break;
      case Opcode::Fcvtif: fregs[si.rd] = double(sa); break;
      case Opcode::Fcvtfi: {
        const double v = fregs[si.rs1];
        int32_t r = 0;
        if (std::isnan(v))
            r = 0;
        else if (v >= 2147483647.0)
            r = INT32_MAX;
        else if (v <= -2147483648.0)
            r = INT32_MIN;
        else
            r = int32_t(v);
        setInt(si.rd, RegVal(r));
        break;
      }
      case Opcode::Fclt:
        setInt(si.rd, fregs[si.rs1] < fregs[si.rs2] ? 1 : 0);
        break;
      case Opcode::Fcle:
        setInt(si.rd, fregs[si.rs1] <= fregs[si.rs2] ? 1 : 0);
        break;
      case Opcode::Fceq:
        setInt(si.rd, fregs[si.rs1] == fregs[si.rs2] ? 1 : 0);
        break;

      // Memory.
      default:
        if (isa::isMem(si.op)) {
            dyn.isLoad = info.isLoad;
            dyn.isStore = info.isStore;
            dyn.memSize = info.memSize;
            dyn.baseReg = si.rs1;

            VAddr ea;
            if (info.rs2Class == RC::Int && !info.isBranch) {
                ea = RegVal(a + b);             // register+register
            } else if (info.writesBase) {
                ea = a;                         // post-increment
            } else {
                ea = RegVal(a + RegVal(imm));   // base+displacement
                if (info.isLoad)
                    dyn.offsetHigh = (uint16_t(imm) >> 12) & 0xf;
            }
            dyn.effAddr = ea;

            if (info.isLoad) {
                ++stats_.loads;
                const uint64_t v = mem.read(ea, info.memSize);
                switch (si.op) {
                  case Opcode::Lb:
                    setInt(si.rd, RegVal(int32_t(int8_t(v))));
                    break;
                  case Opcode::Lh:
                    setInt(si.rd, RegVal(int32_t(int16_t(v))));
                    break;
                  case Opcode::Ldf:
                  case Opcode::Ldfx:
                  case Opcode::Ldfpi: {
                    double d;
                    __builtin_memcpy(&d, &v, 8);
                    fregs[si.rd] = d;
                    break;
                  }
                  default:
                    setInt(si.rd, RegVal(v));
                    break;
                }
            } else {
                ++stats_.stores;
                uint64_t v;
                if (info.rdClass == RC::Fp) {
                    __builtin_memcpy(&v, &fregs[si.rd], 8);
                } else {
                    v = regs[si.rd];
                }
                mem.write(ea, v, info.memSize);
            }

            if (info.writesBase)
                setInt(si.rs1, a + RegVal(imm));
        } else if (si.op == Opcode::Halt) {
            isHalted = true;
        } else if (si.op == Opcode::Nop) {
            // nothing
        } else {
            hbat_panic("unhandled opcode ", isa::opName(si.op));
        }
        break;
    }

    if (info.fu == isa::FuClass::FpAdd ||
        info.fu == isa::FuClass::FpMult ||
        info.fu == isa::FuClass::FpDiv) {
        ++stats_.fpOps;
    }

    ++stats_.instructions;
    pc_ = dyn.nextPc;
}

void
registerStats(obs::StatRegistry &reg, const std::string &prefix,
              const FuncStats &s)
{
    reg.scalar(prefix + ".instructions",
               "architecturally executed instructions", s.instructions);
    reg.scalar(prefix + ".loads", "architectural loads", s.loads);
    reg.scalar(prefix + ".stores", "architectural stores", s.stores);
    reg.scalar(prefix + ".branches", "conditional branches executed",
               s.branches);
    reg.scalar(prefix + ".taken_branches", "taken conditional branches",
               s.takenBranches);
    reg.scalar(prefix + ".fp_ops", "floating-point operations",
               s.fpOps);
}

} // namespace hbat::cpu
