#include "cpu/static_code.hh"

#include "cpu/dyn_inst.hh"

namespace hbat::cpu
{

using isa::Opcode;
using isa::RC;

StaticCode::StaticCode(const kasm::Program &prog)
    : textBase_(prog.textBase)
{
    insts_.reserve(prog.text.size());
    for (uint32_t word : prog.text) {
        StaticInst si;
        si.inst = isa::decode(word);
        si.info = &isa::opInfo(si.inst.op);
        const isa::OpInfo &info = *si.info;

        // Operand lists (unified ids; the hardwired zero register is
        // omitted since it is always ready and never written).
        auto addSrc = [&si](RegIndex r, RC rc) {
            if (rc == RC::Int && r == isa::reg::zero)
                return;
            si.srcs[si.nSrcs++] =
                rc == RC::Fp ? unifiedFp(r) : unifiedInt(r);
        };
        auto addDst = [&si](RegIndex r, RC rc) {
            if (rc == RC::Int && r == isa::reg::zero)
                return;
            si.dsts[si.nDsts++] =
                rc == RC::Fp ? unifiedFp(r) : unifiedInt(r);
        };

        if (info.rs1Class != RC::None)
            addSrc(si.inst.rs1, info.rs1Class);
        if (info.rs2Class != RC::None)
            addSrc(si.inst.rs2, info.rs2Class);
        if (info.rdClass != RC::None && info.rdIsSource) {
            const bool real = !(info.rdClass == RC::Int &&
                                si.inst.rd == isa::reg::zero);
            if (real)
                si.dataSrc = int8_t(si.nSrcs);
            addSrc(si.inst.rd, info.rdClass);
        }
        if (info.rdClass != RC::None && !info.rdIsSource)
            addDst(si.inst.rd, info.rdClass);
        if (info.writesBase)
            addDst(si.inst.rs1, RC::Int);
        if (si.inst.op == Opcode::Jal)
            addDst(isa::reg::ra, RC::Int);

        insts_.push_back(si);
    }
}

} // namespace hbat::cpu
