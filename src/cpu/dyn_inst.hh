/**
 * @file
 * The dynamic-instruction record handed from the functional core to
 * the timing models.
 *
 * Registers are carried as *unified* operand identifiers: integer
 * registers occupy ids 0..31 and floating-point registers 32..63, so
 * dependence tracking needs a single namespace. The record keeps the
 * architected base-register id and load-displacement bits because the
 * pretranslation design (Section 3.5) tags its cache with them.
 */

#ifndef HBAT_CPU_DYN_INST_HH
#define HBAT_CPU_DYN_INST_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/isa.hh"

namespace hbat::cpu
{

/** Unified operand id for integer register @p r. */
inline constexpr uint8_t
unifiedInt(RegIndex r)
{
    return r;
}

/** Unified operand id for FP register @p r. */
inline constexpr uint8_t
unifiedFp(RegIndex r)
{
    return uint8_t(32 + r);
}

/** Sentinel "no operand". */
inline constexpr uint8_t kNoOperand = 0xff;

/** One executed (correct-path) instruction. */
struct DynInst
{
    InstSeq seq = 0;
    VAddr pc = 0;
    isa::Opcode op = isa::Opcode::Nop;

    uint8_t srcs[3] = {kNoOperand, kNoOperand, kNoOperand};
    uint8_t dsts[2] = {kNoOperand, kNoOperand};
    uint8_t nSrcs = 0;
    uint8_t nDsts = 0;

    /**
     * Index into srcs of a store's data operand, or -1. Store address
     * generation does not wait for the data (the paper's out-of-order
     * model lets loads go as soon as prior store *addresses* are
     * known, so stores must produce their addresses early).
     */
    int8_t dataSrc = -1;

    /// @name Memory access fields (valid when isLoad/isStore)
    /// @{
    VAddr effAddr = 0;
    uint8_t memSize = 0;
    bool isLoad = false;
    bool isStore = false;
    RegIndex baseReg = kNoReg;  ///< architected integer base register
    uint8_t offsetHigh = 0;     ///< upper 4 bits of a load displacement
    /// @}

    /// @name Control-flow fields
    /// @{
    bool isBranch = false;      ///< conditional branch
    bool isJump = false;        ///< unconditional transfer
    bool isIndirect = false;    ///< JR/JALR (target unknown at fetch)
    bool taken = false;
    VAddr nextPc = 0;
    /// @}

    /**
     * True when integer destinations carry pointer arithmetic:
     * pretranslation propagates source attachments to the result.
     */
    bool propagatesPointer = false;

    /// @name Flattened static properties (copied from the pre-decoded
    /// image so the per-cycle pipeline loops never re-consult the
    /// opcode table)
    /// @{
    isa::FuClass fu = isa::FuClass::None;   ///< functional-unit class
    bool writesBase = false;    ///< post-increment base update
    /// @}

    bool isMem() const { return isLoad || isStore; }
};

} // namespace hbat::cpu

#endif // HBAT_CPU_DYN_INST_HH
