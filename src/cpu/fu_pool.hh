/**
 * @file
 * Functional-unit pool (Table 1).
 *
 * 8 integer ALUs, 4 load/store units, 4 FP adders, one shared integer
 * MULT/DIV unit, and one shared FP MULT/DIV unit. Each operation
 * occupies its unit for its issue latency and delivers its result
 * after its total latency; divides are unpipelined (issue latency =
 * total latency = 12).
 */

#ifndef HBAT_CPU_FU_POOL_HH
#define HBAT_CPU_FU_POOL_HH

#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace hbat::cpu
{

/** Functional-unit counts. */
struct FuPoolConfig
{
    unsigned intAlu = 8;
    unsigned intMultDiv = 1;    ///< shared between IntMult and IntDiv
    unsigned memPorts = 4;      ///< load/store units
    unsigned fpAdd = 4;
    unsigned fpMultDiv = 1;     ///< shared between FpMult and FpDiv
};

/** Tracks per-unit busy time. */
class FuPool
{
  public:
    explicit FuPool(const FuPoolConfig &config);

    /**
     * Try to claim a unit of the class serving @p cls at cycle @p now.
     * On success the unit is busy for the class's issue latency.
     * Inline (with group() and the latency tables): this is called
     * for every issue attempt, one of the hottest paths in the
     * simulator.
     */
    bool
    acquire(isa::FuClass cls, Cycle now)
    {
        if (cls == isa::FuClass::None)
            return true;    // control/nop: no unit needed
        for (Cycle &next_free : group(cls)) {
            if (next_free <= now) {
                next_free = now + issueLatency(cls);
                return true;
            }
        }
        return false;
    }

    /**
     * Next-event query: the earliest cycle after @p now at which any
     * unit that is busy at @p now becomes free — i.e. the first future
     * cycle where an acquire() that fails now could start succeeding.
     * kCycleNever when every unit is already free (nothing pending).
     */
    Cycle nextFreeCycle(Cycle now) const;

    /** Result latency (Table 1 "total"). */
    static Cycle
    totalLatency(isa::FuClass cls)
    {
        switch (cls) {
          case isa::FuClass::IntAlu: return 1;
          case isa::FuClass::IntMult: return 3;
          case isa::FuClass::IntDiv: return 12;
          case isa::FuClass::MemPort: return 2;
          case isa::FuClass::FpAdd: return 2;
          case isa::FuClass::FpMult: return 4;
          case isa::FuClass::FpDiv: return 12;
          case isa::FuClass::None: return 1;
        }
        hbat_panic("bad FU class");
    }

    /** Unit-occupancy latency (Table 1 "issue"). */
    static Cycle
    issueLatency(isa::FuClass cls)
    {
        switch (cls) {
          case isa::FuClass::IntDiv:
          case isa::FuClass::FpDiv: return 12;
          default: return 1;
        }
    }

  private:
    std::vector<Cycle> &
    group(isa::FuClass cls)
    {
        switch (cls) {
          case isa::FuClass::IntAlu: return intAlu;
          case isa::FuClass::IntMult:
          case isa::FuClass::IntDiv: return intMultDiv;
          case isa::FuClass::MemPort: return mem;
          case isa::FuClass::FpAdd: return fpAdd;
          case isa::FuClass::FpMult:
          case isa::FuClass::FpDiv: return fpMultDiv;
          default: hbat_panic("no FU group for this class");
        }
    }

    std::vector<Cycle> intAlu;
    std::vector<Cycle> intMultDiv;
    std::vector<Cycle> mem;
    std::vector<Cycle> fpAdd;
    std::vector<Cycle> fpMultDiv;
};

} // namespace hbat::cpu

#endif // HBAT_CPU_FU_POOL_HH
