/**
 * @file
 * Functional-unit pool (Table 1).
 *
 * 8 integer ALUs, 4 load/store units, 4 FP adders, one shared integer
 * MULT/DIV unit, and one shared FP MULT/DIV unit. Each operation
 * occupies its unit for its issue latency and delivers its result
 * after its total latency; divides are unpipelined (issue latency =
 * total latency = 12).
 */

#ifndef HBAT_CPU_FU_POOL_HH
#define HBAT_CPU_FU_POOL_HH

#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace hbat::cpu
{

/** Functional-unit counts. */
struct FuPoolConfig
{
    unsigned intAlu = 8;
    unsigned intMultDiv = 1;    ///< shared between IntMult and IntDiv
    unsigned memPorts = 4;      ///< load/store units
    unsigned fpAdd = 4;
    unsigned fpMultDiv = 1;     ///< shared between FpMult and FpDiv
};

/** Tracks per-unit busy time. */
class FuPool
{
  public:
    explicit FuPool(const FuPoolConfig &config);

    /**
     * Try to claim a unit of the class serving @p cls at cycle @p now.
     * On success the unit is busy for the class's issue latency.
     */
    bool acquire(isa::FuClass cls, Cycle now);

    /** Result latency (Table 1 "total"). */
    static Cycle totalLatency(isa::FuClass cls);

    /** Unit-occupancy latency (Table 1 "issue"). */
    static Cycle issueLatency(isa::FuClass cls);

  private:
    std::vector<Cycle> &group(isa::FuClass cls);

    std::vector<Cycle> intAlu;
    std::vector<Cycle> intMultDiv;
    std::vector<Cycle> mem;
    std::vector<Cycle> fpAdd;
    std::vector<Cycle> fpMultDiv;
};

} // namespace hbat::cpu

#endif // HBAT_CPU_FU_POOL_HH
