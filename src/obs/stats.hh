/**
 * @file
 * The stat registry: named, hierarchical, self-describing statistics.
 *
 * Simulator components keep their counters in plain structs (cheap to
 * bump on the hot path); at end of run they *register* those counters
 * here under gem5-style dotted names ("pipe.xlate.requests") with
 * one-line descriptions. The registry can then be enumerated, dumped
 * as text, or snapshotted into plain data for machine-readable
 * reports — so every run exposes the same uniform stat namespace
 * regardless of which bench binary produced it.
 *
 * Four stat kinds cover the paper's evaluation needs:
 *  - scalar: a uint64_t counter read by reference;
 *  - formula: a derived value computed at snapshot time (rates, IPC);
 *  - vector: an ordered list of named counters (e.g. the zero-issue
 *    cycle classification);
 *  - histogram: a bucketed distribution (e.g. the per-cycle
 *    memory-accesses demand of the paper's Figure 3).
 */

#ifndef HBAT_OBS_STATS_HH
#define HBAT_OBS_STATS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hbat::obs
{

/**
 * Fixed-bucket histogram of small non-negative integer samples.
 * Buckets 0..numBuckets-2 hold exact values; the last bucket collects
 * everything >= numBuckets-1 (overflow).
 */
class Histogram
{
  public:
    explicit Histogram(unsigned num_buckets = 10);

    /**
     * Record @p count samples of @p value. Inline and branch-light:
     * the pipeline records one sample per simulated cycle (the
     * Figure 3 demand histogram), so this sits on the hot path.
     */
    void
    record(uint64_t value, uint64_t count = 1)
    {
        const size_t last = buckets_.size() - 1;
        buckets_[value < last ? size_t(value) : last] += count;
        samples_ += count;
        sum_ += value * count;
    }

    /**
     * Record @p count samples of @p value in one step — exactly
     * equivalent to @p count calls of record(value), in O(1). The
     * pipeline's idle-cycle skipping uses this to bulk-account the
     * demand histogram for spans of provably identical cycles.
     */
    void
    recordMany(uint64_t value, uint64_t count)
    {
        record(value, count);
    }

    uint64_t samples() const { return samples_; }
    uint64_t sum() const { return sum_; }

    double
    mean() const
    {
        return samples_ == 0 ? 0.0 : double(sum_) / double(samples_);
    }

    size_t numBuckets() const { return buckets_.size(); }
    uint64_t bucket(size_t i) const { return buckets_[i]; }
    const std::vector<uint64_t> &buckets() const { return buckets_; }

    void reset();

  private:
    std::vector<uint64_t> buckets_;
    uint64_t samples_ = 0;
    uint64_t sum_ = 0;
};

/** What a registered stat is. */
enum class StatKind : uint8_t
{
    Scalar,
    Formula,
    Vector,
    Histogram
};

/** One stat's value at snapshot time — plain copyable data. */
struct StatValue
{
    std::string name;
    std::string desc;
    StatKind kind = StatKind::Scalar;

    double value = 0.0;             ///< Scalar / Formula
    std::vector<double> values;     ///< Vector / Histogram buckets
    std::vector<std::string> labels;    ///< Vector: one per element
    uint64_t samples = 0;           ///< Histogram
    uint64_t sum = 0;               ///< Histogram (exact, for deltas)
    double mean = 0.0;              ///< Histogram
};

/** A full run's stats, decoupled from the live objects. */
using StatSnapshot = std::vector<StatValue>;

/**
 * The registry proper. Registration stores *references* to the live
 * counters (cheap; nothing on the hot path); snapshot() reads them.
 * Names must be unique — duplicate registration is a simulator bug.
 */
class StatRegistry
{
  public:
    StatRegistry &scalar(const std::string &name,
                         const std::string &desc, const uint64_t &v);

    StatRegistry &formula(const std::string &name,
                          const std::string &desc,
                          std::function<double()> f);

    /** @p labels names each element of @p v (same length). */
    StatRegistry &vector(const std::string &name,
                         const std::string &desc,
                         std::vector<std::string> labels,
                         std::vector<const uint64_t *> elems);

    StatRegistry &histogram(const std::string &name,
                            const std::string &desc, const Histogram &h);

    size_t size() const { return entries_.size(); }

    /**
     * Read every registered stat into plain data, sorted by name.
     * The ordering is part of the report contract: it keeps JSON
     * reports and text dumps byte-stable across changes in component
     * registration order, so report diffs (sweep_diff.py) never churn.
     */
    StatSnapshot snapshot() const;

    /** gem5-style text dump: "name  value  # desc", one per line. */
    static std::string dumpText(const StatSnapshot &snap);

  private:
    struct Entry
    {
        std::string name;
        std::string desc;
        StatKind kind;
        const uint64_t *scalar = nullptr;
        std::function<double()> fn;
        std::vector<std::string> labels;
        std::vector<const uint64_t *> elems;
        const Histogram *hist = nullptr;
    };

    void checkName(const std::string &name) const;

    std::vector<Entry> entries_;    ///< registration order
};

} // namespace hbat::obs

#endif // HBAT_OBS_STATS_HH
