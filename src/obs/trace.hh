/**
 * @file
 * Category-filtered event tracing for the timing models.
 *
 * Gated by the HBAT_TRACE environment variable (a comma-separated
 * list of categories, or "all") or programmatically via
 * setTraceMask() (the bench harness's --trace flag). When no category
 * is enabled the per-event cost is one inline relaxed atomic load and
 * test of a global mask — message formatting happens only behind that
 * check, so tracing is effectively free when off. The mask is
 * initialized exactly once (std::once_flag), so first use is safe
 * from any thread.
 *
 * Categories follow the pipeline stages the paper's timing model is
 * built from: fetch, issue, xlate (translation requests and their
 * outcomes), walk (base-TLB miss handling), commit, plus `life`, a
 * per-instruction pipeline-lifetime record emitted at commit for
 * debugging timing bugs.
 *
 * Output goes through a TraceSink, a mutex-guarded handle around a
 * stream, rather than a bare global FILE*. Each simulation run may
 * install its own sink for the duration of the run (ScopedTraceSink,
 * a thread-local override — one run occupies one thread), which keeps
 * concurrent runs' events separable; everything else shares the
 * default sink. The default sink writes to stderr (stdout stays
 * reserved for the paper-style tables) and can be redirected with
 * setTraceStream().
 */

#ifndef HBAT_OBS_TRACE_HH
#define HBAT_OBS_TRACE_HH

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

#include "common/log.hh"
#include "common/types.hh"

namespace hbat::obs
{

/// @name Trace categories (bitmask)
/// @{
inline constexpr uint32_t kTraceFetch = 1u << 0;
inline constexpr uint32_t kTraceIssue = 1u << 1;
inline constexpr uint32_t kTraceXlate = 1u << 2;
inline constexpr uint32_t kTraceWalk = 1u << 3;
inline constexpr uint32_t kTraceCommit = 1u << 4;
inline constexpr uint32_t kTraceLife = 1u << 5;
inline constexpr uint32_t kTraceAll =
    kTraceFetch | kTraceIssue | kTraceXlate | kTraceWalk | kTraceCommit |
    kTraceLife;
/// @}

namespace detail
{
extern std::atomic<uint32_t> traceMask_;
/** Set (release) once traceMask_ holds its initial value. */
extern std::atomic<bool> traceReady_;
extern std::once_flag traceOnce_;
/** Parse HBAT_TRACE; runs at most once, under traceOnce_. */
void initTraceFromEnv();
} // namespace detail

/**
 * The active category mask (parses HBAT_TRACE once, thread-safely).
 * The steady-state cost is two relaxed-ish atomic loads — the
 * call_once handshake runs only until the first initialization is
 * observed, keeping this cheap on the per-event timing path.
 */
inline uint32_t
traceMask()
{
    if (!detail::traceReady_.load(std::memory_order_acquire))
        [[unlikely]]
        std::call_once(detail::traceOnce_, detail::initTraceFromEnv);
    return detail::traceMask_.load(std::memory_order_relaxed);
}

/** True when any category in @p cats is enabled. */
inline bool
traceOn(uint32_t cats)
{
    return (traceMask() & cats) != 0;
}

/** Override the mask (wins over HBAT_TRACE, even if called first). */
void setTraceMask(uint32_t mask);

/**
 * Parse a category spec: comma-separated names from {fetch, issue,
 * xlate, walk, commit, life}, or "all", or "" / "none" for nothing.
 * Fatal on unknown names (user error).
 */
uint32_t parseTraceCats(const std::string &spec);

/** The short name of a single category bit ("xlate"). */
const char *traceCatName(uint32_t cat);

/**
 * A mutex-guarded destination for trace events. One line() call emits
 * one whole line; concurrent writers to the same sink never
 * interleave mid-line.
 */
class TraceSink
{
  public:
    /** @p f is the destination stream; nullptr means stderr. */
    explicit TraceSink(std::FILE *f = nullptr) : file_(f) {}

    /** Emit one event line: "TRACE <cat> @<cycle> <msg>". */
    void line(uint32_t cat, Cycle now, const std::string &msg);

    /** Change the destination (nullptr restores stderr). */
    void redirect(std::FILE *f);

  private:
    std::mutex mu_;
    std::FILE *file_;    ///< guarded by mu_
};

/** The process-wide sink used when no per-run sink is installed. */
TraceSink &defaultTraceSink();

/**
 * RAII override of the calling thread's trace destination — the
 * per-run sink handle. A simulation run installs one for its
 * lifetime; every trace event the run emits (all on the installing
 * thread) goes to @p sink instead of the default.
 */
class ScopedTraceSink
{
  public:
    explicit ScopedTraceSink(TraceSink &sink);
    ~ScopedTraceSink();

    ScopedTraceSink(const ScopedTraceSink &) = delete;
    ScopedTraceSink &operator=(const ScopedTraceSink &) = delete;

  private:
    TraceSink *prev_;
};

/**
 * Redirect the *default* sink (nullptr restores stderr). Kept for the
 * pre-TraceSink API; per-run redirection wants ScopedTraceSink.
 */
void setTraceStream(std::FILE *f);

/** Emit one event to the current sink (thread override or default). */
void traceLine(uint32_t cat, Cycle now, const std::string &msg);

} // namespace hbat::obs

/**
 * Emit a trace event in category @p cat at cycle @p cycle. The
 * variadic message parts are streamed (as in hbat_fatal) and only
 * evaluated when the category is enabled.
 */
#define HBAT_TRACE_EVENT(cat, cycle, ...)                                 \
    do {                                                                  \
        if (::hbat::obs::traceOn(cat)) {                                  \
            ::hbat::obs::traceLine(                                       \
                (cat), (cycle), ::hbat::detail::concat(__VA_ARGS__));     \
        }                                                                 \
    } while (0)

#endif // HBAT_OBS_TRACE_HH
