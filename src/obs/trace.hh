/**
 * @file
 * Category-filtered event tracing for the timing models.
 *
 * Gated by the HBAT_TRACE environment variable (a comma-separated
 * list of categories, or "all") or programmatically via
 * setTraceMask() (the bench harness's --trace flag). When no category
 * is enabled the per-event cost is one inline load-and-test of a
 * global mask — message formatting happens only behind that check, so
 * tracing is effectively free when off.
 *
 * Categories follow the pipeline stages the paper's timing model is
 * built from: fetch, issue, xlate (translation requests and their
 * outcomes), walk (base-TLB miss handling), commit, plus `life`, a
 * per-instruction pipeline-lifetime record emitted at commit for
 * debugging timing bugs.
 *
 * Events go to stderr by default (stdout stays reserved for the
 * paper-style tables) and can be redirected with setTraceStream().
 */

#ifndef HBAT_OBS_TRACE_HH
#define HBAT_OBS_TRACE_HH

#include <cstdio>
#include <string>

#include "common/log.hh"
#include "common/types.hh"

namespace hbat::obs
{

/// @name Trace categories (bitmask)
/// @{
inline constexpr uint32_t kTraceFetch = 1u << 0;
inline constexpr uint32_t kTraceIssue = 1u << 1;
inline constexpr uint32_t kTraceXlate = 1u << 2;
inline constexpr uint32_t kTraceWalk = 1u << 3;
inline constexpr uint32_t kTraceCommit = 1u << 4;
inline constexpr uint32_t kTraceLife = 1u << 5;
inline constexpr uint32_t kTraceAll =
    kTraceFetch | kTraceIssue | kTraceXlate | kTraceWalk | kTraceCommit |
    kTraceLife;
/// @}

namespace detail
{
extern uint32_t traceMask_;
extern bool traceInit_;
/** Parse HBAT_TRACE once and cache the result. */
void initTraceFromEnv();
} // namespace detail

/** The active category mask (lazily parses HBAT_TRACE on first use). */
inline uint32_t
traceMask()
{
    if (!detail::traceInit_)
        detail::initTraceFromEnv();
    return detail::traceMask_;
}

/** True when any category in @p cats is enabled. */
inline bool
traceOn(uint32_t cats)
{
    return (traceMask() & cats) != 0;
}

/** Override the mask (wins over HBAT_TRACE). */
void setTraceMask(uint32_t mask);

/**
 * Parse a category spec: comma-separated names from {fetch, issue,
 * xlate, walk, commit, life}, or "all", or "" / "none" for nothing.
 * Fatal on unknown names (user error).
 */
uint32_t parseTraceCats(const std::string &spec);

/** The short name of a single category bit ("xlate"). */
const char *traceCatName(uint32_t cat);

/** Redirect trace output (default stderr); nullptr restores stderr. */
void setTraceStream(std::FILE *f);

/** Emit one event line: "TRACE <cat> @<cycle> <msg>". */
void traceLine(uint32_t cat, Cycle now, const std::string &msg);

} // namespace hbat::obs

/**
 * Emit a trace event in category @p cat at cycle @p cycle. The
 * variadic message parts are streamed (as in hbat_fatal) and only
 * evaluated when the category is enabled.
 */
#define HBAT_TRACE_EVENT(cat, cycle, ...)                                 \
    do {                                                                  \
        if (::hbat::obs::traceOn(cat)) {                                  \
            ::hbat::obs::traceLine(                                       \
                (cat), (cycle), ::hbat::detail::concat(__VA_ARGS__));     \
        }                                                                 \
    } while (0)

#endif // HBAT_OBS_TRACE_HH
