#include "obs/trace.hh"

#include <cstdlib>
#include <cstring>

namespace hbat::obs
{

namespace detail
{

uint32_t traceMask_ = 0;
bool traceInit_ = false;

void
initTraceFromEnv()
{
    traceInit_ = true;
    if (const char *env = std::getenv("HBAT_TRACE"))
        traceMask_ = parseTraceCats(env);
}

} // namespace detail

namespace
{

std::FILE *traceStream_ = nullptr;

struct CatName
{
    uint32_t bit;
    const char *name;
};

constexpr CatName kCats[] = {
    {kTraceFetch, "fetch"}, {kTraceIssue, "issue"},
    {kTraceXlate, "xlate"}, {kTraceWalk, "walk"},
    {kTraceCommit, "commit"}, {kTraceLife, "life"},
};

} // namespace

void
setTraceMask(uint32_t mask)
{
    detail::traceInit_ = true;
    detail::traceMask_ = mask;
}

uint32_t
parseTraceCats(const std::string &spec)
{
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty() || tok == "none")
            continue;
        if (tok == "all") {
            mask |= kTraceAll;
            continue;
        }
        bool found = false;
        for (const CatName &c : kCats) {
            if (tok == c.name) {
                mask |= c.bit;
                found = true;
                break;
            }
        }
        if (!found) {
            hbat_fatal("unknown trace category '", tok,
                       "' (known: fetch, issue, xlate, walk, commit, "
                       "life, all)");
        }
    }
    return mask;
}

const char *
traceCatName(uint32_t cat)
{
    for (const CatName &c : kCats)
        if (cat == c.bit)
            return c.name;
    return "?";
}

void
setTraceStream(std::FILE *f)
{
    traceStream_ = f;
}

void
traceLine(uint32_t cat, Cycle now, const std::string &msg)
{
    std::FILE *out = traceStream_ ? traceStream_ : stderr;
    std::fprintf(out, "TRACE %-6s @%llu %s\n", traceCatName(cat),
                 (unsigned long long)now, msg.c_str());
}

} // namespace hbat::obs
