#include "obs/trace.hh"

#include <cstdlib>
#include <cstring>
#include <utility>

namespace hbat::obs
{

namespace detail
{

std::atomic<uint32_t> traceMask_{0};
std::atomic<bool> traceReady_{false};
std::once_flag traceOnce_;

void
initTraceFromEnv()
{
    if (const char *env = std::getenv("HBAT_TRACE"))
        traceMask_.store(parseTraceCats(env), std::memory_order_relaxed);
    traceReady_.store(true, std::memory_order_release);
}

} // namespace detail

namespace
{

/** The calling thread's override sink; null means the default sink. */
thread_local TraceSink *tlsSink_ = nullptr;

struct CatName
{
    uint32_t bit;
    const char *name;
};

constexpr CatName kCats[] = {
    {kTraceFetch, "fetch"}, {kTraceIssue, "issue"},
    {kTraceXlate, "xlate"}, {kTraceWalk, "walk"},
    {kTraceCommit, "commit"}, {kTraceLife, "life"},
};

} // namespace

void
setTraceMask(uint32_t mask)
{
    // Burn the once_flag so a later traceMask() can't overwrite this
    // explicit setting with the environment's.
    std::call_once(detail::traceOnce_, [] {});
    detail::traceMask_.store(mask, std::memory_order_relaxed);
    detail::traceReady_.store(true, std::memory_order_release);
}

uint32_t
parseTraceCats(const std::string &spec)
{
    uint32_t mask = 0;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string tok = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty() || tok == "none")
            continue;
        if (tok == "all") {
            mask |= kTraceAll;
            continue;
        }
        bool found = false;
        for (const CatName &c : kCats) {
            if (tok == c.name) {
                mask |= c.bit;
                found = true;
                break;
            }
        }
        if (!found) {
            hbat_fatal("unknown trace category '", tok,
                       "' (known: fetch, issue, xlate, walk, commit, "
                       "life, all)");
        }
    }
    return mask;
}

const char *
traceCatName(uint32_t cat)
{
    for (const CatName &c : kCats)
        if (cat == c.bit)
            return c.name;
    return "?";
}

void
TraceSink::line(uint32_t cat, Cycle now, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::FILE *out = file_ ? file_ : stderr;
    std::fprintf(out, "TRACE %-6s @%llu %s\n", traceCatName(cat),
                 (unsigned long long)now, msg.c_str());
}

void
TraceSink::redirect(std::FILE *f)
{
    std::lock_guard<std::mutex> lock(mu_);
    file_ = f;
}

TraceSink &
defaultTraceSink()
{
    static TraceSink sink;
    return sink;
}

ScopedTraceSink::ScopedTraceSink(TraceSink &sink)
    : prev_(std::exchange(tlsSink_, &sink))
{}

ScopedTraceSink::~ScopedTraceSink()
{
    tlsSink_ = prev_;
}

void
setTraceStream(std::FILE *f)
{
    defaultTraceSink().redirect(f);
}

void
traceLine(uint32_t cat, Cycle now, const std::string &msg)
{
    TraceSink *sink = tlsSink_ ? tlsSink_ : &defaultTraceSink();
    sink->line(cat, now, msg);
}

} // namespace hbat::obs
