/**
 * @file
 * Interval stat time-series: snapshot/delta semantics on top of the
 * stat registry.
 *
 * A run configured with an interval of N cycles snapshots every
 * registered stat each time the simulated clock crosses a multiple of
 * N (plus one final partial-interval snapshot at end of run). The
 * samples are *cumulative* — each is exactly what StatRegistry::
 * snapshot() would return at that cycle — so the series composes with
 * the end-of-run report and deltas can be formed between any two
 * boundaries, not just adjacent ones.
 *
 * intervalDelta() turns two adjacent cumulative samples into the
 * per-interval view the JSON reports emit: counters (scalars, vector
 * elements, histogram buckets/samples/sum) are subtracted; formulas —
 * derived values like rates, which do not decompose into per-interval
 * differences — keep their cumulative value at the boundary.
 *
 * The sampling boundaries are exact under the pipeline's idle-cycle
 * skipping: a bulk-accounted span that crosses a boundary is split at
 * it (see Pipeline::run), so the series is bit-identical to the same
 * run with --no-skip.
 */

#ifndef HBAT_OBS_INTERVAL_HH
#define HBAT_OBS_INTERVAL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "obs/stats.hh"

namespace hbat::obs
{

/** One sampling boundary: cumulative stats as of @p cycle. */
struct IntervalSample
{
    Cycle cycle = 0;
    StatSnapshot stats;
};

/** A whole run's time-series. Empty samples when sampling was off. */
struct IntervalSeries
{
    uint64_t interval = 0;  ///< boundary spacing in cycles (0 = off)
    std::vector<IntervalSample> samples;    ///< ascending by cycle

    bool enabled() const { return interval != 0; }
};

/**
 * The per-interval delta between cumulative samples @p prev and
 * @p cur (same registry, so same names in the same sorted order).
 * Pass nullptr for @p prev to delta against the zero state (the first
 * interval). Formula stats are passed through at their @p cur value.
 */
StatSnapshot intervalDelta(const StatSnapshot *prev,
                           const StatSnapshot &cur);

} // namespace hbat::obs

#endif // HBAT_OBS_INTERVAL_HH
