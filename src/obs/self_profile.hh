/**
 * @file
 * Simulator self-profiling: coarse host-time phase timers.
 *
 * Answers "where does the *simulator* spend its host time" — distinct
 * from every other stat in src/obs, which measures the simulated
 * machine. The pipeline, when asked (--self-profile), brackets each
 * per-cycle stage call (fetch/dispatch/issue/mem/walk/commit) and the
 * idle-skip detection/accounting block with a monotonic clock and
 * accumulates per-phase seconds. The bench harness surfaces the
 * totals per sweep cell ("self_profile" in the JSON report), so a
 * bench_compare.py regression can be attributed to a stage instead of
 * re-profiled from scratch.
 *
 * Host timing is inherently non-deterministic, so these numbers are
 * never registered in the stat registry and sweep_diff.py ignores
 * them — they can never break a determinism or invariance gate.
 */

#ifndef HBAT_OBS_SELF_PROFILE_HH
#define HBAT_OBS_SELF_PROFILE_HH

#include <chrono>
#include <cstddef>

namespace hbat::obs
{

/** The timed phases of one simulated cycle. */
enum class SimPhase : uint8_t
{
    Commit,
    Walk,
    Mem,
    Issue,
    Dispatch,
    Fetch,
    Skip,       ///< idle-skip detection + bulk accounting
    NumPhases
};

inline constexpr size_t kNumSimPhases =
    size_t(SimPhase::NumPhases);

/** The short, stable JSON key of @p phase ("issue_s", "skip_s"...). */
constexpr const char *
simPhaseKey(SimPhase phase)
{
    switch (phase) {
      case SimPhase::Commit:
        return "commit_s";
      case SimPhase::Walk:
        return "walk_s";
      case SimPhase::Mem:
        return "mem_s";
      case SimPhase::Issue:
        return "issue_s";
      case SimPhase::Dispatch:
        return "dispatch_s";
      case SimPhase::Fetch:
        return "fetch_s";
      case SimPhase::Skip:
        return "skip_s";
      case SimPhase::NumPhases:
        break;
    }
    return "?";
}

/** Accumulated host seconds per phase for one run. */
struct PhaseProfile
{
    bool enabled = false;
    double seconds[kNumSimPhases] = {};
    /** Whole cycle loop, including unattributed glue between stages. */
    double totalSeconds = 0.0;

    double &operator[](SimPhase p) { return seconds[size_t(p)]; }
    double operator[](SimPhase p) const { return seconds[size_t(p)]; }
};

/** Monotonic clock read for the phase timers. */
inline double
phaseClock()
{
    using Clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               Clock::now().time_since_epoch())
        .count();
}

} // namespace hbat::obs

#endif // HBAT_OBS_SELF_PROFILE_HH
