#include "obs/pc_profile.hh"

#include <algorithm>
#include <tuple>

namespace hbat::obs
{

std::vector<PcProfileEntry>
PcProfile::topK(size_t k) const
{
    std::vector<PcProfileEntry> rows;
    rows.reserve(counts.size());
    for (const auto &[pc, c] : counts)
        rows.push_back(PcProfileEntry{pc, c});

    const auto hotter = [](const PcProfileEntry &a,
                           const PcProfileEntry &b) {
        return std::make_tuple(b.counts.misses, b.counts.walkCycles,
                               b.counts.requests, a.pc) <
               std::make_tuple(a.counts.misses, a.counts.walkCycles,
                               a.counts.requests, b.pc);
    };
    std::sort(rows.begin(), rows.end(), hotter);
    if (k != 0 && rows.size() > k)
        rows.resize(k);
    return rows;
}

} // namespace hbat::obs
