/**
 * @file
 * Instruction-lifecycle pipeline traces in gem5's O3PipeView format.
 *
 * The PR 1 `life` trace category prints one free-form line per
 * committed instruction; this writer upgrades that into the de-facto
 * standard per-instruction timeline format that O3PipeView and Konata
 * visualize: a block of lines per instruction, emitted at retirement,
 * with one timestamped line per pipeline stage.
 *
 *   O3PipeView:fetch:<cycle>:0x<pc>:0:<seq>:<disassembly>
 *   O3PipeView:decode:<cycle>
 *   O3PipeView:rename:<cycle>
 *   O3PipeView:dispatch:<cycle>
 *   O3PipeView:issue:<cycle>
 *   O3PipeView:xlate:<cycle>        (memory ops only; extension)
 *   O3PipeView:mem:<cycle>          (memory ops only; extension)
 *   O3PipeView:complete:<cycle>
 *   O3PipeView:retire:<cycle>:store:<cycle-or-0>
 *
 * Stage mapping from this simulator's model: fetch is the cycle the
 * front end read the instruction's I-cache block; decode/rename are
 * the cycle the fetch group became available to dispatch (this
 * machine has no separate decode/rename stages — the standard lines
 * are kept so stock viewers render the trace); dispatch is ROB/LSQ
 * insertion; issue is operand-ready selection; xlate is the cycle the
 * translation was available (the engine's Outcome::ready); mem and
 * complete are the result cycle; retire is commit, which for stores
 * is also the data-cache write (the :store: field). The two extension
 * lines are what make translation stalls — this paper's subject —
 * visible as their own segment; scripts/check_pipeview.py validates
 * the full grammar, and viewers that only know the stock stages can
 * drop the extension lines with `grep -v ':xlate:\|:mem:'`.
 *
 * Timestamps are simulated cycles (one "tick" per cycle). Only
 * correct-path instructions exist in this simulator, so every traced
 * instruction retires and sequence numbers appear in commit order.
 *
 * A writer is owned by one simulation run and written from that run's
 * thread only; concurrent sweep cells each get their own writer and
 * file (see the bench harness's --pipeview).
 */

#ifndef HBAT_OBS_PIPEVIEW_HH
#define HBAT_OBS_PIPEVIEW_HH

#include <cstdio>
#include <string>

#include "common/types.hh"

namespace hbat::obs
{

/** Everything one retired instruction contributes to the trace. */
struct PipeviewRecord
{
    InstSeq seq = 0;
    VAddr pc = 0;
    std::string disasm;     ///< shown by the viewer; no ':' allowed

    Cycle fetch = 0;        ///< front end read the I-cache block
    Cycle decode = 0;       ///< fetch group available to dispatch
    Cycle dispatch = 0;     ///< entered ROB (and LSQ for memory ops)
    Cycle issue = 0;        ///< selected for execution
    Cycle complete = 0;     ///< result available (memory: data back)
    Cycle retire = 0;       ///< committed

    bool isMem = false;
    bool isStore = false;
    Cycle xlateReady = 0;   ///< memory ops: translation available
};

/** Writes one O3PipeView block per retired instruction. */
class PipeviewWriter
{
  public:
    /** Opens @p path for writing; fatal when it cannot be created. */
    explicit PipeviewWriter(const std::string &path);
    ~PipeviewWriter();

    PipeviewWriter(const PipeviewWriter &) = delete;
    PipeviewWriter &operator=(const PipeviewWriter &) = delete;

    /** Emit the block for one retired instruction. */
    void retire(const PipeviewRecord &rec);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *file_;
};

} // namespace hbat::obs

#endif // HBAT_OBS_PIPEVIEW_HH
