#include "obs/pipeview.hh"

#include <cinttypes>

#include "common/log.hh"

namespace hbat::obs
{

PipeviewWriter::PipeviewWriter(const std::string &path)
    : path_(path), file_(std::fopen(path.c_str(), "w"))
{
    if (file_ == nullptr)
        hbat_fatal("cannot open pipeview trace '", path,
                   "' for writing");
}

PipeviewWriter::~PipeviewWriter()
{
    std::fclose(file_);
}

void
PipeviewWriter::retire(const PipeviewRecord &rec)
{
    // The disassembly is the fetch line's final field; a ':' in it
    // would shift the viewer's field split (none of our mnemonics or
    // operands contain one, but keep the contract checkable).
    hbat_assert(rec.disasm.find(':') == std::string::npos,
                "pipeview disassembly must not contain ':'");

    std::fprintf(file_,
                 "O3PipeView:fetch:%" PRIu64 ":0x%08" PRIx64
                 ":0:%" PRIu64 ":%s\n",
                 uint64_t(rec.fetch), uint64_t(rec.pc),
                 uint64_t(rec.seq), rec.disasm.c_str());
    std::fprintf(file_, "O3PipeView:decode:%" PRIu64 "\n",
                 uint64_t(rec.decode));
    std::fprintf(file_, "O3PipeView:rename:%" PRIu64 "\n",
                 uint64_t(rec.decode));
    std::fprintf(file_, "O3PipeView:dispatch:%" PRIu64 "\n",
                 uint64_t(rec.dispatch));
    std::fprintf(file_, "O3PipeView:issue:%" PRIu64 "\n",
                 uint64_t(rec.issue));
    if (rec.isMem) {
        std::fprintf(file_, "O3PipeView:xlate:%" PRIu64 "\n",
                     uint64_t(rec.xlateReady));
        std::fprintf(file_, "O3PipeView:mem:%" PRIu64 "\n",
                     uint64_t(rec.complete));
    }
    std::fprintf(file_, "O3PipeView:complete:%" PRIu64 "\n",
                 uint64_t(rec.complete));
    std::fprintf(file_,
                 "O3PipeView:retire:%" PRIu64 ":store:%" PRIu64 "\n",
                 uint64_t(rec.retire),
                 uint64_t(rec.isStore ? rec.retire : 0));
}

} // namespace hbat::obs
