/**
 * @file
 * Per-PC translation attribution: which static loads and stores
 * concentrate the TLB misses.
 *
 * The end-of-run xlate stats say *how many* misses a design took;
 * this profile says *where*. The pipeline records, per static
 * instruction address, the translation requests it presented, the
 * base-TLB misses it took, the miss-handler cycles the walks it
 * initiated cost, and the requests satisfied by piggybacking — the
 * measurement that motivates PC-indexed translation (PCAX): a design
 * is only worth building if a small set of static PCs carries most of
 * the miss traffic.
 *
 * Recording is opt-in (SimConfig::pcProfile): the common case keeps a
 * zero-cost hot path. When on, the per-request cost is one hash-map
 * touch per translation request — only memory ops, and only while
 * profiling.
 *
 * The profile is deterministic: counts depend only on (program,
 * config), and topK() orders by (misses, walk cycles, requests, pc),
 * so emitted reports are byte-identical at any --jobs setting.
 */

#ifndef HBAT_OBS_PC_PROFILE_HH
#define HBAT_OBS_PC_PROFILE_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace hbat::obs
{

/** Translation events attributed to one static instruction. */
struct PcXlateCounts
{
    uint64_t requests = 0;      ///< request() presentations (w/ retries)
    uint64_t misses = 0;        ///< base-TLB misses (Outcome::Miss)
    uint64_t walkCycles = 0;    ///< miss-handler cycles of walks started
    uint64_t piggybackHits = 0; ///< hits satisfied by piggybacking
};

/** One profile row: a static PC and its counts. */
struct PcProfileEntry
{
    VAddr pc = 0;
    PcXlateCounts counts;
};

/** The per-run profile, keyed by static instruction address. */
struct PcProfile
{
    std::unordered_map<VAddr, PcXlateCounts> counts;

    bool empty() const { return counts.empty(); }

    /**
     * The @p k hottest PCs, ordered by misses, then walk cycles, then
     * requests (all descending), then PC (ascending) — a total order,
     * so the result is unique. Pass k = 0 for every recorded PC.
     */
    std::vector<PcProfileEntry> topK(std::size_t k) const;
};

} // namespace hbat::obs

#endif // HBAT_OBS_PC_PROFILE_HH
