#include "obs/stats.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace hbat::obs
{

Histogram::Histogram(unsigned num_buckets) : buckets_(num_buckets, 0)
{
    hbat_assert(num_buckets >= 2, "histogram needs >= 2 buckets");
}

void
Histogram::reset()
{
    buckets_.assign(buckets_.size(), 0);
    samples_ = 0;
    sum_ = 0;
}

void
StatRegistry::checkName(const std::string &name) const
{
    hbat_assert(!name.empty(), "stat name must not be empty");
    for (const Entry &e : entries_)
        hbat_assert(e.name != name, "duplicate stat name '", name, "'");
}

StatRegistry &
StatRegistry::scalar(const std::string &name, const std::string &desc,
                     const uint64_t &v)
{
    checkName(name);
    Entry e;
    e.name = name;
    e.desc = desc;
    e.kind = StatKind::Scalar;
    e.scalar = &v;
    entries_.push_back(std::move(e));
    return *this;
}

StatRegistry &
StatRegistry::formula(const std::string &name, const std::string &desc,
                      std::function<double()> f)
{
    checkName(name);
    Entry e;
    e.name = name;
    e.desc = desc;
    e.kind = StatKind::Formula;
    e.fn = std::move(f);
    entries_.push_back(std::move(e));
    return *this;
}

StatRegistry &
StatRegistry::vector(const std::string &name, const std::string &desc,
                     std::vector<std::string> labels,
                     std::vector<const uint64_t *> elems)
{
    checkName(name);
    hbat_assert(labels.size() == elems.size(),
                "vector stat '", name, "': ", labels.size(),
                " labels vs ", elems.size(), " elements");
    Entry e;
    e.name = name;
    e.desc = desc;
    e.kind = StatKind::Vector;
    e.labels = std::move(labels);
    e.elems = std::move(elems);
    entries_.push_back(std::move(e));
    return *this;
}

StatRegistry &
StatRegistry::histogram(const std::string &name, const std::string &desc,
                        const Histogram &h)
{
    checkName(name);
    Entry e;
    e.name = name;
    e.desc = desc;
    e.kind = StatKind::Histogram;
    e.hist = &h;
    entries_.push_back(std::move(e));
    return *this;
}

StatSnapshot
StatRegistry::snapshot() const
{
    StatSnapshot snap;
    snap.reserve(entries_.size());
    for (const Entry &e : entries_) {
        StatValue v;
        v.name = e.name;
        v.desc = e.desc;
        v.kind = e.kind;
        switch (e.kind) {
          case StatKind::Scalar:
            v.value = double(*e.scalar);
            break;
          case StatKind::Formula:
            v.value = e.fn();
            break;
          case StatKind::Vector:
            v.labels = e.labels;
            for (const uint64_t *p : e.elems)
                v.values.push_back(double(*p));
            break;
          case StatKind::Histogram:
            for (uint64_t b : e.hist->buckets())
                v.values.push_back(double(b));
            v.samples = e.hist->samples();
            v.sum = e.hist->sum();
            v.mean = e.hist->mean();
            break;
        }
        snap.push_back(std::move(v));
    }
    // Deterministic report order: sorted by name, independent of the
    // order components happened to register in (names are unique).
    std::sort(snap.begin(), snap.end(),
              [](const StatValue &a, const StatValue &b) {
                  return a.name < b.name;
              });
    return snap;
}

std::string
StatRegistry::dumpText(const StatSnapshot &snap)
{
    std::ostringstream os;
    char buf[64];
    auto num = [&](double d) -> const char * {
        if (d == double(uint64_t(d)))
            std::snprintf(buf, sizeof(buf), "%llu",
                          (unsigned long long)(uint64_t(d)));
        else
            std::snprintf(buf, sizeof(buf), "%.6f", d);
        return buf;
    };
    for (const StatValue &v : snap) {
        switch (v.kind) {
          case StatKind::Scalar:
          case StatKind::Formula:
            os << v.name << "  " << num(v.value) << "  # " << v.desc
               << '\n';
            break;
          case StatKind::Vector:
            for (size_t i = 0; i < v.values.size(); ++i)
                os << v.name << "::" << v.labels[i] << "  "
                   << num(v.values[i]) << "  # " << v.desc << '\n';
            break;
          case StatKind::Histogram:
            os << v.name << "::samples  " << num(double(v.samples))
               << "  # " << v.desc << '\n';
            os << v.name << "::mean  " << num(v.mean) << "  # "
               << v.desc << '\n';
            for (size_t i = 0; i < v.values.size(); ++i) {
                os << v.name << "::" << i
                   << (i + 1 == v.values.size() ? "+" : "") << "  "
                   << num(v.values[i]) << "  # " << v.desc << '\n';
            }
            break;
        }
    }
    return os.str();
}

} // namespace hbat::obs
