#include "obs/interval.hh"

#include "common/log.hh"

namespace hbat::obs
{

StatSnapshot
intervalDelta(const StatSnapshot *prev, const StatSnapshot &cur)
{
    if (prev != nullptr) {
        hbat_assert(prev->size() == cur.size(),
                    "interval delta over mismatched snapshots: ",
                    prev->size(), " vs ", cur.size(), " stats");
    }

    StatSnapshot out;
    out.reserve(cur.size());
    for (size_t i = 0; i < cur.size(); ++i) {
        StatValue d = cur[i];
        if (prev == nullptr) {
            out.push_back(std::move(d));
            continue;
        }
        const StatValue &p = (*prev)[i];
        hbat_assert(p.name == d.name && p.kind == d.kind,
                    "interval delta: stat mismatch at index ", i, ": '",
                    p.name, "' vs '", d.name, "'");
        switch (d.kind) {
          case StatKind::Scalar:
            d.value -= p.value;
            break;
          case StatKind::Formula:
            break;  // derived value: cumulative at the boundary
          case StatKind::Vector:
            for (size_t j = 0; j < d.values.size(); ++j)
                d.values[j] -= p.values[j];
            break;
          case StatKind::Histogram:
            for (size_t j = 0; j < d.values.size(); ++j)
                d.values[j] -= p.values[j];
            d.samples -= p.samples;
            d.sum -= p.sum;
            d.mean = d.samples == 0
                         ? 0.0
                         : double(d.sum) / double(d.samples);
            break;
        }
        out.push_back(std::move(d));
    }
    return out;
}

} // namespace hbat::obs
