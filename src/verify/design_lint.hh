/**
 * @file
 * Static lint over translation designs and simulation configurations.
 *
 * Catches structurally-invalid experiment setups before any cycles are
 * simulated: bank/entry counts that are not powers of two, XOR-fold
 * widths that exceed the virtual page number, port counts inconsistent
 * with the machine's four load/store units, L1 TLBs at least as large
 * as the L2 they front, unsupported page sizes, and register budgets
 * outside the allocator's range. The bench harness runs this before
 * every sweep; hbat_lint exposes it on the command line.
 */

#ifndef HBAT_VERIFY_DESIGN_LINT_HH
#define HBAT_VERIFY_DESIGN_LINT_HH

#include "sim/sim_config.hh"
#include "tlb/design.hh"
#include "verify/diag.hh"

namespace hbat::verify
{

/** Issue width of Table 1's baseline machine. */
inline constexpr unsigned kIssueWidth = 8;

/** Load/store units (= translation requests per cycle) of Table 1. */
inline constexpr unsigned kMemPorts = 4;

/**
 * Check structural parameters @p p (reported under @p name, under
 * page size @p pageBytes), appending findings to @p report. Exposed
 * separately from lintDesign so hypothetical parameter sets can be
 * checked (tests, config-driven sweep cells). @p issueWidth and
 * @p memPorts describe the machine the design serves — sweeps that
 * vary the machine shape pass the cell's values so the port/bank
 * consistency checks track it.
 */
void lintDesignParams(const tlb::DesignParams &p,
                      const std::string &name, Report &report,
                      unsigned pageBytes = 4096,
                      unsigned issueWidth = kIssueWidth,
                      unsigned memPorts = kMemPorts);

/**
 * Check the structural parameters of @p d (under page size
 * @p pageBytes, default Table 1's 4 KB), appending findings to
 * @p report.
 */
void lintDesign(tlb::Design d, Report &report,
                unsigned pageBytes = 4096);

/** Convenience wrapper returning a fresh report. */
Report lintDesign(tlb::Design d, unsigned pageBytes = 4096);

/**
 * Check a whole simulation configuration: its effective design
 * (customDesign when set, else the Table 2 enum row), page size,
 * register budget, and the machine-structure knobs (issue width,
 * ROB/LSQ depth, FU mix, cache geometry — ConfigMachine findings).
 */
void lintConfig(const sim::SimConfig &cfg, Report &report);

/** Convenience wrapper returning a fresh report. */
Report lintConfig(const sim::SimConfig &cfg);

} // namespace hbat::verify

#endif // HBAT_VERIFY_DESIGN_LINT_HH
