/**
 * @file
 * Loop and stride analysis over the verifier CFG.
 *
 * The footprint analyzer (footprint.hh) needs to know, for every
 * static load/store, *how its effective address evolves*: fixed,
 * marching by a constant stride per loop iteration, bouncing inside a
 * bounded region (hash probes), or unknown. This file derives that
 * from the program alone:
 *
 *  - natural loops from dominators and back edges on the PR 3 CFG,
 *    nested into a forest (parent/depth, innermost loop per block);
 *  - basic induction variables per loop: registers whose in-loop
 *    definitions are all additive updates (addi r,r,imm or the ISA's
 *    post-increment addressing writes);
 *  - static trip counts where the exit test compares an induction
 *    variable against a loop-invariant bound with known distance;
 *  - an abstract interpretation of every loop body over the stride
 *    lattice (StrideVal below), seeded from constant propagation at
 *    the loop preheader and from the enclosing loop's own summary, so
 *    an inner loop still sees the page span an outer loop sweeps.
 *
 * The result is one MemRef per static memory instruction with a
 * classified abstract address. DESIGN.md §12 documents the domain.
 */

#ifndef HBAT_VERIFY_STRIDE_HH
#define HBAT_VERIFY_STRIDE_HH

#include <cstdint>
#include <vector>

#include "verify/dataflow.hh"

namespace hbat::verify
{

/** Sentinel loop id: "not inside any loop". */
inline constexpr size_t kNoLoop = ~size_t(0);

/**
 * One abstract register value in the context of a single loop: the
 * value on iteration k is  B + k*step, where the iteration-entry base
 * B may be known absolutely (B in [lo, hi] when hasBounds; lo == hi
 * is an exact constant) and/or symbolically (B = the value register
 * baseReg held at loop entry, plus offset, when hasBase). Bottom is
 * "not yet computed", Top is "anything".
 */
struct StrideVal
{
    enum class Kind : uint8_t
    {
        Bottom,
        Lin,
        Top
    };

    Kind kind = Kind::Bottom;
    int64_t step = 0;       ///< per-iteration delta (innermost loop)
    bool hasBounds = false; ///< lo/hi bound the iteration-entry base
    int64_t lo = 0;
    int64_t hi = 0;
    bool hasBase = false;   ///< base is entry value of baseReg + offset
    RegIndex baseReg = 0;
    int64_t offset = 0;

    static StrideVal
    top()
    {
        StrideVal v;
        v.kind = Kind::Top;
        return v;
    }

    static StrideVal
    constant(int64_t c)
    {
        StrideVal v;
        v.kind = Kind::Lin;
        v.hasBounds = true;
        v.lo = v.hi = c;
        return v;
    }

    static StrideVal
    range(int64_t lo, int64_t hi)
    {
        StrideVal v;
        v.kind = Kind::Lin;
        v.hasBounds = true;
        v.lo = lo;
        v.hi = hi;
        return v;
    }

    /** The (unknown) value register @p r held at loop entry. */
    static StrideVal
    entry(RegIndex r)
    {
        StrideVal v;
        v.kind = Kind::Lin;
        v.hasBase = true;
        v.baseReg = r;
        return v;
    }

    bool
    isConst() const
    {
        return kind == Kind::Lin && hasBounds && lo == hi && step == 0;
    }

    bool isTop() const { return kind == Kind::Top; }
};

/** One natural loop (all back edges sharing a header, merged). */
struct Loop
{
    size_t header = 0;              ///< header block id
    std::vector<size_t> blocks;     ///< body block ids, sorted, incl. header
    std::vector<size_t> latches;    ///< blocks with a back edge to header
    size_t parent = kNoLoop;        ///< immediately enclosing loop
    unsigned depth = 1;             ///< 1 = outermost
    uint64_t trips = 0;             ///< static trip count; 0 = unknown

    bool contains(size_t block) const;  // binary search over blocks
};

/** One basic induction variable of a loop. */
struct IndVar
{
    RegIndex reg = 0;
    int64_t step = 0;       ///< net additive update per iteration
    /** Every update executes exactly once per iteration. */
    bool stepExact = false;
};

/** One static memory instruction with its abstract address. */
struct MemRef
{
    size_t inst = 0;        ///< instruction index in the CFG
    size_t loop = kNoLoop;  ///< innermost enclosing loop
    StrideVal addr;         ///< abstract effective byte address
    unsigned bytes = 0;     ///< access size
    bool isStore = false;
    /**
     * Static execution estimate: the product of the known trip counts
     * of every enclosing loop (factor 1 per unknown count, so this is
     * a lower bound when itersExact is false).
     */
    uint64_t iters = 1;
    bool itersExact = true;
};

/** The complete loop/stride summary of one program. */
struct StrideAnalysis
{
    std::vector<Loop> loops;            ///< indexed by loop id
    std::vector<size_t> innermost;      ///< block -> loop id or kNoLoop
    std::vector<std::vector<IndVar>> ivs;   ///< per loop, by register
    std::vector<MemRef> refs;           ///< every memory inst, text order

    /** The loop ids from @p loop outward to its outermost ancestor. */
    std::vector<size_t> ancestry(size_t loop) const;
};

/**
 * Run the loop and stride analysis over @p cfg. @p consts is the
 * global constant propagation from the same CFG (Analysis::consts);
 * it seeds loop preheader states and classifies straight-line
 * references.
 */
StrideAnalysis analyzeStrides(const Cfg &cfg, const ConstProp &consts);

} // namespace hbat::verify

#endif // HBAT_VERIFY_STRIDE_HH
