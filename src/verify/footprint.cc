#include "verify/footprint.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"
#include "isa/isa.hh"

namespace hbat::verify
{

namespace
{

/** "0x%llx" rendering of a text address. */
std::string
hexAddr(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx", (unsigned long long)v);
    return buf;
}

/** Inclusive byte interval, used for the working-set union. */
struct Span
{
    uint64_t lo;
    uint64_t hi;
};

uint64_t
pagesIn(const Span &s, unsigned pageBytes)
{
    return s.hi / pageBytes - s.lo / pageBytes + 1;
}

/** Distinct pages covered by the union of @p spans. */
uint64_t
unionPages(std::vector<Span> spans, unsigned pageBytes)
{
    if (spans.empty())
        return 0;
    for (Span &s : spans) {
        s.lo /= pageBytes;
        s.hi /= pageBytes;
    }
    std::sort(spans.begin(), spans.end(),
              [](const Span &a, const Span &b) { return a.lo < b.lo; });
    uint64_t pages = 0;
    Span cur = spans[0];
    for (size_t i = 1; i < spans.size(); ++i) {
        if (spans[i].lo <= cur.hi + 1) {
            cur.hi = std::max(cur.hi, spans[i].hi);
        } else {
            pages += cur.hi - cur.lo + 1;
            cur = spans[i];
        }
    }
    pages += cur.hi - cur.lo + 1;
    return pages;
}

} // namespace

const char *
patternName(RefPattern p)
{
    switch (p) {
      case RefPattern::Fixed: return "fixed";
      case RefPattern::Strided: return "strided";
      case RefPattern::IrregularBounded: return "irregular-bounded";
      case RefPattern::Irregular: return "irregular";
    }
    return "unknown";
}

ProgramFootprint
analyzeFootprint(const kasm::Program &prog, const Analysis &a,
                 unsigned pageBytes)
{
    ProgramFootprint fp;
    fp.pageBytes = pageBytes;
    fp.strides = analyzeStrides(a.cfg, a.consts);
    for (const Loop &loop : fp.strides.loops)
        fp.loopHeaderPcs.push_back(
            a.cfg.pcOf(a.cfg.blocks[loop.header].first));

    std::vector<Span> spans;
    for (const MemRef &m : fp.strides.refs) {
        RefFootprint r;
        r.pc = a.cfg.pcOf(m.inst);
        r.loop = m.loop;
        r.loopDepth =
            m.loop == kNoLoop ? 0 : fp.strides.loops[m.loop].depth;
        r.isStore = m.isStore;
        r.bytes = m.bytes;
        r.estAccesses = m.iters;
        r.estExact = m.itersExact;

        const StrideVal &v = m.addr;
        if (v.kind != StrideVal::Kind::Lin) {
            r.pattern = RefPattern::Irregular;
        } else if (v.step != 0) {
            r.pattern = RefPattern::Strided;
            r.stride = v.step;
            r.pageRun = std::max(
                1.0, double(pageBytes) / double(std::abs(v.step)));
            const uint64_t trips =
                m.loop == kNoLoop ? 0 : fp.strides.loops[m.loop].trips;
            if (v.hasBounds && v.lo >= 0 && trips != 0) {
                const int64_t extent = int64_t(trips - 1) * v.step;
                const int64_t lo = v.lo + std::min<int64_t>(0, extent);
                const int64_t hi = v.hi + std::max<int64_t>(0, extent) +
                                   int64_t(m.bytes) - 1;
                if (lo >= 0) {
                    r.spanKnown = true;
                    r.lo = uint64_t(lo);
                    r.hi = uint64_t(hi);
                }
            }
        } else if (v.hasBounds && v.lo == v.hi) {
            r.pattern = RefPattern::Fixed;
            r.pageRun = std::max<double>(1.0, double(r.estAccesses));
            if (v.lo >= 0) {
                r.spanKnown = true;
                r.lo = uint64_t(v.lo);
                r.hi = uint64_t(v.lo) + m.bytes - 1;
            }
        } else if (v.hasBounds) {
            r.pattern = RefPattern::IrregularBounded;
            if (v.lo >= 0) {
                r.spanKnown = true;
                r.lo = uint64_t(v.lo);
                r.hi = uint64_t(v.hi) + m.bytes - 1;
            }
        } else {
            r.pattern = RefPattern::Irregular;
        }

        if (r.spanKnown) {
            r.spanPages = pagesIn(Span{r.lo, r.hi}, pageBytes);
            spans.push_back(Span{r.lo, r.hi});
        } else {
            // A reference we cannot bound makes the working-set
            // estimate a lower bound.
            fp.estPagesExact = false;
        }
        fp.refs.push_back(r);
    }

    // The program's fixed footprint: text, initialized data, and the
    // top stack page (kasm programs start at stackTop and our
    // workloads stay within one page of it; deeper stack use shows up
    // through sp-relative references, which const-prop resolves).
    const Span text{prog.textBase, prog.textEnd() - 1};
    fp.textPages = pagesIn(text, pageBytes);
    spans.push_back(text);
    for (const kasm::DataSegment &seg : prog.data) {
        if (seg.bytes.empty())
            continue;
        const Span s{seg.base, seg.base + seg.bytes.size() - 1};
        fp.dataPages += pagesIn(s, pageBytes);
        spans.push_back(s);
    }
    const Span stack{prog.stackTop - pageBytes, prog.stackTop - 1};
    fp.stackPages = 1;
    spans.push_back(stack);

    fp.estPages = unionPages(std::move(spans), pageBytes);
    return fp;
}

DesignFootprint
foldDesign(const ProgramFootprint &fp, const tlb::DesignParams &p)
{
    DesignFootprint df;
    df.reachPages = tlb::reachPages(p);
    // estPages is exact or a lower bound, so exceeding reach is a
    // sound conclusion either way.
    df.exceedsReach = fp.estPages > df.reachPages;

    if (p.kind != tlb::DesignParams::Kind::Interleaved || p.banks <= 1)
        return df;

    // Same-bank collision groups: references in the same innermost
    // loop whose statically-known address streams keep landing on the
    // same bank. The rate is measured by evaluating the design's own
    // bank-select function over a window of lockstep iterations.
    const unsigned pageBytes = fp.pageBytes;
    auto vpnAt = [&](const RefFootprint &r, uint64_t k) -> uint64_t {
        const int64_t addr = int64_t(r.lo) + int64_t(k) * r.stride;
        return uint64_t(addr) / pageBytes;
    };
    auto conflictRate = [&](const RefFootprint &a,
                            const RefFootprint &b) -> double {
        uint64_t window = 64;
        if (a.loop != kNoLoop) {
            const uint64_t trips =
                fp.strides.loops[a.loop].trips;
            if (trips != 0)
                window = std::min(window, trips);
        }
        if (window == 0)
            return 0.0;
        uint64_t collide = 0;
        for (uint64_t k = 0; k < window; ++k) {
            const uint64_t va = vpnAt(a, k);
            const uint64_t vb = vpnAt(b, k);
            if (tlb::bankOfPage(p, va) != tlb::bankOfPage(p, vb))
                continue;
            // Same page on a piggybacked bank rides for free
            // (Section 3.4); everywhere else it still serializes.
            if (va == vb && p.piggybackBanks)
                continue;
            ++collide;
        }
        return double(collide) / double(window);
    };

    for (size_t i = 0; i < fp.refs.size(); ++i) {
        const RefFootprint &r = fp.refs[i];
        if (r.loop == kNoLoop || !r.spanKnown)
            continue;
        if (r.pattern != RefPattern::Strided &&
            r.pattern != RefPattern::Fixed)
            continue;
        bool grouped = false;
        for (BankConflict &g : df.conflicts) {
            // Compare against the group's first member.
            const auto it = std::find_if(
                fp.refs.begin(), fp.refs.end(),
                [&](const RefFootprint &m) {
                    return m.pc == g.pcs.front();
                });
            const double rate = conflictRate(*it, r);
            if (it->loop == r.loop && rate >= 0.5) {
                g.pcs.push_back(r.pc);
                g.rate = std::min(g.rate, rate);
                grouped = true;
                break;
            }
        }
        if (!grouped) {
            BankConflict g;
            g.bank = tlb::bankOfPage(p, vpnAt(r, 0));
            g.pcs.push_back(r.pc);
            df.conflicts.push_back(std::move(g));
        }
    }
    // Only groups of two or more references actually contend.
    std::erase_if(df.conflicts, [](const BankConflict &g) {
        return g.pcs.size() < 2;
    });
    return df;
}

void
lintProgramFootprint(const ProgramFootprint &fp, Report &report)
{
    // Loop-resident references with no static pattern: the piggyback
    // and interleave mechanisms cannot be predicted for them, and they
    // are where dynamic profiles usually find the misses.
    for (const RefFootprint &r : fp.refs) {
        if (r.loop == kNoLoop)
            continue;
        if (r.pattern != RefPattern::Irregular &&
            r.pattern != RefPattern::IrregularBounded)
            continue;
        std::string msg = detail::concat(
            r.isStore ? "store" : "load", " in a depth-",
            r.loopDepth, " loop has no static stride");
        if (r.pattern == RefPattern::IrregularBounded)
            msg += detail::concat(" (bounded to ", r.spanPages,
                                  " page(s))");
        report.add(Diag::IrregularStride, Severity::Info, r.pc,
                   std::move(msg));
    }

    // Loops that stream through memory without a statically bounded
    // trip count: their footprint cannot be capped at lint time.
    for (size_t l = 0; l < fp.strides.loops.size(); ++l) {
        const Loop &loop = fp.strides.loops[l];
        if (loop.trips != 0)
            continue;
        bool strided = false;
        for (const RefFootprint &r : fp.refs)
            strided |= r.loop == l &&
                       r.pattern == RefPattern::Strided;
        if (!strided)
            continue;
        std::string ivs;
        for (const IndVar &iv : fp.strides.ivs[l]) {
            if (!ivs.empty())
                ivs += ", ";
            ivs += detail::concat(isa::intRegName(iv.reg), "+=",
                                  iv.step);
        }
        std::string msg =
            "loop with strided references has no static trip bound";
        if (!ivs.empty())
            msg += detail::concat(" (induction: ", ivs, ")");
        report.add(Diag::UnboundedInduction, Severity::Info,
                   fp.loopHeaderPcs[l], std::move(msg));
    }
}

void
lintDesignFootprint(const ProgramFootprint &fp,
                    const tlb::DesignParams &p,
                    const std::string &label, Report &report)
{
    const DesignFootprint df = foldDesign(fp, p);
    if (df.exceedsReach) {
        report.add(
            Diag::FootprintExceedsReach, Severity::Info, 0,
            detail::concat("estimated working set ",
                           fp.estPagesExact ? "" : ">= ", fp.estPages,
                           " page(s) exceeds ", label, " reach of ",
                           df.reachPages, " page(s) at ", fp.pageBytes,
                           "-byte pages"));
    }
    for (const BankConflict &g : df.conflicts) {
        std::string members;
        for (VAddr pc : g.pcs) {
            if (!members.empty())
                members += ", ";
            members += hexAddr(pc);
        }
        report.add(
            Diag::BankConflictHotspot, Severity::Info, g.pcs.front(),
            detail::concat(g.pcs.size(), " lockstep references (",
                           members, ") contend for bank ", g.bank,
                           " of ", label, " in >=",
                           unsigned(g.rate * 100), "% of iterations"));
    }
}

} // namespace hbat::verify
