#include "verify/stride.hh"

#include <algorithm>

#include "common/log.hh"

namespace hbat::verify
{

using isa::Inst;
using isa::Opcode;
using isa::RC;

bool
Loop::contains(size_t block) const
{
    return std::binary_search(blocks.begin(), blocks.end(), block);
}

std::vector<size_t>
StrideAnalysis::ancestry(size_t loop) const
{
    std::vector<size_t> chain;
    for (size_t l = loop; l != kNoLoop; l = loops[l].parent)
        chain.push_back(l);
    return chain;
}

namespace
{

/** Values past this magnitude are treated as lost (overflow guard). */
constexpr int64_t kValLimit = int64_t(1) << 40;

// ---------------------------------------------------------------------
// StrideVal arithmetic. Every helper returns a canonical value: fields
// behind a cleared hasBounds/hasBase flag are zero, so the fixpoint's
// equality checks compare only meaningful state.
// ---------------------------------------------------------------------

StrideVal
normalize(StrideVal v)
{
    if (v.kind != StrideVal::Kind::Lin)
        return v.kind == StrideVal::Kind::Top ? StrideVal::top()
                                              : StrideVal{};
    if (v.hasBounds && (v.lo > v.hi || v.lo <= -kValLimit ||
                        v.hi >= kValLimit)) {
        v.hasBounds = false;
    }
    if (!v.hasBounds) {
        v.lo = v.hi = 0;
    }
    if (!v.hasBase) {
        v.baseReg = 0;
        v.offset = 0;
    }
    // A Lin with no information at all is just Top.
    if (!v.hasBounds && !v.hasBase && v.step == 0)
        return StrideVal::top();
    return v;
}

bool
sameVal(const StrideVal &a, const StrideVal &b)
{
    return a.kind == b.kind && a.step == b.step &&
           a.hasBounds == b.hasBounds && a.lo == b.lo && a.hi == b.hi &&
           a.hasBase == b.hasBase && a.baseReg == b.baseReg &&
           a.offset == b.offset;
}

StrideVal
addConst(StrideVal a, int64_t c)
{
    if (a.kind != StrideVal::Kind::Lin)
        return StrideVal::top();
    if (a.hasBounds) {
        a.lo += c;
        a.hi += c;
    }
    if (a.hasBase)
        a.offset += c;
    return normalize(a);
}

StrideVal
addVals(const StrideVal &a, const StrideVal &b)
{
    if (a.isConst())
        return addConst(b, a.lo);
    if (b.isConst())
        return addConst(a, b.lo);
    if (a.kind != StrideVal::Kind::Lin ||
        b.kind != StrideVal::Kind::Lin)
        return StrideVal::top();
    StrideVal r;
    r.kind = StrideVal::Kind::Lin;
    r.step = a.step + b.step;
    if (a.hasBounds && b.hasBounds) {
        r.hasBounds = true;
        r.lo = a.lo + b.lo;
        r.hi = a.hi + b.hi;
    }
    return normalize(r);
}

StrideVal
subVals(const StrideVal &a, const StrideVal &b)
{
    if (b.isConst())
        return addConst(a, -b.lo);
    // Same symbolic base, same stride: the difference is exact.
    if (a.kind == StrideVal::Kind::Lin &&
        b.kind == StrideVal::Kind::Lin && a.hasBase && b.hasBase &&
        a.baseReg == b.baseReg && a.step == b.step)
        return StrideVal::constant(a.offset - b.offset);
    if (a.kind != StrideVal::Kind::Lin ||
        b.kind != StrideVal::Kind::Lin)
        return StrideVal::top();
    StrideVal r;
    r.kind = StrideVal::Kind::Lin;
    r.step = a.step - b.step;
    if (a.hasBounds && b.hasBounds) {
        r.hasBounds = true;
        r.lo = a.lo - b.hi;
        r.hi = a.hi - b.lo;
    }
    return normalize(r);
}

StrideVal
mulConst(const StrideVal &a, int64_t c)
{
    if (a.isConst())
        return StrideVal::constant(a.lo * c);
    if (a.kind != StrideVal::Kind::Lin || c == 0)
        return c == 0 ? StrideVal::constant(0) : StrideVal::top();
    StrideVal r;
    r.kind = StrideVal::Kind::Lin;
    r.step = a.step * c;
    if (a.hasBounds) {
        r.hasBounds = true;
        r.lo = c > 0 ? a.lo * c : a.hi * c;
        r.hi = c > 0 ? a.hi * c : a.lo * c;
    }
    return normalize(r);
}

StrideVal
andImm(const StrideVal &a, int64_t m)
{
    if (a.isConst())
        return StrideVal::constant(a.lo & m);
    // Masking is the hash-probe idiom: whatever the input stream was,
    // the result bounces inside [0, m].
    if (a.kind == StrideVal::Kind::Lin && a.hasBounds && a.step == 0 &&
        a.lo >= 0 && a.hi <= m)
        return a;
    return StrideVal::range(0, m);
}

/**
 * Join @p src into @p dst; returns true when @p dst changed. With
 * @p widen set (fixpoint rounds past the second), bounds that would
 * keep growing are dropped instead — the widening step that bounds
 * the iteration (DESIGN.md §12).
 */
bool
joinInto(StrideVal &dst, const StrideVal &src, bool widen)
{
    if (src.kind == StrideVal::Kind::Bottom)
        return false;
    if (dst.kind == StrideVal::Kind::Bottom) {
        dst = normalize(src);
        return true;
    }
    if (dst.kind == StrideVal::Kind::Top)
        return false;
    if (src.kind == StrideVal::Kind::Top) {
        dst = StrideVal::top();
        return true;
    }
    if (dst.step != src.step) {
        dst = StrideVal::top();
        return true;
    }
    StrideVal r;
    r.kind = StrideVal::Kind::Lin;
    r.step = dst.step;
    if (dst.hasBase && src.hasBase && dst.baseReg == src.baseReg &&
        dst.offset == src.offset) {
        r.hasBase = true;
        r.baseReg = dst.baseReg;
        r.offset = dst.offset;
    }
    if (dst.hasBounds && src.hasBounds) {
        r.hasBounds = true;
        r.lo = std::min(dst.lo, src.lo);
        r.hi = std::max(dst.hi, src.hi);
        if (widen && (r.lo < dst.lo || r.hi > dst.hi))
            r.hasBounds = false;
    }
    r = normalize(r);
    if (sameVal(r, dst))
        return false;
    dst = r;
    return true;
}

// ---------------------------------------------------------------------
// Abstract machine state: one StrideVal per integer register, plus the
// exact-constant projection kept in lockstep through ConstProp::step
// so multi-instruction constant forms (LUI+ORI...) stay exact.
// ---------------------------------------------------------------------

struct RegState
{
    std::array<StrideVal, 32> v{};
    ConstState cs;
    bool valid = false;
};

StrideVal
regOf(const RegState &st, RegIndex r)
{
    if (r == 0)
        return StrideVal::constant(0);
    return st.v[r];
}

/** Transfer one instruction through @p st. */
void
transfer(const Inst &inst, RegState &st)
{
    const isa::OpInfo &info = isa::opInfo(inst.op);
    const StrideVal a = regOf(st, inst.rs1);
    const StrideVal b = regOf(st, inst.rs2);

    const bool writesInt =
        info.rdClass == RC::Int && !info.rdIsSource;

    StrideVal nv = StrideVal::top();
    if (writesInt) {
        switch (inst.op) {
          case Opcode::Addi:
            nv = addConst(a, inst.imm);
            break;
          case Opcode::Add:
            nv = addVals(a, b);
            break;
          case Opcode::Sub:
            nv = subVals(a, b);
            break;
          case Opcode::Slli:
            nv = mulConst(a, int64_t(1) << (inst.imm & 31));
            break;
          case Opcode::Mul:
            if (b.isConst())
                nv = mulConst(a, b.lo);
            else if (a.isConst())
                nv = mulConst(b, a.lo);
            break;
          case Opcode::Andi:
            if (inst.imm >= 0)
                nv = andImm(a, inst.imm);
            break;
          default:
            break;  // loads, logic, compares... exact or Top below
        }
    }

    // Post-increment addressing updates the base additively.
    if (info.writesBase && inst.rs1 != 0)
        st.v[inst.rs1] = addConst(a, inst.imm);

    ConstProp::step(inst, st.cs);

    if (info.writesBase && inst.rs1 != 0 && st.v[inst.rs1].isTop() &&
        st.cs.isKnown(inst.rs1))
        st.v[inst.rs1] =
            StrideVal::constant(int64_t(st.cs.val[inst.rs1]));

    if (writesInt && inst.rd != 0) {
        if (st.cs.isKnown(inst.rd))
            nv = StrideVal::constant(int64_t(st.cs.val[inst.rd]));
        else if (nv.isConst())
            st.cs.setKnown(inst.rd, uint32_t(uint64_t(nv.lo)));
        st.v[inst.rd] = nv;
    }
    if (inst.op == Opcode::Jal)
        st.v[isa::reg::ra] = StrideVal::top();
}

/** Abstract effective address of memory instruction @p inst. */
StrideVal
memAddr(const Inst &inst, const RegState &st)
{
    const isa::OpInfo &info = isa::opInfo(inst.op);
    const StrideVal base = regOf(st, inst.rs1);
    if (info.writesBase)
        return base;    // post-increment accesses M[old base]
    if (info.rs2Class != RC::None)
        return addVals(base, regOf(st, inst.rs2));
    return addConst(base, inst.imm);
}

/** Exact-constant meet of @p other into @p into. */
bool
meetConst(ConstState &into, const ConstState &other)
{
    uint32_t agreed = into.known & other.known;
    for (int r = 1; r < 32; ++r) {
        if (((agreed >> r) & 1) && into.val[r] != other.val[r])
            agreed &= ~(uint32_t(1) << r);
    }
    agreed |= 1;
    const bool changed = agreed != into.known;
    into.known = agreed;
    return changed;
}

/**
 * Join @p src into @p dst. Registers in @p pinned (a 32-bit mask)
 * keep dst's value — the induction variables, whose header value is
 * the recurrence itself, not the join of its unrollings.
 */
bool
joinState(RegState &dst, const RegState &src, bool widen,
          uint32_t pinned)
{
    if (!src.valid)
        return false;
    if (!dst.valid) {
        dst = src;
        return true;
    }
    bool changed = false;
    for (int r = 1; r < 32; ++r) {
        if ((pinned >> r) & 1)
            continue;
        changed |= joinInto(dst.v[r], src.v[r], widen);
    }
    // The const projection never joins pinned registers back in
    // either: IVs vary across iterations by construction.
    ConstState masked = src.cs;
    for (int r = 1; r < 32; ++r)
        if ((pinned >> r) & 1)
            masked.setUnknown(RegIndex(r));
    changed |= meetConst(dst.cs, masked);
    return changed;
}

// ---------------------------------------------------------------------
// Dominators and the loop forest.
// ---------------------------------------------------------------------

/** Dense bitset with equality (verify::BitVec hides its words). */
struct Bits
{
    std::vector<uint64_t> w;

    explicit Bits(size_t n = 0) : w((n + 63) / 64, 0) {}

    bool get(size_t i) const { return (w[i >> 6] >> (i & 63)) & 1; }
    void set(size_t i) { w[i >> 6] |= uint64_t(1) << (i & 63); }

    void
    setAll(size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            set(i);
    }

    void
    andWith(const Bits &o)
    {
        for (size_t i = 0; i < w.size(); ++i)
            w[i] &= o.w[i];
    }

    bool operator==(const Bits &) const = default;
};

std::vector<Bits>
dominators(const Cfg &cfg)
{
    const size_t nb = cfg.blocks.size();
    std::vector<Bits> dom(nb, Bits(nb));
    for (size_t b = 0; b < nb; ++b) {
        if (b == cfg.entryBlock)
            dom[b].set(b);
        else
            dom[b].setAll(nb);
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = 0; b < nb; ++b) {
            if (b == cfg.entryBlock || !cfg.blocks[b].reachable)
                continue;
            Bits nd(nb);
            bool have = false;
            for (size_t p : cfg.blocks[b].preds) {
                if (!cfg.blocks[p].reachable)
                    continue;
                if (!have) {
                    nd = dom[p];
                    have = true;
                } else {
                    nd.andWith(dom[p]);
                }
            }
            if (!have)
                continue;
            nd.set(b);
            if (!(nd == dom[b])) {
                dom[b] = nd;
                changed = true;
            }
        }
    }
    return dom;
}

std::vector<Loop>
findNaturalLoops(const Cfg &cfg, const std::vector<Bits> &dom)
{
    const size_t nb = cfg.blocks.size();

    // Back edges u -> h where h dominates u; loops merged per header.
    std::vector<std::vector<size_t>> latchesOf(nb);
    for (size_t u = 0; u < nb; ++u) {
        if (!cfg.blocks[u].reachable)
            continue;
        for (size_t h : cfg.blocks[u].succs) {
            if (dom[u].get(h))
                latchesOf[h].push_back(u);
        }
    }

    std::vector<Loop> loops;
    for (size_t h = 0; h < nb; ++h) {
        if (latchesOf[h].empty())
            continue;
        Loop L;
        L.header = h;
        L.latches = latchesOf[h];

        // Natural loop body: backward walk from the latches to the
        // header.
        std::vector<bool> inBody(nb, false);
        inBody[h] = true;
        std::vector<size_t> work = L.latches;
        for (size_t u : work)
            inBody[u] = true;
        while (!work.empty()) {
            const size_t u = work.back();
            work.pop_back();
            if (u == h)
                continue;
            for (size_t p : cfg.blocks[u].preds) {
                if (!cfg.blocks[p].reachable || inBody[p])
                    continue;
                inBody[p] = true;
                work.push_back(p);
            }
        }
        for (size_t b = 0; b < nb; ++b)
            if (inBody[b])
                L.blocks.push_back(b);
        loops.push_back(std::move(L));
    }

    // Nesting: the parent of L is the smallest other loop containing
    // L's header; depth follows the parent chain.
    for (size_t i = 0; i < loops.size(); ++i) {
        size_t best = kNoLoop;
        for (size_t j = 0; j < loops.size(); ++j) {
            if (j == i || !loops[j].contains(loops[i].header) ||
                loops[j].header == loops[i].header)
                continue;
            if (best == kNoLoop ||
                loops[j].blocks.size() < loops[best].blocks.size())
                best = j;
        }
        loops[i].parent = best;
    }
    for (size_t i = 0; i < loops.size(); ++i) {
        unsigned depth = 1;
        for (size_t p = loops[i].parent; p != kNoLoop;
             p = loops[p].parent) {
            ++depth;
            if (depth > loops.size())
                break;  // malformed nesting (irreducible graph)
        }
        loops[i].depth = depth;
    }
    return loops;
}

std::vector<size_t>
innermostLoops(const Cfg &cfg, const std::vector<Loop> &loops)
{
    std::vector<size_t> inner(cfg.blocks.size(), kNoLoop);
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        for (size_t l = 0; l < loops.size(); ++l) {
            if (!loops[l].contains(b))
                continue;
            if (inner[b] == kNoLoop ||
                loops[l].depth > loops[inner[b]].depth ||
                (loops[l].depth == loops[inner[b]].depth &&
                 loops[l].blocks.size() <
                     loops[inner[b]].blocks.size()))
                inner[b] = l;
        }
    }
    return inner;
}

// ---------------------------------------------------------------------
// Induction variables.
// ---------------------------------------------------------------------

std::vector<IndVar>
findIvs(const Cfg &cfg, const std::vector<Loop> &loops,
        const std::vector<size_t> &innermost, size_t lid,
        const std::vector<Bits> &dom)
{
    const Loop &L = loops[lid];
    struct DefScan
    {
        bool any = false;
        bool additive = true;
        bool inInner = false;
        int64_t step = 0;
        std::vector<size_t> blocks;
    };
    std::array<DefScan, 32> scan;

    for (size_t b : L.blocks) {
        for (size_t i = cfg.blocks[b].first; i < cfg.blocks[b].end;
             ++i) {
            const Inst &inst = cfg.insts[i];
            const InstEffect e = instEffect(inst);
            const isa::OpInfo &info = isa::opInfo(inst.op);
            for (int r = 1; r < 32; ++r) {
                if (!((e.defs >> intSlot(RegIndex(r))) & 1))
                    continue;
                DefScan &d = scan[r];
                d.any = true;
                d.blocks.push_back(b);
                if (innermost[b] != lid)
                    d.inInner = true;
                const bool loadsIntoR = info.rdClass == RC::Int &&
                                        !info.rdIsSource &&
                                        inst.rd == r;
                if (inst.op == Opcode::Addi && inst.rd == r &&
                    inst.rs1 == r) {
                    d.step += inst.imm;
                } else if (info.writesBase && inst.rs1 == r &&
                           !loadsIntoR) {
                    d.step += inst.imm;
                } else {
                    d.additive = false;
                }
            }
        }
    }

    std::vector<IndVar> ivs;
    for (int r = 1; r < 32; ++r) {
        const DefScan &d = scan[r];
        if (!d.any || !d.additive || d.inInner || d.step == 0)
            continue;
        bool exact = true;
        for (size_t db : d.blocks)
            for (size_t latch : L.latches)
                exact &= dom[latch].get(db);
        ivs.push_back(IndVar{RegIndex(r), d.step, exact});
    }
    return ivs;
}

// ---------------------------------------------------------------------
// Trip counts.
// ---------------------------------------------------------------------

enum class Rel : uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

Rel
mirror(Rel r)
{
    switch (r) {
      case Rel::Lt: return Rel::Gt;
      case Rel::Le: return Rel::Ge;
      case Rel::Gt: return Rel::Lt;
      case Rel::Ge: return Rel::Le;
      default: return r;
    }
}

Rel
negate(Rel r)
{
    switch (r) {
      case Rel::Eq: return Rel::Ne;
      case Rel::Ne: return Rel::Eq;
      case Rel::Lt: return Rel::Ge;
      case Rel::Ge: return Rel::Lt;
      case Rel::Le: return Rel::Gt;
      case Rel::Gt: return Rel::Le;
    }
    return r;
}

/**
 * Smallest k >= 0 with (v0 + k*s) REL (v0 + d0), i.e. k*s REL d0.
 * Returns false when no such k exists or the form is unsupported.
 */
bool
firstExit(Rel rel, int64_t d0, int64_t s, int64_t &k)
{
    switch (rel) {
      case Rel::Ge:     // k*s >= d0
        if (s > 0) {
            k = d0 <= 0 ? 0 : (d0 + s - 1) / s;
            return true;
        }
        if (d0 <= 0) {
            k = 0;
            return true;
        }
        return false;
      case Rel::Gt:
        return firstExit(Rel::Ge, d0 + 1, s, k);
      case Rel::Le:     // k*s <= d0
        if (s < 0) {
            k = d0 >= 0 ? 0 : (-d0 + (-s) - 1) / (-s);
            return true;
        }
        if (d0 >= 0) {
            k = 0;
            return true;
        }
        return false;
      case Rel::Lt:
        return firstExit(Rel::Le, d0 - 1, s, k);
      case Rel::Eq:
        if (s != 0 && d0 % s == 0 && d0 / s >= 0) {
            k = d0 / s;
            return true;
        }
        return false;
      case Rel::Ne:
        if (d0 != 0) {
            k = 0;
            return true;
        }
        return false;
    }
    return false;
}

bool
branchRel(Opcode op, Rel &rel)
{
    switch (op) {
      case Opcode::Beq: rel = Rel::Eq; return true;
      case Opcode::Bne: rel = Rel::Ne; return true;
      case Opcode::Blt: case Opcode::Bltu: rel = Rel::Lt; return true;
      case Opcode::Bge: case Opcode::Bgeu: rel = Rel::Ge; return true;
      default: return false;
    }
}

} // namespace

// ---------------------------------------------------------------------
// The driver.
// ---------------------------------------------------------------------

StrideAnalysis
analyzeStrides(const Cfg &cfg, const ConstProp &consts)
{
    StrideAnalysis sa;
    if (cfg.blocks.empty())
        return sa;

    const std::vector<Bits> dom = dominators(cfg);
    sa.loops = findNaturalLoops(cfg, dom);
    sa.innermost = innermostLoops(cfg, sa.loops);
    sa.ivs.resize(sa.loops.size());

    // Per-loop retained block states, parallel to Loop::blocks.
    std::vector<std::vector<RegState>> loopIn(sa.loops.size());
    std::vector<bool> analyzed(sa.loops.size(), false);

    auto blockSlot = [&](size_t lid, size_t b) -> size_t {
        const std::vector<size_t> &blocks = sa.loops[lid].blocks;
        const auto it =
            std::lower_bound(blocks.begin(), blocks.end(), b);
        hbat_assert(it != blocks.end() && *it == b,
                    "block not in loop");
        return size_t(it - blocks.begin());
    };

    // Absolute (demoted) state at the exit of block p, in whatever
    // context p was analyzed in: the enclosing loop when that loop is
    // done, global constant propagation otherwise.
    auto contextExit = [&](size_t p) -> RegState {
        RegState st;
        const size_t pl = sa.innermost[p];
        if (pl != kNoLoop && analyzed[pl] &&
            loopIn[pl][blockSlot(pl, p)].valid) {
            st = loopIn[pl][blockSlot(pl, p)];
            for (size_t i = cfg.blocks[p].first;
                 i < cfg.blocks[p].end; ++i)
                transfer(cfg.insts[i], st);
            // Demote loop-relative values to absolute spans: over all
            // iterations the base covers bounds + trips * step.
            const uint64_t trips = sa.loops[pl].trips;
            for (int r = 1; r < 32; ++r) {
                StrideVal v = st.v[r];
                v.hasBase = false;
                if (v.kind != StrideVal::Kind::Lin || !v.hasBounds) {
                    st.v[r] = StrideVal::top();
                    continue;
                }
                if (v.step != 0) {
                    if (trips == 0) {
                        st.v[r] = StrideVal::top();
                        continue;
                    }
                    const int64_t extent =
                        int64_t(trips - 1) * v.step;
                    v.lo += std::min<int64_t>(0, extent);
                    v.hi += std::max<int64_t>(0, extent);
                    v.step = 0;
                }
                st.v[r] = normalize(v);
            }
            return st;
        }
        if (!consts.visited[p])
            return st;  // invalid
        st.valid = true;
        st.cs = consts.in[p];
        for (int r = 1; r < 32; ++r)
            st.v[r] = st.cs.isKnown(RegIndex(r))
                          ? StrideVal::constant(
                                int64_t(st.cs.val[r]))
                          : StrideVal::top();
        for (size_t i = cfg.blocks[p].first; i < cfg.blocks[p].end;
             ++i)
            transfer(cfg.insts[i], st);
        return st;
    };

    // Process loops outermost-first so children can demote from
    // parents, then siblings in text order for determinism.
    std::vector<size_t> order(sa.loops.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (sa.loops[a].depth != sa.loops[b].depth)
            return sa.loops[a].depth < sa.loops[b].depth;
        return sa.loops[a].header < sa.loops[b].header;
    });

    std::vector<MemRef> refs;

    for (size_t lid : order) {
        Loop &L = sa.loops[lid];
        sa.ivs[lid] = findIvs(cfg, sa.loops, sa.innermost, lid, dom);

        uint32_t ivMask = 0;
        for (const IndVar &iv : sa.ivs[lid])
            ivMask |= uint32_t(1) << iv.reg;

        // Registers defined anywhere in the loop lose their constant
        // projection at the header (they vary across iterations until
        // the fixpoint proves otherwise -- it never re-adds them).
        RegSet loopDefs = 0;
        for (size_t b : L.blocks)
            for (size_t i = cfg.blocks[b].first;
                 i < cfg.blocks[b].end; ++i)
                loopDefs |= instEffect(cfg.insts[i]).defs;

        // Loop-entry state: join the demoted exits of every pred of
        // the header from outside the loop.
        RegState entryAbs;
        std::vector<size_t> outsidePreds;
        for (size_t p : cfg.blocks[L.header].preds) {
            if (L.contains(p) || !cfg.blocks[p].reachable)
                continue;
            outsidePreds.push_back(p);
            const RegState ex = contextExit(p);
            if (!ex.valid)
                continue;
            if (!entryAbs.valid) {
                entryAbs = ex;
            } else {
                for (int r = 1; r < 32; ++r)
                    joinInto(entryAbs.v[r], ex.v[r], false);
                meetConst(entryAbs.cs, ex.cs);
            }
        }
        if (!entryAbs.valid) {
            // Header with no analyzable outside pred (e.g. the entry
            // block itself is a loop header): fall back to the global
            // const state, which is meet-polluted but sound.
            if (!consts.visited[L.header])
                continue;
            entryAbs.valid = true;
            entryAbs.cs = consts.in[L.header];
            for (int r = 1; r < 32; ++r)
                entryAbs.v[r] =
                    entryAbs.cs.isKnown(RegIndex(r))
                        ? StrideVal::constant(
                              int64_t(entryAbs.cs.val[r]))
                        : StrideVal::top();
        }

        // Preheader relations "b = a + C" for relational trip counts
        // (loop bounds computed from the induction base, e.g.
        // rowend = px + (n-2)*8). Single-preheader loops only.
        std::array<int8_t, 32> relSrc;
        std::array<int64_t, 32> relOff{};
        relSrc.fill(-1);
        if (outsidePreds.size() == 1) {
            const size_t p = outsidePreds[0];
            for (size_t i = cfg.blocks[p].first;
                 i < cfg.blocks[p].end; ++i) {
                const Inst &inst = cfg.insts[i];
                const InstEffect e = instEffect(inst);
                for (int r = 1; r < 32; ++r) {
                    if (!((e.defs >> intSlot(RegIndex(r))) & 1))
                        continue;
                    relSrc[r] = -1;
                    // Any redefinition of a source invalidates the
                    // relations anchored to it.
                    for (int q = 1; q < 32; ++q)
                        if (relSrc[q] == r)
                            relSrc[q] = -1;
                    if (inst.op == Opcode::Addi && inst.rd == r &&
                        inst.rs1 != 0 && inst.rs1 != r) {
                        relSrc[r] = int8_t(inst.rs1);
                        relOff[r] = inst.imm;
                    }
                }
            }
        }

        // Header entry value: every register re-anchors to its own
        // loop-entry symbol, keeps whatever absolute bounds survived
        // demotion, and induction variables carry their step.
        RegState entry;
        entry.valid = true;
        entry.cs = entryAbs.cs;
        for (int r = 1; r < 32; ++r) {
            StrideVal e = StrideVal::entry(RegIndex(r));
            const StrideVal &abs = entryAbs.v[r];
            if (abs.kind == StrideVal::Kind::Lin && abs.hasBounds) {
                e.hasBounds = true;
                e.lo = abs.lo;
                e.hi = abs.hi;
            }
            for (const IndVar &iv : sa.ivs[lid])
                if (iv.reg == r)
                    e.step = iv.step;
            entry.v[r] = e;
            if ((loopDefs >> intSlot(RegIndex(r))) & 1)
                entry.cs.setUnknown(RegIndex(r));
        }

        // Fixpoint over the loop body, widening past round 2.
        std::vector<RegState> &in = loopIn[lid];
        in.assign(L.blocks.size(), RegState{});
        in[blockSlot(lid, L.header)] = entry;

        for (unsigned round = 0; round < 100; ++round) {
            const bool widen = round >= 2;
            bool changed = false;
            for (size_t b : L.blocks) {
                RegState next;
                if (b == L.header)
                    next = entry;
                for (size_t p : cfg.blocks[b].preds) {
                    if (!L.contains(p))
                        continue;
                    // Back edges into non-header blocks would make
                    // this not a natural loop; joining them is still
                    // sound.
                    RegState ps = in[blockSlot(lid, p)];
                    if (!ps.valid)
                        continue;
                    for (size_t i = cfg.blocks[p].first;
                         i < cfg.blocks[p].end; ++i)
                        transfer(cfg.insts[i], ps);
                    joinState(next, ps, widen,
                              b == L.header ? ivMask : 0);
                }
                if (!next.valid)
                    continue;
                RegState &slot = in[blockSlot(lid, b)];
                changed |= joinState(slot, next, widen, 0);
            }
            if (!changed)
                break;
        }

        // Static trip count from the exit test, preferring the header
        // (while-style) over the latches (do-while-style).
        std::vector<size_t> testBlocks{L.header};
        for (size_t latch : L.latches)
            if (latch != L.header)
                testBlocks.push_back(latch);
        for (size_t tb : testBlocks) {
            const BasicBlock &bb = cfg.blocks[tb];
            if (bb.end == bb.first)
                continue;
            const size_t bi = bb.end - 1;
            const Inst &br = cfg.insts[bi];
            Rel rel;
            if (!isa::isBranch(br.op) || !branchRel(br.op, rel))
                continue;
            const size_t takenIdx =
                size_t(int64_t(bi) + 1 + int64_t(br.imm));
            if (takenIdx >= cfg.size() || bi + 1 >= cfg.size())
                continue;
            const size_t takenBlk = cfg.blockOf[takenIdx];
            const size_t fallBlk = cfg.blockOf[bi + 1];
            const bool takenExits = !L.contains(takenBlk);
            const bool fallExits = !L.contains(fallBlk);
            if (takenExits == fallExits)
                continue;   // both stay or both leave: not the test

            RegState st = in[blockSlot(lid, tb)];
            if (!st.valid)
                continue;
            for (size_t i = bb.first; i < bi; ++i)
                transfer(cfg.insts[i], st);
            StrideVal x = regOf(st, br.rs1);
            StrideVal y = regOf(st, br.rs2);
            if (x.step == 0 && y.step != 0) {
                std::swap(x, y);
                rel = mirror(rel);
            }
            if (x.step == 0 || y.step != 0)
                continue;   // need exactly one moving side
            if (!takenExits)
                rel = negate(rel);

            // Distance from the moving value to the bound on the
            // first evaluation.
            int64_t d0 = 0;
            bool haveD0 = false;
            if (y.isConst() && x.hasBounds && x.lo == x.hi) {
                d0 = y.lo - x.lo;
                haveD0 = true;
            } else if (x.hasBase && y.hasBase) {
                if (y.baseReg == x.baseReg) {
                    d0 = y.offset - x.offset;
                    haveD0 = true;
                } else if (relSrc[y.baseReg] == int8_t(x.baseReg)) {
                    d0 = relOff[y.baseReg] + y.offset - x.offset;
                    haveD0 = true;
                }
            }
            if (!haveD0)
                continue;

            int64_t k = 0;
            if (!firstExit(rel, d0, x.step, k))
                continue;
            // A latch test sees the body's updates before it fires,
            // so the body ran k+1 times; a pure header test guards
            // the body and ran it k times.
            const bool atLatch =
                std::find(L.latches.begin(), L.latches.end(), tb) !=
                L.latches.end();
            const int64_t trips = k + (atLatch ? 1 : 0);
            if (trips > 0) {
                L.trips = uint64_t(trips);
                break;
            }
        }

        // Memory references whose innermost loop is this one.
        uint64_t iters = 1;
        bool itersExact = true;
        for (size_t a = lid; a != kNoLoop; a = sa.loops[a].parent) {
            if (sa.loops[a].trips == 0)
                itersExact = false;
            else
                iters *= sa.loops[a].trips;
        }
        for (size_t b : L.blocks) {
            if (sa.innermost[b] != lid)
                continue;
            RegState st = in[blockSlot(lid, b)];
            for (size_t i = cfg.blocks[b].first;
                 i < cfg.blocks[b].end; ++i) {
                const Inst &inst = cfg.insts[i];
                if (isa::isMem(inst.op)) {
                    MemRef ref;
                    ref.inst = i;
                    ref.loop = lid;
                    ref.addr = st.valid ? memAddr(inst, st)
                                        : StrideVal::top();
                    ref.bytes = isa::opInfo(inst.op).memSize;
                    ref.isStore = isa::isStore(inst.op);
                    ref.iters = iters;
                    ref.itersExact = itersExact;
                    refs.push_back(ref);
                }
                if (st.valid)
                    transfer(inst, st);
            }
        }

        analyzed[lid] = true;
    }

    // Straight-line references outside every loop, classified from
    // global constant propagation alone.
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (sa.innermost[b] != kNoLoop || !cfg.blocks[b].reachable)
            continue;
        RegState st;
        if (consts.visited[b]) {
            st.valid = true;
            st.cs = consts.in[b];
            for (int r = 1; r < 32; ++r)
                st.v[r] = st.cs.isKnown(RegIndex(r))
                              ? StrideVal::constant(
                                    int64_t(st.cs.val[r]))
                              : StrideVal::top();
        }
        for (size_t i = cfg.blocks[b].first; i < cfg.blocks[b].end;
             ++i) {
            const Inst &inst = cfg.insts[i];
            if (isa::isMem(inst.op)) {
                MemRef ref;
                ref.inst = i;
                ref.addr = st.valid ? memAddr(inst, st)
                                    : StrideVal::top();
                ref.bytes = isa::opInfo(inst.op).memSize;
                ref.isStore = isa::isStore(inst.op);
                refs.push_back(ref);
            }
            if (st.valid)
                transfer(inst, st);
        }
    }

    std::sort(refs.begin(), refs.end(),
              [](const MemRef &a, const MemRef &b) {
                  return a.inst < b.inst;
              });
    sa.refs = std::move(refs);
    return sa;
}

} // namespace hbat::verify
