/**
 * @file
 * Diagnostic vocabulary of the static program/config verifier.
 *
 * Header-only on purpose: the assembler layers (kasm) report their
 * finalize-time failures through these types without linking the
 * verifier library, and the verifier library analyzes kasm::Program
 * images without linking kasm — keeping the two libraries acyclic.
 *
 * A Diagnostic is one finding: a stable machine-readable code, a
 * severity, the text address it anchors to (0 when the finding is not
 * location-bound, e.g. design-configuration lint), and a rendered
 * message. A Report is an append-only collection with severity
 * queries; every verifier entry point takes or returns one.
 */

#ifndef HBAT_VERIFY_DIAG_HH
#define HBAT_VERIFY_DIAG_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/types.hh"

namespace hbat::verify
{

/** How bad a finding is. CI gates on Warning and above. */
enum class Severity : uint8_t
{
    Info,       ///< observation; never fails a build
    Warning,    ///< almost certainly a bug in the program/config
    Error       ///< the image/config is unusable as-is
};

/** Stable diagnostic codes (names are part of the JSON report). */
enum class Diag : uint8_t
{
    // Image decode.
    IllegalInstruction, ///< text word does not decode

    // Control-flow graph.
    TargetOutOfText,    ///< branch/jump target outside text or misaligned
    FallthroughOffEnd,  ///< execution can run past the end of text
    UnreachableBlock,   ///< basic block with no path from the entry
    IndirectNoTargets,  ///< jr/jalr present but no identifiable targets

    // Dataflow.
    UninitRead,         ///< register read with no reaching definition
    WriteToZero,        ///< instruction writes the hardwired $zero
    SpImbalance,        ///< conflicting stack-pointer offsets at a join
    MisalignedAccess,   ///< statically-known misaligned load/store

    // Assembler finalize (kasm::Emitter).
    UnboundLabel,       ///< referenced label never bound
    BranchRange,        ///< branch offset exceeds the 16-bit field
    JumpRange,          ///< jump offset exceeds the 26-bit field

    // Design / configuration lint.
    DesignStructure,    ///< sizes/banks not a power of two, L1 !⊆ L2...
    DesignPorts,        ///< port counts inconsistent with issue width
    ConfigPageSize,     ///< unsupported page size
    ConfigBudget,       ///< register budget outside the allocator range

    // Declarative config frontend (src/config, sweep specs).
    ConfigSyntax,       ///< .conf parse error (bad header, bad token...)
    ConfigExpr,         ///< expression evaluation error ($(x) unknown...)
    ConfigKey,          ///< unknown/missing/mistyped key in a section
    ConfigMachine,      ///< machine knob outside the supported range

    // Static translation-footprint analysis (verify/footprint.hh).
    FootprintExceedsReach,  ///< working set larger than the TLB reach
    BankConflictHotspot,    ///< lockstep streams pinned to one bank
    IrregularStride,        ///< hot reference with no detectable stride
    UnboundedInduction,     ///< induction variable with no trip bound

    NumDiags
};

/** Stable kebab-case name of @p d (JSON and CLI output). */
inline const char *
diagName(Diag d)
{
    switch (d) {
      case Diag::IllegalInstruction: return "illegal-instruction";
      case Diag::TargetOutOfText: return "target-out-of-text";
      case Diag::FallthroughOffEnd: return "fallthrough-off-end";
      case Diag::UnreachableBlock: return "unreachable-block";
      case Diag::IndirectNoTargets: return "indirect-no-targets";
      case Diag::UninitRead: return "uninit-read";
      case Diag::WriteToZero: return "write-to-zero";
      case Diag::SpImbalance: return "sp-imbalance";
      case Diag::MisalignedAccess: return "misaligned-access";
      case Diag::UnboundLabel: return "unbound-label";
      case Diag::BranchRange: return "branch-range";
      case Diag::JumpRange: return "jump-range";
      case Diag::DesignStructure: return "design-structure";
      case Diag::DesignPorts: return "design-ports";
      case Diag::ConfigPageSize: return "config-page-size";
      case Diag::ConfigBudget: return "config-budget";
      case Diag::ConfigSyntax: return "config-syntax";
      case Diag::ConfigExpr: return "config-expr";
      case Diag::ConfigKey: return "config-key";
      case Diag::ConfigMachine: return "config-machine";
      case Diag::FootprintExceedsReach: return "footprint-exceeds-reach";
      case Diag::BankConflictHotspot: return "bank-conflict-hotspot";
      case Diag::IrregularStride: return "irregular-stride";
      case Diag::UnboundedInduction: return "unbounded-induction";
      case Diag::NumDiags: break;
    }
    return "unknown";
}

/** Lower-case severity name. */
inline const char *
severityName(Severity s)
{
    switch (s) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "unknown";
}

/** One verifier finding. */
struct Diagnostic
{
    Diag code = Diag::NumDiags;
    Severity severity = Severity::Warning;
    VAddr pc = 0;           ///< text address; 0 = not location-bound
    std::string message;

    /** "severity: code @pc: message" rendering. */
    std::string
    str() const
    {
        std::string s = severityName(severity);
        s += ": ";
        s += diagName(code);
        if (pc != 0) {
            char buf[24];
            std::snprintf(buf, sizeof(buf), " @0x%llx",
                          (unsigned long long)pc);
            s += buf;
        }
        s += ": ";
        s += message;
        return s;
    }
};

/** Accumulated findings of one or more verifier passes. */
struct Report
{
    std::vector<Diagnostic> diags;

    void
    add(Diag code, Severity sev, VAddr pc, std::string msg)
    {
        diags.push_back(Diagnostic{code, sev, pc, std::move(msg)});
    }

    /** Number of findings at @p atLeast or above. */
    size_t
    count(Severity atLeast) const
    {
        size_t n = 0;
        for (const Diagnostic &d : diags)
            n += d.severity >= atLeast ? 1 : 0;
        return n;
    }

    /** Number of findings with code @p c. */
    size_t
    countOf(Diag c) const
    {
        size_t n = 0;
        for (const Diagnostic &d : diags)
            n += d.code == c ? 1 : 0;
        return n;
    }

    /** True when nothing at @p atLeast or above was found. */
    bool
    clean(Severity atLeast = Severity::Warning) const
    {
        return count(atLeast) == 0;
    }

    /**
     * Order findings by (pc, code) — the emission order every CLI and
     * JSON report uses, so output is byte-stable regardless of the
     * order passes appended their findings. Stable, so findings a pass
     * emitted in sequence at the same site keep their relative order.
     */
    void
    sort()
    {
        std::stable_sort(diags.begin(), diags.end(),
                         [](const Diagnostic &a, const Diagnostic &b) {
                             if (a.pc != b.pc)
                                 return a.pc < b.pc;
                             return a.code < b.code;
                         });
    }
};

} // namespace hbat::verify

#endif // HBAT_VERIFY_DIAG_HH
