#include "verify/design_lint.hh"

#include <utility>

#include "common/log.hh"

namespace hbat::verify
{

namespace
{

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

unsigned
log2u(unsigned v)
{
    unsigned b = 0;
    while (v > 1) {
        v >>= 1;
        ++b;
    }
    return b;
}

} // namespace

void
lintDesignParams(const tlb::DesignParams &p, const std::string &name,
                 Report &report, unsigned pageBytes,
                 unsigned issueWidth, unsigned memPorts)
{
    using Kind = tlb::DesignParams::Kind;

    auto structural = [&](std::string msg) {
        report.add(Diag::DesignStructure, Severity::Error, 0,
                   detail::concat(name, ": ", std::move(msg)));
    };
    auto ports = [&](std::string msg) {
        report.add(Diag::DesignPorts, Severity::Error, 0,
                   detail::concat(name, ": ", std::move(msg)));
    };

    if (!isPow2(p.baseEntries)) {
        structural(detail::concat("base TLB capacity ", p.baseEntries,
                                  " is not a power of two"));
    }

    if (p.basePorts < 1)
        ports("a TLB needs at least one port");

    // Fewer ports than load/store units is a legitimate design point
    // (requests serialize — that trade-off is the paper's subject),
    // but *more* request paths than the four load/store units can
    // ever generate is a specification error.
    if (p.kind == Kind::MultiPorted &&
        p.basePorts + p.piggybackPorts > memPorts) {
        ports(detail::concat(
            p.basePorts, " port(s) + ", p.piggybackPorts,
            " piggyback port(s) exceed the machine's ", memPorts,
            " load/store units"));
    }

    if (p.kind == Kind::Interleaved) {
        if (p.banks > issueWidth) {
            ports(detail::concat(
                p.banks, " banks exceed the issue width of ",
                issueWidth, " (extra banks can never be probed)"));
        }
        if (!isPow2(p.banks)) {
            structural(detail::concat("bank count ", p.banks,
                                      " is not a power of two"));
        } else {
            if (p.baseEntries % p.banks != 0) {
                structural(detail::concat(
                    "capacity ", p.baseEntries,
                    " does not divide evenly over ", p.banks,
                    " banks"));
            }
            if (p.select == tlb::BankSelect::XorFold &&
                isPow2(pageBytes)) {
                // The fold XORs three groups of log2(banks) VPN bits;
                // they all have to exist below the VPN's top.
                const unsigned vpnBits = 32 - log2u(pageBytes);
                if (3 * log2u(p.banks) > vpnBits) {
                    structural(detail::concat(
                        "XOR fold needs ", 3 * log2u(p.banks),
                        " VPN bits but only ", vpnBits,
                        " exist with ", pageBytes, "-byte pages"));
                }
            }
        }
    }

    if (p.kind == Kind::Victima) {
        if (p.basePorts > memPorts) {
            ports(detail::concat(
                p.basePorts, " port(s) exceed the machine's ",
                memPorts, " load/store units"));
        }
        if (p.upperEntries != 0 || p.upperPorts != 0) {
            structural("victima has no upper TLB level; victims spill "
                       "into the D-cache (upperEntries/upperPorts must "
                       "stay unset)");
        }
    }

    if (p.kind == Kind::MultiLevel || p.kind == Kind::Pretranslation ||
        p.kind == Kind::PcIndexed) {
        if (!isPow2(p.upperEntries)) {
            structural(detail::concat("upper-level capacity ",
                                      p.upperEntries,
                                      " is not a power of two"));
        }
        if (p.upperEntries >= p.baseEntries) {
            structural(detail::concat(
                "upper level (", p.upperEntries,
                " entries) is not smaller than the base it fronts (",
                p.baseEntries, " entries)"));
        }
        if (p.upperPorts < 1 || p.upperPorts > memPorts) {
            ports(detail::concat(
                "upper level has ", p.upperPorts, " port(s); the ",
                memPorts, " load/store units need 1..", memPorts));
        }
    }
}

void
lintDesign(tlb::Design d, Report &report, unsigned pageBytes)
{
    lintDesignParams(tlb::designParams(d), tlb::designName(d), report,
                     pageBytes);
}

Report
lintDesign(tlb::Design d, unsigned pageBytes)
{
    Report report;
    lintDesign(d, report, pageBytes);
    return report;
}

void
lintConfig(const sim::SimConfig &cfg, Report &report)
{
    if (!isPow2(cfg.pageBytes) || cfg.pageBytes < 512 ||
        cfg.pageBytes > (1u << 20)) {
        report.add(Diag::ConfigPageSize, Severity::Error, 0,
                   detail::concat("page size ", cfg.pageBytes,
                                  " is not a power of two in [512, "
                                  "1M]"));
    }

    // The allocator's hard limits (kasm::lower asserts these).
    if (cfg.budget.intRegs < 5 || cfg.budget.intRegs > 32) {
        report.add(Diag::ConfigBudget, Severity::Error, 0,
                   detail::concat("integer register budget ",
                                  cfg.budget.intRegs,
                                  " outside the allocator's [5, 32]"));
    }
    if (cfg.budget.fpRegs < 3 || cfg.budget.fpRegs > 32) {
        report.add(Diag::ConfigBudget, Severity::Error, 0,
                   detail::concat("fp register budget ",
                                  cfg.budget.fpRegs,
                                  " outside the allocator's [3, 32]"));
    }

    // Machine-structure knobs (ConfigMachine): bounds the pipeline and
    // cache models rely on, checked before any cycles are simulated.
    auto machine = [&](std::string msg) {
        report.add(Diag::ConfigMachine, Severity::Error, 0,
                   std::move(msg));
    };
    if (cfg.issueWidth < 1 || cfg.issueWidth > 16) {
        machine(detail::concat("issue width ", cfg.issueWidth,
                               " outside the supported [1, 16]"));
    }
    if (cfg.robSize < 2 || cfg.robSize > 4096) {
        machine(detail::concat("ROB size ", cfg.robSize,
                               " outside the supported [2, 4096]"));
    }
    if (cfg.lsqSize < 1 || cfg.lsqSize > cfg.robSize) {
        machine(detail::concat("LSQ size ", cfg.lsqSize,
                               " outside [1, robSize=", cfg.robSize,
                               "]"));
    }
    if (cfg.fetchQueueSize < 1) {
        machine("fetch queue needs at least one slot");
    }
    if (cfg.cachePorts < 1 || cfg.cachePorts > 8) {
        machine(detail::concat("cache port count ", cfg.cachePorts,
                               " outside the supported [1, 8]"));
    }
    if (cfg.tlbMissLatency < 1) {
        machine("TLB miss latency must be at least one cycle");
    }
    const std::pair<const char *, unsigned> fuCounts[] = {
        {"intAlu", cfg.fus.intAlu},
        {"intMultDiv", cfg.fus.intMultDiv},
        {"memPorts", cfg.fus.memPorts},
        {"fpAdd", cfg.fus.fpAdd},
        {"fpMultDiv", cfg.fus.fpMultDiv},
    };
    for (const auto &[fu, count] : fuCounts) {
        if (count < 1) {
            machine(detail::concat("functional-unit count ", fu,
                                   " must be at least 1"));
        }
    }
    if (cfg.cachePorts != cfg.fus.memPorts) {
        report.add(Diag::ConfigMachine, Severity::Warning, 0,
                   detail::concat("cachePorts=", cfg.cachePorts,
                                  " differs from memPorts=",
                                  cfg.fus.memPorts,
                                  "; the narrower one bounds memory "
                                  "throughput"));
    }
    const std::pair<const char *, const cache::CacheConfig *> caches[] =
        {{"icache", &cfg.icache}, {"dcache", &cfg.dcache}};
    for (const auto &[label, cc] : caches) {
        if (cc->assoc < 1) {
            machine(detail::concat(label,
                                   " associativity must be at least "
                                   "1"));
            continue;
        }
        if (cc->blockBytes < 4 || !isPow2(cc->blockBytes)) {
            machine(detail::concat(label, " block size ",
                                   cc->blockBytes,
                                   " is not a power of two >= 4"));
            continue;
        }
        if (cc->sizeBytes == 0 ||
            cc->sizeBytes % (cc->blockBytes * cc->assoc) != 0 ||
            !isPow2(cc->sizeBytes / (cc->blockBytes * cc->assoc))) {
            machine(detail::concat(
                label, " geometry ", cc->sizeBytes, "B/",
                cc->assoc, "-way/", cc->blockBytes,
                "B blocks does not yield a power-of-two set count"));
        }
        if (cc->missLatency < 1) {
            machine(detail::concat(label,
                                   " miss latency must be at least "
                                   "one cycle"));
        }
    }

    // The effective translation design: a config-driven cell carries
    // its own DesignParams; everything else is a Table 2 row.
    if (cfg.customDesign) {
        lintDesignParams(*cfg.customDesign,
                         cfg.designLabel.empty() ? "custom"
                                                 : cfg.designLabel,
                         report, cfg.pageBytes, cfg.issueWidth,
                         cfg.fus.memPorts);
    } else {
        lintDesignParams(tlb::designParams(cfg.design),
                         tlb::designName(cfg.design), report,
                         cfg.pageBytes, cfg.issueWidth,
                         cfg.fus.memPorts);
    }
}

Report
lintConfig(const sim::SimConfig &cfg)
{
    Report report;
    lintConfig(cfg, report);
    return report;
}

} // namespace hbat::verify
