#include "verify/design_lint.hh"

#include "common/log.hh"

namespace hbat::verify
{

namespace
{

bool
isPow2(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

unsigned
log2u(unsigned v)
{
    unsigned b = 0;
    while (v > 1) {
        v >>= 1;
        ++b;
    }
    return b;
}

} // namespace

void
lintDesignParams(const tlb::DesignParams &p, const std::string &name,
                 Report &report, unsigned pageBytes)
{
    using Kind = tlb::DesignParams::Kind;

    auto structural = [&](std::string msg) {
        report.add(Diag::DesignStructure, Severity::Error, 0,
                   detail::concat(name, ": ", std::move(msg)));
    };
    auto ports = [&](std::string msg) {
        report.add(Diag::DesignPorts, Severity::Error, 0,
                   detail::concat(name, ": ", std::move(msg)));
    };

    if (!isPow2(p.baseEntries)) {
        structural(detail::concat("base TLB capacity ", p.baseEntries,
                                  " is not a power of two"));
    }

    if (p.basePorts < 1)
        ports("a TLB needs at least one port");

    // Fewer ports than load/store units is a legitimate design point
    // (requests serialize — that trade-off is the paper's subject),
    // but *more* request paths than the four load/store units can
    // ever generate is a specification error.
    if (p.kind == Kind::MultiPorted &&
        p.basePorts + p.piggybackPorts > kMemPorts) {
        ports(detail::concat(
            p.basePorts, " port(s) + ", p.piggybackPorts,
            " piggyback port(s) exceed the machine's ", kMemPorts,
            " load/store units"));
    }

    if (p.kind == Kind::Interleaved) {
        if (p.banks > kIssueWidth) {
            ports(detail::concat(
                p.banks, " banks exceed the issue width of ",
                kIssueWidth, " (extra banks can never be probed)"));
        }
        if (!isPow2(p.banks)) {
            structural(detail::concat("bank count ", p.banks,
                                      " is not a power of two"));
        } else {
            if (p.baseEntries % p.banks != 0) {
                structural(detail::concat(
                    "capacity ", p.baseEntries,
                    " does not divide evenly over ", p.banks,
                    " banks"));
            }
            if (p.select == tlb::BankSelect::XorFold &&
                isPow2(pageBytes)) {
                // The fold XORs three groups of log2(banks) VPN bits;
                // they all have to exist below the VPN's top.
                const unsigned vpnBits = 32 - log2u(pageBytes);
                if (3 * log2u(p.banks) > vpnBits) {
                    structural(detail::concat(
                        "XOR fold needs ", 3 * log2u(p.banks),
                        " VPN bits but only ", vpnBits,
                        " exist with ", pageBytes, "-byte pages"));
                }
            }
        }
    }

    if (p.kind == Kind::MultiLevel || p.kind == Kind::Pretranslation) {
        if (!isPow2(p.upperEntries)) {
            structural(detail::concat("upper-level capacity ",
                                      p.upperEntries,
                                      " is not a power of two"));
        }
        if (p.upperEntries >= p.baseEntries) {
            structural(detail::concat(
                "upper level (", p.upperEntries,
                " entries) is not smaller than the base it fronts (",
                p.baseEntries, " entries)"));
        }
        if (p.upperPorts < 1 || p.upperPorts > kMemPorts) {
            ports(detail::concat(
                "upper level has ", p.upperPorts, " port(s); the ",
                kMemPorts, " load/store units need 1..", kMemPorts));
        }
    }
}

void
lintDesign(tlb::Design d, Report &report, unsigned pageBytes)
{
    lintDesignParams(tlb::designParams(d), tlb::designName(d), report,
                     pageBytes);
}

Report
lintDesign(tlb::Design d, unsigned pageBytes)
{
    Report report;
    lintDesign(d, report, pageBytes);
    return report;
}

void
lintConfig(const sim::SimConfig &cfg, Report &report)
{
    if (!isPow2(cfg.pageBytes) || cfg.pageBytes < 512 ||
        cfg.pageBytes > (1u << 20)) {
        report.add(Diag::ConfigPageSize, Severity::Error, 0,
                   detail::concat("page size ", cfg.pageBytes,
                                  " is not a power of two in [512, "
                                  "1M]"));
    }

    // The allocator's hard limits (kasm::lower asserts these).
    if (cfg.budget.intRegs < 5 || cfg.budget.intRegs > 32) {
        report.add(Diag::ConfigBudget, Severity::Error, 0,
                   detail::concat("integer register budget ",
                                  cfg.budget.intRegs,
                                  " outside the allocator's [5, 32]"));
    }
    if (cfg.budget.fpRegs < 3 || cfg.budget.fpRegs > 32) {
        report.add(Diag::ConfigBudget, Severity::Error, 0,
                   detail::concat("fp register budget ",
                                  cfg.budget.fpRegs,
                                  " outside the allocator's [3, 32]"));
    }

    lintDesign(cfg.design, report, cfg.pageBytes);
}

Report
lintConfig(const sim::SimConfig &cfg)
{
    Report report;
    lintConfig(cfg, report);
    return report;
}

} // namespace hbat::verify
