#include "verify/dataflow.hh"

#include "common/log.hh"

namespace hbat::verify
{

using isa::Inst;
using isa::Opcode;
using isa::RC;

std::string
regSetNames(RegSet s)
{
    std::string out;
    for (int i = 0; i < 64; ++i) {
        if (!((s >> i) & 1))
            continue;
        if (!out.empty())
            out += ", ";
        out += i < 32 ? isa::intRegName(RegIndex(i))
                      : isa::fpRegName(RegIndex(i - 32));
    }
    return out;
}

InstEffect
instEffect(const Inst &inst)
{
    const isa::OpInfo &info = isa::opInfo(inst.op);
    InstEffect e;

    auto slot = [](RC cls, RegIndex r) {
        return cls == RC::Fp ? fpSlot(r) : intSlot(r);
    };

    if (info.rs1Class != RC::None)
        e.uses |= RegSet(1) << slot(info.rs1Class, inst.rs1);
    if (info.rs2Class != RC::None)
        e.uses |= RegSet(1) << slot(info.rs2Class, inst.rs2);
    if (info.rdClass != RC::None) {
        if (info.rdIsSource)
            e.uses |= RegSet(1) << slot(info.rdClass, inst.rd);
        else
            e.defs |= RegSet(1) << slot(info.rdClass, inst.rd);
    }
    if (info.writesBase)
        e.defs |= RegSet(1) << intSlot(inst.rs1);
    if (inst.op == Opcode::Jal)
        e.defs |= RegSet(1) << intSlot(isa::reg::ra);

    // The hardwired zero register is always defined and never written.
    e.uses &= ~RegSet(1);
    e.defs &= ~RegSet(1);
    return e;
}

namespace
{

/** Per-block use/def summaries (upward-exposed uses for liveness). */
struct BlockEffect
{
    RegSet use = 0;     ///< used before any def within the block
    RegSet def = 0;     ///< defined within the block
};

std::vector<BlockEffect>
blockEffects(const Cfg &cfg)
{
    std::vector<BlockEffect> out(cfg.blocks.size());
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        BlockEffect &be = out[b];
        for (size_t i = cfg.blocks[b].first; i < cfg.blocks[b].end;
             ++i) {
            const InstEffect e = instEffect(cfg.insts[i]);
            be.use |= e.uses & ~be.def;
            be.def |= e.defs;
        }
    }
    return out;
}

} // namespace

Liveness
liveness(const Cfg &cfg)
{
    const std::vector<BlockEffect> be = blockEffects(cfg);
    Liveness lv;
    lv.in.assign(cfg.blocks.size(), 0);
    lv.out.assign(cfg.blocks.size(), 0);

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t rb = cfg.blocks.size(); rb-- > 0;) {
            RegSet out = 0;
            for (size_t s : cfg.blocks[rb].succs)
                out |= lv.in[s];
            const RegSet in = be[rb].use | (out & ~be[rb].def);
            if (out != lv.out[rb] || in != lv.in[rb]) {
                lv.out[rb] = out;
                lv.in[rb] = in;
                changed = true;
            }
        }
    }
    return lv;
}

UninitState
mayUninit(const Cfg &cfg, RegSet entryDefined)
{
    const std::vector<BlockEffect> be = blockEffects(cfg);
    UninitState st;
    st.in.assign(cfg.blocks.size(), 0);
    st.out.assign(cfg.blocks.size(), 0);

    const RegSet entryUninit = ~entryDefined;
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = 0; b < cfg.blocks.size(); ++b) {
            RegSet in = b == cfg.entryBlock ? entryUninit : 0;
            for (size_t p : cfg.blocks[b].preds)
                in |= st.out[p];
            const RegSet out = in & ~be[b].def;
            if (in != st.in[b] || out != st.out[b]) {
                st.in[b] = in;
                st.out[b] = out;
                changed = true;
            }
        }
    }
    return st;
}

ReachingDefs
reachingDefs(const Cfg &cfg, RegSet entryDefined)
{
    ReachingDefs rd;

    // Enumerate definition sites; site 0 is the loader pseudo-def.
    rd.siteInst.push_back(ReachingDefs::kEntrySite);
    rd.siteDefs.push_back(entryDefined);
    for (size_t i = 0; i < cfg.size(); ++i) {
        const InstEffect e = instEffect(cfg.insts[i]);
        if (e.defs == 0)
            continue;
        rd.siteInst.push_back(i);
        rd.siteDefs.push_back(e.defs);
    }
    const size_t nSites = rd.siteInst.size();

    for (int r = 0; r < 64; ++r)
        rd.sitesOf[r] = BitVec(nSites);
    for (size_t s = 0; s < nSites; ++s) {
        for (int r = 0; r < 64; ++r)
            if ((rd.siteDefs[s] >> r) & 1)
                rd.sitesOf[r].set(s);
    }

    // Per-block gen/kill.
    std::vector<size_t> firstSiteOf(cfg.size(), ReachingDefs::kEntrySite);
    for (size_t s = 1; s < nSites; ++s)
        firstSiteOf[rd.siteInst[s]] = s;

    const size_t nb = cfg.blocks.size();
    std::vector<BitVec> gen(nb, BitVec(nSites));
    std::vector<BitVec> kill(nb, BitVec(nSites));
    for (size_t b = 0; b < nb; ++b) {
        for (size_t i = cfg.blocks[b].first; i < cfg.blocks[b].end;
             ++i) {
            const size_t site = firstSiteOf[i];
            if (site == ReachingDefs::kEntrySite)
                continue;
            // This site kills every other site of the regs it defines.
            for (int r = 0; r < 64; ++r) {
                if ((rd.siteDefs[site] >> r) & 1) {
                    kill[b].orWith(rd.sitesOf[r]);
                    gen[b].minus(rd.sitesOf[r]);
                }
            }
            kill[b].clear(site);
            gen[b].set(site);
        }
    }

    rd.in.assign(nb, BitVec(nSites));
    std::vector<BitVec> out(nb, BitVec(nSites));
    // Seed: the entry pseudo-def flows into the entry block.
    rd.in[cfg.entryBlock].set(0);

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = 0; b < nb; ++b) {
            BitVec in(nSites);
            if (b == cfg.entryBlock)
                in.set(0);
            for (size_t p : cfg.blocks[b].preds)
                in.orWith(out[p]);
            BitVec nout = in;
            nout.minus(kill[b]);
            nout.orWith(gen[b]);
            changed |= rd.in[b].orWith(in);
            changed |= out[b].orWith(nout);
        }
    }
    return rd;
}

void
SpDeltas::step(const Inst &inst, SpDelta &v)
{
    if (v.kind != SpDelta::Kind::Const)
        return;
    const InstEffect e = instEffect(inst);
    if (!((e.defs >> intSlot(isa::reg::sp)) & 1))
        return;
    if (inst.op == Opcode::Addi && inst.rd == isa::reg::sp &&
        inst.rs1 == isa::reg::sp) {
        v.delta += inst.imm;
    } else if (isa::opInfo(inst.op).writesBase &&
               inst.rs1 == isa::reg::sp) {
        // Post-increment load/store through sp adjusts it by imm.
        v.delta += inst.imm;
    } else {
        v.kind = SpDelta::Kind::Conflict;
    }
}

SpDeltas
spDeltas(const Cfg &cfg)
{
    SpDeltas sd;
    sd.in.assign(cfg.blocks.size(), SpDelta{});
    sd.in[cfg.entryBlock] =
        SpDelta{SpDelta::Kind::Const, 0, false};

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = 0; b < cfg.blocks.size(); ++b) {
            SpDelta in = b == cfg.entryBlock
                             ? SpDelta{SpDelta::Kind::Const, 0, false}
                             : SpDelta{};
            for (size_t p : cfg.blocks[b].preds) {
                SpDelta pv = sd.in[p];
                for (size_t i = cfg.blocks[p].first;
                     i < cfg.blocks[p].end; ++i)
                    SpDeltas::step(cfg.insts[i], pv);
                switch (pv.kind) {
                  case SpDelta::Kind::Unknown:
                    break;
                  case SpDelta::Kind::Const:
                    if (in.kind == SpDelta::Kind::Unknown) {
                        in.kind = SpDelta::Kind::Const;
                        in.delta = pv.delta;
                    } else if (in.kind == SpDelta::Kind::Const &&
                               in.delta != pv.delta) {
                        in.kind = SpDelta::Kind::Conflict;
                        in.freshConflict = true;
                    }
                    break;
                  case SpDelta::Kind::Conflict:
                    if (in.kind != SpDelta::Kind::Conflict) {
                        in.kind = SpDelta::Kind::Conflict;
                        in.freshConflict = false;
                    }
                    break;
                }
            }
            if (in.kind != sd.in[b].kind ||
                (in.kind == SpDelta::Kind::Const &&
                 in.delta != sd.in[b].delta) ||
                in.freshConflict != sd.in[b].freshConflict) {
                // The lattice only descends, so this terminates.
                if (sd.in[b].kind == SpDelta::Kind::Conflict &&
                    in.kind == SpDelta::Kind::Conflict) {
                    sd.in[b].freshConflict |= in.freshConflict;
                } else {
                    sd.in[b] = in;
                    changed = true;
                }
            }
        }
    }
    return sd;
}

void
ConstProp::step(const Inst &inst, ConstState &state)
{
    const isa::OpInfo &info = isa::opInfo(inst.op);

    auto srcKnown = [&](RegIndex r, uint32_t &v) {
        if (r == 0) {
            v = 0;
            return true;
        }
        if (!state.isKnown(r))
            return false;
        v = state.val[r];
        return true;
    };

    // Post-increment base update: base += imm when known.
    if (info.writesBase) {
        uint32_t base;
        if (srcKnown(inst.rs1, base))
            state.setKnown(inst.rs1, base + uint32_t(inst.imm));
        else
            state.setUnknown(inst.rs1);
    }

    const bool writesInt =
        info.rdClass == RC::Int && !info.rdIsSource;
    if (!writesInt) {
        if (inst.op == Opcode::Jal)
            state.setUnknown(isa::reg::ra);
        return;
    }

    uint32_t a = 0, b = 0;
    const bool haveA = info.rs1Class == RC::Int &&
                       srcKnown(inst.rs1, a);
    const bool haveB = info.rs2Class == RC::Int &&
                       srcKnown(inst.rs2, b);

    bool known = true;
    uint32_t v = 0;
    const int32_t sa = int32_t(a), sb = int32_t(b);
    switch (inst.op) {
      case Opcode::Addi: known = haveA; v = a + uint32_t(inst.imm); break;
      case Opcode::Andi: known = haveA; v = a & uint32_t(inst.imm); break;
      case Opcode::Ori: known = haveA; v = a | uint32_t(inst.imm); break;
      case Opcode::Xori: known = haveA; v = a ^ uint32_t(inst.imm); break;
      case Opcode::Slli: known = haveA; v = a << (inst.imm & 31); break;
      case Opcode::Srli: known = haveA; v = a >> (inst.imm & 31); break;
      case Opcode::Srai:
        known = haveA;
        v = uint32_t(sa >> (inst.imm & 31));
        break;
      case Opcode::Slti: known = haveA; v = sa < inst.imm; break;
      case Opcode::Sltiu:
        known = haveA;
        v = a < uint32_t(inst.imm);
        break;
      case Opcode::Lui: v = uint32_t(inst.imm) << 16; break;
      case Opcode::Add: known = haveA && haveB; v = a + b; break;
      case Opcode::Sub: known = haveA && haveB; v = a - b; break;
      case Opcode::Mul: known = haveA && haveB; v = a * b; break;
      case Opcode::And: known = haveA && haveB; v = a & b; break;
      case Opcode::Or: known = haveA && haveB; v = a | b; break;
      case Opcode::Xor: known = haveA && haveB; v = a ^ b; break;
      case Opcode::Nor: known = haveA && haveB; v = ~(a | b); break;
      case Opcode::Sll: known = haveA && haveB; v = a << (b & 31); break;
      case Opcode::Srl: known = haveA && haveB; v = a >> (b & 31); break;
      case Opcode::Sra:
        known = haveA && haveB;
        v = uint32_t(sa >> (b & 31));
        break;
      case Opcode::Slt: known = haveA && haveB; v = sa < sb; break;
      case Opcode::Sltu: known = haveA && haveB; v = a < b; break;
      default:
        known = false;  // loads, div/rem, fp moves, jalr...
        break;
    }

    if (known)
        state.setKnown(inst.rd, v);
    else
        state.setUnknown(inst.rd);
}

bool
ConstProp::effectiveAddr(const Inst &inst, const ConstState &state,
                         uint32_t &addr)
{
    const isa::OpInfo &info = isa::opInfo(inst.op);
    hbat_assert(info.memSize != 0, "effectiveAddr on non-memory op");

    auto known = [&](RegIndex r, uint32_t &v) {
        if (r == 0) {
            v = 0;
            return true;
        }
        if (!state.isKnown(r))
            return false;
        v = state.val[r];
        return true;
    };

    uint32_t base;
    if (!known(inst.rs1, base))
        return false;

    if (info.writesBase) {
        addr = base;                // post-increment: access M[base]
        return true;
    }
    if (info.rs2Class != RC::None) {
        uint32_t idx;
        if (!known(inst.rs2, idx))
            return false;
        addr = base + idx;          // register+register
        return true;
    }
    addr = base + uint32_t(inst.imm);   // base+displacement
    return true;
}

ConstProp
constProp(const Cfg &cfg, uint32_t spInit)
{
    ConstProp cp;
    cp.in.assign(cfg.blocks.size(), ConstState{});
    cp.visited.assign(cfg.blocks.size(), false);

    ConstState entry;
    entry.setKnown(isa::reg::sp, spInit);

    auto meet = [](ConstState &into, const ConstState &other) {
        uint32_t agreed = into.known & other.known;
        for (int r = 1; r < 32; ++r) {
            if (((agreed >> r) & 1) && into.val[r] != other.val[r])
                agreed &= ~(uint32_t(1) << r);
        }
        into.known = agreed | 1;
    };
    auto same = [](const ConstState &a, const ConstState &b) {
        if (a.known != b.known)
            return false;
        for (int r = 1; r < 32; ++r)
            if (((a.known >> r) & 1) && a.val[r] != b.val[r])
                return false;
        return true;
    };

    // Recompute block entries to a fixpoint. Transfer and meet are
    // monotone on the known->unknown lattice, so states only descend
    // and the iteration terminates.
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = 0; b < cfg.blocks.size(); ++b) {
            ConstState in;
            bool have = false;
            if (b == cfg.entryBlock) {
                in = entry;
                have = true;
            }
            for (size_t p : cfg.blocks[b].preds) {
                if (!cp.visited[p])
                    continue;
                ConstState pv = cp.in[p];
                for (size_t i = cfg.blocks[p].first;
                     i < cfg.blocks[p].end; ++i)
                    ConstProp::step(cfg.insts[i], pv);
                if (!have) {
                    in = pv;
                    have = true;
                } else {
                    meet(in, pv);
                }
            }
            if (!have)
                continue;
            if (!cp.visited[b] || !same(in, cp.in[b])) {
                cp.in[b] = in;
                cp.visited[b] = true;
                changed = true;
            }
        }
    }
    return cp;
}

} // namespace hbat::verify
