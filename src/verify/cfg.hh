/**
 * @file
 * Control-flow graph over a linked program image.
 *
 * The verifier decodes the encoded text back through the ISA layer
 * (isa::tryDecode) and partitions it into basic blocks: a leader is
 * the entry point, any direct branch/jump target, any possible
 * indirect-jump target, and the instruction after any control
 * transfer. Indirect jumps (JR/JALR) are handled conservatively: their
 * successor set is every known indirect target plus every call-return
 * site. Targets come from the linker when the image carries them
 * (kasm::Program::indirectTargets); for raw images the data segments
 * are scanned for words that look like aligned text addresses — the
 * exact shape a linked code table has.
 *
 * CFG construction itself emits the structural diagnostics (illegal
 * instructions, targets outside the text segment, fallthrough off the
 * end of text, unreachable blocks); the dataflow passes in dataflow.hh
 * run on top of the finished graph.
 */

#ifndef HBAT_VERIFY_CFG_HH
#define HBAT_VERIFY_CFG_HH

#include <cstddef>
#include <vector>

#include "isa/isa.hh"
#include "kasm/program.hh"
#include "verify/diag.hh"

namespace hbat::verify
{

/** One basic block: instruction index range [first, end). */
struct BasicBlock
{
    size_t first = 0;
    size_t end = 0;
    std::vector<size_t> succs;  ///< successor block ids (deduplicated)
    std::vector<size_t> preds;  ///< predecessor block ids
    bool reachable = false;     ///< path exists from the entry block
};

/** The decoded program and its block graph. */
struct Cfg
{
    VAddr textBase = 0;
    size_t entryBlock = 0;              ///< block containing the entry

    /** Decoded text; insts[i].op is Halt when valid[i] is false. */
    std::vector<isa::Inst> insts;
    std::vector<bool> valid;            ///< word i decoded successfully

    std::vector<BasicBlock> blocks;     ///< in text order
    std::vector<size_t> blockOf;        ///< inst index -> block id

    /** Instruction indices JR/JALR may transfer to (sorted, unique). */
    std::vector<size_t> indirectTargets;
    bool hasIndirect = false;           ///< image contains JR/JALR

    /** Text address of instruction @p idx. */
    VAddr pcOf(size_t idx) const { return textBase + VAddr(idx) * 4; }

    size_t size() const { return insts.size(); }
};

/**
 * Decode @p prog and build its CFG, appending structural diagnostics
 * (IllegalInstruction, TargetOutOfText, FallthroughOffEnd,
 * UnreachableBlock, IndirectNoTargets) to @p report.
 */
Cfg buildCfg(const kasm::Program &prog, Report &report);

} // namespace hbat::verify

#endif // HBAT_VERIFY_CFG_HH
