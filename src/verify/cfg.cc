#include "verify/cfg.hh"

#include <algorithm>
#include <cstring>

#include "common/log.hh"

namespace hbat::verify
{

using isa::Inst;
using isa::Opcode;

namespace
{

/** Direct control-transfer target of instruction @p idx, in words. */
int64_t
directTarget(const Inst &inst, size_t idx)
{
    return int64_t(idx) + 1 + int64_t(inst.imm);
}

/** True when @p op ends a basic block. */
bool
endsBlock(Opcode op)
{
    return isa::isControl(op) || op == Opcode::Halt;
}

/**
 * Possible indirect-jump targets of @p prog as instruction indices.
 * Prefers the linker-recorded target list; falls back to scanning the
 * initialized data segments for aligned text addresses (the layout a
 * linked code table has). Out-of-text linker targets are diagnosed;
 * scan candidates are silently filtered (arbitrary data words are
 * allowed to look like anything).
 */
std::vector<size_t>
findIndirectTargets(const kasm::Program &prog, Report &report)
{
    const VAddr textEnd = prog.textEnd();
    std::vector<size_t> out;

    auto addCandidate = [&](VAddr va) {
        if (va < prog.textBase || va >= textEnd || va % 4 != 0)
            return false;
        out.push_back(size_t((va - prog.textBase) / 4));
        return true;
    };

    if (!prog.indirectTargets.empty()) {
        for (VAddr va : prog.indirectTargets) {
            if (!addCandidate(va)) {
                report.add(Diag::TargetOutOfText, Severity::Error, va,
                           "linker-recorded indirect target outside "
                           "the text segment");
            }
        }
    } else {
        for (const kasm::DataSegment &seg : prog.data) {
            for (size_t off = 0; off + 4 <= seg.bytes.size(); off += 4) {
                uint32_t word;
                std::memcpy(&word, seg.bytes.data() + off, 4);
                addCandidate(word);
            }
        }
    }

    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace

Cfg
buildCfg(const kasm::Program &prog, Report &report)
{
    Cfg cfg;
    cfg.textBase = prog.textBase;

    const size_t n = prog.text.size();
    cfg.insts.resize(n);
    cfg.valid.assign(n, false);
    for (size_t i = 0; i < n; ++i) {
        Inst inst;
        if (isa::tryDecode(prog.text[i], inst)) {
            cfg.insts[i] = inst;
            cfg.valid[i] = true;
        } else {
            // Treat as a block terminator so analysis can proceed.
            cfg.insts[i] = Inst{Opcode::Halt, 0, 0, 0, 0};
            report.add(Diag::IllegalInstruction, Severity::Error,
                       cfg.pcOf(i),
                       detail::concat("text word ", prog.text[i],
                                      " does not decode"));
        }
    }
    if (n == 0) {
        report.add(Diag::FallthroughOffEnd, Severity::Error,
                   prog.textBase, "program has no text");
        cfg.blocks.push_back(BasicBlock{});
        cfg.blocks[0].reachable = true;
        return cfg;
    }

    cfg.indirectTargets = findIndirectTargets(prog, report);

    // Call-return sites are legitimate JR destinations too.
    std::vector<size_t> jrSuccs = cfg.indirectTargets;
    for (size_t i = 0; i < n; ++i) {
        if (cfg.valid[i] && cfg.insts[i].op == Opcode::Jal && i + 1 < n)
            jrSuccs.push_back(i + 1);
    }
    std::sort(jrSuccs.begin(), jrSuccs.end());
    jrSuccs.erase(std::unique(jrSuccs.begin(), jrSuccs.end()),
                  jrSuccs.end());

    // Leaders: entry, control targets, post-control instructions.
    std::vector<bool> leader(n, false);
    size_t entryIdx = 0;
    if (prog.entry < prog.textBase || prog.entry >= prog.textEnd() ||
        prog.entry % 4 != 0) {
        report.add(Diag::TargetOutOfText, Severity::Error, prog.entry,
                   "entry point outside the text segment");
    } else {
        entryIdx = size_t((prog.entry - prog.textBase) / 4);
    }
    leader[entryIdx] = true;

    for (size_t t : jrSuccs)
        leader[t] = true;

    for (size_t i = 0; i < n; ++i) {
        const Inst &inst = cfg.insts[i];
        if (!cfg.valid[i] || !endsBlock(inst.op))
            continue;
        if (i + 1 < n)
            leader[i + 1] = true;
        if (isa::isBranch(inst.op) || inst.op == Opcode::J ||
            inst.op == Opcode::Jal) {
            const int64_t t = directTarget(inst, i);
            if (t < 0 || size_t(t) >= n) {
                report.add(Diag::TargetOutOfText, Severity::Error,
                           cfg.pcOf(i),
                           detail::concat(
                               isa::opName(inst.op),
                               " target outside the text segment"));
            } else {
                leader[size_t(t)] = true;
            }
        }
    }

    // Materialize blocks.
    cfg.blockOf.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
        if (i == 0 || leader[i]) {
            BasicBlock bb;
            bb.first = i;
            cfg.blocks.push_back(bb);
        }
        cfg.blockOf[i] = cfg.blocks.size() - 1;
        cfg.blocks.back().end = i + 1;
    }
    cfg.entryBlock = cfg.blockOf[entryIdx];

    // Successor edges.
    auto blockAt = [&](size_t idx) { return cfg.blockOf[idx]; };
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        BasicBlock &bb = cfg.blocks[b];
        const size_t last = bb.end - 1;
        const Inst &inst = cfg.insts[last];
        std::vector<size_t> &succs = bb.succs;

        auto addDirect = [&]() {
            const int64_t t = directTarget(inst, last);
            if (t >= 0 && size_t(t) < n)
                succs.push_back(blockAt(size_t(t)));
        };
        auto addFallthrough = [&](const char *what) {
            if (bb.end < n) {
                succs.push_back(blockAt(bb.end));
            } else {
                report.add(Diag::FallthroughOffEnd, Severity::Error,
                           cfg.pcOf(last),
                           detail::concat(what,
                                          " runs off the end of text"));
            }
        };

        if (!cfg.valid[last]) {
            // Diagnosed at decode; no successors.
        } else if (isa::isBranch(inst.op)) {
            addDirect();
            addFallthrough("branch fallthrough");
        } else if (inst.op == Opcode::J || inst.op == Opcode::Jal) {
            addDirect();
        } else if (inst.op == Opcode::Jr || inst.op == Opcode::Jalr) {
            cfg.hasIndirect = true;
            for (size_t t : jrSuccs)
                succs.push_back(blockAt(t));
        } else if (inst.op != Opcode::Halt) {
            addFallthrough("execution");
        }

        std::sort(succs.begin(), succs.end());
        succs.erase(std::unique(succs.begin(), succs.end()),
                    succs.end());
    }
    if (cfg.hasIndirect && jrSuccs.empty()) {
        report.add(Diag::IndirectNoTargets, Severity::Warning, 0,
                   "image contains indirect jumps but no identifiable "
                   "targets (no linker list, no code-table words)");
    }

    // Predecessors + reachability from the entry block.
    for (size_t b = 0; b < cfg.blocks.size(); ++b)
        for (size_t s : cfg.blocks[b].succs)
            cfg.blocks[s].preds.push_back(b);

    std::vector<size_t> work{cfg.entryBlock};
    cfg.blocks[cfg.entryBlock].reachable = true;
    while (!work.empty()) {
        const size_t b = work.back();
        work.pop_back();
        for (size_t s : cfg.blocks[b].succs) {
            if (!cfg.blocks[s].reachable) {
                cfg.blocks[s].reachable = true;
                work.push_back(s);
            }
        }
    }
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!cfg.blocks[b].reachable) {
            report.add(Diag::UnreachableBlock, Severity::Warning,
                       cfg.pcOf(cfg.blocks[b].first),
                       detail::concat("basic block of ",
                                      cfg.blocks[b].end -
                                          cfg.blocks[b].first,
                                      " instruction(s) is unreachable"));
        }
    }
    return cfg;
}

} // namespace hbat::verify
