/**
 * @file
 * Classic dataflow analyses over the verifier CFG.
 *
 * All passes operate on the 64-slot unified register universe
 * (integer registers 0..31, floating-point registers 32..63) and
 * iterate block-level transfer functions to a fixpoint:
 *
 *  - liveness (backward, may): which registers are live into/out of
 *    each block — powers the def-use dumps;
 *  - reaching definitions (forward, may): which definition sites can
 *    reach each block entry — powers use-def chains;
 *  - may-uninitialized (forward, may): which registers can still hold
 *    their loader-default value — powers the use-before-def
 *    diagnostic;
 *  - stack-pointer delta (forward, const lattice): the net sp
 *    adjustment from the entry, detecting imbalanced joins;
 *  - integer constant propagation (forward, const lattice): register
 *    values that are statically known, powering the misaligned-access
 *    diagnostic.
 *
 * Join functions are conservative across the indirect-jump edges cfg.hh
 * inserts, so every result is a safe over-approximation.
 */

#ifndef HBAT_VERIFY_DATAFLOW_HH
#define HBAT_VERIFY_DATAFLOW_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "verify/cfg.hh"

namespace hbat::verify
{

/** Bitmask over the 64-slot unified register universe. */
using RegSet = uint64_t;

/** Unified slot of integer register @p r. */
inline int intSlot(RegIndex r) { return int(r); }

/** Unified slot of floating-point register @p r. */
inline int fpSlot(RegIndex r) { return 32 + int(r); }

/** Registers the program loader initializes ($zero and $sp). */
inline constexpr RegSet kEntryDefined =
    (RegSet(1) << 0) | (RegSet(1) << 29);

/** Comma-separated conventional names of every register in @p s. */
std::string regSetNames(RegSet s);

/** Register uses and defs of one decoded instruction. */
struct InstEffect
{
    RegSet uses = 0;
    RegSet defs = 0;
};

/** Compute uses/defs of @p inst (JAL's implicit $ra write included). */
InstEffect instEffect(const isa::Inst &inst);

/** Growable fixed-width bitvector for reaching-definition sets. */
class BitVec
{
  public:
    BitVec() = default;
    explicit BitVec(size_t n) : words((n + 63) / 64, 0) {}

    bool
    get(size_t i) const
    {
        return (words[i >> 6] >> (i & 63)) & 1;
    }

    void set(size_t i) { words[i >> 6] |= uint64_t(1) << (i & 63); }
    void clear(size_t i) { words[i >> 6] &= ~(uint64_t(1) << (i & 63)); }

    /** this |= other; returns true when this changed. */
    bool
    orWith(const BitVec &other)
    {
        bool changed = false;
        for (size_t w = 0; w < words.size(); ++w) {
            const uint64_t nv = words[w] | other.words[w];
            changed |= nv != words[w];
            words[w] = nv;
        }
        return changed;
    }

    /** this &= other. */
    void
    andWith(const BitVec &other)
    {
        for (size_t w = 0; w < words.size(); ++w)
            words[w] &= other.words[w];
    }

    /** this &= ~other. */
    void
    minus(const BitVec &other)
    {
        for (size_t w = 0; w < words.size(); ++w)
            words[w] &= ~other.words[w];
    }

    bool
    any() const
    {
        for (uint64_t w : words)
            if (w)
                return true;
        return false;
    }

    /** Call @p fn with the index of every set bit, ascending. */
    template <typename Fn>
    void
    forEach(Fn fn) const
    {
        for (size_t w = 0; w < words.size(); ++w) {
            uint64_t v = words[w];
            while (v) {
                const int b = __builtin_ctzll(v);
                fn(w * 64 + size_t(b));
                v &= v - 1;
            }
        }
    }

  private:
    std::vector<uint64_t> words;
};

/** Per-block liveness sets. */
struct Liveness
{
    std::vector<RegSet> in;     ///< live into each block
    std::vector<RegSet> out;    ///< live out of each block
};

/** Backward liveness to a fixpoint over @p cfg. */
Liveness liveness(const Cfg &cfg);

/** Per-block may-uninitialized sets. */
struct UninitState
{
    std::vector<RegSet> in;
    std::vector<RegSet> out;
};

/**
 * Forward may-uninitialized analysis: a register is in a set when some
 * path reaches that point without defining it. @p entryDefined lists
 * the registers the loader initializes (kEntryDefined by default).
 */
UninitState mayUninit(const Cfg &cfg,
                      RegSet entryDefined = kEntryDefined);

/** Reaching-definition sites and per-block reaching sets. */
struct ReachingDefs
{
    /**
     * Definition sites: instruction index of each site. Site 0 is the
     * pseudo-definition of the loader-initialized registers and maps
     * to no instruction (kEntrySite).
     */
    static constexpr size_t kEntrySite = ~size_t(0);
    std::vector<size_t> siteInst;

    /** Registers each site defines. */
    std::vector<RegSet> siteDefs;

    /** Sites defining each register slot. */
    std::array<BitVec, 64> sitesOf;

    /** Sites reaching each block entry. */
    std::vector<BitVec> in;
};

/** Forward reaching-definitions to a fixpoint over @p cfg. */
ReachingDefs reachingDefs(const Cfg &cfg,
                          RegSet entryDefined = kEntryDefined);

/** Stack-pointer offset lattice value. */
struct SpDelta
{
    enum class Kind : uint8_t
    {
        Unknown,    ///< block not reached / no information yet
        Const,      ///< sp == entry sp + delta on every path
        Conflict    ///< paths disagree (or sp escaped analysis)
    };

    Kind kind = Kind::Unknown;
    int64_t delta = 0;
    /** Conflict arose from two disagreeing constants at this join. */
    bool freshConflict = false;
};

/** Per-block-entry stack-pointer deltas. */
struct SpDeltas
{
    std::vector<SpDelta> in;

    /** Apply instruction @p inst to running value @p v. */
    static void step(const isa::Inst &inst, SpDelta &v);
};

/** Forward sp-delta analysis from the entry block. */
SpDeltas spDeltas(const Cfg &cfg);

/** Statically-known integer register values at one point. */
struct ConstState
{
    uint32_t known = 1;                 ///< bit r: val[r] is exact
    std::array<uint32_t, 32> val{};     ///< val[0] is always 0

    bool isKnown(RegIndex r) const { return (known >> r) & 1; }

    void
    setKnown(RegIndex r, uint32_t v)
    {
        if (r == 0)
            return;
        known |= uint32_t(1) << r;
        val[r] = v;
    }

    void
    setUnknown(RegIndex r)
    {
        if (r == 0)
            return;
        known &= ~(uint32_t(1) << r);
    }
};

/** Per-block-entry constant states. */
struct ConstProp
{
    std::vector<ConstState> in;
    std::vector<bool> visited;  ///< block entered by the analysis

    /** Apply instruction @p inst to @p state (matches FuncCore). */
    static void step(const isa::Inst &inst, ConstState &state);

    /**
     * Effective address of memory instruction @p inst under @p state,
     * when statically known. Post-increment ops address M[base]
     * directly; base+displacement adds the immediate; register+
     * register adds the index register.
     */
    static bool effectiveAddr(const isa::Inst &inst,
                              const ConstState &state, uint32_t &addr);
};

/** Forward constant propagation; @p spInit is the loader's sp value. */
ConstProp constProp(const Cfg &cfg, uint32_t spInit);

} // namespace hbat::verify

#endif // HBAT_VERIFY_DATAFLOW_HH
