#include "verify/verifier.hh"

#include <cstdio>

#include "common/json.hh"
#include "common/log.hh"

namespace hbat::verify
{

using isa::Inst;
using isa::Opcode;
using isa::RC;

namespace
{

std::string
hex(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx", (unsigned long long)v);
    return buf;
}

/**
 * Walk every reachable block with the converged dataflow states and
 * emit the per-instruction diagnostics.
 */
void
instructionDiagnostics(const Analysis &a, Report &report)
{
    const Cfg &cfg = a.cfg;
    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        const BasicBlock &bb = cfg.blocks[b];
        if (!bb.reachable)
            continue;

        RegSet uninit = a.uninit.in[b];
        ConstState cs = a.consts.in[b];
        const bool csOk = a.consts.visited[b];

        for (size_t i = bb.first; i < bb.end; ++i) {
            if (!cfg.valid[i])
                continue;   // already diagnosed at decode
            const Inst &inst = cfg.insts[i];
            const isa::OpInfo &info = isa::opInfo(inst.op);
            const InstEffect eff = instEffect(inst);
            const VAddr pc = cfg.pcOf(i);

            if (const RegSet bad = eff.uses & uninit) {
                report.add(Diag::UninitRead, Severity::Warning, pc,
                           detail::concat(
                               isa::opName(inst.op),
                               " reads possibly-uninitialized register"
                               "(s) ", regSetNames(bad)));
            }

            if (info.rdClass == RC::Int && !info.rdIsSource &&
                inst.rd == isa::reg::zero) {
                report.add(Diag::WriteToZero, Severity::Warning, pc,
                           detail::concat(isa::opName(inst.op),
                                          " writes the hardwired $zero "
                                          "(result discarded)"));
            }
            if (info.writesBase && inst.rs1 == isa::reg::zero) {
                report.add(Diag::WriteToZero, Severity::Warning, pc,
                           detail::concat(
                               isa::opName(inst.op),
                               " post-increments the hardwired $zero "
                               "(update discarded)"));
            }

            if (info.memSize > 1 && csOk) {
                uint32_t addr;
                if (ConstProp::effectiveAddr(inst, cs, addr) &&
                    addr % info.memSize != 0) {
                    report.add(Diag::MisalignedAccess, Severity::Error,
                               pc,
                               detail::concat(
                                   isa::opName(inst.op), " accesses ",
                                   hex(addr), " but needs ",
                                   int(info.memSize),
                                   "-byte alignment"));
                }
            }

            uninit &= ~eff.defs;
            if (csOk)
                ConstProp::step(inst, cs);
        }
    }
}

void
spDiagnostics(const Analysis &a, Report &report)
{
    for (size_t b = 0; b < a.cfg.blocks.size(); ++b) {
        const BasicBlock &bb = a.cfg.blocks[b];
        if (!bb.reachable || bb.first >= bb.end)
            continue;
        const SpDelta &d = a.sp.in[b];
        if (d.kind == SpDelta::Kind::Conflict && d.freshConflict) {
            report.add(Diag::SpImbalance, Severity::Warning,
                       a.cfg.pcOf(bb.first),
                       "paths joining here disagree on the stack-"
                       "pointer offset (missing or double adjustment "
                       "across a call boundary)");
        }
    }
}

} // namespace

Analysis
analyzeProgram(const kasm::Program &prog, Report &report)
{
    Analysis a;
    a.cfg = buildCfg(prog, report);
    a.live = liveness(a.cfg);
    a.uninit = mayUninit(a.cfg);
    a.reach = reachingDefs(a.cfg);
    a.sp = spDeltas(a.cfg);
    a.consts = constProp(a.cfg, uint32_t(prog.stackTop));

    instructionDiagnostics(a, report);
    spDiagnostics(a, report);
    return a;
}

Report
verifyProgram(const kasm::Program &prog)
{
    Report report;
    analyzeProgram(prog, report);
    return report;
}

std::string
dumpAnalysis(const Analysis &a)
{
    const Cfg &cfg = a.cfg;
    std::string out = detail::concat(cfg.size(), " instruction(s), ",
                                     cfg.blocks.size(), " block(s), "
                                     "entry block #", cfg.entryBlock,
                                     "\n");

    // Map instructions back to their reaching-def sites.
    std::vector<size_t> siteOfInst(cfg.size(),
                                   ReachingDefs::kEntrySite);
    for (size_t s = 1; s < a.reach.siteInst.size(); ++s)
        siteOfInst[a.reach.siteInst[s]] = s;

    for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        const BasicBlock &bb = cfg.blocks[b];

        auto edgeList = [](const std::vector<size_t> &ids) {
            std::string s = "{";
            for (size_t i = 0; i < ids.size(); ++i)
                s += detail::concat(i ? "," : "", ids[i]);
            return s + "}";
        };

        out += detail::concat(
            "block #", b, ": [", hex(cfg.pcOf(bb.first)), ",",
            hex(cfg.textBase + VAddr(bb.end) * 4), ") succs",
            edgeList(bb.succs), " preds", edgeList(bb.preds),
            bb.reachable ? "" : " UNREACHABLE");
        switch (a.sp.in[b].kind) {
          case SpDelta::Kind::Const:
            out += detail::concat(" sp", a.sp.in[b].delta >= 0
                                  ? "+" : "", a.sp.in[b].delta);
            break;
          case SpDelta::Kind::Conflict:
            out += " sp?conflict";
            break;
          case SpDelta::Kind::Unknown:
            break;
        }
        out += "\n";
        out += detail::concat("  live-in: {",
                              regSetNames(a.live.in[b]), "}\n");
        out += detail::concat("  live-out: {",
                              regSetNames(a.live.out[b]), "}\n");
        if (const RegSet mu = a.uninit.in[b] & a.live.in[b]) {
            out += detail::concat("  may-uninit&live: {",
                                  regSetNames(mu), "}\n");
        }

        BitVec reach = a.reach.in[b];
        for (size_t i = bb.first; i < bb.end; ++i) {
            out += detail::concat(
                "  ", hex(cfg.pcOf(i)), "  ",
                cfg.valid[i]
                    ? isa::disassemble(cfg.insts[i], cfg.pcOf(i))
                    : "<illegal>");

            // Use-def chains: where each used register was defined.
            const InstEffect eff = instEffect(cfg.insts[i]);
            if (eff.uses) {
                std::string chains;
                for (int r = 0; r < 64; ++r) {
                    if (!((eff.uses >> r) & 1))
                        continue;
                    BitVec defs = a.reach.sitesOf[r];
                    defs.andWith(reach);
                    std::string sites;
                    defs.forEach([&](size_t s) {
                        if (!sites.empty())
                            sites += ",";
                        const size_t di = a.reach.siteInst[s];
                        sites += di == ReachingDefs::kEntrySite
                                     ? "entry"
                                     : hex(cfg.pcOf(di));
                    });
                    chains += detail::concat(
                        chains.empty() ? "" : " ", regSetNames(
                            RegSet(1) << r), "<-{", sites, "}");
                }
                if (!chains.empty())
                    out += detail::concat("   ; ", chains);
            }
            out += "\n";

            // Advance the reaching set past this instruction.
            const size_t site = siteOfInst[i];
            if (site != ReachingDefs::kEntrySite) {
                for (int r = 0; r < 64; ++r) {
                    if ((a.reach.siteDefs[site] >> r) & 1)
                        reach.minus(a.reach.sitesOf[r]);
                }
                reach.set(site);
            }
        }
    }
    return out;
}

void
reportToJson(json::Writer &w, const Report &report)
{
    w.beginArray();
    for (const Diagnostic &d : report.diags) {
        w.beginObject();
        w.key("code").value(diagName(d.code));
        w.key("severity").value(severityName(d.severity));
        w.key("pc").value(uint64_t(d.pc));
        w.key("message").value(d.message);
        w.endObject();
    }
    w.endArray();
}

} // namespace hbat::verify
