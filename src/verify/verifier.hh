/**
 * @file
 * The static program verifier's entry points.
 *
 * verifyProgram() decodes a linked kasm::Program back through the ISA
 * layer, builds its control-flow graph (cfg.hh), runs the dataflow
 * passes (dataflow.hh), and renders everything suspicious as
 * structured diagnostics:
 *
 *  - structural: illegal encodings, control transfers outside the
 *    text segment, fallthrough off the end of text, unreachable
 *    blocks, indirect jumps with no identifiable targets;
 *  - dataflow: reads of possibly-uninitialized registers, writes to
 *    the hardwired $zero, conflicting stack-pointer offsets at joins,
 *    statically-derivable misaligned memory accesses.
 *
 * analyzeProgram() additionally hands back the analysis artifacts
 * (CFG, liveness, reaching definitions, constant states) so tools can
 * render def-use dumps; dumpAnalysis() is that rendering, used by
 * `hbat_lint --cfg`.
 */

#ifndef HBAT_VERIFY_VERIFIER_HH
#define HBAT_VERIFY_VERIFIER_HH

#include <string>

#include "verify/cfg.hh"
#include "verify/dataflow.hh"
#include "verify/diag.hh"

namespace hbat::json
{
class Writer;
} // namespace hbat::json

namespace hbat::verify
{

/** Every artifact one verification run produces. */
struct Analysis
{
    Cfg cfg;
    Liveness live;
    UninitState uninit;
    ReachingDefs reach;
    SpDeltas sp;
    ConstProp consts;
};

/**
 * Decode @p prog, build its CFG, run all dataflow passes, and append
 * every diagnostic to @p report. Returns the analysis artifacts.
 */
Analysis analyzeProgram(const kasm::Program &prog, Report &report);

/** Convenience wrapper: analyze @p prog and return the findings. */
Report verifyProgram(const kasm::Program &prog);

/**
 * Multi-line human-readable dump of @p a: per-block address ranges,
 * edges, live-in/out and may-uninit sets, sp deltas, disassembly, and
 * the use-def chains of every register use (from reaching defs).
 */
std::string dumpAnalysis(const Analysis &a);

/**
 * Append the diagnostics of @p report to @p w as a JSON array of
 * {code, severity, pc, message} objects.
 */
void reportToJson(json::Writer &w, const Report &report);

} // namespace hbat::verify

#endif // HBAT_VERIFY_VERIFIER_HH
