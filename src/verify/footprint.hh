/**
 * @file
 * Static translation-footprint analysis.
 *
 * Folds the per-reference stride summaries (stride.hh) into the
 * quantities the paper's designs actually trade on:
 *
 *  - per-PC access pattern and page-run length — a reference that
 *    stays on one page for R consecutive accesses is R-way piggyback
 *    opportunity (Section 3.4);
 *  - the program's estimated distinct-page working set, compared
 *    against a design's TLB reach (entries x page size);
 *  - same-bank collision groups under the interleaved designs,
 *    evaluated with the exact bankSelectOf() the hardware model uses.
 *
 * Program-level findings (irregular strides, unbounded induction) are
 * design-independent; reach and bank conflicts are parameterized by
 * tlb::DesignParams. All footprint diagnostics are Severity::Info:
 * they describe workload/design interactions worth knowing before a
 * sweep, not program bugs.
 */

#ifndef HBAT_VERIFY_FOOTPRINT_HH
#define HBAT_VERIFY_FOOTPRINT_HH

#include <string>
#include <vector>

#include "kasm/program.hh"
#include "tlb/design.hh"
#include "verify/stride.hh"
#include "verify/verifier.hh"

namespace hbat::verify
{

/** Access-pattern classification of one static memory reference. */
enum class RefPattern : uint8_t
{
    Fixed,              ///< one statically-known address
    Strided,            ///< base + iteration * stride
    IrregularBounded,   ///< bounded region, no stride (hash probes)
    Irregular           ///< no static address information
};

/** Stable lower-case name of @p p (JSON and CLI output). */
const char *patternName(RefPattern p);

/** Footprint summary of one static load/store. */
struct RefFootprint
{
    VAddr pc = 0;
    size_t loop = kNoLoop;      ///< innermost loop (kNoLoop = straight-line)
    unsigned loopDepth = 0;
    bool isStore = false;
    unsigned bytes = 0;

    RefPattern pattern = RefPattern::Irregular;
    int64_t stride = 0;         ///< per-iteration delta (Strided only)

    bool spanKnown = false;     ///< lo/hi delimit the touched bytes
    uint64_t lo = 0;            ///< inclusive span start
    uint64_t hi = 0;            ///< inclusive span end
    uint64_t spanPages = 0;     ///< pages in the span (0 = unknown)

    uint64_t estAccesses = 1;   ///< known-trip product of enclosing loops
    bool estExact = true;       ///< false: estAccesses is a lower bound
    double pageRun = 1.0;       ///< expected consecutive same-page accesses
};

/** Whole-program footprint at one page size. */
struct ProgramFootprint
{
    unsigned pageBytes = 4096;
    std::vector<RefFootprint> refs;     ///< text order
    StrideAnalysis strides;             ///< loops/IVs behind the refs
    std::vector<VAddr> loopHeaderPcs;   ///< per loop: header's first pc

    uint64_t textPages = 0;
    uint64_t dataPages = 0;
    uint64_t stackPages = 0;
    uint64_t estPages = 0;      ///< distinct-page working set estimate
    bool estPagesExact = true;  ///< false: estPages is a lower bound
};

/**
 * Compute the footprint of @p prog from its analysis @p a (the
 * stride pass runs internally) at @p pageBytes.
 */
ProgramFootprint analyzeFootprint(const kasm::Program &prog,
                                  const Analysis &a,
                                  unsigned pageBytes);

/** One same-bank collision group under an interleaved design. */
struct BankConflict
{
    unsigned bank = 0;          ///< bank of the group's first access
    double rate = 1.0;          ///< fraction of iterations colliding
    std::vector<VAddr> pcs;     ///< members, text order
};

/** Design-dependent fold of a program footprint. */
struct DesignFootprint
{
    unsigned reachPages = 0;
    bool exceedsReach = false;
    std::vector<BankConflict> conflicts;
};

/** Fold @p fp against design geometry @p p. */
DesignFootprint foldDesign(const ProgramFootprint &fp,
                           const tlb::DesignParams &p);

/**
 * Design-independent footprint lint: IrregularStride for loop-resident
 * references with no static pattern, UnboundedInduction for loops
 * whose strided references have no static trip bound. All Info.
 */
void lintProgramFootprint(const ProgramFootprint &fp, Report &report);

/**
 * Design-dependent footprint lint against @p p (labelled @p label in
 * messages): FootprintExceedsReach and BankConflictHotspot. All Info.
 */
void lintDesignFootprint(const ProgramFootprint &fp,
                         const tlb::DesignParams &p,
                         const std::string &label, Report &report);

} // namespace hbat::verify

#endif // HBAT_VERIFY_FOOTPRINT_HH
