/**
 * @file
 * Page geometry.
 *
 * The paper's baseline uses 4 KB pages (Table 1); Section 4.5 re-runs
 * the evaluation with 8 KB pages. All page-size-dependent computations
 * go through PageParams so both configurations share every code path.
 */

#ifndef HBAT_VM_PAGING_HH
#define HBAT_VM_PAGING_HH

#include "common/bitops.hh"
#include "common/log.hh"
#include "common/types.hh"

namespace hbat::vm
{

/** Width of a simulated virtual/physical address in bits. */
inline constexpr unsigned kAddrBits = 32;

/** Page-size configuration. */
class PageParams
{
  public:
    /** @param page_bytes page size; must be a power of two >= 1 KB. */
    explicit PageParams(unsigned page_bytes = 4096)
        : bytes_(page_bytes), shift_(exactLog2(page_bytes))
    {
        hbat_assert(page_bytes >= 1024, "page size too small");
    }

    unsigned bytes() const { return bytes_; }
    unsigned shift() const { return shift_; }

    /** Number of VPN bits for 32-bit virtual addresses. */
    unsigned vpnBits() const { return kAddrBits - shift_; }

    Vpn vpn(VAddr va) const { return va >> shift_; }
    uint64_t offset(VAddr va) const { return va & mask(shift_); }

    PAddr
    physAddr(Ppn ppn, VAddr va) const
    {
        return (PAddr(ppn) << shift_) | offset(va);
    }

    VAddr pageBase(VAddr va) const { return va & ~VAddr(mask(shift_)); }

    bool operator==(const PageParams &) const = default;

  private:
    unsigned bytes_;
    unsigned shift_;
};

/** Page protection bits. */
enum PagePerms : uint8_t
{
    kPermRead = 1,
    kPermWrite = 2,
    kPermExec = 4,
    kPermAll = kPermRead | kPermWrite | kPermExec
};

/** One page-table entry. */
struct Pte
{
    Ppn ppn = 0;
    uint8_t perms = kPermAll;
    bool valid = false;
    bool referenced = false;    ///< set on first access
    bool dirty = false;         ///< set on first write
};

} // namespace hbat::vm

#endif // HBAT_VM_PAGING_HH
