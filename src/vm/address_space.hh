/**
 * @file
 * The simulated process address space: byte storage plus page table.
 *
 * Storage is kept per virtual page and allocated on first touch, so
 * multi-megabyte uninitialized regions (e.g. the TFFT workload's
 * arrays) cost nothing until used. All functional loads and stores in
 * the simulator go through this class; the timing models separately
 * charge TLB/cache latency using the page table's translations.
 */

#ifndef HBAT_VM_ADDRESS_SPACE_HH
#define HBAT_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "kasm/program.hh"
#include "vm/page_table.hh"
#include "vm/program_image.hh"

namespace hbat::vm
{

/**
 * A deep snapshot of an AddressSpace's mutable state: the privately
 * materialized pages (sorted by VPN), the copy-on-write counter, and
 * the page table. Shared image pages are *not* captured — they are
 * immutable, so a restored space re-reads them from the same
 * ProgramImage. Page payloads are held by shared_ptr so consecutive
 * checkpoints of a run can share the copies of pages that did not
 * change in between (see sim::Checkpoint).
 */
struct SpaceState
{
    struct Page
    {
        Vpn vpn = 0;
        std::shared_ptr<const std::vector<uint8_t>> data;
    };
    std::vector<Page> pages;    ///< sorted by vpn
    uint64_t cowPages = 0;
    PageTableState pt;
};

/** A loaded process image. */
class AddressSpace
{
  public:
    /**
     * @param params page geometry
     * @param mru_enabled enable the MRU page-pointer cache in front
     *     of the page map (off only for determinism cross-checks; the
     *     cache is invisible to all simulated state)
     * @param image optional shared, immutable program image standing
     *     in for load(): reads are served from its pages directly and
     *     the first write to an image page copies it privately
     *     (copy-on-write). Callers pass either an image or a load()
     *     call, not both; the image's page geometry must match
     *     @p params.
     */
    explicit AddressSpace(
        PageParams params = PageParams{}, bool mru_enabled = true,
        std::shared_ptr<const ProgramImage> image = nullptr);

    /** Copy a program's text and data into memory. */
    void load(const kasm::Program &prog);

    /** True when a shared program image backs this space (no load()
     *  needed — the image's pages serve reads directly). */
    bool hasImage() const { return image_ != nullptr; }

    const PageParams &params() const { return pt.params(); }
    PageTable &pageTable() { return pt; }
    const PageTable &pageTable() const { return pt; }

    /// @name Aligned typed access
    /// @{
    uint8_t read8(VAddr va);
    uint16_t read16(VAddr va);
    uint32_t read32(VAddr va);
    uint64_t read64(VAddr va);
    void write8(VAddr va, uint8_t v);
    void write16(VAddr va, uint16_t v);
    void write32(VAddr va, uint32_t v);
    void write64(VAddr va, uint64_t v);
    /// @}

    /** Read @p size bytes (1/2/4/8), zero-extended. */
    uint64_t read(VAddr va, unsigned size);

    /** Write the low @p size bytes of @p v. */
    void write(VAddr va, uint64_t v, unsigned size);

    /**
     * Number of distinct pages the process occupies: privately
     * materialized pages plus shared image pages not (yet) copied.
     * Exactly what a load()-based space would report — whether a page
     * is still shared or already copied is invisible here.
     */
    uint64_t
    touchedPages() const
    {
        return pages.size() +
               (image_ ? image_->pageCount() - cowPages_ : 0);
    }

    /**
     * Deep-copy the space's mutable state into @p out (fresh page
     * copies — the sharing between consecutive checkpoints happens in
     * sim::Checkpoint). The MRU pointer cache is host-side and not
     * part of the state.
     */
    void saveState(SpaceState &out) const;

    /**
     * Replace the space's mutable state with @p s. The space must
     * have been constructed with the same page geometry and the same
     * shared image as the one @p s was saved from; all reads, writes,
     * and translations then proceed exactly as they would have in the
     * original run.
     */
    void restoreState(const SpaceState &s);

  private:
    /**
     * Resolve @p vpn to its storage, materializing the page on first
     * touch. The fast path is a direct-mapped MRU cache of recent
     * (vpn -> storage) resolutions — the software analogue of the
     * paper's MRU translation reuse: the translation stream is highly
     * local, so most functional accesses skip the hash lookup
     * entirely. Page storage never moves once materialized (the map
     * and the shared image hold owning pointers to stable arrays), so
     * cached pointers stay valid; the cache is nonetheless
     * invalidated wholesale whenever a page materializes, keeping it
     * trivially correct should pages ever be dropped or remapped.
     *
     * Reads may resolve to a read-only page of the shared image
     * (cached with writable = false); writes demand a private page,
     * copying the image page on first write (copy-on-write).
     */
    const uint8_t *
    readPtr(Vpn vpn)
    {
        MruEntry &e = mru[vpn & (kMruEntries - 1)];
        if (e.ptr != nullptr && e.vpn == vpn) [[likely]]
            return e.ptr;
        return readPtrSlow(vpn);
    }

    uint8_t *
    writePtr(Vpn vpn)
    {
        MruEntry &e = mru[vpn & (kMruEntries - 1)];
        if (e.ptr != nullptr && e.vpn == vpn && e.writable) [[likely]]
            return e.ptr;
        return writePtrSlow(vpn);
    }

    const uint8_t *readPtrSlow(Vpn vpn);
    uint8_t *writePtrSlow(Vpn vpn);
    uint8_t *materialize(Vpn vpn);

    template <typename T>
    T
    readT(VAddr va)
    {
        hbat_assert(va % sizeof(T) == 0,
                    "misaligned ", sizeof(T), "-byte read at ", va);
        const uint8_t *p =
            readPtr(pt.params().vpn(va)) + pt.params().offset(va);
        T v;
        __builtin_memcpy(&v, p, sizeof(T));
        return v;
    }

    template <typename T>
    void
    writeT(VAddr va, T v)
    {
        hbat_assert(va % sizeof(T) == 0,
                    "misaligned ", sizeof(T), "-byte write at ", va);
        uint8_t *p =
            writePtr(pt.params().vpn(va)) + pt.params().offset(va);
        __builtin_memcpy(p, &v, sizeof(T));
    }

    /** One MRU page-pointer cache slot (invalid when ptr is null). */
    struct MruEntry
    {
        Vpn vpn = 0;
        uint8_t *ptr = nullptr;
        bool writable = false;  ///< false: shared image page (reads only)
    };

    /** MRU cache size; a power of two (direct-mapped on low bits). */
    static constexpr size_t kMruEntries = 16;

    PageTable pt;
    std::unordered_map<Vpn, std::unique_ptr<uint8_t[]>> pages;
    std::shared_ptr<const ProgramImage> image_;
    uint64_t cowPages_ = 0;     ///< image pages copied privately
    MruEntry mru[kMruEntries];
    bool mruEnabled;
};

} // namespace hbat::vm

#endif // HBAT_VM_ADDRESS_SPACE_HH
