#include "vm/address_space.hh"

#include <cstring>

namespace hbat::vm
{

AddressSpace::AddressSpace(PageParams params, bool mru_enabled)
    : pt(params), mruEnabled(mru_enabled)
{}

uint8_t *
AddressSpace::pagePtrSlow(Vpn vpn)
{
    auto it = pages.find(vpn);
    if (it == pages.end()) {
        auto page = std::make_unique<uint8_t[]>(pt.params().bytes());
        std::memset(page.get(), 0, pt.params().bytes());
        it = pages.emplace(vpn, std::move(page)).first;
        // Materialization invalidates every cached resolution (cheap:
        // once per touched page) so the cache never outlives a
        // hypothetical page drop/remap.
        for (MruEntry &e : mru)
            e = MruEntry{};
    }
    if (mruEnabled)
        mru[vpn & (kMruEntries - 1)] = MruEntry{vpn, it->second.get()};
    return it->second.get();
}

void
AddressSpace::load(const kasm::Program &prog)
{
    for (size_t i = 0; i < prog.text.size(); ++i)
        write32(prog.textBase + i * 4, prog.text[i]);
    for (const kasm::DataSegment &seg : prog.data) {
        for (size_t i = 0; i < seg.bytes.size(); ++i)
            write8(seg.base + i, seg.bytes[i]);
    }
}

uint8_t
AddressSpace::read8(VAddr va)
{
    return readT<uint8_t>(va);
}

uint16_t
AddressSpace::read16(VAddr va)
{
    return readT<uint16_t>(va);
}

uint32_t
AddressSpace::read32(VAddr va)
{
    return readT<uint32_t>(va);
}

uint64_t
AddressSpace::read64(VAddr va)
{
    return readT<uint64_t>(va);
}

void
AddressSpace::write8(VAddr va, uint8_t v)
{
    writeT(va, v);
}

void
AddressSpace::write16(VAddr va, uint16_t v)
{
    writeT(va, v);
}

void
AddressSpace::write32(VAddr va, uint32_t v)
{
    writeT(va, v);
}

void
AddressSpace::write64(VAddr va, uint64_t v)
{
    writeT(va, v);
}

uint64_t
AddressSpace::read(VAddr va, unsigned size)
{
    switch (size) {
      case 1: return read8(va);
      case 2: return read16(va);
      case 4: return read32(va);
      case 8: return read64(va);
      default: hbat_panic("bad access size ", size);
    }
}

void
AddressSpace::write(VAddr va, uint64_t v, unsigned size)
{
    switch (size) {
      case 1: write8(va, uint8_t(v)); return;
      case 2: write16(va, uint16_t(v)); return;
      case 4: write32(va, uint32_t(v)); return;
      case 8: write64(va, v); return;
      default: hbat_panic("bad access size ", size);
    }
}

} // namespace hbat::vm
