#include "vm/address_space.hh"

#include <algorithm>
#include <cstring>

namespace hbat::vm
{

AddressSpace::AddressSpace(PageParams params, bool mru_enabled,
                           std::shared_ptr<const ProgramImage> image)
    : pt(params), image_(std::move(image)), mruEnabled(mru_enabled)
{
    hbat_assert(!image_ || image_->params().bytes() == params.bytes(),
                "program image page size does not match address space");
}

uint8_t *
AddressSpace::materialize(Vpn vpn)
{
    auto page = std::make_unique<uint8_t[]>(pt.params().bytes());
    const uint8_t *src = image_ ? image_->page(vpn) : nullptr;
    if (src) {
        std::memcpy(page.get(), src, pt.params().bytes());
        ++cowPages_;    // this page now counts as private, not shared
    } else {
        std::memset(page.get(), 0, pt.params().bytes());
    }
    uint8_t *const ptr = page.get();
    pages.emplace(vpn, std::move(page));
    // Materialization invalidates every cached resolution (cheap:
    // once per touched page) so the cache never outlives a
    // hypothetical page drop/remap.
    for (MruEntry &e : mru)
        e = MruEntry{};
    return ptr;
}

const uint8_t *
AddressSpace::readPtrSlow(Vpn vpn)
{
    auto it = pages.find(vpn);
    if (it != pages.end()) {
        if (mruEnabled)
            mru[vpn & (kMruEntries - 1)] =
                MruEntry{vpn, it->second.get(), true};
        return it->second.get();
    }
    if (image_) {
        if (const uint8_t *p = image_->page(vpn)) {
            // Reads may use the shared page directly; the cast is safe
            // because the read-only flag keeps writes off it.
            uint8_t *q = const_cast<uint8_t *>(p);
            if (mruEnabled)
                mru[vpn & (kMruEntries - 1)] = MruEntry{vpn, q, false};
            return p;
        }
    }
    uint8_t *const ptr = materialize(vpn);
    if (mruEnabled)
        mru[vpn & (kMruEntries - 1)] = MruEntry{vpn, ptr, true};
    return ptr;
}

uint8_t *
AddressSpace::writePtrSlow(Vpn vpn)
{
    auto it = pages.find(vpn);
    uint8_t *const ptr =
        it != pages.end() ? it->second.get() : materialize(vpn);
    if (mruEnabled)
        mru[vpn & (kMruEntries - 1)] = MruEntry{vpn, ptr, true};
    return ptr;
}

void
AddressSpace::saveState(SpaceState &out) const
{
    const size_t bytes = pt.params().bytes();
    out.pages.clear();
    out.pages.reserve(pages.size());
    for (const auto &[vpn, storage] : pages) {
        auto copy = std::make_shared<std::vector<uint8_t>>(
            storage.get(), storage.get() + bytes);
        out.pages.push_back(SpaceState::Page{vpn, std::move(copy)});
    }
    std::sort(out.pages.begin(), out.pages.end(),
              [](const SpaceState::Page &a, const SpaceState::Page &b) {
                  return a.vpn < b.vpn;
              });
    out.cowPages = cowPages_;
    pt.saveState(out.pt);
}

void
AddressSpace::restoreState(const SpaceState &s)
{
    const size_t bytes = pt.params().bytes();
    pages.clear();
    for (const SpaceState::Page &p : s.pages) {
        hbat_assert(p.data && p.data->size() == bytes,
                    "restored page has wrong geometry");
        auto storage = std::make_unique<uint8_t[]>(bytes);
        std::memcpy(storage.get(), p.data->data(), bytes);
        pages.emplace(p.vpn, std::move(storage));
    }
    cowPages_ = s.cowPages;
    pt.restoreState(s.pt);
    // Cached resolutions point into freed storage now; drop them all.
    for (MruEntry &e : mru)
        e = MruEntry{};
}

void
AddressSpace::load(const kasm::Program &prog)
{
    for (size_t i = 0; i < prog.text.size(); ++i)
        write32(prog.textBase + i * 4, prog.text[i]);
    for (const kasm::DataSegment &seg : prog.data) {
        for (size_t i = 0; i < seg.bytes.size(); ++i)
            write8(seg.base + i, seg.bytes[i]);
    }
}

uint8_t
AddressSpace::read8(VAddr va)
{
    return readT<uint8_t>(va);
}

uint16_t
AddressSpace::read16(VAddr va)
{
    return readT<uint16_t>(va);
}

uint32_t
AddressSpace::read32(VAddr va)
{
    return readT<uint32_t>(va);
}

uint64_t
AddressSpace::read64(VAddr va)
{
    return readT<uint64_t>(va);
}

void
AddressSpace::write8(VAddr va, uint8_t v)
{
    writeT(va, v);
}

void
AddressSpace::write16(VAddr va, uint16_t v)
{
    writeT(va, v);
}

void
AddressSpace::write32(VAddr va, uint32_t v)
{
    writeT(va, v);
}

void
AddressSpace::write64(VAddr va, uint64_t v)
{
    writeT(va, v);
}

uint64_t
AddressSpace::read(VAddr va, unsigned size)
{
    switch (size) {
      case 1: return read8(va);
      case 2: return read16(va);
      case 4: return read32(va);
      case 8: return read64(va);
      default: hbat_panic("bad access size ", size);
    }
}

void
AddressSpace::write(VAddr va, uint64_t v, unsigned size)
{
    switch (size) {
      case 1: write8(va, uint8_t(v)); return;
      case 2: write16(va, uint16_t(v)); return;
      case 4: write32(va, uint32_t(v)); return;
      case 8: write64(va, v); return;
      default: hbat_panic("bad access size ", size);
    }
}

} // namespace hbat::vm
