/**
 * @file
 * A two-level radix page table with on-demand frame allocation.
 *
 * The simulator runs user-level code only (as the paper's does), so the
 * page table plays the OS role: any page the program touches is given a
 * physical frame on first access. The TLB-miss *timing* (the fixed
 * 30-cycle handler of Table 1) is modeled by the translation engines;
 * this class provides the architectural state they load, including the
 * referenced/dirty status bits whose write-through traffic Section 4.1
 * describes.
 */

#ifndef HBAT_VM_PAGE_TABLE_HH
#define HBAT_VM_PAGE_TABLE_HH

#include <memory>
#include <vector>

#include "vm/paging.hh"

namespace hbat::vm
{

/** Result of referencing a page for an access. */
struct RefResult
{
    Ppn ppn = 0;
    /**
     * True when this access changed the page's status bits (first
     * reference, or first write to a referenced page). Upper-level
     * translation structures write such changes through to the base
     * TLB (Section 4.1).
     */
    bool statusChanged = false;
};

/**
 * The page table's complete architectural state, decoupled from the
 * radix storage: every valid (vpn, pte) pair sorted by VPN, plus the
 * frame allocator. The sorted flat form makes state comparisons and
 * checkpoints (sim::Checkpoint) representation-independent.
 */
struct PageTableState
{
    std::vector<std::pair<Vpn, Pte>> ptes;
    Ppn nextPpn = 1;
    uint64_t mapped = 0;
};

/** Two-level radix page table. */
class PageTable
{
  public:
    explicit PageTable(PageParams params = PageParams{});

    const PageParams &params() const { return params_; }

    /**
     * Look up the PTE for @p vpn, allocating a frame on first touch.
     * Never fails: this simulator has no demand paging to disk.
     */
    Pte &lookup(Vpn vpn);

    /** Look up without allocating; nullptr when not present. */
    const Pte *find(Vpn vpn) const;

    /**
     * Perform the architectural side of an access to @p vpn: allocate
     * if needed, set referenced (and dirty when @p write), and report
     * whether the status bits changed.
     */
    RefResult reference(Vpn vpn, bool write);

    /** Number of mapped pages. */
    uint64_t mappedPages() const { return mapped; }

    /** Snapshot every valid PTE plus the frame allocator. */
    void saveState(PageTableState &out) const;

    /**
     * Replace the table's contents with @p s (same page geometry).
     * Restored PPNs and status bits are exactly as saved, so a
     * restored run allocates and references frames identically to the
     * run the state was captured from.
     */
    void restoreState(const PageTableState &s);

  private:
    /// First-level directory fan-out (upper VPN bits).
    static constexpr unsigned kL1Bits = 10;

    struct Leaf
    {
        std::vector<Pte> ptes;
    };

    PageParams params_;
    unsigned l2Bits;
    std::vector<std::unique_ptr<Leaf>> dir;
    Ppn nextPpn = 1;    ///< frame 0 is kept invalid as a guard
    uint64_t mapped = 0;
};

} // namespace hbat::vm

#endif // HBAT_VM_PAGE_TABLE_HH
