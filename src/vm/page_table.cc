#include "vm/page_table.hh"

namespace hbat::vm
{

PageTable::PageTable(PageParams params)
    : params_(params)
{
    hbat_assert(params_.vpnBits() > kL1Bits, "page size too large");
    l2Bits = params_.vpnBits() - kL1Bits;
    dir.resize(size_t(1) << kL1Bits);
}

Pte &
PageTable::lookup(Vpn vpn)
{
    hbat_assert(vpn < (Vpn(1) << params_.vpnBits()),
                "vpn out of range: ", vpn);
    const size_t l1 = size_t(vpn >> l2Bits);
    const size_t l2 = size_t(vpn & mask(l2Bits));

    if (!dir[l1]) {
        dir[l1] = std::make_unique<Leaf>();
        dir[l1]->ptes.resize(size_t(1) << l2Bits);
    }
    Pte &pte = dir[l1]->ptes[l2];
    if (!pte.valid) {
        pte.valid = true;
        pte.ppn = nextPpn++;
        pte.perms = kPermAll;
        ++mapped;
    }
    return pte;
}

const Pte *
PageTable::find(Vpn vpn) const
{
    if (vpn >= (Vpn(1) << params_.vpnBits()))
        return nullptr;
    const size_t l1 = size_t(vpn >> l2Bits);
    const size_t l2 = size_t(vpn & mask(l2Bits));
    if (!dir[l1])
        return nullptr;
    const Pte &pte = dir[l1]->ptes[l2];
    return pte.valid ? &pte : nullptr;
}

RefResult
PageTable::reference(Vpn vpn, bool write)
{
    Pte &pte = lookup(vpn);
    RefResult res;
    res.ppn = pte.ppn;
    if (!pte.referenced) {
        pte.referenced = true;
        res.statusChanged = true;
    }
    if (write && !pte.dirty) {
        pte.dirty = true;
        res.statusChanged = true;
    }
    return res;
}

} // namespace hbat::vm
