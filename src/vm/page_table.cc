#include "vm/page_table.hh"

namespace hbat::vm
{

PageTable::PageTable(PageParams params)
    : params_(params)
{
    hbat_assert(params_.vpnBits() > kL1Bits, "page size too large");
    l2Bits = params_.vpnBits() - kL1Bits;
    dir.resize(size_t(1) << kL1Bits);
}

Pte &
PageTable::lookup(Vpn vpn)
{
    hbat_assert(vpn < (Vpn(1) << params_.vpnBits()),
                "vpn out of range: ", vpn);
    const size_t l1 = size_t(vpn >> l2Bits);
    const size_t l2 = size_t(vpn & mask(l2Bits));

    if (!dir[l1]) {
        dir[l1] = std::make_unique<Leaf>();
        dir[l1]->ptes.resize(size_t(1) << l2Bits);
    }
    Pte &pte = dir[l1]->ptes[l2];
    if (!pte.valid) {
        pte.valid = true;
        pte.ppn = nextPpn++;
        pte.perms = kPermAll;
        ++mapped;
    }
    return pte;
}

const Pte *
PageTable::find(Vpn vpn) const
{
    if (vpn >= (Vpn(1) << params_.vpnBits()))
        return nullptr;
    const size_t l1 = size_t(vpn >> l2Bits);
    const size_t l2 = size_t(vpn & mask(l2Bits));
    if (!dir[l1])
        return nullptr;
    const Pte &pte = dir[l1]->ptes[l2];
    return pte.valid ? &pte : nullptr;
}

void
PageTable::saveState(PageTableState &out) const
{
    out.ptes.clear();
    for (size_t l1 = 0; l1 < dir.size(); ++l1) {
        if (!dir[l1])
            continue;
        const std::vector<Pte> &ptes = dir[l1]->ptes;
        for (size_t l2 = 0; l2 < ptes.size(); ++l2) {
            if (ptes[l2].valid)
                out.ptes.emplace_back(Vpn((l1 << l2Bits) | l2),
                                      ptes[l2]);
        }
    }
    out.nextPpn = nextPpn;
    out.mapped = mapped;
}

void
PageTable::restoreState(const PageTableState &s)
{
    for (auto &leaf : dir)
        leaf.reset();
    for (const auto &[vpn, pte] : s.ptes) {
        hbat_assert(vpn < (Vpn(1) << params_.vpnBits()),
                    "restored vpn out of range: ", vpn);
        const size_t l1 = size_t(vpn >> l2Bits);
        const size_t l2 = size_t(vpn & mask(l2Bits));
        if (!dir[l1]) {
            dir[l1] = std::make_unique<Leaf>();
            dir[l1]->ptes.resize(size_t(1) << l2Bits);
        }
        dir[l1]->ptes[l2] = pte;
    }
    nextPpn = s.nextPpn;
    mapped = s.mapped;
}

RefResult
PageTable::reference(Vpn vpn, bool write)
{
    Pte &pte = lookup(vpn);
    RefResult res;
    res.ppn = pte.ppn;
    if (!pte.referenced) {
        pte.referenced = true;
        res.statusChanged = true;
    }
    if (write && !pte.dirty) {
        pte.dirty = true;
        res.statusChanged = true;
    }
    return res;
}

} // namespace hbat::vm
