#include "vm/program_image.hh"

#include <cstring>

#include "common/log.hh"

namespace hbat::vm
{

ProgramImage::ProgramImage(const kasm::Program &prog, PageParams params)
    : params_(params)
{
    const auto pageOf = [&](Vpn vpn) -> uint8_t * {
        auto it = pages_.find(vpn);
        if (it == pages_.end()) {
            auto page = std::make_unique<uint8_t[]>(params_.bytes());
            std::memset(page.get(), 0, params_.bytes());
            it = pages_.emplace(vpn, std::move(page)).first;
        }
        return it->second.get();
    };

    // Mirror AddressSpace::load() exactly: one aligned word per text
    // slot (words never straddle a page), one byte per data byte.
    for (size_t i = 0; i < prog.text.size(); ++i) {
        const VAddr va = prog.textBase + i * 4;
        hbat_assert(va % 4 == 0, "misaligned text word at ", va);
        const uint32_t w = prog.text[i];
        __builtin_memcpy(pageOf(params_.vpn(va)) + params_.offset(va),
                         &w, 4);
    }
    for (const kasm::DataSegment &seg : prog.data) {
        for (size_t i = 0; i < seg.bytes.size(); ++i) {
            const VAddr va = seg.base + i;
            pageOf(params_.vpn(va))[params_.offset(va)] = seg.bytes[i];
        }
    }
}

} // namespace hbat::vm
