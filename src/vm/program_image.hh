/**
 * @file
 * Immutable page-level image of a loaded program.
 *
 * A design sweep runs the same program through many machine
 * configurations; before this class each cell re-executed
 * AddressSpace::load() — one write per text word and data byte — 13
 * times per program. A ProgramImage is built once per (program, page
 * geometry) pair and shared read-only across cells: it holds exactly
 * the pages load() would materialize, with identical contents, and
 * each cell's AddressSpace copies a page privately only when it first
 * writes to it (copy-on-write).
 *
 * Deliberately *not* shared: the page table. Physical frame numbers
 * are handed out in first-reference order by PageTable::lookup(), and
 * that order is driven by each design's timing — pre-populating a
 * shared "skeleton" would reassign PPNs and change reported
 * statistics. Only byte storage, which is order-independent, lives
 * here.
 */

#ifndef HBAT_VM_PROGRAM_IMAGE_HH
#define HBAT_VM_PROGRAM_IMAGE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "kasm/program.hh"
#include "vm/paging.hh"

namespace hbat::vm
{

/** The text/data pages of one program, frozen after construction. */
class ProgramImage
{
  public:
    /** Build the pages @p prog's load() would touch, with identical
     *  contents (zero-filled gaps included). */
    ProgramImage(const kasm::Program &prog, PageParams params);

    const PageParams &params() const { return params_; }

    /** The page holding @p vpn, or nullptr when load() never touched
     *  it. The storage is immutable and outlives every reader. */
    const uint8_t *
    page(Vpn vpn) const
    {
        auto it = pages_.find(vpn);
        return it == pages_.end() ? nullptr : it->second.get();
    }

    /** Number of pages in the image. */
    uint64_t pageCount() const { return pages_.size(); }

  private:
    PageParams params_;
    std::unordered_map<Vpn, std::unique_ptr<uint8_t[]>> pages_;
};

} // namespace hbat::vm

#endif // HBAT_VM_PROGRAM_IMAGE_HH
