/**
 * @file
 * GAp branch-predictor tests: saturating-counter learning, global
 * history pattern capture, and statistics accounting.
 */

#include <gtest/gtest.h>

#include "branch/gap_predictor.hh"

namespace
{

using namespace hbat;
using branch::GapPredictor;

TEST(Predictor, LearnsAlwaysTaken)
{
    GapPredictor p;
    const VAddr pc = 0x400100;
    // The global history must saturate before the steady-state
    // counter is the one consulted.
    for (int i = 0; i < 24; ++i)
        p.update(pc, true, p.predict(pc));
    EXPECT_TRUE(p.predict(pc));
}

TEST(Predictor, LearnsAlwaysNotTaken)
{
    GapPredictor p;
    const VAddr pc = 0x400100;
    for (int i = 0; i < 4; ++i)
        p.update(pc, false, p.predict(pc));
    EXPECT_FALSE(p.predict(pc));
}

TEST(Predictor, CapturesAlternatingPatternViaHistory)
{
    // T,N,T,N... is perfectly predictable with global history once
    // the counters warm up.
    GapPredictor p;
    const VAddr pc = 0x400200;
    bool taken = false;
    // Warmup.
    for (int i = 0; i < 200; ++i) {
        p.update(pc, taken, p.predict(pc));
        taken = !taken;
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        const bool pred = p.predict(pc);
        correct += pred == taken;
        p.update(pc, taken, pred);
        taken = !taken;
    }
    EXPECT_GT(correct, 95);
}

TEST(Predictor, CapturesLoopExitPattern)
{
    // An inner loop of 7 iterations (6 taken, 1 not) should become
    // highly predictable with 8 bits of history.
    GapPredictor p;
    const VAddr pc = 0x400300;
    int correct = 0, total = 0;
    for (int rep = 0; rep < 300; ++rep) {
        for (int i = 0; i < 7; ++i) {
            const bool taken = i != 6;
            const bool pred = p.predict(pc);
            if (rep >= 50) {
                correct += pred == taken;
                ++total;
            }
            p.update(pc, taken, pred);
        }
    }
    EXPECT_GT(double(correct) / total, 0.95);
}

TEST(Predictor, StatsTrackAccuracy)
{
    GapPredictor p;
    const VAddr pc = 0x400400;
    for (int i = 0; i < 100; ++i)
        p.update(pc, true, p.predict(pc));
    EXPECT_EQ(p.stats().lookups, 100u);
    EXPECT_GT(p.stats().rate(), 0.9);
}

TEST(Predictor, DistinctBranchesUseDistinctCounters)
{
    GapPredictor p;
    // Two branches with opposite biases must not destructively
    // interfere when their PC selection bits differ.
    const VAddr a = 0x400500, b = 0x400504;
    for (int i = 0; i < 64; ++i) {
        p.update(a, true, p.predict(a));
        p.update(b, false, p.predict(b));
    }
    // Check momentary predictions (history state is shared, but the
    // counters should reflect each branch's bias for current history).
    int aTaken = 0, bTaken = 0;
    for (int i = 0; i < 16; ++i) {
        aTaken += p.predict(a);
        bTaken += p.predict(b);
        p.update(a, true, p.predict(a));
        p.update(b, false, p.predict(b));
    }
    EXPECT_GT(aTaken, 12);
    EXPECT_LT(bTaken, 4);
}

} // namespace
