/**
 * @file
 * TLB-consistency (shootdown) tests: invalidations reach every level
 * of every design, and multi-level inclusion keeps upper-level probe
 * traffic to the minimum Section 3.3 promises.
 */

#include <gtest/gtest.h>

#include "tlb/design.hh"
#include "tlb/multilevel.hh"
#include "tlb/pcax.hh"
#include "tlb/pretranslation.hh"
#include "tlb/victima.hh"
#include "vm/page_table.hh"

namespace
{

using namespace hbat;
using tlb::Outcome;

tlb::XlateRequest
req(Vpn vpn, RegIndex base_reg = 5, VAddr pc = 0)
{
    tlb::XlateRequest r;
    r.vpn = vpn;
    r.isLoad = true;
    r.baseReg = base_reg;
    r.pc = pc;
    return r;
}

void
warm(tlb::TranslationEngine &eng, Vpn vpn, Cycle &clock)
{
    for (;;) {
        eng.beginCycle(clock);
        const Outcome out = eng.request(req(vpn), clock);
        if (out.kind == Outcome::Kind::Hit)
            return;
        if (out.kind == Outcome::Kind::Miss)
            eng.fill(vpn, clock);
        ++clock;
    }
}

class InvalidateSweep : public ::testing::TestWithParam<tlb::Design>
{
};

TEST_P(InvalidateSweep, NextAccessMissesAfterShootdown)
{
    vm::PageTable pt;
    auto eng = tlb::makeEngine(GetParam(), pt, 5);
    Cycle clock = 0;
    warm(*eng, 77, clock);
    warm(*eng, 78, clock);     // a survivor entry

    eng->invalidate(77, clock);
    EXPECT_EQ(eng->stats().invalidations, 1u);

    // Keep requesting page 77 until the engine answers definitively:
    // it must be a Miss (the mapping is gone everywhere). Shielded
    // structures must not serve stale copies either.
    clock += 4;
    for (;;) {
        eng->beginCycle(clock);
        const Outcome out = eng->request(req(77), clock);
        if (out.kind == Outcome::Kind::NoPort) {
            ++clock;
            continue;
        }
        EXPECT_EQ(out.kind, Outcome::Kind::Miss)
            << tlb::designName(GetParam());
        break;
    }
}

TEST_P(InvalidateSweep, OtherEntriesSurvive)
{
    vm::PageTable pt;
    auto eng = tlb::makeEngine(GetParam(), pt, 5);
    Cycle clock = 0;
    warm(*eng, 77, clock);
    warm(*eng, 78, clock);
    eng->invalidate(77, clock);

    clock += 4;
    // Page 78 must still translate without a walk (pretranslation may
    // first take its base-TLB path; either way, not a Miss).
    for (;;) {
        eng->beginCycle(clock);
        const Outcome out = eng->request(req(78), clock);
        if (out.kind == Outcome::Kind::NoPort) {
            ++clock;
            continue;
        }
        EXPECT_EQ(out.kind, Outcome::Kind::Hit)
            << tlb::designName(GetParam());
        break;
    }
}

TEST_P(InvalidateSweep, UnknownPageInvalidatesAreHarmless)
{
    // Shootdowns for pages the design never translated must neither
    // disturb resident entries nor be miscounted, on every catalogue
    // design (including the modern PCAX/Victima rows).
    vm::PageTable pt;
    auto eng = tlb::makeEngine(GetParam(), pt, 5);
    Cycle clock = 0;
    warm(*eng, 50, clock);

    for (Vpn v = 1000; v < 1040; ++v)
        eng->invalidate(v, clock);
    EXPECT_EQ(eng->stats().invalidations, 40u);

    clock += 4;
    for (;;) {
        eng->beginCycle(clock);
        const Outcome out = eng->request(req(50), clock);
        if (out.kind == Outcome::Kind::NoPort) {
            ++clock;
            continue;
        }
        EXPECT_EQ(out.kind, Outcome::Kind::Hit)
            << tlb::designName(GetParam());
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, InvalidateSweep,
    ::testing::ValuesIn(tlb::allDesigns()),
    [](const ::testing::TestParamInfo<tlb::Design> &info) {
        std::string name = tlb::designName(info.param);
        for (char &c : name)
            if (!isalnum(c))
                c = '_';
        return name;
    });

TEST(Consistency, InclusionAvoidsL1Probes)
{
    // Section 3.3: with inclusion, consistency operations need not
    // probe the L1 unless the entry is actually present in the L2.
    vm::PageTable pt;
    tlb::MultiLevelTlb eng(pt, 8, 4, 128, 3);
    Cycle clock = 0;
    warm(eng, 10, clock);

    // Invalidating unknown pages must not touch the L1 at all.
    for (Vpn v = 100; v < 140; ++v)
        eng.invalidate(v, clock);
    EXPECT_EQ(eng.stats().upperProbes, 0u);

    // Invalidating the resident page probes the L1 exactly once.
    eng.invalidate(10, clock);
    EXPECT_EQ(eng.stats().upperProbes, 1u);
    EXPECT_EQ(eng.stats().invalidations, 41u);
}

TEST(Consistency, PretranslationDropsAffectedAttachment)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 3);
    Cycle clock = 0;
    warm(eng, 9, clock);                   // attaches page 9 to r5
    ASSERT_GE(eng.cachedEntries(), 1u);

    eng.invalidate(9, clock);
    EXPECT_EQ(eng.cachedEntries(), 0u)
        << "the attachment aliases the changed mapping";
}

TEST(Consistency, PretranslationKeepsUnrelatedAttachment)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 3);
    Cycle clock = 0;
    warm(eng, 9, clock);
    clock += 2;
    // Attach a second page through another register.
    eng.beginCycle(clock);
    eng.request(req(9, 6), clock);         // r6 -> page 9 too
    warm(eng, 20, clock);                  // r5 -> page 20 (re-attach)

    const unsigned before = eng.cachedEntries();
    eng.invalidate(9, clock);
    // Only page-9 attachments die; the page-20 one survives.
    EXPECT_LT(eng.cachedEntries(), before);
    EXPECT_GE(eng.cachedEntries(), 1u);
}

TEST(Consistency, PcaxDropsOnlyAffectedPcEntries)
{
    // The PC cache is searchable by VPN, so a shootdown surgically
    // removes the attachments naming the changed page — every valid
    // entry is probed (no inclusion holds against the base TLB).
    vm::PageTable pt;
    tlb::PcaxTlb eng(pt, 32, 4, 128, 7);
    Cycle clock = 0;
    const std::pair<Vpn, VAddr> refs[] = {
        {9, 0x100}, {9, 0x104}, {20, 0x108}};
    for (const auto &[vpn, pc] : refs) {
        for (;;) {
            eng.beginCycle(clock);
            const Outcome out = eng.request(req(vpn, 5, pc), clock);
            if (out.kind == Outcome::Kind::Hit)
                break;
            if (out.kind == Outcome::Kind::Miss)
                eng.fill(vpn, clock);
            ++clock;
        }
        ++clock;
    }
    ASSERT_EQ(eng.cachedEntries(), 3u);

    eng.invalidate(9, clock);
    EXPECT_EQ(eng.cachedEntries(), 1u)
        << "both page-9 attachments die; the page-20 one survives";
    EXPECT_EQ(eng.stats().upperProbes, 3u)
        << "every valid PC entry is probed";

    // The surviving attachment still shields its page.
    eng.beginCycle(clock);
    const Outcome out = eng.request(req(20, 5, 0x108), clock);
    EXPECT_EQ(out.kind, Outcome::Kind::Hit);
    EXPECT_TRUE(out.shielded);
}

TEST(Consistency, VictimaEvictsCacheResidentEntryOnInvalidate)
{
    // Overflow the 128-entry base TLB so victims spill into the
    // D-cache, then shoot one spilled entry down: the cache-resident
    // copy must die with it, and the next access must walk.
    vm::PageTable pt;
    tlb::VictimaTlb eng(pt, 128, 4, 11);
    Cycle clock = 0;
    for (Vpn v = 0; v < 200; ++v)
        warm(eng, v, clock);

    Vpn spilled = 200;      // sentinel: no vpn below 200 matches
    for (Vpn v = 0; v < 200; ++v) {
        if (eng.cacheResident(v)) {
            spilled = v;
            break;
        }
    }
    ASSERT_LT(spilled, 200u) << "warming 200 pages must spill victims";

    eng.invalidate(spilled, clock);
    EXPECT_FALSE(eng.cacheResident(spilled));

    clock += 4;
    for (;;) {
        eng.beginCycle(clock);
        const Outcome out = eng.request(req(spilled), clock);
        if (out.kind == Outcome::Kind::NoPort) {
            ++clock;
            continue;
        }
        EXPECT_EQ(out.kind, Outcome::Kind::Miss)
            << "the spilled copy must not survive the shootdown";
        break;
    }
}

TEST(Consistency, VictimaPromotesSpilledEntryExclusively)
{
    // A base miss that finds its entry in the D-cache promotes it
    // back into the base TLB and evicts the cache block: the spill
    // store stays exclusive of the base TLB.
    vm::PageTable pt;
    tlb::VictimaTlb eng(pt, 128, 4, 11);
    Cycle clock = 0;
    for (Vpn v = 0; v < 200; ++v)
        warm(eng, v, clock);

    Vpn spilled = 200;
    for (Vpn v = 0; v < 200; ++v) {
        if (eng.cacheResident(v)) {
            spilled = v;
            break;
        }
    }
    ASSERT_LT(spilled, 200u);

    clock += 8;     // past any in-flight spill fill
    eng.beginCycle(clock);
    const uint64_t missesBefore = eng.stats().misses;
    const Outcome out = eng.request(req(spilled), clock);
    ASSERT_EQ(out.kind, Outcome::Kind::Hit)
        << "a spilled entry is served from the cache, not walked";
    EXPECT_EQ(out.ready, clock + 2)
        << "cache probe the next cycle, reinstall the cycle after";
    EXPECT_EQ(eng.stats().misses, missesBefore);
    EXPECT_FALSE(eng.cacheResident(spilled))
        << "promotion back to the base TLB evicts the cache block";

    // Now resident in the base TLB: the next access is a plain hit.
    eng.beginCycle(++clock);
    const Outcome again = eng.request(req(spilled), clock);
    ASSERT_EQ(again.kind, Outcome::Kind::Hit);
    EXPECT_EQ(again.ready, clock);
}

} // namespace
