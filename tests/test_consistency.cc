/**
 * @file
 * TLB-consistency (shootdown) tests: invalidations reach every level
 * of every design, and multi-level inclusion keeps upper-level probe
 * traffic to the minimum Section 3.3 promises.
 */

#include <gtest/gtest.h>

#include "tlb/design.hh"
#include "tlb/multilevel.hh"
#include "tlb/pretranslation.hh"
#include "vm/page_table.hh"

namespace
{

using namespace hbat;
using tlb::Outcome;

tlb::XlateRequest
req(Vpn vpn, RegIndex base_reg = 5)
{
    tlb::XlateRequest r;
    r.vpn = vpn;
    r.isLoad = true;
    r.baseReg = base_reg;
    return r;
}

void
warm(tlb::TranslationEngine &eng, Vpn vpn, Cycle &clock)
{
    for (;;) {
        eng.beginCycle(clock);
        const Outcome out = eng.request(req(vpn), clock);
        if (out.kind == Outcome::Kind::Hit)
            return;
        if (out.kind == Outcome::Kind::Miss)
            eng.fill(vpn, clock);
        ++clock;
    }
}

class InvalidateSweep : public ::testing::TestWithParam<tlb::Design>
{
};

TEST_P(InvalidateSweep, NextAccessMissesAfterShootdown)
{
    vm::PageTable pt;
    auto eng = tlb::makeEngine(GetParam(), pt, 5);
    Cycle clock = 0;
    warm(*eng, 77, clock);
    warm(*eng, 78, clock);     // a survivor entry

    eng->invalidate(77, clock);
    EXPECT_EQ(eng->stats().invalidations, 1u);

    // Keep requesting page 77 until the engine answers definitively:
    // it must be a Miss (the mapping is gone everywhere). Shielded
    // structures must not serve stale copies either.
    clock += 4;
    for (;;) {
        eng->beginCycle(clock);
        const Outcome out = eng->request(req(77), clock);
        if (out.kind == Outcome::Kind::NoPort) {
            ++clock;
            continue;
        }
        EXPECT_EQ(out.kind, Outcome::Kind::Miss)
            << tlb::designName(GetParam());
        break;
    }
}

TEST_P(InvalidateSweep, OtherEntriesSurvive)
{
    vm::PageTable pt;
    auto eng = tlb::makeEngine(GetParam(), pt, 5);
    Cycle clock = 0;
    warm(*eng, 77, clock);
    warm(*eng, 78, clock);
    eng->invalidate(77, clock);

    clock += 4;
    // Page 78 must still translate without a walk (pretranslation may
    // first take its base-TLB path; either way, not a Miss).
    for (;;) {
        eng->beginCycle(clock);
        const Outcome out = eng->request(req(78), clock);
        if (out.kind == Outcome::Kind::NoPort) {
            ++clock;
            continue;
        }
        EXPECT_EQ(out.kind, Outcome::Kind::Hit)
            << tlb::designName(GetParam());
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllDesigns, InvalidateSweep,
    ::testing::ValuesIn(tlb::allDesigns()),
    [](const ::testing::TestParamInfo<tlb::Design> &info) {
        std::string name = tlb::designName(info.param);
        for (char &c : name)
            if (!isalnum(c))
                c = '_';
        return name;
    });

TEST(Consistency, InclusionAvoidsL1Probes)
{
    // Section 3.3: with inclusion, consistency operations need not
    // probe the L1 unless the entry is actually present in the L2.
    vm::PageTable pt;
    tlb::MultiLevelTlb eng(pt, 8, 4, 128, 3);
    Cycle clock = 0;
    warm(eng, 10, clock);

    // Invalidating unknown pages must not touch the L1 at all.
    for (Vpn v = 100; v < 140; ++v)
        eng.invalidate(v, clock);
    EXPECT_EQ(eng.stats().upperProbes, 0u);

    // Invalidating the resident page probes the L1 exactly once.
    eng.invalidate(10, clock);
    EXPECT_EQ(eng.stats().upperProbes, 1u);
    EXPECT_EQ(eng.stats().invalidations, 41u);
}

TEST(Consistency, PretranslationDropsAffectedAttachment)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 3);
    Cycle clock = 0;
    warm(eng, 9, clock);                   // attaches page 9 to r5
    ASSERT_GE(eng.cachedEntries(), 1u);

    eng.invalidate(9, clock);
    EXPECT_EQ(eng.cachedEntries(), 0u)
        << "the attachment aliases the changed mapping";
}

TEST(Consistency, PretranslationKeepsUnrelatedAttachment)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 3);
    Cycle clock = 0;
    warm(eng, 9, clock);
    clock += 2;
    // Attach a second page through another register.
    eng.beginCycle(clock);
    eng.request(req(9, 6), clock);         // r6 -> page 9 too
    warm(eng, 20, clock);                  // r5 -> page 20 (re-attach)

    const unsigned before = eng.cachedEntries();
    eng.invalidate(9, clock);
    // Only page-9 attachments die; the page-20 one survives.
    EXPECT_LT(eng.cachedEntries(), before);
    EXPECT_GE(eng.cachedEntries(), 1u);
}

} // namespace
