/**
 * @file
 * In-order issue model tests (Section 4.4's machine): strict program
 * order, scoreboard hazards with out-of-order completion, and the
 * model-level effects the paper reports (reduced bandwidth demand but
 * reduced latency tolerance).
 */

#include <gtest/gtest.h>

#include "cpu/pipeline.hh"
#include "kasm/program_builder.hh"
#include "tlb/design.hh"
#include "vm/address_space.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;
using kasm::ProgramBuilder;
using kasm::VReg;

cpu::PipeStats
run(const kasm::Program &prog, bool in_order,
    tlb::Design design = tlb::Design::T4)
{
    vm::AddressSpace space;
    space.load(prog);
    cpu::FuncCore core(space, prog);
    auto eng = tlb::makeEngine(design, space.pageTable(), 1);
    cpu::PipeConfig cfg;
    cfg.inOrder = in_order;
    cpu::Pipeline pipe(cfg, core, *eng, space.params());
    return pipe.run();
}

TEST(InOrder, WawHazardStalls)
{
    // Two variants with identical instruction mixes: a cache-missing
    // load followed by an addi to a *different* register (no hazard)
    // or to the *same* register (WAW). Renaming makes them equal
    // out-of-order; the in-order scoreboard must stall the WAW form.
    auto build = [](bool waw) {
        ProgramBuilder pb("waw");
        auto &b = pb.code();
        const VAddr buf = pb.space(1u << 21, 64);
        VReg base = b.vint(), e = b.vint(), i = b.vint();
        VReg d[8];
        for (auto &x : d)
            x = b.vint();
        b.li(base, uint32_t(buf));
        b.forLoop(i, 40, [&] {
            // Rotating destinations: no hazards among the loads
            // themselves, so the misses pipeline.
            for (int k = 0; k < 8; ++k) {
                b.lw(d[k], base, k * 64);   // cold block: ~8 cycles
                b.addi(waw ? d[k] : e, i, 1);
            }
            b.addk(base, base, 512);
        });
        b.halt();
        return pb.link();
    };
    const kasm::Program hazard = build(true);
    const kasm::Program clean = build(false);

    const Cycle oooHazard = run(hazard, false).cycles;
    const Cycle oooClean = run(clean, false).cycles;
    const Cycle inoHazard = run(hazard, true).cycles;
    const Cycle inoClean = run(clean, true).cycles;

    // Renaming: the hazard is free out of order.
    EXPECT_NEAR(double(oooHazard), double(oooClean),
                0.05 * double(oooClean));
    // The scoreboard pays for it in order. (The clean variant still
    // carries load-load WAW across iterations — eight rotating
    // destinations don't outlast an 8-cycle miss — so the isolated
    // extra cost of the explicit hazard is moderate.)
    EXPECT_GT(double(inoHazard), 1.1 * double(inoClean));
}

TEST(InOrder, IndependentWorkCannotPassAStalledLoad)
{
    // A cache-missing load followed by many independent adds: the
    // in-order model issues the adds only after the load issues, but
    // once issued they complete out of order - the defining property.
    ProgramBuilder pb("stall");
    auto &b = pb.code();
    const VAddr buf = pb.space(1u << 20, 64);
    VReg base = b.vint(), v = b.vint(), x = b.vint(), i = b.vint();
    b.li(base, uint32_t(buf));
    b.li(x, 0);
    b.forLoop(i, 200, [&] {
        b.lw(v, base, 0);
        b.add(x, x, v);         // depends on the load
        b.addk(base, base, 4096);
        for (int k = 0; k < 6; ++k)
            b.addi(x, x, 1);
    });
    b.halt();
    const kasm::Program prog = pb.link();
    const cpu::PipeStats ooo = run(prog, false);
    const cpu::PipeStats ino = run(prog, true);
    EXPECT_LE(ooo.cycles, ino.cycles);
}

TEST(InOrder, ReducedBandwidthDemand)
{
    // Section 4.4: the in-order model's lower IPC reduces translation
    // pressure, so T1's *relative* penalty shrinks versus T4.
    const kasm::Program prog =
        workloads::build("tomcatv", kasm::RegBudget{32, 32}, 0.08);

    const double oooT4 = double(run(prog, false, tlb::Design::T4).cycles);
    const double oooT1 = double(run(prog, false, tlb::Design::T1).cycles);
    const double inoT4 = double(run(prog, true, tlb::Design::T4).cycles);
    const double inoT1 = double(run(prog, true, tlb::Design::T1).cycles);

    const double oooPenalty = oooT1 / oooT4;
    const double inoPenalty = inoT1 / inoT4;
    EXPECT_LT(inoPenalty, oooPenalty)
        << "in-order should narrow the T1 gap";
    EXPECT_GT(oooPenalty, 1.05);
}

TEST(InOrder, IssuesAtMostWidthPerCycle)
{
    ProgramBuilder pb("width");
    auto &b = pb.code();
    VReg r[8];
    for (auto &x : r) {
        x = b.vint();
        b.li(x, 1);
    }
    VReg i = b.vint();
    b.forLoop(i, 300, [&] {
        for (int k = 0; k < 16; ++k)
            b.addi(r[k % 8], r[k % 8], 1);
    });
    b.halt();
    const cpu::PipeStats s = run(pb.link(), true);
    EXPECT_LE(s.issueIpc(), 8.0);
    EXPECT_GT(s.issueIpc(), 3.0)
        << "independent adds should still issue widely in order";
}

TEST(InOrder, CommittedWorkIdenticalToOoo)
{
    const kasm::Program prog =
        workloads::build("espresso", kasm::RegBudget{32, 32}, 0.05);
    const cpu::PipeStats ooo = run(prog, false);
    const cpu::PipeStats ino = run(prog, true);
    EXPECT_EQ(ooo.committed, ino.committed);
    EXPECT_EQ(ooo.committedLoads, ino.committedLoads);
    EXPECT_EQ(ooo.committedStores, ino.committedStores);
}

} // namespace
