/**
 * @file
 * Workload tests: every Table 3 analogue builds, halts, touches
 * memory as its behaviour class requires, links under both register
 * budgets, and is fully deterministic.
 */

#include <gtest/gtest.h>

#include "cpu/func_core.hh"
#include "sim/simulator.hh"
#include "vm/address_space.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;

constexpr double kTestScale = 0.02;

class EveryWorkload : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EveryWorkload, RunsToHaltFunctionally)
{
    const kasm::Program prog =
        workloads::build(GetParam(), kasm::RegBudget{32, 32},
                         kTestScale);
    vm::AddressSpace space;
    space.load(prog);
    cpu::FuncCore core(space, prog);
    uint64_t guard = 0;
    while (!core.halted() && ++guard < 100'000'000ull)
        core.step();
    EXPECT_TRUE(core.halted()) << "did not halt";
    EXPECT_GT(core.stats().loads, 0u);
    EXPECT_GT(core.stats().stores, 0u);
}

TEST_P(EveryWorkload, LinksUnderEightRegisters)
{
    const kasm::Program small =
        workloads::build(GetParam(), kasm::RegBudget{8, 8},
                         kTestScale);
    const kasm::Program full =
        workloads::build(GetParam(), kasm::RegBudget{32, 32},
                         kTestScale);
    EXPECT_GE(small.text.size(), full.text.size())
        << "spill code should never shrink the program";

    vm::AddressSpace space;
    space.load(small);
    cpu::FuncCore core(space, small);
    uint64_t guard = 0;
    while (!core.halted() && ++guard < 200'000'000ull)
        core.step();
    EXPECT_TRUE(core.halted());
}

TEST_P(EveryWorkload, DeterministicTiming)
{
    const kasm::Program prog =
        workloads::build(GetParam(), kasm::RegBudget{32, 32},
                         kTestScale);
    sim::SimConfig cfg;
    const sim::SimResult a = sim::simulate(prog, cfg);
    const sim::SimResult b = sim::simulate(prog, cfg);
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.pipe.committed, b.pipe.committed);
    EXPECT_EQ(a.pipe.xlate.misses, b.pipe.xlate.misses);
}

TEST_P(EveryWorkload, ScaleGrowsWork)
{
    auto insts = [&](double scale) {
        const kasm::Program prog =
            workloads::build(GetParam(), kasm::RegBudget{32, 32},
                             scale);
        vm::AddressSpace space;
        space.load(prog);
        cpu::FuncCore core(space, prog);
        while (!core.halted())
            core.step();
        return core.stats().instructions;
    };
    EXPECT_GT(insts(0.5), insts(0.02));
}

INSTANTIATE_TEST_SUITE_P(
    Table3, EveryWorkload,
    ::testing::Values("compress", "doduc", "espresso", "gcc",
                      "ghostscript", "mpeg_play", "perl", "tfft",
                      "tomcatv", "xlisp"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });

TEST(WorkloadRegistry, AllPresentInTable3Order)
{
    const auto &list = workloads::all();
    ASSERT_EQ(list.size(), 10u);
    EXPECT_STREQ(list.front().name, "compress");
    EXPECT_STREQ(list.back().name, "xlisp");
    for (const auto &w : list) {
        EXPECT_NE(w.paperAnalogue, nullptr);
        EXPECT_NE(w.build, nullptr);
        EXPECT_EQ(&workloads::find(w.name), &w);
    }
}

TEST(WorkloadRegistryDeath, UnknownName)
{
    EXPECT_DEATH(workloads::find("quake"), "unknown workload");
}

TEST(WorkloadBehaviour, FpProgramsUseFpUnits)
{
    for (const char *name : {"doduc", "tfft", "tomcatv"}) {
        const kasm::Program prog =
            workloads::build(name, kasm::RegBudget{32, 32},
                             kTestScale);
        vm::AddressSpace space;
        space.load(prog);
        cpu::FuncCore core(space, prog);
        while (!core.halted())
            core.step();
        EXPECT_GT(core.stats().fpOps, core.stats().instructions / 20)
            << name;
    }
}

TEST(WorkloadBehaviour, LargeFootprintClasses)
{
    // Ghostscript and tfft must touch far more pages than espresso.
    auto pages = [](const char *name) {
        const kasm::Program prog =
            workloads::build(name, kasm::RegBudget{32, 32}, 0.6);
        sim::SimConfig cfg;
        cfg.maxInsts = 400'000;
        return sim::simulate(prog, cfg).touchedPages;
    };
    const uint64_t gs = pages("ghostscript");
    const uint64_t fft = pages("tfft");
    const uint64_t esp = pages("espresso");
    EXPECT_GT(gs, 4 * esp);
    EXPECT_GT(fft, 4 * esp);
}

TEST(WorkloadBehaviour, FewRegistersAmplifyMemoryTraffic)
{
    // The Figure 9 premise at workload level.
    auto refsPerInst = [](const char *name, int regs) {
        const kasm::Program prog = workloads::build(
            name, kasm::RegBudget{regs, regs}, kTestScale);
        vm::AddressSpace space;
        space.load(prog);
        cpu::FuncCore core(space, prog);
        while (!core.halted())
            core.step();
        return double(core.stats().loads + core.stats().stores) /
               double(core.stats().instructions);
    };
    for (const char *name : {"tomcatv", "compress", "espresso"}) {
        EXPECT_GT(refsPerInst(name, 8), refsPerInst(name, 32))
            << name;
    }
}

} // namespace
