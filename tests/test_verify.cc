/**
 * @file
 * Tests for the static program verifier (src/verify).
 *
 * Negative programs are built by hand through the Emitter / raw
 * encodings so each diagnostic provably fires (and fires once);
 * positive tests run every built-in workload and every Table 2 design
 * through the verifier and expect silence.
 */

#include <gtest/gtest.h>

#include "kasm/emitter.hh"
#include "kasm/program_builder.hh"
#include "verify/design_lint.hh"
#include "verify/verifier.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;
using isa::Inst;
using isa::Opcode;
using verify::Diag;
using verify::Severity;

/** A loadable program from hand-assembled instructions. */
kasm::Program
progOf(const std::vector<Inst> &insts)
{
    kasm::Program p;
    p.name = "test";
    for (const Inst &i : insts)
        p.text.push_back(isa::encode(i));
    return p;
}

constexpr RegIndex sp = isa::reg::sp;
constexpr RegIndex zero = isa::reg::zero;

// ---------------------------------------------------------------------
// Structural diagnostics (CFG construction).

TEST(Verify, CleanProgramIsClean)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Addi, 2, zero, 0, 1},
        Inst{Opcode::Add, 3, 2, 2, 0},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_TRUE(r.clean(Severity::Info)) << r.diags.front().str();
}

TEST(Verify, IllegalInstruction)
{
    kasm::Program p = progOf({Inst{Opcode::Halt, 0, 0, 0, 0}});
    p.text.insert(p.text.begin(), 0xfc00'0000u);    // bad major
    Inst scratch;
    EXPECT_FALSE(isa::tryDecode(0xfc00'0000u, scratch));

    const verify::Report r = verify::verifyProgram(p);
    EXPECT_EQ(r.countOf(Diag::IllegalInstruction), 1u);
    EXPECT_FALSE(r.clean());
}

TEST(Verify, BranchTargetOutOfText)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Beq, 0, zero, zero, 100},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::TargetOutOfText), 1u);
}

TEST(Verify, FallthroughOffEnd)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Addi, 2, zero, 0, 1},
    }));
    EXPECT_EQ(r.countOf(Diag::FallthroughOffEnd), 1u);
}

TEST(Verify, EmptyProgram)
{
    const verify::Report r = verify::verifyProgram(progOf({}));
    EXPECT_EQ(r.countOf(Diag::FallthroughOffEnd), 1u);
}

TEST(Verify, UnreachableBlock)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::J, 0, 0, 0, 1},            // skips the next inst
        Inst{Opcode::Addi, 2, zero, 0, 1},      // unreachable
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::UnreachableBlock), 1u);
}

TEST(Verify, IndirectWithoutTargets)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Addi, 2, zero, 0, 8},
        Inst{Opcode::Jr, 0, 2, 0, 0},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::IndirectNoTargets), 1u);
}

TEST(Verify, LinkerIndirectTargetsGiveJrSuccessors)
{
    kasm::Program p = progOf({
        Inst{Opcode::Addi, 2, zero, 0, 8},
        Inst{Opcode::Jr, 0, 2, 0, 0},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    });
    p.indirectTargets.push_back(p.textBase + 8);    // the halt

    verify::Report r;
    const verify::Analysis a = verify::analyzeProgram(p, r);
    EXPECT_TRUE(r.clean(Severity::Info)) << r.diags.front().str();
    EXPECT_TRUE(a.cfg.blocks[a.cfg.blockOf[2]].reachable);
}

TEST(Verify, BadLinkerIndirectTargetDiagnosed)
{
    kasm::Program p = progOf({
        Inst{Opcode::Addi, 2, zero, 0, 8},
        Inst{Opcode::Jr, 0, 2, 0, 0},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    });
    p.indirectTargets.push_back(0xdead'0000);

    const verify::Report r = verify::verifyProgram(p);
    EXPECT_EQ(r.countOf(Diag::TargetOutOfText), 1u);
}

// ---------------------------------------------------------------------
// Dataflow diagnostics.

TEST(Verify, UninitRead)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Add, 3, 4, 5, 0},      // r4, r5 never written
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::UninitRead), 1u);
}

TEST(Verify, UninitReadFpRegister)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Fadd, 2, 3, 4, 0},     // f3, f4 never written
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::UninitRead), 1u);
}

TEST(Verify, DefinitionOnOnePathOnlyStillFlagged)
{
    // r2 is defined on the fallthrough path but not the taken path.
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Beq, 0, zero, zero, 1},    // -> index 2
        Inst{Opcode::Addi, 2, zero, 0, 7},
        Inst{Opcode::Add, 3, 2, 2, 0},          // may read uninit r2
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::UninitRead), 1u);
}

TEST(Verify, SpIsEntryDefined)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Addi, sp, sp, 0, -16},
        Inst{Opcode::Lw, 2, sp, 0, 0},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_TRUE(r.clean(Severity::Info)) << r.diags.front().str();
}

TEST(Verify, WriteToZero)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Addi, zero, zero, 0, 5},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::WriteToZero), 1u);
}

TEST(Verify, SpImbalanceAtJoin)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Beq, 0, zero, zero, 1},    // -> index 2
        Inst{Opcode::Addi, sp, sp, 0, -16},     // only one path adjusts
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::SpImbalance), 1u);
}

TEST(Verify, BalancedSpIsClean)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Addi, sp, sp, 0, -16},
        Inst{Opcode::Addi, sp, sp, 0, 16},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::SpImbalance), 0u);
}

TEST(Verify, MisalignedWordLoad)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Addi, 2, zero, 0, 3},
        Inst{Opcode::Lw, 3, 2, 0, 0},           // address 3, needs 4
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::MisalignedAccess), 1u);
}

TEST(Verify, MisalignedDoubleThroughLui)
{
    // 8-byte FP access to a 4-aligned (but not 8-aligned) address.
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Lui, 2, 0, 0, 0x1000},
        Inst{Opcode::Ldf, 4, 2, 0, 4},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::MisalignedAccess), 1u);
}

TEST(Verify, AlignedAccessClean)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Lui, 2, 0, 0, 0x1000},
        Inst{Opcode::Lw, 3, 2, 0, 8},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::MisalignedAccess), 0u);
}

// ---------------------------------------------------------------------
// Constant-propagation corners, observed through MisalignedAccess
// (the only diagnostic that needs a fully-resolved address).

TEST(VerifyConstProp, LuiOriComposition)
{
    // lui+ori is how the assembler materializes full 32-bit pointers;
    // the composed odd address must reach the alignment check.
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Lui, 2, 0, 0, 0x1000},
        Inst{Opcode::Ori, 2, 2, 0, 0x0002},     // 0x10000002
        Inst{Opcode::Lw, 3, 2, 0, 0},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::MisalignedAccess), 1u);
}

TEST(VerifyConstProp, SpRelativeAddressing)
{
    // sp is seeded with the loader's stack top, so a misaligned
    // sp-relative frame slot is statically visible after the
    // prologue's adjustment.
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Addi, 2, zero, 0, 5},
        Inst{Opcode::Addi, sp, sp, 0, -16},
        Inst{Opcode::Sw, 2, sp, 0, 2},          // stackTop - 14
        Inst{Opcode::Addi, sp, sp, 0, 16},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::MisalignedAccess), 1u);
}

TEST(VerifyConstProp, AlignedSpSlotIsClean)
{
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Addi, 2, zero, 0, 5},
        Inst{Opcode::Addi, sp, sp, 0, -16},
        Inst{Opcode::Sw, 2, sp, 0, 4},
        Inst{Opcode::Addi, sp, sp, 0, 16},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::MisalignedAccess), 0u);
}

TEST(VerifyConstProp, RedefinitionInsideLoopKillsConstant)
{
    // r3 is a misaligned constant before the loop but is redefined on
    // the back edge, so the in-loop use must NOT inherit the stale
    // preheader constant: at the loop-head join the value is unknown
    // and no alignment verdict is possible.
    const verify::Report r = verify::verifyProgram(progOf({
        Inst{Opcode::Lui, 3, 0, 0, 0x1000},
        Inst{Opcode::Addi, 3, 3, 0, 2},         // 0x10000002 (odd slot)
        Inst{Opcode::Addi, 5, zero, 0, 0},
        Inst{Opcode::Addi, 6, zero, 0, 4},
        Inst{Opcode::Addi, 3, 3, 0, 2},         // loop: re-align...
        Inst{Opcode::Lw, 4, 3, 0, 0},           // ...then use
        Inst{Opcode::Addi, 5, 5, 0, 1},
        Inst{Opcode::Blt, 0, 5, 6, -4},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.countOf(Diag::MisalignedAccess), 0u);
}

// ---------------------------------------------------------------------
// Emitter finalize-time diagnostics (structured, non-fatal path).

TEST(VerifyEmitter, UnboundLabelDiagnostic)
{
    kasm::Emitter em(0);
    kasm::Label l = em.newLabel();
    em.emitJump(Opcode::J, l);

    verify::Report r;
    const auto words = em.finalize(r);
    EXPECT_EQ(words.size(), 1u);
    EXPECT_EQ(r.countOf(Diag::UnboundLabel), 1u);
    EXPECT_FALSE(r.clean());
}

TEST(VerifyEmitter, BranchRangeDiagnostic)
{
    kasm::Emitter em(0);
    kasm::Label l = em.newLabel();
    em.emitBranch(Opcode::Beq, 1, 2, l);
    for (int i = 0; i < 32769; ++i)
        em.emit(Inst{Opcode::Nop, 0, 0, 0, 0});
    em.bind(l);     // delta = 32769 words, field holds 32767

    verify::Report r;
    const auto words = em.finalize(r);
    EXPECT_EQ(words.size(), 32770u);
    EXPECT_EQ(r.countOf(Diag::BranchRange), 1u);
}

TEST(VerifyEmitter, BranchAtRangeLimitIsFine)
{
    kasm::Emitter em(0);
    kasm::Label l = em.newLabel();
    em.emitBranch(Opcode::Beq, 1, 2, l);
    for (int i = 0; i < 32767; ++i)
        em.emit(Inst{Opcode::Nop, 0, 0, 0, 0});
    em.bind(l);     // delta = 32767 words exactly

    verify::Report r;
    em.finalize(r);
    EXPECT_TRUE(r.clean());
}

TEST(VerifyEmitter, OffsetRangePredicates)
{
    EXPECT_TRUE(kasm::Emitter::branchOffsetInRange(32767));
    EXPECT_TRUE(kasm::Emitter::branchOffsetInRange(-32768));
    EXPECT_FALSE(kasm::Emitter::branchOffsetInRange(32768));
    EXPECT_FALSE(kasm::Emitter::branchOffsetInRange(-32769));

    // The 26-bit jump field cannot overflow in a buildable test image
    // (2^25 instructions), so its bounds are checked via the predicate.
    EXPECT_TRUE(kasm::Emitter::jumpOffsetInRange((1 << 25) - 1));
    EXPECT_TRUE(kasm::Emitter::jumpOffsetInRange(-(1 << 25)));
    EXPECT_FALSE(kasm::Emitter::jumpOffsetInRange(1 << 25));
    EXPECT_FALSE(kasm::Emitter::jumpOffsetInRange(-(1 << 25) - 1));
}

// ---------------------------------------------------------------------
// Design / configuration lint.

TEST(VerifyDesign, AllTable2DesignsAreClean)
{
    for (tlb::Design d : tlb::allDesigns()) {
        const verify::Report r = verify::lintDesign(d);
        EXPECT_TRUE(r.clean(Severity::Info))
            << tlb::designName(d) << ": " << r.diags.front().str();
    }
}

TEST(VerifyDesign, DefaultConfigIsClean)
{
    const verify::Report r = verify::lintConfig(sim::SimConfig{});
    EXPECT_TRUE(r.clean(Severity::Info));
}

TEST(VerifyDesign, NonPowerOfTwoCapacity)
{
    tlb::DesignParams p = tlb::designParams(tlb::Design::T4);
    p.baseEntries = 100;
    verify::Report r;
    verify::lintDesignParams(p, "bad", r);
    EXPECT_EQ(r.countOf(Diag::DesignStructure), 1u);
}

TEST(VerifyDesign, UpperLevelNotSmallerThanBase)
{
    tlb::DesignParams p = tlb::designParams(tlb::Design::M16);
    p.upperEntries = 128;   // == baseEntries
    verify::Report r;
    verify::lintDesignParams(p, "bad", r);
    EXPECT_EQ(r.countOf(Diag::DesignStructure), 1u);
}

TEST(VerifyDesign, TooManyRequestPaths)
{
    tlb::DesignParams p = tlb::designParams(tlb::Design::PB2);
    p.piggybackPorts = 3;   // 2 + 3 > 4 load/store units
    verify::Report r;
    verify::lintDesignParams(p, "bad", r);
    EXPECT_EQ(r.countOf(Diag::DesignPorts), 1u);
}

TEST(VerifyDesign, XorFoldNeedsVpnBits)
{
    tlb::DesignParams p = tlb::designParams(tlb::Design::X4);
    p.banks = 8;
    p.basePorts = 8;
    verify::Report r;
    verify::lintDesignParams(p, "bad", r, 1u << 24);    // 8 VPN bits
    EXPECT_EQ(r.countOf(Diag::DesignStructure), 1u);
}

TEST(VerifyDesign, PageSizeAndBudgetLint)
{
    sim::SimConfig cfg;
    cfg.pageBytes = 3000;
    cfg.budget = kasm::RegBudget{4, 2};
    verify::Report r;
    verify::lintConfig(cfg, r);
    EXPECT_EQ(r.countOf(Diag::ConfigPageSize), 1u);
    EXPECT_EQ(r.countOf(Diag::ConfigBudget), 2u);
}

// ---------------------------------------------------------------------
// Positive pass: every workload, both register budgets, fully clean.

TEST(VerifyWorkloads, AllCleanAtFullBudget)
{
    for (const workloads::Workload &w : workloads::all()) {
        const kasm::Program p =
            workloads::build(w.name, kasm::RegBudget{32, 32}, 0.02);
        const verify::Report r = verify::verifyProgram(p);
        EXPECT_TRUE(r.clean(Severity::Warning))
            << w.name << ": " << r.diags.front().str();
    }
}

TEST(VerifyWorkloads, AllCleanAtTightBudget)
{
    for (const workloads::Workload &w : workloads::all()) {
        const kasm::Program p =
            workloads::build(w.name, kasm::RegBudget{8, 8}, 0.02);
        const verify::Report r = verify::verifyProgram(p);
        EXPECT_TRUE(r.clean(Severity::Warning))
            << w.name << ": " << r.diags.front().str();
    }
}

TEST(VerifyWorkloads, LinkWithReportFillsIndirectTargets)
{
    kasm::ProgramBuilder pb("jr_table");
    kasm::CodeBuilder &b = pb.code();
    kasm::VLabel a = b.label(), c = b.label(), end = b.label();
    const VAddr table = pb.codeTable({a, c});

    const kasm::VReg addr = b.vint();
    const kasm::VReg target = b.vint();
    b.li(addr, uint32_t(table));
    b.lw(target, addr, 0);
    b.jr(target);
    b.bind(a);
    b.jmp(end);
    b.bind(c);
    b.jmp(end);
    b.bind(end);
    b.halt();

    verify::Report r;
    const kasm::Program p = pb.link(kasm::RegBudget{}, r);
    EXPECT_EQ(p.indirectTargets.size(), 2u);
    EXPECT_TRUE(r.clean(Severity::Warning))
        << r.diags.front().str();
}

} // namespace
