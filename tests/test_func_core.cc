/**
 * @file
 * Functional-core semantics: a parameterized sweep of small
 * hand-encoded programs checking every instruction class, including
 * arithmetic edge cases, sign extension, the extended addressing
 * modes, control flow, and FP conversions.
 */

#include <gtest/gtest.h>

#include "cpu/func_core.hh"
#include "kasm/emitter.hh"
#include "vm/address_space.hh"

namespace
{

using namespace hbat;
using isa::Inst;
using isa::Opcode;

/** Build a program from raw instructions and run it to halt. */
class Machine
{
  public:
    explicit Machine(std::vector<Inst> insts)
    {
        insts.push_back(Inst{Opcode::Halt, 0, 0, 0, 0});
        kasm::Program prog;
        prog.name = "test";
        for (const Inst &inst : insts)
            prog.text.push_back(isa::encode(inst));
        space.load(prog);
        core = std::make_unique<cpu::FuncCore>(space, prog);
        while (!core->halted())
            trace.push_back(core->step());
    }

    RegVal r(RegIndex i) const { return core->intReg(i); }
    double f(RegIndex i) const { return core->fpReg(i); }

    vm::AddressSpace space;
    std::unique_ptr<cpu::FuncCore> core;
    std::vector<cpu::DynInst> trace;
};

/** li expansion helper for test programs. */
void
li(std::vector<Inst> &code, RegIndex rd, uint32_t v)
{
    code.push_back(Inst{Opcode::Lui, rd, 0, 0, int32_t(v >> 16)});
    code.push_back(Inst{Opcode::Ori, rd, rd, 0, int32_t(v & 0xffff)});
}

struct AluCase
{
    const char *name;
    Opcode op;
    uint32_t a, b;
    uint32_t expect;
};

class AluSemantics : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluSemantics, RegisterRegister)
{
    const AluCase c = GetParam();
    std::vector<Inst> code;
    li(code, 4, c.a);
    li(code, 5, c.b);
    code.push_back(Inst{c.op, 6, 4, 5, 0});
    Machine m(std::move(code));
    EXPECT_EQ(m.r(6), c.expect) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AluSemantics,
    ::testing::Values(
        AluCase{"add", Opcode::Add, 2, 3, 5},
        AluCase{"add_wrap", Opcode::Add, 0xffffffff, 1, 0},
        AluCase{"sub", Opcode::Sub, 3, 5, uint32_t(-2)},
        AluCase{"mul", Opcode::Mul, 7, 6, 42},
        AluCase{"mul_wrap", Opcode::Mul, 0x10000, 0x10000, 0},
        AluCase{"div", Opcode::Div, uint32_t(-12), 4, uint32_t(-3)},
        AluCase{"div_zero", Opcode::Div, 5, 0, 0},
        AluCase{"div_overflow", Opcode::Div, 0x80000000u,
                uint32_t(-1), 0x80000000u},
        AluCase{"divu", Opcode::Divu, 0xfffffffeu, 2, 0x7fffffffu},
        AluCase{"rem", Opcode::Rem, uint32_t(-7), 3, uint32_t(-1)},
        AluCase{"rem_zero", Opcode::Rem, 5, 0, 0},
        AluCase{"remu", Opcode::Remu, 7, 3, 1},
        AluCase{"and", Opcode::And, 0xff00ff00u, 0x0ff00ff0u,
                0x0f000f00u},
        AluCase{"or", Opcode::Or, 0xf0f0f0f0u, 0x0f0f0f0fu,
                0xffffffffu},
        AluCase{"xor", Opcode::Xor, 0xaaaa5555u, 0xffffffffu,
                0x5555aaaau},
        AluCase{"nor", Opcode::Nor, 0xf0f0f0f0u, 0x0f0f0f00u,
                0x0000000fu},
        AluCase{"sll", Opcode::Sll, 1, 31, 0x80000000u},
        AluCase{"sll_mod32", Opcode::Sll, 1, 33, 2},
        AluCase{"srl", Opcode::Srl, 0x80000000u, 31, 1},
        AluCase{"sra_neg", Opcode::Sra, 0x80000000u, 31,
                0xffffffffu},
        AluCase{"slt_true", Opcode::Slt, uint32_t(-1), 0, 1},
        AluCase{"slt_false", Opcode::Slt, 1, 0, 0},
        AluCase{"sltu", Opcode::Sltu, uint32_t(-1), 0, 0}),
    [](const ::testing::TestParamInfo<AluCase> &info) {
        return info.param.name;
    });

TEST(FuncCore, ImmediateOps)
{
    std::vector<Inst> code;
    li(code, 4, 100);
    code.push_back(Inst{Opcode::Addi, 5, 4, 0, -30});
    code.push_back(Inst{Opcode::Andi, 6, 4, 0, 0x6c});
    code.push_back(Inst{Opcode::Ori, 7, 4, 0, 3});
    code.push_back(Inst{Opcode::Xori, 8, 4, 0, 0xff});
    code.push_back(Inst{Opcode::Slli, 9, 4, 0, 4});
    code.push_back(Inst{Opcode::Srai, 10, 4, 0, 2});
    code.push_back(Inst{Opcode::Slti, 11, 4, 0, 101});
    code.push_back(Inst{Opcode::Sltiu, 12, 4, 0, 100});
    Machine m(std::move(code));
    EXPECT_EQ(m.r(5), 70u);
    EXPECT_EQ(m.r(6), 100u & 0x6c);
    EXPECT_EQ(m.r(7), 103u);
    EXPECT_EQ(m.r(8), 100u ^ 0xff);
    EXPECT_EQ(m.r(9), 1600u);
    EXPECT_EQ(m.r(10), 25u);
    EXPECT_EQ(m.r(11), 1u);
    EXPECT_EQ(m.r(12), 0u);
}

TEST(FuncCore, ZeroRegisterIsImmutable)
{
    std::vector<Inst> code;
    code.push_back(Inst{Opcode::Addi, 0, 0, 0, 55});
    code.push_back(Inst{Opcode::Addi, 5, 0, 0, 7});
    Machine m(std::move(code));
    EXPECT_EQ(m.r(0), 0u);
    EXPECT_EQ(m.r(5), 7u);
}

TEST(FuncCore, LoadStoreSizesAndSignExtension)
{
    std::vector<Inst> code;
    li(code, 4, 0x10000);                       // base
    li(code, 5, 0xfedcba98);
    code.push_back(Inst{Opcode::Sw, 5, 4, 0, 0});
    code.push_back(Inst{Opcode::Lb, 6, 4, 0, 0});    // 0x98 -> neg
    code.push_back(Inst{Opcode::Lbu, 7, 4, 0, 0});
    code.push_back(Inst{Opcode::Lh, 8, 4, 0, 0});    // 0xba98 -> neg
    code.push_back(Inst{Opcode::Lhu, 9, 4, 0, 0});
    code.push_back(Inst{Opcode::Lw, 10, 4, 0, 0});
    code.push_back(Inst{Opcode::Sb, 5, 4, 0, 8});
    code.push_back(Inst{Opcode::Lbu, 11, 4, 0, 8});
    code.push_back(Inst{Opcode::Sh, 5, 4, 0, 12});
    code.push_back(Inst{Opcode::Lhu, 12, 4, 0, 12});
    Machine m(std::move(code));
    EXPECT_EQ(m.r(6), uint32_t(int32_t(int8_t(0x98))));
    EXPECT_EQ(m.r(7), 0x98u);
    EXPECT_EQ(m.r(8), uint32_t(int32_t(int16_t(0xba98))));
    EXPECT_EQ(m.r(9), 0xba98u);
    EXPECT_EQ(m.r(10), 0xfedcba98u);
    EXPECT_EQ(m.r(11), 0x98u);
    EXPECT_EQ(m.r(12), 0xba98u);
}

TEST(FuncCore, RegisterPlusRegisterAddressing)
{
    std::vector<Inst> code;
    li(code, 4, 0x10000);
    li(code, 5, 0x24);
    li(code, 6, 1234);
    code.push_back(Inst{Opcode::Swx, 6, 4, 5, 0});
    code.push_back(Inst{Opcode::Lwx, 7, 4, 5, 0});
    Machine m(std::move(code));
    EXPECT_EQ(m.space.read32(0x10024), 1234u);
    EXPECT_EQ(m.r(7), 1234u);
}

TEST(FuncCore, PostIncrementAndDecrement)
{
    std::vector<Inst> code;
    li(code, 4, 0x10000);
    li(code, 5, 7);
    code.push_back(Inst{Opcode::Swpi, 5, 4, 0, 4});   // M[0x10000]=7
    code.push_back(Inst{Opcode::Swpi, 5, 4, 0, 4});   // M[0x10004]=7
    code.push_back(Inst{Opcode::Lwpi, 6, 4, 0, -4});  // reads 0x10008
    Machine m(std::move(code));
    EXPECT_EQ(m.space.read32(0x10000), 7u);
    EXPECT_EQ(m.space.read32(0x10004), 7u);
    EXPECT_EQ(m.r(4), 0x10004u) << "post-inc then post-dec";
    EXPECT_EQ(m.r(6), 0u);
}

TEST(FuncCore, BranchesAndJumps)
{
    // if (r4 < r5) r6 = 1; else r6 = 2;  via blt
    std::vector<Inst> code;
    li(code, 4, 3);
    li(code, 5, 9);
    code.push_back(Inst{Opcode::Blt, 0, 4, 5, 2});   // skip 2
    code.push_back(Inst{Opcode::Addi, 6, 0, 0, 2});
    code.push_back(Inst{Opcode::J, 0, 0, 0, 1});     // skip 1
    code.push_back(Inst{Opcode::Addi, 6, 0, 0, 1});
    code.push_back(Inst{Opcode::Addi, 7, 6, 0, 10});
    Machine m(std::move(code));
    EXPECT_EQ(m.r(6), 1u);
    EXPECT_EQ(m.r(7), 11u);
}

TEST(FuncCore, JalAndJr)
{
    // jal to a "function" that adds; return via jr ra.
    std::vector<Inst> code;
    li(code, 4, 5);                                  // 0,1
    code.push_back(Inst{Opcode::Jal, 0, 0, 0, 2});   // 2 -> idx 5
    code.push_back(Inst{Opcode::Addi, 6, 4, 0, 1});  // 3 (after ret)
    code.push_back(Inst{Opcode::J, 0, 0, 0, 2});     // 4 -> halt
    code.push_back(Inst{Opcode::Addi, 4, 4, 0, 100}); // 5: callee
    code.push_back(Inst{Opcode::Jr, 0, 31, 0, 0});   // 6: return
    Machine m(std::move(code));
    EXPECT_EQ(m.r(4), 105u);
    EXPECT_EQ(m.r(6), 106u);
}

TEST(FuncCore, FpArithmeticAndConversion)
{
    std::vector<Inst> code;
    li(code, 4, 7);
    li(code, 5, 2);
    code.push_back(Inst{Opcode::Fcvtif, 1, 4, 0, 0});    // f1 = 7.0
    code.push_back(Inst{Opcode::Fcvtif, 2, 5, 0, 0});    // f2 = 2.0
    code.push_back(Inst{Opcode::Fadd, 3, 1, 2, 0});
    code.push_back(Inst{Opcode::Fsub, 4, 1, 2, 0});
    code.push_back(Inst{Opcode::Fmul, 5, 1, 2, 0});
    code.push_back(Inst{Opcode::Fdiv, 6, 1, 2, 0});
    code.push_back(Inst{Opcode::Fneg, 7, 1, 0, 0});
    code.push_back(Inst{Opcode::Fabs, 8, 7, 0, 0});
    code.push_back(Inst{Opcode::Fcvtfi, 10, 6, 0, 0});   // trunc 3.5
    code.push_back(Inst{Opcode::Fclt, 11, 2, 1, 0});
    code.push_back(Inst{Opcode::Fceq, 12, 1, 1, 0});
    Machine m(std::move(code));
    EXPECT_DOUBLE_EQ(m.f(3), 9.0);
    EXPECT_DOUBLE_EQ(m.f(4), 5.0);
    EXPECT_DOUBLE_EQ(m.f(5), 14.0);
    EXPECT_DOUBLE_EQ(m.f(6), 3.5);
    EXPECT_DOUBLE_EQ(m.f(7), -7.0);
    EXPECT_DOUBLE_EQ(m.f(8), 7.0);
    EXPECT_EQ(m.r(10), 3u);
    EXPECT_EQ(m.r(11), 1u);
    EXPECT_EQ(m.r(12), 1u);
}

TEST(FuncCore, FpLoadsAndStores)
{
    std::vector<Inst> code;
    li(code, 4, 0x10000);
    li(code, 5, 3);
    code.push_back(Inst{Opcode::Fcvtif, 1, 5, 0, 0});
    code.push_back(Inst{Opcode::Sdf, 1, 4, 0, 8});
    code.push_back(Inst{Opcode::Ldf, 2, 4, 0, 8});
    code.push_back(Inst{Opcode::Sdfpi, 2, 4, 0, 8});
    code.push_back(Inst{Opcode::Ldfpi, 3, 4, 0, 8});
    Machine m(std::move(code));
    EXPECT_DOUBLE_EQ(m.f(2), 3.0);
    EXPECT_DOUBLE_EQ(m.f(3), 3.0) << "read back what sdfpi wrote";
    EXPECT_EQ(m.r(4), 0x10010u);
}

TEST(FuncCore, FcvtfiSaturates)
{
    std::vector<Inst> code;
    li(code, 4, 1);
    code.push_back(Inst{Opcode::Fcvtif, 1, 4, 0, 0});    // 1.0
    // Build a huge value: f2 = 1e300-ish via repeated multiply.
    code.push_back(Inst{Opcode::Fadd, 2, 1, 1, 0});      // 2.0
    for (int i = 0; i < 12; ++i)
        code.push_back(Inst{Opcode::Fmul, 2, 2, 2, 0});
    code.push_back(Inst{Opcode::Fcvtfi, 5, 2, 0, 0});
    code.push_back(Inst{Opcode::Fneg, 3, 2, 0, 0});
    code.push_back(Inst{Opcode::Fcvtfi, 6, 3, 0, 0});
    Machine m(std::move(code));
    EXPECT_EQ(int32_t(m.r(5)), INT32_MAX);
    EXPECT_EQ(int32_t(m.r(6)), INT32_MIN);
}

TEST(FuncCore, DynInstRecordsMemoryMetadata)
{
    std::vector<Inst> code;
    li(code, 4, 0x12345000);
    code.push_back(Inst{Opcode::Lw, 6, 4, 0, 0x1abc});
    Machine m(std::move(code));
    const cpu::DynInst &ld = m.trace[m.trace.size() - 2];
    EXPECT_TRUE(ld.isLoad);
    EXPECT_EQ(ld.effAddr, 0x12345000u + 0x1abc);
    EXPECT_EQ(ld.memSize, 4u);
    EXPECT_EQ(ld.baseReg, 4);
    EXPECT_EQ(ld.offsetHigh, (0x1abc >> 12) & 0xf);
}

TEST(FuncCore, DynInstBranchMetadata)
{
    std::vector<Inst> code;
    code.push_back(Inst{Opcode::Beq, 0, 0, 0, 1});   // always taken
    code.push_back(Inst{Opcode::Addi, 5, 0, 0, 9});  // skipped
    Machine m(std::move(code));
    EXPECT_EQ(m.r(5), 0u);
    const cpu::DynInst &br = m.trace[0];
    EXPECT_TRUE(br.isBranch);
    EXPECT_TRUE(br.taken);
    EXPECT_EQ(br.nextPc, br.pc + 8);
}

TEST(FuncCore, StoreDataSourceIndex)
{
    std::vector<Inst> code;
    li(code, 4, 0x10000);
    li(code, 5, 77);
    code.push_back(Inst{Opcode::Sw, 5, 4, 0, 0});
    code.push_back(Inst{Opcode::Sw, 0, 4, 0, 4});   // store zero
    Machine m(std::move(code));
    const cpu::DynInst &sw1 = m.trace[m.trace.size() - 3];
    ASSERT_TRUE(sw1.isStore);
    ASSERT_GE(sw1.dataSrc, 0);
    EXPECT_EQ(sw1.srcs[sw1.dataSrc], 5);
    const cpu::DynInst &sw2 = m.trace[m.trace.size() - 2];
    EXPECT_EQ(sw2.dataSrc, -1) << "zero-register data has no producer";
}

TEST(FuncCore, CountsArchitecturalEvents)
{
    std::vector<Inst> code;
    li(code, 4, 0x10000);
    code.push_back(Inst{Opcode::Sw, 0, 4, 0, 0});
    code.push_back(Inst{Opcode::Lw, 5, 4, 0, 0});
    code.push_back(Inst{Opcode::Beq, 0, 5, 0, 0});
    Machine m(std::move(code));
    EXPECT_EQ(m.core->stats().loads, 1u);
    EXPECT_EQ(m.core->stats().stores, 1u);
    EXPECT_EQ(m.core->stats().branches, 1u);
    EXPECT_EQ(m.core->stats().takenBranches, 1u);
    EXPECT_EQ(m.core->stats().instructions, m.trace.size());
}

} // namespace
