/**
 * @file
 * Tests for the statistics helpers (ratios, run-time weighted
 * averages, and the table renderer).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace
{

using namespace hbat;

TEST(Stats, RatioHandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(ratio(uint64_t(5), uint64_t(0)), 0.0);
    EXPECT_DOUBLE_EQ(ratio(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(uint64_t(6), uint64_t(3)), 2.0);
}

TEST(Stats, WeightedAverageBasic)
{
    EXPECT_DOUBLE_EQ(weightedAverage({1.0, 3.0}, {1.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(weightedAverage({1.0, 3.0}, {3.0, 1.0}), 1.5);
}

TEST(Stats, WeightedAverageZeroWeights)
{
    EXPECT_DOUBLE_EQ(weightedAverage({1.0, 2.0}, {0.0, 0.0}), 0.0);
}

TEST(Stats, WeightedAverageSingleDominantWeight)
{
    EXPECT_DOUBLE_EQ(weightedAverage({7.0, 9.0}, {1.0, 0.0}), 7.0);
}

TEST(Stats, PercentFormatting)
{
    EXPECT_EQ(percent(0.5, 1), "50.0%");
    EXPECT_EQ(percent(0.123456, 2), "12.35%");
}

TEST(Stats, FixedFormatting)
{
    EXPECT_EQ(fixed(1.5, 2), "1.50");
    EXPECT_EQ(fixed(-0.25, 3), "-0.250");
}

TEST(Stats, TextTableAlignment)
{
    TextTable t;
    t.header({"name", "v"});
    t.row({"a", "1.0"});
    t.row({"long-name", "10.0"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Every line has the same length (aligned columns).
    size_t prev = std::string::npos;
    size_t start = 0;
    while (start < out.size()) {
        const size_t end = out.find('\n', start);
        const size_t len = end - start;
        if (prev != std::string::npos) {
            EXPECT_EQ(len, prev);
        }
        prev = len;
        start = end + 1;
    }
}

TEST(StatsDeath, TableRowWidthMismatch)
{
    TextTable t;
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "row width mismatch");
}

} // namespace
