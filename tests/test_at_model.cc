/**
 * @file
 * Tests for the Section 2 analytical model: the closed-form equations
 * and the parameter extraction from measured runs, including the
 * paper's qualitative predictions (shielding designs reduce t_AT; the
 * out-of-order core tolerates more exposed latency than the in-order
 * core).
 */

#include <gtest/gtest.h>

#include "kasm/program_builder.hh"
#include "sim/at_model.hh"
#include "tlb/ideal.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;

TEST(AtModel, ClosedForm)
{
    sim::AtModelParams p;
    p.fMem = 0.4;
    p.fShielded = 0.5;
    p.tStalled = 1.0;
    p.tTlbHit = 0.0;
    p.mTlb = 0.01;
    p.tTlbMiss = 30.0;
    // t_AT = 0.5 * (1 + 0 + 0.3) = 0.65
    EXPECT_NEAR(sim::tAt(p), 0.65, 1e-12);
    // TPI_AT = 0.4 * (1 - 0.75) * 0.65
    EXPECT_NEAR(sim::tpiAt(p, 0.75), 0.4 * 0.25 * 0.65, 1e-12);
}

TEST(AtModel, FullShieldingZeroesLatency)
{
    sim::AtModelParams p;
    p.fShielded = 1.0;
    p.tStalled = 10.0;
    p.mTlb = 0.5;
    EXPECT_DOUBLE_EQ(sim::tAt(p), 0.0);
}

TEST(AtModel, FullToleranceZeroesImpact)
{
    sim::AtModelParams p;
    p.fMem = 0.5;
    p.tStalled = 4.0;
    EXPECT_DOUBLE_EQ(sim::tpiAt(p, 1.0), 0.0);
}

class AtModelMeasured : public ::testing::Test
{
  protected:
    static sim::SimResult
    runDesign(const kasm::Program &prog, tlb::Design d, bool in_order)
    {
        sim::SimConfig cfg;
        cfg.design = d;
        cfg.inOrder = in_order;
        return sim::simulate(prog, cfg);
    }

    static sim::SimResult
    runIdeal(const kasm::Program &prog, bool in_order)
    {
        sim::SimConfig cfg;
        cfg.inOrder = in_order;
        return sim::simulateWithEngine(
            prog, cfg,
            [](vm::PageTable &pt) {
                return std::make_unique<tlb::IdealTlb>(pt);
            },
            "ideal");
    }
};

TEST_F(AtModelMeasured, ExtractedParametersAreSane)
{
    const kasm::Program prog =
        workloads::build("xlisp", kasm::RegBudget{32, 32}, 0.05);
    const sim::SimResult r = runDesign(prog, tlb::Design::T1, false);
    const sim::AtModelParams p = sim::extractModel(r);
    EXPECT_GT(p.fMem, 0.1);
    EXPECT_LT(p.fMem, 1.0);
    EXPECT_GE(p.fShielded, 0.0);
    EXPECT_LE(p.fShielded, 1.0);
    EXPECT_GE(p.tStalled, 0.0);
    EXPECT_GE(p.mTlb, 0.0);
    EXPECT_LE(p.mTlb, 1.0);
}

TEST_F(AtModelMeasured, ShieldingDesignReducesTat)
{
    const kasm::Program prog =
        workloads::build("tomcatv", kasm::RegBudget{32, 32}, 0.1);
    const auto t1 = sim::extractModel(runDesign(prog, tlb::Design::T1,
                                                false));
    const auto m8 = sim::extractModel(runDesign(prog, tlb::Design::M8,
                                                false));
    EXPECT_GT(m8.fShielded, 0.8) << "the L1 TLB must shield";
    EXPECT_LT(sim::tAt(m8), sim::tAt(t1));
}

TEST_F(AtModelMeasured, OutOfOrderToleratesMoreThanInOrder)
{
    const kasm::Program prog =
        workloads::build("tomcatv", kasm::RegBudget{32, 32}, 0.1);
    const sim::SimResult oooT1 = runDesign(prog, tlb::Design::T1,
                                           false);
    const sim::SimResult oooIdeal = runIdeal(prog, false);
    const sim::SimResult inoT1 = runDesign(prog, tlb::Design::T1,
                                           true);
    const sim::SimResult inoIdeal = runIdeal(prog, true);

    const double fOoo = sim::impliedFtol(oooT1, oooIdeal);
    const double fIno = sim::impliedFtol(inoT1, inoIdeal);
    EXPECT_GT(fOoo, fIno)
        << "Section 2: latency-tolerating execution raises f_TOL";
}

TEST_F(AtModelMeasured, MeasuredTpiNonNegativeAndBounded)
{
    const kasm::Program prog =
        workloads::build("compress", kasm::RegBudget{32, 32}, 0.05);
    const sim::SimResult r = runDesign(prog, tlb::Design::T1, false);
    const sim::SimResult ideal = runIdeal(prog, false);
    const double tpi = sim::measuredTpiAt(r, ideal);
    EXPECT_GE(tpi, 0.0);
    // TPI_AT cannot exceed the run's whole CPI.
    EXPECT_LT(tpi, double(r.pipe.cycles) / double(r.pipe.committed));
}

} // namespace
