/**
 * @file
 * Cost-model tests: the qualitative orderings the paper's motivation
 * asserts must hold in the first-order area/latency estimates.
 */

#include <gtest/gtest.h>

#include "tlb/cost_model.hh"

namespace
{

using namespace hbat;
using tlb::CostEstimate;
using tlb::Design;
using tlb::designCost;

TEST(CostModel, MultiPortAreaGrowsSuperlinearly)
{
    const double a1 = designCost(Design::T1).areaRbe;
    const double a2 = designCost(Design::T2).areaRbe;
    const double a4 = designCost(Design::T4).areaRbe;
    EXPECT_LT(a1, a2);
    EXPECT_LT(a2, a4);
    // Quadratic port growth: T4 costs more than 4x T1.
    EXPECT_GT(a4, 4.0 * a1);
    // ...and the growth accelerates.
    EXPECT_GT(a4 / a2, a2 / a1);
}

TEST(CostModel, MultiPortLatencyGrowsWithPorts)
{
    EXPECT_LT(designCost(Design::T1).accessLatency,
              designCost(Design::T2).accessLatency);
    EXPECT_LT(designCost(Design::T2).accessLatency,
              designCost(Design::T4).accessLatency);
}

TEST(CostModel, AlternativesBeatT4Area)
{
    const double t4 = designCost(Design::T4).areaRbe;
    for (Design d : {Design::I4, Design::I8, Design::X4, Design::M16,
                     Design::M8, Design::M4, Design::P8, Design::PB2,
                     Design::PB1, Design::I4PB}) {
        EXPECT_LT(designCost(d).areaRbe, t4)
            << tlb::designName(d)
            << " must be cheaper than the 4-ported TLB";
    }
}

TEST(CostModel, PiggybackIsNearlyFree)
{
    // PB2 adds only comparators and a gate over T2.
    const CostEstimate t2 = designCost(Design::T2);
    const CostEstimate pb2 = designCost(Design::PB2);
    EXPECT_LT(pb2.areaRbe, t2.areaRbe * 1.02);
    EXPECT_LT(pb2.accessLatency, t2.accessLatency + 0.5);
}

TEST(CostModel, MultiLevelPortSideIsSmall)
{
    // The L1 TLB is the port-side critical path and is much faster
    // than a 128-entry 4-ported structure; the miss path is longer.
    const CostEstimate m8 = designCost(Design::M8);
    const CostEstimate t4 = designCost(Design::T4);
    EXPECT_LT(m8.accessLatency, t4.accessLatency);
    EXPECT_GT(m8.missPathLatency, m8.accessLatency);
}

TEST(CostModel, PretranslationOffCriticalPath)
{
    // Section 3.5/5: pretranslation provides the physical page by the
    // end of decode — the smallest port-side latency of all designs.
    const double p8 = designCost(Design::P8).accessLatency;
    for (tlb::Design d : tlb::allDesigns()) {
        if (d == Design::P8)
            continue;
        EXPECT_LT(p8, designCost(d).accessLatency)
            << tlb::designName(d);
    }
}

TEST(CostModel, LargerL1CostsMore)
{
    EXPECT_LT(designCost(Design::M4).areaRbe,
              designCost(Design::M8).areaRbe);
    EXPECT_LT(designCost(Design::M8).areaRbe,
              designCost(Design::M16).areaRbe);
}

TEST(CostModel, ArrayCostMonotonicity)
{
    // Property: area grows in every argument; latency in entries/ports.
    for (unsigned entries : {8u, 32u, 128u}) {
        for (unsigned ports : {1u, 2u, 4u}) {
            const CostEstimate c = tlb::arrayCost(entries, ports);
            EXPECT_LT(c.areaRbe,
                      tlb::arrayCost(entries * 2, ports).areaRbe);
            EXPECT_LT(c.areaRbe,
                      tlb::arrayCost(entries, ports + 1).areaRbe);
            EXPECT_LE(c.accessLatency,
                      tlb::arrayCost(entries * 2, ports).accessLatency);
            EXPECT_LT(c.accessLatency,
                      tlb::arrayCost(entries, ports + 1).accessLatency);
        }
    }
}

TEST(CostModel, AllDesignsHavePositiveCosts)
{
    for (tlb::Design d : tlb::allDesigns()) {
        const CostEstimate c = designCost(d);
        EXPECT_GT(c.areaRbe, 0.0) << tlb::designName(d);
        EXPECT_GT(c.accessLatency, 0.0) << tlb::designName(d);
        EXPECT_GE(c.missPathLatency, c.accessLatency)
            << tlb::designName(d);
    }
}

} // namespace
