/**
 * @file
 * Virtual-memory tests: page geometry, the two-level page table with
 * status bits, and the address space's typed accessors and program
 * loading.
 */

#include <gtest/gtest.h>

#include "kasm/program_builder.hh"
#include "vm/address_space.hh"

namespace
{

using namespace hbat;
using vm::PageParams;
using vm::PageTable;

class PageGeometry : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PageGeometry, SplitAndRejoin)
{
    const PageParams pages(GetParam());
    const VAddr va = 0x1234'5678;
    const Vpn vpn = pages.vpn(va);
    const uint64_t off = pages.offset(va);
    EXPECT_EQ((vpn << pages.shift()) | off, va);
    EXPECT_LT(off, pages.bytes());
    EXPECT_EQ(pages.pageBase(va) + off, va);
    EXPECT_EQ(pages.vpnBits() + pages.shift(), 32u);
}

TEST_P(PageGeometry, PhysAddrKeepsOffset)
{
    const PageParams pages(GetParam());
    const VAddr va = 0x00403a5c;
    const PAddr pa = pages.physAddr(77, va);
    EXPECT_EQ(pa & (pages.bytes() - 1), pages.offset(va));
    EXPECT_EQ(pa >> pages.shift(), 77u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PageGeometry,
                         ::testing::Values(1024, 4096, 8192, 65536));

TEST(PageTable, AllocatesDistinctFrames)
{
    PageTable pt;
    const Ppn a = pt.lookup(1).ppn;
    const Ppn b = pt.lookup(2).ppn;
    const Ppn c = pt.lookup(0xfffff).ppn;
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_NE(a, c);
    EXPECT_EQ(pt.mappedPages(), 3u);
    // Stable on re-lookup.
    EXPECT_EQ(pt.lookup(1).ppn, a);
    EXPECT_EQ(pt.mappedPages(), 3u);
}

TEST(PageTable, FindDoesNotAllocate)
{
    PageTable pt;
    EXPECT_EQ(pt.find(5), nullptr);
    EXPECT_EQ(pt.mappedPages(), 0u);
    pt.lookup(5);
    ASSERT_NE(pt.find(5), nullptr);
    EXPECT_EQ(pt.mappedPages(), 1u);
}

TEST(PageTable, StatusBitTransitions)
{
    PageTable pt;
    // First (read) reference sets the referenced bit.
    vm::RefResult r1 = pt.reference(9, false);
    EXPECT_TRUE(r1.statusChanged);
    // Second read changes nothing.
    vm::RefResult r2 = pt.reference(9, false);
    EXPECT_FALSE(r2.statusChanged);
    EXPECT_EQ(r1.ppn, r2.ppn);
    // First write sets the dirty bit.
    vm::RefResult r3 = pt.reference(9, true);
    EXPECT_TRUE(r3.statusChanged);
    // Later writes change nothing.
    EXPECT_FALSE(pt.reference(9, true).statusChanged);
    EXPECT_FALSE(pt.reference(9, false).statusChanged);
}

TEST(PageTable, FirstWriteSetsBothBits)
{
    PageTable pt;
    EXPECT_TRUE(pt.reference(3, true).statusChanged);
    EXPECT_FALSE(pt.reference(3, true).statusChanged);
    const vm::Pte *pte = pt.find(3);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->referenced);
    EXPECT_TRUE(pte->dirty);
}

TEST(PageTable, EightKPages)
{
    PageTable pt{PageParams(8192)};
    EXPECT_EQ(pt.params().bytes(), 8192u);
    pt.lookup((VAddr(0xffffffff)) >> 13);
    EXPECT_EQ(pt.mappedPages(), 1u);
}

TEST(AddressSpace, TypedReadWrite)
{
    vm::AddressSpace space;
    space.write8(0x1000, 0xab);
    space.write16(0x1002, 0xcdef);
    space.write32(0x1004, 0x12345678);
    space.write64(0x1008, 0xdeadbeefcafebabeull);
    EXPECT_EQ(space.read8(0x1000), 0xabu);
    EXPECT_EQ(space.read16(0x1002), 0xcdefu);
    EXPECT_EQ(space.read32(0x1004), 0x12345678u);
    EXPECT_EQ(space.read64(0x1008), 0xdeadbeefcafebabeull);
}

TEST(AddressSpace, GenericSizeAccess)
{
    vm::AddressSpace space;
    for (unsigned size : {1u, 2u, 4u, 8u}) {
        const VAddr va = 0x2000 + size * 16;
        space.write(va, 0x1122334455667788ull, size);
        const uint64_t expect =
            0x1122334455667788ull & mask(size * 8);
        EXPECT_EQ(space.read(va, size), expect) << size;
    }
}

TEST(AddressSpace, ZeroFilledOnFirstTouch)
{
    vm::AddressSpace space;
    EXPECT_EQ(space.read32(0x7f000000), 0u);
    EXPECT_EQ(space.touchedPages(), 1u);
}

TEST(AddressSpace, PagesAreIndependent)
{
    vm::AddressSpace space;
    space.write32(0x1000, 111);
    space.write32(0x2000, 222);
    EXPECT_EQ(space.read32(0x1000), 111u);
    EXPECT_EQ(space.read32(0x2000), 222u);
    EXPECT_EQ(space.touchedPages(), 2u);
}

TEST(AddressSpaceDeath, MisalignedAccess)
{
    vm::AddressSpace space;
    EXPECT_DEATH(space.read32(0x1002), "misaligned");
    EXPECT_DEATH(space.write64(0x1004, 1), "misaligned");
}

TEST(AddressSpace, LoadsProgramImage)
{
    kasm::ProgramBuilder pb("img");
    auto &b = pb.code();
    std::vector<uint32_t> words{0x11111111, 0x22222222};
    const VAddr data = pb.words(words);
    b.halt();
    const kasm::Program prog = pb.link();

    vm::AddressSpace space;
    space.load(prog);
    EXPECT_EQ(space.read32(data), 0x11111111u);
    EXPECT_EQ(space.read32(data + 4), 0x22222222u);
    // Text is loaded at the text base.
    EXPECT_EQ(isa::decode(space.read32(prog.textBase)).op,
              isa::Opcode::Halt);
}

TEST(AddressSpace, EightKPageGeometry)
{
    vm::AddressSpace space{PageParams(8192)};
    space.write32(0x3000, 7);
    // 0x3000 and 0x2000 share an 8 KB page but not a 4 KB one.
    EXPECT_EQ(space.params().vpn(0x3000), space.params().vpn(0x2000));
    EXPECT_EQ(space.touchedPages(), 1u);
}

} // namespace
