/**
 * @file
 * Tests for the experiment harness: argument parsing, sweep shape,
 * and the run-time-weighted normalization used by every figure.
 */

#include <gtest/gtest.h>

#include "bench/harness.hh"

namespace
{

using namespace hbat;

TEST(Harness, ParseArgsDefaults)
{
    const char *argv[] = {"bench"};
    const bench::ExperimentConfig cfg = bench::parseArgs(
        1, const_cast<char **>(argv), bench::ExperimentConfig{});
    EXPECT_DOUBLE_EQ(cfg.scale, 1.0);
    EXPECT_EQ(cfg.pageBytes, 4096u);
    EXPECT_FALSE(cfg.inOrder);
    EXPECT_TRUE(cfg.programs.empty());
}

TEST(Harness, ParseArgsOverrides)
{
    const char *argv[] = {"bench", "--scale", "0.25", "--program",
                          "xlisp", "--program", "perl", "--seed",
                          "99"};
    const bench::ExperimentConfig cfg = bench::parseArgs(
        9, const_cast<char **>(argv), bench::ExperimentConfig{});
    EXPECT_DOUBLE_EQ(cfg.scale, 0.25);
    ASSERT_EQ(cfg.programs.size(), 2u);
    EXPECT_EQ(cfg.programs[0], "xlisp");
    EXPECT_EQ(cfg.programs[1], "perl");
    EXPECT_EQ(cfg.seed, 99u);
}

TEST(HarnessDeath, UnknownFlag)
{
    const char *argv[] = {"bench", "--bogus"};
    EXPECT_EXIT(bench::parseArgs(2, const_cast<char **>(argv),
                                 bench::ExperimentConfig{}),
                ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(Harness, SweepShapeAndNormalization)
{
    bench::ExperimentConfig cfg;
    cfg.scale = 0.02;
    cfg.programs = {"espresso", "doduc"};
    const std::vector<tlb::Design> designs = {tlb::Design::T4,
                                              tlb::Design::T1};
    const bench::Sweep sweep = bench::runDesignSweep(cfg, designs);

    ASSERT_EQ(sweep.programs.size(), 2u);
    ASSERT_EQ(sweep.cells.size(), 4u);
    EXPECT_EQ(sweep.cell(0, 0).program, "espresso");
    EXPECT_EQ(sweep.cell(0, 0).design, "T4");
    EXPECT_EQ(sweep.cell(1, 1).program, "doduc");
    EXPECT_EQ(sweep.cell(1, 1).design, "T1");

    // Every cell ran the same committed work for its program.
    EXPECT_EQ(sweep.cell(0, 0).result.pipe.committed,
              sweep.cell(0, 1).result.pipe.committed);
    // T1 can never beat T4.
    EXPECT_LE(sweep.cell(0, 1).result.ipc(),
              sweep.cell(0, 0).result.ipc() + 1e-9);
}

} // namespace
