/**
 * @file
 * Cycle-level tests of every translation design in Table 2:
 * port/bank arbitration, piggyback combining, multi-level shielding
 * and inclusion, pretranslation attachment/propagation/coherence,
 * and the miss/fill protocol.
 */

#include <gtest/gtest.h>

#include "tlb/design.hh"
#include "tlb/interleaved.hh"
#include "tlb/multilevel.hh"
#include "tlb/multiported.hh"
#include "tlb/pretranslation.hh"
#include "vm/page_table.hh"

namespace
{

using namespace hbat;
using tlb::Outcome;
using tlb::XlateRequest;

XlateRequest
req(Vpn vpn, InstSeq seq = 0, bool write = false,
    RegIndex base_reg = 5, uint8_t off_high = 0, bool is_load = true)
{
    XlateRequest r;
    r.vpn = vpn;
    r.write = write;
    r.seq = seq;
    r.isLoad = is_load;
    r.baseReg = base_reg;
    r.offsetHigh = off_high;
    return r;
}

/** Drive a request to completion: fill on miss, then re-request. */
Ppn
translateFully(tlb::TranslationEngine &eng, Vpn vpn, Cycle &clock)
{
    for (;;) {
        eng.beginCycle(clock);
        const Outcome out = eng.request(req(vpn), clock);
        if (out.kind == Outcome::Kind::Hit)
            return out.ppn;
        if (out.kind == Outcome::Kind::Miss)
            eng.fill(vpn, clock);
        ++clock;
    }
}

// ---------------------------------------------------------------
// Multi-ported (T4/T2/T1) and piggybacked (PB2/PB1)
// ---------------------------------------------------------------

TEST(MultiPorted, ColdMissThenHit)
{
    vm::PageTable pt;
    tlb::MultiPortedTlb eng(pt, 1, 0, 128, 1);
    eng.beginCycle(0);
    const Outcome miss = eng.request(req(10), 0);
    EXPECT_EQ(miss.kind, Outcome::Kind::Miss);
    EXPECT_EQ(miss.missAt, 0u);
    eng.fill(10, 30);

    eng.beginCycle(31);
    const Outcome hit = eng.request(req(10), 31);
    ASSERT_EQ(hit.kind, Outcome::Kind::Hit);
    EXPECT_EQ(hit.ready, 31u);      // overlapped: no visible latency
    EXPECT_FALSE(hit.shielded);
    EXPECT_EQ(hit.ppn, pt.find(10)->ppn);
}

class PortCount : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PortCount, GrantsExactlyNPortsPerCycle)
{
    const unsigned ports = GetParam();
    vm::PageTable pt;
    tlb::MultiPortedTlb eng(pt, ports, 0, 128, 1);
    Cycle clock = 0;
    for (Vpn v = 0; v < 8; ++v)
        translateFully(eng, v, clock);

    ++clock;
    eng.beginCycle(clock);
    unsigned granted = 0, refused = 0;
    for (Vpn v = 0; v < 8; ++v) {
        const Outcome out = eng.request(req(v, v), clock);
        if (out.kind == Outcome::Kind::Hit)
            ++granted;
        else if (out.kind == Outcome::Kind::NoPort)
            ++refused;
    }
    EXPECT_EQ(granted, ports);
    EXPECT_EQ(refused, 8 - ports);

    // Ports recycle the next cycle.
    ++clock;
    eng.beginCycle(clock);
    EXPECT_EQ(eng.request(req(0), clock).kind, Outcome::Kind::Hit);
}

INSTANTIATE_TEST_SUITE_P(Widths, PortCount,
                         ::testing::Values(1u, 2u, 4u));

TEST(Piggyback, SamePageRidesAlong)
{
    vm::PageTable pt;
    tlb::MultiPortedTlb eng(pt, 1, 3, 128, 1);   // PB1
    Cycle clock = 0;
    translateFully(eng, 42, clock);

    ++clock;
    eng.beginCycle(clock);
    const Outcome first = eng.request(req(42, 1), clock);
    ASSERT_EQ(first.kind, Outcome::Kind::Hit);
    EXPECT_FALSE(first.shielded);

    // Same page: piggybacks (shielded). Different page: refused.
    const Outcome same = eng.request(req(42, 2), clock);
    ASSERT_EQ(same.kind, Outcome::Kind::Hit);
    EXPECT_TRUE(same.shielded);
    EXPECT_EQ(same.ready, clock);
    EXPECT_EQ(same.ppn, first.ppn);

    const Outcome other = eng.request(req(43, 3), clock);
    EXPECT_EQ(other.kind, Outcome::Kind::NoPort);
    EXPECT_EQ(eng.stats().piggybacks, 1u);
}

TEST(Piggyback, PortLimitCounts)
{
    vm::PageTable pt;
    tlb::MultiPortedTlb eng(pt, 1, 2, 128, 1);   // 1 port + 2 piggy
    Cycle clock = 0;
    translateFully(eng, 7, clock);

    ++clock;
    eng.beginCycle(clock);
    EXPECT_EQ(eng.request(req(7, 1), clock).kind, Outcome::Kind::Hit);
    EXPECT_TRUE(eng.request(req(7, 2), clock).shielded);
    EXPECT_TRUE(eng.request(req(7, 3), clock).shielded);
    // Third same-page rider exceeds the 2 piggyback ports.
    EXPECT_EQ(eng.request(req(7, 4), clock).kind,
              Outcome::Kind::NoPort);
}

TEST(Piggyback, RidersShareTheMiss)
{
    vm::PageTable pt;
    tlb::MultiPortedTlb eng(pt, 1, 3, 128, 1);
    eng.beginCycle(0);
    EXPECT_EQ(eng.request(req(9, 1), 0).kind, Outcome::Kind::Miss);
    // A same-page rider also reports the miss (it shares the walk).
    EXPECT_EQ(eng.request(req(9, 2), 0).kind, Outcome::Kind::Miss);
    EXPECT_EQ(eng.stats().misses, 1u) << "one walk, not two";
}

TEST(MultiPorted, PortOwnersIgnorePiggybackOpportunity)
{
    // Requests that receive a real port never combine (the paper
    // piggybacks only requests that do NOT receive a port).
    vm::PageTable pt;
    tlb::MultiPortedTlb eng(pt, 2, 2, 128, 1);   // PB2
    Cycle clock = 0;
    translateFully(eng, 5, clock);

    ++clock;
    eng.beginCycle(clock);
    EXPECT_FALSE(eng.request(req(5, 1), clock).shielded);
    EXPECT_FALSE(eng.request(req(5, 2), clock).shielded);
    EXPECT_TRUE(eng.request(req(5, 3), clock).shielded);
}

// ---------------------------------------------------------------
// Interleaved (I8/I4/X4/I4PB)
// ---------------------------------------------------------------

TEST(Interleaved, BitSelectBankMapping)
{
    vm::PageTable pt;
    tlb::InterleavedTlb eng(pt, 4, tlb::BankSelect::BitSelect, 128,
                            false, 1);
    EXPECT_EQ(eng.bankOf(0), 0u);
    EXPECT_EQ(eng.bankOf(1), 1u);
    EXPECT_EQ(eng.bankOf(5), 1u);
    EXPECT_EQ(eng.bankOf(7), 3u);
}

TEST(Interleaved, XorFoldMapping)
{
    vm::PageTable pt;
    tlb::InterleavedTlb eng(pt, 4, tlb::BankSelect::XorFold, 128,
                            false, 1);
    // vpn = 0b01_10_11 -> 11 ^ 10 ^ 01 = 00.
    EXPECT_EQ(eng.bankOf(0b011011), 0u);
    // Same-page requests always agree regardless of selection.
    for (Vpn v = 0; v < 64; ++v)
        EXPECT_LT(eng.bankOf(v), 4u);
}

TEST(Interleaved, DifferentBanksProceedInParallel)
{
    vm::PageTable pt;
    tlb::InterleavedTlb eng(pt, 4, tlb::BankSelect::BitSelect, 128,
                            false, 1);
    Cycle clock = 0;
    for (Vpn v = 0; v < 4; ++v)
        translateFully(eng, v, clock);

    ++clock;
    eng.beginCycle(clock);
    for (Vpn v = 0; v < 4; ++v)
        EXPECT_EQ(eng.request(req(v, v), clock).kind,
                  Outcome::Kind::Hit)
            << "bank " << v;
}

TEST(Interleaved, SameBankConflictsSerialize)
{
    vm::PageTable pt;
    tlb::InterleavedTlb eng(pt, 4, tlb::BankSelect::BitSelect, 128,
                            false, 1);
    Cycle clock = 0;
    translateFully(eng, 4, clock);      // bank 0
    translateFully(eng, 8, clock);      // bank 0

    ++clock;
    eng.beginCycle(clock);
    EXPECT_EQ(eng.request(req(4, 1), clock).kind, Outcome::Kind::Hit);
    EXPECT_EQ(eng.request(req(8, 2), clock).kind,
              Outcome::Kind::NoPort)
        << "same bank, different page";
    EXPECT_GE(eng.stats().noPort, 1u);
}

TEST(Interleaved, PiggybackAtBank)
{
    vm::PageTable pt;
    tlb::InterleavedTlb eng(pt, 4, tlb::BankSelect::BitSelect, 128,
                            true, 1);   // I4/PB
    Cycle clock = 0;
    translateFully(eng, 4, clock);
    translateFully(eng, 8, clock);

    ++clock;
    eng.beginCycle(clock);
    EXPECT_FALSE(eng.request(req(4, 1), clock).shielded);
    // Same page, same bank: piggybacks.
    const Outcome ride = eng.request(req(4, 2), clock);
    ASSERT_EQ(ride.kind, Outcome::Kind::Hit);
    EXPECT_TRUE(ride.shielded);
    // Different page in the same bank still conflicts.
    EXPECT_EQ(eng.request(req(8, 3), clock).kind,
              Outcome::Kind::NoPort);
}

TEST(Interleaved, FillGoesToTheRightBank)
{
    vm::PageTable pt;
    tlb::InterleavedTlb eng(pt, 8, tlb::BankSelect::BitSelect, 128,
                            false, 1);  // I8: 16-entry banks
    Cycle clock = 0;
    // Fill bank 3 beyond its 16-entry capacity; other banks untouched.
    for (int i = 0; i < 32; ++i)
        translateFully(eng, Vpn(3 + 8 * i), clock);
    // A page in another bank still misses cold (never filled).
    ++clock;
    eng.beginCycle(clock);
    EXPECT_EQ(eng.request(req(2), clock).kind, Outcome::Kind::Miss);
}

// ---------------------------------------------------------------
// Multi-level (M16/M8/M4)
// ---------------------------------------------------------------

TEST(MultiLevel, L1HitIsShieldedAndFree)
{
    vm::PageTable pt;
    tlb::MultiLevelTlb eng(pt, 8, 4, 128, 1);
    Cycle clock = 0;
    translateFully(eng, 3, clock);

    clock += 2;
    eng.beginCycle(clock);
    const Outcome out = eng.request(req(3), clock);
    ASSERT_EQ(out.kind, Outcome::Kind::Hit);
    EXPECT_TRUE(out.shielded);
    EXPECT_EQ(out.ready, clock);
    EXPECT_GE(eng.stats().shielded, 1u);
}

TEST(MultiLevel, L1MissCostsTwoCyclesMinimum)
{
    vm::PageTable pt;
    tlb::MultiLevelTlb eng(pt, 4, 4, 128, 1);
    Cycle clock = 0;
    // Load 3 into both levels, then push it out of the tiny L1 with
    // four other pages.
    translateFully(eng, 3, clock);
    for (Vpn v = 10; v < 14; ++v)
        translateFully(eng, v, clock);

    // Leave slack for the warmup's queued status write-throughs.
    clock += 16;
    eng.beginCycle(clock);
    const Outcome out = eng.request(req(3), clock);
    ASSERT_EQ(out.kind, Outcome::Kind::Hit) << "must hit in L2";
    EXPECT_FALSE(out.shielded);
    EXPECT_EQ(out.ready, clock + 2)
        << "L1 miss is sent to the L2 the next cycle";
}

TEST(MultiLevel, L2PortQueuesSecondMiss)
{
    vm::PageTable pt;
    tlb::MultiLevelTlb eng(pt, 4, 4, 128, 1);
    Cycle clock = 0;
    translateFully(eng, 3, clock);
    translateFully(eng, 4, clock);
    for (Vpn v = 10; v < 14; ++v)
        translateFully(eng, v, clock);  // evict 3 and 4 from L1

    clock += 16;    // let queued status write-throughs drain
    eng.beginCycle(clock);
    const Outcome a = eng.request(req(3, 1), clock);
    const Outcome c = eng.request(req(4, 2), clock);
    ASSERT_EQ(a.kind, Outcome::Kind::Hit);
    ASSERT_EQ(c.kind, Outcome::Kind::Hit);
    EXPECT_EQ(a.ready, clock + 2);
    EXPECT_EQ(c.ready, clock + 3)
        << "second L1 miss queues behind the single L2 port";
    EXPECT_GE(eng.stats().queueCycles, 1u);
}

TEST(MultiLevel, L1PortLimit)
{
    vm::PageTable pt;
    tlb::MultiLevelTlb eng(pt, 16, 4, 128, 1);
    Cycle clock = 0;
    for (Vpn v = 0; v < 6; ++v)
        translateFully(eng, v, clock);

    ++clock;
    eng.beginCycle(clock);
    unsigned hits = 0, refused = 0;
    for (Vpn v = 0; v < 6; ++v) {
        const Outcome out = eng.request(req(v, v), clock);
        if (out.kind == Outcome::Kind::Hit)
            ++hits;
        else
            ++refused;
    }
    EXPECT_EQ(hits, 4u) << "four L1 ports";
    EXPECT_EQ(refused, 2u);
}

TEST(MultiLevel, StatusChangeWritesThrough)
{
    vm::PageTable pt;
    tlb::MultiLevelTlb eng(pt, 8, 4, 128, 1);
    Cycle clock = 0;
    translateFully(eng, 3, clock);      // read: sets referenced
    const uint64_t before = eng.stats().statusWrites;

    clock += 2;
    eng.beginCycle(clock);
    // First *write* to the page hits the L1 but must write the dirty
    // bit through to the base TLB.
    const Outcome out = eng.request(req(3, 1, true), clock);
    ASSERT_EQ(out.kind, Outcome::Kind::Hit);
    EXPECT_TRUE(out.shielded);
    EXPECT_EQ(eng.stats().statusWrites, before + 1);

    // Repeat writes cost nothing extra.
    ++clock;
    eng.beginCycle(clock);
    eng.request(req(3, 2, true), clock);
    EXPECT_EQ(eng.stats().statusWrites, before + 1);
}

TEST(MultiLevel, InclusionMaintained)
{
    // Property: after any reference stream, an L1 hit implies the
    // entry is (architecturally) present in L2 — checked by evicting
    // from L2 and observing the L1 does not falsely hit.
    vm::PageTable pt;
    tlb::MultiLevelTlb eng(pt, 4, 4, 8, 1);  // tiny L2 to force evicts
    Rng refs(5);
    Cycle clock = 0;
    for (int i = 0; i < 2000; ++i) {
        eng.beginCycle(clock);
        const Vpn v = refs.below(32);
        const Outcome out = eng.request(req(v), clock);
        if (out.kind == Outcome::Kind::Miss)
            eng.fill(v, clock);
        ++clock;
    }
    // Behavioural check: shielded hits never exceed translations.
    EXPECT_LE(eng.stats().shielded, eng.stats().translations);
    // With a 32-page footprint over an 8-entry L2, misses abound;
    // inclusion means L1 can never satisfy more than L2 could.
    EXPECT_GT(eng.stats().misses, 0u);
}

// ---------------------------------------------------------------
// Pretranslation (P8)
// ---------------------------------------------------------------

TEST(Pretranslation, AttachAndReuse)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 1);
    Cycle clock = 0;
    // First dereference: misses the pretranslation cache AND the
    // base TLB.
    eng.beginCycle(clock);
    EXPECT_EQ(eng.request(req(9, 0), clock).kind, Outcome::Kind::Miss);
    eng.fill(9, clock + 30);
    clock += 31;

    // Retry: base TLB hit, attaches the translation to r5.
    eng.beginCycle(clock);
    const Outcome retry = eng.request(req(9, 1), clock);
    ASSERT_EQ(retry.kind, Outcome::Kind::Hit);
    EXPECT_FALSE(retry.shielded);
    EXPECT_EQ(eng.cachedEntries(), 1u);

    // Re-dereference through the same base register, same page:
    // shielded, zero-latency.
    clock += 2;
    eng.beginCycle(clock);
    const Outcome reuse = eng.request(req(9, 2), clock);
    ASSERT_EQ(reuse.kind, Outcome::Kind::Hit);
    EXPECT_TRUE(reuse.shielded);
    EXPECT_EQ(reuse.ready, clock);
}

TEST(Pretranslation, VpnMismatchGoesToBase)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 1);
    Cycle clock = 0;
    translateFully(eng, 9, clock);
    ++clock;
    eng.beginCycle(clock);
    eng.request(req(9, 1), clock);      // attach page 9 to r5

    // The pointer crossed into page 10: attachment mismatch.
    clock += 2;
    eng.beginCycle(clock);
    const Outcome out = eng.request(req(10, 2), clock);
    EXPECT_EQ(out.kind, Outcome::Kind::Miss);
}

TEST(Pretranslation, MissPaysOneExtraCycle)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 1);
    Cycle clock = 0;
    translateFully(eng, 9, clock);      // base TLB warm

    // r6 has no attachment: pretranslation miss, base TLB hit.
    clock += 2;
    eng.beginCycle(clock);
    const Outcome out = eng.request(req(9, 1, false, 6), clock);
    ASSERT_EQ(out.kind, Outcome::Kind::Hit);
    EXPECT_FALSE(out.shielded);
    EXPECT_EQ(out.ready, clock + 1)
        << "base access happens one cycle after address generation";
}

TEST(Pretranslation, BasePortQueues)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 1);
    Cycle clock = 0;
    translateFully(eng, 9, clock);
    translateFully(eng, 10, clock);

    clock += 2;
    eng.beginCycle(clock);
    const Outcome a = eng.request(req(9, 1, false, 6), clock);
    const Outcome c = eng.request(req(10, 2, false, 7), clock);
    ASSERT_EQ(a.kind, Outcome::Kind::Hit);
    ASSERT_EQ(c.kind, Outcome::Kind::Hit);
    EXPECT_EQ(a.ready, clock + 1);
    EXPECT_EQ(c.ready, clock + 2)
        << "single-ported base TLB serializes the two misses";
}

TEST(Pretranslation, PropagationOnPointerArithmetic)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 1);
    Cycle clock = 0;
    translateFully(eng, 9, clock);
    ++clock;
    eng.beginCycle(clock);
    eng.request(req(9, 1, false, 5), clock);    // attach to r5
    ASSERT_EQ(eng.cachedEntries(), 1u);

    // r7 = r5 + k: the attachment propagates to r7.
    const RegIndex srcs[] = {5};
    eng.noteRegWrite(7, srcs, 1, true);

    clock += 2;
    eng.beginCycle(clock);
    const Outcome out = eng.request(req(9, 2, false, 7), clock);
    ASSERT_EQ(out.kind, Outcome::Kind::Hit);
    EXPECT_TRUE(out.shielded) << "propagated attachment must hit";
}

TEST(Pretranslation, NonPropagatingWriteDropsAttachment)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 1);
    Cycle clock = 0;
    translateFully(eng, 9, clock);
    ++clock;
    eng.beginCycle(clock);
    eng.request(req(9, 1, false, 5), clock);
    ASSERT_EQ(eng.cachedEntries(), 1u);

    // A load into r5 creates a new value: attachment dropped.
    eng.noteRegWrite(5, nullptr, 0, false);
    EXPECT_EQ(eng.cachedEntries(), 0u);

    clock += 2;
    eng.beginCycle(clock);
    const Outcome out = eng.request(req(9, 2, false, 5), clock);
    ASSERT_EQ(out.kind, Outcome::Kind::Hit);
    EXPECT_FALSE(out.shielded)
        << "first dereference of the new value must translate";
}

TEST(Pretranslation, SelfUpdateKeepsAttachment)
{
    // addi r5, r5, 8 (pointer striding) keeps the attachment alive.
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 1);
    Cycle clock = 0;
    translateFully(eng, 9, clock);
    ++clock;
    eng.beginCycle(clock);
    eng.request(req(9, 1, false, 5), clock);

    const RegIndex srcs[] = {5};
    eng.noteRegWrite(5, srcs, 1, true);
    EXPECT_EQ(eng.cachedEntries(), 1u);

    clock += 2;
    eng.beginCycle(clock);
    EXPECT_TRUE(eng.request(req(9, 2, false, 5), clock).shielded);
}

TEST(Pretranslation, OffsetHighBitsSeparateAttachments)
{
    // Loads at displacements with different upper-4 offset bits form
    // distinct pretranslation tags (Section 4.1), so one register can
    // hold multiple attachments.
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 128, 1);
    Cycle clock = 0;
    translateFully(eng, 9, clock);
    translateFully(eng, 20, clock);

    clock += 2;
    eng.beginCycle(clock);
    eng.request(req(9, 1, false, 5, 0), clock);
    ++clock;
    eng.beginCycle(clock);
    eng.request(req(20, 2, false, 5, 3), clock);
    EXPECT_EQ(eng.cachedEntries(), 2u);

    clock += 2;
    eng.beginCycle(clock);
    EXPECT_TRUE(eng.request(req(9, 3, false, 5, 0), clock).shielded);
    ++clock;
    eng.beginCycle(clock);
    EXPECT_TRUE(eng.request(req(20, 4, false, 5, 3), clock).shielded);
}

TEST(Pretranslation, FlushOnBaseEviction)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 8, 4, 1);    // tiny base TLB
    Cycle clock = 0;
    translateFully(eng, 1, clock);
    ++clock;
    eng.beginCycle(clock);
    eng.request(req(1, 1, false, 5), clock);
    ASSERT_GE(eng.cachedEntries(), 1u);

    // Five distinct pages overflow the 4-entry base TLB; every
    // replacement flushes the pretranslation cache, so the old
    // attachment of r5 to page 1 must be gone (the retries re-attach
    // r5 to the newest page, but never to page 1 again).
    for (Vpn v = 2; v <= 6; ++v)
        translateFully(eng, v, clock);
    clock += 8;
    eng.beginCycle(clock);
    const Outcome out = eng.request(req(1, 99, false, 5), clock);
    EXPECT_FALSE(out.kind == Outcome::Kind::Hit && out.shielded)
        << "coherence flush on base-TLB replacement";
}

TEST(Pretranslation, LruEvictionInCache)
{
    vm::PageTable pt;
    tlb::PretranslationTlb eng(pt, 2, 128, 1);  // 2-entry PT cache
    Cycle clock = 0;
    for (Vpn v = 1; v <= 3; ++v)
        translateFully(eng, v, clock);

    // Attach three translations through three registers.
    for (RegIndex r = 5; r <= 7; ++r) {
        clock += 2;
        eng.beginCycle(clock);
        eng.request(req(Vpn(r - 4), r, false, r), clock);
    }
    EXPECT_EQ(eng.cachedEntries(), 2u);
    // r5's attachment (oldest) was evicted.
    clock += 2;
    eng.beginCycle(clock);
    EXPECT_FALSE(eng.request(req(1, 20, false, 5), clock).shielded);
}

// ---------------------------------------------------------------
// Factory / catalogue
// ---------------------------------------------------------------

TEST(DesignFactory, AllDesignsConstructAndTranslate)
{
    for (tlb::Design d : tlb::allDesigns()) {
        vm::PageTable pt;
        auto eng = tlb::makeEngine(d, pt, 7);
        ASSERT_NE(eng, nullptr);
        Cycle clock = 0;
        const Ppn ppn = translateFully(*eng, 123, clock);
        EXPECT_EQ(ppn, pt.find(123)->ppn) << tlb::designName(d);
        EXPECT_GE(eng->stats().translations, 1u);
    }
}

TEST(DesignFactory, NamesRoundTrip)
{
    for (tlb::Design d : tlb::allDesigns()) {
        EXPECT_EQ(tlb::parseDesign(tlb::designName(d)), d);
        EXPECT_FALSE(tlb::designDescription(d).empty());
    }
    EXPECT_EQ(tlb::allDesigns().size(), 15u)
        << "Table 2 has 13 rows, plus the modern PCAX/Victima points";
}

TEST(EngineStats, AccountingInvariants)
{
    // For every design and a random stream: requests = translations +
    // noPort + misses(+piggyback miss riders), and shielded <=
    // translations.
    Rng refs(11);
    for (tlb::Design d : tlb::allDesigns()) {
        vm::PageTable pt;
        auto eng = tlb::makeEngine(d, pt, 3);
        Cycle clock = 0;
        for (int i = 0; i < 3000; ++i) {
            eng->beginCycle(clock);
            for (int r = 0; r < int(refs.below(5)); ++r) {
                const Vpn v = refs.below(200);
                const Outcome out =
                    eng->request(req(v, InstSeq(i * 8 + r),
                                     refs.chance(0.3)),
                                 clock);
                if (out.kind == Outcome::Kind::Miss)
                    eng->fill(v, clock);
            }
            ++clock;
        }
        const tlb::XlateStats &s = eng->stats();
        EXPECT_LE(s.shielded, s.translations) << tlb::designName(d);
        EXPECT_LE(s.baseHits, s.baseAccesses) << tlb::designName(d);
        EXPECT_GE(s.requests, s.translations) << tlb::designName(d);
        EXPECT_GE(s.requests, s.noPort) << tlb::designName(d);
    }
}

} // namespace
