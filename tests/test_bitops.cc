/**
 * @file
 * Unit and property tests for the bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "common/rng.hh"

namespace
{

using namespace hbat;

TEST(BitOps, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(uint64_t(1) << 63));
    EXPECT_FALSE(isPowerOfTwo((uint64_t(1) << 63) + 1));
}

TEST(BitOps, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4096), 12u);
    EXPECT_EQ(floorLog2(uint64_t(1) << 63), 63u);
}

TEST(BitOps, ExactLog2MatchesShift)
{
    for (unsigned s = 0; s < 64; ++s)
        EXPECT_EQ(exactLog2(uint64_t(1) << s), s);
}

TEST(BitOps, Mask)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(16), 0xffffu);
    EXPECT_EQ(mask(64), ~uint64_t(0));
    EXPECT_EQ(mask(65), ~uint64_t(0));
}

TEST(BitOps, BitsExtract)
{
    EXPECT_EQ(bits(0xdeadbeef, 0, 8), 0xefu);
    EXPECT_EQ(bits(0xdeadbeef, 8, 8), 0xbeu);
    EXPECT_EQ(bits(0xdeadbeef, 28, 4), 0xdu);
    EXPECT_EQ(bits(0xffffffffffffffffULL, 0, 64), ~uint64_t(0));
}

TEST(BitOps, InsertBitsRoundTrip)
{
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
        const uint64_t v = rng.next();
        const unsigned first = unsigned(rng.below(56));
        const unsigned count = unsigned(rng.range(1, 63 - first));
        const uint64_t field = rng.next() & mask(count);
        const uint64_t w = insertBits(v, first, count, field);
        EXPECT_EQ(bits(w, first, count), field);
        // Bits outside the field are untouched.
        EXPECT_EQ(w & ~(mask(count) << first),
                  v & ~(mask(count) << first));
    }
}

TEST(BitOps, SignExtend)
{
    EXPECT_EQ(signExtend(0x7fff, 16), 0x7fff);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(0xffff, 16), -1);
    EXPECT_EQ(signExtend(0x1ff, 9), -1);
    EXPECT_EQ(signExtend(0xff, 9), 255);
    EXPECT_EQ(signExtend(uint64_t(-5), 64), -5);
}

TEST(BitOps, XorFoldWidth)
{
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        const uint64_t v = rng.next();
        for (unsigned w = 1; w <= 8; ++w)
            EXPECT_LT(xorFold(v, w), uint64_t(1) << w);
    }
}

TEST(BitOps, XorFoldKnown)
{
    // 0b01_10_11 folded to 2 bits: 01 ^ 10 ^ 11 = 00.
    EXPECT_EQ(xorFold(0b011011, 2), 0u);
    // 0b01_00_11 -> 01 ^ 00 ^ 11 = 10.
    EXPECT_EQ(xorFold(0b010011, 2), 0b10u);
}

TEST(Rng, Deterministic)
{
    Rng a(42), c(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), c.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), c(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == c.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, DeriveSeedStreamsAreIndependent)
{
    // deriveSeed is the sanctioned way to split one master seed into
    // per-structure streams. The old `seed + 0x9e37` idiom left the
    // xorshift64* streams correlated (the generator is F2-linear);
    // splitmix64 must decorrelate both the seeds and the sequences.
    for (uint64_t s : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
        const uint64_t a = deriveSeed(s, 0);
        const uint64_t b = deriveSeed(s, 1);
        EXPECT_NE(a, b);
        // Strong avalanche: roughly half the 64 bits should differ.
        EXPECT_GE(__builtin_popcountll(a ^ b), 16);
    }

    // Positional agreement of two derived streams drawing from a
    // 128-way replacement choice: ~N/128 expected if independent,
    // ~N if correlated the way the old idiom was.
    Rng a(deriveSeed(42, 0)), b(deriveSeed(42, 1));
    int same = 0;
    for (int i = 0; i < 256; ++i)
        same += a.below(128) == b.below(128);
    EXPECT_LT(same, 16);
}

TEST(Rng, BelowInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(4);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        sawLo |= v == 3;
        sawHi |= v == 6;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 4000; ++i) {
        const double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 4000.0, 0.5, 0.05);
}

TEST(Rng, ZeroSeedRemapped)
{
    Rng rng(0);
    EXPECT_NE(rng.next(), 0u);
}

} // namespace
