/**
 * @file
 * Tests for the low-level Emitter: label binding, branch/jump fixups,
 * and li constant expansion.
 */

#include <gtest/gtest.h>

#include "kasm/emitter.hh"

namespace
{

using namespace hbat;
using isa::Inst;
using isa::Opcode;
using kasm::Emitter;
using kasm::Label;

TEST(Emitter, HereAdvances)
{
    Emitter em(0x1000);
    EXPECT_EQ(em.here(), 0x1000u);
    em.emit(Inst{Opcode::Nop, 0, 0, 0, 0});
    EXPECT_EQ(em.here(), 0x1004u);
    EXPECT_EQ(em.size(), 1u);
}

TEST(Emitter, ForwardBranchFixup)
{
    Emitter em(0);
    Label l = em.newLabel();
    em.emitBranch(Opcode::Beq, 1, 2, l);   // index 0
    em.emit(Inst{Opcode::Nop, 0, 0, 0, 0});
    em.bind(l);                            // index 2
    const auto words = em.finalize();
    const Inst b = isa::decode(words[0]);
    // offset = target(2) - (0 + 1) = 1 word.
    EXPECT_EQ(b.imm, 1);
}

TEST(Emitter, BackwardJumpFixup)
{
    Emitter em(0);
    Label l = em.newLabel();
    em.bind(l);                            // index 0
    em.emit(Inst{Opcode::Nop, 0, 0, 0, 0});
    em.emitJump(Opcode::J, l);             // index 1
    const auto words = em.finalize();
    const Inst j = isa::decode(words[1]);
    // offset = 0 - (1 + 1) = -2 words.
    EXPECT_EQ(j.imm, -2);
}

TEST(Emitter, LabelAddr)
{
    Emitter em(0x400000);
    Label l = em.newLabel();
    em.emit(Inst{Opcode::Nop, 0, 0, 0, 0});
    em.bind(l);
    EXPECT_TRUE(em.bound(l));
    EXPECT_EQ(em.labelAddr(l), 0x400004u);
}

TEST(EmitterDeath, UnboundLabelAtFinalize)
{
    Emitter em(0);
    Label l = em.newLabel();
    em.emitJump(Opcode::J, l);
    EXPECT_DEATH(em.finalize(), "unbound-label");
}

TEST(EmitterDeath, DoubleBind)
{
    Emitter em(0);
    Label l = em.newLabel();
    em.bind(l);
    EXPECT_DEATH(em.bind(l), "bound twice");
}

struct LiCase
{
    uint32_t value;
    size_t instructions;
};

class LiExpansion : public ::testing::TestWithParam<LiCase>
{
};

TEST_P(LiExpansion, SizeAndRoundTrip)
{
    const LiCase c = GetParam();
    Emitter em(0);
    em.li(5, c.value);
    const auto words = em.finalize();
    ASSERT_EQ(words.size(), c.instructions);

    // Interpret the expansion manually.
    uint32_t r5 = 0;
    for (uint32_t w : words) {
        const Inst inst = isa::decode(w);
        switch (inst.op) {
          case Opcode::Addi:
            r5 = uint32_t(inst.imm);
            break;
          case Opcode::Lui:
            r5 = uint32_t(inst.imm) << 16;
            break;
          case Opcode::Ori:
            r5 |= uint32_t(inst.imm);
            break;
          default:
            FAIL() << "unexpected op in li expansion";
        }
    }
    EXPECT_EQ(r5, c.value);
}

INSTANTIATE_TEST_SUITE_P(
    Values, LiExpansion,
    ::testing::Values(LiCase{0, 1}, LiCase{1, 1}, LiCase{32767, 1},
                      LiCase{uint32_t(-32768), 1}, LiCase{32768, 2},
                      LiCase{0x10000, 1},   // LUI only (low half 0)
                      LiCase{0xdead0000, 1}, LiCase{0xdeadbeef, 2},
                      LiCase{0xffffffff, 1},    // fits addi -1
                      LiCase{0x00408000, 2}));

} // namespace
