/**
 * @file
 * Timing-pipeline tests: latency/bandwidth properties of the 8-way
 * out-of-order and in-order models — load-use latency, cache-port and
 * issue-width limits, misprediction penalties, the 30-cycle TLB miss
 * handler, store-to-load forwarding, and model-level orderings.
 */

#include <gtest/gtest.h>

#include "cpu/pipeline.hh"
#include "kasm/program_builder.hh"
#include "sim/simulator.hh"
#include "tlb/design.hh"
#include "tlb/multiported.hh"
#include "vm/address_space.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;
using kasm::ProgramBuilder;
using kasm::VLabel;
using kasm::VReg;

struct RunResult
{
    cpu::PipeStats stats;
};

RunResult
run(const kasm::Program &prog, bool in_order = false,
    tlb::Design design = tlb::Design::T4)
{
    vm::AddressSpace space;
    space.load(prog);
    cpu::FuncCore core(space, prog);
    auto eng = tlb::makeEngine(design, space.pageTable(), 1);
    cpu::PipeConfig cfg;
    cfg.inOrder = in_order;
    cpu::Pipeline pipe(cfg, core, *eng, space.params());
    return RunResult{pipe.run()};
}

/** A tight loop of @p body_reps independent adds. */
kasm::Program
aluLoop(int body_reps, uint32_t iters)
{
    ProgramBuilder pb("aluloop");
    auto &b = pb.code();
    VReg acc[8];
    for (auto &a : acc) {
        a = b.vint();
        b.li(a, 1);
    }
    VReg i = b.vint();
    b.forLoop(i, iters, [&] {
        for (int k = 0; k < body_reps; ++k)
            b.add(acc[k % 8], acc[k % 8], i);
    });
    b.halt();
    return pb.link();
}

TEST(Pipeline, WideIssueOnIndependentWork)
{
    const RunResult r = run(aluLoop(16, 400));
    EXPECT_GT(r.stats.ipc(), 5.0) << "8-wide core on parallel adds";
    EXPECT_LE(r.stats.ipc(), 8.0);
}

TEST(Pipeline, SerialChainRunsAtOnePerCycle)
{
    // A fully serial add chain cannot exceed IPC ~1 + loop overhead.
    ProgramBuilder pb("chain");
    auto &b = pb.code();
    VReg a = b.vint(), i = b.vint();
    b.li(a, 0);
    b.forLoop(i, 500, [&] {
        for (int k = 0; k < 16; ++k)
            b.add(a, a, i);
    });
    b.halt();
    const RunResult r = run(pb.link());
    EXPECT_LT(r.stats.ipc(), 1.5);
    EXPECT_GT(r.stats.ipc(), 0.8);
}

TEST(Pipeline, LoadUseLatencyIsTwoCycles)
{
    // Serial pointer-chase through a one-page cyclic list measures
    // the 2-cycle load-use latency (plus ~nothing else, all hits).
    ProgramBuilder pb("chase");
    auto &b = pb.code();
    const VAddr buf = pb.space(4096, 8);

    // Build a 4-element cycle in memory at runtime.
    VReg p = b.vint(), t = b.vint();
    b.li(p, uint32_t(buf));
    for (int k = 0; k < 4; ++k) {
        b.li(t, uint32_t(buf + ((k + 1) % 4) * 64));
        b.sw(t, p, int32_t(k * 64));
    }
    VReg i = b.vint();
    VReg node = b.vint();
    b.li(node, uint32_t(buf));
    b.forLoop(i, 300, [&] { b.lw(node, node, 0); });
    b.halt();

    const RunResult r = run(pb.link());
    // Each iteration: lw (2-cycle chain) dominates; addi+bge+j overlap.
    const double cyclesPerIter = double(r.stats.cycles) / 300.0;
    EXPECT_GE(cyclesPerIter, 2.0);
    EXPECT_LE(cyclesPerIter, 3.2);
}

TEST(Pipeline, CachePortsBoundLoadBandwidth)
{
    // 8 independent loads per iteration, all cache hits: limited by
    // the 4 cache ports, not by issue width.
    ProgramBuilder pb("ldbw");
    auto &b = pb.code();
    const VAddr buf = pb.space(4096, 8);
    VReg base = b.vint(), i = b.vint();
    VReg d[8];
    for (auto &x : d)
        x = b.vint();
    b.li(base, uint32_t(buf));
    b.forLoop(i, 400, [&] {
        for (int k = 0; k < 8; ++k)
            b.lw(d[k], base, k * 4);
    });
    b.halt();
    const RunResult r = run(pb.link());
    const double loadsPerCycle =
        double(r.stats.committedLoads) / double(r.stats.cycles);
    EXPECT_GT(loadsPerCycle, 2.5);
    EXPECT_LE(loadsPerCycle, 4.0) << "four D-cache ports";
}

TEST(Pipeline, MispredictionCostsPipelineRefill)
{
    // A data-dependent unpredictable branch per iteration vs. a
    // perfectly biased one.
    auto build = [](bool random_branch) {
        ProgramBuilder pb("br");
        auto &b = pb.code();
        VReg i = b.vint(), seed = b.vint(), t = b.vint();
        VReg sum = b.vint();
        b.li(seed, 12345);
        b.li(sum, 0);
        b.forLoop(i, 2000, [&] {
            VLabel skip = pb.code().label();
            if (random_branch) {
                VReg k = pb.code().vint();
                b.li(k, 1103515245u);
                b.mul(seed, seed, k);
                b.addi(seed, seed, 12345);
                b.srli(t, seed, 16);
                b.andi(t, t, 1);
            } else {
                b.li(t, 0);
            }
            b.bnez(t, skip);
            b.addi(sum, sum, 1);
            b.bind(skip);
            b.addi(sum, sum, 2);
        });
        b.halt();
        return pb.link();
    };
    const RunResult biased = run(build(false));
    const RunResult random = run(build(true));
    const double biasedRate = biased.stats.predictor.rate();
    const double randomRate = random.stats.predictor.rate();
    EXPECT_GT(biasedRate, 0.98);
    EXPECT_LT(randomRate, 0.80);
    EXPECT_GT(random.stats.mispredicts, 400u);
}

TEST(Pipeline, TlbMissCostsHandlerLatency)
{
    // Touch 64 distinct pages twice. First touches must each pay the
    // ~30-cycle handler; second touches hit the 128-entry TLB.
    ProgramBuilder pb("tlbmiss");
    auto &b = pb.code();
    const VAddr buf = pb.space(64 * 4096, 4096);
    VReg p = b.vint(), v = b.vint(), i = b.vint();
    for (int pass = 0; pass < 2; ++pass) {
        b.li(p, uint32_t(buf));
        b.forLoop(i, 64, [&] {
            b.lw(v, p, 0);
            b.addk(p, p, 4096);
        });
    }
    b.halt();
    const RunResult r = run(pb.link());
    EXPECT_EQ(r.stats.tlbWalks, 64u);
    EXPECT_GT(r.stats.cycles, 64u * 30u);
}

TEST(Pipeline, StoreToLoadForwardingBeatsCacheMiss)
{
    // A load that reads the exact bytes of an in-flight store
    // completes without waiting for the store's block to be fetched.
    ProgramBuilder pb("fwd");
    auto &b = pb.code();
    const VAddr buf = pb.space(1u << 20, 64);
    VReg p = b.vint(), v = b.vint(), w = b.vint(), i = b.vint();
    b.li(p, uint32_t(buf));
    b.li(v, 5);
    b.forLoop(i, 200, [&] {
        b.sw(v, p, 0);
        b.lw(w, p, 0);          // exact-match forward
        b.add(v, w, i);
        b.addi(p, p, 64);       // fresh (cold) block each time
    });
    b.halt();
    const RunResult r = run(pb.link());
    // Forwarding keeps the dependent chain short even though every
    // block is a cache miss at commit time.
    EXPECT_GT(r.stats.ipc(), 0.8);
}

TEST(Pipeline, InOrderNeverBeatsOutOfOrder)
{
    for (const char *kind : {"alu", "mem"}) {
        kasm::Program prog = [&] {
            if (std::string(kind) == "alu")
                return aluLoop(12, 300);
            ProgramBuilder pb("mem");
            auto &b = pb.code();
            const VAddr buf = pb.space(1u << 16, 64);
            VReg base = b.vint(), i = b.vint(), t = b.vint();
            b.li(base, uint32_t(buf));
            b.forLoop(i, 300, [&] {
                b.lw(t, base, 0);
                b.addi(t, t, 1);
                b.sw(t, base, 4);
                b.lw(t, base, 64);
                b.sw(t, base, 128);
            });
            b.halt();
            return pb.link();
        }();
        const RunResult ooo = run(prog, false);
        const RunResult ino = run(prog, true);
        EXPECT_LE(ooo.stats.cycles, ino.stats.cycles) << kind;
    }
}

TEST(Pipeline, InOrderStallsOnHazards)
{
    // Dependent FP multiplies: in-order must be much slower than the
    // issue-width bound.
    ProgramBuilder pb("fpchain");
    auto &b = pb.code();
    VReg x = b.vfp(), y = b.vfp();
    VReg i = b.vint();
    b.fconst(x, 1.0001);
    b.fconst(y, 1.0);
    b.forLoop(i, 300, [&] {
        b.fmul(y, y, x);
        b.fmul(y, y, x);
    });
    b.halt();
    const RunResult r = run(pb.link(), true);
    // Two dependent 4-cycle multiplies per iteration: >= 8 cyc/iter.
    EXPECT_GT(double(r.stats.cycles) / 300.0, 7.0);
}

TEST(Pipeline, SingleTlbPortThrottlesParallelLoads)
{
    // The same load-parallel program must be slower under T1 than T4
    // and the engine must report port conflicts.
    ProgramBuilder pb("t1");
    auto &b = pb.code();
    const VAddr buf = pb.space(1u << 16, 64);
    VReg base = b.vint(), i = b.vint();
    VReg d[4];
    for (auto &x : d)
        x = b.vint();
    b.li(base, uint32_t(buf));
    b.forLoop(i, 500, [&] {
        for (int k = 0; k < 4; ++k)
            b.lw(d[k], base, k * 256);
    });
    b.halt();
    const kasm::Program prog = pb.link();

    const RunResult t4 = run(prog, false, tlb::Design::T4);
    const RunResult t1 = run(prog, false, tlb::Design::T1);
    EXPECT_LT(t4.stats.cycles, t1.stats.cycles);
    EXPECT_GT(t1.stats.xlate.noPort, 100u);
    EXPECT_EQ(t4.stats.xlate.noPort, 0u) << "4 ports never conflict";
}

TEST(Pipeline, CommitIsInOrderAndBounded)
{
    const RunResult r = run(aluLoop(16, 200));
    // Committed counts match the functional stream exactly.
    EXPECT_GT(r.stats.committed, 200u * 16u);
    EXPECT_LE(double(r.stats.committed) / double(r.stats.cycles), 8.0);
}

TEST(Pipeline, HaltDrainsCleanly)
{
    ProgramBuilder pb("tiny");
    pb.code().halt();
    const RunResult r = run(pb.link());
    EXPECT_EQ(r.stats.committed, 1u);
    EXPECT_GT(r.stats.cycles, 0u);
    EXPECT_LT(r.stats.cycles, 50u);
}

TEST(Pipeline, StatsAreDeterministic)
{
    const kasm::Program prog = aluLoop(10, 100);
    const RunResult a = run(prog);
    const RunResult b2 = run(prog);
    EXPECT_EQ(a.stats.cycles, b2.stats.cycles);
    EXPECT_EQ(a.stats.committed, b2.stats.committed);
    EXPECT_EQ(a.stats.issuedOps, b2.stats.issuedOps);
}

/** A pointer-chase (serial loads) mixed with a TLB-stressing stride. */
kasm::Program
memStress()
{
    ProgramBuilder pb("memstress");
    auto &b = pb.code();
    const VAddr buf = pb.space(64 * 4096, 8);
    VReg base = b.vint(), i = b.vint(), d = b.vint();
    b.li(base, uint32_t(buf));
    b.forLoop(i, 300, [&] {
        // Page-striding loads (TLB misses) plus a serial chain.
        for (int k = 0; k < 4; ++k)
            b.lw(d, base, int32_t(k * 4096));
        b.add(base, base, d);
        b.sub(base, base, d);
    });
    b.halt();
    return pb.link();
}

TEST(Pipeline, ZeroIssueCyclesFullyClassified)
{
    // Every cycle that issues nothing must be attributed to exactly
    // one cause: idleEmpty + idleSrcWait + idleFuBusy + idleLoadOrder
    // + idleWalk + idleOther == zeroIssueCycles. Exercise programs
    // that stress different causes, both issue disciplines, and a
    // port-starved design (the pipeline also asserts this internally;
    // the EXPECTs document and pin the contract).
    const kasm::Program progs[] = {aluLoop(1, 300), memStress()};
    for (const kasm::Program &prog : progs) {
        for (const bool in_order : {false, true}) {
            for (const tlb::Design d :
                 {tlb::Design::T4, tlb::Design::T1}) {
                const RunResult r = run(prog, in_order, d);
                EXPECT_EQ(r.stats.idleSum(), r.stats.zeroIssueCycles)
                    << prog.name << (in_order ? " in-order" : " ooo");
                EXPECT_GT(r.stats.zeroIssueCycles, 0u)
                    << "stress programs must have some idle cycles";
                EXPECT_LE(r.stats.zeroIssueCycles, r.stats.cycles);
            }
        }
    }
}

/**
 * The idle-skip contract (pipeline.hh): every run with skipping on
 * reports the exact statistics of the same run with skipping off.
 * Only the skip counters themselves (pipe.skipped_cycles and the
 * pipe.skip_length histogram, zero with skipping off) may differ.
 */
void
expectSkipInvariant(const kasm::Program &prog, sim::SimConfig cfg)
{
    cfg.idleSkip = false;
    const sim::SimResult ref = sim::simulate(prog, cfg);
    cfg.idleSkip = true;
    const sim::SimResult fast = sim::simulate(prog, cfg);

    EXPECT_GT(fast.pipe.skippedCycles, 0u)
        << "stress programs must have skippable idle spans";
    ASSERT_EQ(ref.stats.size(), fast.stats.size());
    for (size_t i = 0; i < ref.stats.size(); ++i) {
        const obs::StatValue &a = ref.stats[i];
        const obs::StatValue &b = fast.stats[i];
        SCOPED_TRACE(a.name);
        EXPECT_EQ(a.name, b.name);
        if (a.name == "pipe.skipped_cycles" ||
            a.name == "pipe.skip_length") {
            continue;
        }
        EXPECT_EQ(a.value, b.value);
        EXPECT_EQ(a.values, b.values);
        EXPECT_EQ(a.samples, b.samples);
        EXPECT_EQ(a.mean, b.mean);
    }
}

TEST(Pipeline, IdleSkipIsStatisticsInvariantAcrossDesigns)
{
    // Every design, two programs with different idle profiles
    // (espresso: branchy integer; tomcatv: FP with long memory
    // stalls, the heaviest skip user).
    for (const char *name : {"espresso", "tomcatv"}) {
        const kasm::Program prog =
            workloads::build(name, kasm::RegBudget{32, 32}, 0.02);
        for (const tlb::Design d : tlb::allDesigns()) {
            SCOPED_TRACE(std::string(name) + " " + tlb::designName(d));
            sim::SimConfig cfg;
            cfg.design = d;
            expectSkipInvariant(prog, cfg);
        }
    }
}

TEST(Pipeline, IdleSkipIsStatisticsInvariantInOrderAnd8k)
{
    // The machine axes the design sweep above holds fixed: the
    // in-order issue discipline (Figure 7) and 8 KB pages (Figure 8).
    const kasm::Program prog =
        workloads::build("tomcatv", kasm::RegBudget{32, 32}, 0.02);
    for (const tlb::Design d : {tlb::Design::T4, tlb::Design::M8}) {
        SCOPED_TRACE(tlb::designName(d));
        sim::SimConfig ino;
        ino.design = d;
        ino.inOrder = true;
        expectSkipInvariant(prog, ino);

        sim::SimConfig big;
        big.design = d;
        big.pageBytes = 8192;
        expectSkipInvariant(prog, big);
    }
}

} // namespace
