/**
 * @file
 * Cache timing-model tests: hit/miss classification, LRU within a
 * set, write-allocate/write-back behaviour, MSHR-style fill merging,
 * and geometry checks.
 */

#include <gtest/gtest.h>

#include "cache/cache_model.hh"

namespace
{

using namespace hbat;
using cache::CacheAccess;
using cache::CacheConfig;
using cache::CacheModel;

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.sizeBytes = 1024;   // 16 sets x 2 ways x 32 B
    cfg.assoc = 2;
    cfg.blockBytes = 32;
    cfg.missLatency = 6;
    return cfg;
}

TEST(Cache, ColdMissThenHit)
{
    CacheModel c(smallCache());
    const CacheAccess miss = c.access(0x1000, false, 10);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.ready, 16u);

    const CacheAccess hit = c.access(0x1010, false, 20);
    EXPECT_TRUE(hit.hit) << "same block";
    EXPECT_EQ(hit.ready, 20u);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, MshrMergeWhileFillInFlight)
{
    CacheModel c(smallCache());
    const CacheAccess miss = c.access(0x1000, false, 10);
    EXPECT_EQ(miss.ready, 16u);
    // Another access to the same block before the fill completes
    // merges with the outstanding fill.
    const CacheAccess merge = c.access(0x1004, false, 12);
    EXPECT_FALSE(merge.hit);
    EXPECT_EQ(merge.ready, 16u);
    EXPECT_EQ(c.stats().mshrMerges, 1u);
    // After the fill, it's a plain hit.
    EXPECT_TRUE(c.access(0x1008, false, 16).hit);
}

TEST(Cache, LruWithinSet)
{
    CacheModel c(smallCache());
    // Three blocks mapping to the same set (stride = 16 sets x 32 B).
    const PAddr a = 0x0000, b2 = 0x0200, d = 0x0400;
    c.access(a, false, 1);
    c.access(b2, false, 2);
    c.access(a, false, 3);      // refresh a; b2 becomes LRU
    c.access(d, false, 4);      // evicts b2
    EXPECT_TRUE(c.contains(a));
    EXPECT_TRUE(c.contains(d));
    EXPECT_FALSE(c.contains(b2));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    CacheModel c(smallCache());
    c.access(0x0000, true, 1);      // dirty
    c.access(0x0200, false, 2);     // clean, same set
    c.access(0x0400, false, 10);    // evicts dirty 0x0000
    c.access(0x0600, false, 11);    // evicts clean 0x0200
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, WriteAllocates)
{
    CacheModel c(smallCache());
    const CacheAccess w = c.access(0x3000, true, 5);
    EXPECT_FALSE(w.hit);
    EXPECT_TRUE(c.contains(0x3000));
    // A later read hits the allocated (and filled) block.
    EXPECT_TRUE(c.access(0x3000, false, 20).hit);
}

TEST(Cache, FlushEmptiesEverything)
{
    CacheModel c(smallCache());
    c.access(0x1000, false, 1);
    c.access(0x2000, true, 2);
    c.flush();
    EXPECT_FALSE(c.contains(0x1000));
    EXPECT_FALSE(c.contains(0x2000));
    EXPECT_FALSE(c.access(0x1000, false, 30).hit);
}

TEST(Cache, Table1Geometry)
{
    // The baseline 32 KB 2-way 32 B cache has 512 sets.
    CacheConfig cfg;
    CacheModel c(cfg);
    // Fill one set with two blocks; a third evicts.
    const PAddr stride = 512 * 32;
    c.access(0, false, 1);
    c.access(stride, false, 2);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(stride));
    c.access(2 * stride, false, 3);
    EXPECT_FALSE(c.contains(0)) << "LRU eviction in the set";
}

class CacheSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheSweep, SequentialStreamMissRate)
{
    // A pure sequential byte stream misses exactly once per block.
    CacheConfig cfg;
    cfg.blockBytes = GetParam();
    CacheModel c(cfg);
    const unsigned accesses = 4096;
    for (unsigned i = 0; i < accesses; ++i)
        c.access(PAddr(i) * 4, false, i);
    const uint64_t expected = accesses * 4 / cfg.blockBytes;
    EXPECT_EQ(c.stats().misses, expected);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, CacheSweep,
                         ::testing::Values(16u, 32u, 64u));

} // namespace
