/**
 * @file
 * Tests for the fully-associative TlbArray building block: LRU
 * exactness, random-replacement determinism, invalidation, and the
 * LRU inclusion (stack) property that the multi-level designs rely on.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tlb/tlb_array.hh"

namespace
{

using namespace hbat;
using tlb::Replacement;
using tlb::TlbArray;

TEST(TlbArray, HitAfterInsert)
{
    TlbArray t(4, Replacement::Lru);
    EXPECT_FALSE(t.lookup(7, 1));
    t.insert(7, 1);
    EXPECT_TRUE(t.lookup(7, 2));
    EXPECT_EQ(t.occupancy(), 1u);
}

TEST(TlbArray, LruEvictsOldest)
{
    TlbArray t(2, Replacement::Lru);
    t.insert(1, 1);
    t.insert(2, 2);
    // Touch 1 so 2 becomes LRU.
    EXPECT_TRUE(t.lookup(1, 3));
    auto evicted = t.insert(3, 4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 2u);
    EXPECT_TRUE(t.contains(1));
    EXPECT_TRUE(t.contains(3));
    EXPECT_FALSE(t.contains(2));
}

TEST(TlbArray, InsertExistingRefreshesLru)
{
    TlbArray t(2, Replacement::Lru);
    t.insert(1, 1);
    t.insert(2, 2);
    // Re-inserting 1 refreshes it; 2 is now the LRU victim.
    EXPECT_FALSE(t.insert(1, 3).has_value());
    auto evicted = t.insert(3, 4);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(*evicted, 2u);
}

TEST(TlbArray, NoEvictionWhileNotFull)
{
    TlbArray t(8, Replacement::Random);
    for (Vpn v = 0; v < 8; ++v)
        EXPECT_FALSE(t.insert(v, v).has_value());
    EXPECT_EQ(t.occupancy(), 8u);
    EXPECT_TRUE(t.insert(100, 9).has_value());
}

TEST(TlbArray, RandomReplacementDeterministic)
{
    auto run = [](uint64_t seed) {
        TlbArray t(16, Replacement::Random, seed);
        Rng refs(99);
        uint64_t hits = 0;
        for (Cycle c = 0; c < 5000; ++c) {
            const Vpn v = refs.below(64);
            if (t.lookup(v, c))
                ++hits;
            else
                t.insert(v, c);
        }
        return hits;
    };
    EXPECT_EQ(run(5), run(5));
    // Different replacement seeds give (almost surely) different hits.
    EXPECT_NE(run(5), run(6));
}

TEST(TlbArray, InvalidateAndFlush)
{
    TlbArray t(4, Replacement::Lru);
    t.insert(1, 1);
    t.insert(2, 1);
    EXPECT_TRUE(t.invalidate(1));
    EXPECT_FALSE(t.invalidate(1));
    EXPECT_FALSE(t.contains(1));
    EXPECT_TRUE(t.contains(2));
    t.flush();
    EXPECT_FALSE(t.contains(2));
    EXPECT_EQ(t.occupancy(), 0u);
}

TEST(TlbArray, InvalidSlotReusedBeforeEviction)
{
    TlbArray t(2, Replacement::Lru);
    t.insert(1, 1);
    t.insert(2, 2);
    t.invalidate(1);
    // The freed slot must absorb the next insert without eviction.
    EXPECT_FALSE(t.insert(3, 3).has_value());
    EXPECT_TRUE(t.contains(2));
    EXPECT_TRUE(t.contains(3));
}

/**
 * LRU is a stack algorithm: for any reference stream, the contents of
 * a k-entry LRU TLB are a subset of a (k+m)-entry LRU TLB, so hits
 * are monotonic in capacity. The multi-level results (M4 <= M8 <= M16
 * shielding) rest on this.
 */
TEST(TlbArray, LruStackProperty)
{
    const unsigned sizes[] = {4, 8, 16, 32};
    std::vector<TlbArray> tlbs;
    for (unsigned s : sizes)
        tlbs.emplace_back(s, Replacement::Lru);
    std::vector<uint64_t> hits(4, 0);

    Rng refs(1234);
    Vpn hot = 0;
    for (Cycle c = 0; c < 20000; ++c) {
        // Mixture of a drifting hot set and uniform noise.
        if (refs.chance(0.7))
            hot = (hot & ~7u) | refs.below(8);
        else
            hot = refs.below(256);
        if (c % 512 == 0)
            hot += 8;
        for (size_t t = 0; t < tlbs.size(); ++t) {
            if (tlbs[t].lookup(hot, c))
                ++hits[t];
            else
                tlbs[t].insert(hot, c);
        }
    }
    EXPECT_LE(hits[0], hits[1]);
    EXPECT_LE(hits[1], hits[2]);
    EXPECT_LE(hits[2], hits[3]);
}

class TlbArraySizes : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(TlbArraySizes, OccupancyNeverExceedsCapacity)
{
    TlbArray t(GetParam(), Replacement::Random, 3);
    Rng refs(7);
    for (Cycle c = 0; c < 2000; ++c) {
        const Vpn v = refs.below(500);
        if (!t.lookup(v, c))
            t.insert(v, c);
        ASSERT_LE(t.occupancy(), t.capacity());
    }
    EXPECT_EQ(t.occupancy(), t.capacity());
}

INSTANTIATE_TEST_SUITE_P(Capacities, TlbArraySizes,
                         ::testing::Values(1, 2, 4, 16, 128));

} // namespace
