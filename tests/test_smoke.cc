/**
 * @file
 * End-to-end smoke tests: build small programs through the full kasm
 * pipeline, run them on the functional core and on the timing
 * pipeline with several translation designs, and check architectural
 * results and basic timing sanity.
 */

#include <gtest/gtest.h>

#include "cpu/func_core.hh"
#include "kasm/program_builder.hh"
#include "sim/simulator.hh"
#include "vm/address_space.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;

/** Sum the integers 1..n into memory and halt. */
kasm::Program
sumProgram(uint32_t n, const kasm::RegBudget &budget)
{
    kasm::ProgramBuilder pb("sum");
    auto &b = pb.code();
    const VAddr out = pb.space(16, 8);

    kasm::VReg i = b.vint(), acc = b.vint(), p = b.vint();
    b.li(acc, 0);
    b.li(p, uint32_t(out));
    b.forLoop(i, n, [&] { b.add(acc, acc, i); });
    b.sw(acc, p, 0);
    b.halt();
    return pb.link(budget);
}

uint32_t
runSum(uint32_t n, const kasm::RegBudget &budget)
{
    kasm::Program prog = sumProgram(n, budget);
    vm::AddressSpace space;
    space.load(prog);
    cpu::FuncCore core(space, prog);
    while (!core.halted())
        core.step();
    // The program's single space() allocation sits at the bss base.
    return space.read32(kasm::kBssBase);
}

TEST(Smoke, FunctionalSumFullRegisters)
{
    EXPECT_EQ(runSum(100, kasm::RegBudget{32, 32}), 4950u);
}

TEST(Smoke, FunctionalSumFewRegisters)
{
    // The register allocator must preserve semantics under spilling.
    EXPECT_EQ(runSum(100, kasm::RegBudget{8, 8}), 4950u);
}

TEST(Smoke, TimedRunEveryDesign)
{
    kasm::Program prog = sumProgram(500, kasm::RegBudget{32, 32});
    for (tlb::Design d : tlb::allDesigns()) {
        sim::SimConfig cfg;
        cfg.design = d;
        const sim::SimResult res = sim::simulate(prog, cfg);
        EXPECT_GT(res.pipe.committed, 1500u) << tlb::designName(d);
        EXPECT_GT(res.pipe.cycles, 0u) << tlb::designName(d);
        EXPECT_LE(res.ipc(), 8.0) << tlb::designName(d);
    }
}

TEST(Smoke, CompressWorkloadRuns)
{
    kasm::Program prog =
        workloads::build("compress", kasm::RegBudget{32, 32}, 0.02);
    sim::SimConfig cfg;
    const sim::SimResult res = sim::simulate(prog, cfg);
    EXPECT_GT(res.func.loads, 100u);
    EXPECT_GT(res.func.stores, 50u);
    EXPECT_GT(res.ipc(), 0.1);
}

TEST(Smoke, TomcatvWorkloadRuns)
{
    kasm::Program prog =
        workloads::build("tomcatv", kasm::RegBudget{32, 32}, 0.05);
    sim::SimConfig cfg;
    const sim::SimResult res = sim::simulate(prog, cfg);
    EXPECT_GT(res.func.fpOps, 1000u);
    EXPECT_GT(res.ipc(), 0.1);
}

TEST(Smoke, InOrderModelRuns)
{
    kasm::Program prog = sumProgram(500, kasm::RegBudget{32, 32});
    sim::SimConfig cfg;
    cfg.inOrder = true;
    const sim::SimResult res = sim::simulate(prog, cfg);
    EXPECT_GT(res.pipe.committed, 1500u);

    sim::SimConfig ooo;
    const sim::SimResult res2 = sim::simulate(prog, ooo);
    // Out-of-order should never be slower than in-order here.
    EXPECT_LE(res2.pipe.cycles, res.pipe.cycles);
}

} // namespace
