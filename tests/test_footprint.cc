/**
 * @file
 * Tests for the loop/stride analysis and the translation-footprint
 * analyzer (src/verify/stride.*, src/verify/footprint.*).
 *
 * Negative programs are hand-assembled so each footprint diagnostic
 * provably fires; workload-level tests pin the analyzer's verdicts on
 * the real programs the paper sweeps (compress's hash probes exceed
 * every Table 2 reach, tomcatv's nested stencil is fully static).
 */

#include <gtest/gtest.h>

#include "tlb/design.hh"
#include "verify/footprint.hh"
#include "verify/verifier.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;
using isa::Inst;
using isa::Opcode;
using verify::Diag;
using verify::RefPattern;
using verify::Severity;

constexpr RegIndex zero = isa::reg::zero;

/** A loadable program from hand-assembled instructions. */
kasm::Program
progOf(const std::vector<Inst> &insts)
{
    kasm::Program p;
    p.name = "test";
    for (const Inst &i : insts)
        p.text.push_back(isa::encode(i));
    return p;
}

/** Analyze @p prog end to end at 4 KB pages. */
verify::ProgramFootprint
footprintOf(const kasm::Program &prog)
{
    verify::Report scratch;
    const verify::Analysis a = verify::analyzeProgram(prog, scratch);
    return verify::analyzeFootprint(prog, a, 4096);
}

/**
 * for (i = 0; i < 256; ++i) *p++ = i;   (word stores, base r3)
 * One loop, exact trip count, two induction variables, one strided
 * store covering exactly one page.
 */
kasm::Program
countedStoreLoop()
{
    return progOf({
        Inst{Opcode::Addi, 2, zero, 0, 0},      // i = 0
        Inst{Opcode::Lui, 3, 0, 0, 0x1000},     // p = 0x10000000
        Inst{Opcode::Addi, 4, zero, 0, 256},    // n = 256
        Inst{Opcode::Sw, 2, 3, 0, 0},           // loop: *p = i
        Inst{Opcode::Addi, 3, 3, 0, 4},         // p += 4
        Inst{Opcode::Addi, 2, 2, 0, 1},         // ++i
        Inst{Opcode::Blt, 0, 2, 4, -4},         // i < n -> loop
        Inst{Opcode::Halt, 0, 0, 0, 0},
    });
}

TEST(Stride, CountedLoopIsFullyStatic)
{
    const verify::ProgramFootprint fp =
        footprintOf(countedStoreLoop());

    ASSERT_EQ(fp.strides.loops.size(), 1u);
    EXPECT_EQ(fp.strides.loops[0].trips, 256u);
    EXPECT_EQ(fp.strides.loops[0].depth, 1u);

    // Both i and p are induction variables of the loop.
    ASSERT_EQ(fp.strides.ivs.size(), 1u);
    int64_t stepOf[32] = {};
    for (const verify::IndVar &iv : fp.strides.ivs[0])
        stepOf[iv.reg] = iv.step;
    EXPECT_EQ(stepOf[2], 1);
    EXPECT_EQ(stepOf[3], 4);

    ASSERT_EQ(fp.refs.size(), 1u);
    const verify::RefFootprint &r = fp.refs[0];
    EXPECT_TRUE(r.isStore);
    EXPECT_EQ(r.pattern, RefPattern::Strided);
    EXPECT_EQ(r.stride, 4);
    EXPECT_TRUE(r.spanKnown);
    EXPECT_EQ(r.spanPages, 1u);         // 256 * 4 bytes = one page
    EXPECT_EQ(r.estAccesses, 256u);
    EXPECT_TRUE(r.estExact);
    EXPECT_DOUBLE_EQ(r.pageRun, 1024.0);    // 4096 / 4

    EXPECT_TRUE(fp.estPagesExact);

    // Nothing to complain about: bounded trips, strided access.
    verify::Report report;
    verify::lintProgramFootprint(fp, report);
    EXPECT_TRUE(report.diags.empty());
}

TEST(Footprint, PageStrideLoopExceedsReach)
{
    // 200 iterations x 4096-byte stride = 200 pages, over the 128
    // pages any Table 2 base TLB can map.
    const verify::ProgramFootprint fp = footprintOf(progOf({
        Inst{Opcode::Addi, 2, zero, 0, 0},
        Inst{Opcode::Lui, 3, 0, 0, 0x1000},
        Inst{Opcode::Addi, 4, zero, 0, 200},
        Inst{Opcode::Sw, 2, 3, 0, 0},           // loop: *p = i
        Inst{Opcode::Addi, 3, 3, 0, 4096},      // p += page
        Inst{Opcode::Addi, 2, 2, 0, 1},
        Inst{Opcode::Blt, 0, 2, 4, -4},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    ASSERT_EQ(fp.refs.size(), 1u);
    EXPECT_EQ(fp.refs[0].spanPages, 200u);
    EXPECT_GE(fp.estPages, 201u);       // + text + stack

    verify::Report report;
    verify::lintDesignFootprint(
        fp, tlb::designParams(tlb::Design::T4), "T4", report);
    EXPECT_EQ(report.countOf(Diag::FootprintExceedsReach), 1u);
    // Info only: the observation must never fail a warning gate.
    EXPECT_TRUE(report.clean(Severity::Warning));
}

TEST(Footprint, SmallLoopFitsReach)
{
    verify::Report report;
    verify::lintDesignFootprint(
        footprintOf(countedStoreLoop()),
        tlb::designParams(tlb::Design::T4), "T4", report);
    EXPECT_EQ(report.countOf(Diag::FootprintExceedsReach), 0u);
}

TEST(Footprint, UnboundedInductionFires)
{
    // The trip bound is loaded from memory: statically unknowable.
    const verify::ProgramFootprint fp = footprintOf(progOf({
        Inst{Opcode::Lui, 3, 0, 0, 0x1000},
        Inst{Opcode::Lw, 4, 3, 0, 0},           // n = *base
        Inst{Opcode::Addi, 2, zero, 0, 0},
        Inst{Opcode::Sw, 2, 3, 0, 0},           // loop: *p = i
        Inst{Opcode::Addi, 3, 3, 0, 4},
        Inst{Opcode::Addi, 2, 2, 0, 1},
        Inst{Opcode::Blt, 0, 2, 4, -4},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    ASSERT_EQ(fp.strides.loops.size(), 1u);
    EXPECT_EQ(fp.strides.loops[0].trips, 0u);   // unknown
    EXPECT_FALSE(fp.estPagesExact);

    verify::Report report;
    verify::lintProgramFootprint(fp, report);
    EXPECT_EQ(report.countOf(Diag::UnboundedInduction), 1u);
    EXPECT_TRUE(report.clean(Severity::Warning));
}

TEST(Footprint, IrregularStrideFires)
{
    // Pointer chase: the address register is itself loaded each
    // iteration, so no stride exists.
    const verify::ProgramFootprint fp = footprintOf(progOf({
        Inst{Opcode::Lui, 3, 0, 0, 0x1000},
        Inst{Opcode::Addi, 2, zero, 0, 0},
        Inst{Opcode::Addi, 4, zero, 0, 10},
        Inst{Opcode::Lw, 3, 3, 0, 0},           // loop: p = *p
        Inst{Opcode::Addi, 2, 2, 0, 1},
        Inst{Opcode::Blt, 0, 2, 4, -3},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    ASSERT_EQ(fp.refs.size(), 1u);
    EXPECT_EQ(fp.refs[0].pattern, RefPattern::Irregular);

    verify::Report report;
    verify::lintProgramFootprint(fp, report);
    EXPECT_EQ(report.countOf(Diag::IrregularStride), 1u);
}

TEST(Footprint, HashProbeIsIrregularBounded)
{
    // h = x & 0xff; probe = *(table + (h << 2)) — compress's table
    // idiom. No stride, but the region is provably one page.
    const verify::ProgramFootprint fp = footprintOf(progOf({
        Inst{Opcode::Lui, 3, 0, 0, 0x1000},     // table
        Inst{Opcode::Lw, 5, 3, 0, 0},           // x (unknown)
        Inst{Opcode::Addi, 2, zero, 0, 0},
        Inst{Opcode::Addi, 4, zero, 0, 100},
        Inst{Opcode::Andi, 6, 5, 0, 0xff},      // loop: h = x & 0xff
        Inst{Opcode::Slli, 6, 6, 0, 2},
        Inst{Opcode::Add, 7, 3, 6, 0},
        Inst{Opcode::Lw, 5, 7, 0, 0},           // x = table[h]
        Inst{Opcode::Addi, 2, 2, 0, 1},
        Inst{Opcode::Blt, 0, 2, 4, -6},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));
    // Two refs: the straight-line seed load and the loop probe.
    ASSERT_EQ(fp.refs.size(), 2u);
    EXPECT_EQ(fp.refs[0].pattern, RefPattern::Fixed);
    EXPECT_EQ(fp.refs[1].pattern, RefPattern::IrregularBounded);
    EXPECT_TRUE(fp.refs[1].spanKnown);
    EXPECT_EQ(fp.refs[1].spanPages, 1u);    // 0x3ff + 4 bytes

    verify::Report report;
    verify::lintProgramFootprint(fp, report);
    EXPECT_EQ(report.countOf(Diag::IrregularStride), 1u);
}

/**
 * Two lockstep streams with a banks*pageBytes stride: every iteration
 * both land on bank 0 of a 4-way bit-selected TLB, on different pages.
 */
kasm::Program
bankPinnedStreams()
{
    return progOf({
        Inst{Opcode::Lui, 3, 0, 0, 0x1000},     // stream A
        Inst{Opcode::Lui, 5, 0, 0, 0x2000},     // stream B
        Inst{Opcode::Addi, 2, zero, 0, 0},
        Inst{Opcode::Addi, 4, zero, 0, 64},
        Inst{Opcode::Lw, 6, 3, 0, 0},           // loop: A[i]
        Inst{Opcode::Lw, 7, 5, 0, 0},           //       B[i]
        Inst{Opcode::Addi, 3, 3, 0, 16384},     // 4 banks x 4 KB
        Inst{Opcode::Addi, 5, 5, 0, 16384},
        Inst{Opcode::Addi, 2, 2, 0, 1},
        Inst{Opcode::Blt, 0, 2, 4, -6},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    });
}

TEST(Footprint, BankConflictHotspotFires)
{
    const verify::ProgramFootprint fp =
        footprintOf(bankPinnedStreams());

    const verify::DesignFootprint df =
        verify::foldDesign(fp, tlb::designParams(tlb::Design::I4));
    ASSERT_EQ(df.conflicts.size(), 1u);
    EXPECT_EQ(df.conflicts[0].pcs.size(), 2u);
    EXPECT_GE(df.conflicts[0].rate, 1.0);

    verify::Report report;
    verify::lintDesignFootprint(
        fp, tlb::designParams(tlb::Design::I4), "I4", report);
    EXPECT_EQ(report.countOf(Diag::BankConflictHotspot), 1u);
    EXPECT_TRUE(report.clean(Severity::Warning));

    // A multi-ported design has no banks to conflict on.
    verify::Report t4;
    verify::lintDesignFootprint(
        fp, tlb::designParams(tlb::Design::T4), "T4", t4);
    EXPECT_EQ(t4.countOf(Diag::BankConflictHotspot), 0u);
}

TEST(Footprint, PiggybackedBanksAbsorbSamePageStreams)
{
    // Two refs to the *same* page every iteration: I4 serializes
    // them, I4/PB's per-bank piggybacking absorbs the second.
    const verify::ProgramFootprint fp = footprintOf(progOf({
        Inst{Opcode::Lui, 3, 0, 0, 0x1000},
        Inst{Opcode::Addi, 2, zero, 0, 0},
        Inst{Opcode::Addi, 4, zero, 0, 64},
        Inst{Opcode::Lw, 6, 3, 0, 0},           // loop: A[i]
        Inst{Opcode::Lw, 7, 3, 0, 4},           //       A[i+1]
        Inst{Opcode::Addi, 3, 3, 0, 16384},
        Inst{Opcode::Addi, 2, 2, 0, 1},
        Inst{Opcode::Blt, 0, 2, 4, -5},
        Inst{Opcode::Halt, 0, 0, 0, 0},
    }));

    const verify::DesignFootprint i4 =
        verify::foldDesign(fp, tlb::designParams(tlb::Design::I4));
    EXPECT_EQ(i4.conflicts.size(), 1u);

    const verify::DesignFootprint i4pb =
        verify::foldDesign(fp, tlb::designParams(tlb::Design::I4PB));
    EXPECT_TRUE(i4pb.conflicts.empty());
}

TEST(Footprint, ReportSortOrdersByPcThenCode)
{
    verify::Report r;
    r.add(Diag::IrregularStride, Severity::Info, 0x40, "b");
    r.add(Diag::FootprintExceedsReach, Severity::Info, 0, "c");
    r.add(Diag::BankConflictHotspot, Severity::Info, 0x40, "a");
    r.add(Diag::UninitRead, Severity::Warning, 0x10, "d");
    r.sort();
    ASSERT_EQ(r.diags.size(), 4u);
    EXPECT_EQ(r.diags[0].code, Diag::FootprintExceedsReach);
    EXPECT_EQ(r.diags[1].code, Diag::UninitRead);
    EXPECT_EQ(r.diags[1].pc, 0x10u);
    // Same pc: BankConflictHotspot enum precedes IrregularStride.
    EXPECT_EQ(r.diags[2].code, Diag::BankConflictHotspot);
    EXPECT_EQ(r.diags[3].code, Diag::IrregularStride);
}

// ---------------------------------------------------------------------
// Workload-level verdicts: the analyzer on the paper's programs.

TEST(FootprintWorkloads, CompressExceedsEveryReach)
{
    const kasm::Program prog =
        workloads::build("compress", kasm::RegBudget{32, 32}, 1.0);
    const verify::ProgramFootprint fp = footprintOf(prog);

    // The 69K-slot hash table dominates: far over 128 pages.
    EXPECT_GT(fp.estPages, 128u);

    size_t strided = 0, bounded = 0;
    for (const verify::RefFootprint &r : fp.refs) {
        strided += r.pattern == RefPattern::Strided ? 1 : 0;
        bounded += r.pattern == RefPattern::IrregularBounded ? 1 : 0;
    }
    EXPECT_GE(strided, 2u);     // input byte stream + output words
    EXPECT_GE(bounded, 1u);     // hash-table probes

    verify::Report report;
    verify::lintDesignFootprint(
        fp, tlb::designParams(tlb::Design::T4), "T4", report);
    EXPECT_EQ(report.countOf(Diag::FootprintExceedsReach), 1u);
}

TEST(FootprintWorkloads, TomcatvIsFullyStatic)
{
    const kasm::Program prog =
        workloads::build("tomcatv", kasm::RegBudget{32, 32}, 1.0);
    const verify::ProgramFootprint fp = footprintOf(prog);

    // it / j / i loop nest, every trip count resolved, so the
    // working-set estimate is exact.
    ASSERT_EQ(fp.strides.loops.size(), 3u);
    for (const verify::Loop &loop : fp.strides.loops)
        EXPECT_GT(loop.trips, 0u);
    EXPECT_TRUE(fp.estPagesExact);
    EXPECT_GT(fp.estPages, 128u);   // two 127x128 double arrays

    // The stencil body reads/writes row-major doubles: stride 16
    // (the generator interleaves two arrays).
    size_t strided16 = 0;
    for (const verify::RefFootprint &r : fp.refs)
        strided16 +=
            r.pattern == RefPattern::Strided && r.stride == 16 ? 1 : 0;
    EXPECT_GE(strided16, 20u);
}

TEST(FootprintWorkloads, AllWorkloadsAnalyze)
{
    for (const workloads::Workload &w : workloads::all()) {
        const kasm::Program prog =
            workloads::build(w.name, kasm::RegBudget{32, 32}, 0.05);
        const verify::ProgramFootprint fp = footprintOf(prog);
        EXPECT_FALSE(fp.refs.empty()) << w.name;
        EXPECT_GT(fp.estPages, 0u) << w.name;

        // Folding against every Table 2 design must be total, and
        // every finding informational.
        verify::Report report;
        verify::lintProgramFootprint(fp, report);
        for (tlb::Design d : tlb::allDesigns())
            verify::lintDesignFootprint(fp, tlb::designParams(d),
                                        tlb::designName(d), report);
        EXPECT_TRUE(report.clean(Severity::Warning)) << w.name;
    }
}

} // namespace
