/**
 * @file
 * Tests for the sampled simulator (DESIGN.md §14): the functional
 * fast-forward engine, checkpoint save/restore determinism, and the
 * interval-sampled estimator.
 *
 * The load-bearing guarantees:
 *  - FuncExecutor's TLB filters reproduce the fig6 inline loop byte
 *    for byte (one functional path in the codebase);
 *  - restore-then-run equals straight-through, functionally and in
 *    the detailed pipeline, for every engine family;
 *  - sampled estimates are bit-identical at any interval job count
 *    and with idle-skip on or off;
 *  - the exact architectural totals (committed instructions, data
 *    footprint) come from the functional pass, not the estimator.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "cpu/func_core.hh"
#include "cpu/static_code.hh"
#include "sim/fastfwd.hh"
#include "sim/sampling.hh"
#include "sim/simulator.hh"
#include "tlb/tlb_array.hh"
#include "vm/address_space.hh"
#include "vm/program_image.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;

const kasm::RegBudget kBudget{32, 32};

kasm::Program
smallProgram(const std::string &name)
{
    return workloads::build(name, kBudget, 0.02);
}

/** Exact (bitwise) equality of two stat snapshots. */
void
expectSnapshotsEqual(const obs::StatSnapshot &a,
                     const obs::StatSnapshot &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].name);
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].value, b[i].value);
        EXPECT_EQ(a[i].values, b[i].values);
        EXPECT_EQ(a[i].labels, b[i].labels);
        EXPECT_EQ(a[i].samples, b[i].samples);
        EXPECT_EQ(a[i].mean, b[i].mean);
    }
}

/** Byte-level equality of two checkpoints (ignoring warm/filters). */
void
expectArchStateEqual(const sim::Checkpoint &a, const sim::Checkpoint &b)
{
    EXPECT_EQ(a.instCount, b.instCount);

    // Core: registers, PC, counts.
    for (size_t r = 0; r < kNumIntRegs; ++r)
        EXPECT_EQ(a.core.regs[r], b.core.regs[r]) << "intreg " << r;
    for (size_t r = 0; r < kNumFpRegs; ++r)
        EXPECT_EQ(a.core.fregs[r], b.core.fregs[r]) << "fpreg " << r;
    EXPECT_EQ(a.core.pc, b.core.pc);
    EXPECT_EQ(a.core.halted, b.core.halted);
    EXPECT_EQ(a.core.nextSeq, b.core.nextSeq);
    EXPECT_EQ(a.core.stats.instructions, b.core.stats.instructions);
    EXPECT_EQ(a.core.stats.loads, b.core.stats.loads);
    EXPECT_EQ(a.core.stats.stores, b.core.stats.stores);
    EXPECT_EQ(a.core.stats.branches, b.core.stats.branches);
    EXPECT_EQ(a.core.stats.takenBranches, b.core.stats.takenBranches);
    EXPECT_EQ(a.core.stats.fpOps, b.core.stats.fpOps);

    // Memory: the private page set, byte for byte.
    ASSERT_EQ(a.mem.pages.size(), b.mem.pages.size());
    for (size_t p = 0; p < a.mem.pages.size(); ++p) {
        SCOPED_TRACE("page " + std::to_string(p));
        EXPECT_EQ(a.mem.pages[p].vpn, b.mem.pages[p].vpn);
        ASSERT_TRUE(a.mem.pages[p].data && b.mem.pages[p].data);
        EXPECT_EQ(*a.mem.pages[p].data, *b.mem.pages[p].data);
    }
    EXPECT_EQ(a.mem.cowPages, b.mem.cowPages);

    // Page table: every PTE.
    ASSERT_EQ(a.mem.pt.ptes.size(), b.mem.pt.ptes.size());
    for (size_t i = 0; i < a.mem.pt.ptes.size(); ++i) {
        SCOPED_TRACE("pte " + std::to_string(i));
        EXPECT_EQ(a.mem.pt.ptes[i].first, b.mem.pt.ptes[i].first);
        const vm::Pte &x = a.mem.pt.ptes[i].second;
        const vm::Pte &y = b.mem.pt.ptes[i].second;
        EXPECT_EQ(x.ppn, y.ppn);
        EXPECT_EQ(x.perms, y.perms);
        EXPECT_EQ(x.valid, y.valid);
        EXPECT_EQ(x.referenced, y.referenced);
        EXPECT_EQ(x.dirty, y.dirty);
    }
    EXPECT_EQ(a.mem.pt.nextPpn, b.mem.pt.nextPpn);
    EXPECT_EQ(a.mem.pt.mapped, b.mem.pt.mapped);
}

/**
 * The fig6 dedup guarantee: FuncExecutor's TLB filters produce the
 * same reference and miss counts as the original inline functional
 * loop (pre-increment tick, one lookup/insert per data reference).
 */
TEST(FastForward, TlbFiltersMatchInlineFig6Loop)
{
    const kasm::Program prog = smallProgram("espresso");
    const vm::PageParams pages;
    const uint64_t seed = 12345;
    const struct
    {
        unsigned entries;
        tlb::Replacement repl;
    } specs[] = {
        {4, tlb::Replacement::Lru},
        {16, tlb::Replacement::Lru},
        {32, tlb::Replacement::Random},
    };

    // Reference: the original fig6 measurement loop, verbatim.
    std::vector<tlb::TlbArray> tlbs;
    for (const auto &s : specs)
        tlbs.emplace_back(s.entries, s.repl, seed);
    std::vector<uint64_t> misses(tlbs.size(), 0);
    uint64_t refs = 0;
    {
        const auto image =
            std::make_shared<const vm::ProgramImage>(prog, pages);
        vm::AddressSpace space{pages, true, image};
        cpu::FuncCore core(space, prog);
        Cycle tick = 0;
        while (!core.halted()) {
            const cpu::DynInst dyn = core.step();
            if (!dyn.isMem())
                continue;
            ++refs;
            ++tick;
            const Vpn vpn = pages.vpn(dyn.effAddr);
            for (size_t t = 0; t < tlbs.size(); ++t) {
                if (!tlbs[t].lookup(vpn, tick)) {
                    ++misses[t];
                    tlbs[t].insert(vpn, tick);
                }
            }
        }
    }
    ASSERT_GT(refs, 0u);

    sim::FuncExecutor fx(prog, pages);
    for (const auto &s : specs)
        fx.addTlbFilter(s.entries, s.repl, seed);
    fx.advance(std::numeric_limits<uint64_t>::max());
    EXPECT_TRUE(fx.halted());

    for (size_t t = 0; t < tlbs.size(); ++t) {
        SCOPED_TRACE("filter " + std::to_string(t));
        EXPECT_EQ(fx.filterStats(t).refs, refs);
        EXPECT_EQ(fx.filterStats(t).misses, misses[t]);
    }
}

/**
 * Functional restore-then-run equals straight-through: an executor
 * restored from a mid-run checkpoint and advanced to completion ends
 * in exactly the state of one that never detoured, including filter
 * counts and the warm set.
 */
TEST(FastForward, RestoreThenRunEqualsStraightThrough)
{
    const kasm::Program prog = smallProgram("compress");

    sim::FuncExecutor straight(prog);
    straight.addTlbFilter(8, tlb::Replacement::Lru, 7);
    straight.enableWarmTracking();
    straight.trackPageTable(true);

    straight.advance(5000);
    sim::Checkpoint mid;
    straight.save(mid);
    EXPECT_EQ(mid.instCount, 5000u);

    straight.advance(std::numeric_limits<uint64_t>::max());
    ASSERT_TRUE(straight.halted());
    sim::Checkpoint endA;
    straight.save(endA);

    sim::FuncExecutor resumed(prog);
    resumed.addTlbFilter(8, tlb::Replacement::Lru, 7);
    resumed.enableWarmTracking();
    resumed.trackPageTable(true);
    resumed.restore(mid);
    EXPECT_EQ(resumed.instCount(), 5000u);
    resumed.advance(std::numeric_limits<uint64_t>::max());
    ASSERT_TRUE(resumed.halted());
    sim::Checkpoint endB;
    resumed.save(endB);

    expectArchStateEqual(endA, endB);
    ASSERT_EQ(endA.filters.size(), endB.filters.size());
    for (size_t f = 0; f < endA.filters.size(); ++f) {
        EXPECT_EQ(endA.filters[f].stats.refs,
                  endB.filters[f].stats.refs);
        EXPECT_EQ(endA.filters[f].stats.misses,
                  endB.filters[f].stats.misses);
    }
    EXPECT_EQ(endA.warmVpns(), endB.warmVpns());
}

/**
 * Page sharing between consecutive checkpoints is an aliasing
 * optimization only: a checkpoint saved with a prev must restore to
 * the same state as one saved without.
 */
TEST(FastForward, PageSharingDoesNotChangeContents)
{
    const kasm::Program prog = smallProgram("espresso");

    sim::FuncExecutor fx(prog);
    fx.advance(2000);
    sim::Checkpoint first;
    fx.save(first);

    fx.advance(2000);
    sim::Checkpoint shared, plain;
    fx.save(shared, &first);
    fx.save(plain);

    expectArchStateEqual(shared, plain);

    // And some pages really are shared with the previous checkpoint
    // (the text and any data untouched in the last period).
    size_t aliased = 0;
    for (const auto &p : shared.mem.pages)
        for (const auto &q : first.mem.pages)
            if (p.data == q.data)
                ++aliased;
    EXPECT_GT(aliased, 0u);
}

/**
 * Checkpoint trains are design-independent and schedule-independent:
 * the checkpoint at instruction k is byte-identical whether it was
 * the 2nd point of a period-k/2 train or the 1st of a period-k train.
 */
TEST(Checkpoints, TrainScheduleIndependent)
{
    const kasm::Program prog = smallProgram("compress");
    sim::SimConfig sc;
    sc.samplePeriodInsts = 4000;
    const auto fine = sim::buildCheckpoints(prog, sc);
    sc.samplePeriodInsts = 8000;
    const auto coarse = sim::buildCheckpoints(prog, sc);

    ASSERT_GE(fine->points.size(), 3u);
    ASSERT_GE(coarse->points.size(), 2u);
    ASSERT_EQ(fine->points[2].instCount, coarse->points[1].instCount);
    expectArchStateEqual(fine->points[2], coarse->points[1]);
    EXPECT_EQ(fine->points[2].warmVpns(),
              coarse->points[1].warmVpns());

    // The exact totals do not depend on the period either.
    EXPECT_EQ(fine->totalInsts, coarse->totalInsts);
    EXPECT_EQ(fine->touchedPages, coarse->touchedPages);
    EXPECT_EQ(fine->func.loads, coarse->func.loads);
    EXPECT_EQ(fine->func.stores, coarse->func.stores);
}

/**
 * Detailed restore-then-run equals straight-through: resuming the
 * full pipeline from the instruction-0 checkpoint must reproduce a
 * plain simulate() run stat for stat — across every engine family
 * (split L1/L2, multilevel, PC-indexed, cache-stored translations).
 */
TEST(Checkpoints, DetailedRunFromStartCheckpointIsExact)
{
    const tlb::Design designs[] = {tlb::Design::T4, tlb::Design::M8,
                                   tlb::Design::PCAX,
                                   tlb::Design::Victima};
    for (const char *name : {"compress", "xlisp"}) {
        const kasm::Program prog = smallProgram(name);
        sim::SimConfig base;
        base.samplePeriodInsts = 6000;
        const auto ckpts = sim::buildCheckpoints(prog, base);
        ASSERT_GE(ckpts->points.size(), 2u);
        ASSERT_EQ(ckpts->points[0].instCount, 0u);

        for (tlb::Design d : designs) {
            SCOPED_TRACE(std::string(name) + "/" +
                         std::string(tlb::designName(d)));
            sim::SimConfig sc;
            sc.design = d;
            const sim::SimResult plain = sim::simulate(prog, sc);
            const sim::SimResult resumed = sim::simulateFromCheckpoint(
                prog, sc, ckpts->points[0]);
            EXPECT_EQ(resumed.cycles(), plain.cycles());
            EXPECT_EQ(resumed.pipe.committed, plain.pipe.committed);
            EXPECT_EQ(resumed.touchedPages, plain.touchedPages);
            expectSnapshotsEqual(resumed.stats, plain.stats);
        }
    }
}

/**
 * Resuming from a mid-run checkpoint is deterministic: two restores
 * of the same checkpoint produce bit-identical detailed runs, and
 * restores of the *same instruction point* from differently-spaced
 * trains agree too (the checkpoint carries the complete state).
 */
TEST(Checkpoints, DetailedResumeDeterministic)
{
    const kasm::Program prog = smallProgram("xlisp");
    sim::SimConfig base;
    base.samplePeriodInsts = 4000;
    const auto fine = sim::buildCheckpoints(prog, base);
    base.samplePeriodInsts = 8000;
    const auto coarse = sim::buildCheckpoints(prog, base);
    ASSERT_GE(fine->points.size(), 3u);
    ASSERT_GE(coarse->points.size(), 2u);

    sim::SimConfig sc;
    sc.design = tlb::Design::PCAX;
    const sim::SimResult a = sim::simulateFromCheckpoint(
        prog, sc, fine->points[2]);
    const sim::SimResult b = sim::simulateFromCheckpoint(
        prog, sc, fine->points[2]);
    const sim::SimResult c = sim::simulateFromCheckpoint(
        prog, sc, coarse->points[1]);
    EXPECT_EQ(a.cycles(), b.cycles());
    expectSnapshotsEqual(a.stats, b.stats);
    EXPECT_EQ(a.cycles(), c.cycles());
    expectSnapshotsEqual(a.stats, c.stats);
}

sim::SimConfig
sampledConfig(tlb::Design d)
{
    sim::SimConfig sc;
    sc.design = d;
    sc.samplePeriodInsts = 8000;
    sc.sampleWarmupInsts = 1000;
    sc.sampleMeasureInsts = 2000;
    return sc;
}

/**
 * Sampled estimates are bit-identical at any interval job count and
 * with idle-skip on or off, for every engine family.
 */
TEST(Sampled, DeterministicAcrossJobsAndSkip)
{
    const tlb::Design designs[] = {tlb::Design::T4, tlb::Design::M8,
                                   tlb::Design::PCAX,
                                   tlb::Design::Victima};
    const kasm::Program prog = smallProgram("compress");
    for (tlb::Design d : designs) {
        SCOPED_TRACE(tlb::designName(d));
        sim::SimConfig sc = sampledConfig(d);
        sc.sampleJobs = 1;
        const sim::SimResult serial = sim::simulateSampled(prog, sc);
        ASSERT_TRUE(serial.sampling.enabled);
        ASSERT_GE(serial.sampling.intervals, 2u);

        sc.sampleJobs = 8;
        const sim::SimResult wide = sim::simulateSampled(prog, sc);
        sc.sampleJobs = 1;
        sc.idleSkip = false;
        const sim::SimResult noskip = sim::simulateSampled(prog, sc);

        for (const sim::SimResult *r : {&wide, &noskip}) {
            EXPECT_EQ(r->sampling.intervals, serial.sampling.intervals);
            EXPECT_EQ(r->sampling.measuredInsts,
                      serial.sampling.measuredInsts);
            EXPECT_EQ(r->sampling.measuredCycles,
                      serial.sampling.measuredCycles);
            EXPECT_EQ(r->sampling.ipc, serial.sampling.ipc);    // exact
            EXPECT_EQ(r->sampling.ipcCi95, serial.sampling.ipcCi95);
            EXPECT_EQ(r->cycles(), serial.cycles());
            expectSnapshotsEqual(r->stats, serial.stats);
        }
    }
}

/**
 * The architectural totals of a sampled run are exact, not
 * estimates: committed instructions, the functional counts, and the
 * data footprint all match the exact run's.
 */
TEST(Sampled, ArchitecturalTotalsAreExact)
{
    const kasm::Program prog = smallProgram("compress");
    sim::SimConfig sc = sampledConfig(tlb::Design::T4);
    const sim::SimResult sampled = sim::simulateSampled(prog, sc);
    ASSERT_TRUE(sampled.sampling.enabled);

    sim::SimConfig ex;
    ex.design = tlb::Design::T4;
    const sim::SimResult exact = sim::simulate(prog, ex);

    EXPECT_EQ(sampled.pipe.committed, exact.pipe.committed);
    EXPECT_EQ(sampled.touchedPages, exact.touchedPages);
    EXPECT_EQ(sampled.func.instructions, exact.func.instructions);
    EXPECT_EQ(sampled.func.loads, exact.func.loads);
    EXPECT_EQ(sampled.func.stores, exact.func.stores);

    // Loose accuracy smoke: with these few intervals the estimate is
    // noisy, but it must still land in the right neighbourhood.
    EXPECT_GT(sampled.ipc(), 0.5 * exact.ipc());
    EXPECT_LT(sampled.ipc(), 1.5 * exact.ipc());
    EXPECT_GT(sampled.sampling.ipcCi95, 0.0);
}

/**
 * simulate() dispatches to the sampled path purely on the config
 * knob, and a period longer than the program falls back to an exact
 * run (sampling disabled, results identical to plain simulate()).
 */
TEST(Sampled, DispatchAndFallback)
{
    const kasm::Program prog = smallProgram("espresso");
    sim::SimConfig sc;
    sc.design = tlb::Design::T4;
    const sim::SimResult exact = sim::simulate(prog, sc);
    EXPECT_FALSE(exact.sampling.enabled);

    // simulate() with the knob set == simulateSampled().
    sc.samplePeriodInsts = 8000;
    sc.sampleWarmupInsts = 1000;
    sc.sampleMeasureInsts = 2000;
    const sim::SimResult viaSimulate = sim::simulate(prog, sc);
    const sim::SimResult viaSampled = sim::simulateSampled(prog, sc);
    EXPECT_EQ(viaSimulate.sampling.enabled, viaSampled.sampling.enabled);
    EXPECT_EQ(viaSimulate.cycles(), viaSampled.cycles());
    expectSnapshotsEqual(viaSimulate.stats, viaSampled.stats);

    // Period past the end: no usable interval, exact fallback.
    sc.samplePeriodInsts = ~uint64_t(0);
    sc.sampleWarmupInsts = ~uint64_t(0) / 2;
    const sim::SimResult fallback = sim::simulate(prog, sc);
    EXPECT_FALSE(fallback.sampling.enabled);
    EXPECT_EQ(fallback.cycles(), exact.cycles());
    expectSnapshotsEqual(fallback.stats, exact.stats);
}

/**
 * A shared checkpoint set must give the same sampled result as a
 * privately-built one — the sweep harness relies on this to build one
 * train per (program, period) and share it across design columns.
 */
TEST(Sampled, SharedCheckpointSetMatchesPrivateBuild)
{
    const kasm::Program prog = smallProgram("compress");
    const sim::SimConfig sc = sampledConfig(tlb::Design::M8);
    const auto ckpts = sim::buildCheckpoints(prog, sc);

    const sim::SimResult priv = sim::simulateSampled(prog, sc);
    const sim::SimResult shared =
        sim::simulateSampled(prog, sc, nullptr, nullptr, ckpts);
    EXPECT_EQ(shared.cycles(), priv.cycles());
    EXPECT_EQ(shared.sampling.intervals, priv.sampling.intervals);
    EXPECT_EQ(shared.sampling.ipc, priv.sampling.ipc);    // exact
    expectSnapshotsEqual(shared.stats, priv.stats);
}

} // namespace
