/**
 * @file
 * Tests for the parallel sweep machinery: JobPool semantics
 * (ordering, exception propagation, edge cases) and the determinism
 * guarantee — a sweep's results are identical at any --jobs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bench/harness.hh"
#include "common/job_pool.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;

TEST(JobPool, ZeroTasksWaitAndDestroy)
{
    JobPool pool(4);
    EXPECT_EQ(pool.workers(), 4u);
    pool.wait();    // nothing queued: returns immediately
}

TEST(JobPool, SingleWorkerRunsFifo)
{
    JobPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 64; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.wait();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[size_t(i)], i);
}

TEST(JobPool, ManyWorkersRunEveryJob)
{
    JobPool pool(8);
    std::atomic<int> ran{0};
    std::atomic<long> sum{0};
    for (int i = 0; i < 500; ++i) {
        pool.submit([&, i] {
            ran.fetch_add(1);
            sum.fetch_add(i);
        });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 500);
    EXPECT_EQ(sum.load(), 499L * 500 / 2);
}

TEST(JobPool, ExceptionPropagatesAndPoolStaysUsable)
{
    JobPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The error was consumed; a later batch runs normally.
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
}

TEST(JobPool, FirstOfSeveralExceptionsWins)
{
    JobPool pool(1);    // serial: deterministic which job throws first
    pool.submit([] { throw std::runtime_error("first"); });
    pool.submit([] { throw std::logic_error("second"); });
    try {
        pool.wait();
        FAIL() << "wait() should have rethrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }
}

TEST(JobPool, DefaultWorkersIsPositiveAndHonorsEnv)
{
    EXPECT_GE(JobPool::defaultWorkers(), 1u);
    ASSERT_EQ(setenv("HBAT_JOBS", "3", 1), 0);
    EXPECT_EQ(JobPool::defaultWorkers(), 3u);
    ASSERT_EQ(unsetenv("HBAT_JOBS"), 0);
}

TEST(ParallelFor, CoversEveryIndexOnce)
{
    std::vector<int> hits(1000, 0);
    parallelFor(hits.size(), 4, [&](size_t i) { hits[i] += 1; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ParallelFor, SerialPathRunsInline)
{
    // jobs == 1 runs on the calling thread in index order.
    const auto self = std::this_thread::get_id();
    std::vector<size_t> order;
    parallelFor(5, 1, [&](size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        order.push_back(i);
    });
    EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ZeroItemsIsANoop)
{
    parallelFor(0, 8, [](size_t) { FAIL() << "must not run"; });
}

TEST(Harness, ToSimConfigCopiesMachineAxes)
{
    bench::ExperimentConfig cfg;
    cfg.pageBytes = 8192;
    cfg.inOrder = true;
    cfg.budget = kasm::RegBudget{8, 8};
    cfg.seed = 777;
    const sim::SimConfig sc = bench::toSimConfig(cfg);
    EXPECT_EQ(sc.pageBytes, 8192u);
    EXPECT_TRUE(sc.inOrder);
    EXPECT_EQ(sc.budget.intRegs, 8);
    EXPECT_EQ(sc.budget.fpRegs, 8);
    EXPECT_EQ(sc.seed, 777u);
    EXPECT_EQ(sc.design, tlb::Design::T4);
}

TEST(Harness, ParseArgsResolvesJobs)
{
    const char *argv[] = {"bench", "--jobs", "5"};
    const bench::ExperimentConfig cfg = bench::parseArgs(
        3, const_cast<char **>(argv), bench::ExperimentConfig{});
    EXPECT_EQ(cfg.jobs, 5u);

    const char *argv1[] = {"bench"};
    const bench::ExperimentConfig dflt = bench::parseArgs(
        1, const_cast<char **>(argv1), bench::ExperimentConfig{});
    EXPECT_GE(dflt.jobs, 1u);
}

/** Exact (bitwise) equality of two stat snapshots. */
void
expectSnapshotsEqual(const obs::StatSnapshot &a,
                     const obs::StatSnapshot &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].name);
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].value, b[i].value);
        EXPECT_EQ(a[i].values, b[i].values);
        EXPECT_EQ(a[i].labels, b[i].labels);
        EXPECT_EQ(a[i].samples, b[i].samples);
        EXPECT_EQ(a[i].mean, b[i].mean);
    }
}

TEST(ParallelDeterminism, SweepIdenticalAtAnyJobCount)
{
    bench::ExperimentConfig cfg;
    cfg.scale = 0.02;
    cfg.programs = {"espresso", "doduc"};
    const std::vector<tlb::Design> designs = {
        tlb::Design::T4, tlb::Design::T1, tlb::Design::M8};

    cfg.jobs = 1;
    const bench::Sweep serial = bench::runDesignSweep(cfg, designs);
    cfg.jobs = 4;
    const bench::Sweep parallel = bench::runDesignSweep(cfg, designs);

    ASSERT_EQ(serial.cells.size(), 6u);
    ASSERT_EQ(parallel.cells.size(), serial.cells.size());
    for (size_t i = 0; i < serial.cells.size(); ++i) {
        const bench::Cell &s = serial.cells[i];
        const bench::Cell &p = parallel.cells[i];
        SCOPED_TRACE(s.program + "/" + s.design);
        EXPECT_EQ(p.program, s.program);
        EXPECT_EQ(p.design, s.design);
        EXPECT_EQ(p.result.cycles(), s.result.cycles());
        EXPECT_EQ(p.result.ipc(), s.result.ipc());    // exact
        EXPECT_EQ(p.result.pipe.committed, s.result.pipe.committed);
        EXPECT_EQ(p.result.touchedPages, s.result.touchedPages);
        expectSnapshotsEqual(p.result.stats, s.result.stats);
        EXPECT_GE(p.wallSeconds, 0.0);
    }
    EXPECT_GE(parallel.wallSeconds, 0.0);

    // Every run balanced its enter/exit of the in-flight gauge.
    EXPECT_EQ(sim::activeSimulations(), 0);
}

/**
 * The stressier determinism case: M8's L2 TLB uses seeded random
 * replacement, so any job-count- or host-dependent perturbation of
 * the RNG stream would show up as a snapshot mismatch here.
 */
TEST(ParallelDeterminism, RandomReplacementIdenticalAtJobs8)
{
    bench::ExperimentConfig cfg;
    cfg.scale = 0.02;
    cfg.seed = 424242;
    cfg.programs = {"espresso", "doduc"};
    const std::vector<tlb::Design> designs = {tlb::Design::M8};

    cfg.jobs = 1;
    const bench::Sweep serial = bench::runDesignSweep(cfg, designs);
    cfg.jobs = 8;
    const bench::Sweep wide = bench::runDesignSweep(cfg, designs);

    ASSERT_EQ(serial.cells.size(), 2u);
    ASSERT_EQ(wide.cells.size(), serial.cells.size());
    for (size_t i = 0; i < serial.cells.size(); ++i) {
        SCOPED_TRACE(serial.cells[i].program);
        EXPECT_EQ(wide.cells[i].result.cycles(),
                  serial.cells[i].result.cycles());
        expectSnapshotsEqual(wide.cells[i].result.stats,
                             serial.cells[i].result.stats);
    }
}

/**
 * The MRU page-pointer cache in vm::AddressSpace is a pure host-side
 * optimization: every simulated statistic must be bit-identical with
 * it disabled.
 */
TEST(ParallelDeterminism, PageMruCacheIsStatisticsInvariant)
{
    const kasm::Program prog = workloads::build(
        "espresso", kasm::RegBudget{32, 32}, 0.02);

    sim::SimConfig sc;
    sc.design = tlb::Design::M8;
    sc.seed = 424242;

    sc.pageMru = true;
    const sim::SimResult withMru = sim::simulate(prog, sc);
    sc.pageMru = false;
    const sim::SimResult without = sim::simulate(prog, sc);

    EXPECT_EQ(withMru.cycles(), without.cycles());
    EXPECT_EQ(withMru.ipc(), without.ipc());    // exact
    EXPECT_EQ(withMru.pipe.committed, without.pipe.committed);
    EXPECT_EQ(withMru.touchedPages, without.touchedPages);
    expectSnapshotsEqual(withMru.stats, without.stats);
}

/**
 * Wall-clock accounting invariants under --jobs > 1. Cells are timed
 * with CLOCK_THREAD_CPUTIME_ID (see bench/harness.cc), so each cell
 * charges only its own execution: the per-cell sum must not
 * double-count overlapped cells, i.e. it is bounded by jobs times the
 * sweep's elapsed time (plus scheduler slack), not by the number of
 * overlapping cells.
 */
TEST(ParallelDeterminism, CellTimingDoesNotDoubleCountOverlap)
{
    bench::ExperimentConfig cfg;
    cfg.scale = 0.02;
    cfg.programs = {"espresso", "doduc"};
    cfg.jobs = 2;
    const std::vector<tlb::Design> designs = {
        tlb::Design::T4, tlb::Design::T1};
    const bench::Sweep sweep = bench::runDesignSweep(cfg, designs);

    ASSERT_EQ(sweep.cells.size(), 4u);
    EXPECT_GT(sweep.wallSeconds, 0.0);
    double cellSum = 0.0;
    for (const bench::Cell &cell : sweep.cells) {
        SCOPED_TRACE(cell.program + "/" + cell.design);
        EXPECT_GE(cell.wallSeconds, 0.0);
        // One cell runs on one thread: its CPU time cannot exceed the
        // sweep's elapsed time (slack for clock granularity).
        EXPECT_LE(cell.wallSeconds, sweep.wallSeconds + 0.25);
        cellSum += cell.wallSeconds;
    }
    EXPECT_LE(cellSum, cfg.jobs * sweep.wallSeconds + 0.5);
}

} // namespace
