/**
 * @file
 * Observability tests: the JSON writer/parser round trip, the stat
 * registry (registration, snapshot, text dump), histogram bucketing,
 * and trace-category gating.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/json.hh"
#include "obs/stats.hh"
#include "obs/trace.hh"

namespace
{

using namespace hbat;

// ---------------------------------------------------------------- JSON

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(json::escape("plain"), "plain");
    EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
    EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(json::escape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(Json, WriterProducesParsableDocument)
{
    json::Writer w;
    w.beginObject();
    w.key("name").value("fig5 \"baseline\"");
    w.key("ipc").value(1.375);
    w.key("cycles").value(uint64_t(123456789));
    w.key("in_order").value(false);
    w.key("missing").null();
    w.key("designs").beginArray();
    w.value("T4").value("T1");
    w.endArray();
    w.key("nested").beginObject();
    w.key("x").value(3);
    w.endObject();
    w.endObject();

    json::Value v;
    std::string err;
    ASSERT_TRUE(json::parse(w.str(), v, &err)) << err;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("name")->str, "fig5 \"baseline\"");
    EXPECT_DOUBLE_EQ(v.find("ipc")->number, 1.375);
    EXPECT_DOUBLE_EQ(v.find("cycles")->number, 123456789.0);
    EXPECT_FALSE(v.find("in_order")->boolean);
    EXPECT_EQ(v.find("missing")->kind, json::Value::Kind::Null);
    ASSERT_TRUE(v.find("designs")->isArray());
    EXPECT_EQ(v.find("designs")->items.size(), 2u);
    EXPECT_EQ(v.find("designs")->items[1].str, "T1");
    EXPECT_DOUBLE_EQ(v.find("nested")->find("x")->number, 3.0);
    EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(Json, IntegralDoublesPrintExactly)
{
    json::Writer w;
    w.beginArray();
    w.value(2.0).value(0.5);
    w.endArray();
    // 2.0 must come out as an exact integer literal, not 2.0000...1.
    EXPECT_EQ(w.str(), "[2,0.5]");
}

TEST(Json, RoundTripsStringEscapes)
{
    json::Writer w;
    w.beginObject();
    w.key("s").value("tab\there\nand \"quotes\" \\ ok");
    w.endObject();
    json::Value v;
    ASSERT_TRUE(json::parse(w.str(), v));
    EXPECT_EQ(v.find("s")->str, "tab\there\nand \"quotes\" \\ ok");
}

TEST(Json, ParserRejectsMalformedInput)
{
    json::Value v;
    EXPECT_FALSE(json::parse("", v));
    EXPECT_FALSE(json::parse("{", v));
    EXPECT_FALSE(json::parse("[1,]", v));
    EXPECT_FALSE(json::parse("{\"a\":1} trailing", v));
    EXPECT_FALSE(json::parse("'single'", v));
}

TEST(Json, ParsesUnicodeEscapes)
{
    json::Value v;
    ASSERT_TRUE(json::parse("\"a\\u00e9b\"", v));
    EXPECT_EQ(v.str, "a\xc3\xa9"
                     "b");    // é in UTF-8
}

// ------------------------------------------------------------ registry

TEST(StatRegistry, SnapshotReadsLiveCounters)
{
    uint64_t hits = 0, misses = 0;
    obs::StatRegistry reg;
    reg.scalar("tlb.hits", "TLB hits", hits)
        .scalar("tlb.misses", "TLB misses", misses)
        .formula("tlb.miss_rate", "misses per lookup", [&] {
            return hits + misses == 0
                       ? 0.0
                       : double(misses) / double(hits + misses);
        });
    EXPECT_EQ(reg.size(), 3u);

    hits = 30;
    misses = 10;
    // Snapshots are sorted by name regardless of registration order
    // ("tlb.miss_rate" < "tlb.misses" lexicographically).
    const obs::StatSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "tlb.hits");
    EXPECT_DOUBLE_EQ(snap[0].value, 30.0);
    EXPECT_EQ(snap[1].name, "tlb.miss_rate");
    EXPECT_EQ(snap[1].kind, obs::StatKind::Formula);
    EXPECT_DOUBLE_EQ(snap[1].value, 0.25);
    EXPECT_EQ(snap[2].name, "tlb.misses");
    EXPECT_EQ(snap[2].kind, obs::StatKind::Scalar);
    EXPECT_DOUBLE_EQ(snap[2].value, 10.0);
}

TEST(StatRegistry, VectorStatsKeepLabels)
{
    uint64_t a = 1, b = 2, c = 3;
    obs::StatRegistry reg;
    reg.vector("pipe.idle", "why nothing issued", {"empty", "walk",
                                                   "other"},
               {&a, &b, &c});
    const obs::StatSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].kind, obs::StatKind::Vector);
    ASSERT_EQ(snap[0].values.size(), 3u);
    EXPECT_EQ(snap[0].labels[1], "walk");
    EXPECT_DOUBLE_EQ(snap[0].values[2], 3.0);
}

TEST(StatRegistry, TextDumpMentionsEveryStat)
{
    uint64_t n = 42;
    obs::Histogram h(4);
    h.record(0, 2);
    h.record(5);
    obs::StatRegistry reg;
    reg.scalar("a.count", "a counter", n)
        .histogram("a.dist", "a distribution", h);
    const std::string dump =
        obs::StatRegistry::dumpText(reg.snapshot());
    EXPECT_NE(dump.find("a.count"), std::string::npos);
    EXPECT_NE(dump.find("42"), std::string::npos);
    EXPECT_NE(dump.find("# a counter"), std::string::npos);
    EXPECT_NE(dump.find("a.dist"), std::string::npos);
}

TEST(StatRegistry, DuplicateNameDies)
{
    uint64_t n = 0;
    obs::StatRegistry reg;
    reg.scalar("x", "first", n);
    EXPECT_DEATH(reg.scalar("x", "second", n), "duplicate stat name");
}

// ----------------------------------------------------------- histogram

TEST(Histogram, BucketsExactValuesAndOverflow)
{
    obs::Histogram h(4);    // buckets 0, 1, 2, 3+ (overflow)
    h.record(0);
    h.record(1, 3);
    h.record(2);
    h.record(3);
    h.record(100);
    EXPECT_EQ(h.samples(), 7u);
    EXPECT_EQ(h.sum(), 0u + 3u + 2u + 3u + 100u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 3u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(3), 2u) << "3 and 100 both land in overflow";
    EXPECT_DOUBLE_EQ(h.mean(), double(h.sum()) / 7.0);

    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucket(1), 0u);
}

TEST(Histogram, RecordManyEqualsRepeatedRecord)
{
    // The idle-skip bulk accounting contract: recordMany(v, n) must
    // leave the histogram indistinguishable from n record(v) calls,
    // for exact buckets, the overflow bucket, and n == 0.
    obs::Histogram bulk(8), serial(8);
    const uint64_t cases[][2] = {
        {0, 5}, {3, 1}, {7, 4}, {100, 12}, {2, 0}, {1, 1000000}};
    for (const auto &c : cases) {
        bulk.recordMany(c[0], c[1]);
        for (uint64_t i = 0; i < c[1]; ++i)
            serial.record(c[0]);
    }
    EXPECT_EQ(bulk.samples(), serial.samples());
    EXPECT_EQ(bulk.sum(), serial.sum());
    EXPECT_EQ(bulk.buckets(), serial.buckets());
    EXPECT_DOUBLE_EQ(bulk.mean(), serial.mean());
}

// --------------------------------------------------------------- trace

TEST(Trace, CategoryParsingAndGating)
{
    EXPECT_EQ(obs::parseTraceCats(""), 0u);
    EXPECT_EQ(obs::parseTraceCats("none"), 0u);
    EXPECT_EQ(obs::parseTraceCats("all"), obs::kTraceAll);
    EXPECT_EQ(obs::parseTraceCats("xlate"), obs::kTraceXlate);
    EXPECT_EQ(obs::parseTraceCats("fetch,commit"),
              obs::kTraceFetch | obs::kTraceCommit);
    EXPECT_STREQ(obs::traceCatName(obs::kTraceWalk), "walk");

    obs::setTraceMask(obs::kTraceXlate);
    EXPECT_TRUE(obs::traceOn(obs::kTraceXlate));
    EXPECT_FALSE(obs::traceOn(obs::kTraceFetch));
    EXPECT_TRUE(obs::traceOn(obs::kTraceXlate | obs::kTraceFetch));
    obs::setTraceMask(0);
    EXPECT_FALSE(obs::traceOn(obs::kTraceAll));
}

TEST(Trace, EventsOnlyEmitWhenEnabled)
{
    // Capture trace output in a temp file; the message side effect
    // proves the macro's arguments are not evaluated when gated off.
    std::FILE *tmp = std::tmpfile();
    ASSERT_NE(tmp, nullptr);
    obs::setTraceStream(tmp);

    int evaluations = 0;
    const auto msgPart = [&] {
        ++evaluations;
        return 7;
    };

    obs::setTraceMask(0);
    HBAT_TRACE_EVENT(obs::kTraceIssue, 10, "never seen ", msgPart());
    EXPECT_EQ(evaluations, 0) << "message built despite tracing off";

    obs::setTraceMask(obs::kTraceIssue);
    HBAT_TRACE_EVENT(obs::kTraceIssue, 11, "issue seq=", msgPart());
    HBAT_TRACE_EVENT(obs::kTraceWalk, 12, "filtered category");
    EXPECT_EQ(evaluations, 1);

    obs::setTraceMask(0);
    obs::setTraceStream(nullptr);

    std::fflush(tmp);
    std::rewind(tmp);
    char buf[256] = {};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, tmp);
    std::fclose(tmp);
    const std::string out(buf, n);
    EXPECT_EQ(out, "TRACE issue  @11 issue seq=7\n");
}

} // namespace
