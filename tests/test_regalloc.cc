/**
 * @file
 * Register-allocator tests: semantic preservation under shrinking
 * budgets (the Figure 9 "recompilation" machinery), spill accounting,
 * and the tricky spill-lowering corners (post-increment bases,
 * all-spilled stores, FP spills, indirect jumps).
 */

#include <gtest/gtest.h>

#include "cpu/func_core.hh"
#include "kasm/program_builder.hh"
#include "kasm/regalloc.hh"
#include "vm/address_space.hh"

namespace
{

using namespace hbat;
using kasm::ProgramBuilder;
using kasm::RegBudget;
using kasm::VLabel;
using kasm::VReg;

/** Run @p prog functionally and return the word at the bss base. */
uint32_t
runAndReadResultValue(const kasm::Program &prog)
{
    vm::AddressSpace space;
    space.load(prog);
    cpu::FuncCore core(space, prog);
    uint64_t guard = 0;
    while (!core.halted() && ++guard < 10'000'000u)
        core.step();
    EXPECT_TRUE(core.halted());
    return space.read32(kasm::kBssBase);
}

/**
 * A program using many simultaneously-live values: 12 running sums
 * over an arithmetic sequence, folded at the end. Forces spills for
 * small budgets while staying fully register-resident at 32.
 */
void
buildManyLive(ProgramBuilder &pb, int lanes)
{
    auto &b = pb.code();
    const VAddr out = pb.space(16, 8);

    std::vector<VReg> acc(lanes);
    for (int l = 0; l < lanes; ++l) {
        acc[l] = b.vint();
        b.li(acc[l], uint32_t(l));
    }
    VReg i = b.vint();
    b.forLoop(i, 50, [&] {
        for (int l = 0; l < lanes; ++l)
            b.add(acc[l], acc[l], i);
    });
    VReg sum = b.vint(), p = b.vint();
    b.li(sum, 0);
    for (int l = 0; l < lanes; ++l)
        b.add(sum, sum, acc[l]);
    b.li(p, uint32_t(out));
    b.sw(sum, p, 0);
    b.halt();
}

/** Expected value of buildManyLive. */
uint32_t
manyLiveExpected(int lanes)
{
    uint32_t sum = 0;
    for (int l = 0; l < lanes; ++l)
        sum += uint32_t(l) + 1225;  // sum 0..49 = 1225
    return sum;
}

class BudgetSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BudgetSweep, ManyLiveIntSemanticsPreserved)
{
    const int int_regs = GetParam();
    ProgramBuilder pb("manylive");
    buildManyLive(pb, 12);
    const kasm::Program prog =
        pb.link(RegBudget{int_regs, 32});
    EXPECT_EQ(runAndReadResultValue(prog), manyLiveExpected(12))
        << "budget " << int_regs;
}

INSTANTIATE_TEST_SUITE_P(IntBudgets, BudgetSweep,
                         ::testing::Values(5, 6, 8, 12, 16, 32));

TEST(RegAlloc, SpillsAppearOnlyUnderPressure)
{
    auto countInsts = [](int budget) {
        ProgramBuilder pb("manylive");
        buildManyLive(pb, 12);
        return pb.link(RegBudget{budget, 32}).text.size();
    };
    const size_t full = countInsts(32);
    const size_t tight = countInsts(8);
    EXPECT_GT(tight, full) << "spill code must appear";
    const size_t mid = countInsts(20);
    EXPECT_EQ(mid, full) << "no spills when registers suffice";
}

TEST(RegAlloc, FewerRegistersMeansMoreMemoryOps)
{
    // The Figure 9 premise: an 8-register link performs many more
    // loads and stores than the 32-register link of the same source.
    auto countRefs = [](int budget) {
        ProgramBuilder pb("manylive");
        buildManyLive(pb, 12);
        const kasm::Program prog = pb.link(RegBudget{budget, 32});
        vm::AddressSpace space;
        space.load(prog);
        cpu::FuncCore core(space, prog);
        while (!core.halted())
            core.step();
        return core.stats().loads + core.stats().stores;
    };
    const uint64_t full = countRefs(32);
    const uint64_t tight = countRefs(8);
    EXPECT_GT(tight, full * 3) << "expected a large spill amplification";
}

TEST(RegAlloc, FpSpillsPreserveSemantics)
{
    for (int fp_budget : {3, 4, 8, 32}) {
        ProgramBuilder pb("fpspill");
        auto &b = pb.code();
        const VAddr out = pb.space(16, 8);
        std::vector<VReg> acc(10);
        for (size_t l = 0; l < acc.size(); ++l) {
            acc[l] = b.vfp();
            b.fconst(acc[l], double(l));
        }
        VReg i = b.vint();
        VReg one = b.vfp();
        b.fconst(one, 1.0);
        b.forLoop(i, 20, [&] {
            for (auto &a : acc)
                b.fadd(a, a, one);
        });
        VReg sum = b.vfp();
        b.fconst(sum, 0.0);
        for (auto &a : acc)
            b.fadd(sum, sum, a);
        VReg si = b.vint(), p = b.vint();
        b.fcvtfi(si, sum);
        b.li(p, uint32_t(out));
        b.sw(si, p, 0);
        b.halt();

        const kasm::Program prog = pb.link(RegBudget{32, fp_budget});
        // sum l + 20 over l=0..9 = 45 + 200 = 245.
        EXPECT_EQ(runAndReadResultValue(prog), 245u)
            << "fp budget " << fp_budget;
    }
}

TEST(RegAlloc, PostIncrementWithSpilledBase)
{
    // Enough live values to force the loop pointer into a stack slot.
    for (int budget : {5, 32}) {
        ProgramBuilder pb("postinc");
        auto &b = pb.code();
        const VAddr out = pb.space(256, 8);

        VReg ptr = b.vint(), v = b.vint();
        std::vector<VReg> noise(10);
        for (auto &n : noise) {
            n = b.vint();
            b.li(n, 1);
        }
        b.li(ptr, uint32_t(out));
        b.li(v, 7);
        for (int k = 0; k < 8; ++k) {
            b.swpi(v, ptr, 4);
            b.addi(v, v, 1);
            for (auto &n : noise)
                b.add(n, n, v);
        }
        // Write the final pointer delta so we can check the base
        // updates happened under spilling too.
        VReg pbase = b.vint(), delta = b.vint();
        b.li(pbase, uint32_t(out));
        b.sub(delta, ptr, pbase);
        b.sw(delta, pbase, 64);
        b.halt();

        vm::AddressSpace space;
        const kasm::Program prog = pb.link(RegBudget{budget, 32});
        space.load(prog);
        cpu::FuncCore core(space, prog);
        while (!core.halted())
            core.step();
        for (int k = 0; k < 8; ++k)
            EXPECT_EQ(space.read32(out + k * 4), uint32_t(7 + k))
                << "budget " << budget;
        EXPECT_EQ(space.read32(out + 64), 32u) << "budget " << budget;
    }
}

TEST(RegAlloc, AllSpilledStoreOperands)
{
    // Budget 5 leaves one allocatable register, so a register+register
    // store has every operand spilled — the address-folding path.
    ProgramBuilder pb("swxspill");
    auto &b = pb.code();
    const VAddr out = pb.space(256, 8);

    VReg base = b.vint(), idx = b.vint(), data = b.vint();
    VReg keep1 = b.vint(), keep2 = b.vint();
    b.li(base, uint32_t(out));
    b.li(idx, 12);
    b.li(data, 0xabcd);
    b.li(keep1, 5);
    b.li(keep2, 9);
    b.swx(data, base, idx);
    // Keep all five values live past the store.
    VReg sum = b.vint(), p = b.vint();
    b.add(sum, keep1, keep2);
    b.add(sum, sum, idx);
    b.add(sum, sum, data);
    b.li(p, uint32_t(out));
    b.sw(sum, p, 0);
    b.halt();

    const kasm::Program prog = pb.link(RegBudget{5, 32});
    vm::AddressSpace space;
    space.load(prog);
    cpu::FuncCore core(space, prog);
    while (!core.halted())
        core.step();
    EXPECT_EQ(space.read32(out + 12), 0xabcdu);
    EXPECT_EQ(space.read32(out), 5u + 9 + 12 + 0xabcd);
}

TEST(RegAlloc, ZeroRegisterSources)
{
    ProgramBuilder pb("zerosrc");
    auto &b = pb.code();
    const VAddr out = pb.space(16, 8);
    VReg p = b.vint(), v = b.vint();
    b.li(p, uint32_t(out));
    b.sw(b.zero(), p, 0);               // store zero
    b.add(v, b.zero(), b.zero());       // v = 0
    b.addi(v, v, 41);
    VLabel skip = b.label();
    b.beq(b.zero(), b.zero(), skip);    // always taken
    b.addi(v, v, 100);                  // skipped
    b.bind(skip);
    b.addi(v, v, 1);
    b.sw(v, p, 4);
    b.halt();

    const kasm::Program prog = pb.link(RegBudget{32, 32});
    vm::AddressSpace space;
    space.load(prog);
    cpu::FuncCore core(space, prog);
    while (!core.halted())
        core.step();
    EXPECT_EQ(space.read32(out), 0u);
    EXPECT_EQ(space.read32(out + 4), 42u);
}

TEST(RegAlloc, IndirectJumpThroughCodeTable)
{
    for (int budget : {5, 32}) {
        ProgramBuilder pb("jrtable");
        auto &b = pb.code();
        const VAddr out = pb.space(16, 8);

        VLabel h0 = b.label(), h1 = b.label(), done = b.label();
        const VAddr table = pb.codeTable({h0, h1});

        VReg sel = b.vint(), t = b.vint(), target = b.vint();
        VReg res = b.vint(), p = b.vint();
        b.li(res, 0);
        b.li(sel, 1);               // choose handler 1
        b.slli(t, sel, 2);
        {
            VReg tb = b.vint();
            b.li(tb, uint32_t(table));
            b.add(t, t, tb);
        }
        b.lw(target, t, 0);
        b.jr(target);

        b.bind(h0);
        b.li(res, 111);
        b.jmp(done);
        b.bind(h1);
        b.li(res, 222);
        b.jmp(done);

        b.bind(done);
        b.li(p, uint32_t(out));
        b.sw(res, p, 0);
        b.halt();

        const kasm::Program prog = pb.link(RegBudget{budget, 32});
        vm::AddressSpace space;
        space.load(prog);
        cpu::FuncCore core(space, prog);
        while (!core.halted())
            core.step();
        EXPECT_EQ(space.read32(out), 222u) << "budget " << budget;
    }
}

TEST(RegAlloc, LowerReportsFrameAndSpills)
{
    ProgramBuilder pb("framereport");
    buildManyLive(pb, 12);
    // Link indirectly (through lower) to check the report.
    // Re-build since ProgramBuilder::link consumes the code.
    ProgramBuilder pb2("framereport");
    buildManyLive(pb2, 12);

    const kasm::Program tight = pb.link(RegBudget{6, 32});
    const kasm::Program loose = pb2.link(RegBudget{32, 32});
    EXPECT_GT(tight.text.size(), loose.text.size());
}

TEST(RegAllocDeath, BudgetTooSmall)
{
    ProgramBuilder pb("toosmall");
    auto &b = pb.code();
    b.halt();
    EXPECT_DEATH(pb.link(RegBudget{4, 32}), "budget");
}

} // namespace
