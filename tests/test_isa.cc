/**
 * @file
 * ISA tests: opcode metadata invariants, binary encode/decode
 * round-trips for every opcode (property-style sweep), and the
 * disassembler.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/isa.hh"

namespace
{

using namespace hbat;
using isa::Inst;
using isa::Opcode;
using isa::RC;

std::vector<Opcode>
allOpcodes()
{
    std::vector<Opcode> ops;
    for (int i = 0; i < isa::kNumOpcodes; ++i)
        ops.push_back(Opcode(i));
    return ops;
}

class OpcodeSweep : public ::testing::TestWithParam<Opcode>
{
};

TEST_P(OpcodeSweep, MetadataInvariants)
{
    const Opcode op = GetParam();
    const isa::OpInfo &info = isa::opInfo(op);

    ASSERT_NE(info.name, nullptr);
    EXPECT_GT(std::string(info.name).size(), 0u);

    // Memory properties are consistent.
    EXPECT_EQ(info.isLoad || info.isStore, info.memSize != 0);
    if (info.isLoad || info.isStore) {
        EXPECT_EQ(info.fu, isa::FuClass::MemPort);
        EXPECT_EQ(info.rs1Class, RC::Int) << "base must be integer";
    }
    EXPECT_FALSE(info.isLoad && info.isStore);

    // Stores carry their data in the rd field.
    if (info.isStore) {
        EXPECT_TRUE(info.rdIsSource);
    }
    if (info.rdIsSource) {
        EXPECT_TRUE(info.isStore);
    }

    // Post-increment ops write their (integer) base register.
    if (info.writesBase) {
        EXPECT_TRUE(info.isLoad || info.isStore);
        EXPECT_EQ(info.rs1Class, RC::Int);
    }

    // Control flow is exclusive.
    EXPECT_FALSE(info.isBranch && info.isJump);
    if (info.isBranch) {
        EXPECT_EQ(info.rs1Class, RC::Int);
        EXPECT_EQ(info.rs2Class, RC::Int);
        EXPECT_EQ(info.rdClass, RC::None);
    }

    // Pointer propagation only makes sense for integer results.
    if (info.propagatesPointer) {
        EXPECT_EQ(info.rdClass, RC::Int);
        EXPECT_FALSE(info.rdIsSource);
    }
}

TEST_P(OpcodeSweep, EncodeDecodeRoundTrip)
{
    const Opcode op = GetParam();
    const isa::OpInfo &info = isa::opInfo(op);
    Rng rng(uint64_t(op) + 100);

    for (int trial = 0; trial < 64; ++trial) {
        Inst inst;
        inst.op = op;
        if (info.rdClass != RC::None)
            inst.rd = RegIndex(rng.below(32));
        if (info.rs1Class != RC::None)
            inst.rs1 = RegIndex(rng.below(32));
        if (info.rs2Class != RC::None)
            inst.rs2 = RegIndex(rng.below(32));

        // Choose an in-range immediate for the op's format.
        switch (op) {
          case Opcode::Slli:
          case Opcode::Srli:
          case Opcode::Srai:
            inst.imm = int32_t(rng.below(32));
            break;
          case Opcode::Andi:
          case Opcode::Ori:
          case Opcode::Xori:
          case Opcode::Lui:
            inst.imm = int32_t(rng.below(65536));
            break;
          case Opcode::J:
          case Opcode::Jal:
            inst.imm = int32_t(rng.range(0, (1u << 25) - 1)) -
                       (1 << 24);
            break;
          default:
            if (info.isLoad || info.isStore || info.isBranch ||
                (info.rs1Class != RC::None &&
                 info.rs2Class == RC::None && !info.isJump &&
                 op != Opcode::Jr && op != Opcode::Jalr &&
                 info.rdClass != RC::None && info.fu ==
                     isa::FuClass::IntAlu)) {
                // Only I-format ops take immediates; R-format ops
                // must keep imm == 0.
                if (op == Opcode::Lwx || op == Opcode::Swx ||
                    op == Opcode::Ldfx || op == Opcode::Sdfx) {
                    inst.imm = 0;
                } else if (info.isLoad || info.isStore ||
                           info.isBranch) {
                    inst.imm = int32_t(rng.range(0, 65535)) - 32768;
                } else if (op == Opcode::Addi || op == Opcode::Slti ||
                           op == Opcode::Sltiu) {
                    inst.imm = int32_t(rng.range(0, 65535)) - 32768;
                }
            }
            break;
        }

        const uint32_t word = isa::encode(inst);
        const Inst back = isa::decode(word);
        EXPECT_EQ(back.op, inst.op) << isa::opName(op);
        if (info.rdClass != RC::None) {
            EXPECT_EQ(back.rd, inst.rd) << isa::opName(op);
        }
        if (info.rs1Class != RC::None) {
            EXPECT_EQ(back.rs1, inst.rs1) << isa::opName(op);
        }
        if (info.rs2Class != RC::None) {
            EXPECT_EQ(back.rs2, inst.rs2) << isa::opName(op);
        }
        EXPECT_EQ(back.imm, inst.imm) << isa::opName(op);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeSweep, ::testing::ValuesIn(allOpcodes()),
    [](const ::testing::TestParamInfo<Opcode> &info) {
        std::string name = isa::opName(info.param);
        for (char &c : name)
            if (!isalnum(c))
                c = '_';
        return name;
    });

TEST(IsaEncode, DistinctEncodings)
{
    // Any two distinct (op, operands) pairs must encode differently.
    std::vector<uint32_t> words;
    for (Opcode op : allOpcodes()) {
        Inst inst;
        inst.op = op;
        words.push_back(isa::encode(inst));
    }
    std::sort(words.begin(), words.end());
    EXPECT_EQ(std::adjacent_find(words.begin(), words.end()),
              words.end());
}

TEST(IsaEncodeDeath, ImmediateOutOfRange)
{
    Inst inst;
    inst.op = Opcode::Addi;
    inst.imm = 40000;
    EXPECT_DEATH(isa::encode(inst), "out of signed16");
}

TEST(IsaEncodeDeath, ShiftOutOfRange)
{
    Inst inst;
    inst.op = Opcode::Slli;
    inst.imm = 32;
    EXPECT_DEATH(isa::encode(inst), "out of range");
}

TEST(IsaDecodeDeath, IllegalMajor)
{
    EXPECT_DEATH(isa::decode(0xffffffffu), "illegal");
}

TEST(IsaDisasm, Samples)
{
    EXPECT_EQ(isa::disassemble(Inst{Opcode::Add, 2, 4, 5, 0}),
              "add    rv, a0, a1");
    EXPECT_EQ(isa::disassemble(Inst{Opcode::Lw, 8, 29, 0, 16}),
              "lw     r8, 16(sp)");
    EXPECT_EQ(isa::disassemble(Inst{Opcode::Lwpi, 8, 9, 0, 4}),
              "lwpi   r8, (r9)+=4");
    EXPECT_EQ(isa::disassemble(Inst{Opcode::Lwx, 8, 9, 10, 0}),
              "lwx    r8, (r9+r10)");
    EXPECT_EQ(isa::disassemble(Inst{Opcode::Fadd, 1, 2, 3, 0}),
              "fadd   f1, f2, f3");
    EXPECT_EQ(isa::disassemble(Inst{Opcode::Halt, 0, 0, 0, 0}),
              "halt");
}

TEST(IsaDisasm, BranchTarget)
{
    // beq at pc 0x1000 with offset +4 words -> target 0x1014.
    const std::string s =
        isa::disassemble(Inst{Opcode::Beq, 0, 1, 2, 4}, 0x1000);
    EXPECT_NE(s.find("0x1014"), std::string::npos) << s;
}

TEST(IsaRegNames, Conventions)
{
    EXPECT_STREQ(isa::intRegName(0), "zero");
    EXPECT_STREQ(isa::intRegName(29), "sp");
    EXPECT_STREQ(isa::intRegName(31), "ra");
    EXPECT_STREQ(isa::fpRegName(0), "f0");
    EXPECT_STREQ(isa::fpRegName(31), "f31");
}

} // namespace
