/**
 * @file
 * Simulator-top tests: configuration wiring (page size, issue model,
 * register budget, custom engines) and cross-design sanity orderings
 * on a bandwidth-hungry microprogram.
 */

#include <gtest/gtest.h>

#include "kasm/program_builder.hh"
#include "sim/simulator.hh"
#include "tlb/multiported.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;
using kasm::ProgramBuilder;
using kasm::VReg;

/** Four parallel loads per iteration across several pages. */
kasm::Program
loadBurst(uint32_t iters)
{
    ProgramBuilder pb("burst");
    auto &b = pb.code();
    const VAddr buf = pb.space(1u << 16, 64);
    VReg base = b.vint(), i = b.vint();
    VReg d[4];
    for (auto &x : d)
        x = b.vint();
    b.li(base, uint32_t(buf));
    b.forLoop(i, iters, [&] {
        for (int k = 0; k < 4; ++k)
            b.lw(d[k], base, k * 4096 + 8);
    });
    b.halt();
    return pb.link();
}

TEST(Sim, PageSizeChangesFootprintAccounting)
{
    const kasm::Program prog =
        workloads::build("ghostscript", kasm::RegBudget{32, 32}, 0.05);
    sim::SimConfig four;
    four.pageBytes = 4096;
    sim::SimConfig eight;
    eight.pageBytes = 8192;
    const auto r4 = sim::simulate(prog, four);
    const auto r8 = sim::simulate(prog, eight);
    EXPECT_GT(r4.touchedPages, r8.touchedPages);
}

TEST(Sim, LargerPagesNeverHurtMultiLevel)
{
    const kasm::Program prog =
        workloads::build("compress", kasm::RegBudget{32, 32}, 0.1);
    sim::SimConfig m4k;
    m4k.design = tlb::Design::M8;
    sim::SimConfig m8k = m4k;
    m8k.pageBytes = 8192;
    const auto r4 = sim::simulate(prog, m4k);
    const auto r8 = sim::simulate(prog, m8k);
    // Larger pages map more memory per L1 entry: at least as many
    // shielded hits, no more walks.
    EXPECT_LE(r8.pipe.tlbWalks, r4.pipe.tlbWalks);
}

TEST(Sim, DesignOrderingUnderBandwidthPressure)
{
    const kasm::Program prog = loadBurst(600);
    auto cycles = [&](tlb::Design d) {
        sim::SimConfig cfg;
        cfg.design = d;
        return sim::simulate(prog, cfg).cycles();
    };
    const Cycle t4 = cycles(tlb::Design::T4);
    const Cycle t2 = cycles(tlb::Design::T2);
    const Cycle t1 = cycles(tlb::Design::T1);
    EXPECT_LE(t4, t2);
    EXPECT_LE(t2, t1);
    EXPECT_LT(t4, t1) << "a 1-ported TLB must hurt 4 loads/cycle";
}

TEST(Sim, MultiLevelShieldsBaseTlb)
{
    const kasm::Program prog = loadBurst(600);
    sim::SimConfig cfg;
    cfg.design = tlb::Design::M8;
    const auto r = sim::simulate(prog, cfg);
    EXPECT_GT(r.pipe.xlate.shielded, r.pipe.xlate.baseAccesses)
        << "the L1 TLB must absorb most requests";
}

TEST(Sim, PiggybackCombinesSamePageBursts)
{
    // All four loads per iteration target the same page.
    ProgramBuilder pb("samepage");
    auto &b = pb.code();
    const VAddr buf = pb.space(1u << 16, 64);
    VReg base = b.vint(), i = b.vint();
    VReg d[4];
    for (auto &x : d)
        x = b.vint();
    b.li(base, uint32_t(buf));
    b.forLoop(i, 600, [&] {
        for (int k = 0; k < 4; ++k)
            b.lw(d[k], base, k * 64);
    });
    b.halt();
    const kasm::Program prog = pb.link();

    sim::SimConfig pb1;
    pb1.design = tlb::Design::PB1;
    sim::SimConfig t1;
    t1.design = tlb::Design::T1;
    const auto rPb = sim::simulate(prog, pb1);
    const auto rT1 = sim::simulate(prog, t1);
    EXPECT_LT(rPb.cycles(), rT1.cycles());
    EXPECT_GT(rPb.pipe.xlate.piggybacks, 1000u);
}

TEST(Sim, CustomEngineFactory)
{
    const kasm::Program prog = loadBurst(100);
    sim::SimConfig cfg;
    const sim::SimResult r = sim::simulateWithEngine(
        prog, cfg,
        [](vm::PageTable &pt) {
            return std::make_unique<tlb::MultiPortedTlb>(pt, 3, 0, 64,
                                                         9);
        },
        "T3/64");
    EXPECT_EQ(r.design, "T3/64");
    EXPECT_GT(r.pipe.committed, 400u);
}

TEST(Sim, MaxInstsBoundsTheRun)
{
    const kasm::Program prog = loadBurst(100000);
    sim::SimConfig cfg;
    cfg.maxInsts = 5000;
    const sim::SimResult r = sim::simulate(prog, cfg);
    EXPECT_GE(r.pipe.committed, 5000u);
    EXPECT_LT(r.pipe.committed, 5100u);
}

TEST(Sim, InOrderFlagReachesPipeline)
{
    const kasm::Program prog = loadBurst(500);
    sim::SimConfig ooo;
    sim::SimConfig ino;
    ino.inOrder = true;
    EXPECT_LE(sim::simulate(prog, ooo).cycles(),
              sim::simulate(prog, ino).cycles());
}

TEST(Sim, SeedChangesRandomReplacementOutcomes)
{
    const kasm::Program prog =
        workloads::build("compress", kasm::RegBudget{32, 32}, 0.05);
    sim::SimConfig a;
    a.seed = 1;
    sim::SimConfig c;
    c.seed = 2;
    const auto ra = sim::simulate(prog, a);
    const auto rc = sim::simulate(prog, c);
    // Same committed work, (almost surely) different cycle counts.
    EXPECT_EQ(ra.pipe.committed, rc.pipe.committed);
    EXPECT_NE(ra.cycles(), rc.cycles());
}

} // namespace
