/**
 * @file
 * Time-resolved observability tests: the interval stat time-series
 * (exact boundaries under idle-cycle skipping — including skipped
 * spans that cross a sampling boundary), delta semantics, per-PC
 * translation profile determinism across job counts, and the
 * O3PipeView trace writer.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/harness.hh"
#include "obs/interval.hh"
#include "obs/pipeview.hh"
#include "sim/simulator.hh"
#include "tlb/design.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;

const obs::StatValue &
find(const obs::StatSnapshot &snap, const std::string &name)
{
    for (const obs::StatValue &v : snap)
        if (v.name == name)
            return v;
    ADD_FAILURE() << "stat " << name << " not in snapshot";
    static const obs::StatValue none;
    return none;
}

TEST(TimeSeries, IntervalSamplesTileTheRun)
{
    const kasm::Program prog =
        workloads::build("tomcatv", kasm::RegBudget{32, 32}, 0.02);
    sim::SimConfig cfg;
    cfg.intervalCycles = 512;
    const sim::SimResult r = sim::simulate(prog, cfg);

    ASSERT_TRUE(r.intervals.enabled());
    EXPECT_EQ(r.intervals.interval, 512u);
    const auto &samples = r.intervals.samples;
    ASSERT_GE(samples.size(), 3u) << "run too short to sample";

    // Boundaries ascend; all but the final partial one are multiples
    // of the interval; the final one is the end of the run.
    Cycle prev = 0;
    for (size_t i = 0; i < samples.size(); ++i) {
        EXPECT_GT(samples[i].cycle, prev);
        if (i + 1 < samples.size()) {
            EXPECT_EQ(samples[i].cycle % 512, 0u);
        }
        prev = samples[i].cycle;
        // Samples are cumulative: the cycle counter at boundary B
        // reads exactly B.
        EXPECT_EQ(find(samples[i].stats, "pipe.cycles").value,
                  double(samples[i].cycle));
    }
    EXPECT_EQ(samples.back().cycle, r.cycles());

    // Per-interval deltas tile the run: they sum to the end-of-run
    // totals, for counters and histogram sample counts alike.
    double cycles = 0.0, committed = 0.0;
    uint64_t demand_samples = 0;
    const obs::StatSnapshot *last = nullptr;
    for (const obs::IntervalSample &s : samples) {
        const obs::StatSnapshot d = obs::intervalDelta(last, s.stats);
        cycles += find(d, "pipe.cycles").value;
        committed += find(d, "pipe.committed").value;
        demand_samples += find(d, "pipe.mem_per_cycle").samples;
        last = &s.stats;
    }
    EXPECT_EQ(cycles, double(r.cycles()));
    EXPECT_EQ(committed, double(r.pipe.committed));
    EXPECT_EQ(demand_samples, r.cycles());
}

TEST(TimeSeries, IntervalDeltaSemantics)
{
    obs::StatValue sc;
    sc.name = "c";
    sc.kind = obs::StatKind::Scalar;
    obs::StatValue fo;
    fo.name = "f";
    fo.kind = obs::StatKind::Formula;
    obs::StatValue hi;
    hi.name = "h";
    hi.kind = obs::StatKind::Histogram;
    hi.values = {2.0, 3.0};

    obs::StatSnapshot prev{sc, fo, hi};
    prev[0].value = 10.0;
    prev[1].value = 0.5;
    prev[2].samples = 5;
    prev[2].sum = 7;
    obs::StatSnapshot cur{sc, fo, hi};
    cur[0].value = 25.0;
    cur[1].value = 0.25;
    cur[2].values = {6.0, 4.0};
    cur[2].samples = 10;
    cur[2].sum = 19;

    // Counters subtract; formulas pass through cumulatively.
    const obs::StatSnapshot d = obs::intervalDelta(&prev, cur);
    EXPECT_EQ(d[0].value, 15.0);
    EXPECT_EQ(d[1].value, 0.25);
    EXPECT_EQ(d[2].values, (std::vector<double>{4.0, 1.0}));
    EXPECT_EQ(d[2].samples, 5u);
    EXPECT_EQ(d[2].sum, 12u);
    EXPECT_EQ(d[2].mean, 12.0 / 5.0);

    // A null prev deltas against the zero state: the first interval.
    const obs::StatSnapshot first = obs::intervalDelta(nullptr, cur);
    EXPECT_EQ(first[0].value, 25.0);
    EXPECT_EQ(first[2].samples, 10u);
}

/**
 * The tentpole invariant: the time-series is bit-identical with idle
 * skipping on and off. The interval is set well below the total
 * skipped-cycle count so bulk-accounted spans cross sampling
 * boundaries and must be split across them (pipeline.cc's chunked
 * span accounting); two designs with different idle profiles.
 */
TEST(TimeSeries, IntervalSeriesSkipInvariantAcrossDesigns)
{
    const kasm::Program prog =
        workloads::build("tomcatv", kasm::RegBudget{32, 32}, 0.02);
    for (const tlb::Design d : {tlb::Design::T4, tlb::Design::T1}) {
        SCOPED_TRACE(tlb::designName(d));
        sim::SimConfig cfg;
        cfg.design = d;
        cfg.intervalCycles = 128;

        cfg.idleSkip = false;
        const sim::SimResult ref = sim::simulate(prog, cfg);
        cfg.idleSkip = true;
        const sim::SimResult fast = sim::simulate(prog, cfg);

        ASSERT_GT(fast.pipe.skippedCycles, 10 * 128u)
            << "not enough skipped cycles to cross boundaries";
        ASSERT_EQ(ref.intervals.samples.size(),
                  fast.intervals.samples.size());
        for (size_t i = 0; i < ref.intervals.samples.size(); ++i) {
            const obs::IntervalSample &a = ref.intervals.samples[i];
            const obs::IntervalSample &b = fast.intervals.samples[i];
            SCOPED_TRACE("sample " + std::to_string(i));
            EXPECT_EQ(a.cycle, b.cycle);
            ASSERT_EQ(a.stats.size(), b.stats.size());
            for (size_t j = 0; j < a.stats.size(); ++j) {
                const obs::StatValue &x = a.stats[j];
                const obs::StatValue &y = b.stats[j];
                SCOPED_TRACE(x.name);
                EXPECT_EQ(x.name, y.name);
                EXPECT_EQ(x.value, y.value);
                EXPECT_EQ(x.values, y.values);
                EXPECT_EQ(x.samples, y.samples);
                EXPECT_EQ(x.sum, y.sum);
            }
        }
    }
}

/**
 * The per-PC profile and the interval series are part of the
 * deterministic report surface: a sweep at --jobs 1 and --jobs 8
 * must produce identical profiles for every cell.
 */
TEST(TimeSeries, PcProfileAndIntervalsJobCountInvariant)
{
    bench::ExperimentConfig cfg;
    cfg.scale = 0.02;
    cfg.programs = {"compress", "espresso"};
    cfg.pcProfileK = 8;
    cfg.intervalStats = 1024;
    const std::vector<tlb::Design> designs = {tlb::Design::T4,
                                              tlb::Design::T1};
    cfg.jobs = 1;
    const bench::Sweep s1 = bench::runDesignSweep(cfg, designs);
    cfg.jobs = 8;
    const bench::Sweep s8 = bench::runDesignSweep(cfg, designs);

    ASSERT_EQ(s1.cells.size(), s8.cells.size());
    for (size_t c = 0; c < s1.cells.size(); ++c) {
        const bench::Cell &a = s1.cells[c];
        const bench::Cell &b = s8.cells[c];
        SCOPED_TRACE(a.program + " " + a.design);

        const auto ta = a.result.pipe.pcProfile.topK(8);
        const auto tb = b.result.pipe.pcProfile.topK(8);
        ASSERT_FALSE(ta.empty());
        ASSERT_EQ(ta.size(), tb.size());
        for (size_t i = 0; i < ta.size(); ++i) {
            EXPECT_EQ(ta[i].pc, tb[i].pc);
            EXPECT_EQ(ta[i].counts.requests, tb[i].counts.requests);
            EXPECT_EQ(ta[i].counts.misses, tb[i].counts.misses);
            EXPECT_EQ(ta[i].counts.walkCycles,
                      tb[i].counts.walkCycles);
            EXPECT_EQ(ta[i].counts.piggybackHits,
                      tb[i].counts.piggybackHits);
        }

        const auto &ia = a.result.intervals;
        const auto &ib = b.result.intervals;
        ASSERT_EQ(ia.samples.size(), ib.samples.size());
        for (size_t i = 0; i < ia.samples.size(); ++i) {
            EXPECT_EQ(ia.samples[i].cycle, ib.samples[i].cycle);
            ASSERT_EQ(ia.samples[i].stats.size(),
                      ib.samples[i].stats.size());
            for (size_t j = 0; j < ia.samples[i].stats.size(); ++j) {
                EXPECT_EQ(ia.samples[i].stats[j].value,
                          ib.samples[i].stats[j].value)
                    << ia.samples[i].stats[j].name;
            }
        }
    }
}

TEST(TimeSeries, PipeviewTraceCoversEveryCommit)
{
    const kasm::Program prog =
        workloads::build("compress", kasm::RegBudget{32, 32}, 0.01);
    const std::string path =
        ::testing::TempDir() + "hbat_pipeview_test.out";

    sim::SimResult r;
    {
        obs::PipeviewWriter writer(path);
        sim::SimConfig cfg;
        cfg.pipeview = &writer;
        r = sim::simulate(prog, cfg);
    }

    // One fetch line and one retire line per committed instruction.
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    uint64_t fetches = 0, retires = 0;
    char line[512];
    while (std::fgets(line, sizeof(line), f)) {
        if (std::string(line).rfind("O3PipeView:fetch:", 0) == 0)
            ++fetches;
        else if (std::string(line).rfind("O3PipeView:retire:", 0) == 0)
            ++retires;
    }
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(fetches, r.pipe.committed);
    EXPECT_EQ(retires, r.pipe.committed);
}

} // namespace
